package bdps_test

import (
	"fmt"

	"bdps"
)

// ExampleRunSim simulates a small bounded-delay run and reports the
// delivery rate within publisher-specified bounds.
func ExampleRunSim() {
	res, err := bdps.RunSim(bdps.SimConfig{
		Seed:     1,
		Scenario: bdps.PSD,
		Strategy: bdps.EB(),
		Workload: bdps.WorkloadConfig{
			RatePerMin: 3,
			Duration:   2 * bdps.Minute,
		},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("published %d messages, delivery rate within bounds: %.0f%%\n",
		res.Published, 100*res.DeliveryRate())
	// Output:
	// published 26 messages, delivery rate within bounds: 86%
}

// ExampleParseFilter shows the content-filter language.
func ExampleParseFilter() {
	f, err := bdps.ParseFilter("(A1 < 5 && A2 < 3) || tag == 'urgent'")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// The canonical form drops redundant parentheses: && binds tighter
	// than ||.
	fmt.Println(f.String())
	// Output:
	// A1 < 5 && A2 < 3 || tag == "urgent"
}

// ExampleParseStrategy resolves strategy names as the CLI does.
func ExampleParseStrategy() {
	for _, name := range []string{"fifo", "rl", "eb", "pc", "ebpc:0.6"} {
		s, err := bdps.ParseStrategy(name)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println(s.Name())
	}
	// Output:
	// FIFO
	// RL
	// EB
	// PC
	// EBPC(r=0.60)
}

// ExampleEBPC shows that the combined strategy degenerates to the pure
// ones at its endpoints.
func ExampleEBPC() {
	fmt.Println(bdps.EBPC(1).Name(), "behaves like", bdps.EB().Name())
	fmt.Println(bdps.EBPC(0).Name(), "behaves like", bdps.PC().Name())
	// Output:
	// EBPC(r=1.00) behaves like EB
	// EBPC(r=0.00) behaves like PC
}
