package bdps

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeStrategies(t *testing.T) {
	for _, tc := range []struct {
		s    Strategy
		name string
	}{
		{FIFO(), "FIFO"}, {RL(), "RL"}, {EB(), "EB"}, {PC(), "PC"},
		{EBPC(0.5), "EBPC(r=0.50)"},
	} {
		if tc.s.Name() != tc.name {
			t.Errorf("strategy name = %q, want %q", tc.s.Name(), tc.name)
		}
	}
	s, err := ParseStrategy("ebpc:0.25")
	if err != nil || s.Name() != "EBPC(r=0.25)" {
		t.Errorf("ParseStrategy: %v, %v", s, err)
	}
}

func TestFacadeDefaults(t *testing.T) {
	p := DefaultParams()
	if p.PD != 2*Ms || p.Epsilon != 0.0005 {
		t.Errorf("DefaultParams = %+v", p)
	}
	if Hour != 60*Minute || Minute != 60*Second || Second != 1000*Ms {
		t.Error("time units inconsistent")
	}
}

func TestFacadeFilter(t *testing.T) {
	f, err := ParseFilter("A1 < 5 && A2 < 3")
	if err != nil {
		t.Fatal(err)
	}
	if f.String() == "" {
		t.Error("filter should render")
	}
	if _, err := ParseFilter("A1 <"); err == nil {
		t.Error("bad filter should fail")
	}
}

func TestFacadeOverlay(t *testing.T) {
	ov, err := BuildLayeredOverlay(LayeredConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ov.Graph.N() != 32 {
		t.Errorf("N = %d, want 32", ov.Graph.N())
	}
}

func TestFacadeRunSim(t *testing.T) {
	res, err := RunSim(SimConfig{
		Seed:     1,
		Scenario: PSD,
		Strategy: EB(),
		Workload: WorkloadConfig{RatePerMin: 6, Duration: 5 * Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ValidDeliveries == 0 {
		t.Error("facade run delivered nothing")
	}
	if res.DeliveryRate() <= 0 || res.DeliveryRate() > 1 {
		t.Errorf("delivery rate = %v", res.DeliveryRate())
	}
}

func TestFacadeRunFigure(t *testing.T) {
	figs, err := RunFigure("6a", ExperimentOptions{
		Seeds:    []uint64{1},
		Duration: 3 * Minute,
		Rates:    []float64{6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 || figs[0].ID != "6a" {
		t.Fatalf("figs = %+v", figs)
	}
	var buf bytes.Buffer
	if err := figs[0].Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 6a") {
		t.Error("render missing title")
	}
}

func TestFacadeScenarios(t *testing.T) {
	if PSD.String() != "PSD" || SSD.String() != "SSD" {
		t.Error("scenario names wrong")
	}
}
