// Package bdps is a bounded-delay publish/subscribe system: a Go
// reproduction of "Achieving Bounded Delay on Message Delivery in
// Publish/Subscribe Systems" (Wang, Cao, Li, Wu — ICPP 2006).
//
// The package is the public facade over the internal building blocks:
//
//   - probabilistic message scheduling (EB, PC, EBPC from §5 of the
//     paper, plus the FIFO and RL baselines) over per-link output queues;
//   - a content-based broker overlay with single- and multi-path routing
//     and per-(ingress, subscriber) residual-path delay statistics;
//   - a deterministic discrete-event simulator reproducing the paper's
//     evaluation (Figures 4–6), exposed through RunSim and RunFigure;
//   - a live runtime (package bdps/internal/livenet, surfaced through
//     the bdps-broker / bdps-pub / bdps-sub commands) that drives the
//     same scheduler over real TCP connections.
//
// # Quick start
//
// Run one simulated configuration:
//
//	res, err := bdps.RunSim(bdps.SimConfig{
//	    Seed:     1,
//	    Scenario: bdps.PSD,
//	    Strategy: bdps.EB(),
//	    Workload: bdps.WorkloadConfig{RatePerMin: 10, Duration: 10 * bdps.Minute},
//	})
//	fmt.Printf("delivery rate: %.1f%%\n", 100*res.DeliveryRate())
//
// Reproduce a paper figure:
//
//	figs, err := bdps.RunFigure("6a", bdps.ExperimentOptions{})
//	figs[0].Render(os.Stdout)
package bdps

import (
	"bdps/internal/core"
	"bdps/internal/experiments"
	"bdps/internal/filter"
	"bdps/internal/livenet"
	"bdps/internal/metrics"
	"bdps/internal/msg"
	"bdps/internal/runtime"
	"bdps/internal/simnet"
	"bdps/internal/topology"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

// Core model types.
type (
	// Scenario selects who specifies the delay bound (PSD or SSD).
	Scenario = msg.Scenario
	// Message is a published message.
	Message = msg.Message
	// Subscription is a subscriber's standing interest.
	Subscription = msg.Subscription
	// NodeID identifies a broker, publisher or subscriber.
	NodeID = msg.NodeID
	// SubID identifies a subscription.
	SubID = msg.SubID
	// Filter is a parsed content filter.
	Filter = filter.Filter
	// Strategy schedules broker output queues.
	Strategy = core.Strategy
	// Params are broker scheduling parameters (processing delay PD and
	// the invalid-message threshold ε).
	Params = core.Params
	// Millis is virtual time in milliseconds.
	Millis = vtime.Millis
)

// Simulation and experiment types.
type (
	// SimConfig describes one simulation run.
	SimConfig = simnet.Config
	// WorkloadConfig parameterizes publishers and subscribers.
	WorkloadConfig = workload.Config
	// Result is one run's metrics.
	Result = metrics.Result
	// ExperimentOptions scales a figure reproduction.
	ExperimentOptions = experiments.Options
	// Figure is one reproduced figure panel.
	Figure = experiments.Figure
	// Overlay is a broker topology with ingress/edge roles.
	Overlay = topology.Overlay
	// LayeredConfig parameterizes the paper's layered-mesh topology.
	LayeredConfig = topology.LayeredConfig
	// LinkModel selects the per-transfer rate distribution shape.
	LinkModel = simnet.LinkModel
	// Backend is a runtime transport: a deployment substrate the
	// scheduling system runs on (simulator or live TCP overlay).
	Backend = runtime.Transport
)

// Scenarios.
const (
	// PSD: publisher-specified delay; objective = delivery rate.
	PSD = msg.PSD
	// SSD: subscriber-specified delay with prices; objective = earning.
	SSD = msg.SSD
)

// Link models for SimConfig.LinkModel.
const (
	LinkNormal = simnet.LinkNormal
	LinkFixed  = simnet.LinkFixed
	LinkGamma  = simnet.LinkGamma
)

// Time units for durations in configs.
const (
	Ms     = vtime.Ms
	Second = vtime.Second
	Minute = vtime.Minute
	Hour   = vtime.Hour
)

// FIFO returns the first-in-first-out baseline strategy.
func FIFO() Strategy { return core.FIFO{} }

// RL returns the minimum-remaining-lifetime-first baseline strategy.
func RL() Strategy { return core.RL{} }

// EB returns the maximum-expected-benefit-first strategy (§5.1).
func EB() Strategy { return core.MaxEB{} }

// PC returns the maximum-postponing-cost-first strategy (§5.2).
func PC() Strategy { return core.MaxPC{} }

// EBPC returns the combined strategy with weight r ∈ [0,1] (§5.3).
func EBPC(r float64) Strategy { return core.MaxEBPC{R: r} }

// ParseStrategy resolves "fifo", "rl", "eb", "pc", "ebpc" or "ebpc:<r>".
func ParseStrategy(name string) (Strategy, error) { return core.ParseStrategy(name) }

// DefaultParams returns the paper's scheduling parameters (PD = 2 ms,
// ε = 0.05%).
func DefaultParams() Params { return core.DefaultParams() }

// ParseFilter parses a subscription filter such as "A1 < 5 && A2 < 3".
func ParseFilter(src string) (*Filter, error) { return filter.Parse(src) }

// BuildLayeredOverlay constructs the paper's 32-broker, 4-layer mesh
// (Figure 3), or a variant per the config.
func BuildLayeredOverlay(cfg LayeredConfig) (*Overlay, error) {
	return topology.BuildLayered(cfg)
}

// RunSim executes one simulation run to completion and returns its
// metrics.
func RunSim(cfg SimConfig) (Result, error) { return simnet.Run(cfg) }

// SimBackend returns the deterministic discrete-event backend.
func SimBackend() Backend { return simnet.Transport{} }

// LiveBackend returns the live TCP backend: the same deployment plan
// runs as an in-process loopback broker cluster, paced on a wall clock
// compressed by SimConfig.TimeScale.
func LiveBackend() Backend { return livenet.Transport{} }

// RunOn executes one configuration on the chosen backend through the
// unified runtime layer. RunOn(cfg, SimBackend()) is RunSim.
func RunOn(cfg SimConfig, b Backend) (Result, error) { return runtime.Run(cfg, b) }

// RunFigure reproduces one paper figure ("4a", "4b", "5", "5a", "5b",
// "6", "6a", "6b").
func RunFigure(id string, opts ExperimentOptions) ([]*Figure, error) {
	return experiments.Run(id, opts)
}

// RunAllFigures reproduces the full evaluation section.
func RunAllFigures(opts ExperimentOptions) ([]*Figure, error) {
	return experiments.All(opts)
}
