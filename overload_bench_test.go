package bdps

import (
	grt "runtime"
	"sync"
	"testing"
	"time"

	"bdps/internal/core"
	"bdps/internal/filter"
	"bdps/internal/livenet"
	"bdps/internal/msg"
	"bdps/internal/runtime"
	"bdps/internal/vtime"
)

// BenchmarkFlashCrowdThroughput is the overload before/after pair: a
// correlated max-rate blast (the flash crowd, stripped to its essence)
// through the sharded live plane, with and without the overload
// defenses armed. "unprotected" is the baseline pipeline; "protected"
// adds end-to-end backpressure, node-local admission control and
// pressure shedding, reporting the rejected share alongside msgs/sec —
// the run-time cost of keeping queues bounded while the crowd hits.
func BenchmarkFlashCrowdThroughput(b *testing.B) {
	b.Run("unprotected", func(b *testing.B) { benchmarkFlashCrowd(b, false) })
	b.Run("protected", func(b *testing.B) { benchmarkFlashCrowd(b, true) })
}

func benchmarkFlashCrowd(b *testing.B, protected bool) {
	cfg := livenet.ClusterConfig{
		Overlay:   benchChainOverlay(b),
		Scenario:  msg.PSD,
		Strategy:  core.MaxEB{},
		TimeScale: 1e-9,
		Seed:      1,
		Shards:    grt.GOMAXPROCS(0),
	}
	if protected {
		cfg.MaxEgress = 256
		cfg.Admission = runtime.Admission{Enabled: true, Shed: true, MaxQueue: 128}
	}
	c, err := livenet.StartCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()

	sub := &msg.Subscription{ID: 1, Edge: 2, Filter: &filter.Filter{}}
	s, err := livenet.DialSubscriber(c.Addr(2), sub)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	go func() {
		for range s.C() {
		}
	}()
	time.Sleep(100 * time.Millisecond) // subscription flood

	// The crowd: twice the steady harness's publisher count, all
	// blasting at once.
	const nPubs = 8
	pubs := make([]*livenet.Publisher, nPubs)
	for i := range pubs {
		p, err := livenet.DialPublisher(c.Addr(0), msg.NodeID(i))
		if err != nil {
			b.Fatal(err)
		}
		defer p.Close()
		pubs[i] = p
	}
	attrs := msg.NumAttrs(map[string]float64{"A1": 1, "A2": 2})

	b.ReportAllocs()
	b.ResetTimer()

	var wg sync.WaitGroup
	for i, p := range pubs {
		n := b.N / nPubs
		if i < b.N%nPubs {
			n++
		}
		wg.Add(1)
		go func(p *livenet.Publisher, n int) {
			defer wg.Done()
			for j := 0; j < n; j++ {
				if _, err := p.Publish(0, attrs, 1, 60*vtime.Second, nil); err != nil {
					b.Error(err)
					return
				}
			}
		}(p, n)
	}
	wg.Wait()

	deadline := time.Now().Add(2 * time.Minute)
	idle := 0
	for idle < 2 {
		if time.Now().After(deadline) {
			b.Fatalf("cluster did not quiesce:\n%s", c.LoadReport())
		}
		if c.Quiescent(b.N) {
			idle++
		} else {
			idle = 0
		}
		time.Sleep(200 * time.Microsecond)
	}
	b.StopTimer()

	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/sec")
	total := c.TotalStats()
	if protected {
		b.ReportMetric(100*float64(total.PubsRejected)/float64(b.N), "rejected%")
		// Everything the door admitted must be accounted for: delivered,
		// shed under pressure, or dropped by deadline policy.
		accounted := total.Deliveries + total.DropsShed + total.DropsExpired + total.DropsHopeless
		if admitted := b.N - total.PubsRejected; accounted < admitted {
			b.Fatalf("admitted %d, accounted %d", admitted, accounted)
		}
		peak := 0
		for _, n := range c.Nodes {
			if p := n.PeakQueue(); p > peak {
				peak = p
			}
		}
		b.ReportMetric(float64(peak), "peak-queue")
	} else if total.Deliveries < b.N {
		b.Fatalf("delivered %d of %d messages", total.Deliveries, b.N)
	}
}
