module bdps

go 1.23
