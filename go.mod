module bdps

go 1.24
