// Command bdps-pub publishes messages into a live bounded-delay pub/sub
// overlay.
//
// Publish a stream of random-attribute messages (the paper's workload):
//
//	bdps-pub -broker 127.0.0.1:7000 -ingress 0 -rate 10 -count 100 \
//	         -allowed 20s -size 50
//
// Or one message with explicit attributes:
//
//	bdps-pub -broker 127.0.0.1:7000 -ingress 0 -attrs "A1=3.5,A2=7" \
//	         -allowed 10s -payload "hello"
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"bdps/internal/filter"
	"bdps/internal/livenet"
	"bdps/internal/msg"
	"bdps/internal/stats"
	"bdps/internal/vtime"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bdps-pub:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bdps-pub", flag.ContinueOnError)
	var (
		broker  = fs.String("broker", "", "ingress broker address (required)")
		ingress = fs.Int("ingress", 0, "ingress broker node id")
		pubID   = fs.Int("id", 0, "publisher id (message-id namespace)")
		attrs   = fs.String("attrs", "", "explicit attributes, e.g. A1=3.5,A2=7 (default: random per paper)")
		count   = fs.Int("count", 1, "messages to publish")
		rate    = fs.Float64("rate", 10, "messages per minute when count > 1")
		size    = fs.Float64("size", 50, "emulated message size, KB")
		allowed = fs.Duration("allowed", 20*time.Second, "publisher-specified delay bound (0 for SSD)")
		payload = fs.String("payload", "", "payload string")
		seed    = fs.Uint64("seed", 1, "seed for random attributes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *broker == "" {
		return fmt.Errorf("-broker is required")
	}

	p, err := livenet.DialPublisher(*broker, msg.NodeID(*pubID))
	if err != nil {
		return err
	}
	defer p.Close()

	rng := stats.NewStream(*seed)
	interval := time.Duration(0)
	if *count > 1 && *rate > 0 {
		interval = time.Duration(float64(time.Minute) / *rate)
	}

	for i := 0; i < *count; i++ {
		var set msg.AttrSet
		if *attrs != "" {
			set, err = parseAttrs(*attrs)
			if err != nil {
				return err
			}
		} else {
			set = msg.NumAttrs(map[string]float64{
				"A1": rng.Uniform(0, 10),
				"A2": rng.Uniform(0, 10),
			})
		}
		id, err := p.Publish(msg.NodeID(*ingress), set, *size,
			vtime.FromDuration(*allowed), []byte(*payload))
		if err != nil {
			return err
		}
		fmt.Printf("published %d %s\n", id, set)
		if i < *count-1 && interval > 0 {
			time.Sleep(interval)
		}
	}
	return nil
}

func parseAttrs(s string) (msg.AttrSet, error) {
	var set msg.AttrSet
	for _, kv := range strings.Split(s, ",") {
		parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
		if len(parts) != 2 {
			return set, fmt.Errorf("bad attribute %q (want name=value)", kv)
		}
		if f, err := strconv.ParseFloat(parts[1], 64); err == nil {
			set.Set(parts[0], filter.Num(f))
		} else {
			set.Set(parts[0], filter.Str(parts[1]))
		}
	}
	return set, nil
}
