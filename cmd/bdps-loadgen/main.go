// bdps-loadgen drives an in-process live cluster at maximum rate and
// reports data-plane throughput: msgs/sec end to end (injection through
// cluster quiescence) and allocations per message across the whole
// pipeline. TimeScale ≈ 0 turns the emulated link pacing and processing
// delay off, so the measurement isolates the transport itself — decode,
// match, enqueue, schedule, encode, socket writes.
//
// With -compare it benchmarks the classic single-threaded plane and the
// sharded zero-copy plane back to back on the same workload:
//
//	bdps-loadgen -compare -n 20000
//
// Fault flags turn the run into a robustness smoke at full rate: crash
// a broker or take a link down mid-measurement (offsets are wall time
// from the first publish) with heartbeat failure detection on, and the
// pipeline must drain and report instead of wedging:
//
//	bdps-loadgen -n 50000 -kill-broker 1 -kill-at 200ms -heartbeat-interval 50ms
//	bdps-loadgen -n 50000 -link-down 1:2:200ms:400ms -heartbeat-interval 50ms
//
// With -restart-at the killed broker rejoins warm mid-measurement: the
// cluster runs on WAL-backed state, the reborn incarnation replays its
// logged subscription admissions, bumps its epoch, and the surviving
// neighbors re-dial it:
//
//	bdps-loadgen -n 50000 -kill-broker 1 -kill-at 200ms -restart-at 600ms -heartbeat-interval 50ms
//
// Loss flags arm the per-link adversary on every arc — the same
// deterministic loss/dup/reorder model the simulator and the crossval
// tests use — so the reliable channel (retransmission, dedup, FIFO
// healing) is exercised at full data-plane rate:
//
//	bdps-loadgen -n 50000 -link-loss 0.1 -link-dup 0.02 -link-reorder 0.05
//
// All fault offsets must land inside -duration, the wall-time horizon by
// which the run must quiesce; conflicting flags fail fast at parse time.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	grt "runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bdps/internal/core"
	"bdps/internal/filter"
	"bdps/internal/livenet"
	"bdps/internal/msg"
	"bdps/internal/runtime"
	"bdps/internal/stats"
	"bdps/internal/topology"
	"bdps/internal/vtime"
)

func main() {
	var (
		n       = flag.Int("n", 20000, "messages to publish")
		pubs    = flag.Int("pubs", 4, "publishing clients (distinct streams)")
		subs    = flag.Int("subs", 1, "subscribers at the edge broker")
		brokers = flag.Int("brokers", 3, "chain length (ingress → … → edge)")
		shards  = flag.Int("shards", grt.GOMAXPROCS(0), "ingress worker shards per broker; 0 = classic single-threaded plane")
		burst   = flag.Int("burst", 0, "egress burst cap (0 = default)")
		sizeKB  = flag.Float64("size", 1, "emulated message size in KB")
		payload = flag.Int("payload", 0, "payload bytes per message")
		churn   = flag.Float64("churn", 0, "subscription churn: subscribe+unsubscribe flood pairs per second, sustained while publishing (0 = none)")
		agg     = flag.Bool("aggregate", false, "covering-based subscription aggregation: churn subscriptions covered by a resident filter stop flooding the overlay")
		compare = flag.Bool("compare", false, "run the classic plane, then the sharded plane, and report the speedup")

		killBroker = flag.Int("kill-broker", -1, "crash this broker mid-measurement (-1 = no fault)")
		killAt     = flag.Duration("kill-at", 200*time.Millisecond, "wall time after the first publish at which -kill-broker strikes")
		restartAt  = flag.Duration("restart-at", 0, "wall time after the first publish at which the killed broker rejoins warm from its WAL (0 = stays down; requires -kill-broker)")
		linkDown   = flag.String("link-down", "", "transient link outage from:to:start:end in wall time, e.g. 1:2:200ms:400ms")
		hbInterval = flag.Duration("heartbeat-interval", 0, "wall-time heartbeat period for failure detection (0 = off unless a fault is injected, then 100ms)")
		hbTimeout  = flag.Duration("heartbeat-timeout", 0, "wall-time silence before a link is declared dead (0 = 4x interval)")

		linkLoss    = flag.Float64("link-loss", 0, "per-frame loss probability on every link (deterministic adversary)")
		linkDup     = flag.Float64("link-dup", 0, "per-frame duplication probability on every link")
		linkReorder = flag.Float64("link-reorder", 0, "per-frame reorder (adjacent swap) probability on every link")
		duration    = flag.Duration("duration", 5*time.Minute, "run horizon: the cluster must drain within this wall time, and every fault offset must land inside it")

		flashAt    = flag.Duration("flash-at", 200*time.Millisecond, "flash crowd: wall time after the first publish at which the crowd arrives")
		flashWidth = flag.Duration("flash-width", 500*time.Millisecond, "flash crowd: how long the crowd stays")
		flashPubs  = flag.Int("flash-pubs", 0, "flash crowd: extra publishers blasting at maximum rate for the window (0 = no flash crowd)")
		flashSubs  = flag.Int("flash-subs", 0, "flash crowd: burst subscribers joining at onset and leaving at window end")

		admission = flag.Bool("admission", false, "node-local admission control: the ingress turns publisher frames away while its output queues sit at or above -max-queue")
		shed      = flag.Bool("shed", false, "graceful degradation: brokers shed their worst-scored queue entries above the pressure threshold")
		maxQueue  = flag.Int("max-queue", 0, "admission / pressure threshold in queue entries (0 = default 256)")
		maxEgress = flag.Int("max-egress", 0, "end-to-end backpressure: stall ingress reads while total output-queue occupancy is at or above this (0 = unbounded)")

		metricsAddr = flag.String("metrics", "", "serve GET /metrics (Prometheus text) on this address for the run, e.g. 127.0.0.1:9090")
	)
	flag.Parse()
	cfg := loadCfg{
		n: *n, pubs: *pubs, subs: *subs, brokers: *brokers,
		shards: *shards, burst: *burst, sizeKB: *sizeKB, payload: *payload,
		churn: *churn, aggregate: *agg,
		killBroker: *killBroker, killAt: *killAt, restartAt: *restartAt, linkDown: *linkDown,
		hbInterval: *hbInterval, hbTimeout: *hbTimeout,
		linkLoss: *linkLoss, linkDup: *linkDup, linkReorder: *linkReorder,
		duration: *duration,
		flashAt:  *flashAt, flashWidth: *flashWidth,
		flashPubs: *flashPubs, flashSubs: *flashSubs,
		admission: *admission, shed: *shed,
		maxQueue: *maxQueue, maxEgress: *maxEgress,
		metricsAddr: *metricsAddr,
	}
	// Horizon conflicts are flag errors, not drain timeouts: a fault
	// scheduled beyond -duration could never strike before the drain
	// deadline declared the run wedged, so refuse it up front.
	if err := cfg.validateHorizon(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}
	if *compare {
		legacy := cfg
		legacy.shards = 0
		before := must(run(legacy))
		report("classic", legacy, before)
		after := must(run(cfg))
		report(fmt.Sprintf("sharded(%d)", cfg.shards), cfg, after)
		fmt.Printf("speedup: %.2fx msgs/sec, %.1fx fewer allocs/msg\n",
			after.msgsPerSec/before.msgsPerSec, before.allocsPerMsg/after.allocsPerMsg)
		return
	}
	report(planeName(cfg.shards), cfg, must(run(cfg)))
}

func planeName(shards int) string {
	if shards == 0 {
		return "classic"
	}
	return fmt.Sprintf("sharded(%d)", shards)
}

func must(r result, err error) result {
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func report(plane string, cfg loadCfg, r result) {
	fmt.Printf("%-11s %8d msgs in %8.3fs  %9.0f msgs/sec  %6.1f allocs/msg  %8.1f B/msg  (deliveries %d, receptions %d)",
		plane, cfg.n, r.elapsed.Seconds(), r.msgsPerSec, r.allocsPerMsg, r.bytesPerMsg, r.deliveries, r.receptions)
	if cfg.churn > 0 {
		fmt.Printf("  churn %.0f sub+unsub/sec", r.churnPerSec)
	}
	if cfg.faulty() || r.detections > 0 {
		fmt.Printf("  detections %d", r.detections)
		if r.restorations > 0 {
			fmt.Printf(" (%d restored)", r.restorations)
		}
		if r.sendFailed > 0 {
			fmt.Printf("  %d sends lost to crash", r.sendFailed)
		}
	}
	if cfg.restartAt > 0 {
		fmt.Printf("  restart replayed-subs %d  stale-epoch %d", r.replayedSubs, r.link.StaleEpochFrames)
	}
	if cfg.lossy() || r.link.FramesLost > 0 {
		fmt.Printf("  lost %d  retx %d  dup-suppressed %d  reorder-healed %d  abandoned %d",
			r.link.FramesLost, r.link.Retransmits, r.link.DupsSuppressed,
			r.link.ReorderedHealed, r.link.DroppedDeadline)
	}
	if cfg.aggregate {
		fmt.Printf("  floods-suppressed %d  agg-entries %d", r.floodsSuppressed, r.aggEntries)
	}
	if cfg.flashy() {
		fmt.Printf("  flash +%d msgs", r.flashN)
	}
	fmt.Println()
	if cfg.flashy() || cfg.protected() {
		overloadReport(r)
	}
}

// overloadReport prints the drop-cause breakdown and the per-broker SLO
// attainment table an overload or flash-crowd run is judged by.
func overloadReport(r result) {
	t := r.link
	fmt.Printf("drop causes: expired %d  hopeless %d  arrival %d  shed %d  admission-rejected %d\n",
		t.DropsExpired, t.DropsHopeless, t.DropsArrival, t.DropsShed, t.PubsRejected)
	fmt.Println("SLO attainment by broker:")
	fmt.Printf("  %-6s %11s %10s %8s %7s %6s %9s\n",
		"broker", "deliveries", "valid", "attain", "peak-q", "shed", "rejected")
	for _, b := range r.brokers {
		att := 100.0
		if b.stats.Deliveries > 0 {
			att = 100 * float64(b.stats.ValidDeliver) / float64(b.stats.Deliveries)
		}
		fmt.Printf("  %-6d %11d %10d %7.1f%% %7d %6d %9d\n",
			b.id, b.stats.Deliveries, b.stats.ValidDeliver, att,
			b.peak, b.stats.DropsShed, b.stats.PubsRejected)
	}
	att := 100.0
	if t.Deliveries > 0 {
		att = 100 * float64(t.ValidDeliver) / float64(t.Deliveries)
	}
	fmt.Printf("  %-6s %11d %10d %7.1f%%\n", "total", t.Deliveries, t.ValidDeliver, att)
}

type loadCfg struct {
	n, pubs, subs, brokers int
	shards, burst          int
	sizeKB                 float64
	payload                int
	churn                  float64
	aggregate              bool

	killBroker            int
	killAt                time.Duration
	restartAt             time.Duration
	linkDown              string
	hbInterval, hbTimeout time.Duration

	linkLoss, linkDup, linkReorder float64
	duration                       time.Duration

	flashAt, flashWidth  time.Duration
	flashPubs, flashSubs int
	admission, shed      bool
	maxQueue, maxEgress  int
	metricsAddr          string
}

// faulty reports whether the run injects a failure mid-measurement.
func (c loadCfg) faulty() bool { return c.killBroker >= 0 || c.linkDown != "" }

// lossy reports whether the per-link adversary is armed.
func (c loadCfg) lossy() bool { return c.linkLoss > 0 || c.linkDup > 0 || c.linkReorder > 0 }

// flashy reports whether a flash crowd strikes mid-measurement.
func (c loadCfg) flashy() bool { return c.flashPubs > 0 || c.flashSubs > 0 }

// protected reports whether any overload defense is armed.
func (c loadCfg) protected() bool { return c.admission || c.shed || c.maxEgress > 0 }

// validateHorizon rejects fault schedules that cannot complete inside
// the -duration drain horizon, and loss probabilities outside [0,1).
func (c loadCfg) validateHorizon() error {
	if c.duration <= 0 {
		return fmt.Errorf("-duration %v: horizon must be positive", c.duration)
	}
	if c.killBroker >= 0 && c.killAt >= c.duration {
		return fmt.Errorf("-kill-at %v lands beyond the -duration %v horizon", c.killAt, c.duration)
	}
	if c.restartAt > 0 {
		if c.killBroker < 0 {
			return fmt.Errorf("-restart-at needs a crashed broker to restart: pass -kill-broker")
		}
		if c.restartAt <= c.killAt {
			return fmt.Errorf("-restart-at %v must follow -kill-at %v", c.restartAt, c.killAt)
		}
		if c.restartAt >= c.duration {
			return fmt.Errorf("-restart-at %v lands beyond the -duration %v horizon", c.restartAt, c.duration)
		}
	}
	if c.linkDown != "" {
		o, err := parseOutage(c.linkDown)
		if err != nil {
			return fmt.Errorf("-link-down: %w", err)
		}
		if o.end >= c.duration {
			return fmt.Errorf("-link-down window ends at %v, beyond the -duration %v horizon", o.end, c.duration)
		}
	}
	for _, p := range []struct {
		name string
		v    float64
	}{{"-link-loss", c.linkLoss}, {"-link-dup", c.linkDup}, {"-link-reorder", c.linkReorder}} {
		if p.v < 0 || p.v >= 1 {
			return fmt.Errorf("%s %v: probability must be in [0,1)", p.name, p.v)
		}
	}
	if c.flashPubs < 0 || c.flashSubs < 0 {
		return fmt.Errorf("-flash-pubs %d / -flash-subs %d: crowd sizes must be non-negative", c.flashPubs, c.flashSubs)
	}
	if c.flashy() {
		if c.flashAt < 0 || c.flashWidth <= 0 {
			return fmt.Errorf("-flash-at %v / -flash-width %v: the flash window must sit at a non-negative offset with positive width", c.flashAt, c.flashWidth)
		}
		if c.flashAt+c.flashWidth >= c.duration {
			return fmt.Errorf("flash window ends at %v, beyond the -duration %v horizon", c.flashAt+c.flashWidth, c.duration)
		}
	}
	if c.maxQueue < 0 || c.maxEgress < 0 {
		return fmt.Errorf("-max-queue %d / -max-egress %d: thresholds must be non-negative", c.maxQueue, c.maxEgress)
	}
	return nil
}

type result struct {
	elapsed      time.Duration
	msgsPerSec   float64
	allocsPerMsg float64
	bytesPerMsg  float64
	deliveries   int
	receptions   int
	churnPerSec  float64
	detections   int64
	restorations int64
	sendFailed   int64
	replayedSubs int64         // distinct subscriptions a restarted broker replayed from its WAL
	link         livenet.Stats // reliable-channel counters (loss accounting)
	flashN       int           // extra publications the flash crowd injected
	brokers      []brokerStat  // per-broker rows for the SLO table

	floodsSuppressed int // subscribe floods aggregation avoided
	aggEntries       int // live entries standing for >1 subscription
}

// brokerStat is one row of the per-broker SLO attainment table.
type brokerStat struct {
	id    msg.NodeID
	stats livenet.Stats
	peak  int
}

func run(cfg loadCfg) (result, error) {
	if cfg.brokers < 2 {
		return result{}, fmt.Errorf("need at least 2 brokers, got %d", cfg.brokers)
	}
	g := topology.NewGraph(cfg.brokers)
	for i := 0; i < cfg.brokers-1; i++ {
		if err := g.AddLink(msg.NodeID(i), msg.NodeID(i+1), stats.Normal{Mean: 50, Sigma: 5}); err != nil {
			return result{}, err
		}
	}
	var out outage
	if cfg.linkDown != "" {
		o, err := parseOutage(cfg.linkDown)
		if err != nil {
			return result{}, fmt.Errorf("-link-down: %w", err)
		}
		out = o
	}
	if cfg.killBroker >= cfg.brokers {
		return result{}, fmt.Errorf("-kill-broker %d: chain has brokers 0..%d", cfg.killBroker, cfg.brokers-1)
	}

	const timeScale = 1e-9 // pacing off: emulated sleeps round to 0 wall time
	edge := msg.NodeID(cfg.brokers - 1)
	ccfg := livenet.ClusterConfig{
		Overlay:   &topology.Overlay{Graph: g, Ingress: []msg.NodeID{0}, Edges: []msg.NodeID{edge}},
		Scenario:  msg.PSD,
		Strategy:  core.MaxEB{},
		TimeScale: timeScale,
		Seed:      1,
		Shards:    cfg.shards,
		Burst:     cfg.burst,
		Aggregate: cfg.aggregate,
		MaxEgress: cfg.maxEgress,
		Admission: runtime.Admission{
			Enabled:  cfg.admission,
			Shed:     cfg.shed,
			MaxQueue: cfg.maxQueue,
		},
	}
	if cfg.restartAt > 0 {
		// A restart needs durable state to come back from: give every
		// broker a WAL under a run-scoped directory.
		stateRoot, err := os.MkdirTemp("", "bdps-loadgen-state-")
		if err != nil {
			return result{}, err
		}
		defer os.RemoveAll(stateRoot)
		ccfg.StateRoot = stateRoot
	}
	if cfg.lossy() {
		// One wildcard adversary spec; StartCluster arms an independent,
		// seed-deterministic stream on every arc, exactly as the simulator
		// does for the same config.
		ccfg.LinkLoss = &runtime.LinkLoss{
			From: msg.None, To: msg.None,
			Rate: cfg.linkLoss, Dup: cfg.linkDup, Reorder: cfg.linkReorder,
		}
	}
	// The default cluster clock is the wall clock at scale 1, so the
	// heartbeat durations pass through as plain wall time.
	var detections, restorations atomic.Int64
	hb := cfg.hbInterval
	if hb == 0 && cfg.faulty() {
		hb = 100 * time.Millisecond
	}
	if hb > 0 {
		ccfg.Heartbeat = livenet.HeartbeatConfig{
			Interval: vtime.FromDuration(hb),
			Timeout:  vtime.FromDuration(cfg.hbTimeout),
		}
		ccfg.OnPeerEvent = func(ev livenet.PeerEvent) {
			if ev.Restored {
				restorations.Add(1)
			} else {
				detections.Add(1)
			}
		}
	}
	c, err := livenet.StartCluster(ccfg)
	if err != nil {
		return result{}, err
	}
	defer c.Stop()

	if cfg.metricsAddr != "" {
		ms, err := c.ServeMetrics(cfg.metricsAddr)
		if err != nil {
			return result{}, fmt.Errorf("-metrics: %w", err)
		}
		defer ms.Close()
		fmt.Printf("metrics: http://%s/metrics\n", ms.Addr())
	}

	for i := 0; i < cfg.subs; i++ {
		sub := &msg.Subscription{ID: msg.SubID(i + 1), Edge: edge, Filter: &filter.Filter{}}
		s, err := livenet.DialSubscriber(c.Addr(edge), sub)
		if err != nil {
			return result{}, err
		}
		defer s.Close()
	}
	time.Sleep(100 * time.Millisecond) // subscription flood

	publishers := make([]*livenet.Publisher, cfg.pubs)
	for i := range publishers {
		p, err := livenet.DialPublisher(c.Addr(0), msg.NodeID(i))
		if err != nil {
			return result{}, err
		}
		defer p.Close()
		publishers[i] = p
	}
	attrs := msg.NumAttrs(map[string]float64{"A1": 1, "A2": 2})
	var body []byte
	if cfg.payload > 0 {
		body = make([]byte, cfg.payload)
	}

	// Sustained subscription churn concurrent with the measurement: a
	// churner floods subscribe/unsubscribe pairs at the edge broker for
	// the whole run, mutating every broker's routing table in place. The
	// churn filters never match the published attributes, so delivery
	// counts are untouched and any throughput delta is pure mutation
	// contention.
	churnStop := make(chan struct{})
	churnDone := make(chan struct{})
	var churnOps atomic.Int64
	if cfg.churn > 0 {
		conn, err := net.Dial("tcp", c.Addr(edge))
		if err != nil {
			return result{}, err
		}
		defer conn.Close()
		hello := msg.AppendHello(nil, msg.RoleSubscriber, msg.NodeID(1<<20), 0)
		if err := msg.WriteFrame(conn, msg.FrameHello, hello); err != nil {
			return result{}, err
		}
		go func() {
			defer close(churnDone)
			interval := time.Duration(float64(time.Second) / cfg.churn)
			// All per-pair state is reused so the churner adds no heap
			// traffic inside the MemStats measurement window — the
			// reported allocs/msg stay attributable to the data plane.
			var subBuf, unsubBuf []byte
			sub := msg.Subscription{
				ID:     msg.SubID(1 << 20),
				Edge:   edge,
				Filter: filter.MustParse("A1 < 0.5"), // never matches A1 = 1
			}
			if cfg.aggregate {
				// Park a resident coverer at the edge, then churn strictly
				// narrower filters under it: every subsequent pair is a
				// local-table mutation at the edge broker, zero flood
				// frames across the chain.
				cover, err := msg.AppendSubscription(nil, &sub)
				if err != nil || msg.WriteFrame(conn, msg.FrameSubscribe, cover) != nil {
					return
				}
				sub.ID++
				sub.Filter = filter.MustParse("A1 < 0.25")
			}
			next := time.Now()
			for {
				select {
				case <-churnStop:
					return
				default:
				}
				body, err := msg.AppendSubscription(subBuf[:0], &sub)
				if err != nil {
					return
				}
				subBuf = body
				if msg.WriteFrame(conn, msg.FrameSubscribe, body) != nil {
					return
				}
				unsubBuf = msg.AppendUnsubscribe(unsubBuf[:0], sub.ID)
				if msg.WriteFrame(conn, msg.FrameUnsubscribe, unsubBuf) != nil {
					return
				}
				sub.ID++
				churnOps.Add(1)
				next = next.Add(interval)
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
			}
		}()
	}

	grt.GC()
	var before, after grt.MemStats
	grt.ReadMemStats(&before)
	start := time.Now()
	churnStart := churnOps.Load() // count only pairs inside the window

	// Injected faults are armed on wall timers relative to the first
	// publish, mirroring the runtime transport's fault schedule.
	var faultTimers []*time.Timer
	var replayedSubs atomic.Int64
	if cfg.killBroker >= 0 {
		id := msg.NodeID(cfg.killBroker)
		faultTimers = append(faultTimers, time.AfterFunc(cfg.killAt, func() { c.Node(id).Crash() }))
		if cfg.restartAt > 0 {
			faultTimers = append(faultTimers, time.AfterFunc(cfg.restartAt, func() {
				n, err := c.RestartNode(id, nil)
				if err != nil {
					fmt.Fprintf(os.Stderr, "warning: restart of broker %d failed: %v\n", id, err)
					return
				}
				if st, ok := n.Restarted(); ok {
					seen := make(map[msg.SubID]bool, len(st.Entries))
					for _, e := range st.Entries {
						seen[e.Sub.ID] = true
					}
					replayedSubs.Store(int64(len(seen)))
				}
			}))
		}
	}
	if cfg.linkDown != "" {
		faultTimers = append(faultTimers,
			time.AfterFunc(out.start, func() { c.Nodes[out.from].SetLinkDown(out.to, true) }),
			time.AfterFunc(out.end, func() { c.Nodes[out.from].SetLinkDown(out.to, false) }))
	}
	defer func() {
		for _, t := range faultTimers {
			t.Stop()
		}
	}()

	// The flash crowd arrives mid-measurement: burst subscribers join at
	// the edge (widening every publication's fan), extra publishers
	// blast at maximum rate for the window, then the crowd leaves. The
	// extra publications count toward the quiescence target; with
	// admission on, the ingress refuses them while its queues sit above
	// the threshold, and a refused frame still counts as received.
	var flashN atomic.Int64
	flashDone := make(chan struct{})
	if cfg.flashy() {
		faultTimers = append(faultTimers, time.AfterFunc(cfg.flashAt, func() {
			defer close(flashDone)
			var crowd []interface{ Close() error }
			for i := 0; i < cfg.flashSubs; i++ {
				sub := &msg.Subscription{
					ID:       msg.SubID(8<<20 + i),
					Edge:     edge,
					Filter:   &filter.Filter{},
					Deadline: 60 * vtime.Second,
				}
				if s, err := livenet.DialSubscriber(c.Addr(edge), sub); err == nil {
					crowd = append(crowd, s)
				}
			}
			stopAt := time.Now().Add(cfg.flashWidth)
			var fwg sync.WaitGroup
			for i := 0; i < cfg.flashPubs; i++ {
				p, err := livenet.DialPublisher(c.Addr(0), msg.NodeID(1000+i))
				if err != nil {
					continue
				}
				crowd = append(crowd, p)
				fwg.Add(1)
				go func(p *livenet.Publisher) {
					defer fwg.Done()
					for time.Now().Before(stopAt) {
						if _, err := p.Publish(0, attrs, cfg.sizeKB, 60*vtime.Second, body); err != nil {
							return
						}
						flashN.Add(1)
					}
				}(p)
			}
			fwg.Wait()
			for _, cl := range crowd {
				cl.Close()
			}
		}))
	} else {
		close(flashDone)
	}

	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	var sendFailed atomic.Int64
	for i, p := range publishers {
		k := cfg.n / cfg.pubs
		if i < cfg.n%cfg.pubs {
			k++
		}
		wg.Add(1)
		go func(p *livenet.Publisher, k int) {
			defer wg.Done()
			for j := 0; j < k; j++ {
				if _, err := p.Publish(0, attrs, cfg.sizeKB, 60*vtime.Second, body); err != nil {
					if cfg.faulty() {
						// A crashed ingress takes its publisher connections
						// with it; charge the rest of the stream to the
						// fault instead of aborting the measurement.
						sendFailed.Add(int64(k - j))
						return
					}
					errOnce.Do(func() { firstErr = err })
					return
				}
			}
		}(p, k)
	}
	wg.Wait()
	if firstErr != nil {
		return result{}, firstErr
	}
	<-flashDone
	injected := cfg.n + int(flashN.Load())

	// A crashed broker never accounts its inbound frames, so faulty runs
	// drain on sustained local idleness (Settled) instead of the exact
	// cross-node frame accounting (Quiescent). Settled can blink true
	// between hops, hence the longer consecutive-idle requirement. The
	// measurement also stays open through the fault schedule plus the
	// detection deadline, so the monitors confirm the silence before the
	// cluster shuts down.
	needIdle, pause := 2, 200*time.Microsecond
	var detectBy time.Time
	if cfg.faulty() {
		needIdle, pause = 25, 2*time.Millisecond
		tmo := cfg.hbTimeout
		if tmo == 0 {
			tmo = 4 * hb
		}
		last := out.end
		if cfg.killBroker >= 0 && cfg.killAt > last {
			last = cfg.killAt
		}
		if cfg.restartAt > last {
			last = cfg.restartAt
		}
		detectBy = start.Add(last + tmo + 2*hb)
	}
	deadline := time.Now().Add(cfg.duration)
	idle := 0
	for idle < needIdle {
		if time.Now().After(deadline) {
			return result{}, fmt.Errorf("cluster did not quiesce:\n%s", c.LoadReport())
		}
		quiet := c.Quiescent(injected)
		if cfg.faulty() {
			quiet = c.Settled() && time.Now().After(detectBy)
		}
		if quiet {
			idle++
		} else {
			idle = 0
		}
		time.Sleep(pause)
	}
	elapsed := time.Since(start)
	churned := churnOps.Load() - churnStart
	grt.ReadMemStats(&after)
	if cfg.churn > 0 {
		close(churnStop)
		<-churnDone
	}

	total := c.TotalStats()
	if !cfg.faulty() && !cfg.protected() && total.Deliveries < cfg.n*cfg.subs {
		fmt.Fprintf(os.Stderr, "warning: delivered %d of %d expected\n", total.Deliveries, cfg.n*cfg.subs)
	}
	brokerRows := make([]brokerStat, cfg.brokers)
	for i := range brokerRows {
		node := c.Node(msg.NodeID(i)) // locked: a restart swaps the node map mid-run
		brokerRows[i] = brokerStat{
			id:    msg.NodeID(i),
			stats: node.Stats(),
			peak:  node.PeakQueue(),
		}
	}
	return result{
		elapsed:      elapsed,
		msgsPerSec:   float64(cfg.n) / elapsed.Seconds(),
		allocsPerMsg: float64(after.Mallocs-before.Mallocs) / float64(cfg.n),
		bytesPerMsg:  float64(after.TotalAlloc-before.TotalAlloc) / float64(cfg.n),
		deliveries:   total.Deliveries,
		receptions:   total.Receptions,
		churnPerSec:  float64(churned) / elapsed.Seconds(),
		detections:   detections.Load(),
		restorations: restorations.Load(),
		sendFailed:   sendFailed.Load(),
		replayedSubs: replayedSubs.Load(),
		link:         total,
		flashN:       int(flashN.Load()),
		brokers:      brokerRows,

		floodsSuppressed: total.FloodsSuppressed,
		aggEntries:       c.AggregatedEntries(),
	}, nil
}

// outage is a parsed -link-down spec; offsets are wall time from the
// first publish.
type outage struct {
	from, to   msg.NodeID
	start, end time.Duration
}

func parseOutage(s string) (outage, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 4 {
		return outage{}, fmt.Errorf("want from:to:start:end (e.g. 1:2:200ms:400ms), got %q", s)
	}
	from, err := strconv.ParseUint(strings.TrimSpace(parts[0]), 10, 32)
	if err != nil {
		return outage{}, fmt.Errorf("from: %w", err)
	}
	to, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 10, 32)
	if err != nil {
		return outage{}, fmt.Errorf("to: %w", err)
	}
	start, err := time.ParseDuration(strings.TrimSpace(parts[2]))
	if err != nil {
		return outage{}, fmt.Errorf("start: %w", err)
	}
	end, err := time.ParseDuration(strings.TrimSpace(parts[3]))
	if err != nil {
		return outage{}, fmt.Errorf("end: %w", err)
	}
	if end <= start {
		return outage{}, fmt.Errorf("end %v must follow start %v", end, start)
	}
	return outage{from: msg.NodeID(from), to: msg.NodeID(to), start: start, end: end}, nil
}
