// bdps-loadgen drives an in-process live cluster at maximum rate and
// reports data-plane throughput: msgs/sec end to end (injection through
// cluster quiescence) and allocations per message across the whole
// pipeline. TimeScale ≈ 0 turns the emulated link pacing and processing
// delay off, so the measurement isolates the transport itself — decode,
// match, enqueue, schedule, encode, socket writes.
//
// With -compare it benchmarks the classic single-threaded plane and the
// sharded zero-copy plane back to back on the same workload:
//
//	bdps-loadgen -compare -n 20000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	grt "runtime"
	"sync"
	"time"

	"bdps/internal/core"
	"bdps/internal/filter"
	"bdps/internal/livenet"
	"bdps/internal/msg"
	"bdps/internal/stats"
	"bdps/internal/topology"
	"bdps/internal/vtime"
)

func main() {
	var (
		n       = flag.Int("n", 20000, "messages to publish")
		pubs    = flag.Int("pubs", 4, "publishing clients (distinct streams)")
		subs    = flag.Int("subs", 1, "subscribers at the edge broker")
		brokers = flag.Int("brokers", 3, "chain length (ingress → … → edge)")
		shards  = flag.Int("shards", grt.GOMAXPROCS(0), "ingress worker shards per broker; 0 = classic single-threaded plane")
		burst   = flag.Int("burst", 0, "egress burst cap (0 = default)")
		sizeKB  = flag.Float64("size", 1, "emulated message size in KB")
		payload = flag.Int("payload", 0, "payload bytes per message")
		compare = flag.Bool("compare", false, "run the classic plane, then the sharded plane, and report the speedup")
	)
	flag.Parse()
	cfg := loadCfg{
		n: *n, pubs: *pubs, subs: *subs, brokers: *brokers,
		shards: *shards, burst: *burst, sizeKB: *sizeKB, payload: *payload,
	}
	if *compare {
		legacy := cfg
		legacy.shards = 0
		before := must(run(legacy))
		report("classic", legacy, before)
		after := must(run(cfg))
		report(fmt.Sprintf("sharded(%d)", cfg.shards), cfg, after)
		fmt.Printf("speedup: %.2fx msgs/sec, %.1fx fewer allocs/msg\n",
			after.msgsPerSec/before.msgsPerSec, before.allocsPerMsg/after.allocsPerMsg)
		return
	}
	report(planeName(cfg.shards), cfg, must(run(cfg)))
}

func planeName(shards int) string {
	if shards == 0 {
		return "classic"
	}
	return fmt.Sprintf("sharded(%d)", shards)
}

func must(r result, err error) result {
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func report(plane string, cfg loadCfg, r result) {
	fmt.Printf("%-11s %8d msgs in %8.3fs  %9.0f msgs/sec  %6.1f allocs/msg  %8.1f B/msg  (deliveries %d, receptions %d)\n",
		plane, cfg.n, r.elapsed.Seconds(), r.msgsPerSec, r.allocsPerMsg, r.bytesPerMsg, r.deliveries, r.receptions)
}

type loadCfg struct {
	n, pubs, subs, brokers int
	shards, burst          int
	sizeKB                 float64
	payload                int
}

type result struct {
	elapsed      time.Duration
	msgsPerSec   float64
	allocsPerMsg float64
	bytesPerMsg  float64
	deliveries   int
	receptions   int
}

func run(cfg loadCfg) (result, error) {
	if cfg.brokers < 2 {
		return result{}, fmt.Errorf("need at least 2 brokers, got %d", cfg.brokers)
	}
	g := topology.NewGraph(cfg.brokers)
	for i := 0; i < cfg.brokers-1; i++ {
		if err := g.AddLink(msg.NodeID(i), msg.NodeID(i+1), stats.Normal{Mean: 50, Sigma: 5}); err != nil {
			return result{}, err
		}
	}
	edge := msg.NodeID(cfg.brokers - 1)
	c, err := livenet.StartCluster(livenet.ClusterConfig{
		Overlay:   &topology.Overlay{Graph: g, Ingress: []msg.NodeID{0}, Edges: []msg.NodeID{edge}},
		Scenario:  msg.PSD,
		Strategy:  core.MaxEB{},
		TimeScale: 1e-9, // pacing off: emulated sleeps round to 0 wall time
		Seed:      1,
		Shards:    cfg.shards,
		Burst:     cfg.burst,
	})
	if err != nil {
		return result{}, err
	}
	defer c.Stop()

	for i := 0; i < cfg.subs; i++ {
		sub := &msg.Subscription{ID: msg.SubID(i + 1), Edge: edge, Filter: &filter.Filter{}}
		s, err := livenet.DialSubscriber(c.Addr(edge), sub)
		if err != nil {
			return result{}, err
		}
		defer s.Close()
	}
	time.Sleep(100 * time.Millisecond) // subscription flood

	publishers := make([]*livenet.Publisher, cfg.pubs)
	for i := range publishers {
		p, err := livenet.DialPublisher(c.Addr(0), msg.NodeID(i))
		if err != nil {
			return result{}, err
		}
		defer p.Close()
		publishers[i] = p
	}
	attrs := msg.NumAttrs(map[string]float64{"A1": 1, "A2": 2})
	var body []byte
	if cfg.payload > 0 {
		body = make([]byte, cfg.payload)
	}

	grt.GC()
	var before, after grt.MemStats
	grt.ReadMemStats(&before)
	start := time.Now()

	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	for i, p := range publishers {
		k := cfg.n / cfg.pubs
		if i < cfg.n%cfg.pubs {
			k++
		}
		wg.Add(1)
		go func(p *livenet.Publisher, k int) {
			defer wg.Done()
			for j := 0; j < k; j++ {
				if _, err := p.Publish(0, attrs, cfg.sizeKB, 60*vtime.Second, body); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
			}
		}(p, k)
	}
	wg.Wait()
	if firstErr != nil {
		return result{}, firstErr
	}

	deadline := time.Now().Add(5 * time.Minute)
	idle := 0
	for idle < 2 {
		if time.Now().After(deadline) {
			return result{}, fmt.Errorf("cluster did not quiesce")
		}
		if c.Quiescent(cfg.n) {
			idle++
		} else {
			idle = 0
		}
		time.Sleep(200 * time.Microsecond)
	}
	elapsed := time.Since(start)
	grt.ReadMemStats(&after)

	total := c.TotalStats()
	if total.Deliveries < cfg.n*cfg.subs {
		fmt.Fprintf(os.Stderr, "warning: delivered %d of %d expected\n", total.Deliveries, cfg.n*cfg.subs)
	}
	return result{
		elapsed:      elapsed,
		msgsPerSec:   float64(cfg.n) / elapsed.Seconds(),
		allocsPerMsg: float64(after.Mallocs-before.Mallocs) / float64(cfg.n),
		bytesPerMsg:  float64(after.TotalAlloc-before.TotalAlloc) / float64(cfg.n),
		deliveries:   total.Deliveries,
		receptions:   total.Receptions,
	}, nil
}
