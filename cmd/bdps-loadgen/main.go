// bdps-loadgen drives an in-process live cluster at maximum rate and
// reports data-plane throughput: msgs/sec end to end (injection through
// cluster quiescence) and allocations per message across the whole
// pipeline. TimeScale ≈ 0 turns the emulated link pacing and processing
// delay off, so the measurement isolates the transport itself — decode,
// match, enqueue, schedule, encode, socket writes.
//
// With -compare it benchmarks the classic single-threaded plane and the
// sharded zero-copy plane back to back on the same workload:
//
//	bdps-loadgen -compare -n 20000
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	grt "runtime"
	"sync"
	"sync/atomic"
	"time"

	"bdps/internal/core"
	"bdps/internal/filter"
	"bdps/internal/livenet"
	"bdps/internal/msg"
	"bdps/internal/stats"
	"bdps/internal/topology"
	"bdps/internal/vtime"
)

func main() {
	var (
		n       = flag.Int("n", 20000, "messages to publish")
		pubs    = flag.Int("pubs", 4, "publishing clients (distinct streams)")
		subs    = flag.Int("subs", 1, "subscribers at the edge broker")
		brokers = flag.Int("brokers", 3, "chain length (ingress → … → edge)")
		shards  = flag.Int("shards", grt.GOMAXPROCS(0), "ingress worker shards per broker; 0 = classic single-threaded plane")
		burst   = flag.Int("burst", 0, "egress burst cap (0 = default)")
		sizeKB  = flag.Float64("size", 1, "emulated message size in KB")
		payload = flag.Int("payload", 0, "payload bytes per message")
		churn   = flag.Float64("churn", 0, "subscription churn: subscribe+unsubscribe flood pairs per second, sustained while publishing (0 = none)")
		compare = flag.Bool("compare", false, "run the classic plane, then the sharded plane, and report the speedup")
	)
	flag.Parse()
	cfg := loadCfg{
		n: *n, pubs: *pubs, subs: *subs, brokers: *brokers,
		shards: *shards, burst: *burst, sizeKB: *sizeKB, payload: *payload,
		churn: *churn,
	}
	if *compare {
		legacy := cfg
		legacy.shards = 0
		before := must(run(legacy))
		report("classic", legacy, before)
		after := must(run(cfg))
		report(fmt.Sprintf("sharded(%d)", cfg.shards), cfg, after)
		fmt.Printf("speedup: %.2fx msgs/sec, %.1fx fewer allocs/msg\n",
			after.msgsPerSec/before.msgsPerSec, before.allocsPerMsg/after.allocsPerMsg)
		return
	}
	report(planeName(cfg.shards), cfg, must(run(cfg)))
}

func planeName(shards int) string {
	if shards == 0 {
		return "classic"
	}
	return fmt.Sprintf("sharded(%d)", shards)
}

func must(r result, err error) result {
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func report(plane string, cfg loadCfg, r result) {
	fmt.Printf("%-11s %8d msgs in %8.3fs  %9.0f msgs/sec  %6.1f allocs/msg  %8.1f B/msg  (deliveries %d, receptions %d)",
		plane, cfg.n, r.elapsed.Seconds(), r.msgsPerSec, r.allocsPerMsg, r.bytesPerMsg, r.deliveries, r.receptions)
	if cfg.churn > 0 {
		fmt.Printf("  churn %.0f sub+unsub/sec", r.churnPerSec)
	}
	fmt.Println()
}

type loadCfg struct {
	n, pubs, subs, brokers int
	shards, burst          int
	sizeKB                 float64
	payload                int
	churn                  float64
}

type result struct {
	elapsed      time.Duration
	msgsPerSec   float64
	allocsPerMsg float64
	bytesPerMsg  float64
	deliveries   int
	receptions   int
	churnPerSec  float64
}

func run(cfg loadCfg) (result, error) {
	if cfg.brokers < 2 {
		return result{}, fmt.Errorf("need at least 2 brokers, got %d", cfg.brokers)
	}
	g := topology.NewGraph(cfg.brokers)
	for i := 0; i < cfg.brokers-1; i++ {
		if err := g.AddLink(msg.NodeID(i), msg.NodeID(i+1), stats.Normal{Mean: 50, Sigma: 5}); err != nil {
			return result{}, err
		}
	}
	edge := msg.NodeID(cfg.brokers - 1)
	c, err := livenet.StartCluster(livenet.ClusterConfig{
		Overlay:   &topology.Overlay{Graph: g, Ingress: []msg.NodeID{0}, Edges: []msg.NodeID{edge}},
		Scenario:  msg.PSD,
		Strategy:  core.MaxEB{},
		TimeScale: 1e-9, // pacing off: emulated sleeps round to 0 wall time
		Seed:      1,
		Shards:    cfg.shards,
		Burst:     cfg.burst,
	})
	if err != nil {
		return result{}, err
	}
	defer c.Stop()

	for i := 0; i < cfg.subs; i++ {
		sub := &msg.Subscription{ID: msg.SubID(i + 1), Edge: edge, Filter: &filter.Filter{}}
		s, err := livenet.DialSubscriber(c.Addr(edge), sub)
		if err != nil {
			return result{}, err
		}
		defer s.Close()
	}
	time.Sleep(100 * time.Millisecond) // subscription flood

	publishers := make([]*livenet.Publisher, cfg.pubs)
	for i := range publishers {
		p, err := livenet.DialPublisher(c.Addr(0), msg.NodeID(i))
		if err != nil {
			return result{}, err
		}
		defer p.Close()
		publishers[i] = p
	}
	attrs := msg.NumAttrs(map[string]float64{"A1": 1, "A2": 2})
	var body []byte
	if cfg.payload > 0 {
		body = make([]byte, cfg.payload)
	}

	// Sustained subscription churn concurrent with the measurement: a
	// churner floods subscribe/unsubscribe pairs at the edge broker for
	// the whole run, mutating every broker's routing table in place. The
	// churn filters never match the published attributes, so delivery
	// counts are untouched and any throughput delta is pure mutation
	// contention.
	churnStop := make(chan struct{})
	churnDone := make(chan struct{})
	var churnOps atomic.Int64
	if cfg.churn > 0 {
		conn, err := net.Dial("tcp", c.Addr(edge))
		if err != nil {
			return result{}, err
		}
		defer conn.Close()
		hello := msg.AppendHello(nil, msg.RoleSubscriber, msg.NodeID(1<<20))
		if err := msg.WriteFrame(conn, msg.FrameHello, hello); err != nil {
			return result{}, err
		}
		go func() {
			defer close(churnDone)
			interval := time.Duration(float64(time.Second) / cfg.churn)
			// All per-pair state is reused so the churner adds no heap
			// traffic inside the MemStats measurement window — the
			// reported allocs/msg stay attributable to the data plane.
			var subBuf, unsubBuf []byte
			sub := msg.Subscription{
				ID:     msg.SubID(1 << 20),
				Edge:   edge,
				Filter: filter.MustParse("A1 < 0.5"), // never matches A1 = 1
			}
			next := time.Now()
			for {
				select {
				case <-churnStop:
					return
				default:
				}
				body, err := msg.AppendSubscription(subBuf[:0], &sub)
				if err != nil {
					return
				}
				subBuf = body
				if msg.WriteFrame(conn, msg.FrameSubscribe, body) != nil {
					return
				}
				unsubBuf = msg.AppendUnsubscribe(unsubBuf[:0], sub.ID)
				if msg.WriteFrame(conn, msg.FrameUnsubscribe, unsubBuf) != nil {
					return
				}
				sub.ID++
				churnOps.Add(1)
				next = next.Add(interval)
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
			}
		}()
	}

	grt.GC()
	var before, after grt.MemStats
	grt.ReadMemStats(&before)
	start := time.Now()
	churnStart := churnOps.Load() // count only pairs inside the window

	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	for i, p := range publishers {
		k := cfg.n / cfg.pubs
		if i < cfg.n%cfg.pubs {
			k++
		}
		wg.Add(1)
		go func(p *livenet.Publisher, k int) {
			defer wg.Done()
			for j := 0; j < k; j++ {
				if _, err := p.Publish(0, attrs, cfg.sizeKB, 60*vtime.Second, body); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
			}
		}(p, k)
	}
	wg.Wait()
	if firstErr != nil {
		return result{}, firstErr
	}

	deadline := time.Now().Add(5 * time.Minute)
	idle := 0
	for idle < 2 {
		if time.Now().After(deadline) {
			return result{}, fmt.Errorf("cluster did not quiesce")
		}
		if c.Quiescent(cfg.n) {
			idle++
		} else {
			idle = 0
		}
		time.Sleep(200 * time.Microsecond)
	}
	elapsed := time.Since(start)
	churned := churnOps.Load() - churnStart
	grt.ReadMemStats(&after)
	if cfg.churn > 0 {
		close(churnStop)
		<-churnDone
	}

	total := c.TotalStats()
	if total.Deliveries < cfg.n*cfg.subs {
		fmt.Fprintf(os.Stderr, "warning: delivered %d of %d expected\n", total.Deliveries, cfg.n*cfg.subs)
	}
	return result{
		elapsed:      elapsed,
		msgsPerSec:   float64(cfg.n) / elapsed.Seconds(),
		allocsPerMsg: float64(after.Mallocs-before.Mallocs) / float64(cfg.n),
		bytesPerMsg:  float64(after.TotalAlloc-before.TotalAlloc) / float64(cfg.n),
		deliveries:   total.Deliveries,
		receptions:   total.Receptions,
		churnPerSec:  float64(churned) / elapsed.Seconds(),
	}, nil
}
