// Command bdps-sim reproduces the paper's evaluation figures on the
// discrete-event simulator, and runs individual configurations for
// exploration.
//
// Reproduce a figure (text table to stdout, optional CSV files; figure
// cells run concurrently on all cores by default, -parallel N caps it
// and -parallel 1 forces the sequential harness — output is identical
// either way):
//
//	bdps-sim -figure 6 -duration 2h -seeds 1,2,3
//	bdps-sim -figure all -parallel 8 -csv results/
//
// Run a single configuration verbosely:
//
//	bdps-sim -single -scenario ssd -strategy ebpc:0.5 -rate 12 -seed 7
//
// Every mode also runs on the live TCP backend through the unified
// runtime layer: -backend live deploys the same plan as an in-process
// loopback broker cluster and paces it at -timescale wall seconds per
// emulated second (keep the window short):
//
//	bdps-sim -single -backend live -timescale 0.002 -duration 2m -rate 6
//
// Ablations pass through: -multipath 2, -measure 100, -linkmodel gamma,
// -epsilon 0 (disable invalid-message detection).
//
// Fault injection and self-healing (single mode, both backends): crash
// brokers or take a link down mid-run, then let the control plane
// detect the failure, repair the topology and renegotiate delay bounds:
//
//	bdps-sim -single -rate 6 -duration 2m -kill-broker 4 -kill-at 30s -recover -renegotiate -timeline 30s
//	bdps-sim -single -link-down 2:6:30s:80s -recover
//
// A crashed broker can rejoin warm from its durable state: -restart-broker
// replays the routing entries it logged before the crash, bumps its
// incarnation epoch and lets the repair engine route back through it.
// The report then carries the recovery ledger (replayed subscriptions,
// resumed sessions, replayed messages, stale-epoch rejections):
//
//	bdps-sim -single -rate 6 -duration 2m -kill-broker 4 -kill-at 30s \
//	    -restart-broker 4 -restart-at 60s -recover -renegotiate -timeline 30s
//
// On the live backend keep heartbeat-timeout × timescale well above
// scheduler jitter (tens of milliseconds of wall time), or every link
// looks dead:
//
//	bdps-sim -single -backend live -timescale 0.01 -duration 2m -rate 6 \
//	    -kill-broker 4 -kill-at 30s -recover -heartbeat-timeout 8s
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"bdps/internal/core"
	"bdps/internal/experiments"
	"bdps/internal/livenet"
	"bdps/internal/msg"
	"bdps/internal/runtime"
	"bdps/internal/simnet"
	"bdps/internal/topology"
	"bdps/internal/trace"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bdps-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bdps-sim", flag.ContinueOnError)
	var (
		figure   = fs.String("figure", "", "figure to reproduce: 4a, 4b, 5, 5a, 5b, 6, 6a, 6b, all")
		ablation = fs.String("ablation", "", "ablation to run: epsilon, measure, multipath, linkmodel, topology, fairness, hotspot, churn, recovery, loss, overload, restart, all")
		claims   = fs.Bool("claims", false, "re-run the evaluation and check the paper's claims")
		single   = fs.Bool("single", false, "run a single configuration instead of a figure")
		topoDump = fs.Bool("dump-topology", false, "print the layered overlay as JSON and exit")
		traceOut = fs.String("trace", "", "write a JSONL event trace (single mode)")

		backend    = fs.String("backend", "sim", "runtime backend: sim (discrete-event) or live (loopback TCP overlay)")
		timescale  = fs.Float64("timescale", 0.001, "live backend: wall seconds per emulated second")
		liveShards = fs.Int("live-shards", 0, "live backend: ingress worker shards per broker (0 = single-threaded plane)")

		scenario = fs.String("scenario", "psd", "psd, ssd or both (single mode)")
		strategy = fs.String("strategy", "eb", "fifo, rl, eb, pc, ebpc[:r] (single mode)")
		rate     = fs.Float64("rate", 10, "publishing rate, msg/min per publisher (single mode)")
		seed     = fs.Uint64("seed", 1, "seed (single / dump-topology mode)")

		duration = fs.Duration("duration", 2*time.Hour, "publishing window")
		seeds    = fs.String("seeds", "1,2,3", "comma-separated seeds for figures")
		rates    = fs.String("rates", "", "comma-separated rate sweep (figures 5/6)")
		weights  = fs.String("weights", "", "comma-separated r sweep (figure 4)")
		fig4rate = fs.Float64("fig4-rate", 10, "publishing rate for figure 4")
		ebpcW    = fs.String("ebpc-weight", "", "add an EBPC series with this r to the figure 5/6 rate sweeps")
		parallel = fs.Int("parallel", 0, "concurrent simulation runs for figures/ablations/claims (0 = all cores)")

		churnRate = fs.Float64("churn", 0, "subscription churn: subscribe arrivals per minute (0 = static population)")
		churnHalf = fs.Duration("churn-halflife", time.Minute, "subscription churn: lifetime half-life")

		aggregate = fs.Bool("aggregate", false, "covering-based subscription aggregation: forward a subscription only when no resident filter covers it (single mode, both backends)")

		flashAt    = fs.Duration("flash-at", 0, "flash crowd: burst onset within the publishing window (single mode)")
		flashWidth = fs.Duration("flash-width", time.Minute, "flash crowd: burst plateau width")
		flashRamp  = fs.Duration("flash-ramp", 0, "flash crowd: linear ramp up/down around the plateau")
		flashBoost = fs.Float64("flash-boost", 0, "flash crowd: publish-rate multiplier at the peak (0 = no flash crowd)")
		flashSubs  = fs.Int("flash-subs", 0, "flash crowd: burst subscribers arriving per edge broker at onset")
		diurnal    = fs.Float64("diurnal", 0, "sinusoidal diurnal rate modulation amplitude in [0,1)")

		admission = fs.Bool("admission", false, "online admission control: gate publications through the paper's admission test against modeled ingress load (single mode)")
		shed      = fs.Bool("shed", false, "graceful degradation: shed the worst-scored queue entries above the pressure threshold (single mode)")
		maxQueue  = fs.Int("max-queue", 0, "overload protection: per-queue pressure / saturation threshold (0 = default 256)")
		zipfU     = fs.Int("zipf", 0, "draw subscription filters from a Zipf-popular template universe of this size (0 = paper's continuous filters)")
		zipfS     = fs.Float64("zipf-s", 1, "Zipf exponent for -zipf")

		linkLoss    = fs.Float64("link-loss", 0, "per-frame loss probability on every link (single mode, both backends)")
		linkDup     = fs.Float64("link-dup", 0, "per-frame duplication probability on every link (single mode)")
		linkReorder = fs.Float64("link-reorder", 0, "per-frame reorder probability on every link (single mode)")
		retry       = fs.String("retry", "aware", "retransmission policy under loss: aware (deadline-aware), blind, off")

		killBroker    = fs.String("kill-broker", "", "crash these brokers mid-run, comma-separated ids (single mode)")
		killAt        = fs.Duration("kill-at", 30*time.Second, "emulated instant at which -kill-broker crashes strike")
		restartBroker = fs.String("restart-broker", "", "restart these crashed brokers from durable state, comma-separated ids (each must also appear in -kill-broker)")
		restartAt     = fs.Duration("restart-at", 60*time.Second, "emulated instant at which -restart-broker rejoins (must be after -kill-at)")
		linkDown      = fs.String("link-down", "", "transient link outage from:to:start:end, e.g. 2:6:30s:80s (single mode)")
		recov         = fs.Bool("recover", false, "detect failures and repair the routing topology (single mode)")
		renege        = fs.Bool("renegotiate", false, "renegotiate delay bounds on repaired paths (implies -recover)")
		hbInterval    = fs.Duration("heartbeat-interval", 500*time.Millisecond, "failure detection: emulated heartbeat period")
		hbTimeout     = fs.Duration("heartbeat-timeout", 0, "failure detection: silence before a link is declared dead (0 = 4x interval)")
		timeline      = fs.Duration("timeline", 0, "report delivery-over-time in buckets of this emulated width (single mode)")

		pd        = fs.Float64("pd", 2, "processing delay per broker, ms")
		epsilon   = fs.Float64("epsilon", core.DefaultEpsilon, "invalid-message threshold for EB/PC/EBPC (0 disables)")
		multipath = fs.Int("multipath", 0, "K-path routing (0/1 = single path)")
		measure   = fs.Int("measure", 0, "estimate link rates from N measured samples (0 = exact)")
		linkmodel = fs.String("linkmodel", "normal", "link model: normal, fixed, gamma")

		csvDir   = fs.String("csv", "", "directory to write per-figure CSV files")
		progress = fs.Bool("progress", false, "print one line per completed run")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	lm, err := parseLinkModel(*linkmodel)
	if err != nil {
		return err
	}
	bk, err := parseBackend(*backend)
	if err != nil {
		return err
	}
	ts := 0.0
	if !bk.Deterministic() {
		ts = *timescale
	}
	params := core.Params{PD: vtime.Millis(*pd), Epsilon: *epsilon}

	if *topoDump {
		ov, err := topology.BuildLayered(topology.LayeredConfig{Seed: *seed})
		if err != nil {
			return err
		}
		return ov.WriteJSON(os.Stdout)
	}

	if *single {
		sc, err := parseScenario(*scenario)
		if err != nil {
			return err
		}
		st, err := core.ParseStrategy(*strategy)
		if err != nil {
			return err
		}
		p := params
		switch st.(type) {
		case core.FIFO, core.RL:
			p.Epsilon = 0
		}
		cfg := simnet.Config{
			Seed:     *seed,
			Scenario: sc,
			Strategy: st,
			Params:   p,
			Workload: workload.Config{
				RatePerMin: *rate,
				Duration:   vtime.FromDuration(*duration),
				Churn: workload.Churn{
					RatePerMin: *churnRate,
					HalfLife:   vtime.FromDuration(*churnHalf),
				},
				Zipf: workload.Zipf{
					Universe: *zipfU,
					Exponent: *zipfS,
				},
				FlashCrowd: workload.FlashCrowd{
					At:       vtime.FromDuration(*flashAt),
					Width:    vtime.FromDuration(*flashWidth),
					Ramp:     vtime.FromDuration(*flashRamp),
					Boost:    *flashBoost,
					SubBurst: *flashSubs,
					Diurnal:  *diurnal,
				},
			},
			Admission: runtime.Admission{
				Enabled:  *admission,
				Shed:     *shed,
				MaxQueue: *maxQueue,
			},
			Aggregate:      *aggregate,
			Multipath:      *multipath,
			MeasureSamples: *measure,
			LinkModel:      lm,
			TimeScale:      ts,
			LiveShards:     *liveShards,
			IndexedMatch:   *churnRate > 0 || *flashSubs > 0,
			TimelineBucket: vtime.FromDuration(*timeline),
			Recovery: runtime.Recovery{
				Detect:            *recov || *renege,
				Renegotiate:       *renege,
				HeartbeatInterval: vtime.FromDuration(*hbInterval),
				HeartbeatTimeout:  vtime.FromDuration(*hbTimeout),
			},
		}
		if cfg.Faults, err = parseFaults(*killBroker, *killAt, *restartBroker, *restartAt, *linkDown); err != nil {
			return err
		}
		if *linkLoss > 0 || *linkDup > 0 || *linkReorder > 0 {
			cfg.Faults = append(cfg.Faults, runtime.LinkLoss{
				From: msg.None, To: msg.None,
				Rate: *linkLoss, Dup: *linkDup, Reorder: *linkReorder,
			})
		}
		if cfg.Reliability, err = parseRetry(*retry); err != nil {
			return err
		}
		var traceFile *os.File
		if *traceOut != "" {
			traceFile, err = os.Create(*traceOut)
			if err != nil {
				return err
			}
			defer traceFile.Close()
			cfg.Tracer = &trace.JSONL{W: traceFile}
		}
		res, err := runtime.Run(cfg, bk)
		if err != nil {
			return err
		}
		printSingle(res)
		printTimeline(res)
		if j, ok := cfg.Tracer.(*trace.JSONL); ok && j.Err() != nil {
			return fmt.Errorf("writing trace: %w", j.Err())
		}
		return nil
	}

	if *figure == "" && *ablation == "" && !*claims {
		return fmt.Errorf("nothing to do: pass -figure <id>, -ablation <id>, -claims, -single or -dump-topology (see -h)")
	}

	opts := experiments.Options{
		Duration:       vtime.FromDuration(*duration),
		Fig4Rate:       fig4rate,
		Params:         params,
		Multipath:      *multipath,
		MeasureSamples: *measure,
		LinkModel:      lm,
		Churn: workload.Churn{
			RatePerMin: *churnRate,
			HalfLife:   vtime.FromDuration(*churnHalf),
		},
		Parallelism: *parallel,
		Backend:     bk,
		TimeScale:   ts,
		LiveShards:  *liveShards,
	}
	if *ebpcW != "" {
		w, err := strconv.ParseFloat(*ebpcW, 64)
		if err != nil {
			return fmt.Errorf("-ebpc-weight: %w", err)
		}
		opts.EBPCWeight = experiments.Float(w)
	}
	if opts.Seeds, err = parseUints(*seeds); err != nil {
		return fmt.Errorf("-seeds: %w", err)
	}
	if *rates != "" {
		if opts.Rates, err = parseFloats(*rates); err != nil {
			return fmt.Errorf("-rates: %w", err)
		}
	}
	if *weights != "" {
		if opts.Weights, err = parseFloats(*weights); err != nil {
			return fmt.Errorf("-weights: %w", err)
		}
	}
	if *progress {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	if *claims {
		results, err := experiments.CheckClaims(opts)
		if err != nil {
			return err
		}
		failed, err := experiments.RenderClaims(os.Stdout, results)
		if err != nil {
			return err
		}
		if failed > 0 {
			return fmt.Errorf("%d/%d claims failed", failed, len(results))
		}
		fmt.Printf("all %d claims hold\n", len(results))
		return nil
	}

	var figs []*experiments.Figure
	switch {
	case *ablation == "all":
		figs, err = experiments.AllAblations(opts)
	case *ablation != "":
		f, err := experiments.RunAblation(*ablation, opts)
		if err != nil {
			return err
		}
		figs = append(figs, f)
	case *figure == "all":
		figs, err = experiments.All(opts)
	default:
		figs, err = experiments.Run(*figure, opts)
	}
	if err != nil {
		return err
	}

	for i, f := range figs {
		if i > 0 {
			fmt.Println()
		}
		if err := f.Render(os.Stdout); err != nil {
			return err
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*csvDir, "figure"+f.ID+".csv")
			file, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := f.WriteCSV(file); err != nil {
				file.Close()
				return err
			}
			if err := file.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	return nil
}

func printSingle(res interface{ String() string }) {
	fmt.Println(res.String())
}

func printTimeline(res runtime.Result) {
	if len(res.Timeline) == 0 {
		return
	}
	fmt.Println("timeline:")
	for _, b := range res.Timeline {
		fmt.Printf("  t=%5.0fs  delivery %5.1f%%  (%d/%d)\n",
			float64(b.Start)/1000, 100*b.Rate(), b.Valid, b.Targets)
	}
}

// parseRetry maps the -retry flag to a reliable-channel policy: "aware"
// (the default) gates every retransmission on the remaining slack of the
// message's downstream path, "blind" retries every loss unconditionally,
// "off" sends each frame exactly once.
func parseRetry(s string) (runtime.Reliability, error) {
	switch strings.ToLower(s) {
	case "aware", "":
		return runtime.Reliability{}, nil
	case "blind":
		return runtime.Reliability{BlindRetry: true}, nil
	case "off", "none":
		return runtime.Reliability{NoRetry: true}, nil
	}
	return runtime.Reliability{}, fmt.Errorf("unknown retry policy %q (want aware, blind or off)", s)
}

// parseFaults assembles the -kill-broker / -restart-broker / -link-down
// fault schedule.
func parseFaults(kill string, killAt time.Duration, restart string, restartAt time.Duration, linkDown string) ([]runtime.Fault, error) {
	var faults []runtime.Fault
	killed := make(map[uint64]bool)
	if kill != "" {
		ids, err := parseUints(kill)
		if err != nil {
			return nil, fmt.Errorf("-kill-broker: %w", err)
		}
		for _, id := range ids {
			faults = append(faults, runtime.BrokerCrash{ID: msg.NodeID(id), At: vtime.FromDuration(killAt)})
			killed[id] = true
		}
	}
	if restart != "" {
		ids, err := parseUints(restart)
		if err != nil {
			return nil, fmt.Errorf("-restart-broker: %w", err)
		}
		if restartAt <= killAt {
			return nil, fmt.Errorf("-restart-at %v must be after -kill-at %v", restartAt, killAt)
		}
		for _, id := range ids {
			if !killed[id] {
				return nil, fmt.Errorf("-restart-broker %d: only crashed brokers restart (add it to -kill-broker)", id)
			}
			faults = append(faults, runtime.BrokerRestart{ID: msg.NodeID(id), At: vtime.FromDuration(restartAt)})
		}
	}
	if linkDown != "" {
		ld, err := parseLinkDown(linkDown)
		if err != nil {
			return nil, fmt.Errorf("-link-down: %w", err)
		}
		faults = append(faults, ld)
	}
	return faults, nil
}

// parseLinkDown reads a transient outage spec "from:to:start:end" where
// from/to are broker ids and start/end are emulated offsets into the
// run, e.g. "2:6:30s:80s".
func parseLinkDown(s string) (runtime.LinkDown, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 4 {
		return runtime.LinkDown{}, fmt.Errorf("want from:to:start:end (e.g. 2:6:30s:80s), got %q", s)
	}
	from, err := strconv.ParseUint(strings.TrimSpace(parts[0]), 10, 32)
	if err != nil {
		return runtime.LinkDown{}, fmt.Errorf("from: %w", err)
	}
	to, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 10, 32)
	if err != nil {
		return runtime.LinkDown{}, fmt.Errorf("to: %w", err)
	}
	start, err := time.ParseDuration(strings.TrimSpace(parts[2]))
	if err != nil {
		return runtime.LinkDown{}, fmt.Errorf("start: %w", err)
	}
	end, err := time.ParseDuration(strings.TrimSpace(parts[3]))
	if err != nil {
		return runtime.LinkDown{}, fmt.Errorf("end: %w", err)
	}
	return runtime.LinkDown{
		From:  msg.NodeID(from),
		To:    msg.NodeID(to),
		Start: vtime.FromDuration(start),
		End:   vtime.FromDuration(end),
	}, nil
}

func parseScenario(s string) (msg.Scenario, error) {
	switch strings.ToLower(s) {
	case "psd":
		return msg.PSD, nil
	case "ssd":
		return msg.SSD, nil
	case "both", "psd+ssd":
		return msg.Both, nil
	}
	return 0, fmt.Errorf("unknown scenario %q (want psd, ssd or both)", s)
}

func parseBackend(s string) (runtime.Transport, error) {
	switch strings.ToLower(s) {
	case "sim":
		return simnet.Transport{}, nil
	case "live":
		return livenet.Transport{}, nil
	}
	return nil, fmt.Errorf("unknown backend %q (want sim or live)", s)
}

func parseLinkModel(s string) (simnet.LinkModel, error) {
	switch strings.ToLower(s) {
	case "normal":
		return simnet.LinkNormal, nil
	case "fixed":
		return simnet.LinkFixed, nil
	case "gamma":
		return simnet.LinkGamma, nil
	}
	return 0, fmt.Errorf("unknown link model %q (want normal, fixed, gamma)", s)
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

func parseUints(s string) ([]uint64, error) {
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		u, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, u)
	}
	return out, nil
}
