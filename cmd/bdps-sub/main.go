// Command bdps-sub subscribes to a live bounded-delay pub/sub overlay and
// prints deliveries with their end-to-end latency and validity.
//
//	bdps-sub -broker 127.0.0.1:7003 -edge 3 -filter "A1 < 5 && A2 < 5" \
//	         -deadline 10s -price 3 -scenario ssd
//
// Run until interrupted; a summary prints on exit.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bdps/internal/filter"
	"bdps/internal/livenet"
	"bdps/internal/msg"
	"bdps/internal/vtime"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bdps-sub:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bdps-sub", flag.ContinueOnError)
	var (
		broker   = fs.String("broker", "", "edge broker address (required)")
		edge     = fs.Int("edge", 0, "edge broker node id")
		subID    = fs.Int("id", 1, "subscription id (unique per overlay)")
		filterS  = fs.String("filter", "true", "content filter")
		deadline = fs.Duration("deadline", 0, "subscriber delay bound (SSD)")
		price    = fs.Float64("price", 0, "price per valid message (SSD)")
		scenario = fs.String("scenario", "psd", "psd or ssd")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *broker == "" {
		return fmt.Errorf("-broker is required")
	}
	f, err := filter.Parse(*filterS)
	if err != nil {
		return err
	}
	var sc msg.Scenario
	switch *scenario {
	case "psd":
		sc = msg.PSD
	case "ssd":
		sc = msg.SSD
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}

	sub := &msg.Subscription{
		ID:       msg.SubID(*subID),
		Edge:     msg.NodeID(*edge),
		Filter:   f,
		Deadline: vtime.FromDuration(*deadline),
		Price:    *price,
	}
	s, err := livenet.DialSubscriber(*broker, sub)
	if err != nil {
		return err
	}
	defer s.Close()
	fmt.Printf("subscribed at broker %d: %s\n", *edge, sub)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	valid, late := 0, 0
	for {
		select {
		case m, ok := <-s.C():
			if !ok {
				return fmt.Errorf("connection closed")
			}
			lat := time.Duration(0)
			if now := float64(time.Now().UnixMicro()) / 1000; now > m.Published {
				lat = vtime.ToDuration(now - m.Published)
			}
			ok2 := s.Valid(m, sc)
			if ok2 {
				valid++
			} else {
				late++
			}
			fmt.Printf("msg %d %s latency=%v valid=%v\n", m.ID, m.Attrs, lat.Round(time.Millisecond), ok2)
		case <-sig:
			fmt.Printf("received %d valid, %d late\n", valid, late)
			return nil
		}
	}
}
