// Command bdps-broker runs one live broker of a bounded-delay pub/sub
// overlay as a standalone process.
//
// Every broker of a deployment shares one overlay description (JSON, as
// produced by `bdps-sim -dump-topology` or handwritten) and a peer address
// file mapping broker ids to host:port. Start one process per broker:
//
//	bdps-sim -dump-topology > overlay.json
//	bdps-broker -id 0 -overlay overlay.json -peers peers.json -listen :7000 &
//	bdps-broker -id 1 -overlay overlay.json -peers peers.json -listen :7001 &
//	...
//
// peers.json: {"0": "127.0.0.1:7000", "1": "127.0.0.1:7001", ...}
//
// The broker schedules its output queues with the selected strategy
// (default EBPC with r = 0.5) and prints its counters on exit. With
// -state-dir it keeps a WAL + snapshot of its subscription admissions
// and per-link watermarks: SIGTERM drains gracefully (checkpoint, then
// stop), SIGINT stops hard, and a successor started with the same
// directory rejoins warm under a fresh incarnation epoch.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"

	"bdps/internal/core"
	"bdps/internal/livenet"
	"bdps/internal/msg"
	"bdps/internal/topology"
	"bdps/internal/vtime"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bdps-broker:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bdps-broker", flag.ContinueOnError)
	var (
		id        = fs.Int("id", -1, "this broker's node id (required)")
		overlayP  = fs.String("overlay", "", "overlay JSON file (required)")
		peersP    = fs.String("peers", "", "peer address JSON file (required)")
		listen    = fs.String("listen", "", "listen address (default: this id's peers entry)")
		scenario  = fs.String("scenario", "psd", "psd or ssd")
		strategy  = fs.String("strategy", "ebpc:0.5", "fifo, rl, eb, pc, ebpc[:r]")
		pd        = fs.Float64("pd", 2, "processing delay, ms")
		epsilon   = fs.Float64("epsilon", core.DefaultEpsilon, "invalid-message threshold")
		timescale = fs.Float64("timescale", 1, "link-delay compression factor")
		seed      = fs.Uint64("seed", 1, "link sampler seed")
		stateDir  = fs.String("state-dir", "", "durable state directory: WAL + snapshot of admissions and watermarks; restarting with the same directory rejoins warm")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id < 0 || *overlayP == "" || *peersP == "" {
		return fmt.Errorf("-id, -overlay and -peers are required")
	}

	ovFile, err := os.Open(*overlayP)
	if err != nil {
		return err
	}
	ov, err := topology.ReadJSON(ovFile)
	ovFile.Close()
	if err != nil {
		return err
	}

	peersRaw, err := os.ReadFile(*peersP)
	if err != nil {
		return err
	}
	var peerStrs map[string]string
	if err := json.Unmarshal(peersRaw, &peerStrs); err != nil {
		return fmt.Errorf("parsing %s: %w", *peersP, err)
	}
	peers := make(map[msg.NodeID]string, len(peerStrs))
	for k, v := range peerStrs {
		n, err := strconv.Atoi(k)
		if err != nil {
			return fmt.Errorf("peer key %q is not a node id", k)
		}
		peers[msg.NodeID(n)] = v
	}

	var sc msg.Scenario
	switch *scenario {
	case "psd":
		sc = msg.PSD
	case "ssd":
		sc = msg.SSD
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
	st, err := core.ParseStrategy(*strategy)
	if err != nil {
		return err
	}

	node, err := livenet.NewNode(livenet.NodeConfig{
		ID:        msg.NodeID(*id),
		Overlay:   ov,
		Scenario:  sc,
		Params:    core.Params{PD: vtime.Millis(*pd), Epsilon: *epsilon},
		Strategy:  st,
		TimeScale: *timescale,
		Seed:      *seed,
		StateDir:  *stateDir,
	})
	if err != nil {
		return err
	}
	if st, ok := node.Restarted(); ok {
		fmt.Printf("broker %d recovered %d durable entries, rejoining as epoch %d\n",
			*id, len(st.Entries), node.Epoch())
	}

	bind := *listen
	if bind == "" {
		bind = peers[msg.NodeID(*id)]
	}
	addr, err := node.Listen(bind)
	if err != nil {
		return err
	}
	fmt.Printf("broker %d listening on %s (strategy %s, scenario %s)\n",
		*id, addr, st.Name(), sc)

	if err := node.ConnectPeers(peers); err != nil {
		node.Stop()
		return err
	}
	fmt.Printf("broker %d connected to %d neighbors\n",
		*id, ov.Graph.Degree(msg.NodeID(*id)))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig

	// SIGTERM drains gracefully: checkpoint the durable state (so a
	// successor with the same -state-dir rejoins warm) before stopping.
	// SIGINT models a crash: stop hard, leaving only what the WAL already
	// holds.
	if got == syscall.SIGTERM {
		fmt.Printf("broker %d draining (SIGTERM)\n", *id)
		node.Drain()
	} else {
		node.Stop()
	}
	s := node.Stats()
	fmt.Printf("broker %d: receptions=%d deliveries=%d valid=%d drops(exp=%d hopeless=%d arrival=%d)\n",
		*id, s.Receptions, s.Deliveries, s.ValidDeliver,
		s.DropsExpired, s.DropsHopeless, s.DropsArrival)
	return nil
}
