// Command bdps-topo generates, inspects and validates broker overlay
// topologies.
//
// Generate the paper's layered mesh (or variants) as JSON:
//
//	bdps-topo -kind layered -seed 1 > overlay.json
//	bdps-topo -kind acyclic -brokers 16 > tree.json
//
// Describe an overlay (degree distribution, path statistics between
// ingress and edge brokers, expected single-hop delays for 50 KB
// messages):
//
//	bdps-topo -describe overlay.json
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"bdps/internal/msg"
	"bdps/internal/stats"
	"bdps/internal/topology"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bdps-topo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bdps-topo", flag.ContinueOnError)
	var (
		kind     = fs.String("kind", "layered", "layered, acyclic or mesh")
		seed     = fs.Uint64("seed", 1, "generation seed")
		brokers  = fs.Int("brokers", 0, "broker count (acyclic/mesh; 0 = default)")
		describe = fs.String("describe", "", "describe an overlay JSON file instead of generating")
		sizeKB   = fs.Float64("size", 50, "message size for delay estimates (describe mode)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *describe != "" {
		f, err := os.Open(*describe)
		if err != nil {
			return err
		}
		defer f.Close()
		ov, err := topology.ReadJSON(f)
		if err != nil {
			return err
		}
		return describeOverlay(os.Stdout, ov, *sizeKB)
	}

	var (
		ov  *topology.Overlay
		err error
	)
	switch *kind {
	case "layered":
		ov, err = topology.BuildLayered(topology.LayeredConfig{Seed: *seed})
	case "acyclic":
		ov, err = topology.BuildAcyclic(topology.AcyclicConfig{Seed: *seed, Brokers: *brokers})
	case "mesh":
		ov, err = topology.BuildMesh(topology.MeshConfig{Seed: *seed, Brokers: *brokers})
	default:
		return fmt.Errorf("unknown kind %q (want layered, acyclic, mesh)", *kind)
	}
	if err != nil {
		return err
	}
	return ov.WriteJSON(os.Stdout)
}

func describeOverlay(w *os.File, ov *topology.Overlay, sizeKB float64) error {
	g := ov.Graph
	fmt.Fprintf(w, "overlay %q: %d brokers, %d directed arcs\n", ov.Name, g.N(), len(g.Arcs()))
	fmt.Fprintf(w, "ingress brokers: %v\n", ov.Ingress)
	fmt.Fprintf(w, "edge brokers:    %v\n", ov.Edges)

	// Degree distribution.
	degrees := make(map[int]int)
	for id := 0; id < g.N(); id++ {
		degrees[g.Degree(msg.NodeID(id))]++
	}
	var ds []int
	for d := range degrees {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	fmt.Fprintln(w, "degree distribution:")
	for _, d := range ds {
		fmt.Fprintf(w, "  degree %2d: %d brokers\n", d, degrees[d])
	}

	// Link-rate summary.
	var rates stats.Summary
	for _, arc := range g.Arcs() {
		r, _ := g.Rate(arc[0], arc[1])
		rates.Add(r.Mean)
	}
	fmt.Fprintf(w, "link mean rates (ms/KB): min %.1f, median %.1f, max %.1f\n",
		rates.Min(), rates.Quantile(0.5), rates.Max())

	// Ingress→edge path statistics under the routing rule.
	var hops, mean stats.Summary
	for _, in := range ov.Ingress {
		for _, e := range ov.Edges {
			path, ok := g.Path(in, e)
			if !ok {
				fmt.Fprintf(w, "WARNING: edge %d unreachable from ingress %d\n", e, in)
				continue
			}
			rate, _ := g.PathRate(path)
			hops.Add(float64(len(path) - 1))
			mean.Add(rate.Mean)
		}
	}
	fmt.Fprintf(w, "best paths ingress→edge: hops min %.0f / median %.0f / max %.0f\n",
		hops.Min(), hops.Quantile(0.5), hops.Max())
	fmt.Fprintf(w, "path mean rate (ms/KB): min %.0f / median %.0f / max %.0f\n",
		mean.Min(), mean.Quantile(0.5), mean.Max())
	fmt.Fprintf(w, "expected propagation for %.0f KB: median %.2f s (excluding queueing)\n",
		sizeKB, sizeKB*mean.Quantile(0.5)/1000)
	return nil
}
