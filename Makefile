GO ?= go

.PHONY: build vet test bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

verify: build vet test

# bench emits the perf-trajectory file for this PR: every benchmark at a
# fixed, comparable iteration count, with allocation stats, as the JSON
# stream go test produces with -json. Five passes:
#   1. the steady families at 100x (figures, ablations, micro-benches);
#   2. the live-throughput pair at sustained scale (legacy vs sharded);
#   3. the index-build sweep at 1x — one full build per size is the
#      measurement, and the quadratic re-sort baseline at 100k is the
#      before number the churn rework is judged against;
#   4. the churn benches on a clock budget, so the churn-while-matching
#      run sustains its background flood long enough to mean something;
#   5. the recovery benches: time from confirmed-dead arc to repaired
#      routing (detour reroute, and a full layered-topology repair);
#   6. the reliable-channel benches: retransmit-buffer cycle/eviction and
#      receiver dedup/reorder healing — the per-frame tax a lossy link pays;
#   7. the aggregation tentpole at 1x — one flat and one aggregated
#      million-subscription build per iteration IS the measurement, and
#      the bench itself asserts the 5x entry/flood shrink;
#   8. the overload benches: the plan-side admission sweep, steady-state
#      worst-first shedding, and the flash-crowd throughput pair
#      (unprotected vs admission+shed+backpressure, with the rejected
#      share and bounded peak queue reported alongside msgs/sec);
#   9. the durability benches: WAL append on the admission path, full
#      log replay at restart, and the broker-side session-resume cycle
#      (ring scan + deadline gate + frame assembly for a full ring).
bench:
	$(GO) test -json -run '^$$' -bench '^Benchmark(Figure|Ablation|Filter|Normal|Pick|Queue|Table|Routing|Topology|Dijkstra|Codec|Sim|Covers)' -benchmem -benchtime 100x . > BENCH_pr10.json
	$(GO) test -json -run '^$$' -bench BenchmarkLiveThroughput -benchmem -benchtime 20000x . >> BENCH_pr10.json
	$(GO) test -json -run '^$$' -bench '^BenchmarkIndexBuild$$' -benchmem -benchtime 1x . >> BENCH_pr10.json
	$(GO) test -json -run '^$$' -bench '^BenchmarkChurn' -benchmem -benchtime 2s . >> BENCH_pr10.json
	$(GO) test -json -run '^$$' -bench '^BenchmarkRecovery' -benchmem -benchtime 100x ./internal/runtime/ >> BENCH_pr10.json
	$(GO) test -json -run '^$$' -bench '^BenchmarkRetransmit$$' -benchmem -benchtime 10000x ./internal/livenet/ >> BENCH_pr10.json
	$(GO) test -json -run '^$$' -bench '^BenchmarkAggregation1M$$' -benchmem -benchtime 1x . >> BENCH_pr10.json
	$(GO) test -json -run '^$$' -bench '^BenchmarkAdmission$$' -benchmem -benchtime 100x ./internal/runtime/ >> BENCH_pr10.json
	$(GO) test -json -run '^$$' -bench '^BenchmarkShedWorst$$' -benchmem -benchtime 1000x ./internal/core/ >> BENCH_pr10.json
	$(GO) test -json -run '^$$' -bench '^BenchmarkFlashCrowdThroughput' -benchmem -benchtime 20000x . >> BENCH_pr10.json
	$(GO) test -json -run '^$$' -bench '^Benchmark(WALAppend|LogReplay)$$' -benchmem -benchtime 1000x ./internal/durable/ >> BENCH_pr10.json
	$(GO) test -json -run '^$$' -bench '^BenchmarkSessionResume$$' -benchmem -benchtime 1000x ./internal/livenet/ >> BENCH_pr10.json
	@grep -o '"Output":"Benchmark[^"]*ns/op[^"]*"' BENCH_pr10.json | head -80 || true
