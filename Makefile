GO ?= go

.PHONY: build vet test bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

verify: build vet test

# bench emits the perf-trajectory file for this PR: every benchmark at a
# fixed, comparable iteration count, with allocation stats, as the JSON
# stream go test produces with -json.
bench:
	$(GO) test -json -run '^$$' -bench . -benchmem -benchtime 100x . > BENCH_pr2.json
	@grep -o '"Output":"Benchmark[^"]*ns/op[^"]*"' BENCH_pr2.json | head -50 || true
