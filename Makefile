GO ?= go

.PHONY: build vet test bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

verify: build vet test

# bench emits the perf-trajectory file for this PR: every benchmark at a
# fixed, comparable iteration count, with allocation stats, as the JSON
# stream go test produces with -json. The live-throughput pair (legacy =
# the pre-PR-4 single-threaded plane, sharded = the zero-copy batched
# plane) is re-run at sustained scale, where the before/after contrast
# is the acceptance number.
bench:
	$(GO) test -json -run '^$$' -bench . -benchmem -benchtime 100x . > BENCH_pr4.json
	$(GO) test -json -run '^$$' -bench BenchmarkLiveThroughput -benchmem -benchtime 20000x . >> BENCH_pr4.json
	@grep -o '"Output":"Benchmark[^"]*ns/op[^"]*"' BENCH_pr4.json | head -60 || true
