// Aggregation benchmarks: the covering relation on its hot path, the
// million-subscription before/after for table size and flood traffic,
// and churn through the aggregated driver. BenchmarkAggregation1M runs
// at -benchtime 1x in `make bench` (one build per side IS the
// measurement); the churn pair rides the 2s BenchmarkChurn pass.
package bdps

import (
	stdruntime "runtime"
	"sync"
	"testing"
	"time"

	"bdps/internal/filter"
	"bdps/internal/msg"
	"bdps/internal/routing"
	"bdps/internal/stats"
	"bdps/internal/topology"
	"bdps/internal/workload"
)

// BenchmarkCovers measures the allocation-free covering check — the
// probe every subscription admission pays, so it must stay allocation
// free (the warm-up call owns the scratch growth).
func BenchmarkCovers(b *testing.B) {
	fs := paperFilters(1024)
	var scratch filter.CoverScratch
	scratch.Covers(fs[0], fs[1]) // prime the scratch buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch.Covers(fs[i%1024], fs[(i*7+1)%1024])
	}
}

// aggChain is the benchmark overlay: a 4-deep chain, so every forwarded
// subscription costs three forwarding entries plus its edge delivery
// entry, and every suppressed one costs at most the delivery entry.
func aggChain(b *testing.B) *topology.Overlay {
	b.Helper()
	g := topology.NewGraph(4)
	for i := msg.NodeID(0); i < 3; i++ {
		if err := g.AddLink(i, i+1, stats.Normal{Mean: 50, Sigma: 10}); err != nil {
			b.Fatal(err)
		}
	}
	return &topology.Overlay{Graph: g, Ingress: []msg.NodeID{0}, Edges: []msg.NodeID{3}}
}

// zipfSubs draws n Zipf-skewed subscriptions (finite template universe,
// rank weight ∝ 1/rank) — the population whose heavy template reuse the
// aggregation tentpole is judged on.
func zipfSubs(b *testing.B, ov *topology.Overlay, n int) []*msg.Subscription {
	b.Helper()
	cfg := workload.Config{
		SubsPerEdge: n / len(ov.Edges),
		Zipf:        workload.Zipf{Universe: 1000},
	}
	return cfg.Subscriptions(ov.Edges)
}

func liveHeap() uint64 {
	stdruntime.GC()
	var m stdruntime.MemStats
	stdruntime.ReadMemStats(&m)
	return m.HeapAlloc
}

// BenchmarkAggregation1M is the tentpole before/after: build routing
// state for one million Zipf-skewed subscriptions flat and aggregated,
// and report entry counts, flood message counts (one per forwarded
// subscription), and live table heap for both. The acceptance bar —
// entries AND floods shrink at least 5× — is asserted, not just
// reported.
func BenchmarkAggregation1M(b *testing.B) {
	ov := aggChain(b)
	subs := zipfSubs(b, ov, 1_000_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		base := liveHeap()
		b.StartTimer()
		flat, err := routing.Build(ov, subs, routing.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		flatEntries := routing.Stats(flat).TotalEntries
		flatBytes := liveHeap() - base
		// Without this the compiler sees flat as dead above and the GC
		// inside liveHeap frees the tables before they are measured.
		stdruntime.KeepAlive(flat)
		flat = nil
		base = liveHeap()
		suppressed := 0
		b.StartTimer()
		_, agg, err := routing.BuildAggregated(ov, subs, routing.Options{},
			func(n int) { suppressed += n })
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		aggEntries := routing.Stats(agg.Tables()).TotalEntries
		aggBytes := liveHeap() - base
		stdruntime.KeepAlive(agg)
		floodsFlat, floodsAgg := len(subs), len(subs)-suppressed

		b.ReportMetric(float64(flatEntries), "entries-flat")
		b.ReportMetric(float64(aggEntries), "entries-agg")
		b.ReportMetric(float64(floodsFlat), "floods-flat")
		b.ReportMetric(float64(floodsAgg), "floods-agg")
		b.ReportMetric(float64(flatBytes)/1e6, "MB-flat")
		b.ReportMetric(float64(aggBytes)/1e6, "MB-agg")
		if flatEntries < 5*aggEntries {
			b.Fatalf("entry shrink below 5x: flat %d, aggregated %d", flatEntries, aggEntries)
		}
		if floodsFlat < 5*floodsAgg {
			b.Fatalf("flood shrink below 5x: flat %d, aggregated %d", floodsFlat, floodsAgg)
		}
		b.StartTimer()
	}
}

// BenchmarkChurnAggregatedOps measures one churn pair (subscribe + an
// earlier unsubscribe) against a 100k-subscription Zipf population on
// the 4-deep chain, flat (per-overlay install/remove) versus through the
// aggregated driver — where most arrivals fold into a group and most
// departures detach without touching forwarding state, but rep
// departures pay promotion or re-exposure.
func BenchmarkChurnAggregatedOps(b *testing.B) {
	const n = 100_000
	ov := aggChain(b)
	pool := zipfSubs(b, ov, 2*n)
	resident, stream := pool[:n], pool[n:]

	churnSub := func(i int, id msg.SubID) *msg.Subscription {
		src := stream[i%len(stream)]
		return &msg.Subscription{ID: id, Edge: src.Edge, Filter: src.Filter,
			Deadline: src.Deadline, Price: src.Price}
	}

	b.Run("flat", func(b *testing.B) {
		tables, err := routing.Build(ov, resident, routing.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := msg.SubID(n + i)
			routing.InstallSub(tables, ov, churnSub(i, id), routing.Options{})
			routing.RemoveSubAll(tables, msg.SubID(i%n))
			if i >= n {
				routing.RemoveSubAll(tables, msg.SubID(i))
			}
		}
	})
	b.Run("aggregated", func(b *testing.B) {
		_, agg, err := routing.BuildAggregated(ov, resident, routing.Options{}, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := msg.SubID(n + i)
			agg.Subscribe(churnSub(i, id))
			agg.Unsubscribe(msg.SubID(i % n))
			if i >= n {
				agg.Unsubscribe(msg.SubID(i))
			}
		}
	})
}

// BenchmarkChurnAggregatedMatch measures edge-broker matching throughput
// on the aggregated 100k Zipf population, quiet and concurrent with a
// churn flood through the aggregated driver (2000 pairs/sec under the
// write lock) — the aggregated twin of BenchmarkChurnMatch.
func BenchmarkChurnAggregatedMatch(b *testing.B) {
	const n = 100_000
	const churnPairsPerSec = 2000
	ov := aggChain(b)
	pool := zipfSubs(b, ov, 2*n)
	resident, stream := pool[:n], pool[n:]

	match := func(b *testing.B, churn bool) {
		tables, agg, err := routing.BuildAggregated(ov, resident, routing.Options{}, nil)
		if err != nil {
			b.Fatal(err)
		}
		edge := tables[ov.Edges[0]]
		edge.EnableIndex()
		var mu sync.RWMutex
		stop := make(chan struct{})
		defer close(stop)
		if churn {
			go func() {
				interval := time.Second / churnPairsPerSec
				next := time.Now()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					src := stream[i%len(stream)]
					id := msg.SubID(n + i)
					mu.Lock()
					agg.Subscribe(&msg.Subscription{ID: id, Edge: src.Edge,
						Filter: src.Filter, Deadline: src.Deadline, Price: src.Price})
					agg.Unsubscribe(msg.SubID(i % n))
					agg.Unsubscribe(id - 1000) // bounded churned-in population
					mu.Unlock()
					next = next.Add(interval)
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
				}
			}()
		}
		m := &msg.Message{Ingress: 0, Attrs: msg.NumAttrs(map[string]float64{"A1": 8, "A2": 8})}
		var scratch filter.MatchScratch
		var buf []*routing.Entry
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mu.RLock()
			buf = edge.MatchAppendWith(&scratch, m, buf[:0])
			mu.RUnlock()
		}
	}
	b.Run("quiet", func(b *testing.B) { match(b, false) })
	b.Run("churning", func(b *testing.B) { match(b, true) })
}
