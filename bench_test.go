// Benchmarks regenerating every figure of the paper's evaluation section
// (Figures 4a–6b; Table 1 is a related-work taxonomy with no data), plus
// micro-benchmarks of the building blocks and ablation benches for the
// design choices documented in DESIGN.md.
//
// Figure benches run the experiment harness at bench scale (shorter
// window, one seed) — the full-scale reproduction is
// `bdps-sim -figure all` — and report the headline series values as
// custom metrics so regressions in *results*, not just speed, are
// visible. The paper-vs-measured comparison lives in EXPERIMENTS.md.
package bdps

import (
	"testing"

	"bdps/internal/core"
	"bdps/internal/experiments"
	"bdps/internal/filter"
	"bdps/internal/msg"
	"bdps/internal/routing"
	"bdps/internal/simnet"
	"bdps/internal/stats"
	"bdps/internal/topology"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

// benchOpts is the bench-scale experiment configuration: same topology
// and workload laws as the paper, compressed window.
func benchOpts() experiments.Options {
	return experiments.Options{
		Seeds:    []uint64{1},
		Duration: 4 * vtime.Minute,
		Rates:    []float64{6, 15},
		Weights:  []float64{0, 0.5, 1},
		Fig4Rate: experiments.Float(10),
	}
}

// BenchmarkFigure4a regenerates Figure 4(a): SSD earning vs EBPC weight.
func BenchmarkFigure4a(b *testing.B) {
	var fig *experiments.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = experiments.Figure4a(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	mid := len(fig.Points) / 2
	b.ReportMetric(fig.Value(mid, "EBPC"), "EBPC_earning_k")
	b.ReportMetric(fig.Value(mid, "EB"), "EB_earning_k")
	b.ReportMetric(fig.Value(mid, "PC"), "PC_earning_k")
}

// BenchmarkFigure4b regenerates Figure 4(b): PSD delivery rate vs weight.
func BenchmarkFigure4b(b *testing.B) {
	var fig *experiments.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = experiments.Figure4b(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	mid := len(fig.Points) / 2
	b.ReportMetric(fig.Value(mid, "EBPC"), "EBPC_delivery_pct")
	b.ReportMetric(fig.Value(mid, "EB"), "EB_delivery_pct")
}

// BenchmarkFigure5a regenerates Figure 5(a): SSD earning vs rate.
func BenchmarkFigure5a(b *testing.B) {
	var fig *experiments.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, _, err = experiments.Figure5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(fig.Points) - 1
	b.ReportMetric(fig.Value(last, "EB"), "EB_earning_k")
	b.ReportMetric(fig.Value(last, "FIFO"), "FIFO_earning_k")
	b.ReportMetric(fig.Value(last, "RL"), "RL_earning_k")
}

// BenchmarkFigure5b regenerates Figure 5(b): SSD message number vs rate.
func BenchmarkFigure5b(b *testing.B) {
	var fig *experiments.Figure
	for i := 0; i < b.N; i++ {
		var err error
		_, fig, err = experiments.Figure5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(fig.Points) - 1
	b.ReportMetric(fig.Value(last, "EB"), "EB_msgs_k")
	b.ReportMetric(fig.Value(last, "FIFO"), "FIFO_msgs_k")
	b.ReportMetric(fig.Value(last, "RL"), "RL_msgs_k")
}

// BenchmarkFigure6a regenerates Figure 6(a): PSD delivery rate vs rate.
func BenchmarkFigure6a(b *testing.B) {
	var fig *experiments.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, _, err = experiments.Figure6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(fig.Points) - 1
	b.ReportMetric(fig.Value(last, "EB"), "EB_delivery_pct")
	b.ReportMetric(fig.Value(last, "FIFO"), "FIFO_delivery_pct")
	b.ReportMetric(fig.Value(last, "RL"), "RL_delivery_pct")
}

// BenchmarkFigure6b regenerates Figure 6(b): PSD message number vs rate.
func BenchmarkFigure6b(b *testing.B) {
	var fig *experiments.Figure
	for i := 0; i < b.N; i++ {
		var err error
		_, fig, err = experiments.Figure6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(fig.Points) - 1
	b.ReportMetric(fig.Value(last, "EB"), "EB_msgs_k")
	b.ReportMetric(fig.Value(last, "FIFO"), "FIFO_msgs_k")
}

// benchAll regenerates every figure panel (4a–6b) in one harness pass.
func benchAll(b *testing.B, parallelism int) {
	var figs []*experiments.Figure
	for i := 0; i < b.N; i++ {
		opts := benchOpts()
		opts.Parallelism = parallelism
		var err error
		figs, err = experiments.All(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(figs)), "figures")
}

// BenchmarkFigureAllSequential is the serial baseline: the same grid
// and run cache on a single worker. (It is not the pre-PR-2 harness —
// cross-figure dedup applies at every parallelism — so the pair
// isolates pool scaling, not caching.)
func BenchmarkFigureAllSequential(b *testing.B) { benchAll(b, 1) }

// BenchmarkFigureAllParallel runs the same grid on all cores; the output
// is bit-identical (see experiments.TestParallelMatchesSequential), only
// the wall-clock changes.
func BenchmarkFigureAllParallel(b *testing.B) { benchAll(b, 0) }

// ---------------------------------------------------------------------
// Ablation benches: design choices under the congested PSD point.

func ablationRun(b *testing.B, mutate func(*simnet.Config)) (delivery float64) {
	b.Helper()
	cfg := simnet.Config{
		Seed:     1,
		Scenario: msg.PSD,
		Strategy: core.MaxEB{},
		Workload: workload.Config{RatePerMin: 12, Duration: 4 * vtime.Minute},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	var res float64
	for i := 0; i < b.N; i++ {
		r, err := simnet.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r.DeliveryRate()
	}
	return res
}

// BenchmarkAblationEpsilonOn/Off quantify invalid-message detection §5.4.
func BenchmarkAblationEpsilonOn(b *testing.B) {
	d := ablationRun(b, nil)
	b.ReportMetric(100*d, "delivery_pct")
}

func BenchmarkAblationEpsilonOff(b *testing.B) {
	d := ablationRun(b, func(c *simnet.Config) {
		c.Params = core.Params{PD: 2, Epsilon: 0}
	})
	b.ReportMetric(100*d, "delivery_pct")
}

// BenchmarkAblationMultipath2 runs DCP-style 2-path routing with dedup.
func BenchmarkAblationMultipath2(b *testing.B) {
	d := ablationRun(b, func(c *simnet.Config) { c.Multipath = 2 })
	b.ReportMetric(100*d, "delivery_pct")
}

// BenchmarkAblationMeasuredRates estimates link parameters from 50
// samples instead of knowing them (oracle).
func BenchmarkAblationMeasuredRates(b *testing.B) {
	d := ablationRun(b, func(c *simnet.Config) { c.MeasureSamples = 50 })
	b.ReportMetric(100*d, "delivery_pct")
}

// BenchmarkAblationLinkGamma swaps the normal link model for the
// shifted-gamma shape of the paper's refs [17,18].
func BenchmarkAblationLinkGamma(b *testing.B) {
	d := ablationRun(b, func(c *simnet.Config) { c.LinkModel = simnet.LinkGamma })
	b.ReportMetric(100*d, "delivery_pct")
}

// BenchmarkAblationLinkFixed uses deterministic link rates (the
// fixed-bandwidth assumption the paper argues against).
func BenchmarkAblationLinkFixed(b *testing.B) {
	d := ablationRun(b, func(c *simnet.Config) { c.LinkModel = simnet.LinkFixed })
	b.ReportMetric(100*d, "delivery_pct")
}

// BenchmarkAblationAcyclicTopology runs the §3.1 alternative topology.
func BenchmarkAblationAcyclicTopology(b *testing.B) {
	ov, err := topology.BuildAcyclic(topology.AcyclicConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	d := ablationRun(b, func(c *simnet.Config) { c.Overlay = ov })
	b.ReportMetric(100*d, "delivery_pct")
}

// ---------------------------------------------------------------------
// Micro-benchmarks: the hot paths.

func BenchmarkFilterMatch(b *testing.B) {
	f := filter.MustParse("A1 < 6.5 && A2 < 3.2")
	attrs := msg.NumAttrs(map[string]float64{"A1": 5, "A2": 2})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Pointer form, as the hot paths use it (no interface boxing).
		if !f.Match(&attrs) {
			b.Fatal("should match")
		}
	}
}

func BenchmarkFilterParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := filter.Parse("(A1 < 6.5 && A2 < 3.2) || tag == 'hot'"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNormalCDF(b *testing.B) {
	n := stats.Normal{Mean: 140, Sigma: 28}
	for i := 0; i < b.N; i++ {
		_ = n.CDF(float64(i % 300))
	}
}

func BenchmarkNormalQuantile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = stats.StdNormalQuantile(float64(i%999+1) / 1000)
	}
}

// benchQueue builds a queue with n entries of mixed urgency.
func benchQueue(n int) *core.Queue {
	q := core.NewQueue(70)
	for i := 0; i < n; i++ {
		e := &core.Entry{
			SizeKB:    50,
			Published: 0,
			Targets: []core.Target{{
				Deadline: vtime.Millis(10000 + i*500),
				Price:    float64(1 + i%3),
				Hops:     1 + i%3,
				Rate:     stats.Normal{Mean: 70 * float64(1+i%3), Sigma: 20},
			}},
		}
		q.Enqueue(e, 0)
	}
	return q
}

func benchPick(b *testing.B, s core.Strategy) {
	q := benchQueue(128)
	ctx := core.Context{Now: 5000, PD: 2, FT: 3500}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Pick(q.Entries(), ctx) < 0 {
			b.Fatal("empty pick")
		}
	}
}

func BenchmarkPickFIFO(b *testing.B) { benchPick(b, core.FIFO{}) }
func BenchmarkPickRL(b *testing.B)   { benchPick(b, core.RL{}) }
func BenchmarkPickEB(b *testing.B)   { benchPick(b, core.MaxEB{}) }
func BenchmarkPickPC(b *testing.B)   { benchPick(b, core.MaxPC{}) }
func BenchmarkPickEBPC(b *testing.B) { benchPick(b, core.MaxEBPC{R: 0.5}) }

func BenchmarkQueuePrune(b *testing.B) {
	p := core.DefaultParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		q := benchQueue(128)
		b.StartTimer()
		q.Prune(60000, p) // everything expired: worst case
	}
}

// BenchmarkTableMatch compares linear-scan matching with the
// counting-index fast path on the paper's 160-subscription population.
func benchTableMatch(b *testing.B, indexed bool) {
	ov, err := topology.BuildLayered(topology.LayeredConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	subs := (workload.Config{Scenario: msg.SSD, Seed: 1}).Subscriptions(ov.Edges)
	tables, err := routing.Build(ov, subs, routing.Options{})
	if err != nil {
		b.Fatal(err)
	}
	tb := tables[ov.Ingress[0]]
	if indexed {
		tb.EnableIndex()
	}
	m := &msg.Message{
		Ingress: ov.Ingress[0],
		Attrs:   msg.NumAttrs(map[string]float64{"A1": 4, "A2": 6}),
	}
	// Brokers match through a reusable scratch buffer; measure that path.
	var buf []*routing.Entry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = tb.MatchAppend(m, buf[:0])
		if len(buf) == 0 {
			b.Fatal("no matches")
		}
	}
}

func BenchmarkTableMatchLinear(b *testing.B)  { benchTableMatch(b, false) }
func BenchmarkTableMatchIndexed(b *testing.B) { benchTableMatch(b, true) }

func BenchmarkRoutingBuild(b *testing.B) {
	ov, err := topology.BuildLayered(topology.LayeredConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	subs := (workload.Config{Scenario: msg.SSD, Seed: 1}).Subscriptions(ov.Edges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := routing.Build(ov, subs, routing.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopologyBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := topology.BuildLayered(topology.LayeredConfig{Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDijkstra(b *testing.B) {
	ov, err := topology.BuildLayered(topology.LayeredConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ov.Graph.ShortestPaths(msg.NodeID(i % 4))
	}
}

func BenchmarkCodecEncodeDecode(b *testing.B) {
	m := &msg.Message{
		ID: 42, Publisher: 1, Ingress: 0, Published: 1000, Allowed: 20000,
		SizeKB: 50,
		Attrs:  msg.NumAttrs(map[string]float64{"A1": 3.5, "A2": 7.25}),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body, err := msg.AppendMessage(nil, m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := msg.DecodeMessage(body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimSecond measures simulator throughput: one simulated second
// of the paper's full system per reported unit.
func BenchmarkSimSecond(b *testing.B) {
	duration := vtime.Millis(b.N) * 20 // 20 simulated ms per iteration
	if duration < vtime.Minute {
		duration = vtime.Minute
	}
	r, err := simnet.Run(simnet.Config{
		Seed:     1,
		Scenario: msg.PSD,
		Strategy: core.MaxEB{},
		Workload: workload.Config{RatePerMin: 10, Duration: duration},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(r.Receptions)/float64(b.N), "receptions/op")
}
