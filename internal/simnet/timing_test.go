package simnet

import (
	"math"
	"testing"

	"bdps/internal/core"
	"bdps/internal/filter"
	"bdps/internal/msg"
	"bdps/internal/stats"
	"bdps/internal/topology"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

// TestExactTimingTwoBrokerChain pins the delay model end to end with a
// fully deterministic configuration: fixed link rates, fixed publishing
// intervals, a wildcard subscriber. Every delivered message must take
// exactly PD + size·rate₁ + PD + size·rate₂ + PD milliseconds across a
// two-link chain (§3.2: processing at each broker, propagation on each
// link; the queue is always empty at this load).
func TestExactTimingTwoBrokerChain(t *testing.T) {
	g := topology.NewGraph(3)
	if err := g.AddLink(0, 1, stats.Normal{Mean: 100, Sigma: 20}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(1, 2, stats.Normal{Mean: 60, Sigma: 20}); err != nil {
		t.Fatal(err)
	}
	ov := &topology.Overlay{
		Graph:   g,
		Ingress: []msg.NodeID{0},
		Edges:   []msg.NodeID{2},
	}
	sub := &msg.Subscription{ID: 1, Edge: 2, Filter: &filter.Filter{}}

	res, err := Run(Config{
		Seed:     1,
		Scenario: msg.PSD,
		Strategy: core.MaxEB{},
		Overlay:  ov,
		Workload: workload.Config{
			RatePerMin:    1,
			Duration:      5 * vtime.Minute,
			FixedInterval: true,
			SubsPerEdge:   1,
		},
		Subscriptions: []*msg.Subscription{sub},
		LinkModel:     LinkFixed, // deterministic rates = the means
	})
	if err != nil {
		t.Fatal(err)
	}

	// 5 messages at exactly 60 s intervals, all delivered.
	if res.Published != 5 {
		t.Fatalf("published = %d, want 5", res.Published)
	}
	if res.TotalTargets != 5 || res.ValidDeliveries != 5 {
		t.Fatalf("targets/valid = %d/%d, want 5/5", res.TotalTargets, res.ValidDeliveries)
	}
	// 5 messages × 3 brokers.
	if res.Receptions != 15 {
		t.Fatalf("receptions = %d, want 15", res.Receptions)
	}

	// Latency: PD + 50·100 + PD + 50·60 + PD = 2 + 5000 + 2 + 3000 + 2.
	const want = 2 + 5000 + 2 + 3000 + 2
	for _, got := range []float64{res.LatencyMeanMs, res.LatencyP50Ms, res.LatencyMaxMs} {
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("latency = %v, want exactly %v", got, want)
		}
	}
}

// TestExactTimingQueueingDelay extends the pin to scheduling delay: two
// messages published simultaneously share one link, so the second waits
// exactly one transmission time in the output queue.
func TestExactTimingQueueingDelay(t *testing.T) {
	g := topology.NewGraph(2)
	if err := g.AddLink(0, 1, stats.Normal{Mean: 100, Sigma: 20}); err != nil {
		t.Fatal(err)
	}
	ov := &topology.Overlay{
		Graph:   g,
		Ingress: []msg.NodeID{0},
		Edges:   []msg.NodeID{1},
	}
	subs := []*msg.Subscription{
		{ID: 1, Edge: 1, Filter: &filter.Filter{}},
	}
	// Two publishers at the same ingress publishing at identical fixed
	// instants gives two messages in the same queue.
	ov2 := &topology.Overlay{
		Graph:   g,
		Ingress: []msg.NodeID{0, 0},
		Edges:   []msg.NodeID{1},
	}
	res, err := Run(Config{
		Seed:     1,
		Scenario: msg.PSD,
		Strategy: core.FIFO{},
		Params:   core.Params{PD: 2},
		Overlay:  ov2,
		Workload: workload.Config{
			RatePerMin:    1,
			Duration:      1 * vtime.Minute,
			FixedInterval: true,
			SubsPerEdge:   1,
		},
		Subscriptions: subs,
		LinkModel:     LinkFixed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ValidDeliveries != 2 {
		t.Fatalf("valid = %d, want 2", res.ValidDeliveries)
	}
	// First: 2 + 5000 + 2 = 5004. Second: waits 5000 in queue → 10004.
	if math.Abs(res.LatencyP50Ms-(5004+10004)/2) > 1e-9 ||
		math.Abs(res.LatencyMaxMs-10004) > 1e-9 {
		t.Errorf("latencies mean-of-two %v / max %v, want 7504 / 10004",
			res.LatencyP50Ms, res.LatencyMaxMs)
	}
	_ = ov
}
