package simnet

import (
	"testing"

	"bdps/internal/core"
	"bdps/internal/msg"
	"bdps/internal/trace"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

func TestBrokerCrashLosesMessages(t *testing.T) {
	base := quickCfg(msg.PSD, core.MaxEB{}, 6)
	healthy, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	crashed := quickCfg(msg.PSD, core.MaxEB{}, 6)
	// Kill a layer-2 broker (id 4 is always layer 2 in the default
	// layered build) halfway through.
	crashed.Faults = []Fault{BrokerCrash{ID: 4, At: 5 * vtime.Minute}}
	broken, err := Run(crashed)
	if err != nil {
		t.Fatal(err)
	}
	if broken.DropsCrashed == 0 {
		t.Error("crash should lose messages")
	}
	if broken.ValidDeliveries >= healthy.ValidDeliveries {
		t.Errorf("crash should reduce deliveries: %d vs healthy %d",
			broken.ValidDeliveries, healthy.ValidDeliveries)
	}
	if broken.ValidDeliveries == 0 {
		t.Error("routes avoiding the dead broker should still deliver")
	}
}

func TestBrokerCrashValidation(t *testing.T) {
	cfg := quickCfg(msg.PSD, core.MaxEB{}, 3)
	cfg.Faults = []Fault{BrokerCrash{ID: 99, At: 0}}
	if _, err := Run(cfg); err == nil {
		t.Error("crash of unknown broker should fail")
	}
}

func TestLinkDownDelaysButRecovers(t *testing.T) {
	clean := quickCfg(msg.PSD, core.MaxEB{}, 3)
	healthy, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}

	cfg := quickCfg(msg.PSD, core.MaxEB{}, 3)
	// Take both directions of the first L1→L2 link down for 3 minutes.
	cfg.Faults = []Fault{
		LinkDown{From: 0, To: 4, Start: 2 * vtime.Minute, End: 5 * vtime.Minute},
		LinkDown{From: 4, To: 0, Start: 2 * vtime.Minute, End: 5 * vtime.Minute},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ValidDeliveries == 0 {
		t.Fatal("outage must not kill the run")
	}
	if res.ValidDeliveries > healthy.ValidDeliveries {
		t.Errorf("outage should not improve delivery: %d vs %d",
			res.ValidDeliveries, healthy.ValidDeliveries)
	}
	// The run still terminates (engine drained) — implicit in Run
	// returning — and the link resumed service afterwards.
}

func TestLinkDownValidation(t *testing.T) {
	cfg := quickCfg(msg.PSD, core.MaxEB{}, 3)
	cfg.Faults = []Fault{LinkDown{From: 0, To: 1, Start: 0, End: 1}}
	if _, err := Run(cfg); err == nil {
		t.Error("LinkDown on a non-arc should fail (brokers 0 and 1 are both layer 1)")
	}
	cfg.Faults = []Fault{LinkDown{From: 0, To: 4, Start: 5, End: 1}}
	if _, err := Run(cfg); err == nil {
		t.Error("inverted window should fail")
	}
}

func TestTracerSeesFullLifecycle(t *testing.T) {
	cfg := quickCfg(msg.PSD, core.MaxEB{}, 3)
	cfg.Workload.Duration = 2 * vtime.Minute
	buf := &trace.Buffer{}
	cfg.Tracer = buf
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if buf.Count(trace.Publish) != res.Published {
		t.Errorf("publish events %d != published %d",
			buf.Count(trace.Publish), res.Published)
	}
	if buf.Count(trace.Arrive) != res.Receptions {
		t.Errorf("arrive events %d != receptions %d",
			buf.Count(trace.Arrive), res.Receptions)
	}
	if buf.Count(trace.Deliver) != res.ValidDeliveries+res.LateDeliveries {
		t.Errorf("deliver events %d != deliveries %d",
			buf.Count(trace.Deliver), res.ValidDeliveries+res.LateDeliveries)
	}
	// Every send is preceded by an enqueue for that message.
	if buf.Count(trace.Send) == 0 || buf.Count(trace.Enqueue) < buf.Count(trace.Send) {
		t.Errorf("sends %d vs enqueues %d", buf.Count(trace.Send), buf.Count(trace.Enqueue))
	}

	// A delivered message's timeline is physically consistent.
	for _, e := range buf.Events {
		if e.Kind == trace.Deliver {
			tl := trace.BuildTimeline(buf.ByMessage(e.MsgID))
			if !tl.Delivered {
				t.Fatal("timeline of delivered message not delivered")
			}
			if tl.Transmit <= 0 {
				t.Fatalf("delivered message with no transmission time: %+v", tl)
			}
			break
		}
	}
}

func TestPerSubscriberFairness(t *testing.T) {
	cfg := quickCfg(msg.PSD, core.MaxEB{}, 6)
	cfg.PerSubscriber = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fairness <= 0 || res.Fairness > 1 {
		t.Errorf("fairness = %v, want in (0,1]", res.Fairness)
	}
	// Without the flag the metric is absent.
	res2, err := Run(quickCfg(msg.PSD, core.MaxEB{}, 6))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Fairness != 0 {
		t.Errorf("fairness without accounting = %v, want 0", res2.Fairness)
	}
	// Both runs must otherwise agree (accounting is observation-only).
	if res.ValidDeliveries != res2.ValidDeliveries || res.Receptions != res2.Receptions {
		t.Error("per-subscriber accounting changed the simulation")
	}
}

func TestBothScenarioRuns(t *testing.T) {
	cfg := quickCfg(msg.Both, core.MaxEB{}, 6)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ValidDeliveries == 0 {
		t.Fatal("PSD+SSD scenario delivered nothing")
	}
	if res.Earning == 0 {
		t.Error("PSD+SSD should earn subscriber prices")
	}
	// The combined bound is the stricter of the two, so earning cannot
	// beat pure SSD under identical workload laws.
	ssd, err := Run(quickCfg(msg.SSD, core.MaxEB{}, 6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Earning > ssd.Earning*1.001 {
		t.Errorf("stricter combined bounds should not earn more: %v vs SSD %v",
			res.Earning, ssd.Earning)
	}
}

func TestIndexedMatchIdenticalResults(t *testing.T) {
	plain, err := Run(quickCfg(msg.SSD, core.MaxEB{}, 9))
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg(msg.SSD, core.MaxEB{}, 9)
	cfg.IndexedMatch = true
	fast, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.ValidDeliveries != fast.ValidDeliveries ||
		plain.Receptions != fast.Receptions ||
		plain.Earning != fast.Earning ||
		plain.DropsExpired != fast.DropsExpired {
		t.Errorf("indexed matching changed results:\n plain %+v\n fast  %+v", plain, fast)
	}
}

func TestWorkloadBothGeneratesBothBounds(t *testing.T) {
	c := workload.Config{Scenario: msg.Both, Seed: 1, Duration: 10 * vtime.Minute}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	subs := c.Subscriptions([]msg.NodeID{0})
	for _, s := range subs {
		if s.Deadline == 0 || s.Price == 0 {
			t.Fatal("Both subscriptions need deadlines and prices")
		}
	}
	pub := c.NewPublisher(0, 0)
	m, ok := pub.Next()
	if !ok || m.Allowed == 0 {
		t.Fatal("Both messages need publisher bounds")
	}
}
