// Package simnet wires the whole system together on the discrete-event
// engine: the overlay topology, per-link transmission with sampled rates,
// brokers running a scheduling strategy, publishers and subscriber
// accounting. One Run reproduces one data point of the paper's evaluation.
package simnet

import (
	"fmt"
	"sort"
	"sync"

	"bdps/internal/broker"
	"bdps/internal/core"
	"bdps/internal/metrics"
	"bdps/internal/msg"
	"bdps/internal/routing"
	"bdps/internal/sim"
	"bdps/internal/stats"
	"bdps/internal/topology"
	"bdps/internal/trace"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

// LinkModel selects how per-transfer link rates are drawn.
type LinkModel uint8

// Link models.
const (
	// LinkNormal samples each transfer's per-KB rate from the link's
	// N(μ,σ²), truncated at MinRate — the paper's model (§3.2).
	LinkNormal LinkModel = iota
	// LinkFixed uses the mean deterministically (the fixed-bandwidth
	// assumption of QRON-style related work, for the ablation).
	LinkFixed
	// LinkGamma samples from a shifted gamma matched to the link's mean
	// and variance (the IP-delay shape of the paper's refs [17,18]).
	LinkGamma
)

// String implements fmt.Stringer.
func (m LinkModel) String() string {
	switch m {
	case LinkNormal:
		return "normal"
	case LinkFixed:
		return "fixed"
	case LinkGamma:
		return "gamma"
	}
	return fmt.Sprintf("LinkModel(%d)", uint8(m))
}

// Config describes one simulation run.
type Config struct {
	Seed     uint64
	Scenario msg.Scenario
	Strategy core.Strategy
	Params   core.Params

	Workload workload.Config

	// Overlay, when non-nil, is used as-is; otherwise TopologyCfg builds
	// the paper's layered mesh with the run's seed.
	Overlay     *topology.Overlay
	TopologyCfg topology.LayeredConfig

	// Multipath > 1 enables K-path routing with per-broker deduplication.
	Multipath int

	// MeasureSamples > 0 makes brokers estimate link-rate parameters from
	// that many measured transfers instead of knowing them exactly.
	MeasureSamples int

	LinkModel LinkModel
	// MinRate truncates sampled rates (ms/KB); default 1.
	MinRate float64

	// Faults injects failures into the run (link outages, broker
	// crashes). Empty means a fault-free run.
	Faults []Fault

	// Tracer receives per-message lifecycle events; nil disables tracing.
	Tracer trace.Tracer

	// PerSubscriber enables per-subscriber delivery accounting (Jain
	// fairness in the Result). Costs one map update per delivery.
	PerSubscriber bool

	// IndexedMatch builds the counting-index fast path on every broker's
	// subscription table. Semantically identical to the linear scan.
	IndexedMatch bool

	// Subscriptions overrides the workload-generated population with an
	// explicit one (every subscription must attach to an edge broker).
	Subscriptions []*msg.Subscription
}

// Fault is an injected failure. The concrete types are LinkDown and
// BrokerCrash.
type Fault interface {
	isFault()
}

// LinkDown takes the directed link From→To out of service during
// [Start, End): no new transmissions start (in-flight transfers finish).
// Take both directions down with two faults.
type LinkDown struct {
	From, To   msg.NodeID
	Start, End vtime.Millis
}

func (LinkDown) isFault() {}

// BrokerCrash permanently kills a broker at time At: queued and arriving
// messages are lost, and its links stop sending.
type BrokerCrash struct {
	ID msg.NodeID
	At vtime.Millis
}

func (BrokerCrash) isFault() {}

func (c *Config) setDefaults() error {
	if c.Strategy == nil {
		c.Strategy = core.MaxEB{}
	}
	if c.Params == (core.Params{}) {
		c.Params = core.DefaultParams()
	}
	if c.MinRate == 0 {
		c.MinRate = 1
	}
	c.Workload.Scenario = c.Scenario
	if c.Workload.Seed == 0 {
		c.Workload.Seed = c.Seed
	}
	return c.Workload.Validate()
}

// rateSampler draws one per-transfer per-KB rate.
type rateSampler interface {
	sample(s *stats.Stream) float64
}

type normalSampler struct{ d stats.TruncatedNormal }

func (n normalSampler) sample(s *stats.Stream) float64 { return n.d.Sample(s) }

type fixedSampler struct{ mean float64 }

func (f fixedSampler) sample(*stats.Stream) float64 { return f.mean }

type gammaSampler struct {
	d   stats.ShiftedGamma
	min float64
}

func (g gammaSampler) sample(s *stats.Stream) float64 {
	x := g.d.Sample(s)
	if x < g.min {
		return g.min
	}
	return x
}

// newSampler builds the configured sampler for a link with true
// distribution d.
func newSampler(model LinkModel, d stats.Normal, minRate float64) rateSampler {
	switch model {
	case LinkFixed:
		return fixedSampler{mean: d.Mean}
	case LinkGamma:
		// Shape 4 gamma matched to (mean, sigma²): θ = σ/2,
		// shift = μ − 2σ. Same two moments, right-skewed tail.
		return gammaSampler{
			d:   stats.ShiftedGamma{K: 4, Theta: d.Sigma / 2, Shift: d.Mean - 2*d.Sigma},
			min: minRate,
		}
	default:
		return normalSampler{d: stats.TruncatedNormal{Normal: d, Min: minRate}}
	}
}

// link is one directed overlay link at runtime. At most one transfer is
// in flight per link, so the completion event is a single closure built
// at assembly time and reused for every transfer (inflight carries the
// message across to it).
type link struct {
	from, to msg.NodeID
	busy     bool
	down     bool
	sampler  rateSampler
	stream   *stats.Stream
	inflight *msg.Message
	onDone   func()
}

// Network is an assembled simulation, stepped by its engine. Most callers
// use Run; tests use New + Engine for finer control.
type Network struct {
	Engine    *sim.Engine
	Overlay   *topology.Overlay
	Brokers   map[msg.NodeID]*broker.Broker
	Collector *metrics.Collector

	cfg    Config
	subs   []*msg.Subscription
	links  map[msg.NodeID]map[msg.NodeID]*link
	dead   map[msg.NodeID]bool
	tracer trace.Tracer
}

// New assembles a network: builds (or adopts) the overlay, generates
// subscriptions, computes routing tables (from true or measured link
// beliefs), instantiates brokers and links, and schedules all
// publications.
func New(cfg Config) (*Network, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	ov := cfg.Overlay
	if ov == nil {
		tc := cfg.TopologyCfg
		if tc.Seed == 0 {
			tc.Seed = cfg.Seed
		}
		built, err := topology.BuildLayered(tc)
		if err != nil {
			return nil, err
		}
		ov = built
	}

	n := &Network{
		Engine:    sim.New(),
		Overlay:   ov,
		Brokers:   make(map[msg.NodeID]*broker.Broker),
		Collector: &metrics.Collector{},
		cfg:       cfg,
		links:     make(map[msg.NodeID]map[msg.NodeID]*link),
		dead:      make(map[msg.NodeID]bool),
		tracer:    cfg.Tracer,
	}
	if n.tracer == nil {
		n.tracer = trace.Nop{}
	}
	if cfg.Subscriptions != nil {
		n.subs = cfg.Subscriptions
	} else {
		n.subs = cfg.Workload.Subscriptions(ov.Edges)
	}

	// Deterministic link enumeration: sorted arcs.
	arcs := ov.Graph.Arcs()
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i][0] != arcs[j][0] {
			return arcs[i][0] < arcs[j][0]
		}
		return arcs[i][1] < arcs[j][1]
	})
	for i, arc := range arcs {
		from, to := arc[0], arc[1]
		truth, _ := ov.Graph.Rate(from, to)
		l := &link{
			from:    from,
			to:      to,
			sampler: newSampler(cfg.LinkModel, truth, cfg.MinRate),
			stream:  stats.DeriveN(cfg.Seed, "simnet/link", i),
		}
		l.onDone = func() { n.linkDone(l) }
		if n.links[from] == nil {
			n.links[from] = make(map[msg.NodeID]*link)
		}
		n.links[from][to] = l
	}

	// Link-rate beliefs: exact (paper default) or measured.
	beliefs := func(from, to msg.NodeID) stats.Normal {
		r, _ := ov.Graph.Rate(from, to)
		return r
	}
	if cfg.MeasureSamples > 0 {
		measured := make(map[[2]msg.NodeID]stats.Normal, len(arcs))
		for i, arc := range arcs {
			truth, _ := ov.Graph.Rate(arc[0], arc[1])
			sampler := newSampler(cfg.LinkModel, truth, cfg.MinRate)
			probe := stats.DeriveN(cfg.Seed, "simnet/measure", i)
			est := &stats.WelfordEstimator{Prior: truth}
			for k := 0; k < cfg.MeasureSamples; k++ {
				est.Observe(sampler.sample(probe))
			}
			measured[[2]msg.NodeID{arc[0], arc[1]}] = est.Estimate()
		}
		beliefs = func(from, to msg.NodeID) stats.Normal {
			return measured[[2]msg.NodeID{from, to}]
		}
	}

	tables, err := routing.Build(ov, n.subs, routing.Options{
		Rates:     beliefs,
		Multipath: cfg.Multipath,
	})
	if err != nil {
		return nil, err
	}
	if cfg.IndexedMatch {
		for _, t := range tables {
			t.EnableIndex()
		}
	}

	for id := 0; id < ov.Graph.N(); id++ {
		nid := msg.NodeID(id)
		means := make(map[msg.NodeID]float64)
		for _, e := range ov.Graph.Neighbors(nid) {
			means[e.To] = beliefs(nid, e.To).Mean
		}
		b, err := broker.New(broker.Config{
			ID:        nid,
			Scenario:  cfg.Scenario,
			Params:    cfg.Params,
			Strategy:  cfg.Strategy,
			Table:     tables[nid],
			LinkMeans: means,
			Dedup:     cfg.Multipath > 1,
		})
		if err != nil {
			return nil, err
		}
		n.Brokers[nid] = b
	}

	// Schedule every publication. Events live in one slab instead of one
	// closure each; the slab is sized after generation so the element
	// pointers handed to the engine stay stable.
	var pubs []*msg.Message
	for i, ingress := range ov.Ingress {
		pub := cfg.Workload.NewPublisher(i, ingress)
		for {
			m, ok := pub.Next()
			if !ok {
				break
			}
			pubs = append(pubs, m)
		}
	}
	injects := make([]injectEvent, len(pubs))
	for i, m := range pubs {
		injects[i] = injectEvent{n: n, m: m}
		n.Engine.AtRun(m.Published, &injects[i])
	}

	// Schedule injected faults.
	for _, f := range cfg.Faults {
		switch f := f.(type) {
		case LinkDown:
			l := n.links[f.From][f.To]
			if l == nil {
				return nil, fmt.Errorf("simnet: LinkDown on missing arc %d->%d", f.From, f.To)
			}
			if f.End < f.Start {
				return nil, fmt.Errorf("simnet: LinkDown window [%v,%v) inverted", f.Start, f.End)
			}
			n.Engine.At(f.Start, func() { l.down = true })
			n.Engine.At(f.End, func() {
				l.down = false
				n.kick(f.From, f.To)
			})
		case BrokerCrash:
			if _, ok := n.Brokers[f.ID]; !ok {
				return nil, fmt.Errorf("simnet: BrokerCrash on unknown broker %d", f.ID)
			}
			n.Engine.At(f.At, func() { n.dead[f.ID] = true })
		default:
			return nil, fmt.Errorf("simnet: unknown fault type %T", f)
		}
	}
	return n, nil
}

// Subscriptions exposes the generated population (for tests and reports).
func (n *Network) Subscriptions() []*msg.Subscription { return n.subs }

// injectEvent is a pre-scheduled publication (one slab element per
// message; see New).
type injectEvent struct {
	n *Network
	m *msg.Message
}

// Run implements sim.Runner.
func (ev *injectEvent) Run() { ev.n.inject(ev.m) }

// procEvent is a pooled processing event: arrive schedules one after the
// processing delay, Run recycles it before dispatching.
type procEvent struct {
	n  *Network
	m  *msg.Message
	at msg.NodeID
}

var procPool = sync.Pool{New: func() any { return new(procEvent) }}

// Run implements sim.Runner.
func (ev *procEvent) Run() {
	n, m, at := ev.n, ev.m, ev.at
	*ev = procEvent{}
	procPool.Put(ev)
	n.process(m, at)
}

// inject delivers a freshly published message to its ingress broker.
func (n *Network) inject(m *msg.Message) {
	if n.cfg.PerSubscriber {
		var interested []int32
		for _, s := range n.subs {
			if s.Filter.Match(&m.Attrs) {
				interested = append(interested, int32(s.ID))
			}
		}
		n.Collector.PublishedTo(interested)
	} else {
		n.Collector.Published(workload.Interested(n.subs, m))
	}
	n.tracer.Emit(trace.Event{T: n.Engine.Now(), Kind: trace.Publish,
		MsgID: uint64(m.ID), Broker: int32(m.Ingress)})
	n.arrive(m, m.Ingress)
}

// arrive counts a broker reception and schedules processing after PD.
// Arrivals at crashed brokers are lost.
func (n *Network) arrive(m *msg.Message, at msg.NodeID) {
	if n.dead[at] {
		n.Collector.DroppedCrashed(1)
		n.tracer.Emit(trace.Event{T: n.Engine.Now(), Kind: trace.Drop,
			MsgID: uint64(m.ID), Broker: int32(at), Note: "crashed"})
		return
	}
	n.Collector.Reception()
	n.tracer.Emit(trace.Event{T: n.Engine.Now(), Kind: trace.Arrive,
		MsgID: uint64(m.ID), Broker: int32(at)})
	ev := procPool.Get().(*procEvent)
	ev.n, ev.m, ev.at = n, m, at
	n.Engine.AfterRun(n.cfg.Params.PD, ev)
}

// process runs the broker logic and kicks any links that gained work.
func (n *Network) process(m *msg.Message, at msg.NodeID) {
	if n.dead[at] {
		n.Collector.DroppedCrashed(1)
		return
	}
	b := n.Brokers[at]
	res := b.Process(m, n.Engine.Now())
	for _, d := range res.Deliveries {
		n.Collector.DeliveredTo(int32(d.SubID), d.Price, d.Latency, d.Valid)
		n.tracer.Emit(trace.Event{T: n.Engine.Now(), Kind: trace.Deliver,
			MsgID: uint64(m.ID), Broker: int32(at), Peer: int32(d.SubID)})
	}
	if res.ArrivalDrops > 0 {
		n.Collector.DroppedOnArrival(res.ArrivalDrops)
	}
	for _, hop := range res.EnqueuedHops {
		n.tracer.Emit(trace.Event{T: n.Engine.Now(), Kind: trace.Enqueue,
			MsgID: uint64(m.ID), Broker: int32(at), Peer: int32(hop)})
		n.kick(at, hop)
	}
}

// kick starts a transmission on the (from → to) link if it is idle, up,
// and work is queued. Each completion re-kicks, draining the queue.
func (n *Network) kick(from, to msg.NodeID) {
	l := n.links[from][to]
	if l == nil || l.busy || l.down || n.dead[from] {
		return
	}
	b := n.Brokers[from]
	q := b.Queue(to)
	e, drops := q.PopNext(b.Strategy(), n.Engine.Now(), b.Params())
	for _, d := range drops {
		reason := "expired"
		if d.Reason == core.DropHopeless {
			reason = "hopeless"
		}
		n.tracer.Emit(trace.Event{T: n.Engine.Now(), Kind: trace.Drop,
			MsgID: d.Entry.MsgID, Broker: int32(from), Note: reason})
		switch d.Reason {
		case core.DropExpired:
			n.Collector.DroppedExpired(1)
		case core.DropHopeless:
			n.Collector.DroppedHopeless(1)
		}
		d.Entry.Release()
	}
	if e == nil {
		return
	}
	l.busy = true
	m := e.Data.(*msg.Message)
	n.tracer.Emit(trace.Event{T: n.Engine.Now(), Kind: trace.Send,
		MsgID: uint64(m.ID), Broker: int32(from), Peer: int32(to)})
	tx := e.SizeKB * l.sampler.sample(l.stream)
	e.Release()
	l.inflight = m
	n.Engine.After(tx, l.onDone)
}

// linkDone completes one transfer: the message arrives at the far end
// and the link immediately tries to pick up more queued work.
func (n *Network) linkDone(l *link) {
	m := l.inflight
	l.inflight = nil
	l.busy = false
	n.arrive(m, l.to)
	n.kick(l.from, l.to)
}

// Run assembles a network, runs it to completion (all publications done
// and all queues drained) and returns the metrics.
func Run(cfg Config) (metrics.Result, error) {
	n, err := New(cfg)
	if err != nil {
		return metrics.Result{}, err
	}
	n.Engine.Run()
	r := n.Collector.Result()
	r.Seed = cfg.Seed
	r.Strategy = cfg.Strategy.Name()
	r.Scenario = cfg.Scenario.String()
	r.Label = fmt.Sprintf("%s/%s rate=%.0f", r.Scenario, r.Strategy, cfg.Workload.RatePerMin)
	peak := 0
	for _, b := range n.Brokers {
		if p := b.PeakQueue(); p > peak {
			peak = p
		}
	}
	r.PeakQueue = peak
	return r, nil
}
