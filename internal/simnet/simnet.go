// Package simnet is the discrete-event backend of the unified runtime
// layer (internal/runtime): a thin Transport that realizes a
// runtime.Plan on the deterministic event engine. All deployment wiring
// — topology, routing tables, brokers, workload, fault validation,
// metrics — lives in the plan; this package only turns link transfers
// and processing delays into events on a virtual clock. One Run
// reproduces one data point of the paper's evaluation.
//
// The historical simnet names (Config, LinkModel, Fault, LinkDown,
// BrokerCrash) are aliases of their runtime equivalents, so existing
// callers and configs keep working unchanged.
package simnet

import (
	"sync"

	"bdps/internal/broker"
	"bdps/internal/core"
	"bdps/internal/durable"
	"bdps/internal/metrics"
	"bdps/internal/msg"
	"bdps/internal/routing"
	"bdps/internal/runtime"
	"bdps/internal/sim"
	"bdps/internal/stats"
	"bdps/internal/topology"
	"bdps/internal/trace"
	"bdps/internal/vtime"
)

// Config describes one simulation run (alias of the unified runtime
// config; the simulator ignores TimeScale).
type Config = runtime.Config

// LinkModel selects how per-transfer link rates are drawn.
type LinkModel = runtime.LinkModel

// Link models.
const (
	LinkNormal = runtime.LinkNormal
	LinkFixed  = runtime.LinkFixed
	LinkGamma  = runtime.LinkGamma
)

// Fault is an injected failure; LinkDown, BrokerCrash, LinkLoss,
// BrokerRestart and SessionDown are the concrete types.
type (
	Fault         = runtime.Fault
	LinkDown      = runtime.LinkDown
	BrokerCrash   = runtime.BrokerCrash
	LinkLoss      = runtime.LinkLoss
	BrokerRestart = runtime.BrokerRestart
	SessionDown   = runtime.SessionDown
)

// Transport is the discrete-event backend: deterministic, virtual-time,
// single-threaded.
type Transport struct{}

// Name implements runtime.Transport.
func (Transport) Name() string { return "sim" }

// Deterministic implements runtime.Transport: simulation runs are exactly
// reproducible from their config, which is what lets the experiment
// harness cache them.
func (Transport) Deterministic() bool { return true }

// Deploy implements runtime.Transport.
func (Transport) Deploy(p *runtime.Plan) (runtime.Deployment, error) { return deploy(p) }

// link is one directed overlay link at runtime. At most one transfer is
// in flight per link, so the completion event is a single closure built
// at assembly time and reused for every transfer (frames carries the
// surviving wire frames across to it, in delivery order).
type link struct {
	from, to msg.NodeID
	busy     bool
	down     bool
	sampler  runtime.Sampler
	stream   *stats.Stream
	onDone   func()

	// Reliable-channel state: the per-link sequence counter, the loss
	// adversary (nil on clean links), the retransmission policy and the
	// receiving end's dedup/reorder cursor — the exact state the live
	// overlay keeps per peer connection.
	seq     uint64
	lm      *runtime.LossModel
	retry   runtime.RetryPolicy
	recv    *runtime.RecvState
	frames  []simFrame
	scratch []*msg.Message
}

// simFrame is one surviving wire frame of an in-flight transfer (lost
// transmissions charge link time but never appear here). epoch is the
// sender's incarnation epoch when the frame hit the wire; a frame still
// in flight when its sender crashes and restarts arrives stale.
type simFrame struct {
	m         *msg.Message
	seq, base uint64
	epoch     uint32
}

// simSession is the simulator's model of one suspended subscriber
// session: the broker-side delivery sequence plus the bounded replay
// ring the live edge broker retains — sequence and deadline data only,
// since nothing is rewritten to a wire here. lastAck is the resume
// token's sequence (the last delivery before the suspension).
type simSession struct {
	seq     uint64
	lastAck uint64
	ring    []simDelivery
	limit   int
}

// simDelivery is one retained delivery: its session sequence and the
// deadline data the resume gate needs.
type simDelivery struct {
	seq                uint64
	published, allowed vtime.Millis
}

// record mirrors the live session ring: next sequence, bounded
// retention with oldest-first eviction.
func (s *simSession) record(published, allowed vtime.Millis) {
	s.seq++
	d := simDelivery{seq: s.seq, published: published, allowed: allowed}
	if len(s.ring) >= s.limit {
		copy(s.ring, s.ring[1:])
		s.ring[len(s.ring)-1] = d
	} else {
		s.ring = append(s.ring, d)
	}
}

// Network is a deployed simulation, stepped by its engine. Most callers
// use Run; tests use New + Engine for finer control. It implements
// runtime.Deployment.
type Network struct {
	Engine    *sim.Engine
	Overlay   *topology.Overlay
	Brokers   map[msg.NodeID]*broker.Broker
	Collector *metrics.Collector

	cfg    Config
	subs   []*msg.Subscription
	links  map[msg.NodeID]map[msg.NodeID]*link
	dead   map[msg.NodeID]bool
	tracer trace.Tracer

	// Crash-restart durability: the plan (whose broker/table maps a
	// restart swaps), the repair engine, per-broker incarnation epochs,
	// the deploy-time durable snapshots modeling each restartable
	// broker's WAL, and the suspended subscriber sessions.
	p        *runtime.Plan
	det      *runtime.FailureDetector
	epochs   map[msg.NodeID]uint32
	walSnaps map[msg.NodeID][]durable.Entry
	sessions map[msg.SubID]*simSession
}

// deploy realizes a plan on a fresh engine: links with the plan's
// samplers and streams, the plan's brokers, and the fault schedule as
// timed events.
func deploy(p *runtime.Plan) (*Network, error) {
	n := &Network{
		Engine:    sim.New(),
		Overlay:   p.Overlay,
		Brokers:   p.Brokers,
		Collector: p.Metrics,
		cfg:       p.Cfg,
		subs:      p.Subs,
		links:     make(map[msg.NodeID]map[msg.NodeID]*link),
		dead:      make(map[msg.NodeID]bool),
		tracer:    p.Cfg.Tracer,
		p:         p,
		epochs:    make(map[msg.NodeID]uint32),
		walSnaps:  make(map[msg.NodeID][]durable.Entry),
		sessions:  make(map[msg.SubID]*simSession),
	}
	if n.tracer == nil {
		n.tracer = trace.Nop{}
	}
	for _, pl := range p.Links {
		l := &link{
			from:    pl.From,
			to:      pl.To,
			sampler: p.Sampler(pl),
			stream:  p.LinkStream(pl),
			lm:      p.LossModel(pl),
			retry:   p.RetryPolicy(pl),
			recv:    runtime.NewRecvState(p.Cfg.Reliability.Window),
		}
		l.onDone = func() { n.linkDone(l) }
		if n.links[pl.From] == nil {
			n.links[pl.From] = make(map[msg.NodeID]*link)
		}
		n.links[pl.From][pl.To] = l
	}

	// Subscription churn becomes timed events mutating the routing
	// tables in place — tables with an enabled counting index absorb the
	// mutations incrementally (no rebuild, no lost fast path).
	if len(p.SubEvents) > 0 {
		if p.Agg != nil {
			// Aggregated churn: every event goes through the plan's
			// covering driver, so a subscribe covered by a resident
			// representative mutates one edge table instead of flooding
			// entries everywhere, and an unsubscribe re-exposes whatever
			// the departing filter was masking.
			for i := range p.SubEvents {
				ev := p.SubEvents[i]
				n.Engine.At(ev.At, func() {
					if ev.Unsub {
						p.Agg.Unsubscribe(ev.Sub.ID)
					} else {
						p.Agg.Subscribe(ev.Sub)
					}
				})
			}
		} else {
			tables := make(map[msg.NodeID]*routing.Table, len(p.Brokers))
			for id, b := range p.Brokers {
				tables[id] = b.Table()
			}
			// One installer for the whole schedule: Dijkstra runs once per
			// ingress, not once per churn event.
			ins := routing.NewInstaller(p.Overlay, routing.Options{
				Rates: p.Beliefs, Multipath: p.Cfg.Multipath,
			})
			for i := range p.SubEvents {
				ev := p.SubEvents[i]
				n.Engine.At(ev.At, func() {
					if ev.Unsub {
						routing.RemoveSubAll(tables, ev.Sub.ID)
					} else {
						ins.Install(tables, ev.Sub)
					}
				})
			}
		}
	}

	// Faults are validated by the plan; here they only become events.
	// With recovery enabled, each fault also schedules the detection
	// event a live heartbeat monitor would produce: confirmation exactly
	// HeartbeatTimeout after the fault struck, one detection per directed
	// arc silenced — which is what the per-neighbor monitors of the live
	// overlay observe, so the two backends account detections identically.
	var det *runtime.FailureDetector
	if p.Cfg.Recovery.Detect {
		det = runtime.NewFailureDetector(p, n.Collector, nil)
	}
	n.det = det
	rec := p.Cfg.Recovery

	// Brokers with a scheduled restart get their WAL modeled now: the
	// durable snapshot a live deployment checkpoints at deploy time.
	// (Admissions after deployment — churn events — mutate tables
	// without touching the log on either backend, so the recovered
	// state is the deployed population on both.)
	for _, f := range p.Cfg.Faults {
		if r, ok := f.(BrokerRestart); ok {
			n.walSnaps[r.ID] = p.SnapshotDurable(r.ID)
		}
	}
	for _, f := range p.Cfg.Faults {
		switch f := f.(type) {
		case LinkDown:
			l := n.links[f.From][f.To]
			n.Engine.At(f.Start, func() { l.down = true })
			n.Engine.At(f.End, func() {
				l.down = false
				n.kick(f.From, f.To)
			})
			if det != nil && f.End > f.Start+rec.HeartbeatTimeout {
				// Outages shorter than the timeout never reach the dead
				// state — the monitor sees a heartbeat again in time.
				arc := [2]msg.NodeID{f.From, f.To}
				n.Engine.At(f.Start+rec.HeartbeatTimeout, func() {
					det.ArcsDead([][2]msg.NodeID{arc}, f.Start, f.Start+rec.HeartbeatTimeout)
				})
				n.Engine.At(f.End+rec.HeartbeatInterval, func() {
					det.ArcRestored(f.From, f.To)
				})
			}
		case LinkLoss:
			// Nothing to arm: the adversary is consulted inline on every
			// transmission (kick), gated by its own [Start, End) window.
		case BrokerCrash:
			n.Engine.At(f.At, func() { n.dead[f.ID] = true })
			if det != nil {
				arcs := make([][2]msg.NodeID, 0, len(p.Overlay.Graph.Neighbors(f.ID)))
				for _, e := range p.Overlay.Graph.Neighbors(f.ID) {
					arcs = append(arcs, [2]msg.NodeID{f.ID, e.To})
				}
				n.Engine.At(f.At+rec.HeartbeatTimeout, func() {
					det.ArcsDead(arcs, f.At, f.At+rec.HeartbeatTimeout)
				})
			}
		case BrokerRestart:
			n.Engine.At(f.At, func() { n.restartBroker(f.ID) })
		case SessionDown:
			n.Engine.At(f.Start, func() {
				n.sessions[f.Sub] = &simSession{limit: runtime.SessionRingLimit}
			})
			n.Engine.At(f.End, func() { n.resumeSession(f.Sub) })
		}
	}
	return n, nil
}

// restartBroker brings a crashed broker back as a fresh incarnation:
// epoch bumped, broker and table rebuilt from the modeled WAL (empty
// queues — the crash took them), inbound reliable-channel state reset
// (a live rejoin opens new connections), and the crash evidence
// withdrawn from the repair engine so routes move back through the
// rejoined node. The broker's outbound send sequences survive in the
// links themselves — exactly the watermarks a live WAL restores, so
// neighbor dedup state never mistakes a post-restart frame for a replay.
func (n *Network) restartBroker(id msg.NodeID) {
	delete(n.dead, id)
	n.epochs[id]++
	subs, err := n.p.RestartBroker(id, n.walSnaps[id])
	if err != nil {
		// The original deployment built this same broker config; a
		// rebuild cannot fail without the plan being unusable. Leave the
		// broker dead rather than half-alive.
		n.dead[id] = true
		return
	}
	if subs > 0 {
		n.Collector.SubReplayed(subs)
	}
	for _, lm := range n.links {
		if l, ok := lm[id]; ok {
			l.recv = runtime.NewRecvState(n.cfg.Reliability.Window)
		}
	}
	if n.det != nil {
		n.det.BrokerRestarted(id, nil)
	}
}

// resumeSession ends one suspended subscriber session: the resume
// accounting of a live client redialing with its token — session
// resumed, retained deliveries past the token replayed while their
// bound still holds, expired ones charged to DroppedDeadline.
func (n *Network) resumeSession(id msg.SubID) {
	s, ok := n.sessions[id]
	if !ok {
		return
	}
	now := n.Engine.Now()
	n.Collector.SessionResumed(1)
	replayed, expired := 0, 0
	for _, d := range s.ring {
		if d.seq <= s.lastAck {
			continue
		}
		if d.allowed <= 0 || now-d.published > d.allowed {
			expired++
			continue
		}
		replayed++
	}
	if expired > 0 {
		n.Collector.DroppedDeadline(expired)
	}
	if replayed > 0 {
		n.Collector.MsgReplayed(replayed)
	}
	delete(n.sessions, id)
}

// New assembles a ready-to-step network from a config: plan, deployment,
// publication accounting and scheduled publications in one call, so
// driving the engine directly yields the same Collector contents as Run
// (compatibility surface for tests and benchmarks).
func New(cfg Config) (*Network, error) {
	p, err := runtime.NewPlan(cfg)
	if err != nil {
		return nil, err
	}
	n, err := deploy(p)
	if err != nil {
		return nil, err
	}
	p.AccountPublications()
	if err := n.Inject(p.Pubs); err != nil {
		return nil, err
	}
	return n, nil
}

// Subscriptions exposes the generated population (for tests and reports).
func (n *Network) Subscriptions() []*msg.Subscription { return n.subs }

// Inject implements runtime.Deployment: every publication becomes one
// event at its virtual Published instant. Events live in one slab
// instead of one closure each; the slab is sized up front so the element
// pointers handed to the engine stay stable.
func (n *Network) Inject(pubs []*msg.Message) error {
	injects := make([]injectEvent, len(pubs))
	for i, m := range pubs {
		injects[i] = injectEvent{n: n, m: m}
		n.Engine.AtRun(m.Published, &injects[i])
	}
	return nil
}

// Drain implements runtime.Deployment: run the engine until no events
// remain (all publications done and all queues drained).
func (n *Network) Drain() error {
	n.Engine.Run()
	return nil
}

// PeakQueue implements runtime.Deployment.
func (n *Network) PeakQueue() int {
	peak := 0
	for _, b := range n.Brokers {
		if p := b.PeakQueue(); p > peak {
			peak = p
		}
	}
	return peak
}

// Close implements runtime.Deployment. The simulator holds no external
// resources.
func (n *Network) Close() error { return nil }

// injectEvent is a pre-scheduled publication (one slab element per
// message; see Inject).
type injectEvent struct {
	n *Network
	m *msg.Message
}

// Run implements sim.Runner.
func (ev *injectEvent) Run() { ev.n.inject(ev.m) }

// procEvent is a pooled processing event: arrive schedules one after the
// processing delay, Run recycles it before dispatching.
type procEvent struct {
	n  *Network
	m  *msg.Message
	at msg.NodeID
}

var procPool = sync.Pool{New: func() any { return new(procEvent) }}

// Run implements sim.Runner.
func (ev *procEvent) Run() {
	n, m, at := ev.n, ev.m, ev.at
	*ev = procEvent{}
	procPool.Put(ev)
	n.process(m, at)
}

// inject delivers a freshly published message to its ingress broker.
// Publication accounting happened in the runtime driver; here the event
// only enters the network (and the trace).
func (n *Network) inject(m *msg.Message) {
	n.tracer.Emit(trace.Event{T: n.Engine.Now(), Kind: trace.Publish,
		MsgID: uint64(m.ID), Broker: int32(m.Ingress)})
	n.arrive(m, m.Ingress)
}

// arrive counts a broker reception and schedules processing after PD.
// Arrivals at crashed brokers are lost.
func (n *Network) arrive(m *msg.Message, at msg.NodeID) {
	if n.dead[at] {
		n.Collector.DroppedCrashed(1)
		n.tracer.Emit(trace.Event{T: n.Engine.Now(), Kind: trace.Drop,
			MsgID: uint64(m.ID), Broker: int32(at), Note: "crashed"})
		return
	}
	n.Collector.Reception()
	n.tracer.Emit(trace.Event{T: n.Engine.Now(), Kind: trace.Arrive,
		MsgID: uint64(m.ID), Broker: int32(at)})
	ev := procPool.Get().(*procEvent)
	ev.n, ev.m, ev.at = n, m, at
	n.Engine.AfterRun(n.cfg.Params.PD, ev)
}

// process runs the broker logic and kicks any links that gained work.
func (n *Network) process(m *msg.Message, at msg.NodeID) {
	if n.dead[at] {
		n.Collector.DroppedCrashed(1)
		return
	}
	b := n.Brokers[at]
	res := b.Process(m, n.Engine.Now())
	for _, d := range res.Deliveries {
		n.Collector.DeliveredAt(int32(d.SubID), d.Price, d.Published, d.Latency, d.Valid)
		n.tracer.Emit(trace.Event{T: n.Engine.Now(), Kind: trace.Deliver,
			MsgID: uint64(m.ID), Broker: int32(at), Peer: int32(d.SubID)})
		if s, ok := n.sessions[d.SubID]; ok {
			// A suspended session retains the delivery for the resume
			// replay, exactly as the live edge broker's session ring does.
			s.record(d.Published, d.Allowed)
		}
	}
	if res.ArrivalDrops > 0 {
		n.Collector.DroppedOnArrival(res.ArrivalDrops)
	}
	if len(res.Shed) > 0 {
		// Pressure shedding: the broker evicted its worst-scored entries
		// while enqueuing; account and release them here (entry ownership
		// stays with the network, as with queue-drop accounting in kick).
		n.Collector.DroppedShed(len(res.Shed))
		for _, e := range res.Shed {
			n.tracer.Emit(trace.Event{T: n.Engine.Now(), Kind: trace.Drop,
				MsgID: e.MsgID, Broker: int32(at), Note: "shed"})
			e.Release()
		}
	}
	for _, hop := range res.EnqueuedHops {
		n.tracer.Emit(trace.Event{T: n.Engine.Now(), Kind: trace.Enqueue,
			MsgID: uint64(m.ID), Broker: int32(at), Peer: int32(hop)})
		n.kick(at, hop)
	}
}

// kick starts a transmission on the (from → to) link if it is idle, up,
// and work is queued. Each completion re-kicks, draining the queue.
//
// One kick plays one transfer against the link's loss adversary: the
// head frame's whole send chain (losses retried head-of-line, each
// attempt charging link time again) plus, on a reorder decision, the
// next queued frame swapped in front of it. Only surviving frames travel;
// lost attempts consume time and nothing else — exactly what the live
// shim does with mangled FrameDataDrop writes.
func (n *Network) kick(from, to msg.NodeID) {
	l := n.links[from][to]
	if l == nil || l.busy || l.down || n.dead[from] {
		return
	}
	b := n.Brokers[from]
	now := n.Engine.Now()
	pop := func() (*msg.Message, float64, vtime.Millis, bool) {
		e, drops := b.Queue(to).PopNext(b.Strategy(), now, b.Params())
		for _, d := range drops {
			reason := "expired"
			if d.Reason == core.DropHopeless {
				reason = "hopeless"
			}
			n.tracer.Emit(trace.Event{T: now, Kind: trace.Drop,
				MsgID: d.Entry.MsgID, Broker: int32(from), Note: reason})
			switch d.Reason {
			case core.DropExpired:
				n.Collector.DroppedExpired(1)
			case core.DropHopeless:
				n.Collector.DroppedHopeless(1)
			}
			d.Entry.Release()
		}
		if e == nil {
			return nil, 0, 0, false
		}
		m := e.Data.(*msg.Message)
		size := e.SizeKB
		dl := l.retry.EffectiveDeadline(e.Targets, size)
		e.Release()
		return m, size, dl, true
	}
	var tx float64
	frames := l.frames[:0]
	// addChain resolves one message's send chain, charges its link time
	// and appends its surviving frames. Sample order (one draw per
	// attempt, then one for a duplicate) is the cross-backend contract.
	addChain := func(m *msg.Message, size float64, dl vtime.Millis) bool {
		l.seq++
		n.tracer.Emit(trace.Event{T: now, Kind: trace.Send,
			MsgID: uint64(m.ID), Broker: int32(from), Peer: int32(to)})
		out := runtime.ResolveSend(l.lm, l.retry, l.seq, size, dl, now)
		for i := 0; i < out.Attempts; i++ {
			tx += size * l.sampler.Sample(l.stream)
		}
		if out.Losses > 0 {
			n.Collector.FrameLost(out.Losses)
		}
		if out.Retransmits > 0 {
			n.Collector.Retransmit(out.Retransmits)
		}
		if !out.Deliver {
			n.Collector.DroppedDeadline(1)
			n.tracer.Emit(trace.Event{T: now, Kind: trace.Drop,
				MsgID: uint64(m.ID), Broker: int32(from), Note: "deadline-retx"})
			return false
		}
		epoch := n.epochs[from]
		frames = append(frames, simFrame{m: m, seq: l.seq, epoch: epoch})
		if out.Dup {
			tx += size * l.sampler.Sample(l.stream)
			frames = append(frames, simFrame{m: m, seq: l.seq, epoch: epoch})
		}
		return true
	}
	m, size, dl, ok := pop()
	if !ok {
		return
	}
	headSeq := l.seq + 1
	if addChain(m, size, dl) && l.lm.Swap(headSeq, now) {
		// Reorder: the delivered head frame swaps behind its successor.
		if m2, size2, dl2, ok2 := pop(); ok2 {
			split := len(frames)
			if addChain(m2, size2, dl2) {
				rotated := make([]simFrame, 0, len(frames))
				rotated = append(rotated, frames[split:]...)
				rotated = append(rotated, frames[:split]...)
				frames = rotated
			}
		}
	}
	// base = the lowest still-live sequence when each frame hits the wire:
	// the suffix-minimum over the delivery order. The receiver must never
	// wait for anything below it (abandoned frames leave gaps).
	low := ^uint64(0)
	for i := len(frames) - 1; i >= 0; i-- {
		if frames[i].seq < low {
			low = frames[i].seq
		}
		frames[i].base = low
	}
	l.busy = true
	l.frames = frames
	n.Engine.After(tx, l.onDone)
}

// linkDone completes one transfer: the surviving frames run through the
// receiving end's dedup/reorder state in delivery order, in-order
// messages arrive at the far end, and the link immediately tries to pick
// up more queued work.
func (n *Network) linkDone(l *link) {
	l.busy = false
	deliver := l.scratch[:0]
	for _, f := range l.frames {
		if f.epoch < n.epochs[l.from] {
			// The frame was in flight when its sender crashed and
			// restarted: it carries a dead incarnation's epoch, and the
			// receiver discards it exactly as a live node rejects stale
			// frames from a reborn neighbor.
			n.Collector.StaleEpoch(1)
			continue
		}
		var dup bool
		var healed int
		deliver, dup, healed = l.recv.Accept(f.seq, f.base, f.m, deliver[:0])
		if dup {
			n.Collector.DupSuppressed(1)
		}
		if healed > 0 {
			n.Collector.ReorderHealed(healed)
		}
		for _, m := range deliver {
			n.arrive(m, l.to)
		}
	}
	l.scratch = deliver[:0]
	l.frames = l.frames[:0]
	n.kick(l.from, l.to)
}

// Run executes one configuration on the discrete-event backend through
// the unified runtime driver and returns the metrics.
func Run(cfg Config) (metrics.Result, error) {
	return runtime.Run(cfg, Transport{})
}
