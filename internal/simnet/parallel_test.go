package simnet

import (
	"reflect"
	"sync"
	"testing"

	"bdps/internal/core"
	"bdps/internal/metrics"
	"bdps/internal/msg"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

// TestConcurrentRunsDeterministic executes the same config from several
// goroutines at once and requires bit-identical results: the only state
// shared between concurrent runs (the entry and event sync.Pools) must
// be invisible to the simulation. Run with -race for the full audit.
func TestConcurrentRunsDeterministic(t *testing.T) {
	cfg := Config{
		Seed:     1,
		Scenario: msg.PSD,
		Strategy: core.MaxEB{},
		Workload: workload.Config{RatePerMin: 12, Duration: 2 * vtime.Minute},
	}
	baseline, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	results := make([]metrics.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = Run(cfg)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(baseline, results[i]) {
			t.Errorf("run %d diverged:\nbase: %+v\ngot:  %+v", i, baseline, results[i])
		}
	}
}

// TestConcurrentMixedConfigs interleaves different strategies and
// scenarios concurrently and checks each against its solo baseline —
// cross-run contamination through pooled objects would skew one of them.
func TestConcurrentMixedConfigs(t *testing.T) {
	configs := []Config{
		{Seed: 1, Scenario: msg.PSD, Strategy: core.MaxEB{},
			Workload: workload.Config{RatePerMin: 12, Duration: 2 * vtime.Minute}},
		{Seed: 2, Scenario: msg.SSD, Strategy: core.FIFO{}, Params: core.Params{PD: 2},
			Workload: workload.Config{RatePerMin: 10, Duration: 2 * vtime.Minute}},
		{Seed: 3, Scenario: msg.PSD, Strategy: core.MaxEBPC{R: 0.5},
			Workload: workload.Config{RatePerMin: 6, Duration: 2 * vtime.Minute}},
	}
	baselines := make([]metrics.Result, len(configs))
	for i, cfg := range configs {
		var err error
		if baselines[i], err = Run(cfg); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	const rounds = 3
	fails := make(chan string, len(configs)*rounds)
	for r := 0; r < rounds; r++ {
		for i, cfg := range configs {
			wg.Add(1)
			go func(i int, cfg Config) {
				defer wg.Done()
				res, err := Run(cfg)
				if err != nil {
					fails <- err.Error()
					return
				}
				if !reflect.DeepEqual(baselines[i], res) {
					fails <- res.Label + " diverged under concurrency"
				}
			}(i, cfg)
		}
	}
	wg.Wait()
	close(fails)
	for f := range fails {
		t.Error(f)
	}
}
