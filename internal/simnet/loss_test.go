package simnet

import (
	"fmt"
	"testing"

	"bdps/internal/core"
	"bdps/internal/msg"
	"bdps/internal/runtime"
	"bdps/internal/stats"
	"bdps/internal/topology"
	"bdps/internal/trace"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

// lossTestOverlay is the crossval pipeline: two ingress, a two-broker
// trunk, two edges.
func lossTestOverlay(t testing.TB) *topology.Overlay {
	t.Helper()
	g := topology.NewGraph(6)
	for _, l := range []struct {
		a, b msg.NodeID
		mean float64
	}{{0, 2, 50}, {1, 2, 55}, {2, 3, 45}, {3, 4, 50}, {3, 5, 60}} {
		if err := g.AddLink(l.a, l.b, stats.Normal{Mean: l.mean, Sigma: 5}); err != nil {
			t.Fatal(err)
		}
	}
	return &topology.Overlay{
		Graph:   g,
		Ingress: []msg.NodeID{0, 1},
		Edges:   []msg.NodeID{4, 5},
	}
}

// deliverySet runs one config and returns its delivery multiset keyed by
// (message, subscriber edge), counting how often each pair delivered.
func deliverySet(t *testing.T, cfg Config) map[[2]int64]int {
	t.Helper()
	buf := &trace.Buffer{}
	cfg.Tracer = buf
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	set := make(map[[2]int64]int)
	for _, e := range buf.Events {
		if e.Kind == trace.Deliver {
			set[[2]int64{int64(e.MsgID), int64(e.Peer)}]++
		}
	}
	return set
}

// TestLossScheduleDeliveryEquivalence is the exactly-once proof: under a
// randomized loss/dup/reorder schedule, retransmission plus per-link
// dedup/reorder healing must reconstruct EXACTLY the delivery set of the
// clean run — the same (message, subscriber) pairs, each delivered
// exactly once. Bounds are generous and retry blind, so no frame is ever
// abandoned; anything the adversary drops, duplicates, or swaps must be
// invisible in the delivered sets, whatever the schedule.
func TestLossScheduleDeliveryEquivalence(t *testing.T) {
	mk := func(seed uint64) Config {
		return Config{
			Seed:     seed,
			Scenario: msg.PSD,
			Strategy: core.MaxEB{},
			Overlay:  lossTestOverlay(t),
			Workload: workload.Config{
				RatePerMin: 4,
				Duration:   10 * vtime.Minute,
				PSDDelayLo: 3 * vtime.Minute,
				PSDDelayHi: 4 * vtime.Minute,
			},
			Reliability: runtime.Reliability{BlindRetry: true},
		}
	}
	for _, seed := range []uint64{1, 7, 1234} {
		// Randomize the schedule by deriving the adversary's intensity
		// from the run seed (any deterministic spread works — the point
		// is that no particular schedule is baked into the assertion).
		rate := 0.05 + 0.25*float64(seed%7)/7
		dup := 0.02 + 0.1*float64(seed%5)/5
		reorder := 0.1 * float64(seed%3) / 3
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			clean := deliverySet(t, mk(seed))
			if len(clean) == 0 {
				t.Fatal("clean run delivered nothing")
			}
			for pair, n := range clean {
				if n != 1 {
					t.Fatalf("clean run delivered %v %d times", pair, n)
				}
			}
			lossy := mk(seed)
			lossy.Faults = []Fault{LinkLoss{
				From: msg.None, To: msg.None,
				Rate: rate, Dup: dup, Reorder: reorder,
			}}
			got := deliverySet(t, lossy)
			if len(got) != len(clean) {
				t.Errorf("delivery sets differ: clean %d pairs, lossy %d", len(clean), len(got))
			}
			for pair, n := range got {
				if n != 1 {
					t.Errorf("lossy run delivered %v %d times (exactly-once broken)", pair, n)
				}
				if clean[pair] == 0 {
					t.Errorf("lossy run delivered %v, absent from the clean run", pair)
				}
			}
			for pair := range clean {
				if got[pair] == 0 {
					t.Errorf("lossy run never delivered %v", pair)
				}
			}
		})
	}
}
