package simnet

import (
	"testing"

	"bdps/internal/core"
	"bdps/internal/msg"
	"bdps/internal/topology"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

// quickCfg is a scaled-down paper setup: same topology, 10-minute window.
func quickCfg(scenario msg.Scenario, strat core.Strategy, rate float64) Config {
	return Config{
		Seed:     1,
		Scenario: scenario,
		Strategy: strat,
		Workload: workload.Config{
			RatePerMin: rate,
			Duration:   10 * vtime.Minute,
		},
	}
}

func TestRunCompletesAndDelivers(t *testing.T) {
	r, err := Run(quickCfg(msg.PSD, core.MaxEB{}, 6))
	if err != nil {
		t.Fatal(err)
	}
	if r.Published == 0 {
		t.Fatal("nothing published")
	}
	if r.ValidDeliveries == 0 {
		t.Fatal("nothing delivered")
	}
	if r.Receptions <= r.Published {
		t.Error("messages should traverse multiple brokers")
	}
	if rate := r.DeliveryRate(); rate <= 0 || rate > 1 {
		t.Errorf("delivery rate = %v", rate)
	}
	if r.LatencyMeanMs <= 0 {
		t.Error("valid deliveries must have positive latency")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(quickCfg(msg.SSD, core.MaxEB{}, 6))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickCfg(msg.SSD, core.MaxEB{}, 6))
	if err != nil {
		t.Fatal(err)
	}
	if a.Receptions != b.Receptions || a.ValidDeliveries != b.ValidDeliveries ||
		a.Earning != b.Earning || a.DropsExpired != b.DropsExpired ||
		a.DropsHopeless != b.DropsHopeless {
		t.Errorf("same seed diverged:\n a=%+v\n b=%+v", a, b)
	}
}

func TestRunSeedSensitivity(t *testing.T) {
	a, _ := Run(quickCfg(msg.SSD, core.MaxEB{}, 6))
	cfg := quickCfg(msg.SSD, core.MaxEB{}, 6)
	cfg.Seed = 2
	b, _ := Run(cfg)
	if a.Receptions == b.Receptions && a.Earning == b.Earning &&
		a.ValidDeliveries == b.ValidDeliveries {
		t.Error("different seeds should differ somewhere")
	}
}

func TestRunLatencyRespectsPhysics(t *testing.T) {
	// Minimum possible end-to-end latency: 4 brokers × 2 ms PD plus
	// 3 links × 50 KB × ≥1 ms/KB... but with realistic rates ≥ 50·30
	// ms/link. Valid deliveries can't beat 2 ms (single-broker local) —
	// here all subscribers sit 3 links deep, so check a loose bound.
	r, err := Run(quickCfg(msg.PSD, core.MaxEB{}, 3))
	if err != nil {
		t.Fatal(err)
	}
	if r.LatencyP50Ms < 3*50*1+4*2 {
		t.Errorf("median latency %v ms is below the physical floor", r.LatencyP50Ms)
	}
	// And deliveries marked valid are within the largest PSD bound.
	if r.LatencyMaxMs > float64(30*vtime.Second) {
		t.Errorf("valid delivery with latency %v beyond max PSD bound", r.LatencyMaxMs)
	}
}

func TestRunFIFOWithoutEpsilonHasNoHopelessDrops(t *testing.T) {
	cfg := quickCfg(msg.PSD, core.FIFO{}, 6)
	cfg.Params = core.Params{PD: 2, Epsilon: 0} // traditional strategy: expiry only
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.DropsHopeless != 0 {
		t.Errorf("ε off but %d hopeless drops", r.DropsHopeless)
	}
}

func TestRunCongestionDegradesDelivery(t *testing.T) {
	lo, err := Run(quickCfg(msg.PSD, core.MaxEB{}, 2))
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Run(quickCfg(msg.PSD, core.MaxEB{}, 15))
	if err != nil {
		t.Fatal(err)
	}
	if hi.DeliveryRate() >= lo.DeliveryRate() {
		t.Errorf("delivery rate should fall with load: lo=%.3f hi=%.3f",
			lo.DeliveryRate(), hi.DeliveryRate())
	}
}

func TestRunEBOutperformsBaselinesUnderLoad(t *testing.T) {
	// The headline qualitative claim at a congested rate, small scale.
	run := func(s core.Strategy, eps float64) float64 {
		cfg := quickCfg(msg.PSD, s, 12)
		cfg.Params = core.Params{PD: 2, Epsilon: eps}
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r.DeliveryRate()
	}
	eb := run(core.MaxEB{}, core.DefaultEpsilon)
	fifo := run(core.FIFO{}, 0)
	rl := run(core.RL{}, 0)
	if eb <= fifo {
		t.Errorf("EB (%.3f) should beat FIFO (%.3f) under load", eb, fifo)
	}
	if eb <= rl {
		t.Errorf("EB (%.3f) should beat RL (%.3f) under load", eb, rl)
	}
}

func TestRunWithPrebuiltOverlay(t *testing.T) {
	ov, err := topology.BuildLayered(topology.LayeredConfig{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg(msg.SSD, core.MaxEB{}, 3)
	cfg.Overlay = ov
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.ValidDeliveries == 0 {
		t.Error("prebuilt overlay run delivered nothing")
	}
}

func TestRunMultipathDeliversWithDedup(t *testing.T) {
	cfg := quickCfg(msg.SSD, core.MaxEB{}, 3)
	cfg.Multipath = 2
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Run(quickCfg(msg.SSD, core.MaxEB{}, 3))
	if err != nil {
		t.Fatal(err)
	}
	if r.ValidDeliveries == 0 {
		t.Fatal("multipath delivered nothing")
	}
	if r.Receptions <= single.Receptions {
		t.Errorf("multipath should cost more traffic: %d vs %d",
			r.Receptions, single.Receptions)
	}
	// Dedup must prevent duplicate deliveries: valid+late per (msg,sub)
	// pair at most once means valid deliveries cannot exceed Σtsᵢ.
	if r.ValidDeliveries > r.TotalTargets {
		t.Errorf("deliveries (%d) exceed targets (%d): dedup broken",
			r.ValidDeliveries, r.TotalTargets)
	}
}

func TestRunMeasuredRatesClose(t *testing.T) {
	exact, err := Run(quickCfg(msg.SSD, core.MaxEB{}, 6))
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickCfg(msg.SSD, core.MaxEB{}, 6)
	cfg.MeasureSamples = 200
	measured, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if measured.ValidDeliveries == 0 {
		t.Fatal("measured-rates run delivered nothing")
	}
	// With 200 samples the estimates are tight; earnings within 20%.
	ratio := measured.Earning / exact.Earning
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("measured/exact earning ratio = %.2f, want ≈1", ratio)
	}
}

func TestRunLinkModels(t *testing.T) {
	for _, model := range []LinkModel{LinkNormal, LinkFixed, LinkGamma} {
		cfg := quickCfg(msg.PSD, core.MaxEB{}, 3)
		cfg.LinkModel = model
		r, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if r.ValidDeliveries == 0 {
			t.Errorf("%v: nothing delivered", model)
		}
	}
}

func TestLinkModelString(t *testing.T) {
	if LinkNormal.String() != "normal" || LinkFixed.String() != "fixed" ||
		LinkGamma.String() != "gamma" {
		t.Error("LinkModel strings wrong")
	}
	if LinkModel(9).String() == "" {
		t.Error("unknown model should still render")
	}
}

func TestNetworkExposesSubscriptions(t *testing.T) {
	n, err := New(quickCfg(msg.SSD, core.MaxEB{}, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Subscriptions()) != 160 {
		t.Errorf("subs = %d, want 160 (paper population)", len(n.Subscriptions()))
	}
}
