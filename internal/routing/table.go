// Package routing implements the pub/sub routing protocol of §3.3 and the
// per-broker subscription table of §4.2.
//
// For every (ingress broker A, subscription s) pair the builder selects
// the single path from A to s's edge broker that minimizes the sum of mean
// link rates, and installs an entry at every broker along it. An entry
// stores the residual-path statistics the scheduling core needs: the next
// hop, the number of remaining intermediate brokers NN_p, and the residual
// path rate distribution N(μ_p, σ_p²). Entries are keyed by ingress
// because single-path routes from different publishers to the same
// subscriber may diverge in a mesh.
//
// A multi-path mode (the DCP-style alternative the paper contrasts with,
// §3.3) installs entries for up to K disjoint-prefix paths; edge brokers
// then deduplicate by message ID.
package routing

import (
	"fmt"
	"slices"
	"sort"

	"bdps/internal/filter"
	"bdps/internal/msg"
	"bdps/internal/stats"
)

// Interface conformance: messages' attribute sets satisfy the index's
// iteration requirement. The pointer form is what the hot path uses —
// converting *AttrSet to an interface stores the pointer and does not
// allocate, where converting the value copies it to the heap per call.
var (
	_ filter.Iterable = msg.AttrSet{}
	_ filter.Iterable = (*msg.AttrSet)(nil)
)

// Entry is one subscription's routing state at one broker for one ingress.
type Entry struct {
	Sub    *msg.Subscription
	Source msg.NodeID   // ingress broker this route applies to
	Next   msg.NodeID   // next hop toward the subscriber; msg.None = local
	Hops   int          // NN_p: links (= downstream brokers) remaining
	Rate   stats.Normal // residual path per-KB time TR_p ~ N(μ_p, σ_p²)
	PathID int          // 0 for single-path; 0..K-1 in multi-path mode
}

// Local reports whether the entry delivers to a subscriber attached to
// this broker.
func (e *Entry) Local() bool { return e.Next == msg.None }

// String implements fmt.Stringer.
func (e *Entry) String() string {
	next := "local"
	if !e.Local() {
		next = fmt.Sprintf("B%d", e.Next)
	}
	return fmt.Sprintf("sub %d src B%d via %s hops=%d rate=%s",
		e.Sub.ID, e.Source, next, e.Hops, e.Rate)
}

// Table is one broker's subscription table.
type Table struct {
	broker   msg.NodeID
	bySource map[msg.NodeID][]*Entry
	size     int

	// Optional counting-index fast path, built by EnableIndex.
	index map[msg.NodeID]*filter.Index
}

// NewTable returns an empty table for the given broker.
func NewTable(broker msg.NodeID) *Table {
	return &Table{broker: broker, bySource: make(map[msg.NodeID][]*Entry)}
}

// Broker returns the owning broker id.
func (t *Table) Broker() msg.NodeID { return t.broker }

// Add installs an entry. Adding after EnableIndex discards the index;
// call EnableIndex again once the table is complete.
func (t *Table) Add(e *Entry) {
	t.bySource[e.Source] = append(t.bySource[e.Source], e)
	t.size++
	t.index = nil
}

// Len returns the number of entries.
func (t *Table) Len() int { return t.size }

// RemoveSub deletes every entry of a subscription (all ingresses, all
// paths), returning how many entries were removed. Any counting index is
// discarded.
func (t *Table) RemoveSub(id msg.SubID) int {
	removed := 0
	for src, entries := range t.bySource {
		kept := entries[:0]
		for _, e := range entries {
			if e.Sub.ID == id {
				removed++
				continue
			}
			kept = append(kept, e)
		}
		if len(kept) == 0 {
			delete(t.bySource, src)
		} else {
			t.bySource[src] = kept
		}
	}
	t.size -= removed
	if removed > 0 {
		t.index = nil
	}
	return removed
}

// EnableIndex builds a per-ingress predicate-counting index over the
// entry filters, turning Match from a linear filter scan into the
// counting algorithm. Matching semantics are identical (the filter
// package's index falls back for non-indexable filters).
func (t *Table) EnableIndex() {
	t.index = make(map[msg.NodeID]*filter.Index, len(t.bySource))
	for src, entries := range t.bySource {
		ix := filter.NewIndex()
		for i, e := range entries {
			ix.Add(int32(i), e.Sub.Filter)
		}
		t.index[src] = ix
	}
}

// Match returns the entries whose source matches the message's ingress
// and whose filter matches its attributes, in deterministic order.
func (t *Table) Match(m *msg.Message) []*Entry { return t.MatchAppend(m, nil) }

// MatchAppend is Match appending into buf, so a caller that owns a
// scratch buffer matches without allocating. The attribute set is passed
// by pointer throughout to avoid boxing it into an interface per filter
// evaluation — the dominant allocation of the pre-optimization broker.
func (t *Table) MatchAppend(m *msg.Message, buf []*Entry) []*Entry {
	entries := t.bySource[m.Ingress]
	if ix := t.index[m.Ingress]; ix != nil {
		ids := ix.Match(&m.Attrs)
		// The index emits positions in completion order and owns the
		// slice; sorting it in place restores first-add order.
		slices.Sort(ids)
		for _, id := range ids {
			buf = append(buf, entries[id])
		}
		return buf
	}
	for _, e := range entries {
		if e.Sub.Filter.Match(&m.Attrs) {
			buf = append(buf, e)
		}
	}
	return buf
}

// MatchAppendLinear is MatchAppend restricted to the stateless linear
// scan. The counting index mutates match-epoch scratch it owns, so
// concurrent matchers — the sharded live ingress runs one per worker —
// must bypass it; the linear scan touches only immutable entry state.
func (t *Table) MatchAppendLinear(m *msg.Message, buf []*Entry) []*Entry {
	for _, e := range t.bySource[m.Ingress] {
		if e.Sub.Filter.Match(&m.Attrs) {
			buf = append(buf, e)
		}
	}
	return buf
}

// Entries returns all entries for an ingress, for tests and inspection.
func (t *Table) Entries(source msg.NodeID) []*Entry { return t.bySource[source] }

// Sources returns the ingress ids present in the table, sorted.
func (t *Table) Sources() []msg.NodeID {
	out := make([]msg.NodeID, 0, len(t.bySource))
	for s := range t.bySource {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GroupByNext buckets matched entries by next hop. Local deliveries come
// back under msg.None. Bucket contents preserve Match order; bucket keys
// are sorted for deterministic iteration by the caller.
func GroupByNext(entries []*Entry) (hops []msg.NodeID, groups map[msg.NodeID][]*Entry) {
	groups = make(map[msg.NodeID][]*Entry)
	for _, e := range entries {
		if _, ok := groups[e.Next]; !ok {
			hops = append(hops, e.Next)
		}
		groups[e.Next] = append(groups[e.Next], e)
	}
	sort.Slice(hops, func(i, j int) bool { return hops[i] < hops[j] })
	return hops, groups
}

// CoverageStats summarizes a routing build for diagnostics: entries per
// broker and total state.
type CoverageStats struct {
	Brokers      int
	TotalEntries int
	MaxPerBroker int
}

// Stats computes coverage statistics over a table set.
func Stats(tables map[msg.NodeID]*Table) CoverageStats {
	cs := CoverageStats{Brokers: len(tables)}
	for _, t := range tables {
		cs.TotalEntries += t.Len()
		if t.Len() > cs.MaxPerBroker {
			cs.MaxPerBroker = t.Len()
		}
	}
	return cs
}

// Aggregate drops entries provably covered by another entry with the same
// (source, next hop, subscriber-independent delivery terms). This is the
// covering optimization enabled by filter.Covers; the default build does
// not use it because per-subscriber accounting (deadlines, prices, success
// probabilities) requires individual entries, but the live runtime uses it
// for its forwarding-only tables.
func Aggregate(entries []*Entry) []*Entry {
	var out []*Entry
	for _, e := range entries {
		covered := false
		for _, f := range out {
			if f.Source == e.Source && f.Next == e.Next &&
				filter.Covers(f.Sub.Filter, e.Sub.Filter) {
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, e)
		}
	}
	return out
}
