// Package routing implements the pub/sub routing protocol of §3.3 and the
// per-broker subscription table of §4.2.
//
// For every (ingress broker A, subscription s) pair the builder selects
// the single path from A to s's edge broker that minimizes the sum of mean
// link rates, and installs an entry at every broker along it. An entry
// stores the residual-path statistics the scheduling core needs: the next
// hop, the number of remaining intermediate brokers NN_p, and the residual
// path rate distribution N(μ_p, σ_p²). Entries are keyed by ingress
// because single-path routes from different publishers to the same
// subscriber may diverge in a mesh.
//
// A multi-path mode (the DCP-style alternative the paper contrasts with,
// §3.3) installs entries for up to K disjoint-prefix paths; edge brokers
// then deduplicate by message ID.
package routing

import (
	"fmt"
	"slices"
	"sort"

	"bdps/internal/filter"
	"bdps/internal/msg"
	"bdps/internal/stats"
	"bdps/internal/vtime"
)

// Interface conformance: messages' attribute sets satisfy the index's
// iteration requirement. The pointer form is what the hot path uses —
// converting *AttrSet to an interface stores the pointer and does not
// allocate, where converting the value copies it to the heap per call.
var (
	_ filter.Iterable = msg.AttrSet{}
	_ filter.Iterable = (*msg.AttrSet)(nil)
)

// Entry is one subscription's routing state at one broker for one ingress.
type Entry struct {
	Sub    *msg.Subscription
	Source msg.NodeID   // ingress broker this route applies to
	Next   msg.NodeID   // next hop toward the subscriber; msg.None = local
	Hops   int          // NN_p: links (= downstream brokers) remaining
	Rate   stats.Normal // residual path per-KB time TR_p ~ N(μ_p, σ_p²)
	PathID int          // 0 for single-path; 0..K-1 in multi-path mode
	// Relaxed, when > 0, is a renegotiated delay-bound floor (ms)
	// installed by topology repair: on a rerouted path where the original
	// bound is no longer feasible, the admission math relaxes it to the
	// cheapest feasible value, and brokers raise any applicable bound
	// below this floor to it.
	Relaxed vtime.Millis
	// Agg, when non-nil, marks this entry as a covering representative:
	// it stands for Agg.Refs concrete subscriptions (itself plus the
	// exact-duplicate members folded into it and the properly-covered
	// subscriptions masked behind it). All of one subscription's entries
	// in one table share the same Group. Nil on non-aggregated tables.
	Agg *Group
}

// Group is the shared covering-set record of one representative
// subscription in one table. Matching and the delay-bound accounting see
// the representative's entries only; at the edge broker, delivery fans
// out to Members as well (exact duplicates share the representative's
// delivery terms by construction, so one admission decision covers the
// set). Mutated only under the table's write lock.
type Group struct {
	// Refs counts the concrete subscriptions this entry stands for: the
	// representative, its Members, and the covered subscriptions whose
	// forwarding rides it.
	Refs int32
	// Members are the exact-duplicate subscriptions delivered alongside
	// the representative (populated on edge tables only).
	Members []*msg.Subscription
}

// Local reports whether the entry delivers to a subscriber attached to
// this broker.
func (e *Entry) Local() bool { return e.Next == msg.None }

// String implements fmt.Stringer.
func (e *Entry) String() string {
	next := "local"
	if !e.Local() {
		next = fmt.Sprintf("B%d", e.Next)
	}
	return fmt.Sprintf("sub %d src B%d via %s hops=%d rate=%s",
		e.Sub.ID, e.Source, next, e.Hops, e.Rate)
}

// Table is one broker's subscription table, built for churn: Add and
// RemoveSub are sublinear and keep any counting index current in place,
// so a live subscribe/unsubscribe flood never knocks matching back to a
// linear filter scan.
//
// Concurrency contract (what the sharded live plane relies on): any
// number of matchers may run concurrently through MatchAppendWith, each
// with its own scratch, while mutators (Add, RemoveSub, EnableIndex)
// synchronize externally readers-writer style — mutation under the write
// lock, matching under the read lock.
type Table struct {
	broker   msg.NodeID
	bySource map[msg.NodeID]*sourceState
	size     int

	// bySub maps each subscription to its entry slots — the
	// back-references RemoveSub follows instead of scanning the table.
	bySub map[msg.SubID][]entryRef

	// indexed is set by EnableIndex: every source keeps a counting index
	// that mutations update incrementally.
	indexed bool
}

// sourceState is one ingress's entry list. Slots are positional — the
// counting index emits positions — so RemoveSub tombstones a slot to nil
// instead of shifting; the list is compacted (and its index rebuilt in
// one batch) only when tombstones outnumber live entries.
type sourceState struct {
	entries []*Entry
	live    int
	ix      *filter.Index
}

// entryRef locates one entry slot of a subscription.
type entryRef struct {
	src msg.NodeID
	pos int32
}

// NewTable returns an empty table for the given broker.
func NewTable(broker msg.NodeID) *Table {
	return &Table{
		broker:   broker,
		bySource: make(map[msg.NodeID]*sourceState),
		bySub:    make(map[msg.SubID][]entryRef),
	}
}

// Broker returns the owning broker id.
func (t *Table) Broker() msg.NodeID { return t.broker }

// Add installs an entry, updating the source's counting index in place
// when one is enabled (amortized sublinear; see filter.Index.Add).
func (t *Table) Add(e *Entry) {
	st := t.bySource[e.Source]
	if st == nil {
		st = &sourceState{}
		if t.indexed {
			st.ix = filter.NewIndex()
		}
		t.bySource[e.Source] = st
	}
	pos := int32(len(st.entries))
	st.entries = append(st.entries, e)
	st.live++
	t.size++
	t.bySub[e.Sub.ID] = append(t.bySub[e.Sub.ID], entryRef{src: e.Source, pos: pos})
	if st.ix != nil {
		st.ix.Add(pos, e.Sub.Filter)
	}
}

// Len returns the number of live entries.
func (t *Table) Len() int { return t.size }

// RemoveSub deletes every entry of a subscription (all ingresses, all
// paths), returning how many entries were removed. The removal is
// sublinear — slots are found through per-subscription back-references
// and tombstoned, and any counting index tombstones the matching
// conjunctions in place (no rebuild, no lost fast path).
func (t *Table) RemoveSub(id msg.SubID) int {
	refs := t.bySub[id]
	if len(refs) == 0 {
		return 0
	}
	delete(t.bySub, id)
	removed := 0
	for _, r := range refs {
		st := t.bySource[r.src]
		if st == nil || st.entries[r.pos] == nil {
			continue
		}
		st.entries[r.pos] = nil
		st.live--
		removed++
		if st.ix != nil {
			st.ix.Remove(r.pos)
		}
	}
	t.size -= removed
	for _, r := range refs {
		st := t.bySource[r.src]
		if st == nil {
			continue
		}
		if st.live == 0 {
			delete(t.bySource, r.src)
			continue
		}
		if dead := len(st.entries) - st.live; dead > 32 && dead > st.live {
			t.compactSource(r.src, st)
		}
	}
	return removed
}

// compactSource squeezes tombstoned slots out of one source list,
// rewrites the affected back-references and rebuilds the source's index
// in one batch (each touched predicate list sorted exactly once).
// Amortized over the removals that forced it, compaction is O(1) per
// removed entry plus the batch index build.
func (t *Table) compactSource(src msg.NodeID, st *sourceState) {
	// Drop every back-reference into this source, then re-derive them
	// from the compacted slot list below. Removed subscriptions lost
	// their refs wholesale in RemoveSub, so every ref into this source
	// belongs to a surviving entry — visiting only those keeps the
	// sweep O(source size), not O(table size).
	for _, e := range st.entries {
		if e == nil {
			continue
		}
		refs := t.bySub[e.Sub.ID]
		n := 0
		for _, r := range refs {
			if r.src != src {
				refs[n] = r
				n++
			}
		}
		if n != len(refs) {
			t.bySub[e.Sub.ID] = refs[:n]
		}
	}
	k := int32(0)
	for _, e := range st.entries {
		if e == nil {
			continue
		}
		st.entries[k] = e
		k++
	}
	st.entries = st.entries[:k]
	ids := make([]int32, len(st.entries))
	filters := make([]*filter.Filter, len(st.entries))
	for i, e := range st.entries {
		ids[i] = int32(i)
		filters[i] = e.Sub.Filter
		t.bySub[e.Sub.ID] = append(t.bySub[e.Sub.ID], entryRef{src: src, pos: int32(i)})
	}
	if st.ix != nil {
		st.ix = filter.NewIndex()
		st.ix.AddBatch(ids, filters)
	}
}

// EnableIndex builds a per-ingress predicate-counting index over the
// entry filters, turning Match from a linear filter scan into the
// counting algorithm, and arms incremental maintenance: subsequent Add
// and RemoveSub calls update the indexes in place. Matching semantics
// are identical (the filter package's index falls back for non-indexable
// filters).
func (t *Table) EnableIndex() {
	t.indexed = true
	for src, st := range t.bySource {
		if len(st.entries) != st.live {
			t.compactSource(src, st)
		}
		ids := make([]int32, len(st.entries))
		filters := make([]*filter.Filter, len(st.entries))
		for i, e := range st.entries {
			ids[i] = int32(i)
			filters[i] = e.Sub.Filter
		}
		st.ix = filter.NewIndex()
		st.ix.AddBatch(ids, filters)
	}
}

// Indexed reports whether the counting-index fast path is armed (it
// stays armed across mutations; tests assert the fast path survives
// churn).
func (t *Table) Indexed() bool { return t.indexed }

// Match returns the entries whose source matches the message's ingress
// and whose filter matches its attributes, in deterministic order.
func (t *Table) Match(m *msg.Message) []*Entry { return t.MatchAppend(m, nil) }

// MatchAppend is Match appending into buf, so a caller that owns a
// scratch buffer matches without allocating. The attribute set is passed
// by pointer throughout to avoid boxing it into an interface per filter
// evaluation — the dominant allocation of the pre-optimization broker.
// It requires exclusive use of the table (the index-owned match scratch);
// concurrent matchers use MatchAppendWith.
func (t *Table) MatchAppend(m *msg.Message, buf []*Entry) []*Entry {
	st := t.bySource[m.Ingress]
	if st == nil {
		return buf
	}
	if st.ix != nil {
		return appendIndexed(st, st.ix.Match(&m.Attrs), buf)
	}
	return appendLinear(st, m, buf)
}

// MatchAppendWith is MatchAppend through a caller-owned match scratch:
// any number of matchers may run concurrently against one table — the
// sharded live plane runs one per ingress worker under the node's read
// lock — as long as mutations hold the write lock. Falls back to the
// linear scan when the index is off.
func (t *Table) MatchAppendWith(s *filter.MatchScratch, m *msg.Message, buf []*Entry) []*Entry {
	st := t.bySource[m.Ingress]
	if st == nil {
		return buf
	}
	if st.ix != nil {
		return appendIndexed(st, st.ix.MatchWith(s, &m.Attrs), buf)
	}
	return appendLinear(st, m, buf)
}

// appendIndexed resolves index positions to entries in first-add order.
func appendIndexed(st *sourceState, ids []int32, buf []*Entry) []*Entry {
	// The index emits positions in completion order and the caller owns
	// the slice; sorting it in place restores first-add order.
	slices.Sort(ids)
	for _, id := range ids {
		if e := st.entries[id]; e != nil {
			buf = append(buf, e)
		}
	}
	return buf
}

func appendLinear(st *sourceState, m *msg.Message, buf []*Entry) []*Entry {
	for _, e := range st.entries {
		if e != nil && e.Sub.Filter.Match(&m.Attrs) {
			buf = append(buf, e)
		}
	}
	return buf
}

// MatchAppendLinear is MatchAppend restricted to the stateless linear
// scan, which touches only immutable entry state. Retained for
// baselines and benchmarks; the concurrent fast path is MatchAppendWith.
func (t *Table) MatchAppendLinear(m *msg.Message, buf []*Entry) []*Entry {
	st := t.bySource[m.Ingress]
	if st == nil {
		return buf
	}
	return appendLinear(st, m, buf)
}

// Entries returns all live entries for an ingress, for tests and
// inspection. When the slot list carries no tombstones the backing
// array is returned directly; otherwise a compacted copy is built.
func (t *Table) Entries(source msg.NodeID) []*Entry {
	st := t.bySource[source]
	if st == nil {
		return nil
	}
	if st.live == len(st.entries) {
		return st.entries
	}
	out := make([]*Entry, 0, st.live)
	for _, e := range st.entries {
		if e != nil {
			out = append(out, e)
		}
	}
	return out
}

// Sources returns the ingress ids present in the table, sorted.
func (t *Table) Sources() []msg.NodeID {
	out := make([]msg.NodeID, 0, len(t.bySource))
	for s := range t.bySource {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GroupByNext buckets matched entries by next hop. Local deliveries come
// back under msg.None. Bucket contents preserve Match order; bucket keys
// are sorted for deterministic iteration by the caller.
func GroupByNext(entries []*Entry) (hops []msg.NodeID, groups map[msg.NodeID][]*Entry) {
	groups = make(map[msg.NodeID][]*Entry)
	for _, e := range entries {
		if _, ok := groups[e.Next]; !ok {
			hops = append(hops, e.Next)
		}
		groups[e.Next] = append(groups[e.Next], e)
	}
	sort.Slice(hops, func(i, j int) bool { return hops[i] < hops[j] })
	return hops, groups
}

// CoverageStats summarizes a routing build for diagnostics: entries per
// broker and total state.
type CoverageStats struct {
	Brokers      int
	TotalEntries int
	MaxPerBroker int
}

// Stats computes coverage statistics over a table set.
func Stats(tables map[msg.NodeID]*Table) CoverageStats {
	cs := CoverageStats{Brokers: len(tables)}
	for _, t := range tables {
		cs.TotalEntries += t.Len()
		if t.Len() > cs.MaxPerBroker {
			cs.MaxPerBroker = t.Len()
		}
	}
	return cs
}

// group returns the shared Group of a subscription's entries in this
// table, creating (and stamping on every live slot) one when create is
// set. Returns nil when the subscription has no live entries here.
func (t *Table) group(id msg.SubID, create bool) *Group {
	refs := t.bySub[id]
	var g *Group
	for _, r := range refs {
		st := t.bySource[r.src]
		if st == nil || st.entries[r.pos] == nil {
			continue
		}
		if a := st.entries[r.pos].Agg; a != nil {
			g = a
			break
		}
	}
	if g == nil {
		if !create {
			return nil
		}
		g = &Group{Refs: 1}
	}
	stamped := 0
	for _, r := range refs {
		st := t.bySource[r.src]
		if st == nil || st.entries[r.pos] == nil {
			continue
		}
		st.entries[r.pos].Agg = g
		stamped++
	}
	if stamped == 0 {
		return nil
	}
	return g
}

// Attach folds an exact-duplicate subscription into a representative's
// entries: member is delivered wherever rep's entries deliver locally,
// and every entry's refcount grows by one. Member order is insertion
// order (the aggregation layer's promotion policy depends on it).
// Reports whether the representative was found.
func (t *Table) Attach(rep msg.SubID, member *msg.Subscription) bool {
	g := t.group(rep, true)
	if g == nil {
		return false
	}
	g.Members = append(g.Members, member)
	g.Refs++
	return true
}

// Detach removes a member previously folded in with Attach, dropping the
// refcount. Reports whether the member was found.
func (t *Table) Detach(rep msg.SubID, member msg.SubID) bool {
	g := t.group(rep, false)
	if g == nil {
		return false
	}
	for i, m := range g.Members {
		if m.ID == member {
			// Swap-remove: hot groups hold thousands of members and the
			// oldest depart first under windowed churn, so an
			// order-preserving delete would move almost the whole list.
			// The aggregator's mirror list uses the same rule, keeping
			// the two in lockstep for promotion.
			last := len(g.Members) - 1
			g.Members[i] = g.Members[last]
			g.Members = g.Members[:last]
			g.Refs--
			return true
		}
	}
	return false
}

// AddRef records one more concrete subscription riding a
// representative's entries (a properly-covered subscription whose
// forwarding was suppressed). Reports whether the representative was
// found.
func (t *Table) AddRef(rep msg.SubID) bool {
	g := t.group(rep, true)
	if g == nil {
		return false
	}
	g.Refs++
	return true
}

// DropRef is the inverse of AddRef.
func (t *Table) DropRef(rep msg.SubID) bool {
	g := t.group(rep, false)
	if g == nil {
		return false
	}
	g.Refs--
	return true
}

// Promote retires a representative whose group still has members by
// renaming its entries to the last-attached member: the filter is
// identical, so every slot, back-reference position and index posting
// stays valid — no table mutation beyond the identity swap. The group
// (minus the promoted member, minus the departing representative's ref)
// survives on the entries. Returns the new representative, or nil when
// the subscription has no live entries or no members to promote.
func (t *Table) Promote(rep msg.SubID) *msg.Subscription {
	refs := t.bySub[rep]
	if len(refs) == 0 {
		return nil
	}
	g := t.group(rep, false)
	if g == nil || len(g.Members) == 0 {
		return nil
	}
	next := g.Members[len(g.Members)-1]
	g.Members = g.Members[:len(g.Members)-1]
	g.Refs--
	for _, r := range refs {
		st := t.bySource[r.src]
		if st == nil || st.entries[r.pos] == nil {
			continue
		}
		st.entries[r.pos].Sub = next
	}
	t.bySub[next.ID] = refs
	delete(t.bySub, rep)
	return next
}

// TakeGroup reads a subscription's group (nil when it has none) so a
// caller about to RemoveSub-and-reinstall the same subscription —
// topology repair re-flooding a representative — can carry the covering
// set across the move with SetGroup.
func (t *Table) TakeGroup(id msg.SubID) *Group { return t.group(id, false) }

// SetGroup stamps a group onto every live entry of a subscription (the
// reinstall half of TakeGroup). A nil group is a no-op.
func (t *Table) SetGroup(id msg.SubID, g *Group) {
	if g == nil {
		return
	}
	for _, r := range t.bySub[id] {
		st := t.bySource[r.src]
		if st == nil || st.entries[r.pos] == nil {
			continue
		}
		st.entries[r.pos].Agg = g
	}
}

// AggregatedEntries counts live entries standing for more than one
// concrete subscription — the table-size side of the aggregation win.
func (t *Table) AggregatedEntries() int {
	n := 0
	for _, st := range t.bySource {
		for _, e := range st.entries {
			if e != nil && e.Agg != nil && e.Agg.Refs > 1 {
				n++
			}
		}
	}
	return n
}
