package routing

import (
	"math"
	"math/rand"
	"testing"

	"bdps/internal/filter"
	"bdps/internal/msg"
	"bdps/internal/stats"
	"bdps/internal/topology"
	"bdps/internal/vtime"
)

// chainOverlay builds 0 -(50)- 1 -(70)- 2 with ingress {0} and edges {2}.
func chainOverlay(t *testing.T) *topology.Overlay {
	t.Helper()
	g := topology.NewGraph(3)
	if err := g.AddLink(0, 1, stats.Normal{Mean: 50, Sigma: 20}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(1, 2, stats.Normal{Mean: 70, Sigma: 20}); err != nil {
		t.Fatal(err)
	}
	return &topology.Overlay{
		Graph:   g,
		Ingress: []msg.NodeID{0},
		Edges:   []msg.NodeID{2},
	}
}

func sub(id msg.SubID, edge msg.NodeID, src string) *msg.Subscription {
	return &msg.Subscription{ID: id, Edge: edge, Filter: filter.MustParse(src),
		Deadline: 10 * vtime.Second, Price: 1}
}

func TestBuildChainResidualStats(t *testing.T) {
	ov := chainOverlay(t)
	s := sub(1, 2, "A1 < 5")
	tables, err := Build(ov, []*msg.Subscription{s}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("tables for %d brokers, want 3", len(tables))
	}

	// At the ingress: 2 hops remain, rate = N(120, sqrt(800)).
	e0 := tables[0].Entries(0)
	if len(e0) != 1 {
		t.Fatalf("broker 0 entries = %d, want 1", len(e0))
	}
	if e0[0].Next != 1 || e0[0].Hops != 2 {
		t.Errorf("broker 0: next=%d hops=%d, want 1/2", e0[0].Next, e0[0].Hops)
	}
	if e0[0].Rate.Mean != 120 || math.Abs(e0[0].Rate.Sigma-math.Sqrt(800)) > 1e-12 {
		t.Errorf("broker 0 rate = %v", e0[0].Rate)
	}

	// At the middle broker: 1 hop remains, rate = N(70, 20).
	e1 := tables[1].Entries(0)
	if len(e1) != 1 || e1[0].Next != 2 || e1[0].Hops != 1 {
		t.Fatalf("broker 1 entry wrong: %+v", e1)
	}
	if e1[0].Rate.Mean != 70 || e1[0].Rate.Sigma != 20 {
		t.Errorf("broker 1 rate = %v", e1[0].Rate)
	}

	// At the edge broker: local delivery, 0 hops, zero rate.
	e2 := tables[2].Entries(0)
	if len(e2) != 1 || !e2[0].Local() || e2[0].Hops != 0 {
		t.Fatalf("broker 2 entry wrong: %+v", e2)
	}
	if e2[0].Rate.Mean != 0 || e2[0].Rate.Sigma != 0 {
		t.Errorf("edge residual rate = %v, want zero", e2[0].Rate)
	}
}

func TestBuildMatchRespectsIngressAndFilter(t *testing.T) {
	// Two ingresses with different best paths to the same edge.
	//   0 --40-- 2 --40-- 4 (edge)
	//   1 --40-- 3 --40-- 4
	// plus cross links 0-3 and 1-2 at cost 90 (not chosen).
	g := topology.NewGraph(5)
	for _, l := range [][3]float64{{0, 2, 40}, {2, 4, 40}, {1, 3, 40}, {3, 4, 40}, {0, 3, 90}, {1, 2, 90}} {
		if err := g.AddLink(msg.NodeID(l[0]), msg.NodeID(l[1]), stats.Normal{Mean: l[2], Sigma: 20}); err != nil {
			t.Fatal(err)
		}
	}
	ov := &topology.Overlay{Graph: g, Ingress: []msg.NodeID{0, 1}, Edges: []msg.NodeID{4}}
	s := sub(7, 4, "A1 < 5")
	tables, err := Build(ov, []*msg.Subscription{s}, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Broker 2 routes only source 0; broker 3 only source 1.
	if n := len(tables[2].Entries(0)); n != 1 {
		t.Errorf("broker 2 source-0 entries = %d, want 1", n)
	}
	if n := len(tables[2].Entries(1)); n != 0 {
		t.Errorf("broker 2 source-1 entries = %d, want 0", n)
	}
	if n := len(tables[3].Entries(1)); n != 1 {
		t.Errorf("broker 3 source-1 entries = %d, want 1", n)
	}

	// Matching respects attributes and ingress.
	match := &msg.Message{Ingress: 0, Attrs: msg.NumAttrs(map[string]float64{"A1": 3})}
	if got := tables[2].Match(match); len(got) != 1 {
		t.Errorf("match at broker 2 = %d entries, want 1", len(got))
	}
	noMatch := &msg.Message{Ingress: 0, Attrs: msg.NumAttrs(map[string]float64{"A1": 7})}
	if got := tables[2].Match(noMatch); len(got) != 0 {
		t.Errorf("non-matching message matched %d entries", len(got))
	}
	wrongSource := &msg.Message{Ingress: 1, Attrs: msg.NumAttrs(map[string]float64{"A1": 3})}
	if got := tables[2].Match(wrongSource); len(got) != 0 {
		t.Errorf("wrong-ingress message matched %d entries at broker 2", len(got))
	}
}

func TestBuildRejectsNonEdgeSubscriber(t *testing.T) {
	ov := chainOverlay(t)
	bad := sub(1, 1, "A1 < 5") // broker 1 is not in ov.Edges
	if _, err := Build(ov, []*msg.Subscription{bad}, Options{}); err == nil {
		t.Error("subscription at non-edge broker should fail")
	}
}

func TestBuildRejectsUnreachableEdge(t *testing.T) {
	g := topology.NewGraph(3)
	_ = g.AddLink(0, 1, stats.Normal{Mean: 50, Sigma: 20})
	ov := &topology.Overlay{Graph: g, Ingress: []msg.NodeID{0}, Edges: []msg.NodeID{2}}
	s := sub(1, 2, "A1 < 5")
	if _, err := Build(ov, []*msg.Subscription{s}, Options{}); err == nil {
		t.Error("unreachable edge should fail")
	}
}

func TestBuildPaperTopologyCoverage(t *testing.T) {
	ov, err := topology.BuildLayered(topology.LayeredConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// 10 subscribers per edge broker, as in the paper.
	var subs []*msg.Subscription
	id := msg.SubID(0)
	for _, e := range ov.Edges {
		for j := 0; j < 10; j++ {
			subs = append(subs, sub(id, e, "A1 < 5 && A2 < 5"))
			id++
		}
	}
	tables, err := Build(ov, subs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cs := Stats(tables)
	if cs.Brokers != 32 {
		t.Errorf("brokers = %d, want 32", cs.Brokers)
	}
	// Every (ingress, sub) pair installs >= 2 entries (path length >= 2
	// brokers: ingress..edge across 4 layers = 4 brokers), so:
	minEntries := 4 * len(subs) * 2
	if cs.TotalEntries < minEntries {
		t.Errorf("total entries = %d, want >= %d", cs.TotalEntries, minEntries)
	}
	// Each edge broker holds exactly one local entry per (ingress, local
	// subscriber): 4 * 10.
	for _, e := range ov.Edges {
		locals := 0
		for _, src := range tables[e].Sources() {
			for _, entry := range tables[e].Entries(src) {
				if entry.Local() {
					locals++
					if entry.Hops != 0 || entry.Rate.Mean != 0 {
						t.Errorf("local entry with nonzero residual: %+v", entry)
					}
				}
			}
		}
		if locals != 40 {
			t.Errorf("edge %d local entries = %d, want 40", e, locals)
		}
	}
}

func TestResidualMonotonicAlongPath(t *testing.T) {
	// Along any path, Hops and residual mean decrease strictly.
	ov, err := topology.BuildLayered(topology.LayeredConfig{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	s := sub(1, ov.Edges[0], "true")
	tables, err := Build(ov, []*msg.Subscription{s}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := ov.Ingress[0]
	path, ok := ov.Graph.Path(src, ov.Edges[0])
	if !ok {
		t.Fatal("no path")
	}
	prevHops, prevMean := 1<<30, math.Inf(1)
	for _, b := range path {
		var entry *Entry
		for _, e := range tables[b].Entries(src) {
			if e.Sub.ID == 1 {
				entry = e
				break
			}
		}
		if entry == nil {
			t.Fatalf("broker %d missing entry", b)
		}
		if entry.Hops >= prevHops || entry.Rate.Mean >= prevMean {
			t.Errorf("residual not decreasing at broker %d: hops %d->%d mean %v->%v",
				b, prevHops, entry.Hops, prevMean, entry.Rate.Mean)
		}
		prevHops, prevMean = entry.Hops, entry.Rate.Mean
	}
	if prevHops != 0 {
		t.Errorf("path should end at 0 hops, got %d", prevHops)
	}
}

func TestGroupByNext(t *testing.T) {
	e1 := &Entry{Next: 5, Sub: sub(1, 2, "true")}
	e2 := &Entry{Next: 3, Sub: sub(2, 2, "true")}
	e3 := &Entry{Next: 5, Sub: sub(3, 2, "true")}
	e4 := &Entry{Next: msg.None, Sub: sub(4, 2, "true")}
	hops, groups := GroupByNext([]*Entry{e1, e2, e3, e4})
	if len(hops) != 3 {
		t.Fatalf("hops = %v, want 3 groups", hops)
	}
	if hops[0] != msg.None || hops[1] != 3 || hops[2] != 5 {
		t.Errorf("hops order = %v, want [-1 3 5]", hops)
	}
	if len(groups[5]) != 2 || groups[5][0] != e1 || groups[5][1] != e3 {
		t.Error("group 5 should preserve order e1,e3")
	}
	if len(groups[msg.None]) != 1 {
		t.Error("local group missing")
	}
}

func TestMultipathInstallsAlternates(t *testing.T) {
	// Diamond: two disjoint paths 0-1-3 and 0-2-3.
	g := topology.NewGraph(4)
	_ = g.AddLink(0, 1, stats.Normal{Mean: 50, Sigma: 20})
	_ = g.AddLink(1, 3, stats.Normal{Mean: 50, Sigma: 20})
	_ = g.AddLink(0, 2, stats.Normal{Mean: 60, Sigma: 20})
	_ = g.AddLink(2, 3, stats.Normal{Mean: 60, Sigma: 20})
	ov := &topology.Overlay{Graph: g, Ingress: []msg.NodeID{0}, Edges: []msg.NodeID{3}}
	s := sub(1, 3, "true")
	tables, err := Build(ov, []*msg.Subscription{s}, Options{Multipath: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Ingress has entries for both paths with distinct PathIDs.
	e0 := tables[0].Entries(0)
	if len(e0) != 2 {
		t.Fatalf("ingress entries = %d, want 2", len(e0))
	}
	if e0[0].PathID == e0[1].PathID {
		t.Error("path ids should differ")
	}
	nexts := map[msg.NodeID]bool{e0[0].Next: true, e0[1].Next: true}
	if !nexts[1] || !nexts[2] {
		t.Errorf("multipath nexts = %v, want brokers 1 and 2", nexts)
	}
	// Both intermediate brokers got one entry each.
	if len(tables[1].Entries(0)) != 1 || len(tables[2].Entries(0)) != 1 {
		t.Error("intermediate brokers should each carry one path")
	}
	// Edge has two local entries (one per path).
	if len(tables[3].Entries(0)) != 2 {
		t.Errorf("edge entries = %d, want 2", len(tables[3].Entries(0)))
	}
}

func TestBuildWithRateOverride(t *testing.T) {
	ov := chainOverlay(t)
	s := sub(1, 2, "true")
	// Beliefs double the true means.
	beliefs := func(from, to msg.NodeID) stats.Normal {
		r, _ := ov.Graph.Rate(from, to)
		return stats.Normal{Mean: 2 * r.Mean, Sigma: r.Sigma}
	}
	tables, err := Build(ov, []*msg.Subscription{s}, Options{Rates: beliefs})
	if err != nil {
		t.Fatal(err)
	}
	e0 := tables[0].Entries(0)[0]
	if e0.Rate.Mean != 240 {
		t.Errorf("believed residual mean = %v, want 240", e0.Rate.Mean)
	}
}

func TestEnableIndexEquivalence(t *testing.T) {
	ov, err := topology.BuildLayered(topology.LayeredConfig{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	var subs []*msg.Subscription
	id := msg.SubID(0)
	s := stats.NewStream(21)
	for _, e := range ov.Edges {
		for j := 0; j < 10; j++ {
			f := filter.And(
				filter.Lt("A1", s.Uniform(0, 10)),
				filter.Lt("A2", s.Uniform(0, 10)),
			)
			subs = append(subs, &msg.Subscription{ID: id, Edge: e, Filter: f,
				Deadline: 10 * vtime.Second, Price: 1})
			id++
		}
	}
	linear, err := Build(ov, subs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := Build(ov, subs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range indexed {
		tb.EnableIndex()
	}
	for trial := 0; trial < 200; trial++ {
		m := &msg.Message{
			Ingress: ov.Ingress[trial%len(ov.Ingress)],
			Attrs: msg.NumAttrs(map[string]float64{
				"A1": s.Uniform(0, 10), "A2": s.Uniform(0, 10),
			}),
		}
		for bid := 0; bid < ov.Graph.N(); bid++ {
			a := linear[msg.NodeID(bid)].Match(m)
			b := indexed[msg.NodeID(bid)].Match(m)
			if len(a) != len(b) {
				t.Fatalf("broker %d: linear %d entries, indexed %d", bid, len(a), len(b))
			}
			for i := range a {
				if a[i].Sub.ID != b[i].Sub.ID || a[i].Next != b[i].Next {
					t.Fatalf("broker %d: order/content mismatch at %d", bid, i)
				}
			}
		}
	}
}

func TestRemoveSub(t *testing.T) {
	ov := chainOverlay(t)
	s1 := sub(1, 2, "A1 < 5")
	s2 := sub(2, 2, "A1 < 9")
	tables, err := Build(ov, []*msg.Subscription{s1, s2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		before := tb.Len()
		removed := tb.RemoveSub(1)
		if removed == 0 {
			t.Fatalf("broker %d: nothing removed", tb.Broker())
		}
		if tb.Len() != before-removed {
			t.Fatalf("broker %d: Len %d after removing %d from %d",
				tb.Broker(), tb.Len(), removed, before)
		}
		// Sub 2 must survive and still match.
		m := &msg.Message{Ingress: 0, Attrs: msg.NumAttrs(map[string]float64{"A1": 7})}
		got := tb.Match(m)
		if len(got) != 1 || got[0].Sub.ID != 2 {
			t.Fatalf("broker %d: post-removal match = %v", tb.Broker(), got)
		}
		// Removing again is a no-op.
		if tb.RemoveSub(1) != 0 {
			t.Fatal("second removal should remove nothing")
		}
	}
}

func TestRemoveSubUpdatesIndex(t *testing.T) {
	tb := NewTable(1)
	tb.Add(&Entry{Sub: sub(1, 2, "A1 < 5"), Source: 0, Next: 2})
	tb.Add(&Entry{Sub: sub(2, 2, "A1 < 5"), Source: 0, Next: 2})
	tb.EnableIndex()
	tb.RemoveSub(1)
	if !tb.Indexed() {
		t.Fatal("RemoveSub disarmed the index")
	}
	m := &msg.Message{Ingress: 0, Attrs: msg.NumAttrs(map[string]float64{"A1": 1})}
	got := tb.Match(m)
	if len(got) != 1 || got[0].Sub.ID != 2 {
		t.Fatalf("match after indexed removal = %v", got)
	}
}

func TestEnableIndexFollowedByAdd(t *testing.T) {
	tb := NewTable(1)
	tb.Add(&Entry{Sub: sub(1, 2, "A1 < 5"), Source: 0, Next: 2})
	tb.EnableIndex()
	tb.Add(&Entry{Sub: sub(2, 2, "A1 < 9"), Source: 0, Next: 2})
	m := &msg.Message{Ingress: 0, Attrs: msg.NumAttrs(map[string]float64{"A1": 7})}
	// The index absorbs the Add in place and must see the new entry.
	if got := tb.Match(m); len(got) != 1 || got[0].Sub.ID != 2 {
		t.Fatalf("match after post-index Add = %v", got)
	}
}

func TestEntryString(t *testing.T) {
	e := &Entry{Sub: sub(1, 2, "true"), Source: 0, Next: 3, Hops: 2,
		Rate: stats.Normal{Mean: 100, Sigma: 28}}
	if e.String() == "" {
		t.Error("empty String()")
	}
	local := &Entry{Sub: sub(1, 2, "true"), Source: 0, Next: msg.None}
	if local.String() == "" || !local.Local() {
		t.Error("local entry string/flag")
	}
}

// TestGrouperMatchesGroupByNext proves the reusable Grouper reproduces
// GroupByNext exactly — sorted hops, buckets in input order — across
// randomized entry streams and repeated (buffer-reusing) calls.
func TestGrouperMatchesGroupByNext(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var g Grouper
	for trial := 0; trial < 200; trial++ {
		entries := make([]*Entry, r.Intn(30))
		for i := range entries {
			next := msg.NodeID(r.Intn(5))
			if r.Intn(5) == 0 {
				next = msg.None
			}
			entries[i] = &Entry{
				Sub:  &msg.Subscription{ID: msg.SubID(i)},
				Next: next,
			}
		}
		wantHops, wantGroups := GroupByNext(entries)
		gotHops, gotBuckets := g.Group(entries)
		if len(gotHops) != len(wantHops) {
			t.Fatalf("trial %d: %d hops, want %d", trial, len(gotHops), len(wantHops))
		}
		for k, hop := range gotHops {
			if hop != wantHops[k] {
				t.Fatalf("trial %d: hop[%d] = %v, want %v", trial, k, hop, wantHops[k])
			}
			want := wantGroups[hop]
			if len(gotBuckets[k]) != len(want) {
				t.Fatalf("trial %d: bucket %v has %d entries, want %d",
					trial, hop, len(gotBuckets[k]), len(want))
			}
			for i := range want {
				if gotBuckets[k][i] != want[i] {
					t.Fatalf("trial %d: bucket %v order differs at %d", trial, hop, i)
				}
			}
		}
	}
}

// TestMatchAppendReusesBuffer pins the scratch-buffer contract brokers
// rely on: appending into a recycled buffer yields the same entries as
// a fresh Match, with no steady-state allocations on the indexed path.
func TestMatchAppendReusesBuffer(t *testing.T) {
	sub := func(id msg.SubID, src string) *msg.Subscription {
		return &msg.Subscription{ID: id, Edge: 9, Filter: filter.MustParse(src)}
	}
	tb := NewTable(1)
	tb.Add(&Entry{Sub: sub(1, "A1 < 5"), Source: 0, Next: 2})
	tb.Add(&Entry{Sub: sub(2, "A1 < 8"), Source: 0, Next: 3})
	tb.Add(&Entry{Sub: sub(3, "A1 > 7"), Source: 0, Next: 2})
	m := &msg.Message{Ingress: 0, Attrs: msg.NumAttrs(map[string]float64{"A1": 4})}

	for _, indexed := range []bool{false, true} {
		if indexed {
			tb.EnableIndex()
		}
		want := tb.Match(m)
		var buf []*Entry
		buf = tb.MatchAppend(m, buf[:0])
		buf = tb.MatchAppend(m, buf[:0]) // reuse
		if len(buf) != len(want) {
			t.Fatalf("indexed=%v: MatchAppend = %d entries, want %d", indexed, len(buf), len(want))
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("indexed=%v: entry %d differs", indexed, i)
			}
		}
		if indexed {
			allocs := testing.AllocsPerRun(100, func() { buf = tb.MatchAppend(m, buf[:0]) })
			if allocs != 0 {
				t.Errorf("indexed MatchAppend allocates %v objects per run, want 0", allocs)
			}
		}
	}
}
