package routing

import (
	"fmt"

	"bdps/internal/msg"
	"bdps/internal/stats"
	"bdps/internal/topology"
)

// RateFunc supplies the per-KB rate distribution a broker believes a link
// has. The default uses the true distributions from the overlay graph
// (the paper assumes known parameters); the estimation ablation passes
// measured estimates instead.
type RateFunc func(from, to msg.NodeID) stats.Normal

// Options configures a routing build.
type Options struct {
	// Rates overrides the link-rate beliefs; nil means the overlay's true
	// distributions.
	Rates RateFunc
	// Multipath installs up to K paths per (ingress, subscription) when
	// K > 1. K = 0 or 1 is single-path (the paper's default).
	Multipath int
}

// Build computes the per-broker subscription tables for an overlay and a
// subscription population. Every subscription's edge broker must be listed
// in ov.Edges; every table is returned even if empty, so brokers can be
// constructed uniformly.
func Build(ov *topology.Overlay, subs []*msg.Subscription, opts Options) (map[msg.NodeID]*Table, error) {
	rates := opts.Rates
	if rates == nil {
		rates = func(from, to msg.NodeID) stats.Normal {
			r, ok := ov.Graph.Rate(from, to)
			if !ok {
				// Unreachable: Build only asks for rates of arcs on paths
				// returned by the graph itself.
				panic(fmt.Sprintf("routing: no arc %d->%d", from, to))
			}
			return r
		}
	}

	tables := make(map[msg.NodeID]*Table, ov.Graph.N())
	for id := 0; id < ov.Graph.N(); id++ {
		tables[msg.NodeID(id)] = NewTable(msg.NodeID(id))
	}

	edgeSet := make(map[msg.NodeID]bool, len(ov.Edges))
	for _, e := range ov.Edges {
		edgeSet[e] = true
	}

	k := opts.Multipath
	if k < 1 {
		k = 1
	}

	for _, src := range ov.Ingress {
		// One Dijkstra per ingress covers all single-path routes.
		dist, prev := ov.Graph.ShortestPaths(src)
		for _, sub := range subs {
			if !edgeSet[sub.Edge] {
				return nil, fmt.Errorf("routing: subscription %d attaches to non-edge broker %d", sub.ID, sub.Edge)
			}
			var paths [][]msg.NodeID
			if k == 1 {
				p, ok := pathVia(dist, prev, src, sub.Edge)
				if !ok {
					return nil, fmt.Errorf("routing: no path %d->%d for subscription %d", src, sub.Edge, sub.ID)
				}
				paths = [][]msg.NodeID{p}
			} else {
				paths = ov.Graph.KShortestPaths(src, sub.Edge, k)
				if len(paths) == 0 {
					return nil, fmt.Errorf("routing: no path %d->%d for subscription %d", src, sub.Edge, sub.ID)
				}
			}
			for pathID, path := range paths {
				installPath(tables, path, sub, src, pathID, rates)
			}
		}
	}
	return tables, nil
}

// Installer installs subscriptions into a table set after the bulk
// build — the churn path. It amortizes one Dijkstra per ingress across
// every Install call on the (static) overlay, exactly as the bulk Build
// amortizes it across the whole population, so a churn event stream
// costs path reconstruction, not a shortest-path computation per event.
type Installer struct {
	ov    *topology.Overlay
	rates RateFunc
	k     int
	// cached single-path Dijkstra state per ingress, computed lazily
	dist map[msg.NodeID][]float64
	prev map[msg.NodeID][]msg.NodeID
}

// NewInstaller prepares a churn installer for one overlay and build
// options.
func NewInstaller(ov *topology.Overlay, opts Options) *Installer {
	rates := opts.Rates
	if rates == nil {
		rates = func(from, to msg.NodeID) stats.Normal {
			r, _ := ov.Graph.Rate(from, to)
			return r
		}
	}
	k := opts.Multipath
	if k < 1 {
		k = 1
	}
	return &Installer{
		ov:    ov,
		rates: rates,
		k:     k,
		dist:  make(map[msg.NodeID][]float64),
		prev:  make(map[msg.NodeID][]msg.NodeID),
	}
}

// ingress returns (computing once) the Dijkstra state rooted at one
// ingress broker.
func (ins *Installer) ingress(src msg.NodeID) ([]float64, []msg.NodeID) {
	dist, ok := ins.dist[src]
	if !ok {
		dist, ins.prev[src] = ins.ov.Graph.ShortestPaths(src)
		ins.dist[src] = dist
	}
	return dist, ins.prev[src]
}

// Paths exposes the delivery path set the installer uses from one
// ingress to an edge broker (nil when unreachable). The topology-repair
// layer diffs these across graph mutations to find the routes a failure
// actually moved.
func (ins *Installer) Paths(src, edge msg.NodeID) [][]msg.NodeID {
	return ins.paths(src, edge)
}

// paths returns the delivery path set from one ingress to an edge (one
// cached-Dijkstra path, or K shortest paths in multipath mode); nil when
// unreachable.
func (ins *Installer) paths(src, edge msg.NodeID) [][]msg.NodeID {
	if ins.k == 1 {
		dist, prev := ins.ingress(src)
		p, ok := pathVia(dist, prev, src, edge)
		if !ok {
			return nil
		}
		return [][]msg.NodeID{p}
	}
	return ins.ov.Graph.KShortestPaths(src, edge, ins.k)
}

// Install adds one subscription's entries at every broker along its
// delivery paths: for each ingress the same deterministic min-mean path
// (or K shortest paths) the bulk build would have chosen. Tables with
// an enabled counting index absorb the additions incrementally.
// Unreachable (ingress, edge) pairs are skipped, mirroring the live
// overlay's dynamic flood behavior. Returns the entries installed.
func (ins *Installer) Install(tables map[msg.NodeID]*Table, sub *msg.Subscription) int {
	installed := 0
	for _, src := range ins.ov.Ingress {
		for pathID, path := range ins.paths(src, sub.Edge) {
			installPath(tables, path, sub, src, pathID, ins.rates)
			installed += len(path)
		}
	}
	return installed
}

// InstallAt adds only the entries belonging to one broker along the
// subscription's paths — the live overlay's per-node flood handler,
// where every broker independently computes its own slice of the route.
// Returns the entries installed.
func (ins *Installer) InstallAt(id msg.NodeID, table *Table, sub *msg.Subscription) int {
	installed := 0
	for _, src := range ins.ov.Ingress {
		for pathID, path := range ins.paths(src, sub.Edge) {
			for i, at := range path {
				if at != id {
					continue
				}
				table.Add(EntryAt(path, i, sub, src, pathID, ins.rates))
				installed++
			}
		}
	}
	return installed
}

// InstallExcept is Install skipping one broker — the aggregation layer's
// re-exposure path, where a subscription already holds its local entries
// at its edge broker and only the forwarding entries elsewhere must
// materialize. Returns the entries installed.
func (ins *Installer) InstallExcept(tables map[msg.NodeID]*Table, sub *msg.Subscription, skip msg.NodeID) int {
	installed := 0
	for _, src := range ins.ov.Ingress {
		for pathID, path := range ins.paths(src, sub.Edge) {
			for i, at := range path {
				if at == skip {
					continue
				}
				tables[at].Add(EntryAt(path, i, sub, src, pathID, ins.rates))
				installed++
			}
		}
	}
	return installed
}

// InstallSub is the one-shot form of Installer.Install, for callers
// installing a single subscription.
func InstallSub(tables map[msg.NodeID]*Table, ov *topology.Overlay, sub *msg.Subscription, opts Options) int {
	return NewInstaller(ov, opts).Install(tables, sub)
}

// RemoveSubAll removes a subscription from every table — the churn
// counterpart of InstallSub — returning the total entries removed.
func RemoveSubAll(tables map[msg.NodeID]*Table, id msg.SubID) int {
	removed := 0
	for _, t := range tables {
		removed += t.RemoveSub(id)
	}
	return removed
}

// pathVia reconstructs the shortest path from precomputed Dijkstra state.
func pathVia(dist []float64, prev []msg.NodeID, src, dst msg.NodeID) ([]msg.NodeID, bool) {
	const unreachable = 1.7e308
	if dist[dst] > unreachable {
		return nil, false
	}
	var rev []msg.NodeID
	for at := dst; ; at = prev[at] {
		rev = append(rev, at)
		if at == src {
			break
		}
		if prev[at] == msg.None {
			return nil, false
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

// installPath writes one entry per broker along the path.
func installPath(tables map[msg.NodeID]*Table, path []msg.NodeID, sub *msg.Subscription, src msg.NodeID, pathID int, rates RateFunc) {
	for i := range path {
		tables[path[i]].Add(EntryAt(path, i, sub, src, pathID, rates))
	}
}

// EntryAt builds the routing entry for the broker at position i of a
// delivery path. The residual path is path[i..end]: Hops counts its
// links (each terminating at a broker that must still process the
// message, which is the paper's NN_p), and Rate sums the believed link
// distributions. Static table builds and the live overlay's dynamic
// subscription floods share this one definition.
func EntryAt(path []msg.NodeID, i int, sub *msg.Subscription, src msg.NodeID, pathID int, rates RateFunc) *Entry {
	l := len(path)
	e := &Entry{Sub: sub, Source: src, PathID: pathID}
	if i == l-1 {
		e.Next = msg.None
		e.Hops = 0
		e.Rate = stats.Normal{}
	} else {
		e.Next = path[i+1]
		e.Hops = l - 1 - i
		parts := make([]stats.Normal, 0, l-1-i)
		for j := i; j < l-1; j++ {
			parts = append(parts, rates(path[j], path[j+1]))
		}
		e.Rate = stats.SumNormal(parts...)
	}
	return e
}
