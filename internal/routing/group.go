package routing

import "bdps/internal/msg"

// Grouper buckets matched entries by next hop without allocating: the
// hop list and the per-hop buckets are reused across calls. It produces
// exactly GroupByNext's grouping — hops sorted ascending, bucket
// contents in input (Match) order — which the equivalence tests assert.
//
// A Grouper is single-owner scratch state: brokers embed one and call it
// under their own serialization (the simulator is single-threaded, the
// live node holds its mutex).
type Grouper struct {
	hops    []msg.NodeID
	buckets [][]*Entry
}

// Group buckets entries by Entry.Next. Local deliveries come back under
// msg.None. The returned slices are owned by the Grouper and valid until
// the next Group call.
func (g *Grouper) Group(entries []*Entry) (hops []msg.NodeID, buckets [][]*Entry) {
	g.hops = g.hops[:0]
	for i := range g.buckets {
		g.buckets[i] = g.buckets[i][:0]
	}
	for _, e := range entries {
		slot := -1
		// Linear scan: the hop count is bounded by the broker's degree
		// (single digits), where scanning beats any map.
		for j, h := range g.hops {
			if h == e.Next {
				slot = j
				break
			}
		}
		if slot < 0 {
			slot = len(g.hops)
			g.hops = append(g.hops, e.Next)
			if slot == len(g.buckets) {
				g.buckets = append(g.buckets, nil)
			}
		}
		g.buckets[slot] = append(g.buckets[slot], e)
	}
	// Insertion-sort hops and buckets in tandem (hops are distinct).
	for i := 1; i < len(g.hops); i++ {
		for j := i; j > 0 && g.hops[j] < g.hops[j-1]; j-- {
			g.hops[j], g.hops[j-1] = g.hops[j-1], g.hops[j]
			g.buckets[j], g.buckets[j-1] = g.buckets[j-1], g.buckets[j]
		}
	}
	return g.hops, g.buckets[:len(g.hops)]
}
