package routing

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"bdps/internal/filter"
	"bdps/internal/msg"
	"bdps/internal/topology"
)

// Churn-oriented table tests: Add and RemoveSub must keep the counting
// index alive and correct — the pre-rework table nil-ed the index on
// every mutation, knocking matching back to a linear scan.

func churnSub(id msg.SubID, edge msg.NodeID, src string) *msg.Subscription {
	return &msg.Subscription{ID: id, Edge: edge, Filter: filter.MustParse(src)}
}

// TestIndexSurvivesMutation is the acceptance assertion: neither Add nor
// RemoveSub discards the index, and matching through it stays correct
// after both.
func TestIndexSurvivesMutation(t *testing.T) {
	tb := NewTable(1)
	tb.Add(&Entry{Sub: churnSub(1, 2, "A1 < 5"), Source: 0, Next: 2})
	tb.EnableIndex()
	if !tb.Indexed() {
		t.Fatal("EnableIndex did not arm the index")
	}

	tb.Add(&Entry{Sub: churnSub(2, 2, "A1 < 9"), Source: 0, Next: 2})
	if !tb.Indexed() || tb.bySource[0].ix == nil {
		t.Fatal("Add discarded the counting index")
	}
	m := &msg.Message{Ingress: 0, Attrs: msg.NumAttrs(map[string]float64{"A1": 7})}
	if got := tb.Match(m); len(got) != 1 || got[0].Sub.ID != 2 {
		t.Fatalf("match after post-index Add = %v", got)
	}

	tb.RemoveSub(2)
	if !tb.Indexed() || tb.bySource[0].ix == nil {
		t.Fatal("RemoveSub discarded the counting index")
	}
	m2 := &msg.Message{Ingress: 0, Attrs: msg.NumAttrs(map[string]float64{"A1": 3})}
	if got := tb.Match(m2); len(got) != 1 || got[0].Sub.ID != 1 {
		t.Fatalf("match after indexed RemoveSub = %v", got)
	}
}

// TestTableChurnEquivalence churns one table through random installs and
// removals and checks, at every step boundary, that the incremental
// indexed table matches a freshly built linear table.
func TestTableChurnEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	tb := NewTable(0)
	tb.EnableIndex()
	live := map[msg.SubID]*msg.Subscription{}
	nextID := msg.SubID(0)
	sources := []msg.NodeID{0, 1}

	check := func(step int) {
		ref := NewTable(0)
		for _, s := range live {
			for _, src := range sources {
				ref.Add(&Entry{Sub: s, Source: src, Next: 5})
			}
		}
		for trial := 0; trial < 5; trial++ {
			m := &msg.Message{
				Ingress: sources[r.Intn(len(sources))],
				Attrs: msg.NumAttrs(map[string]float64{
					"A1": 10 * r.Float64(), "A2": 10 * r.Float64(),
				}),
			}
			got := tb.Match(m)
			want := ref.Match(m)
			if len(got) != len(want) {
				t.Fatalf("step %d: indexed churned table matched %d, linear rebuild %d",
					step, len(got), len(want))
			}
			seen := map[msg.SubID]bool{}
			for _, e := range got {
				seen[e.Sub.ID] = true
			}
			for _, e := range want {
				if !seen[e.Sub.ID] {
					t.Fatalf("step %d: sub %d missing from churned table", step, e.Sub.ID)
				}
			}
		}
	}

	for step := 0; step < 2000; step++ {
		if r.Intn(3) > 0 || len(live) == 0 {
			s := churnSub(nextID, 5, fmt.Sprintf("A1 < %.2f && A2 < %.2f", 10*r.Float64(), 10*r.Float64()))
			nextID++
			live[s.ID] = s
			for _, src := range sources {
				tb.Add(&Entry{Sub: s, Source: src, Next: 5})
			}
		} else {
			for id := range live {
				if n := tb.RemoveSub(id); n != len(sources) {
					t.Fatalf("step %d: RemoveSub(%d) removed %d entries, want %d", step, id, n, len(sources))
				}
				delete(live, id)
				break
			}
		}
		if step%250 == 0 {
			check(step)
		}
	}
	check(2000)
	if tb.Len() != len(live)*len(sources) {
		t.Fatalf("Len = %d, want %d", tb.Len(), len(live)*len(sources))
	}
}

// TestInstallRemoveSubAll drives the churn helpers over a built overlay:
// InstallSub must add exactly the entries the bulk build would have, and
// RemoveSubAll must undo them.
func TestInstallRemoveSubAll(t *testing.T) {
	ov, err := topology.BuildLayered(topology.LayeredConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	static := churnSub(0, ov.Edges[0], "A1 < 5")
	tables, err := Build(ov, []*msg.Subscription{static}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		tb.EnableIndex()
	}
	before := Stats(tables).TotalEntries

	churner := churnSub(7, ov.Edges[1], "A1 < 8")
	installed := InstallSub(tables, ov, churner, Options{})
	if installed == 0 {
		t.Fatal("InstallSub installed nothing")
	}
	if got := Stats(tables).TotalEntries; got != before+installed {
		t.Fatalf("entries = %d, want %d", got, before+installed)
	}
	// The churned-in subscription must now match at its edge broker.
	m := &msg.Message{Ingress: ov.Ingress[0], Attrs: msg.NumAttrs(map[string]float64{"A1": 6, "A2": 1})}
	found := false
	for _, e := range tables[churner.Edge].Match(m) {
		if e.Sub.ID == churner.ID && e.Local() {
			found = true
		}
	}
	if !found {
		t.Fatal("installed subscription not matched at its edge broker")
	}

	if removed := RemoveSubAll(tables, churner.ID); removed != installed {
		t.Fatalf("RemoveSubAll removed %d, want %d", removed, installed)
	}
	if got := Stats(tables).TotalEntries; got != before {
		t.Fatalf("entries = %d after removal, want %d", got, before)
	}
}

// TestMatchAppendWithConcurrentMutation is the readers-writer contract
// under -race: matchers holding the read lock (each with private
// scratch, as sharded live workers do) run concurrently with a mutator
// that takes the write lock to churn subscriptions. Every match must
// return a consistent result for the population it observed.
func TestMatchAppendWithConcurrentMutation(t *testing.T) {
	var mu sync.RWMutex
	tb := NewTable(0)
	tb.EnableIndex()
	// Static population that must always match.
	static := churnSub(0, 5, "A1 < 100")
	tb.Add(&Entry{Sub: static, Source: 0, Next: 5})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch filter.MatchScratch
			var buf []*Entry
			m := &msg.Message{Ingress: 0, Attrs: msg.NumAttrs(map[string]float64{"A1": 50, "A2": 1})}
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.RLock()
				buf = tb.MatchAppendWith(&scratch, m, buf[:0])
				ok := false
				for _, e := range buf {
					if e.Sub.ID == static.ID {
						ok = true
					}
				}
				mu.RUnlock()
				if !ok {
					t.Error("static subscription vanished from a concurrent match")
					return
				}
			}
		}()
	}

	// Mutator: churn 5000 subscribe/unsubscribe pairs through the table.
	for i := 0; i < 5000; i++ {
		id := msg.SubID(1 + i%37)
		s := churnSub(id, 5, fmt.Sprintf("A1 < %d", i%100))
		mu.Lock()
		if tb.RemoveSub(id) == 0 {
			tb.Add(&Entry{Sub: s, Source: 0, Next: 5})
		}
		mu.Unlock()
	}
	close(stop)
	wg.Wait()
}
