// Covering-based subscription aggregation: the layer that turns an
// O(subscriptions) broker into an O(distinct covering sets) broker.
//
// The soundness model: subscriptions are grouped by identical delivery
// terms (edge broker, deadline, price). Within such a group, delivery
// paths are identical (one deterministic path per ingress to the shared
// edge) and every viability/delay-bound decision a broker makes is
// identical, so a subscription whose filter is covered by an
// already-admitted filter of the same group needs no entries of its
// own upstream: anything it would match, some forwarded ancestor's
// entries already carry to the same edge under the same admission
// math. The forwarding decision is made only at the subscription's
// edge (owner) broker — the one place that sees the concrete
// subscription first — which is what keeps the live overlay's per-node
// decisions and the simulator's central build bit-identical.
//
// Every non-duplicate subscription is a canonical: resident in the
// covering index whether it forwards or not. Two tiers hang off the
// canonicals:
//
//   - exact duplicates (identical filter rendering) fold into their
//     canonical's entries as Group.Members: zero entries anywhere, the
//     edge broker fans local delivery out to members. Duplicates of a
//     covered canonical fold exactly the same way — this is what keeps
//     edge-table size O(distinct renderings), not O(subscriptions);
//   - properly-covered canonicals keep local-delivery entries at the
//     edge (their filter is narrower, so they must match for
//     themselves) but forward nothing: upstream, the covering chain's
//     forwarded root carries their traffic, counted via Group.Refs.
//     Covering is transitive, so chains of masked canonicals are fine:
//     the root of every chain is forwarded.
//
// Unsubscription re-exposes what a departing filter was hiding: a
// canonical with members hands its entries to the last member
// (Table.Promote — the filter is identical, so no table mutation);
// a canonical with only masked subscriptions re-exposes them in
// a deterministic order (Reexpose), and those that no remaining canonical
// covers flood late (subscribe-before-unsubscribe ordering keeps
// remote coverage gapless).
package routing

import (
	"fmt"

	"bdps/internal/filter"
	"bdps/internal/msg"
	"bdps/internal/topology"
	"bdps/internal/vtime"
)

// Admission classifies an incoming subscription against the resident
// canonicals of its delivery-terms group.
type Admission int

const (
	// AdmitForward: no resident filter covers it — it becomes a
	// forwarded canonical and must flood/install normally.
	AdmitForward Admission = iota
	// AdmitMember: an identical filter is resident — fold into its
	// canonical's entries, suppress the flood.
	AdmitMember
	// AdmitCovered: a broader filter is resident — install local
	// delivery only, suppress the flood.
	AdmitCovered
)

// RetractKind classifies an unsubscription.
type RetractKind int

const (
	// RetractForwarded: a forwarded canonical leaves; Promoted or
	// Reexposed says what takes over its coverage.
	RetractForwarded RetractKind = iota
	// RetractMember: an exact duplicate leaves; detach it from its
	// canonical.
	RetractMember
	// RetractCovered: a masked canonical leaves; Promoted inherits its
	// local entries, or they are dropped and its own masked set
	// re-exposes (purely local bookkeeping — nothing was forwarded).
	RetractCovered
)

// Retraction is what an unsubscription requires of the table layer.
type Retraction struct {
	Kind RetractKind
	// Rep, for a member or covered retraction, is the canonical the
	// departing subscription rode (the direct coverer).
	Rep *msg.Subscription
	// Promoted, for a canonical retraction with members, is the member
	// that takes over the entries (Table.Promote must agree).
	Promoted *msg.Subscription
	// Reexposed, for a canonical retraction without members, are the
	// masked canonicals to re-evaluate (Reexpose), in a deterministic order.
	Reexposed []*msg.Subscription
}

// aggKey is the delivery-terms group: only subscriptions with identical
// terms may aggregate (identical paths, identical admission decisions).
type aggKey struct {
	edge     msg.NodeID
	deadline vtime.Millis
	price    float64
}

// repInfo is one canonical's covering set from the aggregator's point
// of view: members mirrors the table Group's member list (same
// same append/swap-remove discipline — promotion pops the same element from both), masked
// lists the canonicals directly covered by this one, forwarded says
// whether this canonical has upstream entries of its own.
type repInfo struct {
	sub       *msg.Subscription
	forwarded bool
	members   []*msg.Subscription
	masked    []*msg.Subscription
}

// Aggregator makes the covering decisions for one decision point: the
// simulator's central build/churn driver, or one live node deciding for
// the subscriptions it owns. It is pure bookkeeping — realizing the
// decisions on routing tables is the caller's half — so the simulator
// and the live overlay share identical decision sequences. Deterministic
// in the order of Admit/Remove calls. Not safe for concurrent use.
type Aggregator struct {
	cover     map[aggKey]*filter.CoverIndex
	reps      map[msg.SubID]*repInfo
	keys      map[msg.SubID]aggKey
	memberOf  map[msg.SubID]msg.SubID
	coveredBy map[msg.SubID]msg.SubID
	// suppressed counts subscribe floods avoided (member + covered
	// admissions; re-exposure re-evaluations do not count).
	suppressed int
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{
		cover:     make(map[aggKey]*filter.CoverIndex),
		reps:      make(map[msg.SubID]*repInfo),
		keys:      make(map[msg.SubID]aggKey),
		memberOf:  make(map[msg.SubID]msg.SubID),
		coveredBy: make(map[msg.SubID]msg.SubID),
	}
}

// Admit classifies a fresh subscription, recording the decision. For
// AdmitMember/AdmitCovered the returned canonical is the one to
// Attach/AddRef on; for AdmitForward it is nil.
func (a *Aggregator) Admit(s *msg.Subscription) (Admission, *msg.Subscription) {
	kind, rep := a.admit(s)
	if kind != AdmitForward {
		a.suppressed++
	}
	return kind, rep
}

// Readmit is Admit without the suppression accounting: the silent
// replay path a live node uses to reconstruct the central build's
// decision state from its preinstalled subscriptions.
func (a *Aggregator) Readmit(s *msg.Subscription) (Admission, *msg.Subscription) {
	return a.admit(s)
}

func (a *Aggregator) admit(s *msg.Subscription) (Admission, *msg.Subscription) {
	k := aggKey{edge: s.Edge, deadline: s.Deadline, price: s.Price}
	a.keys[s.ID] = k
	ci := a.cover[k]
	if ci == nil {
		ci = filter.NewCoverIndex()
		a.cover[k] = ci
	}
	if rid, ok := ci.FindExact(s.Filter); ok {
		rep := a.reps[msg.SubID(rid)]
		rep.members = append(rep.members, s)
		a.memberOf[s.ID] = rep.sub.ID
		return AdmitMember, rep.sub
	}
	// Probe before becoming index-resident: Covers is reflexive, so a
	// resident probe would find itself.
	rid, covered := ci.FindCoverer(s.Filter)
	ci.Add(int32(s.ID), s.Filter)
	if covered {
		rep := a.reps[msg.SubID(rid)]
		rep.masked = append(rep.masked, s)
		a.coveredBy[s.ID] = rep.sub.ID
		a.reps[s.ID] = &repInfo{sub: s}
		return AdmitCovered, rep.sub
	}
	a.reps[s.ID] = &repInfo{sub: s, forwarded: true}
	return AdmitForward, nil
}

// Reexpose re-evaluates a resident canonical whose direct coverer just
// departed: it either finds a new coverer (stays local) or starts
// forwarding. The chain guard rejects a candidate whose own covering
// chain runs through s — two differently-rendered but mutually-covering
// filters could otherwise mask each other with no forwarded root.
func (a *Aggregator) Reexpose(s *msg.Subscription) (Admission, *msg.Subscription) {
	k := a.keys[s.ID]
	ci := a.cover[k]
	ci.Remove(int32(s.ID))
	rid, ok := ci.FindCoverer(s.Filter)
	ci.Add(int32(s.ID), s.Filter)
	if ok && !a.chainContains(msg.SubID(rid), s.ID) {
		rep := a.reps[msg.SubID(rid)]
		rep.masked = append(rep.masked, s)
		a.coveredBy[s.ID] = rep.sub.ID
		return AdmitCovered, rep.sub
	}
	a.reps[s.ID].forwarded = true
	return AdmitForward, nil
}

// chainContains walks the covering chain upward from id and reports
// whether it passes through target.
func (a *Aggregator) chainContains(id, target msg.SubID) bool {
	for {
		if id == target {
			return true
		}
		next, ok := a.coveredBy[id]
		if !ok {
			return false
		}
		id = next
	}
}

// Remove retracts a subscription, returning what the table layer must
// do. ok is false for unknown ids.
func (a *Aggregator) Remove(id msg.SubID) (Retraction, bool) {
	k, known := a.keys[id]
	if !known {
		return Retraction{}, false
	}
	delete(a.keys, id)

	if rid, ok := a.memberOf[id]; ok {
		delete(a.memberOf, id)
		rep := a.reps[rid]
		rep.members = removeSubFrom(rep.members, id)
		return Retraction{Kind: RetractMember, Rep: rep.sub}, true
	}

	rep := a.reps[id]
	delete(a.reps, id)
	ci := a.cover[k]
	ci.Remove(int32(id))

	kind := RetractForwarded
	var coverer *repInfo
	if rid, ok := a.coveredBy[id]; ok {
		delete(a.coveredBy, id)
		kind = RetractCovered
		coverer = a.reps[rid]
	}

	if n := len(rep.members); n > 0 {
		// Promotion: the last member inherits the entries, the members
		// list, the masked set and the forwarded flag — the filter is
		// identical, so every coverage relation is preserved as-is.
		next := rep.members[n-1]
		rep.members = rep.members[:n-1]
		promoted := &repInfo{sub: next, forwarded: rep.forwarded,
			members: rep.members, masked: rep.masked}
		a.reps[next.ID] = promoted
		delete(a.memberOf, next.ID)
		for _, m := range promoted.members {
			a.memberOf[m.ID] = next.ID
		}
		for _, m := range promoted.masked {
			a.coveredBy[m.ID] = next.ID
		}
		ci.Add(int32(next.ID), next.Filter)
		ret := Retraction{Kind: kind, Promoted: next}
		if coverer != nil {
			// The coverer keeps masking the rendering under its new
			// identity.
			for i, m := range coverer.masked {
				if m.ID == id {
					coverer.masked[i] = next
				}
			}
			a.coveredBy[next.ID] = coverer.sub.ID
			ret.Rep = coverer.sub
		}
		return ret, true
	}

	// No members: the masked canonicals lose their direct cover. Hand
	// them back in a deterministic order; the caller re-evaluates each
	// (Reexpose) and realizes the outcome. Their keys and index
	// residency stay — only the coverer edge is severed.
	reexposed := rep.masked
	for _, m := range reexposed {
		delete(a.coveredBy, m.ID)
	}
	ret := Retraction{Kind: kind, Reexposed: reexposed}
	if coverer != nil {
		coverer.masked = removeSubFrom(coverer.masked, id)
		ret.Rep = coverer.sub
	}
	return ret, true
}

// IsForwarded reports whether a subscription currently has upstream
// entries of its own. Topology repair re-floods only these: members and
// masked canonicals ride their forwarded root's re-flood, and local
// delivery entries are path-independent.
func (a *Aggregator) IsForwarded(id msg.SubID) bool {
	rep, ok := a.reps[id]
	return ok && rep.forwarded
}

// RefCount returns the number of concrete subscriptions directly riding
// a canonical's entries (itself + members + directly-masked), or 0 for
// members and unknown ids.
func (a *Aggregator) RefCount(id msg.SubID) int32 {
	rep, ok := a.reps[id]
	if !ok {
		return 0
	}
	return int32(1 + len(rep.members) + len(rep.masked))
}

// Suppressed returns the number of subscribe floods avoided so far.
func (a *Aggregator) Suppressed() int { return a.suppressed }

// removeSubFrom deletes one subscription from a slice by swap-remove —
// deterministic (what re-exposure ordering needs) without the
// order-preserving memmove that windowed churn on a hot group would pay
// per departure. Table.Detach uses the same rule so the table group's
// member list and the aggregator's mirror stay in lockstep.
func removeSubFrom(subs []*msg.Subscription, id msg.SubID) []*msg.Subscription {
	for i, s := range subs {
		if s.ID == id {
			last := len(subs) - 1
			subs[i] = subs[last]
			return subs[:last]
		}
	}
	return subs
}

// AggTables drives a full table set (the simulator's central view)
// through the aggregator: one Subscribe/Unsubscribe call makes the
// covering decision AND realizes it on every broker's table. The live
// overlay does not use this — each node realizes its own slice of the
// decision from the flood protocol — but the decisions themselves are
// the same code.
type AggTables struct {
	Agg    *Aggregator
	ins    *Installer
	tables map[msg.NodeID]*Table
	// OnSuppressed, when set, observes every suppressed flood (the
	// simulator wires it to the metrics collector).
	OnSuppressed func(int)
}

// NewAggTables wraps existing tables in an aggregated churn driver.
func NewAggTables(ov *topology.Overlay, tables map[msg.NodeID]*Table, opts Options) *AggTables {
	return &AggTables{
		Agg:    NewAggregator(),
		ins:    NewInstaller(ov, opts),
		tables: tables,
	}
}

// Tables returns the driven table set.
func (at *AggTables) Tables() map[msg.NodeID]*Table { return at.tables }

// Installer returns the underlying path installer.
func (at *AggTables) Installer() *Installer { return at.ins }

// Subscribe admits one subscription and realizes the decision on the
// tables: install everywhere (forwarded canonical), fold into a
// canonical's entries (member), or install local delivery only and ref
// the coverer (covered canonical).
func (at *AggTables) Subscribe(s *msg.Subscription) {
	kind, rep := at.Agg.Admit(s)
	at.realize(kind, rep, s, true)
	if kind != AdmitForward && at.OnSuppressed != nil {
		at.OnSuppressed(1)
	}
}

// realize applies one admission decision to the tables. fresh
// distinguishes a first admission from a re-exposure (a re-exposed
// canonical already owns local entries at its edge).
func (at *AggTables) realize(kind Admission, rep, s *msg.Subscription, fresh bool) {
	switch kind {
	case AdmitForward:
		if fresh {
			at.ins.Install(at.tables, s)
		} else {
			// Local entries survived under the old coverer; only the
			// forwarding entries must materialize.
			at.ins.InstallExcept(at.tables, s, s.Edge)
		}
	case AdmitMember:
		// Membership is an edge-local affair: delivery fans out through
		// the canonical's group there; upstream state is untouched
		// whether the canonical forwards or not.
		at.tables[s.Edge].Attach(rep.ID, s)
	case AdmitCovered:
		if fresh {
			at.ins.InstallAt(s.Edge, at.tables[s.Edge], s)
		}
		for _, t := range at.tables {
			t.AddRef(rep.ID)
		}
	}
}

// Unsubscribe retracts one subscription, realizing promotion or
// re-exposure as needed.
func (at *AggTables) Unsubscribe(id msg.SubID) {
	ret, ok := at.Agg.Remove(id)
	if !ok {
		return
	}
	switch ret.Kind {
	case RetractMember:
		at.tables[ret.Rep.Edge].Detach(ret.Rep.ID, id)
	case RetractCovered:
		if ret.Promoted != nil {
			// Local entries swap identity in place; nothing upstream
			// ever existed.
			at.tables[ret.Promoted.Edge].Promote(id)
			return
		}
		at.tables[ret.Rep.Edge].RemoveSub(id)
		for _, t := range at.tables {
			t.DropRef(ret.Rep.ID)
		}
		for _, s := range ret.Reexposed {
			kind, rep := at.Agg.Reexpose(s)
			at.realize(kind, rep, s, false)
		}
	case RetractForwarded:
		if ret.Promoted != nil {
			// The edge table promotes in place (identical filter); the
			// forwarding tables swap the entries' identity by
			// removal + reinstall, then restore the refcount.
			edge := ret.Promoted.Edge
			at.tables[edge].Promote(id)
			refs := at.Agg.RefCount(ret.Promoted.ID)
			for nid, t := range at.tables {
				if nid == edge {
					continue
				}
				t.RemoveSub(id)
			}
			at.ins.InstallExcept(at.tables, ret.Promoted, edge)
			if refs > 1 {
				for nid, t := range at.tables {
					if nid != edge {
						t.SetGroup(ret.Promoted.ID, &Group{Refs: refs})
					}
				}
			}
			return
		}
		for _, t := range at.tables {
			t.RemoveSub(id)
		}
		for _, s := range ret.Reexposed {
			kind, rep := at.Agg.Reexpose(s)
			at.realize(kind, rep, s, false)
		}
	}
}

// BuildAggregated is the aggregated counterpart of Build: same overlay,
// same subscription population, but each subscription is admitted
// through a covering aggregator in order, so the resulting tables hold
// one entry set per covering canonical instead of one per
// subscription. Returns the tables and the bound driver (for subsequent
// churn). onSuppressed, when non-nil, observes each suppressed flood
// during the build.
func BuildAggregated(ov *topology.Overlay, subs []*msg.Subscription, opts Options, onSuppressed func(int)) (map[msg.NodeID]*Table, *AggTables, error) {
	tables := make(map[msg.NodeID]*Table, ov.Graph.N())
	for id := 0; id < ov.Graph.N(); id++ {
		tables[msg.NodeID(id)] = NewTable(msg.NodeID(id))
	}
	edgeSet := make(map[msg.NodeID]bool, len(ov.Edges))
	for _, e := range ov.Edges {
		edgeSet[e] = true
	}
	at := NewAggTables(ov, tables, opts)
	at.OnSuppressed = onSuppressed
	for _, sub := range subs {
		if !edgeSet[sub.Edge] {
			return nil, nil, fmt.Errorf("routing: subscription %d attaches to non-edge broker %d", sub.ID, sub.Edge)
		}
		at.Subscribe(sub)
	}
	return tables, at, nil
}
