package routing

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"bdps/internal/filter"
	"bdps/internal/msg"
	"bdps/internal/topology"
	"bdps/internal/vtime"
)

// qsub builds a two-attribute subscription on the quantized grid the
// aggregation tests churn over: cut points land on a handful of levels,
// so exact duplicates and proper covering both occur constantly.
func qsub(id msg.SubID, edge msg.NodeID, tier int, x1, x2 float64) *msg.Subscription {
	return &msg.Subscription{
		ID:       id,
		Edge:     edge,
		Filter:   filter.And(filter.Lt("A1", x1), filter.Lt("A2", x2)),
		Deadline: vtime.Millis(tier+1) * 10 * vtime.Second,
		Price:    float64(tier + 1),
	}
}

// deliverySet returns the concrete subscriptions a message is delivered
// to at each broker, expanding aggregated entries through their member
// lists, plus the set of next hops the message is forwarded on.
func deliverySet(tables map[msg.NodeID]*Table, m *msg.Message) (map[msg.NodeID][]msg.SubID, map[msg.NodeID][]msg.NodeID) {
	local := make(map[msg.NodeID][]msg.SubID)
	hops := make(map[msg.NodeID][]msg.NodeID)
	for nid, tb := range tables {
		subs := make(map[msg.SubID]bool)
		next := make(map[msg.NodeID]bool)
		for _, e := range tb.Match(m) {
			if e.Local() {
				subs[e.Sub.ID] = true
				if e.Agg != nil {
					for _, mem := range e.Agg.Members {
						subs[mem.ID] = true
					}
				}
			} else {
				next[e.Next] = true
			}
		}
		if len(subs) > 0 {
			ids := make([]msg.SubID, 0, len(subs))
			for id := range subs {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			local[nid] = ids
		}
		if len(next) > 0 {
			ns := make([]msg.NodeID, 0, len(next))
			for n := range next {
				ns = append(ns, n)
			}
			sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
			hops[nid] = ns
		}
	}
	return local, hops
}

func equalIDs(a, b []msg.SubID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalNodes(a, b []msg.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAggregatedEquivalenceRandomized is the load-bearing equivalence
// suite: a flat table set and an aggregated one process the same
// interleaved subscribe/unsubscribe schedule, and after every batch a
// battery of probe messages must see bit-identical delivery sets
// (aggregated matches expanded through group members) and bit-identical
// next-hop sets at every broker. The schedule is quantized so exact
// duplicates, proper covering, promotion, and re-exposure all occur.
func TestAggregatedEquivalenceRandomized(t *testing.T) {
	ov, err := topology.BuildLayered(topology.LayeredConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	grid := []float64{2, 4, 6, 8}
	probes := []float64{1, 3, 5, 7, 9}

	for seed := int64(0); seed < 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		flat, err := Build(ov, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		aggTables, agg, err := BuildAggregated(ov, nil, Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, tb := range flat {
			tb.EnableIndex()
		}
		for _, tb := range aggTables {
			tb.EnableIndex()
		}

		verify := func(step int) {
			t.Helper()
			for _, ing := range ov.Ingress {
				for _, a1 := range probes {
					for _, a2 := range probes {
						m := &msg.Message{Ingress: ing, Attrs: msg.NumAttrs(map[string]float64{"A1": a1, "A2": a2})}
						fl, fh := deliverySet(flat, m)
						al, ah := deliverySet(aggTables, m)
						for nid := range flat {
							if !equalIDs(fl[nid], al[nid]) {
								t.Fatalf("seed %d step %d: broker %d delivery mismatch for A1=%v A2=%v ingress %d:\n flat %v\n agg  %v",
									seed, step, nid, a1, a2, ing, fl[nid], al[nid])
							}
							if !equalNodes(fh[nid], ah[nid]) {
								t.Fatalf("seed %d step %d: broker %d next-hop mismatch for A1=%v A2=%v ingress %d:\n flat %v\n agg  %v",
									seed, step, nid, a1, a2, ing, fh[nid], ah[nid])
							}
						}
					}
				}
			}
		}

		active := make(map[msg.SubID]bool)
		var order []msg.SubID
		nextID := msg.SubID(1)
		for step := 0; step < 160; step++ {
			if len(order) > 0 && rng.Intn(10) < 4 {
				// Unsubscribe a random active subscription on both sides.
				i := rng.Intn(len(order))
				id := order[i]
				order[i] = order[len(order)-1]
				order = order[:len(order)-1]
				delete(active, id)
				RemoveSubAll(flat, id)
				agg.Unsubscribe(id)
			} else {
				edge := ov.Edges[rng.Intn(len(ov.Edges))]
				s := qsub(nextID, edge, rng.Intn(2),
					grid[rng.Intn(len(grid))], grid[rng.Intn(len(grid))])
				nextID++
				active[s.ID] = true
				order = append(order, s.ID)
				InstallSub(flat, ov, s, Options{})
				agg.Subscribe(s)
			}
			if step%16 == 15 {
				verify(step)
			}
		}
		if agg.Agg.Suppressed() == 0 {
			t.Fatalf("seed %d: quantized schedule never aggregated anything", seed)
		}
		if fa, aa := Stats(flat).TotalEntries, Stats(aggTables).TotalEntries; aa > fa {
			t.Fatalf("seed %d: aggregated tables larger than flat (%d > %d)", seed, aa, fa)
		}

		// Drain: unsubscribing everything (including every covering rep)
		// must re-expose and then empty both sides completely.
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, id := range order {
			RemoveSubAll(flat, id)
			agg.Unsubscribe(id)
			verify(-1)
		}
		if n := Stats(aggTables).TotalEntries; n != 0 {
			t.Fatalf("seed %d: aggregated tables not empty after full drain: %d entries", seed, n)
		}
	}
}

// TestAggregateExactDuplicateFoldsAndPromotes covers the member tier: an
// exact-duplicate subscription installs no entries of its own, delivers
// through its representative's group, and inherits the rep's entries in
// place when the rep unsubscribes.
func TestAggregateExactDuplicateFoldsAndPromotes(t *testing.T) {
	ov := chainOverlay(t)
	tables, agg, err := BuildAggregated(ov, nil, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1 := sub(1, 2, "A1 < 5")
	s2 := sub(2, 2, "A1 < 5")
	agg.Subscribe(s1)
	agg.Subscribe(s2)

	if got := Stats(tables).TotalEntries; got != 3 {
		t.Fatalf("entries after duplicate subscribe = %d, want 3 (duplicate must fold)", got)
	}
	if agg.Agg.Suppressed() != 1 {
		t.Fatalf("suppressed = %d, want 1", agg.Agg.Suppressed())
	}
	m := &msg.Message{Ingress: 0, Attrs: msg.NumAttrs(map[string]float64{"A1": 3, "A2": 1})}
	local, _ := deliverySet(tables, m)
	if !equalIDs(local[2], []msg.SubID{1, 2}) {
		t.Fatalf("edge delivery = %v, want [1 2]", local[2])
	}
	if n := tables[2].AggregatedEntries(); n == 0 {
		t.Fatal("edge table reports no aggregated entries despite a 2-strong group")
	}

	// Rep departs: the member is promoted into the rep's entries.
	agg.Unsubscribe(1)
	if got := Stats(tables).TotalEntries; got != 3 {
		t.Fatalf("entries after promotion = %d, want 3", got)
	}
	local, _ = deliverySet(tables, m)
	if !equalIDs(local[2], []msg.SubID{2}) {
		t.Fatalf("edge delivery after promotion = %v, want [2]", local[2])
	}
	for _, e := range tables[0].Entries(0) {
		if e.Sub.ID != 2 {
			t.Fatalf("ingress entry still owned by departed rep %d", e.Sub.ID)
		}
	}
	agg.Unsubscribe(2)
	if got := Stats(tables).TotalEntries; got != 0 {
		t.Fatalf("entries after last unsubscribe = %d, want 0", got)
	}
}

// TestAggregateCoveredReexposure covers the proper-covering tier: a
// covered subscription keeps only local delivery entries at its edge,
// upstream flooding is suppressed, and unsubscribing the coverer
// re-installs the covered subscription's upstream routes.
func TestAggregateCoveredReexposure(t *testing.T) {
	ov := chainOverlay(t)
	tables, agg, err := BuildAggregated(ov, nil, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	broad := sub(1, 2, "A1 < 8")
	narrow := sub(2, 2, "A1 < 5")
	agg.Subscribe(broad)
	agg.Subscribe(narrow)

	if !agg.Agg.IsForwarded(broad.ID) || agg.Agg.IsForwarded(narrow.ID) {
		t.Fatal("coverer must be forwarded, covered must not")
	}
	for _, nid := range []msg.NodeID{0, 1} {
		for _, e := range tables[nid].Entries(0) {
			if e.Sub.ID == narrow.ID {
				t.Fatalf("covered subscription leaked an upstream entry at broker %d", nid)
			}
		}
	}
	// A message inside the coverer but outside the covered filter is
	// forwarded (the rep stands for it) yet delivered only to the rep.
	wide := &msg.Message{Ingress: 0, Attrs: msg.NumAttrs(map[string]float64{"A1": 6, "A2": 1})}
	local, hops := deliverySet(tables, wide)
	if !equalIDs(local[2], []msg.SubID{1}) || len(hops[0]) == 0 {
		t.Fatalf("wide message: local=%v hops0=%v", local[2], hops[0])
	}
	inner := &msg.Message{Ingress: 0, Attrs: msg.NumAttrs(map[string]float64{"A1": 3, "A2": 1})}
	local, _ = deliverySet(tables, inner)
	if !equalIDs(local[2], []msg.SubID{1, 2}) {
		t.Fatalf("inner message delivery = %v, want [1 2]", local[2])
	}

	// Coverer departs: the covered subscription is re-exposed upstream.
	agg.Unsubscribe(broad.ID)
	if !agg.Agg.IsForwarded(narrow.ID) {
		t.Fatal("covered subscription not re-exposed after coverer unsubscribed")
	}
	local, _ = deliverySet(tables, wide)
	if len(local[2]) != 0 {
		t.Fatalf("wide message still delivered after coverer left: %v", local[2])
	}
	local, hops = deliverySet(tables, inner)
	if !equalIDs(local[2], []msg.SubID{2}) || len(hops[0]) == 0 {
		t.Fatalf("inner message after re-exposure: local=%v hops0=%v", local[2], hops[0])
	}
	agg.Unsubscribe(narrow.ID)
	if got := Stats(tables).TotalEntries; got != 0 {
		t.Fatalf("entries after drain = %d, want 0", got)
	}
}

// TestAggregateCoveredLocalUnsubscribe: a covered subscription's own
// departure is purely local — the coverer's upstream state is untouched.
func TestAggregateCoveredLocalUnsubscribe(t *testing.T) {
	ov := chainOverlay(t)
	tables, agg, err := BuildAggregated(ov, nil, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	broad := sub(1, 2, "A1 < 8")
	narrow := sub(2, 2, "A1 < 5")
	agg.Subscribe(broad)
	agg.Subscribe(narrow)
	before := Stats(tables).TotalEntries

	agg.Unsubscribe(narrow.ID)
	if got := Stats(tables).TotalEntries; got != before-1 {
		t.Fatalf("entries = %d, want %d (only the covered local entry removed)", got, before-1)
	}
	if !agg.Agg.IsForwarded(broad.ID) {
		t.Fatal("coverer lost forwarded status on covered departure")
	}
	if rc := agg.Agg.RefCount(broad.ID); rc != 1 {
		t.Fatalf("coverer refcount = %d, want 1", rc)
	}
}

// TestAggregateMaskedReadmitsUnderOtherRep: when a coverer departs, its
// masked subscriptions re-admit through the aggregator — and stay
// suppressed if another live rep still covers them.
func TestAggregateMaskedReadmitsUnderOtherRep(t *testing.T) {
	ov := chainOverlay(t)
	tables, agg, err := BuildAggregated(ov, nil, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b1 := sub(1, 2, "A1 < 8")
	b2 := &msg.Subscription{ID: 2, Edge: 2, Filter: filter.Lt("A2", 8),
		Deadline: 10 * vtime.Second, Price: 1}
	covered := &msg.Subscription{ID: 3, Edge: 2,
		Filter:   filter.And(filter.Lt("A1", 5), filter.Lt("A2", 5)),
		Deadline: 10 * vtime.Second, Price: 1}
	agg.Subscribe(b1)
	agg.Subscribe(b2)
	agg.Subscribe(covered)
	if agg.Agg.IsForwarded(covered.ID) {
		t.Fatal("doubly-covered subscription was forwarded")
	}

	// Find which rep masked it, remove that rep: the survivor must pick
	// the orphan up without any upstream entry for the orphan appearing.
	masker, survivor := b1, b2
	if agg.Agg.RefCount(b2.ID) > 1 {
		masker, survivor = b2, b1
	}
	agg.Unsubscribe(masker.ID)
	if agg.Agg.IsForwarded(covered.ID) {
		t.Fatal("re-admitted subscription forwarded despite a surviving coverer")
	}
	if rc := agg.Agg.RefCount(survivor.ID); rc != 2 {
		t.Fatalf("surviving coverer refcount = %d, want 2", rc)
	}
	for _, nid := range []msg.NodeID{0, 1} {
		for _, e := range tables[nid].Entries(0) {
			if e.Sub.ID == covered.ID {
				t.Fatalf("re-admitted subscription leaked an upstream entry at broker %d", nid)
			}
		}
	}
	// The orphan still delivers locally.
	m := &msg.Message{Ingress: 0, Attrs: msg.NumAttrs(map[string]float64{"A1": 3, "A2": 3})}
	local, _ := deliverySet(tables, m)
	for _, id := range []msg.SubID{survivor.ID, covered.ID} {
		found := false
		for _, got := range local[2] {
			if got == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("edge delivery %v missing sub %d", local[2], id)
		}
	}
}

// TestAggregatedMatchDuringMutation is the aggregation flavor of the
// readers-writer contract under -race: matchers with private scratch
// run against tables that an AggTables mutator is churning through
// member attach/detach, covered refcounts, promotion, and re-exposure.
func TestAggregatedMatchDuringMutation(t *testing.T) {
	ov := chainOverlay(t)
	tables, agg, err := BuildAggregated(ov, nil, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		tb.EnableIndex()
	}
	var mu sync.RWMutex
	static := sub(1, 2, "A1 < 100")
	agg.Subscribe(static)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(nid msg.NodeID) {
			defer wg.Done()
			var scratch filter.MatchScratch
			var buf []*Entry
			m := &msg.Message{Ingress: 0, Attrs: msg.NumAttrs(map[string]float64{"A1": 50, "A2": 1})}
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.RLock()
				buf = tables[nid].MatchAppendWith(&scratch, m, buf[:0])
				ok := false
				for _, e := range buf {
					if e.Sub.ID == static.ID {
						ok = true
					}
					if e.Agg != nil {
						for _, mem := range e.Agg.Members {
							_ = mem.ID
						}
					}
				}
				mu.RUnlock()
				if !ok {
					t.Error("static subscription vanished from a concurrent aggregated match")
					return
				}
			}
		}(msg.NodeID(2 * (w % 2))) // alternate ingress and edge tables
	}

	// Mutator: churn duplicates, covered subs, and short-lived reps so
	// every aggregation transition runs against live matchers.
	live := make(map[msg.SubID]bool)
	for i := 0; i < 3000; i++ {
		id := msg.SubID(2 + i%31)
		var s *msg.Subscription
		switch i % 3 {
		case 0:
			s = sub(id, 2, "A1 < 100") // exact duplicate of static
		case 1:
			s = sub(id, 2, "A1 < 5") // properly covered
		default:
			s = &msg.Subscription{ID: id, Edge: 2, Filter: filter.Lt("A2", 7),
				Deadline: 10 * vtime.Second, Price: 1} // independent rep
		}
		mu.Lock()
		if live[id] {
			agg.Unsubscribe(id)
			delete(live, id)
		} else {
			agg.Subscribe(s)
			live[id] = true
		}
		mu.Unlock()
	}
	close(stop)
	wg.Wait()
}
