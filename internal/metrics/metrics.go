// Package metrics collects and reports the evaluation metrics of §6.1:
// delivery rate (eq. 1), total earning (eq. 2) and message number (total
// broker receptions, the network-traffic proxy), plus the drop taxonomy
// and latency distributions this reimplementation adds for diagnosis.
package metrics

import (
	"fmt"
	"sort"

	"bdps/internal/stats"
	"bdps/internal/vtime"
)

// Collector accumulates one simulation run's metrics. It is not
// goroutine-safe: the simulator is single-threaded by construction, and
// the live runtime keeps one collector per node.
type Collector struct {
	published    int
	totalTargets int // Σ tsᵢ: interested subscribers over published messages
	receptions   int // the paper's "message number"

	validDeliveries int // Σ dsᵢ
	lateDeliveries  int
	earning         float64

	dropsExpired  int // queue drops: all deadlines passed
	dropsHopeless int // queue drops: ε-detection (§5.4)
	dropsArrival  int // dropped at arrival processing (not viable / no match)
	dropsCrashed  int // lost to injected broker crashes

	latency stats.Summary // valid deliveries only, ms

	// Recovery counters (self-healing control plane).
	detections       int           // confirmed failure detections (per dead arc)
	detectionLatency stats.Summary // fault → confirmed detection, ms
	reroutedPaths    int           // (ingress, subscription) pairs moved to a new path
	boundsKept       int           // renegotiation: old bound still feasible
	boundsRelaxed    int           // renegotiation: relaxed to cheapest feasible bound
	boundsRejected   int           // renegotiation: no feasible bound on any surviving path
	refloodedSubs    int           // subscriptions re-flooded onto surviving routes

	// Reliable-channel counters (lossy-network resilience).
	framesLost      int // transmissions the link adversary dropped
	retransmits     int // re-sends scheduled after a loss
	dupsSuppressed  int // duplicate frames discarded by per-link dedup
	reorderedHealed int // out-of-order frames restored to FIFO order
	droppedDeadline int // retransmissions abandoned: remaining slack too small

	// Covering-aggregation counters.
	floodsSuppressed  int // subscribe floods avoided by a covering filter
	aggregatedEntries int // live entries standing for >1 subscription (end-of-run)

	// Overload-protection counters (online admission control + shedding).
	pubsAdmitted int // publications admitted with their bound intact
	pubsRelaxed  int // publications admitted under a relaxed bound
	pubsRejected int // publications refused at the ingress
	subsRejected int // subscription floods refused (bound unmeetable)
	dropsShed    int // queue entries evicted by pressure shedding
	boundLedger  map[int]*boundCounts

	// Crash-restart recovery counters (durable broker state + session
	// resumption).
	restartReplayedSubs int // routing entries reinstalled from a restarted broker's log
	sessionsResumed     int // subscriber sessions reattached via resume token
	replayedMsgs        int // retained deliveries replayed to resumed sessions
	staleEpochFrames    int // data frames rejected as a dead incarnation's

	// Delivery timeline: targets and valid deliveries bucketed by the
	// message's publication instant (enabled by EnableTimeline).
	timelineBucket vtime.Millis
	tlTargets      []int
	tlValid        []int

	// Per-subscriber accounting for fairness analysis.
	subExpected map[int32]int
	subValid    map[int32]int
}

// EnableTimeline arms publication-time bucketing of targets and valid
// deliveries with the given bucket width — the delivery-rate-over-time
// view the recovery experiments plot. Call before any accounting.
func (c *Collector) EnableTimeline(bucket vtime.Millis) {
	if bucket > 0 {
		c.timelineBucket = bucket
	}
}

// bucketAt grows (if needed) and returns the bucket index for a
// publication instant, or -1 when the timeline is off or the instant is
// invalid.
func (c *Collector) bucketAt(published vtime.Millis) int {
	if c.timelineBucket <= 0 || published < 0 {
		return -1
	}
	i := int(published / c.timelineBucket)
	for len(c.tlTargets) <= i {
		c.tlTargets = append(c.tlTargets, 0)
		c.tlValid = append(c.tlValid, 0)
	}
	return i
}

// Published records a published message and its interested-subscriber
// count tsᵢ.
func (c *Collector) Published(interested int) {
	c.published++
	c.totalTargets += interested
}

// PublishedAt is Published with the publication instant, feeding the
// delivery timeline when one is enabled.
func (c *Collector) PublishedAt(interested int, at vtime.Millis) {
	c.Published(interested)
	if i := c.bucketAt(at); i >= 0 {
		c.tlTargets[i] += interested
	}
}

// PublishedTo additionally attributes the expectation to each interested
// subscriber for fairness accounting. Call instead of Published when
// per-subscriber metrics are wanted.
func (c *Collector) PublishedTo(interested []int32) {
	c.Published(len(interested))
	if c.subExpected == nil {
		c.subExpected = make(map[int32]int)
	}
	for _, id := range interested {
		c.subExpected[id]++
	}
}

// PublishedToAt is PublishedTo with the publication instant for the
// delivery timeline.
func (c *Collector) PublishedToAt(interested []int32, at vtime.Millis) {
	c.PublishedTo(interested)
	if i := c.bucketAt(at); i >= 0 {
		c.tlTargets[i] += len(interested)
	}
}

// Reception records one message received by a broker.
func (c *Collector) Reception() { c.receptions++ }

// Delivered records a delivery to one subscriber. Valid deliveries add
// price to the earning and the latency sample.
func (c *Collector) Delivered(price float64, latency vtime.Millis, valid bool) {
	c.DeliveredTo(-1, price, latency, valid)
}

// DeliveredTo is Delivered with subscriber attribution (id < 0 skips the
// per-subscriber accounting).
func (c *Collector) DeliveredTo(subID int32, price float64, latency vtime.Millis, valid bool) {
	c.DeliveredAt(subID, price, -1, latency, valid)
}

// DeliveredAt is DeliveredTo with the message's publication instant, so
// valid deliveries land in the delivery timeline (published < 0 skips
// the bucketing).
func (c *Collector) DeliveredAt(subID int32, price float64, published, latency vtime.Millis, valid bool) {
	if !valid {
		c.lateDeliveries++
		return
	}
	c.validDeliveries++
	c.earning += price
	c.latency.Add(latency)
	if i := c.bucketAt(published); i >= 0 {
		c.tlValid[i]++
	}
	if subID >= 0 {
		if c.subValid == nil {
			c.subValid = make(map[int32]int)
		}
		c.subValid[subID]++
	}
}

// DroppedExpired counts queue entries pruned after full expiry.
func (c *Collector) DroppedExpired(n int) { c.dropsExpired += n }

// DroppedHopeless counts queue entries pruned by ε-detection.
func (c *Collector) DroppedHopeless(n int) { c.dropsHopeless += n }

// DroppedOnArrival counts forwarding intents discarded during arrival
// processing (expired or hopeless before ever being queued).
func (c *Collector) DroppedOnArrival(n int) { c.dropsArrival += n }

// DroppedCrashed counts messages lost to injected broker crashes.
func (c *Collector) DroppedCrashed(n int) { c.dropsCrashed += n }

// Detection records one confirmed failure detection (one dead directed
// arc) and its detection latency: fault instant → confirmed-dead.
func (c *Collector) Detection(latency vtime.Millis) {
	c.detections++
	c.detectionLatency.Add(latency)
}

// Rerouted counts (ingress, subscription) pairs topology repair moved
// onto a new surviving path.
func (c *Collector) Rerouted(n int) { c.reroutedPaths += n }

// Renegotiated records the outcome counts of one repair pass's online
// admission replay: bounds kept as-is, relaxed to the cheapest feasible
// value, and rejected outright.
func (c *Collector) Renegotiated(kept, relaxed, rejected int) {
	c.boundsKept += kept
	c.boundsRelaxed += relaxed
	c.boundsRejected += rejected
}

// Reflooded counts subscriptions re-flooded onto surviving routes after
// a repair.
func (c *Collector) Reflooded(n int) { c.refloodedSubs += n }

// FrameLost counts transmissions dropped by the injected link adversary.
func (c *Collector) FrameLost(n int) { c.framesLost += n }

// Retransmit counts re-sends the reliable channel scheduled after losses.
func (c *Collector) Retransmit(n int) { c.retransmits += n }

// DupSuppressed counts duplicate frames per-link dedup discarded.
func (c *Collector) DupSuppressed(n int) { c.dupsSuppressed += n }

// ReorderHealed counts out-of-order frames buffered and later released in
// FIFO order.
func (c *Collector) ReorderHealed(n int) { c.reorderedHealed += n }

// DroppedDeadline counts retransmissions abandoned because the entry's
// remaining slack no longer admitted the extra transmission.
func (c *Collector) DroppedDeadline(n int) { c.droppedDeadline += n }

// FloodSuppressed counts subscribe floods a covering filter made
// unnecessary.
func (c *Collector) FloodSuppressed(n int) { c.floodsSuppressed += n }

// boundCounts is one bucket of the per-bound admission ledger.
type boundCounts struct{ admitted, relaxed, rejected int }

// boundBucket quantizes an applicable bound into a ledger bucket key
// (whole seconds): PSD bounds are continuous, so per-exact-bound
// counting would make the ledger one entry per publication.
func boundBucket(bound vtime.Millis) int {
	return int(bound/vtime.Second + 0.5)
}

func (c *Collector) boundAt(bound vtime.Millis) *boundCounts {
	if c.boundLedger == nil {
		c.boundLedger = make(map[int]*boundCounts)
	}
	b := c.boundLedger[boundBucket(bound)]
	if b == nil {
		b = &boundCounts{}
		c.boundLedger[boundBucket(bound)] = b
	}
	return b
}

// PubAdmitted records a publication that passed admission with its
// bound intact.
func (c *Collector) PubAdmitted(bound vtime.Millis) {
	c.pubsAdmitted++
	c.boundAt(bound).admitted++
}

// PubRelaxed records a publication admitted under a relaxed bound.
func (c *Collector) PubRelaxed(bound vtime.Millis) {
	c.pubsRelaxed++
	c.boundAt(bound).relaxed++
}

// PubRejected records a publication refused at the ingress: no
// admissible bound within the relax cap under the current load.
func (c *Collector) PubRejected(bound vtime.Millis) {
	c.pubsRejected++
	c.boundAt(bound).rejected++
}

// SubRejected counts subscription floods refused by admission control.
func (c *Collector) SubRejected(n int) { c.subsRejected += n }

// DroppedShed counts queue entries evicted by pressure-triggered
// worst-first shedding.
func (c *Collector) DroppedShed(n int) { c.dropsShed += n }

// SubReplayed counts routing entries a restarted broker reinstalled
// from its durable log.
func (c *Collector) SubReplayed(n int) { c.restartReplayedSubs += n }

// SessionResumed counts subscriber sessions reattached via resume token.
func (c *Collector) SessionResumed(n int) { c.sessionsResumed += n }

// MsgReplayed counts retained deliveries replayed to resumed sessions
// (only those whose bounds still held; expired replays are
// DroppedDeadline).
func (c *Collector) MsgReplayed(n int) { c.replayedMsgs += n }

// StaleEpoch counts data frames rejected because they carried a dead
// broker incarnation's epoch.
func (c *Collector) StaleEpoch(n int) { c.staleEpochFrames += n }

// AggregatedEntries records the end-of-run count of live routing entries
// standing for more than one subscription (stamped by the run driver
// from a table scan).
func (c *Collector) AggregatedEntries(n int) { c.aggregatedEntries = n }

// Result freezes a collector into the run summary.
func (c *Collector) Result() Result {
	r := Result{
		Published:       c.published,
		TotalTargets:    c.totalTargets,
		Receptions:      c.receptions,
		ValidDeliveries: c.validDeliveries,
		LateDeliveries:  c.lateDeliveries,
		Earning:         c.earning,
		DropsExpired:    c.dropsExpired,
		DropsHopeless:   c.dropsHopeless,
		DropsArrival:    c.dropsArrival,
		DropsCrashed:    c.dropsCrashed,
		Fairness:        c.fairness(),
		Detections:      c.detections,
		ReroutedPaths:   c.reroutedPaths,
		BoundsKept:      c.boundsKept,
		BoundsRelaxed:   c.boundsRelaxed,
		BoundsRejected:  c.boundsRejected,
		RefloodedSubs:   c.refloodedSubs,
		FramesLost:      c.framesLost,
		Retransmits:     c.retransmits,
		DupsSuppressed:  c.dupsSuppressed,
		ReorderedHealed: c.reorderedHealed,
		DroppedDeadline: c.droppedDeadline,

		FloodsSuppressed:  c.floodsSuppressed,
		AggregatedEntries: c.aggregatedEntries,

		PubsAdmitted: c.pubsAdmitted,
		PubsRelaxed:  c.pubsRelaxed,
		PubsRejected: c.pubsRejected,
		SubsRejected: c.subsRejected,
		DropsShed:    c.dropsShed,

		RestartReplayedSubs: c.restartReplayedSubs,
		SessionsResumed:     c.sessionsResumed,
		ReplayedMsgs:        c.replayedMsgs,
		StaleEpochFrames:    c.staleEpochFrames,
	}
	if len(c.boundLedger) > 0 {
		r.BoundLedger = make([]BoundAdmissions, 0, len(c.boundLedger))
		for sec, b := range c.boundLedger {
			r.BoundLedger = append(r.BoundLedger, BoundAdmissions{
				BoundSec: sec,
				Admitted: b.admitted,
				Relaxed:  b.relaxed,
				Rejected: b.rejected,
			})
		}
		sort.Slice(r.BoundLedger, func(i, j int) bool {
			return r.BoundLedger[i].BoundSec < r.BoundLedger[j].BoundSec
		})
	}
	if c.latency.Count() > 0 {
		r.LatencyMeanMs = c.latency.Mean()
		r.LatencyP50Ms = c.latency.Quantile(0.5)
		r.LatencyP95Ms = c.latency.Quantile(0.95)
		r.LatencyMaxMs = c.latency.Max()
	}
	if c.detectionLatency.Count() > 0 {
		r.DetectionLatencyMs = c.detectionLatency.Mean()
	}
	if c.timelineBucket > 0 {
		r.Timeline = make([]TimeBucket, len(c.tlTargets))
		for i := range c.tlTargets {
			r.Timeline[i] = TimeBucket{
				Start:   vtime.Millis(i) * c.timelineBucket,
				Targets: c.tlTargets[i],
				Valid:   c.tlValid[i],
			}
		}
	}
	return r
}

// fairness computes Jain's fairness index over per-subscriber delivery
// ratios xᵢ = validᵢ/expectedᵢ: (Σx)² / (n·Σx²). 1.0 means perfectly even
// service; 1/n means one subscriber got everything. Returns 0 when
// per-subscriber accounting was not enabled or nothing was expected.
func (c *Collector) fairness() float64 {
	if len(c.subExpected) == 0 {
		return 0
	}
	var sum, sumSq float64
	n := 0
	for id, exp := range c.subExpected {
		if exp == 0 {
			continue
		}
		x := float64(c.subValid[id]) / float64(exp)
		sum += x
		sumSq += x * x
		n++
	}
	if n == 0 || sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(n) * sumSq)
}

// Result is the immutable outcome of one run.
type Result struct {
	Label    string // run identification (strategy, scenario, rate…)
	Seed     uint64
	Strategy string
	Scenario string
	Backend  string // which runtime transport carried the run ("sim", "live")

	Published    int
	TotalTargets int
	Receptions   int

	ValidDeliveries int
	LateDeliveries  int
	Earning         float64

	DropsExpired  int
	DropsHopeless int
	DropsArrival  int
	DropsCrashed  int

	// Fairness is Jain's index over per-subscriber delivery ratios, or 0
	// when per-subscriber accounting was off.
	Fairness float64

	LatencyMeanMs float64
	LatencyP50Ms  float64
	LatencyP95Ms  float64
	LatencyMaxMs  float64

	PeakQueue int

	// Recovery counters (self-healing control plane); all zero on runs
	// without failure detection.
	Detections         int
	DetectionLatencyMs float64
	ReroutedPaths      int
	BoundsKept         int
	BoundsRelaxed      int
	BoundsRejected     int
	RefloodedSubs      int

	// Reliable-channel counters (lossy-network resilience); all zero on
	// runs without an injected link adversary.
	FramesLost      int
	Retransmits     int
	DupsSuppressed  int
	ReorderedHealed int
	DroppedDeadline int

	// Covering-aggregation counters; all zero on runs without
	// aggregation.
	FloodsSuppressed  int
	AggregatedEntries int

	// SLO ledger (overload protection); all zero on runs without
	// admission control or shedding. Published and TotalTargets count
	// only admitted traffic: offered load = Published + PubsRejected.
	PubsAdmitted int
	PubsRelaxed  int
	PubsRejected int
	SubsRejected int
	DropsShed    int
	// BoundLedger breaks the admission decisions down by applicable
	// bound (bucketed to whole seconds), sorted by bound.
	BoundLedger []BoundAdmissions

	// Crash-restart recovery ledger (durable broker state + warm rejoin
	// + session resumption); all zero on runs without broker restarts.
	RestartReplayedSubs int
	SessionsResumed     int
	ReplayedMsgs        int
	StaleEpochFrames    int

	// Timeline is the delivery-over-time histogram (publication-time
	// buckets); nil unless the run enabled one.
	Timeline []TimeBucket
}

// BoundAdmissions is the admission ledger for one applicable-bound
// bucket (bounds rounded to the nearest second).
type BoundAdmissions struct {
	BoundSec int
	Admitted int
	Relaxed  int
	Rejected int
}

// TimeBucket is one publication-time bucket of the delivery timeline.
type TimeBucket struct {
	Start   vtime.Millis
	Targets int
	Valid   int
}

// Rate is the bucket's delivery rate (0 when nothing was targeted).
func (b TimeBucket) Rate() float64 {
	if b.Targets == 0 {
		return 0
	}
	return float64(b.Valid) / float64(b.Targets)
}

// DeliveryRate is eq. (1): Σ dsᵢ / Σ tsᵢ (0 when nothing was published).
func (r Result) DeliveryRate() float64 {
	if r.TotalTargets == 0 {
		return 0
	}
	return float64(r.ValidDeliveries) / float64(r.TotalTargets)
}

// MessageNumberK is the paper's traffic metric in thousands.
func (r Result) MessageNumberK() float64 { return float64(r.Receptions) / 1000 }

// EarningK is the total earning in thousands.
func (r Result) EarningK() float64 { return r.Earning / 1000 }

// SLOAttainment is the delay-SLO attainment of admitted traffic: valid
// deliveries over the targets of publications that passed admission.
// With admission off every publication is admitted and this equals
// DeliveryRate.
func (r Result) SLOAttainment() float64 { return r.DeliveryRate() }

// RejectRate is the share of offered publications admission refused.
func (r Result) RejectRate() float64 {
	offered := r.Published + r.PubsRejected
	if offered == 0 {
		return 0
	}
	return float64(r.PubsRejected) / float64(offered)
}

// String implements fmt.Stringer with the headline numbers. Runs that
// detected failures append the recovery counters next to the drop
// causes.
func (r Result) String() string {
	s := fmt.Sprintf("%s: delivery %.1f%% earning %.1fk traffic %.1fk (drops exp=%d hopeless=%d arrival=%d)",
		r.Label, 100*r.DeliveryRate(), r.EarningK(), r.MessageNumberK(),
		r.DropsExpired, r.DropsHopeless, r.DropsArrival)
	if r.Detections > 0 {
		s += fmt.Sprintf(" (recovery det=%d lat=%.0fms reroutes=%d kept=%d relaxed=%d rejected=%d reflood=%d)",
			r.Detections, r.DetectionLatencyMs, r.ReroutedPaths,
			r.BoundsKept, r.BoundsRelaxed, r.BoundsRejected, r.RefloodedSubs)
	}
	if r.FramesLost > 0 || r.DupsSuppressed > 0 || r.ReorderedHealed > 0 || r.DroppedDeadline > 0 {
		s += fmt.Sprintf(" (loss lost=%d retx=%d dup=%d reorder=%d deadline=%d)",
			r.FramesLost, r.Retransmits, r.DupsSuppressed, r.ReorderedHealed, r.DroppedDeadline)
	}
	if r.FloodsSuppressed > 0 || r.AggregatedEntries > 0 {
		s += fmt.Sprintf(" (agg floods-suppressed=%d agg-entries=%d)",
			r.FloodsSuppressed, r.AggregatedEntries)
	}
	if r.PubsAdmitted > 0 || r.PubsRejected > 0 || r.SubsRejected > 0 || r.DropsShed > 0 {
		s += fmt.Sprintf(" (slo admitted=%d relaxed=%d rejected=%d subs-rejected=%d shed=%d attain=%.1f%%)",
			r.PubsAdmitted, r.PubsRelaxed, r.PubsRejected, r.SubsRejected, r.DropsShed,
			100*r.SLOAttainment())
	}
	if r.RestartReplayedSubs > 0 || r.SessionsResumed > 0 || r.ReplayedMsgs > 0 || r.StaleEpochFrames > 0 {
		s += fmt.Sprintf(" (restart replayed-subs=%d sessions-resumed=%d replayed-msgs=%d stale-epoch=%d)",
			r.RestartReplayedSubs, r.SessionsResumed, r.ReplayedMsgs, r.StaleEpochFrames)
	}
	return s
}

// Mean averages a set of results (for multi-seed aggregation). Counts are
// averaged as floats and rounded; the label is taken from the first
// result.
func Mean(rs []Result) Result {
	if len(rs) == 0 {
		return Result{}
	}
	out := rs[0]
	n := float64(len(rs))
	var pub, tgt, rec, valid, late, de, dh, da, dc, peak float64
	var earn, lm, l50, l95, lmax, fair float64
	var det, detLat, rerouted, kept, relaxed, rejected, reflooded float64
	var lost, retx, dups, reord, ddl float64
	var floodSup, aggEnt float64
	var padm, prel, prej, srej, shed float64
	var rsubs, sres, rmsgs, stale float64
	for _, r := range rs {
		rsubs += float64(r.RestartReplayedSubs)
		sres += float64(r.SessionsResumed)
		rmsgs += float64(r.ReplayedMsgs)
		stale += float64(r.StaleEpochFrames)
		padm += float64(r.PubsAdmitted)
		prel += float64(r.PubsRelaxed)
		prej += float64(r.PubsRejected)
		srej += float64(r.SubsRejected)
		shed += float64(r.DropsShed)
		floodSup += float64(r.FloodsSuppressed)
		aggEnt += float64(r.AggregatedEntries)
		lost += float64(r.FramesLost)
		retx += float64(r.Retransmits)
		dups += float64(r.DupsSuppressed)
		reord += float64(r.ReorderedHealed)
		ddl += float64(r.DroppedDeadline)
		det += float64(r.Detections)
		detLat += r.DetectionLatencyMs
		rerouted += float64(r.ReroutedPaths)
		kept += float64(r.BoundsKept)
		relaxed += float64(r.BoundsRelaxed)
		rejected += float64(r.BoundsRejected)
		reflooded += float64(r.RefloodedSubs)
		pub += float64(r.Published)
		tgt += float64(r.TotalTargets)
		rec += float64(r.Receptions)
		valid += float64(r.ValidDeliveries)
		late += float64(r.LateDeliveries)
		de += float64(r.DropsExpired)
		dh += float64(r.DropsHopeless)
		da += float64(r.DropsArrival)
		dc += float64(r.DropsCrashed)
		peak += float64(r.PeakQueue)
		earn += r.Earning
		lm += r.LatencyMeanMs
		l50 += r.LatencyP50Ms
		l95 += r.LatencyP95Ms
		lmax += r.LatencyMaxMs
		fair += r.Fairness
	}
	round := func(x float64) int { return int(x/n + 0.5) }
	out.Published = round(pub)
	out.TotalTargets = round(tgt)
	out.Receptions = round(rec)
	out.ValidDeliveries = round(valid)
	out.LateDeliveries = round(late)
	out.DropsExpired = round(de)
	out.DropsHopeless = round(dh)
	out.DropsArrival = round(da)
	out.DropsCrashed = round(dc)
	out.PeakQueue = round(peak)
	out.Earning = earn / n
	out.Fairness = fair / n
	out.LatencyMeanMs = lm / n
	out.LatencyP50Ms = l50 / n
	out.LatencyP95Ms = l95 / n
	out.LatencyMaxMs = lmax / n
	out.Detections = round(det)
	out.DetectionLatencyMs = detLat / n
	out.ReroutedPaths = round(rerouted)
	out.BoundsKept = round(kept)
	out.BoundsRelaxed = round(relaxed)
	out.BoundsRejected = round(rejected)
	out.RefloodedSubs = round(reflooded)
	out.FramesLost = round(lost)
	out.Retransmits = round(retx)
	out.DupsSuppressed = round(dups)
	out.ReorderedHealed = round(reord)
	out.DroppedDeadline = round(ddl)
	out.FloodsSuppressed = round(floodSup)
	out.AggregatedEntries = round(aggEnt)
	out.PubsAdmitted = round(padm)
	out.PubsRelaxed = round(prel)
	out.PubsRejected = round(prej)
	out.SubsRejected = round(srej)
	out.DropsShed = round(shed)
	out.RestartReplayedSubs = round(rsubs)
	out.SessionsResumed = round(sres)
	out.ReplayedMsgs = round(rmsgs)
	out.StaleEpochFrames = round(stale)
	out.BoundLedger = meanBoundLedger(rs)
	out.Timeline = meanTimeline(rs)
	return out
}

// meanBoundLedger merges the per-bound admission ledgers of a result
// set, averaging each bucket over all results (absent buckets count as
// zero), sorted by bound.
func meanBoundLedger(rs []Result) []BoundAdmissions {
	sums := make(map[int]*[3]float64)
	for _, r := range rs {
		for _, b := range r.BoundLedger {
			s := sums[b.BoundSec]
			if s == nil {
				s = &[3]float64{}
				sums[b.BoundSec] = s
			}
			s[0] += float64(b.Admitted)
			s[1] += float64(b.Relaxed)
			s[2] += float64(b.Rejected)
		}
	}
	if len(sums) == 0 {
		return nil
	}
	n := float64(len(rs))
	out := make([]BoundAdmissions, 0, len(sums))
	for sec, s := range sums {
		out = append(out, BoundAdmissions{
			BoundSec: sec,
			Admitted: int(s[0]/n + 0.5),
			Relaxed:  int(s[1]/n + 0.5),
			Rejected: int(s[2]/n + 0.5),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].BoundSec < out[j].BoundSec })
	return out
}

// meanTimeline averages the delivery timelines of a result set bucket by
// bucket (over the results sharing the first result's bucket count; runs
// without a timeline contribute nothing).
func meanTimeline(rs []Result) []TimeBucket {
	if len(rs[0].Timeline) == 0 {
		return nil
	}
	width := len(rs[0].Timeline)
	out := make([]TimeBucket, width)
	copy(out, rs[0].Timeline)
	matched := 0.0
	for i := range out {
		out[i].Targets = 0
		out[i].Valid = 0
	}
	var tgt, val []float64
	tgt = make([]float64, width)
	val = make([]float64, width)
	for _, r := range rs {
		if len(r.Timeline) != width {
			continue
		}
		matched++
		for i, b := range r.Timeline {
			tgt[i] += float64(b.Targets)
			val[i] += float64(b.Valid)
		}
	}
	if matched == 0 {
		return nil
	}
	for i := range out {
		out[i].Targets = int(tgt[i]/matched + 0.5)
		out[i].Valid = int(val[i]/matched + 0.5)
	}
	return out
}
