// Package metrics collects and reports the evaluation metrics of §6.1:
// delivery rate (eq. 1), total earning (eq. 2) and message number (total
// broker receptions, the network-traffic proxy), plus the drop taxonomy
// and latency distributions this reimplementation adds for diagnosis.
package metrics

import (
	"fmt"

	"bdps/internal/stats"
	"bdps/internal/vtime"
)

// Collector accumulates one simulation run's metrics. It is not
// goroutine-safe: the simulator is single-threaded by construction, and
// the live runtime keeps one collector per node.
type Collector struct {
	published    int
	totalTargets int // Σ tsᵢ: interested subscribers over published messages
	receptions   int // the paper's "message number"

	validDeliveries int // Σ dsᵢ
	lateDeliveries  int
	earning         float64

	dropsExpired  int // queue drops: all deadlines passed
	dropsHopeless int // queue drops: ε-detection (§5.4)
	dropsArrival  int // dropped at arrival processing (not viable / no match)
	dropsCrashed  int // lost to injected broker crashes

	latency stats.Summary // valid deliveries only, ms

	// Per-subscriber accounting for fairness analysis.
	subExpected map[int32]int
	subValid    map[int32]int
}

// Published records a published message and its interested-subscriber
// count tsᵢ.
func (c *Collector) Published(interested int) {
	c.published++
	c.totalTargets += interested
}

// PublishedTo additionally attributes the expectation to each interested
// subscriber for fairness accounting. Call instead of Published when
// per-subscriber metrics are wanted.
func (c *Collector) PublishedTo(interested []int32) {
	c.Published(len(interested))
	if c.subExpected == nil {
		c.subExpected = make(map[int32]int)
	}
	for _, id := range interested {
		c.subExpected[id]++
	}
}

// Reception records one message received by a broker.
func (c *Collector) Reception() { c.receptions++ }

// Delivered records a delivery to one subscriber. Valid deliveries add
// price to the earning and the latency sample.
func (c *Collector) Delivered(price float64, latency vtime.Millis, valid bool) {
	c.DeliveredTo(-1, price, latency, valid)
}

// DeliveredTo is Delivered with subscriber attribution (id < 0 skips the
// per-subscriber accounting).
func (c *Collector) DeliveredTo(subID int32, price float64, latency vtime.Millis, valid bool) {
	if !valid {
		c.lateDeliveries++
		return
	}
	c.validDeliveries++
	c.earning += price
	c.latency.Add(latency)
	if subID >= 0 {
		if c.subValid == nil {
			c.subValid = make(map[int32]int)
		}
		c.subValid[subID]++
	}
}

// DroppedExpired counts queue entries pruned after full expiry.
func (c *Collector) DroppedExpired(n int) { c.dropsExpired += n }

// DroppedHopeless counts queue entries pruned by ε-detection.
func (c *Collector) DroppedHopeless(n int) { c.dropsHopeless += n }

// DroppedOnArrival counts forwarding intents discarded during arrival
// processing (expired or hopeless before ever being queued).
func (c *Collector) DroppedOnArrival(n int) { c.dropsArrival += n }

// DroppedCrashed counts messages lost to injected broker crashes.
func (c *Collector) DroppedCrashed(n int) { c.dropsCrashed += n }

// Result freezes a collector into the run summary.
func (c *Collector) Result() Result {
	r := Result{
		Published:       c.published,
		TotalTargets:    c.totalTargets,
		Receptions:      c.receptions,
		ValidDeliveries: c.validDeliveries,
		LateDeliveries:  c.lateDeliveries,
		Earning:         c.earning,
		DropsExpired:    c.dropsExpired,
		DropsHopeless:   c.dropsHopeless,
		DropsArrival:    c.dropsArrival,
		DropsCrashed:    c.dropsCrashed,
		Fairness:        c.fairness(),
	}
	if c.latency.Count() > 0 {
		r.LatencyMeanMs = c.latency.Mean()
		r.LatencyP50Ms = c.latency.Quantile(0.5)
		r.LatencyP95Ms = c.latency.Quantile(0.95)
		r.LatencyMaxMs = c.latency.Max()
	}
	return r
}

// fairness computes Jain's fairness index over per-subscriber delivery
// ratios xᵢ = validᵢ/expectedᵢ: (Σx)² / (n·Σx²). 1.0 means perfectly even
// service; 1/n means one subscriber got everything. Returns 0 when
// per-subscriber accounting was not enabled or nothing was expected.
func (c *Collector) fairness() float64 {
	if len(c.subExpected) == 0 {
		return 0
	}
	var sum, sumSq float64
	n := 0
	for id, exp := range c.subExpected {
		if exp == 0 {
			continue
		}
		x := float64(c.subValid[id]) / float64(exp)
		sum += x
		sumSq += x * x
		n++
	}
	if n == 0 || sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(n) * sumSq)
}

// Result is the immutable outcome of one run.
type Result struct {
	Label    string // run identification (strategy, scenario, rate…)
	Seed     uint64
	Strategy string
	Scenario string
	Backend  string // which runtime transport carried the run ("sim", "live")

	Published    int
	TotalTargets int
	Receptions   int

	ValidDeliveries int
	LateDeliveries  int
	Earning         float64

	DropsExpired  int
	DropsHopeless int
	DropsArrival  int
	DropsCrashed  int

	// Fairness is Jain's index over per-subscriber delivery ratios, or 0
	// when per-subscriber accounting was off.
	Fairness float64

	LatencyMeanMs float64
	LatencyP50Ms  float64
	LatencyP95Ms  float64
	LatencyMaxMs  float64

	PeakQueue int
}

// DeliveryRate is eq. (1): Σ dsᵢ / Σ tsᵢ (0 when nothing was published).
func (r Result) DeliveryRate() float64 {
	if r.TotalTargets == 0 {
		return 0
	}
	return float64(r.ValidDeliveries) / float64(r.TotalTargets)
}

// MessageNumberK is the paper's traffic metric in thousands.
func (r Result) MessageNumberK() float64 { return float64(r.Receptions) / 1000 }

// EarningK is the total earning in thousands.
func (r Result) EarningK() float64 { return r.Earning / 1000 }

// String implements fmt.Stringer with the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf("%s: delivery %.1f%% earning %.1fk traffic %.1fk (drops exp=%d hopeless=%d arrival=%d)",
		r.Label, 100*r.DeliveryRate(), r.EarningK(), r.MessageNumberK(),
		r.DropsExpired, r.DropsHopeless, r.DropsArrival)
}

// Mean averages a set of results (for multi-seed aggregation). Counts are
// averaged as floats and rounded; the label is taken from the first
// result.
func Mean(rs []Result) Result {
	if len(rs) == 0 {
		return Result{}
	}
	out := rs[0]
	n := float64(len(rs))
	var pub, tgt, rec, valid, late, de, dh, da, dc, peak float64
	var earn, lm, l50, l95, lmax, fair float64
	for _, r := range rs {
		pub += float64(r.Published)
		tgt += float64(r.TotalTargets)
		rec += float64(r.Receptions)
		valid += float64(r.ValidDeliveries)
		late += float64(r.LateDeliveries)
		de += float64(r.DropsExpired)
		dh += float64(r.DropsHopeless)
		da += float64(r.DropsArrival)
		dc += float64(r.DropsCrashed)
		peak += float64(r.PeakQueue)
		earn += r.Earning
		lm += r.LatencyMeanMs
		l50 += r.LatencyP50Ms
		l95 += r.LatencyP95Ms
		lmax += r.LatencyMaxMs
		fair += r.Fairness
	}
	round := func(x float64) int { return int(x/n + 0.5) }
	out.Published = round(pub)
	out.TotalTargets = round(tgt)
	out.Receptions = round(rec)
	out.ValidDeliveries = round(valid)
	out.LateDeliveries = round(late)
	out.DropsExpired = round(de)
	out.DropsHopeless = round(dh)
	out.DropsArrival = round(da)
	out.DropsCrashed = round(dc)
	out.PeakQueue = round(peak)
	out.Earning = earn / n
	out.Fairness = fair / n
	out.LatencyMeanMs = lm / n
	out.LatencyP50Ms = l50 / n
	out.LatencyP95Ms = l95 / n
	out.LatencyMaxMs = lmax / n
	return out
}
