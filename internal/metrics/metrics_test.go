package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestCollectorBasics(t *testing.T) {
	var c Collector
	c.Published(4)
	c.Published(2)
	c.Reception()
	c.Reception()
	c.Reception()
	c.Delivered(3, 1500, true)
	c.Delivered(2, 2500, true)
	c.Delivered(1, 9000, false)
	c.DroppedExpired(2)
	c.DroppedHopeless(1)
	c.DroppedOnArrival(3)

	r := c.Result()
	if r.Published != 2 || r.TotalTargets != 6 || r.Receptions != 3 {
		t.Errorf("counts wrong: %+v", r)
	}
	if r.ValidDeliveries != 2 || r.LateDeliveries != 1 {
		t.Errorf("deliveries wrong: %+v", r)
	}
	if r.Earning != 5 {
		t.Errorf("earning = %v, want 5", r.Earning)
	}
	if r.DropsExpired != 2 || r.DropsHopeless != 1 || r.DropsArrival != 3 {
		t.Errorf("drops wrong: %+v", r)
	}
	if got := r.DeliveryRate(); math.Abs(got-2.0/6) > 1e-12 {
		t.Errorf("delivery rate = %v, want 1/3", got)
	}
	if r.LatencyMeanMs != 2000 {
		t.Errorf("latency mean = %v, want 2000 (valid only)", r.LatencyMeanMs)
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	r := Result{Receptions: 123400, Earning: 5600}
	if r.MessageNumberK() != 123.4 {
		t.Errorf("MessageNumberK = %v", r.MessageNumberK())
	}
	if r.EarningK() != 5.6 {
		t.Errorf("EarningK = %v", r.EarningK())
	}
	empty := Result{}
	if empty.DeliveryRate() != 0 {
		t.Error("empty delivery rate should be 0")
	}
}

func TestResultString(t *testing.T) {
	r := Result{Label: "SSD/EB rate=10", ValidDeliveries: 5, TotalTargets: 10}
	s := r.String()
	if !strings.Contains(s, "SSD/EB") || !strings.Contains(s, "50.0%") {
		t.Errorf("String = %q", s)
	}
}

func TestMean(t *testing.T) {
	rs := []Result{
		{Label: "x", Published: 100, TotalTargets: 400, ValidDeliveries: 100,
			Receptions: 1000, Earning: 200, LatencyMeanMs: 10, PeakQueue: 5},
		{Label: "y", Published: 200, TotalTargets: 600, ValidDeliveries: 200,
			Receptions: 2000, Earning: 400, LatencyMeanMs: 30, PeakQueue: 15},
	}
	m := Mean(rs)
	if m.Label != "x" {
		t.Error("label should come from the first result")
	}
	if m.Published != 150 || m.TotalTargets != 500 || m.ValidDeliveries != 150 {
		t.Errorf("averaged counts wrong: %+v", m)
	}
	if m.Receptions != 1500 || m.Earning != 300 || m.LatencyMeanMs != 20 || m.PeakQueue != 10 {
		t.Errorf("averaged values wrong: %+v", m)
	}
	if got := m.DeliveryRate(); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("mean delivery rate = %v, want 0.3", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	m := Mean(nil)
	if m.Published != 0 || m.ValidDeliveries != 0 || m.Timeline != nil || m.Label != "" {
		t.Error("Mean(nil) should be zero Result")
	}
}

func TestMeanSingle(t *testing.T) {
	r := Result{Published: 7, Earning: 3.5}
	if m := Mean([]Result{r}); m.Published != 7 || m.Earning != 3.5 {
		t.Error("Mean of one result should be itself")
	}
}
