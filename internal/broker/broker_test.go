package broker

import (
	"runtime/debug"
	"testing"

	"bdps/internal/core"
	"bdps/internal/filter"
	"bdps/internal/msg"
	"bdps/internal/routing"
	"bdps/internal/stats"
	"bdps/internal/vtime"
)

// testTable builds a routing table for broker 1 with:
//   - a local subscription (sub 1)
//   - two remote subscriptions via hop 2 (subs 2, 3)
//   - one remote subscription via hop 3 (sub 4)
//
// All filters are "A1 < 5". SSD deadlines/prices set per subscription.
func testTable(t *testing.T) *routing.Table {
	t.Helper()
	mk := func(id msg.SubID, dl vtime.Millis, pr float64) *msg.Subscription {
		return &msg.Subscription{ID: id, Edge: 9, Filter: filter.MustParse("A1 < 5"),
			Deadline: dl, Price: pr}
	}
	tb := routing.NewTable(1)
	tb.Add(&routing.Entry{Sub: mk(1, 10*vtime.Second, 3), Source: 0, Next: msg.None})
	tb.Add(&routing.Entry{Sub: mk(2, 30*vtime.Second, 2), Source: 0, Next: 2, Hops: 2,
		Rate: stats.Normal{Mean: 140, Sigma: 28}})
	tb.Add(&routing.Entry{Sub: mk(3, 60*vtime.Second, 1), Source: 0, Next: 2, Hops: 2,
		Rate: stats.Normal{Mean: 140, Sigma: 28}})
	tb.Add(&routing.Entry{Sub: mk(4, 30*vtime.Second, 2), Source: 0, Next: 3, Hops: 1,
		Rate: stats.Normal{Mean: 70, Sigma: 20}})
	return tb
}

func testBroker(t *testing.T, scenario msg.Scenario, dedup bool) *Broker {
	t.Helper()
	b, err := New(Config{
		ID:        1,
		Scenario:  scenario,
		Params:    core.DefaultParams(),
		Strategy:  core.MaxEB{},
		Table:     testTable(t),
		LinkMeans: map[msg.NodeID]float64{2: 70, 3: 70},
		Dedup:     dedup,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func message(a1 float64, published vtime.Millis) *msg.Message {
	return &msg.Message{
		ID: 100, Publisher: 0, Ingress: 0,
		Published: published, SizeKB: 50,
		Attrs: msg.NumAttrs(map[string]float64{"A1": a1, "A2": 1}),
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Table: routing.NewTable(1)}); err == nil {
		t.Error("nil strategy should fail")
	}
	if _, err := New(Config{Strategy: core.FIFO{}}); err == nil {
		t.Error("nil table should fail")
	}
}

func TestProcessDeliversLocallyAndEnqueues(t *testing.T) {
	b := testBroker(t, msg.SSD, false)
	m := message(3, 0)
	res := b.Process(m, 1000)

	if len(res.Deliveries) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(res.Deliveries))
	}
	d := res.Deliveries[0]
	if d.SubID != 1 || !d.Valid || d.Latency != 1000 || d.Price != 3 {
		t.Errorf("delivery = %+v", d)
	}

	if len(res.EnqueuedHops) != 2 {
		t.Fatalf("enqueued hops = %v, want 2", res.EnqueuedHops)
	}
	// Hop 2 entry carries both subs 2 and 3.
	q2 := b.Queue(2)
	if q2.Len() != 1 {
		t.Fatalf("queue 2 len = %d", q2.Len())
	}
	e := q2.Entries()[0]
	if len(e.Targets) != 2 {
		t.Fatalf("targets = %d, want 2", len(e.Targets))
	}
	// SSD: deadlines are absolute per-subscription.
	if e.Targets[0].Deadline != 30*vtime.Second || e.Targets[0].Price != 2 {
		t.Errorf("target 0 = %+v", e.Targets[0])
	}
	if e.Targets[1].Deadline != 60*vtime.Second || e.Targets[1].Price != 1 {
		t.Errorf("target 1 = %+v", e.Targets[1])
	}
	if e.Data.(*msg.Message) != m {
		t.Error("entry must carry the message")
	}
}

func TestProcessNonMatchingMessage(t *testing.T) {
	b := testBroker(t, msg.SSD, false)
	res := b.Process(message(7, 0), 1000) // A1=7 fails "A1<5"
	if len(res.Deliveries) != 0 || len(res.EnqueuedHops) != 0 || res.ArrivalDrops != 0 {
		t.Errorf("non-matching message produced work: %+v", res)
	}
}

func TestProcessWrongIngressIgnored(t *testing.T) {
	b := testBroker(t, msg.SSD, false)
	m := message(3, 0)
	m.Ingress = 5 // table only has source 0
	res := b.Process(m, 1000)
	if len(res.Deliveries) != 0 || len(res.EnqueuedHops) != 0 {
		t.Errorf("wrong-ingress message produced work: %+v", res)
	}
}

func TestProcessPSDUsesPublisherBound(t *testing.T) {
	b := testBroker(t, msg.PSD, false)
	m := message(3, 0)
	m.Allowed = 20 * vtime.Second
	res := b.Process(m, 1000)
	if len(res.Deliveries) != 1 {
		t.Fatalf("deliveries = %d", len(res.Deliveries))
	}
	if res.Deliveries[0].Price != 1 {
		t.Errorf("PSD price = %v, want 1", res.Deliveries[0].Price)
	}
	e := b.Queue(2).Entries()[0]
	for _, tg := range e.Targets {
		if tg.Deadline != 20*vtime.Second {
			t.Errorf("PSD target deadline = %v, want the publisher bound", tg.Deadline)
		}
		if tg.Price != 1 {
			t.Errorf("PSD target price = %v, want 1", tg.Price)
		}
	}
}

func TestProcessLateLocalDelivery(t *testing.T) {
	b := testBroker(t, msg.SSD, false)
	// Sub 1 allows 10 s; arrival at 11 s is late.
	res := b.Process(message(3, 0), 11*vtime.Second)
	found := false
	for _, d := range res.Deliveries {
		if d.SubID == 1 {
			found = true
			if d.Valid {
				t.Error("late delivery marked valid")
			}
		}
	}
	if !found {
		t.Fatal("local delivery missing")
	}
}

func TestProcessArrivalDropExpired(t *testing.T) {
	b := testBroker(t, msg.SSD, false)
	// At t = 61 s every remote deadline (30 s, 60 s) has passed.
	res := b.Process(message(3, 0), 61*vtime.Second)
	if res.ArrivalDrops != 2 {
		t.Errorf("arrival drops = %d, want 2 (both hops)", res.ArrivalDrops)
	}
	if len(res.EnqueuedHops) != 0 {
		t.Error("expired intents must not be enqueued")
	}
}

func TestProcessArrivalDropHopeless(t *testing.T) {
	b := testBroker(t, msg.SSD, false)
	// At t = 29.9 s, sub 4 via hop 3 has 98 ms of slack against a
	// N(70,20) ms/KB single-hop residual for 50 KB: success ≈ 3e-4 < ε,
	// hopeless → the hop-3 intent drops. Hop 2 survives through sub 3
	// (60 s deadline) even though sub 2 (30 s) is hopeless too.
	res := b.Process(message(3, 0), 29900)
	if len(res.EnqueuedHops) != 1 || res.EnqueuedHops[0] != 2 {
		t.Errorf("enqueued hops = %v, want [2]", res.EnqueuedHops)
	}
	if res.ArrivalDrops != 1 {
		t.Errorf("arrival drops = %d, want 1", res.ArrivalDrops)
	}
}

func TestProcessDedup(t *testing.T) {
	b := testBroker(t, msg.SSD, true)
	m := message(3, 0)
	first := b.Process(m, 1000)
	if first.Duplicate {
		t.Fatal("first arrival flagged duplicate")
	}
	second := b.Process(m, 2000)
	if !second.Duplicate {
		t.Fatal("second arrival not deduplicated")
	}
	if len(second.Deliveries) != 0 || len(second.EnqueuedHops) != 0 {
		t.Error("duplicate must produce no work")
	}
	// Without dedup the same message processes twice.
	b2 := testBroker(t, msg.SSD, false)
	b2.Process(m, 1000)
	again := b2.Process(m, 2000)
	if again.Duplicate || len(again.Deliveries) != 1 {
		t.Error("dedup off: reprocessing expected")
	}
}

func TestQueueReuseAndPeak(t *testing.T) {
	b := testBroker(t, msg.SSD, false)
	q := b.Queue(2)
	if b.Queue(2) != q {
		t.Error("Queue must return the same instance per neighbor")
	}
	if q.LinkMean != 70 {
		t.Errorf("queue link mean = %v, want 70", q.LinkMean)
	}
	b.Process(message(3, 0), 0)
	b.Process(message(2, 0), 0)
	if b.PeakQueue() != 2 {
		t.Errorf("peak = %d, want 2", b.PeakQueue())
	}
}

func TestBuildEntrySkipsUnboundedTargets(t *testing.T) {
	// SSD subscription with no deadline: unschedulable, skipped.
	tb := routing.NewTable(1)
	tb.Add(&routing.Entry{
		Sub:    &msg.Subscription{ID: 5, Edge: 9, Filter: filter.MustParse("A1 < 5")},
		Source: 0, Next: 2, Hops: 1, Rate: stats.Normal{Mean: 70, Sigma: 20},
	})
	b, err := New(Config{ID: 1, Scenario: msg.SSD, Params: core.DefaultParams(),
		Strategy: core.MaxEB{}, Table: tb, LinkMeans: map[msg.NodeID]float64{2: 70}})
	if err != nil {
		t.Fatal(err)
	}
	res := b.Process(message(3, 0), 0)
	if len(res.EnqueuedHops) != 0 || res.ArrivalDrops != 1 {
		t.Errorf("unbounded-target entry should drop at arrival: %+v", res)
	}
}

// TestProcessScratchReuse pins the reused-Result contract: a Result is
// valid until the broker's next Process call, and back-to-back calls
// produce independent, correct decisions (the scratch buffers must not
// leak state between messages).
func TestProcessScratchReuse(t *testing.T) {
	b := testBroker(t, msg.SSD, false)
	first := b.Process(message(3, 0), 1000)
	if len(first.Deliveries) != 1 || len(first.EnqueuedHops) != 2 {
		t.Fatalf("first = %+v", first)
	}
	// A non-matching message must come back empty, not show stale hops.
	second := b.Process(message(7, 0), 1000)
	if len(second.Deliveries) != 0 || len(second.EnqueuedHops) != 0 {
		t.Fatalf("second reused stale scratch: %+v", second)
	}
	third := b.Process(message(2, 0), 2000)
	if len(third.Deliveries) != 1 || len(third.EnqueuedHops) != 2 {
		t.Fatalf("third = %+v", third)
	}
	if third.Deliveries[0].Latency != 2000 {
		t.Errorf("latency = %v, want 2000", third.Deliveries[0].Latency)
	}
	// Entries enqueued across the calls are distinct pooled objects with
	// the right targets.
	q2 := b.Queue(2)
	if q2.Len() != 2 {
		t.Fatalf("queue 2 len = %d, want 2", q2.Len())
	}
	a, c := q2.Entries()[0], q2.Entries()[1]
	if a == c {
		t.Fatal("pooled entries must be distinct while both are queued")
	}
	if len(a.Targets) != 2 || len(c.Targets) != 2 {
		t.Errorf("targets = %d/%d, want 2/2", len(a.Targets), len(c.Targets))
	}
}

// TestProcessSteadyStateAllocs measures the processing hot path: after
// warm-up, a non-enqueuing (local-delivery only) message processes with
// zero allocations, and a full enqueue path stays within the pooled
// entry's amortized cost.
func TestProcessSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is nondeterministic under -race (instrumentation allocates)")
	}
	b := testBroker(t, msg.SSD, false)
	m := message(3, 0)
	drain := func() {
		for _, hop := range []msg.NodeID{2, 3} {
			q := b.Queue(hop)
			for q.Len() > 0 {
				e, _ := q.PopNext(core.FIFO{}, 0, b.Params())
				if e == nil {
					break
				}
				e.Release()
			}
		}
	}
	for i := 0; i < 10; i++ {
		b.Process(m, 0)
		drain()
	}
	// Disable GC around the measurement: a collection mid-run clears
	// sync.Pool and the refill would be miscounted as a steady-state
	// allocation (a real flake under -race, where GC pressure is high).
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	allocs := testing.AllocsPerRun(200, func() {
		b.Process(m, 0)
		drain()
	})
	// The steady-state budget is zero; allow a fraction for pool variance.
	if allocs > 1 {
		t.Errorf("steady-state Process allocates %v objects per run, want ~0", allocs)
	}
}

// TestProcessAggregatedMemberFanout: a local aggregated entry delivers
// to its representative and to every exact-duplicate member folded into
// it — once each per message, even when multipath installs duplicate
// local entries sharing the group.
func TestProcessAggregatedMemberFanout(t *testing.T) {
	mk := func(id msg.SubID) *msg.Subscription {
		return &msg.Subscription{ID: id, Edge: 1, Filter: filter.MustParse("A1 < 5"),
			Deadline: 10 * vtime.Second, Price: 3}
	}
	tb := routing.NewTable(1)
	rep := mk(1)
	// Two local entries for the rep, as multipath routing would install.
	tb.Add(&routing.Entry{Sub: rep, Source: 0, Next: msg.None})
	tb.Add(&routing.Entry{Sub: rep, Source: 0, Next: msg.None})
	if !tb.Attach(rep.ID, mk(5)) || !tb.Attach(rep.ID, mk(6)) {
		t.Fatal("Attach failed")
	}
	b, err := New(Config{
		ID: 1, Scenario: msg.SSD, Params: core.DefaultParams(),
		Strategy: core.MaxEB{}, Table: tb,
	})
	if err != nil {
		t.Fatal(err)
	}

	res := b.Process(message(3, 0), 1000)
	got := make(map[msg.SubID]int)
	for _, d := range res.Deliveries {
		got[d.SubID]++
		if !d.Valid || d.Price != 3 {
			t.Errorf("delivery %+v, want valid at price 3", d)
		}
	}
	for _, id := range []msg.SubID{1, 5, 6} {
		if got[id] != 1 {
			t.Fatalf("deliveries per sub = %v, want exactly one each for 1, 5, 6", got)
		}
	}

	// Detach one member: the next message no longer fans out to it.
	tb.Detach(rep.ID, 5)
	res = b.Process(message(3, 0), 2000)
	got = make(map[msg.SubID]int)
	for _, d := range res.Deliveries {
		got[d.SubID]++
	}
	if got[5] != 0 || got[1] != 1 || got[6] != 1 {
		t.Fatalf("deliveries after detach = %v, want 1 and 6 only", got)
	}
}
