// Package broker implements the message-broker node of §3.2 (Figure 2):
// receive → process (match against the subscription table, resolve next
// hops) → forward via per-neighbor output queues scheduled by a core
// strategy. The broker is runtime-agnostic: the discrete-event simulator
// and the live TCP runtime both drive the same Process logic and the same
// queues.
package broker

import (
	"fmt"

	"bdps/internal/core"
	"bdps/internal/msg"
	"bdps/internal/routing"
	"bdps/internal/vtime"
)

// Config assembles a broker.
type Config struct {
	ID       msg.NodeID
	Scenario msg.Scenario
	Params   core.Params
	Strategy core.Strategy
	Table    *routing.Table
	// LinkMeans maps each downstream neighbor to the believed mean
	// per-KB rate of the link, used by the queues' FT estimate.
	LinkMeans map[msg.NodeID]float64
	// Dedup drops duplicate message arrivals (multi-path routing mode).
	Dedup bool
}

// Broker is one overlay node.
type Broker struct {
	id       msg.NodeID
	scenario msg.Scenario
	params   core.Params
	strategy core.Strategy
	table    *routing.Table

	linkMeans map[msg.NodeID]float64
	queues    map[msg.NodeID]*core.Queue

	dedup bool
	seen  map[msg.ID]struct{}

	// Reusable per-Process scratch: the processing hot path is
	// allocation-free in steady state. matchBuf backs the routing-table
	// match, grouper the next-hop bucketing, res the returned slices,
	// and subEpoch deduplicates subscriptions within one target group
	// (stamped with epoch so it is never cleared).
	matchBuf []*routing.Entry
	grouper  routing.Grouper
	res      Result
	subEpoch map[msg.SubID]uint64
	epoch    uint64
}

// New builds a broker from its configuration.
func New(cfg Config) (*Broker, error) {
	if cfg.Strategy == nil {
		return nil, fmt.Errorf("broker %d: nil strategy", cfg.ID)
	}
	if cfg.Table == nil {
		return nil, fmt.Errorf("broker %d: nil routing table", cfg.ID)
	}
	b := &Broker{
		id:        cfg.ID,
		scenario:  cfg.Scenario,
		params:    cfg.Params,
		strategy:  cfg.Strategy,
		table:     cfg.Table,
		linkMeans: cfg.LinkMeans,
		queues:    make(map[msg.NodeID]*core.Queue),
		dedup:     cfg.Dedup,
		subEpoch:  make(map[msg.SubID]uint64),
	}
	if b.dedup {
		b.seen = make(map[msg.ID]struct{})
	}
	return b, nil
}

// ID returns the broker's node id.
func (b *Broker) ID() msg.NodeID { return b.id }

// Params returns the scheduling parameters.
func (b *Broker) Params() core.Params { return b.params }

// Strategy returns the scheduling strategy.
func (b *Broker) Strategy() core.Strategy { return b.strategy }

// Table returns the broker's routing table. The live runtime mutates it
// under its own lock when subscriptions flood in dynamically.
func (b *Broker) Table() *routing.Table { return b.table }

// Queue returns (creating on first use) the output queue toward a
// downstream neighbor.
func (b *Broker) Queue(next msg.NodeID) *core.Queue {
	q, ok := b.queues[next]
	if !ok {
		q = core.NewQueue(b.linkMeans[next])
		b.queues[next] = q
	}
	return q
}

// Queues exposes the instantiated output queues (diagnostics).
func (b *Broker) Queues() map[msg.NodeID]*core.Queue { return b.queues }

// PeakQueue returns the largest occupancy any output queue reached.
func (b *Broker) PeakQueue() int {
	peak := 0
	for _, q := range b.queues {
		if q.Peak() > peak {
			peak = q.Peak()
		}
	}
	return peak
}

// Delivery is one local hand-off to a subscriber.
type Delivery struct {
	SubID   msg.SubID
	Price   float64
	Latency vtime.Millis
	Valid   bool // delivered within the applicable bound
}

// Result reports what Process did with a message. The slices are views
// over broker-owned scratch buffers, valid until the broker's next
// Process call; runtimes consume them before processing again.
type Result struct {
	// Deliveries to subscribers attached to this broker.
	Deliveries []Delivery
	// EnqueuedHops lists downstream neighbors whose queues received a new
	// entry; the runtime kicks those links.
	EnqueuedHops []msg.NodeID
	// ArrivalDrops counts forwarding intents discarded immediately
	// (expired or hopeless before queueing).
	ArrivalDrops int
	// Duplicate is true when dedup suppressed the whole message.
	Duplicate bool
}

// Process handles one received message at the given time: deliver to
// local subscribers, and enqueue one entry per distinct next hop carrying
// the targets routed through it (§4.2's table drives both). It implements
// the early deletion rule of §5.4 at arrival: forwarding intents that are
// already expired — or hopeless when ε-detection is on — are dropped
// before consuming queue space.
func (b *Broker) Process(m *msg.Message, now vtime.Millis) Result {
	res := &b.res
	res.Deliveries = res.Deliveries[:0]
	res.EnqueuedHops = res.EnqueuedHops[:0]
	res.ArrivalDrops = 0
	res.Duplicate = false
	if b.dedup {
		if _, dup := b.seen[m.ID]; dup {
			res.Duplicate = true
			return *res
		}
		b.seen[m.ID] = struct{}{}
	}

	b.matchBuf = b.table.MatchAppend(m, b.matchBuf[:0])
	matched := b.matchBuf
	if len(matched) == 0 {
		return *res
	}
	hops, groups := b.grouper.Group(matched)
	for k, hop := range hops {
		entries := groups[k]
		if hop == msg.None {
			// Multi-path routing installs one local entry per path;
			// deliver to each subscriber once per message.
			b.epoch++
			for _, e := range entries {
				if b.subEpoch[e.Sub.ID] == b.epoch {
					continue
				}
				b.subEpoch[e.Sub.ID] = b.epoch
				allowed, price := b.scenario.AllowedDelay(m, e.Sub)
				latency := now - m.Published
				res.Deliveries = append(res.Deliveries, Delivery{
					SubID:   e.Sub.ID,
					Price:   price,
					Latency: latency,
					Valid:   allowed > 0 && latency <= allowed,
				})
			}
			continue
		}
		entry := b.buildEntry(m, entries)
		if !core.Viable(entry, now, b.params) {
			res.ArrivalDrops++
			entry.Release()
			continue
		}
		b.Queue(hop).Enqueue(entry, now)
		res.EnqueuedHops = append(res.EnqueuedHops, hop)
	}
	return *res
}

// buildEntry converts routing entries for one next hop into a pooled
// queue entry with per-subscriber targets (§4.2 → §5.1 inputs). The
// entry is released back to the pool by whoever removes it from the
// queue (or immediately, if it never gets enqueued).
func (b *Broker) buildEntry(m *msg.Message, entries []*routing.Entry) *core.Entry {
	e := core.GetEntry()
	e.MsgID = uint64(m.ID)
	e.SizeKB = m.SizeKB
	e.Published = m.Published
	e.Data = m
	b.epoch++
	for _, re := range entries {
		// Collapse multi-path duplicates of the same subscription within
		// one next hop so EB does not double-count its benefit.
		if b.subEpoch[re.Sub.ID] == b.epoch {
			continue
		}
		b.subEpoch[re.Sub.ID] = b.epoch
		allowed, price := b.scenario.AllowedDelay(m, re.Sub)
		if allowed <= 0 {
			// No bound applies (misconfigured subscription); treat as
			// undeliverable rather than infinitely patient.
			continue
		}
		e.Targets = append(e.Targets, core.Target{
			SubID:    int32(re.Sub.ID),
			Deadline: m.Published + allowed,
			Price:    price,
			Hops:     re.Hops,
			Rate:     re.Rate,
		})
	}
	return e
}
