// Package broker implements the message-broker node of §3.2 (Figure 2):
// receive → process (match against the subscription table, resolve next
// hops) → forward via per-neighbor output queues scheduled by a core
// strategy. The broker is runtime-agnostic: the discrete-event simulator
// and the live TCP runtime both drive the same Process logic and the same
// queues.
//
// Process runs in two regimes. The serial regime — Broker.Process — is
// what the simulator and the single-threaded live path use: one caller
// at a time, no locking. The concurrent regime hands each worker its own
// Processor (per-worker match/grouping scratch); Processors from one
// broker may run in parallel for independent publication streams,
// synchronizing only where state is genuinely shared — per-queue locks
// around enqueues and a striped dedup set.
package broker

import (
	"fmt"
	"sync"

	"bdps/internal/core"
	"bdps/internal/filter"
	"bdps/internal/msg"
	"bdps/internal/routing"
	"bdps/internal/vtime"
)

// Config assembles a broker.
type Config struct {
	ID       msg.NodeID
	Scenario msg.Scenario
	Params   core.Params
	Strategy core.Strategy
	Table    *routing.Table
	// LinkMeans maps each downstream neighbor to the believed mean
	// per-KB rate of the link, used by the queues' FT estimate.
	LinkMeans map[msg.NodeID]float64
	// Dedup drops duplicate message arrivals (multi-path routing mode).
	Dedup bool
	// Pressure is the per-output-queue occupancy threshold beyond which
	// Process sheds the lowest-scored entries (graceful degradation; see
	// core.Queue.ShedWorst). 0 disables shedding.
	Pressure int
}

// Broker is one overlay node.
type Broker struct {
	id       msg.NodeID
	scenario msg.Scenario
	params   core.Params
	strategy core.Strategy
	table    *routing.Table

	linkMeans map[msg.NodeID]float64
	// qmu guards the queues map (not the queues themselves: concurrent
	// owners stripe on each queue's own mutex).
	qmu    sync.RWMutex
	queues map[msg.NodeID]*core.Queue

	dedup    bool
	seen     dedupSet
	pressure int

	// proc is the broker-owned scratch behind the serial Process entry
	// point. Concurrent drivers get their own via NewProcessor.
	proc Processor
}

// New builds a broker from its configuration.
func New(cfg Config) (*Broker, error) {
	if cfg.Strategy == nil {
		return nil, fmt.Errorf("broker %d: nil strategy", cfg.ID)
	}
	if cfg.Table == nil {
		return nil, fmt.Errorf("broker %d: nil routing table", cfg.ID)
	}
	b := &Broker{
		id:        cfg.ID,
		scenario:  cfg.Scenario,
		params:    cfg.Params,
		strategy:  cfg.Strategy,
		table:     cfg.Table,
		linkMeans: cfg.LinkMeans,
		queues:    make(map[msg.NodeID]*core.Queue),
		dedup:     cfg.Dedup,
		pressure:  cfg.Pressure,
	}
	if b.dedup {
		b.seen.init()
	}
	b.proc.b = b
	b.proc.subEpoch = make(map[msg.SubID]uint64)
	return b, nil
}

// ID returns the broker's node id.
func (b *Broker) ID() msg.NodeID { return b.id }

// Params returns the scheduling parameters.
func (b *Broker) Params() core.Params { return b.params }

// Strategy returns the scheduling strategy.
func (b *Broker) Strategy() core.Strategy { return b.strategy }

// Table returns the broker's routing table. The live runtime mutates it
// under its own lock when subscriptions flood in dynamically.
func (b *Broker) Table() *routing.Table { return b.table }

// Queue returns (creating on first use) the output queue toward a
// downstream neighbor.
func (b *Broker) Queue(next msg.NodeID) *core.Queue {
	b.qmu.RLock()
	q := b.queues[next]
	b.qmu.RUnlock()
	if q != nil {
		return q
	}
	b.qmu.Lock()
	defer b.qmu.Unlock()
	if q = b.queues[next]; q == nil {
		q = core.NewQueue(b.linkMeans[next])
		b.queues[next] = q
	}
	return q
}

// Queues exposes the instantiated output queues (diagnostics). The map
// is a snapshot-free view: callers that may race queue creation use
// EachQueue instead.
func (b *Broker) Queues() map[msg.NodeID]*core.Queue { return b.queues }

// EachQueue calls fn for every instantiated queue under the map lock,
// safe against concurrent queue creation. fn must not call back into
// Queue.
func (b *Broker) EachQueue(fn func(next msg.NodeID, q *core.Queue)) {
	b.qmu.RLock()
	defer b.qmu.RUnlock()
	for next, q := range b.queues {
		fn(next, q)
	}
}

// PeakQueue returns the largest occupancy any output queue reached.
func (b *Broker) PeakQueue() int {
	peak := 0
	b.EachQueue(func(_ msg.NodeID, q *core.Queue) {
		if q.Peak() > peak {
			peak = q.Peak()
		}
	})
	return peak
}

// Delivery is one local hand-off to a subscriber.
type Delivery struct {
	SubID     msg.SubID
	Price     float64
	Published vtime.Millis // the message's publication instant
	Allowed   vtime.Millis // applicable bound (after any relaxed floor)
	Latency   vtime.Millis
	Valid     bool // delivered within the applicable bound
}

// Result reports what Process did with a message. The slices are views
// over processor-owned scratch buffers, valid until that processor's
// next Process call; runtimes consume them before processing again.
type Result struct {
	// Deliveries to subscribers attached to this broker.
	Deliveries []Delivery
	// EnqueuedHops lists downstream neighbors whose queues received a new
	// entry; the runtime kicks those links.
	EnqueuedHops []msg.NodeID
	// ArrivalDrops counts forwarding intents discarded immediately
	// (expired or hopeless before queueing).
	ArrivalDrops int
	// Shed lists entries evicted by pressure shedding (Config.Pressure):
	// when an enqueue pushed a queue past its threshold, the
	// lowest-scored entries under the active strategy. The runtime
	// accounts and releases them.
	Shed []*core.Entry
	// Duplicate is true when dedup suppressed the whole message.
	Duplicate bool
}

// Process handles one received message in the serial regime (see the
// package comment); it must not run concurrently with itself or with
// Processors of the same broker.
func (b *Broker) Process(m *msg.Message, now vtime.Millis) Result {
	return b.proc.process(m, now)
}

// Processor is one worker's view of a broker: the per-message scratch
// (match buffer, next-hop grouper, result slices, within-message
// subscription dedup) that Process needs exclusively, plus a reference
// to the shared broker state. Processors of one broker may Process
// concurrently — for distinct messages — as long as the routing table is
// not mutated underneath them; enqueues take each queue's lock and the
// arrival dedup set stripes internally.
type Processor struct {
	b      *Broker
	locked bool // take per-queue locks around enqueues

	matchBuf []*routing.Entry
	// matchScratch is this worker's private counting-index state, so
	// concurrent Processors share the table's index without sharing any
	// mutable match state.
	matchScratch filter.MatchScratch
	grouper      routing.Grouper
	res          Result
	subEpoch     map[msg.SubID]uint64
	epoch        uint64
}

// NewProcessor returns a Processor for concurrent use.
func (b *Broker) NewProcessor() *Processor {
	return &Processor{b: b, locked: true, subEpoch: make(map[msg.SubID]uint64)}
}

// Process handles one received message at the given time: deliver to
// local subscribers, and enqueue one entry per distinct next hop carrying
// the targets routed through it (§4.2's table drives both). It implements
// the early deletion rule of §5.4 at arrival: forwarding intents that are
// already expired — or hopeless when ε-detection is on — are dropped
// before consuming queue space.
func (p *Processor) Process(m *msg.Message, now vtime.Millis) Result {
	return p.process(m, now)
}

func (p *Processor) process(m *msg.Message, now vtime.Millis) Result {
	b := p.b
	res := &p.res
	res.Deliveries = res.Deliveries[:0]
	res.EnqueuedHops = res.EnqueuedHops[:0]
	res.ArrivalDrops = 0
	res.Shed = res.Shed[:0]
	res.Duplicate = false
	if b.dedup {
		if !b.seen.add(m.ID) {
			res.Duplicate = true
			return *res
		}
	}

	if p.locked {
		// Concurrent matchers share the table's counting index through a
		// per-worker match scratch; table mutations (subscription floods)
		// exclude them via the runtime's write lock.
		p.matchBuf = b.table.MatchAppendWith(&p.matchScratch, m, p.matchBuf[:0])
	} else {
		p.matchBuf = b.table.MatchAppend(m, p.matchBuf[:0])
	}
	matched := p.matchBuf
	if len(matched) == 0 {
		return *res
	}
	hops, groups := p.grouper.Group(matched)
	for k, hop := range hops {
		entries := groups[k]
		if hop == msg.None {
			// Multi-path routing installs one local entry per path;
			// deliver to each subscriber once per message.
			p.epoch++
			for _, e := range entries {
				p.deliverLocal(m, e, e.Sub, now, res)
				if e.Agg == nil {
					continue
				}
				// Aggregated entry: fan delivery out to the exact-duplicate
				// members folded into this representative. Members share the
				// representative's filter and delivery terms, so the match
				// and the bound judgment above apply to each verbatim.
				for _, member := range e.Agg.Members {
					p.deliverLocal(m, e, member, now, res)
				}
			}
			continue
		}
		entry := p.buildEntry(m, entries)
		if !core.Viable(entry, now, b.params) {
			res.ArrivalDrops++
			entry.Release()
			continue
		}
		q := b.Queue(hop)
		if p.locked {
			q.Lock()
			q.Enqueue(entry, now)
			if b.pressure > 0 && q.Len() > b.pressure {
				res.Shed = q.ShedWorst(b.strategy, now, b.params, q.Len()-b.pressure, res.Shed)
			}
			q.Unlock()
		} else {
			q.Enqueue(entry, now)
			if b.pressure > 0 && q.Len() > b.pressure {
				res.Shed = q.ShedWorst(b.strategy, now, b.params, q.Len()-b.pressure, res.Shed)
			}
		}
		res.EnqueuedHops = append(res.EnqueuedHops, hop)
	}
	return *res
}

// deliverLocal appends one local delivery for a subscription matched
// through entry e (the subscription itself, or a group member folded
// into it), once per message across multi-path duplicates.
func (p *Processor) deliverLocal(m *msg.Message, e *routing.Entry, sub *msg.Subscription, now vtime.Millis, res *Result) {
	if p.subEpoch[sub.ID] == p.epoch {
		return
	}
	p.subEpoch[sub.ID] = p.epoch
	allowed, price := p.b.scenario.AllowedDelay(m, sub)
	if e.Relaxed > allowed {
		// Topology repair renegotiated this route's bound up to the
		// cheapest feasible value; judge against the floor.
		allowed = e.Relaxed
	}
	latency := now - m.Published
	res.Deliveries = append(res.Deliveries, Delivery{
		SubID:     sub.ID,
		Price:     price,
		Published: m.Published,
		Allowed:   allowed,
		Latency:   latency,
		Valid:     allowed > 0 && latency <= allowed,
	})
}

// buildEntry converts routing entries for one next hop into a pooled
// queue entry with per-subscriber targets (§4.2 → §5.1 inputs). The
// entry is released back to the pool by whoever removes it from the
// queue (or immediately, if it never gets enqueued).
func (p *Processor) buildEntry(m *msg.Message, entries []*routing.Entry) *core.Entry {
	b := p.b
	e := core.GetEntry()
	e.MsgID = uint64(m.ID)
	e.SizeKB = m.SizeKB
	e.Published = m.Published
	e.Data = m
	p.epoch++
	for _, re := range entries {
		// Collapse multi-path duplicates of the same subscription within
		// one next hop so EB does not double-count its benefit.
		if p.subEpoch[re.Sub.ID] == p.epoch {
			continue
		}
		p.subEpoch[re.Sub.ID] = p.epoch
		allowed, price := b.scenario.AllowedDelay(m, re.Sub)
		if re.Relaxed > allowed {
			allowed = re.Relaxed
		}
		if allowed <= 0 {
			// No bound applies (misconfigured subscription); treat as
			// undeliverable rather than infinitely patient.
			continue
		}
		e.Targets = append(e.Targets, core.Target{
			SubID:    int32(re.Sub.ID),
			Deadline: m.Published + allowed,
			Price:    price,
			Hops:     re.Hops,
			Rate:     re.Rate,
		})
	}
	return e
}

// dedupStripes is the stripe count of the arrival dedup set; a power of
// two so the stripe pick is a mask.
const dedupStripes = 16

// dedupSet is the striped message-id set behind multi-path arrival
// dedup: concurrent Processors contend only when two copies of messages
// land on the same stripe at the same instant.
type dedupSet struct {
	stripes [dedupStripes]struct {
		mu sync.Mutex
		m  map[msg.ID]struct{}
	}
}

func (d *dedupSet) init() {
	for i := range d.stripes {
		d.stripes[i].m = make(map[msg.ID]struct{})
	}
}

// add inserts id and reports whether it was new.
func (d *dedupSet) add(id msg.ID) bool {
	// Publisher index lives in the high 32 bits, sequence in the low;
	// folding both spreads a single hot stream across stripes.
	s := &d.stripes[(uint64(id)^uint64(id)>>32)&(dedupStripes-1)]
	s.mu.Lock()
	_, dup := s.m[id]
	if !dup {
		s.m[id] = struct{}{}
	}
	s.mu.Unlock()
	return !dup
}
