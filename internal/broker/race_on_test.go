//go:build race

package broker

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions are skipped under it (the instrumentation
// itself allocates, making AllocsPerRun nondeterministic).
const raceEnabled = true
