package broker

import (
	"fmt"
	"sync"
	"testing"

	"bdps/internal/core"
	"bdps/internal/filter"
	"bdps/internal/msg"
	"bdps/internal/routing"
	"bdps/internal/vtime"
)

// TestProcessorsConcurrentWithTableChurn is the sharded-plane churn
// contract under -race: worker Processors (each with private match
// scratch, sharing the table's counting index) process messages under a
// reader lock while subscription floods mutate the table under the
// writer lock — exactly the synchronization the live node uses. The
// static population must match on every processed message.
func TestProcessorsConcurrentWithTableChurn(t *testing.T) {
	table := routing.NewTable(0)
	table.EnableIndex()
	static := &msg.Subscription{ID: 1, Edge: 0, Filter: filter.MustParse("A1 < 100")}
	table.Add(&routing.Entry{Sub: static, Source: 0, Next: msg.None})

	b, err := New(Config{
		ID:       0,
		Scenario: msg.PSD,
		Params:   core.DefaultParams(),
		Strategy: core.MaxEB{},
		Table:    table,
	})
	if err != nil {
		t.Fatal(err)
	}

	// mu mirrors livenet's node lock: workers shared, floods exclusive.
	var mu sync.RWMutex
	var wg sync.WaitGroup
	const workers = 4
	const perWorker = 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			proc := b.NewProcessor()
			for i := 0; i < perWorker; i++ {
				m := &msg.Message{
					ID:        msg.MakeID(msg.NodeID(w), uint32(i)),
					Publisher: msg.NodeID(w),
					Ingress:   0,
					Published: 0,
					Allowed:   vtime.Hour,
					SizeKB:    1,
					Attrs:     msg.NumAttrs(map[string]float64{"A1": 50, "A2": 1}),
				}
				mu.RLock()
				res := proc.Process(m, 1)
				delivered := false
				for _, d := range res.Deliveries {
					if d.SubID == static.ID {
						delivered = true
					}
				}
				mu.RUnlock()
				if !delivered {
					t.Errorf("worker %d msg %d: static subscription not delivered during churn", w, i)
					return
				}
			}
		}(w)
	}

	// Flood mutator: churn subscriptions in and out under the write lock.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			id := msg.SubID(100 + i%23)
			s := &msg.Subscription{ID: id, Edge: 0,
				Filter: filter.MustParse(fmt.Sprintf("A1 < %d && A2 < %d", i%120, i%7))}
			mu.Lock()
			if table.RemoveSub(id) == 0 {
				table.Add(&routing.Entry{Sub: s, Source: 0, Next: msg.None})
			}
			mu.Unlock()
		}
	}()
	wg.Wait()
	<-done
}
