package sim

import (
	"testing"

	"bdps/internal/vtime"
)

func TestEngineRunsInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	end := e.Run()
	if end != 30 {
		t.Errorf("final time = %v, want 30", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Steps() != 3 {
		t.Errorf("steps = %d, want 3", e.Steps())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of scheduling order at %d: %d", i, v)
		}
	}
}

func TestEngineEventSchedulesEvent(t *testing.T) {
	e := New()
	var hits []vtime.Millis
	e.At(10, func() {
		hits = append(hits, e.Now())
		e.After(5, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Errorf("hits = %v, want [10 15]", hits)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := New()
	ran := 0
	e.At(10, func() { ran++ })
	e.At(20, func() { ran++ })
	e.At(30, func() { ran++ })
	e.RunUntil(20)
	if ran != 2 {
		t.Errorf("ran = %d, want 2", ran)
	}
	if e.Now() != 20 {
		t.Errorf("now = %v, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	e.RunUntil(100)
	if ran != 3 || e.Now() != 100 {
		t.Errorf("after horizon: ran=%d now=%v", ran, e.Now())
	}
}

func TestEngineRunUntilIdleAdvancesClock(t *testing.T) {
	e := New()
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Errorf("idle advance: now = %v, want 500", e.Now())
	}
}

func TestEnginePanicsOnPastScheduling(t *testing.T) {
	e := New()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEnginePanicsOnNegativeDelay(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("negative After should panic")
		}
	}()
	e.After(-1, func() {})
}

func TestEngineDeterminism(t *testing.T) {
	trace := func() []vtime.Millis {
		e := New()
		var out []vtime.Millis
		var tick func()
		n := 0
		tick = func() {
			out = append(out, e.Now())
			n++
			if n < 50 {
				e.After(vtime.Millis(n%7)+1, tick)
			}
		}
		e.At(0, tick)
		e.Run()
		return out
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatal("different event counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
