package sim

import (
	"testing"

	"bdps/internal/vtime"
)

func TestEngineRunsInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	end := e.Run()
	if end != 30 {
		t.Errorf("final time = %v, want 30", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Steps() != 3 {
		t.Errorf("steps = %d, want 3", e.Steps())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of scheduling order at %d: %d", i, v)
		}
	}
}

func TestEngineEventSchedulesEvent(t *testing.T) {
	e := New()
	var hits []vtime.Millis
	e.At(10, func() {
		hits = append(hits, e.Now())
		e.After(5, func() { hits = append(hits, e.Now()) })
	})
	e.Run()
	if len(hits) != 2 || hits[0] != 10 || hits[1] != 15 {
		t.Errorf("hits = %v, want [10 15]", hits)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := New()
	ran := 0
	e.At(10, func() { ran++ })
	e.At(20, func() { ran++ })
	e.At(30, func() { ran++ })
	e.RunUntil(20)
	if ran != 2 {
		t.Errorf("ran = %d, want 2", ran)
	}
	if e.Now() != 20 {
		t.Errorf("now = %v, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	e.RunUntil(100)
	if ran != 3 || e.Now() != 100 {
		t.Errorf("after horizon: ran=%d now=%v", ran, e.Now())
	}
}

func TestEngineRunUntilIdleAdvancesClock(t *testing.T) {
	e := New()
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Errorf("idle advance: now = %v, want 500", e.Now())
	}
}

func TestEnginePanicsOnPastScheduling(t *testing.T) {
	e := New()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEnginePanicsOnNegativeDelay(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("negative After should panic")
		}
	}()
	e.After(-1, func() {})
}

// TestEventHeapOrder stress-tests the specialized 4-ary heap against the
// (time, seq) total order with interleaved pushes and pops.
func TestEventHeapOrder(t *testing.T) {
	var h eventHeap
	rng := uint64(0x9e3779b97f4a7c15) // deterministic LCG, no math/rand
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng >> 33
	}
	seq := uint64(0)
	push := func() {
		h.push(event{time: vtime.Millis(next() % 1000), seq: seq})
		seq++
	}
	for i := 0; i < 500; i++ {
		push()
	}
	var last event
	popped := 0
	checkPop := func() {
		ev := h.pop()
		if popped > 0 && !last.less(&ev) {
			t.Fatalf("pop %d out of order: (%v,%d) after (%v,%d)",
				popped, ev.time, ev.seq, last.time, last.seq)
		}
		last = ev
		popped++
	}
	// Drain halfway, interleave more pushes at later times, drain fully.
	for i := 0; i < 250; i++ {
		checkPop()
	}
	for i := 0; i < 300; i++ {
		h.push(event{time: 1000 + vtime.Millis(next()%1000), seq: seq})
		seq++
	}
	for len(h) > 0 {
		checkPop()
	}
	if popped != 800 {
		t.Fatalf("popped %d events, want 800", popped)
	}
}

func TestEngineDeterminism(t *testing.T) {
	trace := func() []vtime.Millis {
		e := New()
		var out []vtime.Millis
		var tick func()
		n := 0
		tick = func() {
			out = append(out, e.Now())
			n++
			if n < 50 {
				e.After(vtime.Millis(n%7)+1, tick)
			}
		}
		e.At(0, tick)
		e.Run()
		return out
	}
	a, b := trace(), trace()
	if len(a) != len(b) {
		t.Fatal("different event counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
