// Package sim is a deterministic discrete-event simulation engine: a
// virtual clock and a time-ordered event queue. Events scheduled for the
// same instant execute in scheduling order, so simulation runs are exactly
// reproducible — the property every experiment in this repository leans
// on.
package sim

import (
	"container/heap"
	"fmt"

	"bdps/internal/vtime"
)

// Engine runs events in virtual time.
type Engine struct {
	now   vtime.Millis
	queue eventHeap
	seq   uint64
	steps uint64
}

// New returns an engine at time 0.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() vtime.Millis { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of scheduled, not-yet-run events.
func (e *Engine) Pending() int { return len(e.queue) }

// Runner is a pre-built event payload. Models on an allocation-sensitive
// path schedule a Runner they pool or reuse instead of a fresh closure
// per event; the engine only stores the interface (a pointer, boxed for
// free) and calls Run when the event fires.
type Runner interface {
	Run()
}

// At schedules fn at absolute time t. Scheduling in the past panics: it is
// always a logic error in the embedding model, and silently reordering
// time would corrupt every metric downstream.
func (e *Engine) At(t vtime.Millis, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	heap.Push(&e.queue, event{time: t, seq: e.seq, fn: fn})
	e.seq++
}

// AtRun schedules r.Run at absolute time t, with At's semantics.
func (e *Engine) AtRun(t vtime.Millis, r Runner) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	heap.Push(&e.queue, event{time: t, seq: e.seq, r: r})
	e.seq++
}

// After schedules fn d milliseconds from now.
func (e *Engine) After(d vtime.Millis, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// AfterRun schedules r.Run d milliseconds from now.
func (e *Engine) AfterRun(d vtime.Millis, r Runner) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.AtRun(e.now+d, r)
}

// Run executes events until none remain, returning the final time.
func (e *Engine) Run() vtime.Millis {
	for len(e.queue) > 0 {
		e.step()
	}
	return e.now
}

// RunUntil executes all events with time <= t, then advances the clock to
// t (even if idle). Events scheduled during execution are honored if they
// fall within the horizon.
func (e *Engine) RunUntil(t vtime.Millis) {
	for len(e.queue) > 0 && e.queue[0].time <= t {
		e.step()
	}
	if t > e.now {
		e.now = t
	}
}

func (e *Engine) step() {
	ev := heap.Pop(&e.queue).(event)
	e.now = ev.time
	e.steps++
	if ev.r != nil {
		ev.r.Run()
	} else {
		ev.fn()
	}
}

type event struct {
	time vtime.Millis
	seq  uint64
	fn   func() // exactly one of fn and r is set
	r    Runner
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}
