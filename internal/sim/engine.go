// Package sim is a deterministic discrete-event simulation engine: a
// virtual clock and a time-ordered event queue. Events scheduled for the
// same instant execute in scheduling order, so simulation runs are exactly
// reproducible — the property every experiment in this repository leans
// on.
package sim

import (
	"fmt"

	"bdps/internal/vtime"
)

// Engine runs events in virtual time.
type Engine struct {
	now   vtime.Millis
	queue eventHeap
	seq   uint64
	steps uint64
}

// New returns an engine at time 0.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() vtime.Millis { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// Pending returns the number of scheduled, not-yet-run events.
func (e *Engine) Pending() int { return len(e.queue) }

// Runner is a pre-built event payload. Models on an allocation-sensitive
// path schedule a Runner they pool or reuse instead of a fresh closure
// per event; the engine only stores the interface (a pointer, boxed for
// free) and calls Run when the event fires.
type Runner interface {
	Run()
}

// At schedules fn at absolute time t. Scheduling in the past panics: it is
// always a logic error in the embedding model, and silently reordering
// time would corrupt every metric downstream.
func (e *Engine) At(t vtime.Millis, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.queue.push(event{time: t, seq: e.seq, fn: fn})
	e.seq++
}

// AtRun schedules r.Run at absolute time t, with At's semantics.
func (e *Engine) AtRun(t vtime.Millis, r Runner) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.queue.push(event{time: t, seq: e.seq, r: r})
	e.seq++
}

// After schedules fn d milliseconds from now.
func (e *Engine) After(d vtime.Millis, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// AfterRun schedules r.Run d milliseconds from now.
func (e *Engine) AfterRun(d vtime.Millis, r Runner) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.AtRun(e.now+d, r)
}

// Run executes events until none remain, returning the final time.
func (e *Engine) Run() vtime.Millis {
	for len(e.queue) > 0 {
		e.step()
	}
	return e.now
}

// RunUntil executes all events with time <= t, then advances the clock to
// t (even if idle). Events scheduled during execution are honored if they
// fall within the horizon.
func (e *Engine) RunUntil(t vtime.Millis) {
	for len(e.queue) > 0 && e.queue[0].time <= t {
		e.step()
	}
	if t > e.now {
		e.now = t
	}
}

func (e *Engine) step() {
	ev := e.queue.pop()
	e.now = ev.time
	e.steps++
	if ev.r != nil {
		ev.r.Run()
	} else {
		ev.fn()
	}
}

type event struct {
	time vtime.Millis
	seq  uint64
	fn   func() // exactly one of fn and r is set
	r    Runner
}

// less orders events by (time, seq). seq is unique per engine, so the
// order is total and pop order never depends on heap internals.
func (a *event) less(b *event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// eventHeap is a hand-specialized 4-ary min-heap. container/heap would
// box every 40-byte event into an interface — one allocation per
// scheduled event on the hottest path of the simulator. The 4-ary shape
// also halves the tree depth versus binary, so pops touch fewer cache
// lines on the large queues congested runs build.
type eventHeap []event

// push appends ev and sifts it up.
func (h *eventHeap) push(ev event) {
	q := append(*h, ev)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !q[i].less(&q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	*h = q
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // release the closure/Runner so the slab doesn't pin it
	q = q[:n]
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if q[j].less(&q[m]) {
				m = j
			}
		}
		if !q[m].less(&q[i]) {
			break
		}
		q[i], q[m] = q[m], q[i]
		i = m
	}
	*h = q
	return top
}
