package stats

import (
	"math"
	"math/rand/v2"
)

// Stream is a deterministic random-number stream. Every stochastic
// component of the system (each link's rate sampler, each publisher's
// arrival process, each workload generator) owns its own Stream derived
// from a master seed and a component label, so that
//
//   - runs with the same master seed are bit-reproducible, and
//   - changing one strategy or component does not perturb the random
//     draws of any other (paired comparisons across strategies).
type Stream struct {
	rng *rand.Rand
}

// NewStream returns a stream seeded directly by seed.
func NewStream(seed uint64) *Stream {
	return &Stream{rng: rand.New(rand.NewPCG(seed, splitMix64(seed+0x9e3779b97f4a7c15)))}
}

// Derive returns an independent sub-stream identified by label. The same
// (seed, label) pair always yields the same stream.
func Derive(seed uint64, label string) *Stream {
	h := splitMix64(seed)
	for _, b := range []byte(label) {
		h = splitMix64(h ^ uint64(b))
	}
	return NewStream(h)
}

// DeriveN returns an independent sub-stream identified by label and index,
// for families of components ("link-3", publisher 2, ...).
func DeriveN(seed uint64, label string, n int) *Stream {
	h := splitMix64(seed)
	for _, b := range []byte(label) {
		h = splitMix64(h ^ uint64(b))
	}
	h = splitMix64(h ^ uint64(n)*0xbf58476d1ce4e5b9)
	return NewStream(h)
}

// splitMix64 is the SplitMix64 finalizer, used to whiten derived seeds.
func splitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform variate in [0, 1).
func (s *Stream) Float64() float64 { return s.rng.Float64() }

// Uniform returns a uniform variate in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// NormFloat64 returns a standard normal variate.
func (s *Stream) NormFloat64() float64 { return s.rng.NormFloat64() }

// ExpFloat64 returns an exponential variate with rate 1.
func (s *Stream) ExpFloat64() float64 { return s.rng.ExpFloat64() }

// Exponential returns an exponential variate with the given mean. A mean
// of +Inf returns +Inf (a source that never fires).
func (s *Stream) Exponential(mean float64) float64 {
	if math.IsInf(mean, 1) {
		return math.Inf(1)
	}
	return mean * s.rng.ExpFloat64()
}

// IntN returns a uniform int in [0, n). n must be > 0.
func (s *Stream) IntN(n int) int { return s.rng.IntN(n) }

// Perm returns a pseudo-random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// PickFloat returns a uniformly chosen element of choices.
func PickFloat(s *Stream, choices []float64) float64 {
	return choices[s.IntN(len(choices))]
}
