package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func naiveMoments(xs []float64) (mean, variance float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean = sum / float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, ss / float64(len(xs)-1)
}

func TestWelfordMatchesNaive(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// Keep magnitudes sane so the naive formula stays accurate.
			xs = append(xs, math.Mod(x, 1e6))
		}
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		mean, variance := naiveMoments(xs)
		scale := math.Max(1, math.Abs(mean))
		if math.Abs(w.Mean()-mean) > 1e-9*scale {
			return false
		}
		vscale := math.Max(1, variance)
		return math.Abs(w.Var()-variance) <= 1e-8*vscale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeEquivalentToSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		clean := func(xs []float64) []float64 {
			out := xs[:0]
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) {
					out = append(out, math.Mod(x, 1e6))
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var w1, w2, all Welford
		for _, x := range a {
			w1.Add(x)
			all.Add(x)
		}
		for _, x := range b {
			w2.Add(x)
			all.Add(x)
		}
		w1.Merge(w2)
		if w1.Count() != all.Count() {
			return false
		}
		if all.Count() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(all.Mean()))
		if math.Abs(w1.Mean()-all.Mean()) > 1e-9*scale {
			return false
		}
		vscale := math.Max(1, all.Var())
		return math.Abs(w1.Var()-all.Var()) <= 1e-8*vscale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWelfordEstimatorPrior(t *testing.T) {
	prior := Normal{Mean: 75, Sigma: 20}
	e := &WelfordEstimator{Prior: prior}
	if got := e.Estimate(); got != prior {
		t.Errorf("before observations: %v, want prior %v", got, prior)
	}
	e.Observe(50)
	if got := e.Estimate(); got != prior {
		t.Errorf("with one observation: %v, want prior", got)
	}
	e.Observe(60)
	got := e.Estimate()
	if math.Abs(got.Mean-55) > 1e-12 {
		t.Errorf("mean = %v, want 55", got.Mean)
	}
}

func TestWelfordEstimatorConverges(t *testing.T) {
	s := NewStream(1)
	truth := Normal{Mean: 80, Sigma: 15}
	e := &WelfordEstimator{Prior: Normal{Mean: 1, Sigma: 1}}
	for i := 0; i < 100000; i++ {
		e.Observe(truth.Sample(s))
	}
	got := e.Estimate()
	if math.Abs(got.Mean-80) > 0.3 {
		t.Errorf("mean = %v, want ≈80", got.Mean)
	}
	if math.Abs(got.Sigma-15) > 0.3 {
		t.Errorf("sigma = %v, want ≈15", got.Sigma)
	}
}

func TestEWMAEstimatorTracksShift(t *testing.T) {
	s := NewStream(2)
	e := &EWMAEstimator{Alpha: 0.2}
	for i := 0; i < 2000; i++ {
		e.Observe(Normal{Mean: 50, Sigma: 5}.Sample(s))
	}
	for i := 0; i < 2000; i++ {
		e.Observe(Normal{Mean: 90, Sigma: 5}.Sample(s))
	}
	got := e.Estimate()
	if math.Abs(got.Mean-90) > 3 {
		t.Errorf("EWMA mean = %v, want ≈90 after shift", got.Mean)
	}
}

func TestEWMAEstimatorPrior(t *testing.T) {
	prior := Normal{Mean: 75, Sigma: 20}
	e := &EWMAEstimator{Prior: prior}
	if e.Estimate() != prior {
		t.Error("EWMA should return prior before observations")
	}
	e.Observe(42)
	if got := e.Estimate(); got.Mean != 42 {
		t.Errorf("EWMA first observation sets mean, got %v", got.Mean)
	}
}

func TestWindowEstimatorSlides(t *testing.T) {
	e := &WindowEstimator{Size: 4}
	for _, x := range []float64{1, 1, 1, 1} {
		e.Observe(x)
	}
	if got := e.Estimate(); got.Mean != 1 {
		t.Fatalf("mean = %v, want 1", got.Mean)
	}
	// Slide the window fully over to 9s.
	for _, x := range []float64{9, 9, 9, 9} {
		e.Observe(x)
	}
	if got := e.Estimate(); got.Mean != 9 {
		t.Fatalf("after slide mean = %v, want 9", got.Mean)
	}
}

func TestWindowEstimatorPrior(t *testing.T) {
	prior := Normal{Mean: 5, Sigma: 2}
	e := &WindowEstimator{Prior: prior, Size: 8}
	if e.Estimate() != prior {
		t.Error("window estimator should return prior when underfilled")
	}
}

func TestOracleEstimator(t *testing.T) {
	d := Normal{Mean: 60, Sigma: 20}
	e := &OracleEstimator{Dist: d}
	e.Observe(1)
	e.Observe(1000)
	if e.Estimate() != d {
		t.Error("oracle must ignore observations")
	}
	if e.Count() != 2 {
		t.Errorf("count = %d, want 2", e.Count())
	}
}

func TestEstimatorInterfaceCompliance(t *testing.T) {
	for _, e := range []Estimator{
		&WelfordEstimator{}, &EWMAEstimator{}, &WindowEstimator{}, &OracleEstimator{},
	} {
		e.Observe(1)
		_ = e.Estimate()
		if e.Count() < 0 {
			t.Errorf("%T: negative count", e)
		}
	}
}
