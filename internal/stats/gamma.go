package stats

import (
	"fmt"
	"math"
)

// ShiftedGamma models the one-way IP packet delay distribution reported by
// the Internet-measurement studies the paper cites ([17], [18]): a gamma
// distribution with shape K and scale Theta, shifted right by Shift (the
// deterministic propagation floor). The simulator offers it as an
// alternative link model for the gamma-vs-normal ablation.
type ShiftedGamma struct {
	K     float64 // shape, > 0
	Theta float64 // scale, > 0
	Shift float64 // location offset
}

// Mean returns the distribution mean Shift + K·Theta.
func (g ShiftedGamma) Mean() float64 { return g.Shift + g.K*g.Theta }

// Var returns the variance K·Theta².
func (g ShiftedGamma) Var() float64 { return g.K * g.Theta * g.Theta }

// CDF returns P(X <= x) using the regularized lower incomplete gamma
// function.
func (g ShiftedGamma) CDF(x float64) float64 {
	if x <= g.Shift {
		return 0
	}
	return RegularizedGammaP(g.K, (x-g.Shift)/g.Theta)
}

// Sample draws one variate using Marsaglia–Tsang for shape >= 1 and the
// standard boost for shape < 1.
func (g ShiftedGamma) Sample(s *Stream) float64 {
	return g.Shift + g.Theta*sampleGammaShape(s, g.K)
}

// String implements fmt.Stringer.
func (g ShiftedGamma) String() string {
	return fmt.Sprintf("Γ(k=%.4g, θ=%.4g)+%.4g", g.K, g.Theta, g.Shift)
}

// sampleGammaShape draws from Gamma(shape, 1).
func sampleGammaShape(s *Stream, shape float64) float64 {
	if shape < 1 {
		// Boost: X = Gamma(shape+1) * U^(1/shape).
		u := s.Float64()
		for u == 0 {
			u = s.Float64()
		}
		return sampleGammaShape(s, shape+1) * math.Pow(u, 1/shape)
	}
	// Marsaglia–Tsang method.
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = s.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := s.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// RegularizedGammaP computes P(a, x), the regularized lower incomplete
// gamma function, via the series expansion for x < a+1 and the continued
// fraction for x >= a+1 (Numerical Recipes §6.2). Accuracy is ~1e-14.
func RegularizedGammaP(a, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(x) || a <= 0 || x < 0:
		return math.NaN()
	case x == 0:
		return 0
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	return 1 - gammaQContinuedFraction(a, x)
}

// RegularizedGammaQ computes Q(a, x) = 1 - P(a, x).
func RegularizedGammaQ(a, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(x) || a <= 0 || x < 0:
		return math.NaN()
	case x == 0:
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinuedFraction(a, x)
}

func gammaPSeries(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 1e-16
	)
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaQContinuedFraction(a, x float64) float64 {
	const (
		maxIter = 500
		eps     = 1e-16
		fpmin   = 1e-300
	)
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
