package stats

import (
	"math"
	"sort"
)

// Summary accumulates scalar samples (latencies, queue lengths) and
// reports order statistics. It stores samples; for the experiment sizes in
// this repository (≤ a few hundred thousand deliveries) exact quantiles
// are affordable and simpler than a sketch.
type Summary struct {
	xs     []float64
	sorted bool
	sum    float64
	min    float64
	max    float64
}

// Add records one sample.
func (s *Summary) Add(x float64) {
	if len(s.xs) == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.xs = append(s.xs, x)
	s.sum += x
	s.sorted = false
}

// Count returns the number of samples.
func (s *Summary) Count() int { return len(s.xs) }

// Mean returns the sample mean, or NaN if empty.
func (s *Summary) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	return s.sum / float64(len(s.xs))
}

// Min returns the smallest sample, or NaN if empty.
func (s *Summary) Min() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest sample, or NaN if empty.
func (s *Summary) Max() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	return s.max
}

// Quantile returns the p-quantile (0 <= p <= 1) using linear
// interpolation between order statistics, or NaN if empty.
func (s *Summary) Quantile(p float64) float64 {
	if len(s.xs) == 0 || math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if len(s.xs) == 1 {
		return s.xs[0]
	}
	pos := p * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Std returns the sample standard deviation (unbiased), or 0 with fewer
// than two samples.
func (s *Summary) Std() float64 {
	if len(s.xs) < 2 {
		return 0
	}
	var w Welford
	for _, x := range s.xs {
		w.Add(x)
	}
	return w.Std()
}

// Histogram builds a fixed-width histogram with the given number of bins
// over [min, max]. It returns bin edges (len bins+1) and counts (len
// bins). An empty summary returns nils.
func (s *Summary) Histogram(bins int) (edges []float64, counts []int) {
	if len(s.xs) == 0 || bins <= 0 {
		return nil, nil
	}
	lo, hi := s.min, s.max
	if hi == lo {
		hi = lo + 1
	}
	edges = make([]float64, bins+1)
	counts = make([]int, bins)
	width := (hi - lo) / float64(bins)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	for _, x := range s.xs {
		b := int((x - lo) / width)
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return edges, counts
}
