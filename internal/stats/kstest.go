package stats

import (
	"math"
	"sort"
)

// KSStatistic computes the one-sample Kolmogorov–Smirnov statistic
// D_n = sup_x |F_n(x) − F(x)| between an empirical sample and a reference
// CDF. It is used by the test suite to verify that the link-rate samplers
// actually produce their claimed distributions, not just matching
// moments.
func KSStatistic(sample []float64, cdf func(float64) float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	xs := append([]float64(nil), sample...)
	sort.Float64s(xs)
	n := float64(len(xs))
	var d float64
	for i, x := range xs {
		f := cdf(x)
		// Empirical CDF jumps from i/n to (i+1)/n at x.
		lo := math.Abs(f - float64(i)/n)
		hi := math.Abs(float64(i+1)/n - f)
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d
}

// KSCritical returns the approximate critical value of the one-sample KS
// statistic at the given significance level for n samples (asymptotic
// formula c(α)·√(1/n); valid for n ≳ 35). Supported alphas: 0.10, 0.05,
// 0.01, 0.001; other values fall back to 0.05.
func KSCritical(n int, alpha float64) float64 {
	var c float64
	switch alpha {
	case 0.10:
		c = 1.224
	case 0.01:
		c = 1.628
	case 0.001:
		c = 1.949
	default:
		c = 1.358 // α = 0.05
	}
	return c / math.Sqrt(float64(n))
}
