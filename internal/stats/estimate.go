package stats

import "math"

// Estimator consumes observations of a link's per-kilobyte transmission
// time and exposes a running estimate of its normal-distribution
// parameters. It is the stand-in for the paper's "tools of network
// measurement" (§3.2): brokers feed it each observed transfer and read
// back N(μ̂, σ̂²) for scheduling decisions.
type Estimator interface {
	// Observe records one measured per-KB transmission time.
	Observe(x float64)
	// Estimate returns the current parameter estimate. Implementations
	// must return a usable prior before any observations arrive.
	Estimate() Normal
	// Count reports how many observations have been recorded.
	Count() int
}

// Welford is a numerically stable streaming mean/variance estimator over
// the full observation history.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() int { return w.n }

// Mean returns the sample mean (0 before any observation).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 with fewer than two
// observations).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Merge combines another Welford accumulator into w (parallel variant of
// the update; Chan et al.).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.mean += delta * float64(o.n) / float64(n)
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}

// WelfordEstimator adapts Welford to the Estimator interface with a prior
// used until enough observations arrive.
type WelfordEstimator struct {
	Prior   Normal // returned until MinObs observations are recorded
	MinObs  int    // defaults to 2
	welford Welford
}

// Observe implements Estimator.
func (e *WelfordEstimator) Observe(x float64) { e.welford.Add(x) }

// Count implements Estimator.
func (e *WelfordEstimator) Count() int { return e.welford.Count() }

// Estimate implements Estimator.
func (e *WelfordEstimator) Estimate() Normal {
	min := e.MinObs
	if min < 2 {
		min = 2
	}
	if e.welford.Count() < min {
		return e.Prior
	}
	return Normal{Mean: e.welford.Mean(), Sigma: e.welford.Std()}
}

// EWMAEstimator tracks exponentially weighted moving estimates of mean and
// variance, reacting to drifting link conditions faster than Welford.
type EWMAEstimator struct {
	Prior Normal  // returned before the first observation
	Alpha float64 // smoothing factor in (0,1]; defaults to 0.1

	n        int
	mean     float64
	variance float64
}

// Observe implements Estimator.
func (e *EWMAEstimator) Observe(x float64) {
	a := e.Alpha
	if a <= 0 || a > 1 {
		a = 0.1
	}
	if e.n == 0 {
		e.mean = x
		e.variance = 0
	} else {
		d := x - e.mean
		e.mean += a * d
		// Standard EWMV update (Welford-style exponential variant).
		e.variance = (1 - a) * (e.variance + a*d*d)
	}
	e.n++
}

// Count implements Estimator.
func (e *EWMAEstimator) Count() int { return e.n }

// Estimate implements Estimator.
func (e *EWMAEstimator) Estimate() Normal {
	if e.n == 0 {
		return e.Prior
	}
	return Normal{Mean: e.mean, Sigma: math.Sqrt(e.variance)}
}

// WindowEstimator keeps a sliding window of the most recent observations
// and recomputes exact moments over the window.
type WindowEstimator struct {
	Prior  Normal // returned until the window holds MinObs observations
	Size   int    // window capacity; defaults to 64
	MinObs int    // defaults to 2

	buf  []float64
	next int
	full bool
}

// Observe implements Estimator.
func (e *WindowEstimator) Observe(x float64) {
	if e.buf == nil {
		size := e.Size
		if size <= 0 {
			size = 64
		}
		e.buf = make([]float64, 0, size)
	}
	if len(e.buf) < cap(e.buf) {
		e.buf = append(e.buf, x)
		return
	}
	e.buf[e.next] = x
	e.next = (e.next + 1) % len(e.buf)
	e.full = true
}

// Count implements Estimator.
func (e *WindowEstimator) Count() int { return len(e.buf) }

// Estimate implements Estimator.
func (e *WindowEstimator) Estimate() Normal {
	min := e.MinObs
	if min < 2 {
		min = 2
	}
	if len(e.buf) < min {
		return e.Prior
	}
	var w Welford
	for _, x := range e.buf {
		w.Add(x)
	}
	return Normal{Mean: w.Mean(), Sigma: w.Std()}
}

// OracleEstimator always reports a fixed, known distribution. It is the
// default in the headline experiments, matching the paper's assumption
// that the link-rate distribution parameters are known to each broker.
type OracleEstimator struct {
	Dist Normal
	n    int
}

// Observe implements Estimator (observations are counted but ignored).
func (e *OracleEstimator) Observe(float64) { e.n++ }

// Count implements Estimator.
func (e *OracleEstimator) Count() int { return e.n }

// Estimate implements Estimator.
func (e *OracleEstimator) Estimate() Normal { return e.Dist }
