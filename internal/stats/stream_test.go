package stats

import (
	"math"
	"testing"
)

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(42)
	b := NewStream(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce identical sequences")
		}
	}
}

func TestDeriveIndependence(t *testing.T) {
	a := Derive(42, "link")
	b := Derive(42, "publisher")
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("derived streams overlap: %d identical draws", same)
	}
}

func TestDeriveReproducible(t *testing.T) {
	a := Derive(7, "x")
	b := Derive(7, "x")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("Derive must be deterministic in (seed, label)")
		}
	}
}

func TestDeriveNDistinctIndices(t *testing.T) {
	a := DeriveN(1, "link", 0)
	b := DeriveN(1, "link", 1)
	if a.Float64() == b.Float64() && a.Float64() == b.Float64() {
		t.Error("DeriveN streams with different indices should differ")
	}
	c := DeriveN(1, "link", 1)
	d := DeriveN(1, "link", 1)
	for i := 0; i < 50; i++ {
		if c.Float64() != d.Float64() {
			t.Fatal("DeriveN must be deterministic in (seed, label, n)")
		}
	}
}

func TestUniformRange(t *testing.T) {
	s := NewStream(5)
	for i := 0; i < 10000; i++ {
		x := s.Uniform(50, 100)
		if x < 50 || x >= 100 {
			t.Fatalf("Uniform(50,100) produced %v", x)
		}
	}
}

func TestUniformMean(t *testing.T) {
	s := NewStream(6)
	var w Welford
	for i := 0; i < 100000; i++ {
		w.Add(s.Uniform(50, 100))
	}
	if math.Abs(w.Mean()-75) > 0.3 {
		t.Errorf("uniform mean = %v, want ≈75", w.Mean())
	}
}

func TestExponentialMean(t *testing.T) {
	s := NewStream(8)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(s.Exponential(4000))
	}
	if math.Abs(w.Mean()-4000) > 40 {
		t.Errorf("exponential mean = %v, want ≈4000", w.Mean())
	}
}

func TestExponentialInfiniteMean(t *testing.T) {
	s := NewStream(9)
	if !math.IsInf(s.Exponential(math.Inf(1)), 1) {
		t.Error("Exponential(+Inf) should be +Inf")
	}
}

func TestIntNInRange(t *testing.T) {
	s := NewStream(10)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.IntN(3)
		if v < 0 || v >= 3 {
			t.Fatalf("IntN(3) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Errorf("IntN(3) over 1000 draws hit %d values, want 3", len(seen))
	}
}

func TestPickFloat(t *testing.T) {
	s := NewStream(11)
	choices := []float64{10000, 30000, 60000}
	seen := make(map[float64]int)
	for i := 0; i < 3000; i++ {
		seen[PickFloat(s, choices)]++
	}
	for _, c := range choices {
		if seen[c] < 800 {
			t.Errorf("choice %v picked only %d/3000 times", c, seen[c])
		}
	}
}

func TestSummaryQuantiles(t *testing.T) {
	var s Summary
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Errorf("q1 = %v, want 100", got)
	}
	if got := s.Quantile(0.5); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("median = %v, want 50.5", got)
	}
	if got := s.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("mean = %v, want 50.5", got)
	}
	if s.Min() != 1 || s.Max() != 100 {
		t.Errorf("min/max = %v/%v, want 1/100", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Quantile(0.5)) ||
		!math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Error("empty summary statistics should be NaN")
	}
	edges, counts := s.Histogram(4)
	if edges != nil || counts != nil {
		t.Error("empty histogram should be nil")
	}
}

func TestSummaryHistogram(t *testing.T) {
	var s Summary
	for i := 0; i < 40; i++ {
		s.Add(float64(i % 4)) // 0,1,2,3 ten times each
	}
	edges, counts := s.Histogram(4)
	if len(edges) != 5 || len(counts) != 4 {
		t.Fatalf("histogram shape: %d edges, %d counts", len(edges), len(counts))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 40 {
		t.Errorf("histogram total = %d, want 40", total)
	}
}

func TestSummaryAddAfterQuantile(t *testing.T) {
	var s Summary
	s.Add(3)
	s.Add(1)
	_ = s.Quantile(0.5) // forces sort
	s.Add(2)
	if got := s.Quantile(0.5); got != 2 {
		t.Errorf("median after interleaved add = %v, want 2", got)
	}
}
