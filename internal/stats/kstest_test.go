package stats

import (
	"math"
	"testing"
)

func TestKSStatisticPerfectFit(t *testing.T) {
	// Sample = exact quantiles of the reference → D ≈ 1/(2n) at most 1/n.
	n := 1000
	sample := make([]float64, n)
	ref := Normal{Mean: 0, Sigma: 1}
	for i := range sample {
		sample[i] = ref.Quantile((float64(i) + 0.5) / float64(n))
	}
	d := KSStatistic(sample, ref.CDF)
	if d > 1.0/float64(n) {
		t.Errorf("D = %v for perfect quantile sample, want <= 1/n", d)
	}
}

func TestKSStatisticDetectsWrongDistribution(t *testing.T) {
	s := NewStream(3)
	sample := make([]float64, 2000)
	for i := range sample {
		sample[i] = Normal{Mean: 60, Sigma: 20}.Sample(s)
	}
	wrong := Normal{Mean: 75, Sigma: 20}
	d := KSStatistic(sample, wrong.CDF)
	if d < KSCritical(len(sample), 0.001) {
		t.Errorf("D = %v should reject a 15-unit mean shift", d)
	}
}

func TestKSStatisticEmpty(t *testing.T) {
	if KSStatistic(nil, func(float64) float64 { return 0.5 }) != 0 {
		t.Error("empty sample should give D = 0")
	}
}

func TestKSCriticalShrinksWithN(t *testing.T) {
	if KSCritical(100, 0.05) <= KSCritical(10000, 0.05) {
		t.Error("critical value must shrink with n")
	}
	if KSCritical(100, 0.001) <= KSCritical(100, 0.10) {
		t.Error("critical value must grow as alpha shrinks")
	}
	if KSCritical(100, 0.42) != KSCritical(100, 0.05) {
		t.Error("unknown alpha should fall back to 0.05")
	}
}

// TestNormalSamplerPassesKS statistically validates the normal sampler
// against its own CDF.
func TestNormalSamplerPassesKS(t *testing.T) {
	s := NewStream(17)
	ref := Normal{Mean: 75, Sigma: 20}
	sample := make([]float64, 5000)
	for i := range sample {
		sample[i] = ref.Sample(s)
	}
	d := KSStatistic(sample, ref.CDF)
	if crit := KSCritical(len(sample), 0.001); d > crit {
		t.Errorf("normal sampler KS D = %v > critical %v", d, crit)
	}
}

// TestGammaSamplerPassesKS statistically validates the shifted-gamma
// sampler against its analytic CDF.
func TestGammaSamplerPassesKS(t *testing.T) {
	s := NewStream(19)
	g := ShiftedGamma{K: 4, Theta: 10, Shift: 10}
	sample := make([]float64, 5000)
	for i := range sample {
		sample[i] = g.Sample(s)
	}
	d := KSStatistic(sample, g.CDF)
	if crit := KSCritical(len(sample), 0.001); d > crit {
		t.Errorf("gamma sampler KS D = %v > critical %v", d, crit)
	}
}

// TestTruncatedNormalKSAgainstTruncatedCDF validates the truncated
// sampler against the renormalized truncated CDF.
func TestTruncatedNormalKSAgainstTruncatedCDF(t *testing.T) {
	s := NewStream(23)
	tn := TruncatedNormal{Normal: Normal{Mean: 20, Sigma: 15}, Min: 1}
	sample := make([]float64, 5000)
	for i := range sample {
		sample[i] = tn.Sample(s)
	}
	// Truncated CDF: (F(x) − F(min)) / (1 − F(min)) for x >= min. The
	// sampler clamps after 16 rejections, adding a point mass at Min of
	// probability F(min)^16 ≈ 1e-19 here — negligible.
	fMin := tn.Normal.CDF(tn.Min)
	cdf := func(x float64) float64 {
		if x < tn.Min {
			return 0
		}
		return (tn.Normal.CDF(x) - fMin) / (1 - fMin)
	}
	d := KSStatistic(sample, cdf)
	if crit := KSCritical(len(sample), 0.001); d > crit {
		t.Errorf("truncated sampler KS D = %v > critical %v", d, crit)
	}
	if math.IsNaN(d) {
		t.Error("KS statistic is NaN")
	}
}
