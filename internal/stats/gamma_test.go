package stats

import (
	"math"
	"testing"
)

func TestRegularizedGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 - exp(-x); P(0.5, x) = erf(sqrt(x)).
	for x := 0.0; x <= 20; x += 0.3 {
		want := 1 - math.Exp(-x)
		if got := RegularizedGammaP(1, x); math.Abs(got-want) > 1e-12 {
			t.Fatalf("P(1,%v) = %v, want %v", x, got, want)
		}
		want = math.Erf(math.Sqrt(x))
		if got := RegularizedGammaP(0.5, x); math.Abs(got-want) > 1e-12 {
			t.Fatalf("P(0.5,%v) = %v, want %v", x, got, want)
		}
	}
}

func TestRegularizedGammaComplement(t *testing.T) {
	for _, a := range []float64{0.3, 1, 2.5, 7, 30} {
		for x := 0.0; x < 4*a+10; x += 0.7 {
			p := RegularizedGammaP(a, x)
			q := RegularizedGammaQ(a, x)
			if math.Abs(p+q-1) > 1e-12 {
				t.Fatalf("P+Q(a=%v,x=%v) = %v, want 1", a, x, p+q)
			}
		}
	}
}

func TestRegularizedGammaPDomain(t *testing.T) {
	if !math.IsNaN(RegularizedGammaP(-1, 2)) {
		t.Error("negative shape should be NaN")
	}
	if !math.IsNaN(RegularizedGammaP(1, -2)) {
		t.Error("negative x should be NaN")
	}
	if RegularizedGammaP(3, 0) != 0 {
		t.Error("P(a,0) should be 0")
	}
	if RegularizedGammaQ(3, 0) != 1 {
		t.Error("Q(a,0) should be 1")
	}
}

func TestShiftedGammaMoments(t *testing.T) {
	g := ShiftedGamma{K: 4, Theta: 2.5, Shift: 100}
	if got, want := g.Mean(), 110.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if got, want := g.Var(), 25.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Var = %v, want %v", got, want)
	}
}

func TestShiftedGammaSampleMoments(t *testing.T) {
	for _, g := range []ShiftedGamma{
		{K: 4, Theta: 2.5, Shift: 100},
		{K: 0.7, Theta: 3, Shift: 0},
		{K: 1, Theta: 1, Shift: 5},
	} {
		s := NewStream(99)
		var w Welford
		for i := 0; i < 200000; i++ {
			x := g.Sample(s)
			if x < g.Shift {
				t.Fatalf("%v: sample %v below shift", g, x)
			}
			w.Add(x)
		}
		if math.Abs(w.Mean()-g.Mean()) > 0.05*math.Max(1, g.Mean()) {
			t.Errorf("%v: sample mean %v, want ≈%v", g, w.Mean(), g.Mean())
		}
		if math.Abs(w.Var()-g.Var()) > 0.05*math.Max(1, g.Var()) {
			t.Errorf("%v: sample var %v, want ≈%v", g, w.Var(), g.Var())
		}
	}
}

func TestShiftedGammaCDFMatchesSamples(t *testing.T) {
	g := ShiftedGamma{K: 3, Theta: 10, Shift: 50}
	s := NewStream(123)
	const n = 100000
	for _, x := range []float64{60, 80, 100, 130} {
		count := 0
		probe := NewStream(123)
		_ = s
		for i := 0; i < n; i++ {
			if g.Sample(probe) <= x {
				count++
			}
		}
		emp := float64(count) / n
		if math.Abs(emp-g.CDF(x)) > 0.01 {
			t.Errorf("CDF(%v) = %v, empirical %v", x, g.CDF(x), emp)
		}
	}
}

func TestShiftedGammaCDFBelowShift(t *testing.T) {
	g := ShiftedGamma{K: 2, Theta: 1, Shift: 10}
	if g.CDF(9.99) != 0 {
		t.Error("CDF below shift should be 0")
	}
}
