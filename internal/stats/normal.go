// Package stats provides the probability substrate for the bounded-delay
// pub/sub system: the normal and shifted-gamma distributions used to model
// overlay link transmission rates (paper §3.2), truncated sampling,
// parameter estimators that stand in for the paper's "tools of network
// measurement", and deterministic random-number streams so simulations are
// bit-reproducible.
package stats

import (
	"fmt"
	"math"
)

// StdNormalCDF returns Φ(z), the CDF of the standard normal distribution.
func StdNormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// SureSigmas is a z-score beyond which StdNormalCDF returns exactly 1.0
// in float64 arithmetic, with margin. math.Erfc takes a dedicated branch
// for |x| ≥ 6 that evaluates erfc(x) for negative x as 2−tiny, which
// rounds to exactly 2.0, so Φ(z) = erfc(−z/√2)/2 == 1.0 for every
// z ≥ 6·√2 ≈ 8.486. The margin over that bound absorbs the rounding of
// any caller-side algebra. Schedulers use it to treat a target whose
// standardized slack is at least SureSigmas as certain without paying
// for an Erfc call; TestSureSigmasSaturates verifies the guarantee.
const SureSigmas = 9.5

// StdNormalPDF returns φ(z), the density of the standard normal.
func StdNormalPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}

// StdNormalQuantile returns Φ⁻¹(p) for p in (0,1). It uses Acklam's
// rational approximation refined by one Halley step, giving ~1e-15
// relative accuracy across the domain. It returns ±Inf at p = 0 or 1 and
// NaN outside [0,1].
func StdNormalQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}

	// Coefficients for Acklam's approximation.
	var (
		a = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
			-2.759285104469687e+02, 1.383577518672690e+02,
			-3.066479806614716e+01, 2.506628277459239e+00}
		b = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
			-1.556989798598866e+02, 6.680131188771972e+01,
			-1.328068155288572e+01}
		c = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
			-2.400758277161838e+00, -2.549732539343734e+00,
			4.374664141464968e+00, 2.938163982698783e+00}
		d = [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
			2.445134137142996e+00, 3.754408661907416e+00}
	)
	const plow = 0.02425

	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One Halley refinement step pushes the error to machine precision.
	e := StdNormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// Normal is a normal distribution N(Mean, Sigma²). Sigma must be >= 0; a
// zero Sigma degenerates to a point mass at Mean, which the CDF and
// quantile handle explicitly (the residual path of length zero has no
// variance).
type Normal struct {
	Mean  float64
	Sigma float64
}

// CDF returns P(X <= x).
func (n Normal) CDF(x float64) float64 {
	if n.Sigma == 0 {
		if x < n.Mean {
			return 0
		}
		return 1
	}
	return StdNormalCDF((x - n.Mean) / n.Sigma)
}

// Tail returns P(X > x) = 1 - CDF(x), computed without cancellation for
// large x.
func (n Normal) Tail(x float64) float64 {
	if n.Sigma == 0 {
		if x < n.Mean {
			return 1
		}
		return 0
	}
	return 0.5 * math.Erfc((x-n.Mean)/(n.Sigma*math.Sqrt2))
}

// Quantile returns the p-quantile of the distribution.
func (n Normal) Quantile(p float64) float64 {
	if n.Sigma == 0 {
		return n.Mean
	}
	return n.Mean + n.Sigma*StdNormalQuantile(p)
}

// Var returns the variance Sigma².
func (n Normal) Var() float64 { return n.Sigma * n.Sigma }

// Sample draws one variate using the stream's normal generator.
func (n Normal) Sample(s *Stream) float64 {
	return n.Mean + n.Sigma*s.NormFloat64()
}

// String implements fmt.Stringer.
func (n Normal) String() string {
	return fmt.Sprintf("N(%.4g, %.4g²)", n.Mean, n.Sigma)
}

// SumNormal returns the distribution of the sum of independent normals:
// means and variances add. This is the paper's path-rate composition
// TR_p ~ N(Σμᵢ, Σσᵢ²).
func SumNormal(parts ...Normal) Normal {
	var mean, variance float64
	for _, p := range parts {
		mean += p.Mean
		variance += p.Sigma * p.Sigma
	}
	return Normal{Mean: mean, Sigma: math.Sqrt(variance)}
}

// TruncatedNormal is a normal distribution constrained to x >= Min by
// resampling (up to a fixed number of attempts) and finally clamping.
// Link transmission rates must be positive; with the paper's parameters
// (μ ∈ [50,100] ms/KB, σ = 20 ms/KB) the truncation at Min = 1 ms/KB
// touches under 0.7% of the mass at the extreme, so the induced bias on
// the mean is negligible but we still document and test it.
type TruncatedNormal struct {
	Normal
	Min float64
}

// Sample draws a variate >= Min.
func (t TruncatedNormal) Sample(s *Stream) float64 {
	const attempts = 16
	for i := 0; i < attempts; i++ {
		x := t.Normal.Sample(s)
		if x >= t.Min {
			return x
		}
	}
	return t.Min
}
