package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStdNormalCDFKnownValues(t *testing.T) {
	// Reference values from standard normal tables (15-digit references
	// computed with mpmath).
	cases := []struct {
		z, want float64
	}{
		{0, 0.5},
		{1, 0.841344746068543},
		{-1, 0.158655253931457},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{3, 0.998650101968370},
		{-3, 0.001349898031630},
		{6, 0.999999999013412},
	}
	for _, c := range cases {
		got := StdNormalCDF(c.z)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("StdNormalCDF(%v) = %.15f, want %.15f", c.z, got, c.want)
		}
	}
}

func TestStdNormalCDFMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		// Restrict to a reasonable dynamic range.
		a = math.Mod(a, 50)
		b = math.Mod(b, 50)
		if a > b {
			a, b = b, a
		}
		return StdNormalCDF(a) <= StdNormalCDF(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStdNormalQuantileRoundTrip(t *testing.T) {
	for p := 0.0001; p < 1; p += 0.0007 {
		z := StdNormalQuantile(p)
		back := StdNormalCDF(z)
		if math.Abs(back-p) > 1e-12 {
			t.Fatalf("CDF(Quantile(%v)) = %v, |err| = %g", p, back, math.Abs(back-p))
		}
	}
}

func TestStdNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(StdNormalQuantile(0), -1) {
		t.Error("Quantile(0) should be -Inf")
	}
	if !math.IsInf(StdNormalQuantile(1), 1) {
		t.Error("Quantile(1) should be +Inf")
	}
	if !math.IsNaN(StdNormalQuantile(-0.1)) || !math.IsNaN(StdNormalQuantile(1.1)) {
		t.Error("Quantile outside [0,1] should be NaN")
	}
	if !math.IsNaN(StdNormalQuantile(math.NaN())) {
		t.Error("Quantile(NaN) should be NaN")
	}
	if got := StdNormalQuantile(0.5); math.Abs(got) > 1e-15 {
		t.Errorf("Quantile(0.5) = %g, want 0", got)
	}
}

func TestNormalCDFAndQuantile(t *testing.T) {
	n := Normal{Mean: 75, Sigma: 20}
	if got := n.CDF(75); math.Abs(got-0.5) > 1e-14 {
		t.Errorf("CDF at mean = %v, want 0.5", got)
	}
	if got := n.CDF(95); math.Abs(got-0.841344746068543) > 1e-12 {
		t.Errorf("CDF(mean+sigma) = %v", got)
	}
	q := n.Quantile(0.975)
	want := 75 + 20*1.959963984540054
	if math.Abs(q-want) > 1e-9 {
		t.Errorf("Quantile(0.975) = %v, want %v", q, want)
	}
}

func TestNormalTailComplement(t *testing.T) {
	n := Normal{Mean: 10, Sigma: 3}
	for x := -20.0; x <= 40; x += 0.5 {
		sum := n.CDF(x) + n.Tail(x)
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("CDF+Tail at %v = %v, want 1", x, sum)
		}
	}
}

func TestDegenerateNormal(t *testing.T) {
	n := Normal{Mean: 5, Sigma: 0}
	if n.CDF(4.999) != 0 || n.CDF(5) != 1 || n.CDF(6) != 1 {
		t.Error("degenerate CDF should be a step at the mean")
	}
	if n.Tail(4.999) != 1 || n.Tail(5) != 0 {
		t.Error("degenerate Tail should be a step at the mean")
	}
	if n.Quantile(0.3) != 5 {
		t.Error("degenerate Quantile should return the mean")
	}
}

func TestSumNormal(t *testing.T) {
	got := SumNormal(
		Normal{Mean: 50, Sigma: 20},
		Normal{Mean: 60, Sigma: 20},
		Normal{Mean: 70, Sigma: 20},
	)
	if got.Mean != 180 {
		t.Errorf("mean = %v, want 180", got.Mean)
	}
	wantSigma := math.Sqrt(3 * 400)
	if math.Abs(got.Sigma-wantSigma) > 1e-12 {
		t.Errorf("sigma = %v, want %v", got.Sigma, wantSigma)
	}
}

func TestSumNormalEmpty(t *testing.T) {
	got := SumNormal()
	if got.Mean != 0 || got.Sigma != 0 {
		t.Errorf("empty sum = %+v, want zero normal", got)
	}
}

func TestNormalSampleMoments(t *testing.T) {
	s := NewStream(42)
	n := Normal{Mean: 75, Sigma: 20}
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(n.Sample(s))
	}
	if math.Abs(w.Mean()-75) > 0.25 {
		t.Errorf("sample mean = %v, want ≈75", w.Mean())
	}
	if math.Abs(w.Std()-20) > 0.25 {
		t.Errorf("sample std = %v, want ≈20", w.Std())
	}
}

func TestTruncatedNormalRespectsMin(t *testing.T) {
	s := NewStream(7)
	tn := TruncatedNormal{Normal: Normal{Mean: 5, Sigma: 20}, Min: 1}
	for i := 0; i < 50000; i++ {
		if x := tn.Sample(s); x < 1 {
			t.Fatalf("sample %v below Min", x)
		}
	}
}

func TestTruncatedNormalBiasSmallAtPaperParams(t *testing.T) {
	// With μ=50, σ=20 and Min=1 the truncated mass is ~0.7%, so the
	// sample mean must stay within 1% of μ.
	s := NewStream(11)
	tn := TruncatedNormal{Normal: Normal{Mean: 50, Sigma: 20}, Min: 1}
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(tn.Sample(s))
	}
	if math.Abs(w.Mean()-50) > 0.5 {
		t.Errorf("truncated mean = %v, want within 0.5 of 50", w.Mean())
	}
}

// TestSureSigmasSaturates proves the SureSigmas guarantee the scheduling
// core's cached fast paths rely on: Φ(z) is exactly 1.0 (as a float64)
// for every z ≥ SureSigmas. math.Erfc handles |x| ≥ 6 in a dedicated
// branch, so one value past the branch boundary covers the whole tail;
// the dense sweep below guards against implementation drift.
func TestSureSigmasSaturates(t *testing.T) {
	for z := SureSigmas; z <= 64; z += 1.0 / 128 {
		if got := StdNormalCDF(z); got != 1 {
			t.Fatalf("StdNormalCDF(%v) = %v, want exactly 1", z, got)
		}
	}
	for _, z := range []float64{SureSigmas, 100, 1e6, 1e300, math.Inf(1)} {
		if got := StdNormalCDF(z); got != 1 {
			t.Fatalf("StdNormalCDF(%v) = %v, want exactly 1", z, got)
		}
	}
	// The guarantee must also hold through Normal.CDF's standardization.
	n := Normal{Mean: 70, Sigma: 20}
	if got := n.CDF(70 + SureSigmas*20); got != 1 {
		t.Fatalf("Normal.CDF at SureSigmas = %v, want exactly 1", got)
	}
}
