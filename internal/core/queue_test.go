package core

import (
	"testing"

	"bdps/internal/vtime"
)

func TestQueueEnqueueStampsSeqAndTime(t *testing.T) {
	q := NewQueue(70)
	a := entry(0, target(10*vtime.Second, 1, 1))
	b := entry(0, target(10*vtime.Second, 1, 1))
	q.Enqueue(a, 100)
	q.Enqueue(b, 200)
	if a.Seq != 0 || b.Seq != 1 {
		t.Errorf("seqs = %d,%d, want 0,1", a.Seq, b.Seq)
	}
	if a.Enqueued != 100 || b.Enqueued != 200 {
		t.Error("Enqueued timestamps not set")
	}
	if q.Len() != 2 || q.Peak() != 2 {
		t.Errorf("len=%d peak=%d, want 2/2", q.Len(), q.Peak())
	}
}

func TestQueueRemoveAt(t *testing.T) {
	q := NewQueue(70)
	a := entry(0, target(10*vtime.Second, 1, 1))
	b := entry(0, target(10*vtime.Second, 1, 1))
	c := entry(0, target(10*vtime.Second, 1, 1))
	q.Enqueue(a, 0)
	q.Enqueue(b, 0)
	q.Enqueue(c, 0)
	got := q.RemoveAt(0)
	if got != a {
		t.Error("RemoveAt(0) should return first entry")
	}
	if q.Len() != 2 {
		t.Errorf("len = %d, want 2", q.Len())
	}
	// Remaining entries are b and c in some order.
	seen := map[*Entry]bool{}
	for _, e := range q.Entries() {
		seen[e] = true
	}
	if !seen[b] || !seen[c] {
		t.Error("remaining entries wrong")
	}
}

func TestQueueFT(t *testing.T) {
	q := NewQueue(70)
	if q.FT() != 0 {
		t.Errorf("empty-queue FT = %v, want 0", q.FT())
	}
	q.Enqueue(entry(0, target(10*vtime.Second, 1, 1)), 0) // 50 KB
	if got := q.FT(); got != 3500 {
		t.Errorf("FT = %v, want 50×70 = 3500", got)
	}
	// A 100 KB entry moves the average to 75 KB.
	big := entry(0, target(10*vtime.Second, 1, 1))
	big.SizeKB = 100
	q.Enqueue(big, 0)
	if got := q.FT(); got != 75*70 {
		t.Errorf("FT = %v, want 5250", got)
	}
	// FT reflects history even after removals.
	q.RemoveAt(0)
	q.RemoveAt(0)
	if got := q.FT(); got != 75*70 {
		t.Errorf("FT after drain = %v, want 5250", got)
	}
}

func TestQueuePruneExpired(t *testing.T) {
	q := NewQueue(70)
	p := Params{PD: 2} // ε off: only expiry drops
	live := entry(0, target(30*vtime.Second, 1, 1))
	dead := entry(0, target(1*vtime.Second, 1, 1))
	mixed := entry(0, target(1*vtime.Second, 1, 1), target(30*vtime.Second, 1, 1))
	q.Enqueue(live, 0)
	q.Enqueue(dead, 0)
	q.Enqueue(mixed, 0)

	drops := q.Prune(5*vtime.Second, p)
	if len(drops) != 1 || drops[0].Entry != dead || drops[0].Reason != DropExpired {
		t.Fatalf("drops = %+v, want only the fully expired entry", drops)
	}
	if q.Len() != 2 {
		t.Errorf("len = %d, want 2 (mixed entry must survive)", q.Len())
	}
}

func TestQueuePruneHopeless(t *testing.T) {
	q := NewQueue(70)
	p := DefaultParams()
	// Hopeless: 2 hops ≈ 7 s residual vs 1.2 s slack, not yet expired.
	hopeless := entry(0, target(1200, 1, 2))
	live := entry(0, target(30*vtime.Second, 1, 2))
	q.Enqueue(hopeless, 0)
	q.Enqueue(live, 0)

	drops := q.Prune(0, p)
	if len(drops) != 1 || drops[0].Entry != hopeless || drops[0].Reason != DropHopeless {
		t.Fatalf("drops = %+v, want the hopeless entry", drops)
	}

	// With ε disabled the same entry survives until expiry.
	q2 := NewQueue(70)
	q2.Enqueue(entry(0, target(1200, 1, 2)), 0)
	if drops := q2.Prune(0, Params{PD: 2}); len(drops) != 0 {
		t.Errorf("ε=0 should not drop hopeless entries: %+v", drops)
	}
}

func TestQueuePopNext(t *testing.T) {
	q := NewQueue(70)
	p := DefaultParams()
	a := entry(0, target(10*vtime.Second, 1, 1))
	b := entry(0, target(10*vtime.Second, 1, 1))
	q.Enqueue(a, 0)
	q.Enqueue(b, 10)
	got, drops := q.PopNext(FIFO{}, 20, p)
	if got != a || len(drops) != 0 {
		t.Errorf("PopNext = %v (drops %v), want first-arrived", got, drops)
	}
	if q.Len() != 1 {
		t.Errorf("len = %d, want 1", q.Len())
	}
}

func TestQueuePopNextDrainsToEmpty(t *testing.T) {
	q := NewQueue(70)
	p := DefaultParams()
	q.Enqueue(entry(0, target(1, 1, 1)), 0) // expires immediately
	got, drops := q.PopNext(FIFO{}, 5*vtime.Second, p)
	if got != nil {
		t.Error("PopNext should return nil when pruning empties the queue")
	}
	if len(drops) != 1 {
		t.Errorf("drops = %d, want 1", len(drops))
	}
	if got, _ := q.PopNext(FIFO{}, 5*vtime.Second, p); got != nil {
		t.Error("PopNext on empty queue should return nil")
	}
}

func TestDropReasonString(t *testing.T) {
	if DropExpired.String() != "expired" || DropHopeless.String() != "hopeless" {
		t.Error("DropReason strings wrong")
	}
	if DropReason(9).String() != "unknown" {
		t.Error("unknown DropReason should render as unknown")
	}
}
