package core

import "bdps/internal/vtime"

// Naive reference implementations of the scheduling metrics, retained
// verbatim from the pre-optimization code. They are the semantic ground
// truth: the cached fast paths in core.go must return bit-identical
// values (and therefore make identical scheduling decisions), which the
// equivalence suite in equivalence_test.go proves across randomized
// workloads. They are also handy as an always-correct fallback when
// debugging a suspected cache bug.

// RefEB is the naive expected benefit (§5.1, eq. 3): one SuccessProb
// evaluation per target, no caching.
func RefEB(e *Entry, ctx Context) float64 {
	var sum float64
	for _, t := range e.Targets {
		sum += SuccessProb(t, ctx.Now, e.SizeKB, ctx.PD) * t.Price
	}
	return sum
}

// RefEBDelayed is the naive EB′ (§5.2, eqs. 6–8).
func RefEBDelayed(e *Entry, ctx Context) float64 {
	var sum float64
	for _, t := range e.Targets {
		sum += SuccessProb(t, ctx.Now+ctx.FT, e.SizeKB, ctx.PD) * t.Price
	}
	return sum
}

// RefPC is the naive postponing cost (§5.2, eq. 9).
func RefPC(e *Entry, ctx Context) float64 {
	return RefEB(e, ctx) - RefEBDelayed(e, ctx)
}

// RefEBPC is the naive combined metric (§5.3, eq. 10), in the same
// EB − (1−r)·EB′ form the optimized EBPC uses.
func RefEBPC(e *Entry, ctx Context, r float64) float64 {
	return RefEB(e, ctx) - (1-r)*RefEBDelayed(e, ctx)
}

// RefMaxSuccess is the naive maximum success probability (§5.4).
func RefMaxSuccess(e *Entry, now vtime.Millis, pd vtime.Millis) float64 {
	var best float64
	for _, t := range e.Targets {
		if p := SuccessProb(t, now, e.SizeKB, pd); p > best {
			best = p
		}
	}
	return best
}

// RefAllExpired is the naive per-target expiry scan.
func RefAllExpired(e *Entry, now vtime.Millis) bool {
	for _, t := range e.Targets {
		if !t.Expired(now) {
			return false
		}
	}
	return true
}

// RefViable is Viable computed with the reference metrics.
func RefViable(e *Entry, now vtime.Millis, p Params) bool {
	if len(e.Targets) == 0 {
		return false
	}
	if RefAllExpired(e, now) {
		return false
	}
	if p.Epsilon > 0 && RefMaxSuccess(e, now, p.PD) < p.Epsilon {
		return false
	}
	return true
}

// Reference wraps a strategy so Pick recomputes every metric with the
// naive reference functions, bypassing all entry caches. Reference(s)
// and s must always agree; the equivalence tests assert exactly that.
func Reference(s Strategy) Strategy { return refStrategy{inner: s} }

type refStrategy struct{ inner Strategy }

// Name implements Strategy.
func (r refStrategy) Name() string { return "ref:" + r.inner.Name() }

// Pick implements Strategy with the naive metric loops. FIFO and RL
// carry no cached state, so their own Pick already is the reference.
func (r refStrategy) Pick(entries []*Entry, ctx Context) int {
	switch s := r.inner.(type) {
	case MaxEB:
		return refPickMax(entries, func(e *Entry) float64 { return RefEB(e, ctx) })
	case MaxPC:
		return refPickMax(entries, func(e *Entry) float64 { return RefPC(e, ctx) })
	case MaxEBPC:
		return refPickMax(entries, func(e *Entry) float64 { return RefEBPC(e, ctx, s.R) })
	}
	return r.inner.Pick(entries, ctx)
}

// refPickMax mirrors the optimized strategies' scan: maximum metric,
// ties broken toward the lower index.
func refPickMax(entries []*Entry, metric func(*Entry) float64) int {
	best := -1
	var bestV float64
	for i, e := range entries {
		v := metric(e)
		if best < 0 || v > bestV {
			best, bestV = i, v
		}
	}
	return best
}
