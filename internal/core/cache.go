package core

import (
	"math"

	"bdps/internal/stats"
	"bdps/internal/vtime"
)

// entryCache holds the per-entry scheduling invariants the cached metric
// fast paths use (see EB, EBDelayed, MaxSuccess, AllExpired and
// Queue.Prune). It is rebuilt lazily on first use and whenever the
// processing delay changes, and reset by Release so a pooled entry
// starts cold. Queue.Enqueue trusts an already-built cache (the
// producer typically just ran Viable over the final target set); a
// producer that mutates Targets after evaluating any metric must call
// Invalidate before handing the entry over.
//
// The load-bearing invariant is the per-target saturation time sure[i]:
// for now ≤ sure[i] the target's standardized slack is at least
// stats.SureSigmas, where SuccessProb evaluates to exactly 1.0, so the
// metric loops can add Price without touching math.Erfc and still
// produce bit-identical sums to the naive reference implementations
// (reference.go). Targets with Sigma == 0 (point-mass residual rates)
// never saturate under this rule (sure = -Inf); they always take the
// exact path, which is already Erfc-free.
type entryCache struct {
	ready bool
	pd    vtime.Millis // processing delay the invariants assume

	priceSum    float64      // Σ Price, folded in target order
	maxDeadline vtime.Millis // all targets expired iff now > maxDeadline
	minSure     vtime.Millis // now ≤ minSure ⇒ every target is certain
	sure        []vtime.Millis
	// sure0 is the inline backing for sure when the entry has at most
	// four targets — the overwhelmingly common case — so building the
	// cache for a fresh (unpooled) entry allocates nothing.
	sure0 [4]vtime.Millis

	// Memoized metric values, keyed by the evaluation time (and pd via
	// the cache itself). Pick/Prune sequences at one instant — and the
	// EB/EB' pair inside PC and EBPC — hit these instead of rescanning.
	ebAt  vtime.Millis
	eb    float64
	ebOK  bool
	ebdAt vtime.Millis
	ebd   float64
	ebdOK bool
	msAt  vtime.Millis
	ms    float64
	msOK  bool
}

// metrics returns the entry's invariant cache for the given processing
// delay, (re)building it when stale.
func (e *Entry) metrics(pd vtime.Millis) *entryCache {
	c := &e.cache
	if c.ready && c.pd == pd {
		return c
	}
	c.ready, c.pd = true, pd
	c.ebOK, c.ebdOK, c.msOK = false, false, false
	c.priceSum = 0
	c.maxDeadline = math.Inf(-1)
	c.minSure = math.Inf(1)
	switch {
	case cap(c.sure) >= len(e.Targets):
		c.sure = c.sure[:0]
	case len(e.Targets) <= len(c.sure0):
		c.sure = c.sure0[:0]
	default:
		c.sure = make([]vtime.Millis, 0, len(e.Targets))
	}
	if len(e.Targets) == 0 {
		// No targets: never certain (and AllExpired is vacuously true).
		c.minSure = math.Inf(-1)
		return c
	}
	size := e.SizeKB
	if size < minSizeKB {
		size = minSizeKB
	}
	for _, t := range e.Targets {
		c.priceSum += t.Price
		if t.Deadline > c.maxDeadline {
			c.maxDeadline = t.Deadline
		}
		sure := math.Inf(-1)
		if t.Rate.Sigma > 0 {
			// SuccessProb == 1.0 exactly while
			//   slack/size ≥ μ + SureSigmas·σ,
			// i.e. until `sure` below. span > 0 also guarantees
			// sure < deadline − hops·pd, so a certain target is never
			// expired — the invariant Queue.Prune's skip relies on.
			span := size * (t.Rate.Mean + stats.SureSigmas*t.Rate.Sigma)
			if span > 0 {
				sure = t.Deadline - float64(t.Hops)*pd - span
			}
		}
		c.sure = append(c.sure, sure)
		if sure < c.minSure {
			c.minSure = sure
		}
	}
	return c
}

// Invalidate discards the entry's cached metrics. Producers that mutate
// Targets, SizeKB or deadlines after an entry has already been evaluated
// must call it; Queue.Enqueue and Release invalidate automatically.
func (e *Entry) Invalidate() { e.cache.ready = false }
