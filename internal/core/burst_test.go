package core

import (
	"testing"

	"bdps/internal/stats"
	"bdps/internal/vtime"
)

func burstQueue(n int) *Queue {
	q := NewQueue(70)
	for i := 0; i < n; i++ {
		e := GetEntry()
		e.SizeKB = 50
		e.Targets = append(e.Targets, Target{
			Deadline: vtime.Millis(30000 + (i%37)*997),
			Price:    float64(1 + i%3),
			Hops:     1 + i%3,
			Rate:     stats.Normal{Mean: 70 * float64(1+i%3), Sigma: 20},
		})
		q.Enqueue(e, vtime.Millis(i))
	}
	return q
}

// TestPopBurstMatchesSequentialPicks pins the heap selection to the
// semantics it replaces: for every strategy, PopBurst at one instant
// must remove the same entries as k successive PopNext calls at that
// instant, in the same order whenever the strategy's scores are
// distinct. (On ties the two break differently — both deterministically
// — so the sequence comparison uses FIFO and RL, whose scores here are
// unique, and the set comparison covers the metric strategies.)
func TestPopBurstMatchesSequentialPicks(t *testing.T) {
	p := DefaultParams()
	now := vtime.Millis(5000)
	const n, k = 64, 16

	for _, s := range []Strategy{FIFO{}, RL{}, MaxEB{}, MaxPC{}, MaxEBPC{R: 0.5}} {
		seq := burstQueue(n)
		var want []*Entry
		for i := 0; i < k; i++ {
			e, _ := seq.PopNext(s, now, p)
			if e == nil {
				break
			}
			want = append(want, e)
		}

		bur := burstQueue(n)
		got, _ := bur.PopBurst(s, now, p, k, nil)
		if len(got) != len(want) {
			t.Fatalf("%s: PopBurst took %d entries, sequential took %d", s.Name(), len(got), len(want))
		}
		if bur.Len() != seq.Len() {
			t.Fatalf("%s: queue left with %d entries, want %d", s.Name(), bur.Len(), seq.Len())
		}

		switch s.(type) {
		case FIFO, RL:
			// Scores are unique here (distinct Seq / distinct deadline
			// mixes): the sequences must match exactly.
			for i := range got {
				if got[i].Seq != want[i].Seq {
					t.Fatalf("%s: order diverged at %d: seq %d vs %d",
						s.Name(), i, got[i].Seq, want[i].Seq)
				}
			}
		default:
			// Metric strategies tie once targets saturate (EB = Σ price),
			// and the two tie-breaks legitimately choose different tied
			// entries; the per-rank scores must still match exactly.
			ms, ok := s.(MetricStrategy)
			if !ok {
				t.Fatalf("%s: expected a MetricStrategy", s.Name())
			}
			ctx := Context{Now: now, PD: p.PD, FT: burstQueue(n).FT()}
			for i := range got {
				gs, ws := ms.Metric(got[i], ctx), ms.Metric(want[i], ctx)
				if gs != ws {
					t.Fatalf("%s: rank-%d score diverged: %g vs %g", s.Name(), i, gs, ws)
				}
			}
		}
		for _, e := range append(want, got...) {
			e.Release()
		}
	}
}

// TestPopBurstDrainsEverything checks the k > len path and that a
// drained queue is empty.
func TestPopBurstDrainsEverything(t *testing.T) {
	q := burstQueue(10)
	out, _ := q.PopBurst(MaxEB{}, 5000, DefaultParams(), 64, nil)
	if len(out) != 10 || q.Len() != 0 {
		t.Fatalf("drain took %d entries, queue left %d", len(out), q.Len())
	}
	for _, e := range out {
		e.Release()
	}
}

func BenchmarkPopBurst(b *testing.B) {
	p := DefaultParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		q := burstQueue(512)
		b.StartTimer()
		out, _ := q.PopBurst(MaxEB{}, 5000, p, 32, nil)
		b.StopTimer()
		for _, e := range out {
			e.Release()
		}
		for q.Len() > 0 {
			q.RemoveAt(0).Release()
		}
		b.StartTimer()
	}
}
