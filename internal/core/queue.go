package core

import (
	"sync"

	"bdps/internal/vtime"
)

// Queue is one broker output queue, feeding one downstream link (§3.2,
// Figure 2: "one output queue is created for each downstream neighbor").
//
// The queue is strategy-agnostic storage: Enqueue stamps arrival order,
// Prune applies expiry and invalid-message detection, and the owner asks a
// Strategy to pick the next entry when the link frees up. Metrics are
// computed lazily at decision time because they depend on the current
// clock — priorities decay as messages age, so precomputed orderings go
// stale.
//
// FT (§5.2) is estimated exactly as the paper prescribes: "the average
// size of all messages multiplied by the mean value of the transmitting
// rate on the link", with the average taken over everything this queue
// has seen.
type Queue struct {
	// Mutex serializes owners that share one queue across goroutines:
	// the sharded live data plane locks it around Enqueue on the ingress
	// side and PopNext on the egress side (the per-queue stripe of its
	// locking scheme). Single-threaded drivers — the simulator — never
	// touch it.
	sync.Mutex

	// LinkMean is the believed mean per-KB transmission time of the link
	// this queue feeds, used for the FT estimate.
	LinkMean float64

	entries []*Entry
	nextSeq uint64

	enqSizeSum float64
	enqCount   int

	// Peak occupancy, for diagnostics.
	peak int

	// drops is the reusable Prune output buffer; see Prune.
	drops []Drop
	// burst and taken are PopBurst's reusable selection scratch.
	burst []burstItem
	taken []int

	// Prune skip state: after a full scan under parameters wakeP, no
	// entry can expire or turn hopeless before wakeUntil (the earliest
	// saturation time over all queued targets — while every success
	// probability is exactly 1, neither drop condition can fire).
	// Enqueue lowers wakeUntil; a scan under different parameters
	// recomputes it.
	wakeOK    bool
	wakeP     Params
	wakeUntil vtime.Millis
}

// NewQueue returns an empty queue for a link with the given believed mean
// rate (ms/KB).
func NewQueue(linkMean float64) *Queue {
	return &Queue{LinkMean: linkMean}
}

// Enqueue adds an entry, stamping its Seq and Enqueued fields, and
// extends the Prune skip window to cover it. An already-built metric
// cache is trusted and reused — producers typically just ran Viable,
// which built it for the final target set; a producer that mutated an
// evaluated entry must call Invalidate before enqueueing.
func (q *Queue) Enqueue(e *Entry, now vtime.Millis) {
	e.Seq = q.nextSeq
	q.nextSeq++
	e.Enqueued = now
	q.entries = append(q.entries, e)
	q.enqSizeSum += e.SizeKB
	q.enqCount++
	if len(q.entries) > q.peak {
		q.peak = len(q.entries)
	}
	if q.wakeOK {
		if ms := e.metrics(q.wakeP.PD).minSure; ms < q.wakeUntil {
			q.wakeUntil = ms
		}
	}
}

// Len returns the number of queued entries.
func (q *Queue) Len() int { return len(q.entries) }

// Peak returns the maximum occupancy observed.
func (q *Queue) Peak() int { return q.peak }

// Entries exposes the queued entries for strategies. The slice is owned
// by the queue; callers must not grow or reorder it.
func (q *Queue) Entries() []*Entry { return q.entries }

// RemoveAt removes and returns the i-th entry in O(1) by swapping with
// the tail. Strategies identify entries by index; arrival order lives in
// Entry.Seq, so the in-slice order is free to change.
func (q *Queue) RemoveAt(i int) *Entry {
	e := q.entries[i]
	last := len(q.entries) - 1
	q.entries[i] = q.entries[last]
	q.entries[last] = nil
	q.entries = q.entries[:last]
	return e
}

// FT estimates the time to transmit one other message first: average
// enqueued size × believed link mean rate. Before any enqueue it returns
// 0 (there is no "other message" to wait for).
func (q *Queue) FT() vtime.Millis {
	if q.enqCount == 0 {
		return 0
	}
	return vtime.Millis(q.enqSizeSum / float64(q.enqCount) * q.LinkMean)
}

// Context builds the metric context for a decision at time now.
func (q *Queue) Context(now vtime.Millis, p Params) Context {
	return Context{Now: now, PD: p.PD, FT: q.FT()}
}

// DropReason classifies why Prune removed an entry.
type DropReason uint8

// Drop reasons.
const (
	// DropExpired: every target's deadline has passed (all strategies).
	DropExpired DropReason = iota
	// DropHopeless: ε-detection fired — every target's success
	// probability is below Params.Epsilon (§5.4).
	DropHopeless
)

// String implements fmt.Stringer.
func (r DropReason) String() string {
	switch r {
	case DropExpired:
		return "expired"
	case DropHopeless:
		return "hopeless"
	}
	return "unknown"
}

// Drop records one pruned entry.
type Drop struct {
	Entry  *Entry
	Reason DropReason
}

// Prune deletes expired and (when p.Epsilon > 0) hopeless entries,
// returning what was dropped. Brokers call it before every scheduling
// decision, implementing "delete as early as possible the messages in
// transit that have expired" (§1) and condition (11) of §5.4.
//
// The returned slice is a buffer owned by the queue, valid until the
// next Prune or PopNext call; consume it before scheduling again.
//
// Prune is O(1) while the clock has not reached the queue's wake time:
// as long as every queued target is still in its saturated region
// (success probability exactly 1), no entry can be expired (the
// saturation time precedes the deadline) nor hopeless (1 ≥ ε), so the
// scan is skipped entirely. This is the "stale-priority" fast path that
// keeps a drain from rescanning the whole queue on every dequeue.
func (q *Queue) Prune(now vtime.Millis, p Params) []Drop {
	if q.wakeOK && p == q.wakeP && now <= q.wakeUntil {
		return nil
	}
	if q.drops == nil && len(q.entries) > 0 {
		// First prune of this queue: size the reusable drop buffer for
		// the worst case (everything expired at once) so a mass-expiry
		// scan does not regrow it allocation by allocation.
		q.drops = make([]Drop, 0, len(q.entries))
	}
	q.drops = q.drops[:0]
	wake := vtime.Inf
	for i := 0; i < len(q.entries); {
		e := q.entries[i]
		switch {
		case AllExpired(e, now):
			q.drops = append(q.drops, Drop{Entry: q.RemoveAt(i), Reason: DropExpired})
		case p.Epsilon > 0 && MaxSuccess(e, now, p.PD) < p.Epsilon:
			q.drops = append(q.drops, Drop{Entry: q.RemoveAt(i), Reason: DropHopeless})
		default:
			if ms := e.metrics(p.PD).minSure; ms < wake {
				wake = ms
			}
			i++
		}
	}
	// ε > 1 would make even certain targets hopeless and a negative PD
	// would put saturation after the deadline; neither occurs in
	// practice, but the skip window is only sound without them.
	q.wakeOK = p.Epsilon <= 1 && p.PD >= 0
	q.wakeP = p
	q.wakeUntil = wake
	return q.drops
}

// PopNext prunes the queue, then lets the strategy pick and removes the
// chosen entry. It returns the entry (nil if the queue emptied) and the
// prune drops (a queue-owned buffer, valid until the next Prune or
// PopNext call).
func (q *Queue) PopNext(s Strategy, now vtime.Millis, p Params) (*Entry, []Drop) {
	drops := q.Prune(now, p)
	if len(q.entries) == 0 {
		return nil, drops
	}
	i := s.Pick(q.entries, q.Context(now, p))
	if i < 0 || i >= len(q.entries) {
		return nil, drops
	}
	return q.RemoveAt(i), drops
}

// burstItem is one scored entry in PopBurst's selection heap.
type burstItem struct {
	score float64 // higher first
	seq   uint64  // tie-break: earlier arrival first
	idx   int     // position in q.entries at scoring time
}

// PopBurst prunes once, then removes up to k entries in the order the
// strategy would send them at one scheduling instant, appending them to
// out. Every built-in strategy ranks entries by a per-entry score that
// is independent of the rest of the queue (EB, PC, EBPC maximize a
// metric; RL minimizes remaining lifetime; FIFO minimizes Seq), so k
// successive Picks at one instant are top-k selection; PopBurst scores
// each entry once and heap-selects — O(n + k log n) instead of Pick's
// O(k·n) — which is what keeps a deep backlog drain linear per message.
// Ties (common under EB once targets saturate) break toward the earlier
// arrival, where sequential Pick breaks toward the current slice index;
// both are deterministic resolutions of equal priorities. A strategy
// outside the built-in forms falls back to sequential PopNext picks.
//
// The drops slice is a queue-owned buffer, valid until the next Prune,
// PopNext or PopBurst call.
func (q *Queue) PopBurst(s Strategy, now vtime.Millis, p Params, k int, out []*Entry) ([]*Entry, []Drop) {
	drops := q.Prune(now, p)
	if len(q.entries) == 0 || k <= 0 {
		return out, drops
	}
	ctx := q.Context(now, p)
	var score func(e *Entry) float64
	switch s := s.(type) {
	case MetricStrategy:
		score = func(e *Entry) float64 { return s.Metric(e, ctx) }
	case FIFO:
		// Seq asc ≡ score desc; exact while Seq < 2^53 (every run ever).
		score = func(e *Entry) float64 { return -float64(e.Seq) }
	case RL:
		score = func(e *Entry) float64 { return -AvgRemainingLifetime(e, ctx.Now) }
	default:
		for ; k > 0 && len(q.entries) > 0; k-- {
			i := s.Pick(q.entries, ctx)
			if i < 0 || i >= len(q.entries) {
				break
			}
			out = append(out, q.RemoveAt(i))
		}
		return out, drops
	}

	// Score every entry once, heapify, pop the k best.
	h := q.burst[:0]
	for i, e := range q.entries {
		h = append(h, burstItem{score: score(e), seq: e.Seq, idx: i})
	}
	q.burst = h
	for i := len(h)/2 - 1; i >= 0; i-- {
		burstSiftDown(h, i)
	}
	if k > len(h) {
		k = len(h)
	}
	taken := q.taken[:0]
	for i := 0; i < k; i++ {
		top := h[0]
		out = append(out, q.entries[top.idx])
		taken = append(taken, top.idx)
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		if len(h) > 0 {
			burstSiftDown(h, 0)
		}
	}
	q.taken = taken
	// Remove the taken slots in descending index order: RemoveAt swaps
	// the tail in, which only disturbs indices above the one removed —
	// all already handled. Insertion sort: k is burst-sized and the
	// stdlib sort would box two interfaces per call.
	for i := 1; i < len(taken); i++ {
		for j := i; j > 0 && taken[j] > taken[j-1]; j-- {
			taken[j], taken[j-1] = taken[j-1], taken[j]
		}
	}
	for _, i := range taken {
		q.RemoveAt(i)
	}
	return out, drops
}

// ShedWorst removes up to k entries with the lowest scheduling score —
// the messages least likely to meet their bounds under the active
// strategy — appending them to out. It is the graceful-degradation
// counterpart of PopBurst's top-k: the same single score sweep and heap
// select with the comparison inverted, so an overloaded queue sheds its
// worst prospects instead of tail-dropping whatever arrived last. Ties
// shed the later arrival (the freshest backlog goes first), and
// strategies outside the built-in score forms fall back to shedding the
// newest arrivals. The caller owns the returned entries: account and
// Release them.
func (q *Queue) ShedWorst(s Strategy, now vtime.Millis, p Params, k int, out []*Entry) []*Entry {
	if len(q.entries) == 0 || k <= 0 {
		return out
	}
	ctx := q.Context(now, p)
	var score func(e *Entry) float64
	switch s := s.(type) {
	case MetricStrategy:
		score = func(e *Entry) float64 { return s.Metric(e, ctx) }
	case FIFO:
		score = func(e *Entry) float64 { return -float64(e.Seq) }
	case RL:
		score = func(e *Entry) float64 { return -AvgRemainingLifetime(e, ctx.Now) }
	default:
		score = func(e *Entry) float64 { return -float64(e.Seq) }
	}
	h := q.burst[:0]
	for i, e := range q.entries {
		h = append(h, burstItem{score: score(e), seq: e.Seq, idx: i})
	}
	q.burst = h
	for i := len(h)/2 - 1; i >= 0; i-- {
		shedSiftDown(h, i)
	}
	if k > len(h) {
		k = len(h)
	}
	taken := q.taken[:0]
	for i := 0; i < k; i++ {
		top := h[0]
		out = append(out, q.entries[top.idx])
		taken = append(taken, top.idx)
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		if len(h) > 0 {
			shedSiftDown(h, 0)
		}
	}
	q.taken = taken
	for i := 1; i < len(taken); i++ {
		for j := i; j > 0 && taken[j] > taken[j-1]; j-- {
			taken[j], taken[j-1] = taken[j-1], taken[j]
		}
	}
	for _, i := range taken {
		q.RemoveAt(i)
	}
	return out
}

// shedLess orders ShedWorst's heap: lower score first, ties toward the
// later arrival.
func shedLess(a, b burstItem) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return a.seq > b.seq
}

func shedSiftDown(h []burstItem, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		best := l
		if r := l + 1; r < len(h) && shedLess(h[r], h[l]) {
			best = r
		}
		if !shedLess(h[best], h[i]) {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

func burstLess(a, b burstItem) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	return a.seq < b.seq
}

func burstSiftDown(h []burstItem, i int) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		best := l
		if r := l + 1; r < len(h) && burstLess(h[r], h[l]) {
			best = r
		}
		if !burstLess(h[best], h[i]) {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}
