package core

import "bdps/internal/vtime"

// Queue is one broker output queue, feeding one downstream link (§3.2,
// Figure 2: "one output queue is created for each downstream neighbor").
//
// The queue is strategy-agnostic storage: Enqueue stamps arrival order,
// Prune applies expiry and invalid-message detection, and the owner asks a
// Strategy to pick the next entry when the link frees up. Metrics are
// computed lazily at decision time because they depend on the current
// clock — priorities decay as messages age, so precomputed orderings go
// stale.
//
// FT (§5.2) is estimated exactly as the paper prescribes: "the average
// size of all messages multiplied by the mean value of the transmitting
// rate on the link", with the average taken over everything this queue
// has seen.
type Queue struct {
	// LinkMean is the believed mean per-KB transmission time of the link
	// this queue feeds, used for the FT estimate.
	LinkMean float64

	entries []*Entry
	nextSeq uint64

	enqSizeSum float64
	enqCount   int

	// Peak occupancy, for diagnostics.
	peak int
}

// NewQueue returns an empty queue for a link with the given believed mean
// rate (ms/KB).
func NewQueue(linkMean float64) *Queue {
	return &Queue{LinkMean: linkMean}
}

// Enqueue adds an entry, stamping its Seq and Enqueued fields.
func (q *Queue) Enqueue(e *Entry, now vtime.Millis) {
	e.Seq = q.nextSeq
	q.nextSeq++
	e.Enqueued = now
	q.entries = append(q.entries, e)
	q.enqSizeSum += e.SizeKB
	q.enqCount++
	if len(q.entries) > q.peak {
		q.peak = len(q.entries)
	}
}

// Len returns the number of queued entries.
func (q *Queue) Len() int { return len(q.entries) }

// Peak returns the maximum occupancy observed.
func (q *Queue) Peak() int { return q.peak }

// Entries exposes the queued entries for strategies. The slice is owned
// by the queue; callers must not grow or reorder it.
func (q *Queue) Entries() []*Entry { return q.entries }

// RemoveAt removes and returns the i-th entry in O(1) by swapping with
// the tail. Strategies identify entries by index; arrival order lives in
// Entry.Seq, so the in-slice order is free to change.
func (q *Queue) RemoveAt(i int) *Entry {
	e := q.entries[i]
	last := len(q.entries) - 1
	q.entries[i] = q.entries[last]
	q.entries[last] = nil
	q.entries = q.entries[:last]
	return e
}

// FT estimates the time to transmit one other message first: average
// enqueued size × believed link mean rate. Before any enqueue it returns
// 0 (there is no "other message" to wait for).
func (q *Queue) FT() vtime.Millis {
	if q.enqCount == 0 {
		return 0
	}
	return vtime.Millis(q.enqSizeSum / float64(q.enqCount) * q.LinkMean)
}

// Context builds the metric context for a decision at time now.
func (q *Queue) Context(now vtime.Millis, p Params) Context {
	return Context{Now: now, PD: p.PD, FT: q.FT()}
}

// DropReason classifies why Prune removed an entry.
type DropReason uint8

// Drop reasons.
const (
	// DropExpired: every target's deadline has passed (all strategies).
	DropExpired DropReason = iota
	// DropHopeless: ε-detection fired — every target's success
	// probability is below Params.Epsilon (§5.4).
	DropHopeless
)

// String implements fmt.Stringer.
func (r DropReason) String() string {
	switch r {
	case DropExpired:
		return "expired"
	case DropHopeless:
		return "hopeless"
	}
	return "unknown"
}

// Drop records one pruned entry.
type Drop struct {
	Entry  *Entry
	Reason DropReason
}

// Prune deletes expired and (when p.Epsilon > 0) hopeless entries,
// returning what was dropped. Brokers call it before every scheduling
// decision, implementing "delete as early as possible the messages in
// transit that have expired" (§1) and condition (11) of §5.4.
func (q *Queue) Prune(now vtime.Millis, p Params) []Drop {
	var drops []Drop
	for i := 0; i < len(q.entries); {
		e := q.entries[i]
		switch {
		case AllExpired(e, now):
			drops = append(drops, Drop{Entry: q.RemoveAt(i), Reason: DropExpired})
		case p.Epsilon > 0 && MaxSuccess(e, now, p.PD) < p.Epsilon:
			drops = append(drops, Drop{Entry: q.RemoveAt(i), Reason: DropHopeless})
		default:
			i++
		}
	}
	return drops
}

// PopNext prunes the queue, then lets the strategy pick and removes the
// chosen entry. It returns the entry (nil if the queue emptied) and the
// prune drops.
func (q *Queue) PopNext(s Strategy, now vtime.Millis, p Params) (*Entry, []Drop) {
	drops := q.Prune(now, p)
	if len(q.entries) == 0 {
		return nil, drops
	}
	i := s.Pick(q.entries, q.Context(now, p))
	if i < 0 || i >= len(q.entries) {
		return nil, drops
	}
	return q.RemoveAt(i), drops
}
