// Package core implements the paper's primary contribution (§5): message
// scheduling strategies for bounded-delay delivery in publish/subscribe
// broker overlays.
//
// A broker keeps one output Queue per downstream link. When the link
// becomes free, a Strategy picks the next queued Entry. The proposed
// strategies rank entries by probabilistic metrics over the residual path
// to each interested subscriber:
//
//   - EB (expected benefit): Σᵢ success(sᵢ, m) · price(sᵢ) — the earning
//     expected if the message is sent first here and on every remaining
//     broker (§5.1).
//   - PC (postponing cost): EB − EB′, where EB′ recomputes success as if
//     the message were sent second on this broker (its residual delay
//     grows by FT, the expected time to transmit one average-size
//     message); PC measures urgency (§5.2).
//   - EBPC: r·EB + (1−r)·PC, r ∈ [0,1] (§5.3).
//
// The baselines the paper compares against — FIFO and minimum remaining
// lifetime first (RL) — are implemented on the same Queue.
//
// Invalid-message detection (§5.4): a queued message is deleted when every
// target's success probability falls below ε (default 0.05% per the
// paper), and, for all strategies, when every target's deadline has
// passed.
//
// The package is deliberately substrate-free: it depends only on the time
// base and the probability layer, so the same scheduler drives both the
// discrete-event simulator and the live TCP runtime.
package core

import (
	"bdps/internal/stats"
	"bdps/internal/vtime"
)

// DefaultPD is the per-broker processing delay used throughout the
// paper's evaluation (§6.1).
const DefaultPD vtime.Millis = 2

// DefaultEpsilon is the invalid-message detection threshold ε = 0.05%
// (§5.4).
const DefaultEpsilon = 0.0005

// minSizeKB guards the division by message size in the success
// probability; no real message is smaller than one byte.
const minSizeKB = 1.0 / 1024

// Params are the broker-wide scheduling parameters.
type Params struct {
	// PD is the processing delay every broker charges per message.
	PD vtime.Millis
	// Epsilon enables invalid-message detection when > 0: a message all
	// of whose targets have success probability below Epsilon is deleted
	// from the queue.
	Epsilon float64
}

// DefaultParams returns the paper's evaluation parameters.
func DefaultParams() Params {
	return Params{PD: DefaultPD, Epsilon: DefaultEpsilon}
}

// Target is one subscriber a queued message must still reach through this
// queue's link: the absolute deadline, the price the subscriber pays for
// a valid delivery, and the residual-path statistics from the routing
// table (§4.2).
//
// In the PSD scenario the deadline derives from the publisher's bound and
// Price is 1; in the SSD scenario both come from the subscription (§5:
// "set the price ... to be 1, and change the delay requirement to be
// specified by publishers").
type Target struct {
	SubID    int32        // subscription id, for accounting
	Deadline vtime.Millis // absolute: publish time + allowed delay
	Price    float64
	Hops     int          // NN_p: remaining downstream brokers (= links)
	Rate     stats.Normal // residual path per-KB time TR_p
}

// Expired reports whether the target's deadline has passed.
func (t Target) Expired(now vtime.Millis) bool { return now > t.Deadline }

// Entry is a message waiting in an output queue, with the targets it
// serves via this queue's link. Entries are pooled (GetEntry / Release)
// and carry a metric cache (cache.go); producers that mutate Targets
// after an entry has been evaluated must call Invalidate.
type Entry struct {
	MsgID     uint64
	Seq       uint64       // arrival order within the queue (set by Enqueue)
	SizeKB    float64      // message size; propagation = SizeKB · TR
	Published vtime.Millis // publication timestamp (hdl = now − Published)
	Enqueued  vtime.Millis // when the entry joined this queue
	Targets   []Target
	Data      any // opaque payload for the embedding runtime

	cache entryCache
}

// Context carries the per-decision inputs of the metric functions.
type Context struct {
	Now vtime.Millis
	PD  vtime.Millis // per-broker processing delay
	FT  vtime.Millis // expected time to send one average message first (§5.2)
}

// SuccessProb computes success(s, m) = P(hdl + fdl ≤ adl) of §5.1 in
// absolute-time form: the message succeeds if the residual delay
// NN_p·PD + SizeKB·TR_p fits in the slack before the target's deadline.
// With TR_p ~ N(μ_p, σ_p²):
//
//	success = Φ(((deadline − now − Hops·PD)/size − μ_p)/σ_p)
//
// A non-positive slack returns 0 (transmission time cannot be negative,
// so the normal model's tiny below-zero mass is clamped away; this also
// makes expired targets contribute nothing to EB).
func SuccessProb(t Target, now vtime.Millis, sizeKB float64, pd vtime.Millis) float64 {
	slack := t.Deadline - now - float64(t.Hops)*pd
	if slack <= 0 {
		return 0
	}
	if sizeKB < minSizeKB {
		sizeKB = minSizeKB
	}
	return t.Rate.CDF(slack / sizeKB)
}

// EB is the expected benefit of sending e first (§5.1, eq. 3).
//
// This is the cached fast path: targets whose saturation time has not
// passed contribute exactly Price without an Erfc evaluation, and a
// fully saturated entry returns the precomputed price sum. The value is
// bit-identical to RefEB (proved by the equivalence suite) and memoized
// per evaluation instant.
func EB(e *Entry, ctx Context) float64 {
	c := e.metrics(ctx.PD)
	if c.ebOK && c.ebAt == ctx.Now {
		return c.eb
	}
	v := benefitAt(e, c, ctx.Now)
	c.ebOK, c.ebAt, c.eb = true, ctx.Now, v
	return v
}

// EBDelayed is EB′: the expected benefit when this broker sends the
// message second, i.e. after FT more milliseconds (§5.2, eqs. 6–8).
// Cached like EB, keyed by the delayed instant now+FT.
func EBDelayed(e *Entry, ctx Context) float64 {
	c := e.metrics(ctx.PD)
	at := ctx.Now + ctx.FT
	if c.ebdOK && c.ebdAt == at {
		return c.ebd
	}
	v := benefitAt(e, c, at)
	c.ebdOK, c.ebdAt, c.ebd = true, at, v
	return v
}

// benefitAt sums success·price at the given instant, shortcutting
// saturated targets. The summation order and every floating-point
// operation on the exact path match RefEB term for term, so the result
// is bit-identical to the naive loop (a saturated target's naive term is
// fl(1.0·Price) = Price).
func benefitAt(e *Entry, c *entryCache, at vtime.Millis) float64 {
	if at <= c.minSure {
		return c.priceSum
	}
	var sum float64
	for i := range e.Targets {
		t := &e.Targets[i]
		if at <= c.sure[i] {
			sum += t.Price
		} else {
			sum += SuccessProb(*t, at, e.SizeKB, c.pd) * t.Price
		}
	}
	return sum
}

// PC is the postponing cost EB − EB′ (§5.2, eq. 9). It is non-negative:
// delaying a send can only reduce each target's success probability.
func PC(e *Entry, ctx Context) float64 {
	return EB(e, ctx) - EBDelayed(e, ctx)
}

// EBPC combines benefit and urgency with weight r (§5.3, eq. 10).
// Algebraically r·EB + (1−r)·PC = r·EB + (1−r)·(EB − EB′) = EB − (1−r)·EB′,
// which needs each success probability once instead of twice.
func EBPC(e *Entry, ctx Context, r float64) float64 {
	return EB(e, ctx) - (1-r)*EBDelayed(e, ctx)
}

// AvgRemainingLifetime is the RL baseline's metric. A message may have one
// remaining lifetime per interested subscriber; following §6.1 the average
// is used. It can be negative when deadlines have passed.
func AvgRemainingLifetime(e *Entry, now vtime.Millis) vtime.Millis {
	if len(e.Targets) == 0 {
		return 0
	}
	var sum vtime.Millis
	for _, t := range e.Targets {
		sum += t.Deadline - now
	}
	return sum / vtime.Millis(len(e.Targets))
}

// MaxSuccess returns the largest success probability over the entry's
// targets; the invalid-message detector compares it against ε (§5.4,
// condition 11). Any saturated target pins the maximum at exactly 1.0
// (no probability exceeds 1), so the scan stops at the first one.
func MaxSuccess(e *Entry, now vtime.Millis, pd vtime.Millis) float64 {
	c := e.metrics(pd)
	if c.msOK && c.msAt == now {
		return c.ms
	}
	var best float64
	if now <= c.minSure {
		best = 1
	} else {
		for i := range e.Targets {
			if now <= c.sure[i] {
				best = 1
				break
			}
			if p := SuccessProb(e.Targets[i], now, e.SizeKB, pd); p > best {
				best = p
			}
		}
	}
	c.msOK, c.msAt, c.ms = true, now, best
	return best
}

// AllExpired reports whether every target's deadline has passed. With a
// warm cache this is one comparison against the precomputed latest
// deadline; the comparison semantics match the per-target scan exactly.
func AllExpired(e *Entry, now vtime.Millis) bool {
	if e.cache.ready {
		return now > e.cache.maxDeadline
	}
	return RefAllExpired(e, now)
}

// Viable reports whether an entry is worth enqueueing (or keeping) under
// the given parameters: not fully expired, and, when ε-detection is on,
// not hopeless.
func Viable(e *Entry, now vtime.Millis, p Params) bool {
	if len(e.Targets) == 0 {
		return false
	}
	if AllExpired(e, now) {
		return false
	}
	if p.Epsilon > 0 && MaxSuccess(e, now, p.PD) < p.Epsilon {
		return false
	}
	return true
}
