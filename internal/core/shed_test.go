package core

import (
	"testing"

	"bdps/internal/vtime"
)

// TestShedWorstRemovesLowestScored pins graceful degradation's core
// promise: under a metric strategy the shed set is the bottom-k by
// scheduling score — every shed entry scores no better than every
// survivor — so an overloaded queue gives up its worst prospects, not
// whatever happened to arrive last.
func TestShedWorstRemovesLowestScored(t *testing.T) {
	p := DefaultParams()
	now := vtime.Millis(5000)
	const n, k = 64, 16

	for _, s := range []Strategy{MaxEB{}, MaxPC{}, MaxEBPC{R: 0.5}} {
		ms := s.(MetricStrategy)
		q := burstQueue(n)
		ctx := q.Context(now, p)
		shed := q.ShedWorst(s, now, p, k, nil)
		if len(shed) != k {
			t.Fatalf("%s: shed %d entries, want %d", s.Name(), len(shed), k)
		}
		if q.Len() != n-k {
			t.Fatalf("%s: queue left with %d entries, want %d", s.Name(), q.Len(), n-k)
		}
		worstKept := q.entries[0]
		for _, e := range q.entries[1:] {
			if ms.Metric(e, ctx) < ms.Metric(worstKept, ctx) {
				worstKept = e
			}
		}
		for _, e := range shed {
			if ms.Metric(e, ctx) > ms.Metric(worstKept, ctx) {
				t.Errorf("%s: shed entry scores %g, better than kept %g",
					s.Name(), ms.Metric(e, ctx), ms.Metric(worstKept, ctx))
			}
			e.Release()
		}
	}
}

// TestShedWorstComplementsPopBurst pins the two selections as exact
// complements when scores are unique: shedding the k worst and popping
// the n-k best from identical queues must partition the entry set.
func TestShedWorstComplementsPopBurst(t *testing.T) {
	p := DefaultParams()
	now := vtime.Millis(5000)
	const n, k = 64, 16

	sq := burstQueue(n)
	shed := sq.ShedWorst(FIFO{}, now, p, k, nil)

	pq := burstQueue(n)
	popped, _ := pq.PopBurst(FIFO{}, now, p, n-k, nil)

	seen := make(map[uint64]bool, n)
	for _, e := range popped {
		seen[e.Seq] = true
		e.Release()
	}
	for _, e := range shed {
		if seen[e.Seq] {
			t.Errorf("entry seq %d both popped as best and shed as worst", e.Seq)
		}
		// FIFO's shed fallback gives up the newest arrivals first.
		if e.Seq < uint64(n-k) {
			t.Errorf("FIFO shed took seq %d, an oldest-%d entry", e.Seq, n-k)
		}
		e.Release()
	}
	if len(shed)+len(popped) != n {
		t.Errorf("shed %d + popped %d != %d", len(shed), len(popped), n)
	}
}

// TestShedWorstEdgeCases: empty queues, zero budgets and over-budget
// requests must neither panic nor leak.
func TestShedWorstEdgeCases(t *testing.T) {
	p := DefaultParams()
	q := NewQueue(70)
	if out := q.ShedWorst(MaxEB{}, 0, p, 8, nil); len(out) != 0 {
		t.Errorf("empty queue shed %d entries", len(out))
	}
	q = burstQueue(4)
	if out := q.ShedWorst(MaxEB{}, 0, p, 0, nil); len(out) != 0 {
		t.Errorf("k=0 shed %d entries", len(out))
	}
	out := q.ShedWorst(MaxEB{}, 0, p, 100, nil)
	if len(out) != 4 || q.Len() != 0 {
		t.Errorf("over-budget shed took %d, left %d; want 4 and 0", len(out), q.Len())
	}
	for _, e := range out {
		e.Release()
	}
}

// BenchmarkShedWorst measures steady-state shedding on a standing
// queue: each iteration refills what the previous shed, so the queue
// holds ~n entries throughout — the regime the pressure threshold
// actually operates in.
func BenchmarkShedWorst(b *testing.B) {
	p := DefaultParams()
	now := vtime.Millis(5000)
	const n, k = 1024, 64
	q := burstQueue(n)
	out := make([]*Entry, 0, k)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = q.ShedWorst(MaxEB{}, now, p, k, out[:0])
		for _, e := range out {
			q.Enqueue(e, now)
		}
	}
}
