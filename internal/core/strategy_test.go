package core

import (
	"math"
	"testing"

	"bdps/internal/stats"
	"bdps/internal/vtime"
)

func ctxAt(now vtime.Millis) Context {
	return Context{Now: now, PD: 2, FT: 3500}
}

func TestFIFOPicksArrivalOrderRegardlessOfSlicePosition(t *testing.T) {
	q := NewQueue(70)
	a := entry(0, target(10*vtime.Second, 1, 1))
	b := entry(0, target(10*vtime.Second, 1, 1))
	c := entry(0, target(10*vtime.Second, 1, 1))
	q.Enqueue(a, 0)
	q.Enqueue(b, 1)
	q.Enqueue(c, 2)
	// Swap-remove the head: slice order becomes [c, b].
	q.RemoveAt(0)
	i := FIFO{}.Pick(q.Entries(), ctxAt(10))
	if q.Entries()[i] != b {
		t.Error("FIFO must follow Seq, not slice position")
	}
}

func TestFIFOEmpty(t *testing.T) {
	if got := (FIFO{}).Pick(nil, ctxAt(0)); got != -1 {
		t.Errorf("empty pick = %d, want -1", got)
	}
}

func TestRLPicksShortestLifetime(t *testing.T) {
	es := []*Entry{
		entry(0, target(30*vtime.Second, 1, 1)),
		entry(0, target(10*vtime.Second, 1, 1)), // most urgent
		entry(0, target(20*vtime.Second, 1, 1)),
	}
	if got := (RL{}).Pick(es, ctxAt(0)); got != 1 {
		t.Errorf("RL pick = %d, want 1", got)
	}
}

func TestRLUsesAverageAcrossTargets(t *testing.T) {
	es := []*Entry{
		entry(0, target(10*vtime.Second, 1, 1), target(50*vtime.Second, 1, 1)), // avg 30s
		entry(0, target(25*vtime.Second, 1, 1)),                                // avg 25s
	}
	if got := (RL{}).Pick(es, ctxAt(0)); got != 1 {
		t.Errorf("RL pick = %d, want 1 (average lifetime)", got)
	}
}

func TestMaxEBPrefersMoreSubscribers(t *testing.T) {
	es := []*Entry{
		entry(0, target(30*vtime.Second, 1, 1)),
		entry(0, target(30*vtime.Second, 1, 1), target(30*vtime.Second, 1, 1)),
	}
	if got := (MaxEB{}).Pick(es, ctxAt(0)); got != 1 {
		t.Errorf("EB pick = %d, want the 2-subscriber entry", got)
	}
}

func TestMaxEBPrefersHigherPrice(t *testing.T) {
	es := []*Entry{
		entry(0, target(30*vtime.Second, 1, 1)),
		entry(0, target(30*vtime.Second, 3, 1)),
	}
	if got := (MaxEB{}).Pick(es, ctxAt(0)); got != 1 {
		t.Errorf("EB pick = %d, want the price-3 entry", got)
	}
}

func TestMaxEBPrefersFeasibleOverDoomed(t *testing.T) {
	es := []*Entry{
		entry(0, target(1500, 1, 2)), // ~7s residual vs 1.5s slack: doomed
		entry(0, target(30*vtime.Second, 1, 2)),
	}
	if got := (MaxEB{}).Pick(es, ctxAt(0)); got != 1 {
		t.Errorf("EB pick = %d, want the feasible entry", got)
	}
}

func TestMaxPCPrefersUrgent(t *testing.T) {
	// Safe: 60s slack. Urgent: ~4.2s slack with FT 3.5s — postponing it
	// costs real success probability.
	es := []*Entry{
		entry(0, target(60*vtime.Second, 1, 1)),
		entry(0, target(4200, 1, 1)),
	}
	if got := (MaxPC{}).Pick(es, ctxAt(0)); got != 1 {
		t.Errorf("PC pick = %d, want the urgent entry", got)
	}
}

func TestEBAndPCDisagreeOnSafeRichMessage(t *testing.T) {
	// The scenario §5.2 motivates: a message with high success (rich but
	// safe) vs a borderline one. EB picks the safe rich one; PC picks the
	// urgent one.
	es := []*Entry{
		entry(0, target(60*vtime.Second, 2, 1)), // safe, high benefit
		entry(0, target(4200, 1, 1)),            // urgent, lower benefit
	}
	ctx := ctxAt(0)
	if got := (MaxEB{}).Pick(es, ctx); got != 0 {
		t.Errorf("EB pick = %d, want safe rich entry", got)
	}
	if got := (MaxPC{}).Pick(es, ctx); got != 1 {
		t.Errorf("PC pick = %d, want urgent entry", got)
	}
}

func TestMaxEBPCEndpointsMatchEBandPC(t *testing.T) {
	es := []*Entry{
		entry(0, target(60*vtime.Second, 2, 1)),
		entry(0, target(4200, 1, 1)),
		entry(0, target(12*vtime.Second, 1, 2)),
	}
	ctx := ctxAt(0)
	if (MaxEBPC{R: 1}).Pick(es, ctx) != (MaxEB{}).Pick(es, ctx) {
		t.Error("EBPC(r=1) must agree with EB")
	}
	if (MaxEBPC{R: 0}).Pick(es, ctx) != (MaxPC{}).Pick(es, ctx) {
		t.Error("EBPC(r=0) must agree with PC")
	}
}

func TestStrategiesDeterministicTieBreak(t *testing.T) {
	// Identical entries: every strategy must pick index 0.
	mk := func() *Entry { return entry(0, target(30*vtime.Second, 1, 1)) }
	es := []*Entry{mk(), mk(), mk()}
	// Give them distinct seqs as a queue would.
	for i, e := range es {
		e.Seq = uint64(i)
	}
	ctx := ctxAt(0)
	for _, s := range Strategies(0.5) {
		if got := s.Pick(es, ctx); got != 0 {
			t.Errorf("%s tie-break pick = %d, want 0", s.Name(), got)
		}
	}
}

func TestStrategiesEmptyPick(t *testing.T) {
	for _, s := range Strategies(0.5) {
		if got := s.Pick(nil, ctxAt(0)); got != -1 {
			t.Errorf("%s empty pick = %d, want -1", s.Name(), got)
		}
	}
}

func TestParseStrategy(t *testing.T) {
	cases := map[string]string{
		"fifo":     "FIFO",
		"FIFO":     "FIFO",
		"rl":       "RL",
		"eb":       "EB",
		"pc":       "PC",
		"ebpc":     "EBPC(r=0.50)",
		"ebpc:0.7": "EBPC(r=0.70)",
		" eb ":     "EB",
	}
	for in, want := range cases {
		s, err := ParseStrategy(in)
		if err != nil {
			t.Errorf("ParseStrategy(%q): %v", in, err)
			continue
		}
		if s.Name() != want {
			t.Errorf("ParseStrategy(%q).Name() = %q, want %q", in, s.Name(), want)
		}
	}
	for _, bad := range []string{"", "lifo", "ebpc:", "ebpc:1.5", "ebpc:x", "ebpc:-0.1"} {
		if _, err := ParseStrategy(bad); err == nil {
			t.Errorf("ParseStrategy(%q) should fail", bad)
		}
	}
}

func TestStrategiesList(t *testing.T) {
	ss := Strategies(0.3)
	if len(ss) != 5 {
		t.Fatalf("Strategies returns %d, want 5", len(ss))
	}
	if ebpc, ok := ss[2].(MaxEBPC); !ok || ebpc.R != 0.3 {
		t.Error("third strategy should be EBPC with the given weight")
	}
}

// TestScheduleScenarioEndToEnd drives one queue through a congested
// moment and checks that EB outperforms FIFO in delivered benefit under
// the same arrivals — the core claim of the paper in miniature.
func TestScheduleScenarioEndToEnd(t *testing.T) {
	run := func(s Strategy) (delivered float64) {
		q := NewQueue(70)
		p := DefaultParams()
		now := vtime.Millis(0)
		// Ten messages arrive at once; deadlines interleave feasible and
		// infeasible; the link sends one message every 3.5 s.
		for i := 0; i < 10; i++ {
			deadline := vtime.Millis(6000 + 4000*(i%5))
			q.Enqueue(entry(0, Target{
				Deadline: deadline, Price: 1, Hops: 1,
				Rate: stats.Normal{Mean: 70, Sigma: 20},
			}), now)
		}
		for q.Len() > 0 {
			e, _ := q.PopNext(s, now, p)
			if e == nil {
				break
			}
			// Deterministic link: transmission takes the mean time.
			arrival := now + vtime.Millis(e.SizeKB*70)
			for _, tg := range e.Targets {
				if arrival+2 <= tg.Deadline {
					delivered += tg.Price
				}
			}
			now = arrival
		}
		return delivered
	}
	eb := run(MaxEB{})
	fifo := run(FIFO{})
	rl := run(RL{})
	if eb < fifo {
		t.Errorf("EB delivered %v, FIFO %v — EB should not lose", eb, fifo)
	}
	if eb < rl {
		t.Errorf("EB delivered %v, RL %v — EB should not lose", eb, rl)
	}
	if math.Abs(eb) < 1 {
		t.Error("scenario should deliver something under EB")
	}
}
