package core

import "sync"

// entryPool recycles Entry objects (and their Targets / cache backing
// arrays) across messages. One broker builds one entry per (message,
// next hop); at paper-scale traffic that dominated the scheduler's
// allocation profile before pooling.
var entryPool = sync.Pool{New: func() any { return new(Entry) }}

// GetEntry returns an empty Entry from the pool. Targets has length zero
// but retains the capacity of its previous life, so producers appending
// targets allocate only while an entry grows past anything seen before.
func GetEntry() *Entry { return entryPool.Get().(*Entry) }

// Release resets the entry and returns it to the pool. The caller must
// be the sole owner: entries handed to a Queue are owned by the queue
// until PopNext or Prune hands them back (queue drops are released by
// the runtime that consumes them). Release clears Data so pooled entries
// never pin a message alive.
func (e *Entry) Release() {
	e.MsgID, e.Seq = 0, 0
	e.SizeKB, e.Published, e.Enqueued = 0, 0, 0
	e.Targets = e.Targets[:0]
	e.Data = nil
	e.cache.ready = false
	entryPool.Put(e)
}
