package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Strategy selects which queued entry a broker sends next. Pick returns
// an index into entries, or -1 when entries is empty. Implementations
// must be deterministic: ties break toward the lower index (and FIFO
// toward the lower sequence number), so simulation runs are reproducible.
type Strategy interface {
	Name() string
	Pick(entries []*Entry, ctx Context) int
}

// MetricStrategy is implemented by strategies whose Pick maximizes a
// per-entry metric (EB, PC, EBPC). Metric exposes that metric through
// the cached fast path for diagnostics and for the equivalence suite,
// which asserts it bit-matches the naive reference; FIFO and RL rank by
// arrival order and remaining lifetime and are deliberately not
// MetricStrategies.
type MetricStrategy interface {
	Strategy
	Metric(e *Entry, ctx Context) float64
}

// FIFO sends in arrival order — the first traditional baseline of §6.
type FIFO struct{}

// Name implements Strategy.
func (FIFO) Name() string { return "FIFO" }

// Pick implements Strategy: minimum sequence number.
func (FIFO) Pick(entries []*Entry, _ Context) int {
	best := -1
	for i, e := range entries {
		if best < 0 || e.Seq < entries[best].Seq {
			best = i
		}
	}
	return best
}

// RL sends the message with the minimum (average) remaining lifetime
// first — the second traditional baseline of §6. With several interested
// subscribers the average of the per-subscription lifetimes is used
// (§6.1).
type RL struct{}

// Name implements Strategy.
func (RL) Name() string { return "RL" }

// Pick implements Strategy: minimum average remaining lifetime.
func (RL) Pick(entries []*Entry, ctx Context) int {
	best := -1
	var bestRL float64
	for i, e := range entries {
		rl := AvgRemainingLifetime(e, ctx.Now)
		if best < 0 || rl < bestRL {
			best, bestRL = i, rl
		}
	}
	return best
}

// MaxEB implements maximum expected benefit first (§5.1).
type MaxEB struct{}

// Name implements Strategy.
func (MaxEB) Name() string { return "EB" }

// Metric implements MetricStrategy.
func (MaxEB) Metric(e *Entry, ctx Context) float64 { return EB(e, ctx) }

// Pick implements Strategy: maximum EB.
func (MaxEB) Pick(entries []*Entry, ctx Context) int {
	best := -1
	var bestV float64
	for i, e := range entries {
		v := EB(e, ctx)
		if best < 0 || v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// MaxPC implements maximum postponing cost first (§5.2).
type MaxPC struct{}

// Name implements Strategy.
func (MaxPC) Name() string { return "PC" }

// Metric implements MetricStrategy.
func (MaxPC) Metric(e *Entry, ctx Context) float64 { return PC(e, ctx) }

// Pick implements Strategy: maximum PC.
func (MaxPC) Pick(entries []*Entry, ctx Context) int {
	best := -1
	var bestV float64
	for i, e := range entries {
		v := PC(e, ctx)
		if best < 0 || v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// MaxEBPC implements maximum EBPC first with weight R (§5.3). R = 1
// degenerates to MaxEB, R = 0 to MaxPC.
type MaxEBPC struct {
	R float64
}

// Name implements Strategy.
func (s MaxEBPC) Name() string { return fmt.Sprintf("EBPC(r=%.2f)", s.R) }

// Metric implements MetricStrategy.
func (s MaxEBPC) Metric(e *Entry, ctx Context) float64 { return EBPC(e, ctx, s.R) }

// Pick implements Strategy: maximum r·EB + (1−r)·PC.
func (s MaxEBPC) Pick(entries []*Entry, ctx Context) int {
	best := -1
	var bestV float64
	for i, e := range entries {
		v := EBPC(e, ctx, s.R)
		if best < 0 || v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// ParseStrategy resolves a CLI/config name: "fifo", "rl", "eb", "pc",
// "ebpc" (default r = 0.5) or "ebpc:<r>".
func ParseStrategy(name string) (Strategy, error) {
	s := strings.ToLower(strings.TrimSpace(name))
	switch {
	case s == "fifo":
		return FIFO{}, nil
	case s == "rl":
		return RL{}, nil
	case s == "eb":
		return MaxEB{}, nil
	case s == "pc":
		return MaxPC{}, nil
	case s == "ebpc":
		return MaxEBPC{R: 0.5}, nil
	case strings.HasPrefix(s, "ebpc:"):
		r, err := strconv.ParseFloat(s[len("ebpc:"):], 64)
		if err != nil || r < 0 || r > 1 {
			return nil, fmt.Errorf("core: bad EBPC weight in %q (want ebpc:<r> with r in [0,1])", name)
		}
		return MaxEBPC{R: r}, nil
	}
	return nil, fmt.Errorf("core: unknown strategy %q (want fifo, rl, eb, pc, ebpc[:r])", name)
}

// Strategies returns the paper's five strategies with the given EBPC
// weight, in the order they appear in the evaluation.
func Strategies(r float64) []Strategy {
	return []Strategy{MaxEB{}, MaxPC{}, MaxEBPC{R: r}, FIFO{}, RL{}}
}
