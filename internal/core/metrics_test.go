package core

import (
	"math"
	"testing"
	"testing/quick"

	"bdps/internal/stats"
	"bdps/internal/vtime"
)

// target builds a Target with the paper's canonical shape: deadline in
// absolute ms, residual path of hops links each N(70, 20²) ms/KB.
func target(deadline vtime.Millis, price float64, hops int) Target {
	return Target{
		Deadline: deadline,
		Price:    price,
		Hops:     hops,
		Rate:     stats.Normal{Mean: 70 * float64(hops), Sigma: 20 * math.Sqrt(float64(hops))},
	}
}

func entry(published vtime.Millis, targets ...Target) *Entry {
	return &Entry{SizeKB: 50, Published: published, Targets: targets}
}

func TestSuccessProbHandComputed(t *testing.T) {
	// One hop left: rate N(70,20), PD=2ms, size 50KB, deadline 10s,
	// now = 2s. slack = 10000-2000-2 = 7998 ms; x = 159.96 ms/KB;
	// z = (159.96-70)/20 = 4.498 → Φ ≈ 0.999996...
	tg := target(10*vtime.Second, 1, 1)
	got := SuccessProb(tg, 2*vtime.Second, 50, 2)
	want := stats.StdNormalCDF((7998.0/50 - 70) / 20)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("SuccessProb = %v, want %v", got, want)
	}
	if got < 0.99999 {
		t.Errorf("comfortable slack should be near-certain, got %v", got)
	}
}

func TestSuccessProbTightDeadline(t *testing.T) {
	// slack exactly matches the mean: success should be 0.5.
	tg := Target{Deadline: 1000, Hops: 1, Rate: stats.Normal{Mean: 10, Sigma: 2}, Price: 1}
	// slack = 1000 - now - 2; want slack/size = 10 → slack = 500 with
	// size 50 → now = 498.
	got := SuccessProb(tg, 498, 50, 2)
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("success at mean slack = %v, want 0.5", got)
	}
}

func TestSuccessProbExpiredIsZero(t *testing.T) {
	tg := target(1000, 1, 1)
	if got := SuccessProb(tg, 1001, 50, 2); got != 0 {
		t.Errorf("expired target success = %v, want 0", got)
	}
	// Slack consumed entirely by processing delay.
	tg2 := Target{Deadline: 1000, Hops: 3, Rate: stats.Normal{Mean: 70, Sigma: 20}}
	if got := SuccessProb(tg2, 994, 50, 2); got != 0 {
		t.Errorf("PD-consumed slack success = %v, want 0", got)
	}
}

func TestSuccessProbMonotoneInTime(t *testing.T) {
	// Success can only decay as the message ages.
	tg := target(30*vtime.Second, 1, 3)
	prev := 1.1
	for now := vtime.Millis(0); now <= 31*vtime.Second; now += 500 {
		p := SuccessProb(tg, now, 50, 2)
		if p > prev+1e-15 {
			t.Fatalf("success increased at t=%v: %v > %v", now, p, prev)
		}
		prev = p
	}
}

func TestSuccessProbMonotoneQuick(t *testing.T) {
	prop := func(deadlineS, nowS, dtS float64, hops uint8) bool {
		if anyBad(deadlineS, nowS, dtS) {
			return true
		}
		deadline := math.Mod(math.Abs(deadlineS), 60) * vtime.Second
		now := math.Mod(math.Abs(nowS), 60) * vtime.Second
		dt := math.Mod(math.Abs(dtS), 10) * vtime.Second
		h := int(hops%4) + 1
		tg := target(deadline, 1, h)
		p1 := SuccessProb(tg, now, 50, 2)
		p2 := SuccessProb(tg, now+dt, 50, 2)
		return p2 <= p1+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func anyBad(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}

func TestSuccessProbTinySizeGuard(t *testing.T) {
	tg := target(10*vtime.Second, 1, 1)
	if got := SuccessProb(tg, 0, 0, 2); math.IsNaN(got) || got <= 0 {
		t.Errorf("zero-size message should still compute: %v", got)
	}
}

func TestEBSumsPriceWeightedSuccess(t *testing.T) {
	// Two certain targets with prices 3 and 2 → EB ≈ 5; one expired
	// target adds nothing.
	e := entry(0,
		target(60*vtime.Second, 3, 1),
		target(60*vtime.Second, 2, 1),
		target(1, 7, 1), // expired at now=10s
	)
	ctx := Context{Now: 10 * vtime.Second, PD: 2}
	got := EB(e, ctx)
	if got < 4.99 || got > 5 {
		t.Errorf("EB = %v, want ≈5", got)
	}
}

func TestEBMonotoneInPrice(t *testing.T) {
	ctx := Context{Now: 0, PD: 2}
	cheap := entry(0, target(20*vtime.Second, 1, 2))
	dear := entry(0, target(20*vtime.Second, 3, 2))
	if EB(cheap, ctx) >= EB(dear, ctx) {
		t.Error("EB must grow with price")
	}
}

func TestEBMonotoneInSubscriberCount(t *testing.T) {
	ctx := Context{Now: 0, PD: 2}
	one := entry(0, target(20*vtime.Second, 1, 2))
	two := entry(0, target(20*vtime.Second, 1, 2), target(20*vtime.Second, 1, 2))
	if EB(two, ctx) <= EB(one, ctx) {
		t.Error("EB must grow with matched subscriptions")
	}
}

func TestPCNonNegativeAndZeroFT(t *testing.T) {
	e := entry(0, target(12*vtime.Second, 1, 2))
	ctx := Context{Now: 4 * vtime.Second, PD: 2, FT: 3500}
	if pc := PC(e, ctx); pc < 0 {
		t.Errorf("PC = %v, must be >= 0", pc)
	}
	ctx.FT = 0
	if pc := PC(e, ctx); pc != 0 {
		t.Errorf("PC with FT=0 = %v, want 0", pc)
	}
}

func TestPCQuickNonNegative(t *testing.T) {
	prop := func(deadlineS, nowS, ftS float64, hops uint8) bool {
		if anyBad(deadlineS, nowS, ftS) {
			return true
		}
		deadline := math.Mod(math.Abs(deadlineS), 60) * vtime.Second
		now := math.Mod(math.Abs(nowS), 60) * vtime.Second
		ft := math.Mod(math.Abs(ftS), 10) * vtime.Second
		e := entry(0, target(deadline, 2, int(hops%4)+1))
		return PC(e, Context{Now: now, PD: 2, FT: ft}) >= -1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPCUrgencyOrdering(t *testing.T) {
	// A safe message (huge slack) has tiny PC; a borderline one has large
	// PC: postponing it genuinely risks missing the deadline.
	ctx := Context{Now: 0, PD: 2, FT: 3500}
	safe := entry(0, target(60*vtime.Second, 1, 1))
	urgent := entry(0, target(4200, 1, 1)) // slack ≈ 4.2 s vs 3.5 s send time
	if PC(safe, ctx) >= PC(urgent, ctx) {
		t.Errorf("urgent PC (%v) must exceed safe PC (%v)",
			PC(urgent, ctx), PC(safe, ctx))
	}
}

func TestEBPCEndpoints(t *testing.T) {
	e := entry(0, target(12*vtime.Second, 2, 2), target(8*vtime.Second, 1, 1))
	ctx := Context{Now: 3 * vtime.Second, PD: 2, FT: 3000}
	if got, want := EBPC(e, ctx, 1), EB(e, ctx); math.Abs(got-want) > 1e-12 {
		t.Errorf("EBPC(r=1) = %v, want EB = %v", got, want)
	}
	if got, want := EBPC(e, ctx, 0), PC(e, ctx); math.Abs(got-want) > 1e-12 {
		t.Errorf("EBPC(r=0) = %v, want PC = %v", got, want)
	}
	mid := EBPC(e, ctx, 0.5)
	if math.Abs(mid-(0.5*EB(e, ctx)+0.5*PC(e, ctx))) > 1e-12 {
		t.Errorf("EBPC(r=0.5) = %v not the midpoint", mid)
	}
}

func TestAvgRemainingLifetime(t *testing.T) {
	e := entry(0, target(10*vtime.Second, 1, 1), target(30*vtime.Second, 1, 1))
	if got := AvgRemainingLifetime(e, 5*vtime.Second); got != 15*vtime.Second {
		t.Errorf("avg RL = %v, want 15s", got)
	}
	// Negative when expired.
	if got := AvgRemainingLifetime(e, 40*vtime.Second); got >= 0 {
		t.Errorf("avg RL after deadlines = %v, want negative", got)
	}
	if got := AvgRemainingLifetime(&Entry{}, 0); got != 0 {
		t.Errorf("no-target RL = %v, want 0", got)
	}
}

func TestMaxSuccessAndViable(t *testing.T) {
	p := DefaultParams()
	fresh := entry(0, target(30*vtime.Second, 1, 2))
	if !Viable(fresh, 0, p) {
		t.Error("fresh entry should be viable")
	}
	if MaxSuccess(fresh, 0, p.PD) < 0.99 {
		t.Error("fresh entry should be near-certain")
	}

	expired := entry(0, target(1*vtime.Second, 1, 2))
	if Viable(expired, 2*vtime.Second, p) {
		t.Error("expired entry should not be viable")
	}

	// Hopeless but not expired: deadline in 1.2s, but residual needs
	// ~7s (2 hops × 70 ms/KB × 50 KB).
	hopeless := entry(0, target(1200, 1, 2))
	if Viable(hopeless, 0, p) {
		t.Error("hopeless entry should fail ε-detection")
	}
	// Same entry with ε disabled is viable (not expired yet).
	if !Viable(hopeless, 0, Params{PD: 2}) {
		t.Error("with ε=0 only expiry matters")
	}

	if Viable(&Entry{}, 0, p) {
		t.Error("entry with no targets is never viable")
	}
}

func TestViableEpsilonBoundary(t *testing.T) {
	p := Params{PD: 2, Epsilon: 0.0005}
	// Construct a target whose success is just above/below ε by tuning
	// the deadline around z = Φ⁻¹(ε) ≈ -3.29.
	z := stats.StdNormalQuantile(p.Epsilon)
	mean, sigma, size := 70.0, 20.0, 50.0
	xAt := mean + z*sigma                    // per-KB budget hitting ε exactly
	deadlineAt := vtime.Millis(xAt*size) + 2 // slack = deadline - 0 - 1·PD
	above := entry(0, Target{Deadline: deadlineAt + 50, Price: 1, Hops: 1,
		Rate: stats.Normal{Mean: mean, Sigma: sigma}})
	below := entry(0, Target{Deadline: deadlineAt - 50, Price: 1, Hops: 1,
		Rate: stats.Normal{Mean: mean, Sigma: sigma}})
	if !Viable(above, 0, p) {
		t.Error("entry just above ε should be viable")
	}
	if Viable(below, 0, p) {
		t.Error("entry just below ε should be pruned")
	}
}

func TestTargetExpired(t *testing.T) {
	tg := target(1000, 1, 1)
	if tg.Expired(1000) {
		t.Error("not expired exactly at deadline")
	}
	if !tg.Expired(1000.5) {
		t.Error("expired just after deadline")
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.PD != 2 || p.Epsilon != 0.0005 {
		t.Errorf("defaults = %+v, want PD=2ms ε=0.0005", p)
	}
}
