package core

// Equivalence suite for ISSUE 1: the cached fast paths (cache.go,
// core.go, queue.go) must return bit-identical values — and therefore
// make byte-identical scheduling decisions — to the retained naive
// reference implementations (reference.go), across randomized workloads
// spanning the saturated, transition, expired and σ=0 regimes.

import (
	"math"
	"math/rand"
	"testing"

	"bdps/internal/stats"
	"bdps/internal/vtime"
)

// randTarget draws a target covering every regime the fast paths
// special-case: point-mass rates (σ=0), zero hops, deadlines from
// already-expired to deeply saturated.
func randTarget(r *rand.Rand) Target {
	sigma := 5 + 35*r.Float64()
	if r.Intn(8) == 0 {
		sigma = 0
	}
	return Target{
		SubID:    int32(r.Intn(200)),
		Deadline: vtime.Millis(r.Float64() * 120 * vtime.Second),
		Price:    []float64{1, 1, 2, 3}[r.Intn(4)],
		Hops:     r.Intn(4),
		Rate:     stats.Normal{Mean: 20 + 230*r.Float64(), Sigma: sigma},
	}
}

func randEntry(r *rand.Rand, id uint64) *Entry {
	e := &Entry{
		MsgID:  id,
		SizeKB: []float64{0, 0.5, 10, 50, 100}[r.Intn(5)],
	}
	for i, n := 0, r.Intn(5); i < n; i++ {
		e.Targets = append(e.Targets, randTarget(r))
	}
	return e
}

// randNow mixes uniform instants with instants placed right around a
// target's deadline and saturation boundary (for the given processing
// delay), where the fast paths switch regimes.
func randNow(r *rand.Rand, e *Entry, pd vtime.Millis) vtime.Millis {
	if len(e.Targets) > 0 && r.Intn(2) == 0 {
		t := e.Targets[r.Intn(len(e.Targets))]
		edge := t.Deadline
		if r.Intn(2) == 0 {
			size := e.SizeKB
			if size < minSizeKB {
				size = minSizeKB
			}
			edge = t.Deadline - float64(t.Hops)*pd -
				size*(t.Rate.Mean+stats.SureSigmas*t.Rate.Sigma)
		}
		return edge + vtime.Millis(r.NormFloat64()*100)
	}
	return vtime.Millis(r.Float64() * 130 * vtime.Second)
}

// randPD draws a processing delay, mostly the paper's 2 ms but often
// enough something else that the cache's pd-staleness rebuild runs.
func randPD(r *rand.Rand) vtime.Millis {
	return []vtime.Millis{0, 1, 2, 2, 5}[r.Intn(5)]
}

func bitsEq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func TestMetricEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5000; trial++ {
		e := randEntry(r, uint64(trial))
		pd := randPD(r)
		ctx := Context{
			Now: randNow(r, e, pd),
			PD:  pd,
			FT:  vtime.Millis(r.Float64() * 8000),
		}
		check := func(when string) {
			t.Helper()
			if got, want := EB(e, ctx), RefEB(e, ctx); !bitsEq(got, want) {
				t.Fatalf("trial %d (%s): EB = %v, ref %v", trial, when, got, want)
			}
			if got, want := EBDelayed(e, ctx), RefEBDelayed(e, ctx); !bitsEq(got, want) {
				t.Fatalf("trial %d (%s): EBDelayed = %v, ref %v", trial, when, got, want)
			}
			if got, want := PC(e, ctx), RefPC(e, ctx); !bitsEq(got, want) {
				t.Fatalf("trial %d (%s): PC = %v, ref %v", trial, when, got, want)
			}
			for _, w := range []float64{0, 0.3, 0.5, 1} {
				if got, want := EBPC(e, ctx, w), RefEBPC(e, ctx, w); !bitsEq(got, want) {
					t.Fatalf("trial %d (%s): EBPC(%v) = %v, ref %v", trial, when, w, got, want)
				}
			}
			if got, want := MaxSuccess(e, ctx.Now, ctx.PD), RefMaxSuccess(e, ctx.Now, ctx.PD); !bitsEq(got, want) {
				t.Fatalf("trial %d (%s): MaxSuccess = %v, ref %v", trial, when, got, want)
			}
			if got, want := AllExpired(e, ctx.Now), RefAllExpired(e, ctx.Now); got != want {
				t.Fatalf("trial %d (%s): AllExpired = %v, ref %v", trial, when, got, want)
			}
			p := Params{PD: ctx.PD, Epsilon: DefaultEpsilon}
			if got, want := Viable(e, ctx.Now, p), RefViable(e, ctx.Now, p); got != want {
				t.Fatalf("trial %d (%s): Viable = %v, ref %v", trial, when, got, want)
			}
		}
		check("cold cache")
		check("memo hit")
		// A different FT must not be served from the stale EB′ memo.
		ctx.FT = vtime.Millis(r.Float64() * 8000)
		check("new FT")
		// A different PD must rebuild the invariants, not reuse them.
		ctx.PD = ctx.PD + 1
		check("new PD")
		ctx.PD = pd
		check("back to old PD")
		// Mutation + Invalidate must fully refresh the invariants.
		if len(e.Targets) > 0 {
			e.Targets[r.Intn(len(e.Targets))].Deadline = vtime.Millis(r.Float64() * 120 * vtime.Second)
			e.Invalidate()
			check("after mutation")
		}
	}
}

func TestPickEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	strategies := []Strategy{
		FIFO{}, RL{}, MaxEB{}, MaxPC{},
		MaxEBPC{R: 0}, MaxEBPC{R: 0.25}, MaxEBPC{R: 0.5}, MaxEBPC{R: 1},
	}
	for trial := 0; trial < 800; trial++ {
		n := 1 + r.Intn(40)
		entries := make([]*Entry, n)
		for i := range entries {
			entries[i] = randEntry(r, uint64(i))
			entries[i].Seq = uint64(i)
		}
		pd := randPD(r)
		ctx := Context{
			Now: randNow(r, entries[r.Intn(n)], pd),
			PD:  pd,
			FT:  vtime.Millis(r.Float64() * 8000),
		}
		for _, s := range strategies {
			got := s.Pick(entries, ctx)
			want := Reference(s).Pick(entries, ctx)
			if got != want {
				t.Fatalf("trial %d: %s.Pick = %d, reference %d", trial, s.Name(), got, want)
			}
			// The MetricStrategy accessor must expose the same cached
			// metric Pick ranks by, bit-identical to the reference.
			if ms, ok := s.(MetricStrategy); ok {
				e := entries[r.Intn(n)]
				if gotM, wantM := ms.Metric(e, ctx), refMetric(s, e, ctx); !bitsEq(gotM, wantM) {
					t.Fatalf("trial %d: %s.Metric = %v, reference %v", trial, s.Name(), gotM, wantM)
				}
			}
		}
	}
}

// refMetric is the naive counterpart of MetricStrategy.Metric.
func refMetric(s Strategy, e *Entry, ctx Context) float64 {
	switch s := s.(type) {
	case MaxEB:
		return RefEB(e, ctx)
	case MaxPC:
		return RefPC(e, ctx)
	case MaxEBPC:
		return RefEBPC(e, ctx, s.R)
	}
	panic("refMetric: not a MetricStrategy")
}

// clone deep-copies an entry without its cache, so mirrored queues share
// no state.
func clone(e *Entry) *Entry {
	c := &Entry{
		MsgID:     e.MsgID,
		SizeKB:    e.SizeKB,
		Published: e.Published,
	}
	c.Targets = append(c.Targets, e.Targets...)
	return c
}

// naivePrune is Prune recomputed with the reference metrics and the
// same swap-remove traversal, so both drop decisions and resulting
// queue order must match the optimized Prune exactly.
func naivePrune(q *Queue, now vtime.Millis, p Params) []Drop {
	var drops []Drop
	for i := 0; i < q.Len(); {
		e := q.Entries()[i]
		switch {
		case RefAllExpired(e, now):
			drops = append(drops, Drop{Entry: q.RemoveAt(i), Reason: DropExpired})
		case p.Epsilon > 0 && RefMaxSuccess(e, now, p.PD) < p.Epsilon:
			drops = append(drops, Drop{Entry: q.RemoveAt(i), Reason: DropHopeless})
		default:
			i++
		}
	}
	return drops
}

func sameDrops(t *testing.T, trial int, got, want []Drop) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("trial %d: %d drops, reference %d", trial, len(got), len(want))
	}
	for i := range got {
		if got[i].Entry.MsgID != want[i].Entry.MsgID || got[i].Reason != want[i].Reason {
			t.Fatalf("trial %d: drop %d = (%d,%v), reference (%d,%v)", trial, i,
				got[i].Entry.MsgID, got[i].Reason, want[i].Entry.MsgID, want[i].Reason)
		}
	}
}

func sameOrder(t *testing.T, trial int, got, want *Queue) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("trial %d: len %d, reference %d", trial, got.Len(), want.Len())
	}
	for i := range got.Entries() {
		if got.Entries()[i].MsgID != want.Entries()[i].MsgID {
			t.Fatalf("trial %d: slot %d holds msg %d, reference %d", trial, i,
				got.Entries()[i].MsgID, want.Entries()[i].MsgID)
		}
	}
}

// TestPruneEquivalence steps mirrored queues through interleaved
// enqueues and prunes — including the tiny time steps that exercise the
// O(1) skip window — and demands identical drops and identical
// surviving order at every step.
func TestPruneEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		fast, naive := NewQueue(70), NewQueue(70)
		p := DefaultParams()
		p.PD = randPD(r)
		if r.Intn(4) == 0 {
			p.Epsilon = 0
		}
		now := vtime.Millis(0)
		nextID := uint64(0)
		for step := 0; step < 60; step++ {
			switch r.Intn(3) {
			case 0: // enqueue the same entry into both queues
				e := randEntry(r, nextID)
				nextID++
				fast.Enqueue(e, now)
				naive.Enqueue(clone(e), now)
			default: // advance (often by a little, to hit the skip) and prune
				if r.Intn(2) == 0 {
					now += vtime.Millis(r.Float64() * 50)
				} else {
					now += vtime.Millis(r.Float64() * 20 * vtime.Second)
				}
				sameDrops(t, trial, fast.Prune(now, p), naivePrune(naive, now, p))
				sameOrder(t, trial, fast, naive)
			}
		}
	}
}

// TestPopNextDrainEquivalence drains mirrored queues to empty under
// every strategy: optimized PopNext vs naive prune + reference pick.
// The popped sequence and every drop must coincide.
func TestPopNextDrainEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	strategies := []Strategy{FIFO{}, RL{}, MaxEB{}, MaxPC{}, MaxEBPC{R: 0.5}}
	for trial := 0; trial < 120; trial++ {
		s := strategies[trial%len(strategies)]
		fast, naive := NewQueue(70), NewQueue(70)
		p := DefaultParams()
		p.PD = randPD(r)
		now := vtime.Millis(0)
		for i := 0; i < 1+r.Intn(30); i++ {
			e := randEntry(r, uint64(i))
			fast.Enqueue(e, now)
			naive.Enqueue(clone(e), now)
		}
		for steps := 0; fast.Len() > 0 || naive.Len() > 0; steps++ {
			if steps > 1000 {
				t.Fatalf("trial %d: drain did not terminate", trial)
			}
			got, gotDrops := fast.PopNext(s, now, p)
			wantDrops := naivePrune(naive, now, p)
			var want *Entry
			if naive.Len() > 0 {
				if i := Reference(s).Pick(naive.Entries(), naive.Context(now, p)); i >= 0 {
					want = naive.RemoveAt(i)
				}
			}
			sameDrops(t, trial, gotDrops, wantDrops)
			switch {
			case got == nil && want == nil:
			case got == nil || want == nil:
				t.Fatalf("trial %d: pop = %v, reference %v", trial, got, want)
			case got.MsgID != want.MsgID:
				t.Fatalf("trial %d (%s): popped msg %d, reference %d", trial, s.Name(), got.MsgID, want.MsgID)
			}
			sameOrder(t, trial, fast, naive)
			now += vtime.Millis(r.Float64() * 4 * vtime.Second)
		}
	}
}
