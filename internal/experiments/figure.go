// Package experiments reproduces the evaluation of §6: one runner per
// figure panel, sweeping publishing rate or the EBPC weight across
// strategies, aggregating over seeds, and rendering the same series the
// paper plots.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Figure is one reproduced figure panel: an x-swept family of named
// series.
type Figure struct {
	ID     string // "4a" … "6b"
	Title  string
	XLabel string
	YLabel string
	Series []string
	Points []Point
}

// Point holds one x value and the y value of every series at that x.
type Point struct {
	X      float64
	Values map[string]float64
}

// Value returns the y value of a series at point i.
func (f *Figure) Value(i int, series string) float64 {
	return f.Points[i].Values[series]
}

// Render writes an aligned text table, one row per x value.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Figure %s — %s\n", f.ID, f.Title); err != nil {
		return err
	}
	widths := make([]int, len(f.Series)+1)
	header := append([]string{f.XLabel}, f.Series...)
	rows := [][]string{header}
	for _, p := range f.Points {
		row := []string{trimFloat(p.X)}
		for _, s := range f.Series {
			row = append(row, fmt.Sprintf("%.2f", p.Values[s]))
		}
		rows = append(rows, row)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			b.WriteString(cell)
		}
		if _, err := fmt.Fprintf(w, "%s\n", b.String()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "(y: %s)\n", f.YLabel)
	return err
}

// WriteCSV emits the figure as CSV with an x column and one column per
// series.
func (f *Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{f.XLabel}, f.Series...)); err != nil {
		return err
	}
	for _, p := range f.Points {
		row := []string{strconv.FormatFloat(p.X, 'g', -1, 64)}
		for _, s := range f.Series {
			row = append(row, strconv.FormatFloat(p.Values[s], 'g', 6, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func trimFloat(x float64) string {
	// Round away float noise (100·0.1 = 10.000000000000002), then render
	// shortest-form so sub-0.01 x values (ε sweeps) stay distinguishable.
	return strconv.FormatFloat(math.Round(x*1e9)/1e9, 'g', -1, 64)
}
