package experiments

import (
	"fmt"

	"bdps/internal/core"
	"bdps/internal/metrics"
	"bdps/internal/msg"
	"bdps/internal/runtime"
	"bdps/internal/simnet"
	"bdps/internal/stats"
	"bdps/internal/topology"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

// Ablations quantify the design choices DESIGN.md calls out, beyond the
// paper's own figures. Each returns a Figure so the CLI renders and saves
// them uniformly. They run the congested PSD point (rate 12) with the EB
// strategy unless stated otherwise.

// ablationSweep runs one ablation grid — one x-point per element of xs,
// seeds innermost — on the options' worker pool and returns the
// seed-averaged result per point, in declaration order. mutate edits
// the congested PSD/EB base config for one x value.
func ablationSweep[T any](o *Options, xs []T, mutate func(T, *simnet.Config)) ([]metrics.Result, error) {
	cfgs := make([]simnet.Config, 0, len(xs)*len(o.Seeds))
	for _, x := range xs {
		for _, seed := range o.Seeds {
			cfg := simnet.Config{
				Seed:     seed,
				Scenario: msg.PSD,
				Strategy: core.MaxEB{},
				Params:   o.Params,
				Workload: workload.Config{
					RatePerMin: 12,
					Duration:   o.Duration,
					Churn:      o.Churn,
				},
				LinkModel: o.LinkModel,
				// Churning cells force the counting index, matching the
				// figure cells (Options.config).
				IndexedMatch: o.Churn.Enabled(),
			}
			if mutate != nil {
				mutate(x, &cfg)
			}
			cfgs = append(cfgs, cfg)
		}
	}
	rs, err := o.exec.runAll(cfgs)
	if err != nil {
		return nil, err
	}
	return meanBySeed(rs, len(o.Seeds)), nil
}

// AblationEpsilon sweeps the invalid-message detection threshold ε
// (§5.4). ε = 0 disables detection entirely.
func AblationEpsilon(opts Options) (*Figure, error) {
	opts.setDefaults()
	fig := &Figure{
		ID:     "A1",
		Title:  "ε-detection sweep (PSD, EB, rate 12)",
		XLabel: "epsilon",
		YLabel: "delivery rate (%) / traffic (k)",
		Series: []string{"delivery %", "traffic k", "hopeless drops k"},
	}
	epsilons := []float64{0, 0.00005, 0.0005, 0.005, 0.05, 0.2}
	pts, err := ablationSweep(&opts, epsilons, func(eps float64, c *simnet.Config) {
		c.Params = core.Params{PD: opts.Params.PD, Epsilon: eps}
	})
	if err != nil {
		return nil, err
	}
	for i, eps := range epsilons {
		res := pts[i]
		fig.Points = append(fig.Points, Point{X: eps, Values: map[string]float64{
			"delivery %":       100 * res.DeliveryRate(),
			"traffic k":        res.MessageNumberK(),
			"hopeless drops k": float64(res.DropsHopeless) / 1000,
		}})
	}
	return fig, nil
}

// AblationMeasure sweeps the number of measured samples used to estimate
// link-rate parameters; 0 is the oracle (the paper's assumption).
func AblationMeasure(opts Options) (*Figure, error) {
	opts.setDefaults()
	fig := &Figure{
		ID:     "A2",
		Title:  "measured vs known link parameters (PSD, EB, rate 12)",
		XLabel: "measurement samples (0 = oracle)",
		YLabel: "delivery rate (%)",
		Series: []string{"delivery %"},
	}
	samples := []int{0, 5, 20, 100, 500}
	pts, err := ablationSweep(&opts, samples, func(n int, c *simnet.Config) {
		c.MeasureSamples = n
	})
	if err != nil {
		return nil, err
	}
	for i, n := range samples {
		fig.Points = append(fig.Points, Point{X: float64(n), Values: map[string]float64{
			"delivery %": 100 * pts[i].DeliveryRate(),
		}})
	}
	return fig, nil
}

// AblationMultipath compares single-path routing with DCP-style K-path
// forwarding (K = 1, 2, 3): reliability vs traffic.
func AblationMultipath(opts Options) (*Figure, error) {
	opts.setDefaults()
	fig := &Figure{
		ID:     "A3",
		Title:  "single-path vs multi-path routing (PSD, EB, rate 12)",
		XLabel: "paths per (ingress, subscriber)",
		YLabel: "delivery rate (%) / traffic (k)",
		Series: []string{"delivery %", "traffic k"},
	}
	paths := []int{1, 2, 3}
	pts, err := ablationSweep(&opts, paths, func(k int, c *simnet.Config) {
		c.Multipath = k
	})
	if err != nil {
		return nil, err
	}
	for i, k := range paths {
		fig.Points = append(fig.Points, Point{X: float64(k), Values: map[string]float64{
			"delivery %": 100 * pts[i].DeliveryRate(),
			"traffic k":  pts[i].MessageNumberK(),
		}})
	}
	return fig, nil
}

// AblationLinkModel compares the normal link model (§3.2) against the
// fixed-rate assumption of QRON-style work and the shifted-gamma shape of
// refs [17, 18]. X encodes the model: 0 normal, 1 fixed, 2 gamma.
func AblationLinkModel(opts Options) (*Figure, error) {
	opts.setDefaults()
	fig := &Figure{
		ID:     "A4",
		Title:  "link model: 0=normal, 1=fixed, 2=gamma (PSD, EB, rate 12)",
		XLabel: "link model",
		YLabel: "delivery rate (%)",
		Series: []string{"delivery %"},
	}
	models := []simnet.LinkModel{simnet.LinkNormal, simnet.LinkFixed, simnet.LinkGamma}
	pts, err := ablationSweep(&opts, models, func(m simnet.LinkModel, c *simnet.Config) {
		c.LinkModel = m
	})
	if err != nil {
		return nil, err
	}
	for i := range models {
		fig.Points = append(fig.Points, Point{X: float64(i), Values: map[string]float64{
			"delivery %": 100 * pts[i].DeliveryRate(),
		}})
	}
	return fig, nil
}

// AblationTopology compares the paper's layered mesh with the acyclic
// tree of §3.1 and a random mesh. X encodes the shape: 0 layered,
// 1 acyclic, 2 mesh.
func AblationTopology(opts Options) (*Figure, error) {
	opts.setDefaults()
	fig := &Figure{
		ID:     "A5",
		Title:  "topology: 0=layered-mesh, 1=acyclic-tree, 2=random-mesh (PSD, EB, rate 12)",
		XLabel: "topology",
		YLabel: "delivery rate (%)",
		Series: []string{"delivery %"},
	}
	builders := []func(seed uint64) (*topology.Overlay, error){
		func(seed uint64) (*topology.Overlay, error) {
			return topology.BuildLayered(topology.LayeredConfig{Seed: seed})
		},
		func(seed uint64) (*topology.Overlay, error) {
			return topology.BuildAcyclic(topology.AcyclicConfig{Seed: seed})
		},
		func(seed uint64) (*topology.Overlay, error) {
			return topology.BuildMesh(topology.MeshConfig{Seed: seed})
		},
	}
	overlays := make([]*topology.Overlay, len(builders))
	for i, build := range builders {
		ov, err := build(opts.Seeds[0])
		if err != nil {
			return nil, err
		}
		overlays[i] = ov
	}
	pts, err := ablationSweep(&opts, overlays, func(ov *topology.Overlay, c *simnet.Config) {
		c.Overlay = ov
	})
	if err != nil {
		return nil, err
	}
	for i := range builders {
		fig.Points = append(fig.Points, Point{X: float64(i), Values: map[string]float64{
			"delivery %": 100 * pts[i].DeliveryRate(),
		}})
	}
	return fig, nil
}

// AblationFairness compares Jain's fairness index across strategies at
// the congested point — an aspect the paper does not report but the
// operator of a priced system cares about.
func AblationFairness(opts Options) (*Figure, error) {
	opts.setDefaults()
	fig := &Figure{
		ID:     "A6",
		Title:  "per-subscriber fairness: 0=EB, 1=PC, 2=FIFO, 3=RL (PSD, rate 12)",
		XLabel: "strategy",
		YLabel: "Jain index / delivery %",
		Series: []string{"jain", "delivery %"},
	}
	strategies := []core.Strategy{core.MaxEB{}, core.MaxPC{}, core.FIFO{}, core.RL{}}
	pts, err := ablationSweep(&opts, strategies, func(s core.Strategy, c *simnet.Config) {
		c.Strategy = s
		c.Params = opts.paramsFor(s)
		c.PerSubscriber = true
	})
	if err != nil {
		return nil, err
	}
	for i := range strategies {
		fig.Points = append(fig.Points, Point{X: float64(i), Values: map[string]float64{
			"jain":       pts[i].Fairness,
			"delivery %": 100 * pts[i].DeliveryRate(),
		}})
	}
	return fig, nil
}

// AblationHotspot skews message popularity: a growing fraction of
// messages draw attributes from the hot low range, concentrating
// subscriber interest on fewer, more-valuable messages.
func AblationHotspot(opts Options) (*Figure, error) {
	opts.setDefaults()
	fig := &Figure{
		ID:     "A7",
		Title:  "content hotspot skew (PSD, EB, rate 12)",
		XLabel: "hot fraction",
		YLabel: "delivery rate (%) / avg interested subs",
		Series: []string{"delivery %", "interest/msg"},
	}
	fractions := []float64{0, 0.25, 0.5, 0.75}
	pts, err := ablationSweep(&opts, fractions, func(h float64, c *simnet.Config) {
		c.Workload.HotspotFraction = h
	})
	if err != nil {
		return nil, err
	}
	for i, h := range fractions {
		res := pts[i]
		interest := 0.0
		if res.Published > 0 {
			interest = float64(res.TotalTargets) / float64(res.Published)
		}
		fig.Points = append(fig.Points, Point{X: h, Values: map[string]float64{
			"delivery %":   100 * res.DeliveryRate(),
			"interest/msg": interest,
		}})
	}
	return fig, nil
}

// AblationChurn sweeps subscription churn: on top of the static
// population, new subscribers arrive at the swept rate and stay for an
// exponential lifetime (half-life 1 min). Routing tables mutate in
// place throughout the run — the scenario the incremental counting
// index exists for. Delivery is judged against the population active at
// each publication instant.
func AblationChurn(opts Options) (*Figure, error) {
	opts.setDefaults()
	fig := &Figure{
		ID:     "A8",
		Title:  "subscription churn (PSD, EB, rate 12, half-life 1 min)",
		XLabel: "churn arrivals/min",
		YLabel: "delivery rate (%) / traffic (k)",
		Series: []string{"delivery %", "traffic k"},
	}
	rates := []float64{0, 20, 60, 180}
	pts, err := ablationSweep(&opts, rates, func(r float64, c *simnet.Config) {
		// This sweep owns the churn knob: override whatever global churn
		// the options carry, so x = 0 is a genuinely static baseline.
		if r > 0 {
			c.Workload.Churn = workload.Churn{RatePerMin: r, HalfLife: vtime.Minute}
			c.IndexedMatch = true // churn-proof fast path on every broker
		} else {
			c.Workload.Churn = workload.Churn{}
			c.IndexedMatch = false
		}
	})
	if err != nil {
		return nil, err
	}
	for i, r := range rates {
		fig.Points = append(fig.Points, Point{X: r, Values: map[string]float64{
			"delivery %": 100 * pts[i].DeliveryRate(),
			"traffic k":  pts[i].MessageNumberK(),
		}})
	}
	return fig, nil
}

// recoveryAblationOverlay is the kill-half topology of the recovery
// ablation: two ingress (0, 1), four middles (2–5), two edges (6, 7),
// fully bipartite between layers, with one mean per middle's links.
// Middle 2 is strictly fastest, so every initial path routes through
// it; killing middles 2 and 4 severs every route in use and leaves
// middle 3 — deliberately slow enough (110 ms/KB per hop ≈ 11 s per
// 50 KB message) to violate the tightest publisher bounds — as the
// repair target, so the renegotiation series visibly separates from
// plain repair.
func recoveryAblationOverlay() (*topology.Overlay, error) {
	g := topology.NewGraph(8)
	for _, mid := range []struct {
		id   msg.NodeID
		mean float64
	}{{2, 40}, {3, 110}, {4, 80}, {5, 130}} {
		for _, peer := range []msg.NodeID{0, 1, 6, 7} {
			if err := g.AddLink(peer, mid.id, stats.Normal{Mean: mid.mean, Sigma: 5}); err != nil {
				return nil, err
			}
		}
	}
	return &topology.Overlay{
		Graph:   g,
		Ingress: []msg.NodeID{0, 1},
		Edges:   []msg.NodeID{6, 7},
	}, nil
}

// AblationRecovery charts the self-healing control plane: half the
// relay layer is killed at T/4 and delivery rate is tracked over
// publication time for four runs — no faults, faults with the plane
// off, detection + repair, and detection + repair + delay-bound
// renegotiation. All four share one publication schedule, so the
// timeline buckets align column for column; with detection off the
// post-crash buckets flatline, with repair they return to the quiet
// baseline, and renegotiation rescues the bounds the slower repair
// path cannot honor as-is.
func AblationRecovery(opts Options) (*Figure, error) {
	opts.setDefaults()
	fig := &Figure{
		ID:     "A9",
		Title:  "kill-half self-healing: delivery over time (PSD, EB, crash at T/4)",
		XLabel: "publication time (s)",
		YLabel: "delivery rate (%)",
		Series: []string{"no faults", "no recovery", "repair", "repair+renegotiate"},
	}
	ov, err := recoveryAblationOverlay()
	if err != nil {
		return nil, err
	}
	crashAt := opts.Duration / 4
	type variant struct{ faults, detect, renegotiate bool }
	variants := []variant{
		{false, false, false},
		{true, false, false},
		{true, true, false},
		{true, true, true},
	}
	pts, err := ablationSweep(&opts, variants, func(v variant, c *simnet.Config) {
		c.Overlay = ov
		// The repair path costs 11 s per hop-pair: keep its links below
		// saturation (the base rate 12 would melt them and drown the
		// renegotiation signal in queueing).
		c.Workload.RatePerMin = 3
		c.TimelineBucket = opts.Duration / 8
		if v.faults {
			c.Faults = []simnet.Fault{
				simnet.BrokerCrash{ID: 2, At: crashAt},
				simnet.BrokerCrash{ID: 4, At: crashAt},
			}
		}
		// A demanding success target separates the series: plain repair
		// keeps the original bounds and loses the deliveries the slow
		// detour misses; renegotiation relaxes them to what the detour
		// can actually meet 95% of the time.
		c.Recovery = runtime.Recovery{
			Detect:        v.detect,
			Renegotiate:   v.renegotiate,
			SuccessTarget: 0.95,
		}
	})
	if err != nil {
		return nil, err
	}
	for i, b := range pts[0].Timeline {
		p := Point{X: float64(b.Start) / 1000, Values: map[string]float64{}}
		for j, name := range fig.Series {
			if tl := pts[j].Timeline; i < len(tl) {
				p.Values[name] = 100 * tl[i].Rate()
			}
		}
		fig.Points = append(fig.Points, p)
	}
	return fig, nil
}

// AblationLoss charts lossy-network resilience: the congested PSD point
// under a wildcard per-arc loss adversary (5% duplication throughout),
// swept over the per-transmission loss rate for four reliability arms —
// no loss injected, loss with retransmission off, blind retransmission,
// and deadline-aware retransmission (retries admitted only while the
// remaining slack still meets the success target; hopeless retries are
// abandoned instead of burning link time). Deadline-aware retry must
// dominate the no-retry arm on delivery rate at every loss level, and by
// construction never delivers outside a bound it already gave up on.
func AblationLoss(opts Options) (*Figure, error) {
	opts.setDefaults()
	fig := &Figure{
		ID:     "A10",
		Title:  "lossy links: delivery vs loss rate (PSD, EB, rate 12, dup 5%)",
		XLabel: "per-transmission loss rate",
		YLabel: "delivery rate (%)",
		Series: []string{"no loss", "no retry", "blind retry", "deadline-aware"},
	}
	type arm struct {
		loss bool
		rel  runtime.Reliability
	}
	arms := []arm{
		{loss: false},
		{loss: true, rel: runtime.Reliability{NoRetry: true}},
		{loss: true, rel: runtime.Reliability{BlindRetry: true}},
		{loss: true},
	}
	rates := []float64{0.05, 0.10, 0.15, 0.20}
	type cell struct {
		rate float64
		arm  int
	}
	var cells []cell
	for _, r := range rates {
		for a := range arms {
			cells = append(cells, cell{r, a})
		}
	}
	pts, err := ablationSweep(&opts, cells, func(c cell, cfg *simnet.Config) {
		a := arms[c.arm]
		cfg.Reliability = a.rel
		if a.loss {
			cfg.Faults = []simnet.Fault{simnet.LinkLoss{
				From: msg.None, To: msg.None,
				Rate: c.rate, Dup: 0.05,
			}}
		}
		// The no-loss arm is rate-independent: leaving its config identical
		// across rates lets the shared run cache evaluate it once.
	})
	if err != nil {
		return nil, err
	}
	for i, r := range rates {
		p := Point{X: r, Values: map[string]float64{}}
		for j, name := range fig.Series {
			p.Values[name] = 100 * pts[i*len(arms)+j].DeliveryRate()
		}
		fig.Points = append(fig.Points, p)
	}
	return fig, nil
}

// AblationOverload charts overload protection under a flash crowd: the
// PSD/EB point swept over rising base publish rates, each run hit by a
// mid-run flash crowd (6× publish boost concentrated on the hot
// content range plus a correlated subscribe burst), for three
// protection arms — no protection, pressure shedding only, and online
// admission control plus shedding. The judged metric is admitted-traffic
// SLO attainment (delivery rate over what the system accepted): with no
// protection the backlog starves admitted traffic as rate rises; with
// admission + shed, attainment stays at the success target because the
// overflow is refused at the door — the paper's admission test applied
// online — and the rejected share is reported as its own series.
func AblationOverload(opts Options) (*Figure, error) {
	opts.setDefaults()
	fig := &Figure{
		ID:     "A11",
		Title:  "flash crowd: SLO attainment vs offered rate (PSD, EB, boost 6x)",
		XLabel: "base publish rate (msgs/min)",
		YLabel: "admitted-traffic SLO attainment (%) / rejected (%)",
		Series: []string{"no protection", "shed only", "admission+shed", "rejected % (admission)"},
	}
	// A tight shed threshold makes pressure shedding bite well before the
	// flash crowd has already destroyed every queued deadline.
	arms := []runtime.Admission{
		{},
		{Shed: true, MaxQueue: 8},
		{Enabled: true, Shed: true, MaxQueue: 8},
	}
	rates := []float64{6, 12, 18, 24}
	type cell struct {
		rate float64
		arm  int
	}
	var cells []cell
	for _, r := range rates {
		for a := range arms {
			cells = append(cells, cell{r, a})
		}
	}
	pts, err := ablationSweep(&opts, cells, func(c cell, cfg *simnet.Config) {
		cfg.Workload.RatePerMin = c.rate
		// The congested base's 10–30 s bounds cap attainment well below
		// any useful target even with zero load, leaving admission
		// nothing to protect. A11 instead runs the paper's relaxed
		// bounds (30–60 s): unloaded traffic meets the target, and the
		// flash crowd is what destroys it.
		cfg.Workload.PSDDelayLo = 30 * vtime.Second
		cfg.Workload.PSDDelayHi = 60 * vtime.Second
		cfg.Workload.FlashCrowd = workload.FlashCrowd{
			At:       opts.Duration / 4,
			Width:    opts.Duration / 4,
			Boost:    6,
			SubBurst: 8,
		}
		cfg.Admission = arms[c.arm]
		// Flash subscribe bursts mutate routing tables mid-run; arm the
		// churn-proof counting index like the churn cells do.
		cfg.IndexedMatch = true
	})
	if err != nil {
		return nil, err
	}
	for i, r := range rates {
		p := Point{X: r, Values: map[string]float64{}}
		for j := 0; j < len(arms); j++ {
			p.Values[fig.Series[j]] = 100 * pts[i*len(arms)+j].SLOAttainment()
		}
		p.Values["rejected % (admission)"] = 100 * pts[i*len(arms)+2].RejectRate()
		fig.Points = append(fig.Points, p)
	}
	return fig, nil
}

// restartAblationOverlay is the cut-vertex topology of the restart
// ablation: two ingress (0, 1) feed middle 2, which alone reaches
// middle 3 and the two edges (4, 5). Broker 2 is a cut vertex — when it
// crashes there is nothing to reroute through, so the self-healing
// plane of A9 is powerless and only a warm restart from durable state
// can bring delivery back.
func restartAblationOverlay() (*topology.Overlay, error) {
	g := topology.NewGraph(6)
	link := stats.Normal{Mean: 50, Sigma: 5}
	for _, arc := range [][2]msg.NodeID{{0, 2}, {1, 2}, {2, 3}, {3, 4}, {3, 5}} {
		if err := g.AddLink(arc[0], arc[1], link); err != nil {
			return nil, err
		}
	}
	return &topology.Overlay{
		Graph:   g,
		Ingress: []msg.NodeID{0, 1},
		Edges:   []msg.NodeID{4, 5},
	}, nil
}

// AblationRestart charts crash-restart durability: a cut-vertex broker
// crashes at T/4 and delivery rate is tracked over publication time for
// three runs sharing one publication schedule — no faults, crash with
// no restart, and crash followed at T/2 by a warm restart from the
// WAL (plus one subscriber session dropping and resuming on the
// rejoined incarnation). Repair cannot help here: every path routes
// through the dead broker, so the crash-only series flatlines for the
// rest of the run, while the restart series returns to the quiet
// baseline once the recovered routing table is back on the wire.
func AblationRestart(opts Options) (*Figure, error) {
	opts.setDefaults()
	fig := &Figure{
		ID:     "A12",
		Title:  "cut-vertex crash: delivery over time, restart vs none (PSD, EB)",
		XLabel: "publication time (s)",
		YLabel: "delivery rate (%)",
		Series: []string{"no faults", "crash only", "crash + restart + resume"},
	}
	ov, err := restartAblationOverlay()
	if err != nil {
		return nil, err
	}
	crashAt := opts.Duration / 4
	restartAt := opts.Duration / 2
	sessionAt := opts.Duration * 5 / 8
	type variant struct{ crash, restart bool }
	variants := []variant{{false, false}, {true, false}, {true, true}}
	pts, err := ablationSweep(&opts, variants, func(v variant, c *simnet.Config) {
		c.Overlay = ov
		// The single spine saturates quickly: keep the rate low enough
		// that the quiet baseline is queueing-free.
		c.Workload.RatePerMin = 3
		c.TimelineBucket = opts.Duration / 8
		c.Recovery = runtime.Recovery{Detect: true, Renegotiate: true}
		if v.crash {
			c.Faults = []simnet.Fault{simnet.BrokerCrash{ID: 2, At: crashAt}}
		}
		if v.restart {
			c.Faults = append(c.Faults,
				simnet.BrokerRestart{ID: 2, At: restartAt},
				simnet.SessionDown{Sub: 3, Start: sessionAt, End: sessionAt + 30*vtime.Second},
			)
		}
	})
	if err != nil {
		return nil, err
	}
	for i, b := range pts[0].Timeline {
		p := Point{X: float64(b.Start) / 1000, Values: map[string]float64{}}
		for j, name := range fig.Series {
			if tl := pts[j].Timeline; i < len(tl) {
				p.Values[name] = 100 * tl[i].Rate()
			}
		}
		fig.Points = append(fig.Points, p)
	}
	return fig, nil
}

// RunAblation dispatches an ablation id.
func RunAblation(id string, opts Options) (*Figure, error) {
	switch id {
	case "epsilon", "A1":
		return AblationEpsilon(opts)
	case "measure", "A2":
		return AblationMeasure(opts)
	case "multipath", "A3":
		return AblationMultipath(opts)
	case "linkmodel", "A4":
		return AblationLinkModel(opts)
	case "topology", "A5":
		return AblationTopology(opts)
	case "fairness", "A6":
		return AblationFairness(opts)
	case "hotspot", "A7":
		return AblationHotspot(opts)
	case "churn", "A8":
		return AblationChurn(opts)
	case "recovery", "A9":
		return AblationRecovery(opts)
	case "loss", "A10":
		return AblationLoss(opts)
	case "overload", "A11":
		return AblationOverload(opts)
	case "restart", "A12":
		return AblationRestart(opts)
	}
	return nil, fmt.Errorf("experiments: unknown ablation %q (want epsilon, measure, multipath, linkmodel, topology, fairness, hotspot, churn, recovery, loss, overload, restart)", id)
}

// Ablations lists the ablation ids in order.
func Ablations() []string {
	return []string{"epsilon", "measure", "multipath", "linkmodel", "topology", "fairness", "hotspot", "churn", "recovery", "loss", "overload", "restart"}
}

// AllAblations runs every ablation with one shared worker pool and run
// cache: several sweeps revisit the unmutated base point (ε at its
// default, 0 measurement samples, the normal link model, hotspot 0), and
// sharing the cache runs that cell once instead of once per sweep.
func AllAblations(opts Options) ([]*Figure, error) {
	opts.setDefaults()
	var out []*Figure
	for _, id := range Ablations() {
		f, err := RunAblation(id, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}
