package experiments

import (
	"reflect"
	"sync"
	"testing"

	"bdps/internal/core"
	"bdps/internal/metrics"
	"bdps/internal/msg"
	"bdps/internal/runtime"
	"bdps/internal/simnet"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

// TestParallelMatchesSequential is the harness's core guarantee: every
// figure produced with a worker pool is bit-identical — field for field,
// float for float — to the sequential run.
func TestParallelMatchesSequential(t *testing.T) {
	withParallelism := func(p int) Options {
		opts := tinyOpts()
		opts.Seeds = []uint64{1, 2}
		opts.Parallelism = p
		return opts
	}
	type buildFn func(Options) ([]*Figure, error)
	builders := map[string]buildFn{
		"4a": func(o Options) ([]*Figure, error) {
			f, err := Figure4a(o)
			return []*Figure{f}, err
		},
		"5": func(o Options) ([]*Figure, error) {
			a, b, err := Figure5(o)
			return []*Figure{a, b}, err
		},
		"6": func(o Options) ([]*Figure, error) {
			a, b, err := Figure6(o)
			return []*Figure{a, b}, err
		},
	}
	for name, build := range builders {
		seq, err := build(withParallelism(1))
		if err != nil {
			t.Fatalf("%s sequential: %v", name, err)
		}
		par, err := build(withParallelism(8))
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("%s: parallel figures differ from sequential:\nseq: %+v\npar: %+v", name, seq, par)
		}
	}
}

// TestAllSharesCacheAcrossFigures: when the rate sweep revisits Figure
// 4's fixed rate, the identical cells across figures run once.
func TestAllSharesCacheAcrossFigures(t *testing.T) {
	opts := tinyOpts()
	opts.Rates = []float64{8} // == tinyOpts Fig4Rate: 5a shares the SSD EB/PC cells with 4a
	var mu sync.Mutex
	runs := 0
	opts.Progress = func(string) { mu.Lock(); runs++; mu.Unlock() }
	figs, err := All(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 6 {
		t.Fatalf("got %d figures", len(figs))
	}
	// Unique cells: 4a (SSD): EB, PC, EBPC(0.5) = 3; 4b (PSD): 3;
	// 5 (SSD, rate 8): FIFO, RL = 2 new (EB, PC cached from 4a);
	// 6 (PSD, rate 8): 2 new. One seed → 10 runs, not 14.
	if runs != 10 {
		t.Errorf("runs = %d, want 10 (cache must dedupe cells across figures)", runs)
	}
}

// TestAllAblationsSharedCache: the unmutated base point recurs across
// sweeps and must run once.
func TestAllAblationsSharedCache(t *testing.T) {
	opts := Options{Seeds: []uint64{1}, Duration: 2 * vtime.Minute}
	var mu sync.Mutex
	runs := 0
	opts.Progress = func(string) { mu.Lock(); runs++; mu.Unlock() }
	figs, err := AllAblations(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != len(Ablations()) {
		t.Fatalf("got %d ablation figures", len(figs))
	}
	// 67 cells declared (6+5+3+3+3+4+4+4+4+16+12+3, one seed); the base
	// config recurs in the ε (default ε), measure (0 samples), link-model
	// (normal), hotspot (0) and churn (0 arrivals/min) sweeps, and the
	// loss sweep's no-loss arm is rate-independent (4 cells collapse into
	// the same shared base) → 59 unique runs (the recovery and restart
	// sweeps' cells run on their own overlays and timelines, and the
	// overload sweep's flash-crowd cells vary rate × protection arm, so
	// none of theirs dedupe).
	if runs != 59 {
		t.Errorf("runs = %d, want 59 (base cell must dedupe across ablations)", runs)
	}
}

// TestExecutorSingleFlight: concurrent requests for one config share a
// single underlying run.
func TestExecutorSingleFlight(t *testing.T) {
	var mu sync.Mutex
	runs := 0
	ex := newExecutor(4, func(string) { mu.Lock(); runs++; mu.Unlock() }, nil)
	cfg := simnet.Config{
		Seed:     1,
		Scenario: msg.PSD,
		Strategy: core.MaxEB{},
		Workload: workload.Config{RatePerMin: 10, Duration: 2 * vtime.Minute},
	}
	cfgs := make([]simnet.Config, 8)
	for i := range cfgs {
		cfgs[i] = cfg
	}
	rs, err := ex.runAll(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rs); i++ {
		if !reflect.DeepEqual(rs[0], rs[i]) {
			t.Fatalf("result %d differs: %+v vs %+v", i, rs[0], rs[i])
		}
	}
	if runs != 1 {
		t.Errorf("identical configs ran %d times, want 1", runs)
	}
}

// TestConcurrentFigures drives two figure builders at once — the shared
// state they touch (entry/event pools, derived RNG streams) must be
// race-free. Run with -race for the real assertion.
func TestConcurrentFigures(t *testing.T) {
	opts := tinyOpts()
	opts.Parallelism = 2
	var wg sync.WaitGroup
	errs := make([]error, 2)
	figs := make([]*Figure, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		figs[0], errs[0] = Figure4a(opts)
	}()
	go func() {
		defer wg.Done()
		var f *Figure
		f, _, errs[1] = Figure6(opts)
		figs[1] = f
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("figure %d: %v", i, err)
		}
		if figs[i] == nil || len(figs[i].Points) == 0 {
			t.Fatalf("figure %d empty", i)
		}
	}
}

// TestNormalizeStrategy pins the endpoint degeneration (eq. 10) the run
// cache exploits.
func TestNormalizeStrategy(t *testing.T) {
	if _, ok := normalizeStrategy(core.MaxEBPC{R: 0}).(core.MaxPC); !ok {
		t.Error("EBPC r=0 should normalize to PC")
	}
	if _, ok := normalizeStrategy(core.MaxEBPC{R: 1}).(core.MaxEB); !ok {
		t.Error("EBPC r=1 should normalize to EB")
	}
	if _, ok := normalizeStrategy(core.MaxEBPC{R: 0.4}).(core.MaxEBPC); !ok {
		t.Error("interior weights must not normalize")
	}
	if _, ok := normalizeStrategy(core.FIFO{}).(core.FIFO); !ok {
		t.Error("FIFO must pass through")
	}
}

// TestConfigKey pins keying semantics: distinct configs get distinct
// keys, equal configs share one, and uncacheable inputs are refused.
func TestConfigKey(t *testing.T) {
	base := func() simnet.Config {
		return simnet.Config{
			Seed:     1,
			Scenario: msg.PSD,
			Strategy: core.MaxEB{},
			Workload: workload.Config{RatePerMin: 10, Duration: vtime.Minute},
		}
	}
	a, ok := configKey(ptr(base()))
	if !ok {
		t.Fatal("plain config must be cacheable")
	}
	b, _ := configKey(ptr(base()))
	if a != b {
		t.Error("equal configs must share a key")
	}
	distinct := []func(*simnet.Config){
		func(c *simnet.Config) { c.Seed = 2 },
		func(c *simnet.Config) { c.Scenario = msg.SSD },
		func(c *simnet.Config) { c.Strategy = core.RL{} },
		func(c *simnet.Config) { c.Strategy = core.FIFO{} }, // %T distinguishes FIFO{} from RL{}
		func(c *simnet.Config) { c.Strategy = core.MaxEBPC{R: 0.3} },
		func(c *simnet.Config) { c.Params = core.Params{PD: 5, Epsilon: 0.1} },
		func(c *simnet.Config) { c.Workload.RatePerMin = 12 },
		func(c *simnet.Config) { c.Workload.HotspotFraction = 0.5 },
		func(c *simnet.Config) { c.Multipath = 2 },
		func(c *simnet.Config) { c.MeasureSamples = 50 },
		func(c *simnet.Config) { c.LinkModel = simnet.LinkGamma },
		func(c *simnet.Config) { c.MinRate = 2 },
		func(c *simnet.Config) { c.PerSubscriber = true },
		func(c *simnet.Config) { c.IndexedMatch = true },
		func(c *simnet.Config) { c.TopologyCfg.Seed = 7 },
		func(c *simnet.Config) { c.TimeScale = 0.5 },
		func(c *simnet.Config) { c.Faults = []simnet.Fault{simnet.BrokerCrash{ID: 1, At: 10}} },
		func(c *simnet.Config) { c.Faults = []simnet.Fault{simnet.LinkDown{From: 0, To: 1, Start: 10, End: 20}} },
		func(c *simnet.Config) { c.Recovery = runtime.Recovery{Detect: true} },
		func(c *simnet.Config) { c.Recovery = runtime.Recovery{Detect: true, Renegotiate: true} },
		func(c *simnet.Config) {
			c.Faults = []simnet.Fault{simnet.LinkLoss{From: msg.None, To: msg.None, Rate: 0.1}}
		},
		func(c *simnet.Config) { c.Reliability = runtime.Reliability{NoRetry: true} },
		func(c *simnet.Config) { c.Reliability = runtime.Reliability{BlindRetry: true} },
		func(c *simnet.Config) { c.TimelineBucket = 30 * vtime.Second },
		func(c *simnet.Config) { c.Aggregate = true },
		func(c *simnet.Config) { c.Admission = runtime.Admission{Enabled: true} },
		func(c *simnet.Config) { c.Admission = runtime.Admission{Enabled: true, Shed: true} },
		func(c *simnet.Config) { c.Workload.FlashCrowd = workload.FlashCrowd{Boost: 8, At: 10 * vtime.Second} },
	}
	seen := map[string]int{a: -1}
	for i, mutate := range distinct {
		cfg := base()
		mutate(&cfg)
		k, ok := configKey(&cfg)
		if !ok {
			t.Errorf("mutation %d unexpectedly uncacheable", i)
			continue
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("mutation %d collides with %d", i, prev)
		}
		seen[k] = i
	}
	uncacheable := []func(*simnet.Config){
		func(c *simnet.Config) { c.Subscriptions = []*msg.Subscription{} },
	}
	for i, mutate := range uncacheable {
		cfg := base()
		mutate(&cfg)
		if _, ok := configKey(&cfg); ok {
			t.Errorf("uncacheable mutation %d got a key", i)
		}
	}
}

func ptr(c simnet.Config) *simnet.Config { return &c }

// TestConfigKeyCoversAllFields pins the simnet.Config field list so a
// new field cannot silently escape the cache key (which would let two
// different runs share one cached result).
func TestConfigKeyCoversAllFields(t *testing.T) {
	want := map[string]bool{
		"Seed": true, "Scenario": true, "Strategy": true, "Params": true,
		"Workload": true, "Overlay": true, "TopologyCfg": true,
		"Multipath": true, "MeasureSamples": true, "LinkModel": true,
		"MinRate": true, "Faults": true, "Tracer": true,
		"PerSubscriber": true, "IndexedMatch": true, "Subscriptions": true,
		"TimeScale": true, "LiveShards": true, "Recovery": true,
		"Reliability": true, "TimelineBucket": true, "Aggregate": true,
		"Admission": true,
	}
	rt := reflect.TypeOf(simnet.Config{})
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		if !want[name] {
			t.Errorf("simnet.Config gained field %q: extend configKey (and this list)", name)
		}
		delete(want, name)
	}
	for name := range want {
		t.Errorf("simnet.Config lost field %q: prune configKey (and this list)", name)
	}
}

// TestRunAllDeterministicError: the first error by batch index wins,
// regardless of scheduling.
func TestRunAllDeterministicError(t *testing.T) {
	ex := newExecutor(4, nil, nil)
	good := simnet.Config{
		Seed:     1,
		Scenario: msg.PSD,
		Strategy: core.MaxEB{},
		Workload: workload.Config{RatePerMin: 10, Duration: vtime.Minute},
	}
	bad := good
	bad.Workload.RatePerMin = -1 // workload validation fails
	if _, err := ex.runAll([]simnet.Config{good, bad, good}); err == nil {
		t.Fatal("want error from invalid cell")
	}
}

// TestMeanBySeed pins the grouping arithmetic: seeds innermost, one
// averaged result per point.
func TestMeanBySeed(t *testing.T) {
	got := meanBySeed([]metrics.Result{
		{Published: 10}, {Published: 20}, {Published: 30}, {Published: 40},
	}, 2)
	if len(got) != 2 || got[0].Published != 15 || got[1].Published != 35 {
		t.Errorf("meanBySeed = %+v", got)
	}
}
