package experiments

import (
	"fmt"

	"bdps/internal/core"
	"bdps/internal/metrics"
	"bdps/internal/msg"
	"bdps/internal/simnet"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

// Options scales an experiment. The zero value reproduces the paper's
// full setup; tests and benchmarks shrink Duration and Seeds.
type Options struct {
	// Seeds to average over; default {1, 2, 3}.
	Seeds []uint64
	// Duration of the publishing window; default 2 h (paper §6.1).
	Duration vtime.Millis
	// Rates is the publishing-rate sweep for Figures 5 and 6; default
	// {1, 3, 6, 9, 12, 15} msg/min per publisher.
	Rates []float64
	// Weights is the EBPC r sweep for Figure 4; default 0, 0.1, …, 1.
	Weights []float64
	// Fig4Rate is the fixed publishing rate of Figure 4; default 10.
	Fig4Rate float64
	// EBPCWeight is the r used when EBPC appears in rate sweeps; the
	// paper found r ∈ (0.23, 1) beneficial; default 0.5.
	EBPCWeight float64
	// Params are the scheduling parameters for the proposed strategies
	// (EB, PC, EBPC); FIFO and RL always run with ε = 0, as traditional
	// strategies have no invalid-message detection.
	Params core.Params
	// Multipath, MeasureSamples and LinkModel pass through to the
	// simulator for ablations.
	Multipath      int
	MeasureSamples int
	LinkModel      simnet.LinkModel
	// Progress, when non-nil, receives one line per completed run.
	Progress func(string)
}

func (o *Options) setDefaults() {
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{1, 2, 3}
	}
	if o.Duration == 0 {
		o.Duration = 2 * vtime.Hour
	}
	if len(o.Rates) == 0 {
		o.Rates = []float64{1, 3, 6, 9, 12, 15}
	}
	if len(o.Weights) == 0 {
		o.Weights = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}
	}
	if o.Fig4Rate == 0 {
		o.Fig4Rate = 10
	}
	if o.EBPCWeight == 0 {
		o.EBPCWeight = 0.5
	}
	if o.Params == (core.Params{}) {
		o.Params = core.DefaultParams()
	}
}

// paramsFor returns the scheduling parameters a strategy runs with:
// traditional baselines (FIFO, RL) drop only expired messages.
func (o *Options) paramsFor(s core.Strategy) core.Params {
	switch s.(type) {
	case core.FIFO, core.RL:
		return core.Params{PD: o.Params.PD, Epsilon: 0}
	default:
		return o.Params
	}
}

// runOne executes one (scenario, strategy, rate) cell averaged over seeds.
func (o *Options) runOne(scenario msg.Scenario, strat core.Strategy, rate float64) (metrics.Result, error) {
	var rs []metrics.Result
	for _, seed := range o.Seeds {
		cfg := simnet.Config{
			Seed:     seed,
			Scenario: scenario,
			Strategy: strat,
			Params:   o.paramsFor(strat),
			Workload: workload.Config{
				RatePerMin: rate,
				Duration:   o.Duration,
			},
			Multipath:      o.Multipath,
			MeasureSamples: o.MeasureSamples,
			LinkModel:      o.LinkModel,
		}
		r, err := simnet.Run(cfg)
		if err != nil {
			return metrics.Result{}, err
		}
		if o.Progress != nil {
			o.Progress(r.String())
		}
		rs = append(rs, r)
	}
	return metrics.Mean(rs), nil
}

// Figure4a reproduces Figure 4(a): SSD total earning versus the EBPC
// weight r, with the flat EB and PC references.
func Figure4a(opts Options) (*Figure, error) {
	opts.setDefaults()
	return figure4(opts, msg.SSD, "4a", "total earning (k)",
		func(r metrics.Result) float64 { return r.EarningK() })
}

// Figure4b reproduces Figure 4(b): PSD delivery rate versus r.
func Figure4b(opts Options) (*Figure, error) {
	opts.setDefaults()
	return figure4(opts, msg.PSD, "4b", "delivery rate (%)",
		func(r metrics.Result) float64 { return 100 * r.DeliveryRate() })
}

func figure4(opts Options, scenario msg.Scenario, id, ylabel string, y func(metrics.Result) float64) (*Figure, error) {
	fig := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("%s: EB vs PC vs EBPC, publishing rate %.0f", scenario, opts.Fig4Rate),
		XLabel: "weight of EB (%)",
		YLabel: ylabel,
		Series: []string{"EBPC", "EB", "PC"},
	}
	ebRes, err := opts.runOne(scenario, core.MaxEB{}, opts.Fig4Rate)
	if err != nil {
		return nil, err
	}
	pcRes, err := opts.runOne(scenario, core.MaxPC{}, opts.Fig4Rate)
	if err != nil {
		return nil, err
	}
	for _, w := range opts.Weights {
		var ebpcRes metrics.Result
		// The endpoints coincide with the pure strategies by
		// construction; reuse their runs to keep the figure consistent
		// and save a third of the sweep.
		switch w {
		case 0:
			ebpcRes = pcRes
		case 1:
			ebpcRes = ebRes
		default:
			ebpcRes, err = opts.runOne(scenario, core.MaxEBPC{R: w}, opts.Fig4Rate)
			if err != nil {
				return nil, err
			}
		}
		fig.Points = append(fig.Points, Point{
			X: 100 * w,
			Values: map[string]float64{
				"EBPC": y(ebpcRes),
				"EB":   y(ebRes),
				"PC":   y(pcRes),
			},
		})
	}
	return fig, nil
}

// Figure5 reproduces Figure 5: the SSD rate sweep. It returns panel (a)
// total earning and panel (b) message number from one set of runs.
func Figure5(opts Options) (earning, traffic *Figure, err error) {
	opts.setDefaults()
	return rateSweep(opts, msg.SSD, "5a", "5b",
		"total earning (k)", func(r metrics.Result) float64 { return r.EarningK() })
}

// Figure6 reproduces Figure 6: the PSD rate sweep. It returns panel (a)
// delivery rate and panel (b) message number from one set of runs.
func Figure6(opts Options) (delivery, traffic *Figure, err error) {
	opts.setDefaults()
	return rateSweep(opts, msg.PSD, "6a", "6b",
		"delivery rate (%)", func(r metrics.Result) float64 { return 100 * r.DeliveryRate() })
}

func rateSweep(opts Options, scenario msg.Scenario, idA, idB, ylabelA string, yA func(metrics.Result) float64) (*Figure, *Figure, error) {
	strategies := []core.Strategy{core.MaxEB{}, core.MaxPC{}, core.FIFO{}, core.RL{}}
	names := []string{"EB", "PC", "FIFO", "RL"}

	figA := &Figure{
		ID:     idA,
		Title:  fmt.Sprintf("%s: strategies vs publishing rate", scenario),
		XLabel: "publishing rate",
		YLabel: ylabelA,
		Series: names,
	}
	figB := &Figure{
		ID:     idB,
		Title:  fmt.Sprintf("%s: network traffic vs publishing rate", scenario),
		XLabel: "publishing rate",
		YLabel: "msg number (k)",
		Series: names,
	}
	for _, rate := range opts.Rates {
		pa := Point{X: rate, Values: map[string]float64{}}
		pb := Point{X: rate, Values: map[string]float64{}}
		for i, strat := range strategies {
			res, err := opts.runOne(scenario, strat, rate)
			if err != nil {
				return nil, nil, err
			}
			pa.Values[names[i]] = yA(res)
			pb.Values[names[i]] = res.MessageNumberK()
		}
		figA.Points = append(figA.Points, pa)
		figB.Points = append(figB.Points, pb)
	}
	return figA, figB, nil
}

// Run dispatches a figure id ("4a", "4b", "5a", "5b", "6a", "6b", or "5"
// and "6" for both panels) to its runner.
func Run(id string, opts Options) ([]*Figure, error) {
	switch id {
	case "4a":
		f, err := Figure4a(opts)
		return []*Figure{f}, err
	case "4b":
		f, err := Figure4b(opts)
		return []*Figure{f}, err
	case "5", "5a", "5b":
		a, b, err := Figure5(opts)
		if err != nil {
			return nil, err
		}
		switch id {
		case "5a":
			return []*Figure{a}, nil
		case "5b":
			return []*Figure{b}, nil
		}
		return []*Figure{a, b}, nil
	case "6", "6a", "6b":
		a, b, err := Figure6(opts)
		if err != nil {
			return nil, err
		}
		switch id {
		case "6a":
			return []*Figure{a}, nil
		case "6b":
			return []*Figure{b}, nil
		}
		return []*Figure{a, b}, nil
	}
	return nil, fmt.Errorf("experiments: unknown figure %q (want 4a, 4b, 5, 5a, 5b, 6, 6a, 6b)", id)
}

// All runs every figure of the paper's evaluation.
func All(opts Options) ([]*Figure, error) {
	var out []*Figure
	for _, id := range []string{"4a", "4b", "5", "6"} {
		figs, err := Run(id, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, figs...)
	}
	return out, nil
}
