package experiments

import (
	"fmt"
	"runtime"

	"bdps/internal/core"
	"bdps/internal/metrics"
	"bdps/internal/msg"
	bdpsruntime "bdps/internal/runtime"
	"bdps/internal/simnet"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

// Options scales an experiment. The zero value reproduces the paper's
// full setup; tests and benchmarks shrink Duration and Seeds.
type Options struct {
	// Seeds to average over; default {1, 2, 3}.
	Seeds []uint64
	// Duration of the publishing window; default 2 h (paper §6.1).
	Duration vtime.Millis
	// Rates is the publishing-rate sweep for Figures 5 and 6; default
	// {1, 3, 6, 9, 12, 15} msg/min per publisher.
	Rates []float64
	// Weights is the EBPC r sweep for Figure 4; default 0, 0.1, …, 1.
	Weights []float64
	// Fig4Rate is the fixed publishing rate of Figure 4; nil means the
	// paper's 10. Use Float to set it, explicit zero included.
	Fig4Rate *float64
	// EBPCWeight, when set, adds an "EBPC" series running with that r to
	// the Figure 5/6 rate sweeps; the paper found r ∈ (0.23, 1)
	// beneficial. nil reproduces the paper's four-series panels. The
	// endpoints are honored: Float(0) runs as pure PC and Float(1) as
	// pure EB through the run cache.
	EBPCWeight *float64
	// Params are the scheduling parameters for the proposed strategies
	// (EB, PC, EBPC); FIFO and RL always run with ε = 0, as traditional
	// strategies have no invalid-message detection.
	Params core.Params
	// Multipath, MeasureSamples and LinkModel pass through to the
	// simulator for ablations.
	Multipath      int
	MeasureSamples int
	LinkModel      simnet.LinkModel
	// Churn adds a dynamic subscriber population to every cell
	// (subscribe/unsubscribe floods mutating the routing tables mid-run;
	// see workload.Churn). Cells with churn force the counting-index fast
	// path so figures exercise the incremental index under mutation.
	Churn workload.Churn
	// Parallelism caps concurrent simulation runs; 0 or negative means
	// runtime.GOMAXPROCS(0). 1 reproduces the sequential harness. Figure
	// output is bit-identical at every setting: cells are deterministic
	// and results are assembled by cell, never by completion order.
	Parallelism int
	// Backend selects the runtime transport cells run on; nil means the
	// discrete-event simulator. Non-deterministic backends (the live TCP
	// overlay) disable the run cache, so every cell actually executes.
	Backend bdpsruntime.Transport
	// TimeScale compresses emulated delays on wall-clock backends (see
	// runtime.Config.TimeScale); ignored by the simulator.
	TimeScale float64
	// LiveShards selects the live backend's data plane (see
	// runtime.Config.LiveShards); ignored by the simulator.
	LiveShards int
	// Progress, when non-nil, receives one line per completed run. It
	// may be called from worker goroutines, but never concurrently:
	// calls are serialized by the harness. Line order under parallelism
	// follows completion order; cache hits emit nothing.
	Progress func(string)

	// exec is the shared worker pool + run cache. setDefaults installs
	// one, so every figure built from one defaulted Options value (All,
	// CheckClaims) dedupes cells against the same cache.
	exec *executor
}

// Float returns a pointer to v, for the Options fields that distinguish
// "unset" (nil) from an explicit value — Float(0) is a real zero, not a
// request for the default.
func Float(v float64) *float64 { return &v }

func (o *Options) setDefaults() {
	if len(o.Seeds) == 0 {
		o.Seeds = []uint64{1, 2, 3}
	}
	if o.Duration == 0 {
		o.Duration = 2 * vtime.Hour
	}
	if len(o.Rates) == 0 {
		o.Rates = []float64{1, 3, 6, 9, 12, 15}
	}
	if len(o.Weights) == 0 {
		o.Weights = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}
	}
	if o.Fig4Rate == nil {
		o.Fig4Rate = Float(10)
	}
	if o.Params == (core.Params{}) {
		o.Params = core.DefaultParams()
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.exec == nil {
		o.exec = newExecutor(o.Parallelism, o.Progress, o.Backend)
	}
}

// paramsFor returns the scheduling parameters a strategy runs with:
// traditional baselines (FIFO, RL) drop only expired messages.
func (o *Options) paramsFor(s core.Strategy) core.Params {
	switch s.(type) {
	case core.FIFO, core.RL:
		return core.Params{PD: o.Params.PD, Epsilon: 0}
	default:
		return o.Params
	}
}

// Figure4a reproduces Figure 4(a): SSD total earning versus the EBPC
// weight r, with the flat EB and PC references.
func Figure4a(opts Options) (*Figure, error) {
	opts.setDefaults()
	return figure4(opts, msg.SSD, "4a", "total earning (k)",
		func(r metrics.Result) float64 { return r.EarningK() })
}

// Figure4b reproduces Figure 4(b): PSD delivery rate versus r.
func Figure4b(opts Options) (*Figure, error) {
	opts.setDefaults()
	return figure4(opts, msg.PSD, "4b", "delivery rate (%)",
		func(r metrics.Result) float64 { return 100 * r.DeliveryRate() })
}

// figure4Cells declares Figure 4's grid: the flat EB/PC references,
// then one EBPC cell per weight. The endpoint weights normalize onto
// the pure strategies in the run cache (eq. 10), so w = 0 and w = 1
// reuse the reference runs.
func figure4Cells(opts Options, scenario msg.Scenario) []Cell {
	var cells []Cell
	cells = opts.grid(cells, scenario, core.MaxEB{}, *opts.Fig4Rate)
	cells = opts.grid(cells, scenario, core.MaxPC{}, *opts.Fig4Rate)
	for _, w := range opts.Weights {
		cells = opts.grid(cells, scenario, core.MaxEBPC{R: w}, *opts.Fig4Rate)
	}
	return cells
}

func figure4(opts Options, scenario msg.Scenario, id, ylabel string, y func(metrics.Result) float64) (*Figure, error) {
	fig := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("%s: EB vs PC vs EBPC, publishing rate %.0f", scenario, *opts.Fig4Rate),
		XLabel: "weight of EB (%)",
		YLabel: ylabel,
		Series: []string{"EBPC", "EB", "PC"},
	}
	rs, err := opts.runCells(figure4Cells(opts, scenario))
	if err != nil {
		return nil, err
	}
	pts := meanBySeed(rs, len(opts.Seeds))
	ebRes, pcRes := pts[0], pts[1]
	for i, w := range opts.Weights {
		fig.Points = append(fig.Points, Point{
			X: 100 * w,
			Values: map[string]float64{
				"EBPC": y(pts[2+i]),
				"EB":   y(ebRes),
				"PC":   y(pcRes),
			},
		})
	}
	return fig, nil
}

// Figure5 reproduces Figure 5: the SSD rate sweep. It returns panel (a)
// total earning and panel (b) message number from one set of runs.
func Figure5(opts Options) (earning, traffic *Figure, err error) {
	opts.setDefaults()
	return rateSweep(opts, msg.SSD, "5a", "5b",
		"total earning (k)", func(r metrics.Result) float64 { return r.EarningK() })
}

// Figure6 reproduces Figure 6: the PSD rate sweep. It returns panel (a)
// delivery rate and panel (b) message number from one set of runs.
func Figure6(opts Options) (delivery, traffic *Figure, err error) {
	opts.setDefaults()
	return rateSweep(opts, msg.PSD, "6a", "6b",
		"delivery rate (%)", func(r metrics.Result) float64 { return 100 * r.DeliveryRate() })
}

// sweepStrategies returns the rate-sweep strategy set: the paper's four
// series, plus EBPC when Options.EBPCWeight asks for it.
func sweepStrategies(opts Options) ([]core.Strategy, []string) {
	strategies := []core.Strategy{core.MaxEB{}, core.MaxPC{}, core.FIFO{}, core.RL{}}
	names := []string{"EB", "PC", "FIFO", "RL"}
	if opts.EBPCWeight != nil {
		strategies = append(strategies, core.MaxEBPC{R: *opts.EBPCWeight})
		names = append(names, "EBPC")
	}
	return strategies, names
}

// rateSweepCells declares the Figure 5/6 grid: every strategy at every
// rate, seeds innermost.
func rateSweepCells(opts Options, scenario msg.Scenario) []Cell {
	strategies, _ := sweepStrategies(opts)
	var cells []Cell
	for _, rate := range opts.Rates {
		for _, strat := range strategies {
			cells = opts.grid(cells, scenario, strat, rate)
		}
	}
	return cells
}

func rateSweep(opts Options, scenario msg.Scenario, idA, idB, ylabelA string, yA func(metrics.Result) float64) (*Figure, *Figure, error) {
	strategies, names := sweepStrategies(opts)

	figA := &Figure{
		ID:     idA,
		Title:  fmt.Sprintf("%s: strategies vs publishing rate", scenario),
		XLabel: "publishing rate",
		YLabel: ylabelA,
		Series: names,
	}
	figB := &Figure{
		ID:     idB,
		Title:  fmt.Sprintf("%s: network traffic vs publishing rate", scenario),
		XLabel: "publishing rate",
		YLabel: "msg number (k)",
		Series: names,
	}
	rs, err := opts.runCells(rateSweepCells(opts, scenario))
	if err != nil {
		return nil, nil, err
	}
	pts := meanBySeed(rs, len(opts.Seeds))
	k := 0
	for _, rate := range opts.Rates {
		pa := Point{X: rate, Values: map[string]float64{}}
		pb := Point{X: rate, Values: map[string]float64{}}
		for i := range strategies {
			res := pts[k]
			k++
			pa.Values[names[i]] = yA(res)
			pb.Values[names[i]] = res.MessageNumberK()
		}
		figA.Points = append(figA.Points, pa)
		figB.Points = append(figB.Points, pb)
	}
	return figA, figB, nil
}

// Run dispatches a figure id ("4a", "4b", "5a", "5b", "6a", "6b", or "5"
// and "6" for both panels) to its runner.
func Run(id string, opts Options) ([]*Figure, error) {
	switch id {
	case "4a":
		f, err := Figure4a(opts)
		return []*Figure{f}, err
	case "4b":
		f, err := Figure4b(opts)
		return []*Figure{f}, err
	case "5", "5a", "5b":
		a, b, err := Figure5(opts)
		if err != nil {
			return nil, err
		}
		switch id {
		case "5a":
			return []*Figure{a}, nil
		case "5b":
			return []*Figure{b}, nil
		}
		return []*Figure{a, b}, nil
	case "6", "6a", "6b":
		a, b, err := Figure6(opts)
		if err != nil {
			return nil, err
		}
		switch id {
		case "6a":
			return []*Figure{a}, nil
		case "6b":
			return []*Figure{b}, nil
		}
		return []*Figure{a, b}, nil
	}
	return nil, fmt.Errorf("experiments: unknown figure %q (want 4a, 4b, 5, 5a, 5b, 6, 6a, 6b)", id)
}

// All runs every figure of the paper's evaluation. The union of every
// figure's cells runs as one worker-pool batch — no barrier between
// figures, so the pool never idles on one sweep's straggler cell while
// another sweep still has work — and cells duplicated across panels and
// figures execute once. The builders then assemble from the warm cache.
func All(opts Options) ([]*Figure, error) {
	opts.setDefaults()
	var cells []Cell
	for _, sc := range []msg.Scenario{msg.SSD, msg.PSD} {
		cells = append(cells, figure4Cells(opts, sc)...)
	}
	for _, sc := range []msg.Scenario{msg.SSD, msg.PSD} {
		cells = append(cells, rateSweepCells(opts, sc)...)
	}
	if _, err := opts.runCells(cells); err != nil {
		return nil, err
	}
	var out []*Figure
	for _, id := range []string{"4a", "4b", "5", "6"} {
		figs, err := Run(id, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, figs...)
	}
	return out, nil
}
