package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"

	"bdps/internal/core"
	"bdps/internal/metrics"
	"bdps/internal/runtime"
	"bdps/internal/simnet"
	"bdps/internal/topology"
)

// executor runs simulation configs on a bounded worker pool with a
// config-keyed, single-flight run cache. One executor is shared by all
// figures built from the same defaulted Options (All and CheckClaims
// share one across the whole evaluation), so identical cells — across
// points, panels and figures — run exactly once, generalizing the old
// ad-hoc Figure-4 endpoint reuse.
//
// Every simnet.Run is deterministic in its config, so caching and
// concurrency cannot change any figure value: results are assembled by
// declaration order, never completion order.
type executor struct {
	sem chan struct{} // bounds concurrent runtime.Run calls
	// backend carries every run. Only deterministic backends (the
	// simulator) are cached; live runs always execute.
	backend runtime.Transport

	progressMu sync.Mutex
	progress   func(string)

	mu    sync.Mutex
	cache map[string]*cacheSlot
	// pinned holds every adopted overlay that entered a cache key: keys
	// use the overlay's address (%p), so the executor keeps the overlay
	// reachable for the cache's lifetime — a freed overlay's address
	// could otherwise be recycled for a different one and collide.
	pinned []*topology.Overlay
}

// cacheSlot is one in-flight or completed run. done is closed by the
// goroutine that claimed the slot once res/err are set.
type cacheSlot struct {
	done chan struct{}
	res  metrics.Result
	err  error
}

func newExecutor(parallelism int, progress func(string), backend runtime.Transport) *executor {
	if parallelism < 1 {
		parallelism = 1
	}
	if backend == nil {
		backend = simnet.Transport{}
	}
	return &executor{
		sem:      make(chan struct{}, parallelism),
		backend:  backend,
		progress: progress,
		cache:    make(map[string]*cacheSlot),
	}
}

// emit forwards one progress line, serializing concurrent workers.
func (ex *executor) emit(line string) {
	if ex.progress == nil {
		return
	}
	ex.progressMu.Lock()
	defer ex.progressMu.Unlock()
	ex.progress(line)
}

// run executes one config, deduplicating identical configs: concurrent
// and repeated requests for the same key share a single simnet.Run.
func (ex *executor) run(cfg simnet.Config) (metrics.Result, error) {
	res, err, pending := ex.runOrDefer(cfg)
	if pending != nil {
		<-pending.done
		return pending.res, pending.err
	}
	return res, err
}

// runOrDefer is run, except that when an identical run is already in
// flight it returns that run's slot instead of blocking: pool workers
// keep dispatching unique cells and collect deferred slots after the
// batch drains, so a duplicate never idles a worker.
func (ex *executor) runOrDefer(cfg simnet.Config) (metrics.Result, error, *cacheSlot) {
	cfg.Strategy = normalizeStrategy(cfg.Strategy)
	key, cacheable := configKey(&cfg)
	if !ex.backend.Deterministic() {
		cacheable = false
	}
	if !cacheable {
		res, err := ex.exec(cfg)
		return res, err, nil
	}
	ex.mu.Lock()
	if s, ok := ex.cache[key]; ok {
		ex.mu.Unlock()
		select {
		case <-s.done:
			return s.res, s.err, nil
		default:
			return metrics.Result{}, nil, s
		}
	}
	s := &cacheSlot{done: make(chan struct{})}
	ex.cache[key] = s
	if cfg.Overlay != nil {
		ex.pinned = append(ex.pinned, cfg.Overlay)
	}
	ex.mu.Unlock()
	s.res, s.err = ex.exec(cfg)
	close(s.done)
	return s.res, s.err, nil
}

// exec performs the actual run under the worker-slot semaphore.
func (ex *executor) exec(cfg simnet.Config) (metrics.Result, error) {
	ex.sem <- struct{}{}
	defer func() { <-ex.sem }()
	r, err := runtime.Run(cfg, ex.backend)
	if err == nil {
		ex.emit(r.String())
	}
	return r, err
}

// runAll executes a batch of configs and returns their results aligned
// by index. With one worker the batch runs strictly in order — the old
// sequential harness, early abort included. Otherwise a pool of
// Parallelism workers drains the batch; once any cell fails, no further
// cells are handed out (in-flight ones finish), and the lowest-index
// recorded error is returned. Indices are dispatched in order and every
// dispatched cell completes, so the lowest-index failing cell always
// runs and its error always wins: failures are deterministic too
// (TestRunAllDeterministicError). Results are only used on full
// success, so cancellation cannot perturb figure output.
func (ex *executor) runAll(cfgs []simnet.Config) ([]metrics.Result, error) {
	out := make([]metrics.Result, len(cfgs))
	workers := cap(ex.sem)
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	if workers <= 1 {
		for i := range cfgs {
			var err error
			if out[i], err = ex.run(cfgs[i]); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	errs := make([]error, len(cfgs))
	var failed atomic.Bool
	type hit struct {
		i int
		s *cacheSlot
	}
	var hitMu sync.Mutex
	var deferredHits []hit
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				res, err, pending := ex.runOrDefer(cfgs[i])
				if pending != nil {
					hitMu.Lock()
					deferredHits = append(deferredHits, hit{i, pending})
					hitMu.Unlock()
					continue
				}
				if out[i], errs[i] = res, err; err != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for i := range cfgs {
		if failed.Load() {
			break
		}
		idx <- i
	}
	close(idx)
	wg.Wait()
	// Duplicates of runs that were in flight at dispatch time: their
	// claimers have either finished with the batch or belong to a
	// concurrent batch on the same executor, so waiting here holds no
	// worker slot hostage.
	for _, h := range deferredHits {
		<-h.s.done
		out[h.i], errs[h.i] = h.s.res, h.s.err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// normalizeStrategy maps strategies that coincide by construction onto
// one representative, so their cells share a cache key and the figures
// stay exactly consistent: EBPC degenerates to pure PC at r=0 and pure
// EB at r=1 (eq. 10), which is also a third of the Figure-4 sweep saved.
func normalizeStrategy(s core.Strategy) core.Strategy {
	if e, ok := s.(core.MaxEBPC); ok {
		switch e.R {
		case 0:
			return core.MaxPC{}
		case 1:
			return core.MaxEB{}
		}
	}
	return s
}

// configKey renders a config into a cache key covering every
// behavior-affecting field, or reports it uncacheable. Traced or
// explicitly-subscribed runs are never cached: their extra inputs have
// no cheap canonical form and no experiment repeats them. Faults are
// cacheable — each fault renders with its dynamic type, and the plan
// validates and orders them deterministically — which is what lets the
// recovery ablation's kill-half cells hit the run cache.
//
// TestConfigKeyCoversAllFields pins the simnet.Config field list; extend
// this key when adding fields there.
func configKey(cfg *simnet.Config) (string, bool) {
	if cfg.Tracer != nil || cfg.Subscriptions != nil {
		return "", false
	}
	faults := ""
	for _, f := range cfg.Faults {
		faults += fmt.Sprintf("%T%+v;", f, f)
	}
	// The strategy needs its dynamic type spelled out (%+v alone prints
	// both FIFO{} and RL{} as "{}"). An adopted overlay is keyed by
	// identity: experiments reuse one *Overlay across the cells that
	// share it. TimeScale is keyed even though the simulator ignores it:
	// cached results are sim-only and the key must stay injective over
	// the whole config.
	return fmt.Sprintf("%d|%d|%T%+v|%+v|%+v|%p|%+v|%d|%d|%d|%g|%s|%t|%t|%g|%d|%+v|%+v|%g|%t|%+v",
		cfg.Seed, cfg.Scenario, cfg.Strategy, cfg.Strategy,
		cfg.Params, cfg.Workload, cfg.Overlay, cfg.TopologyCfg,
		cfg.Multipath, cfg.MeasureSamples, cfg.LinkModel, cfg.MinRate,
		faults, cfg.PerSubscriber, cfg.IndexedMatch, cfg.TimeScale,
		cfg.LiveShards, cfg.Recovery, cfg.Reliability, cfg.TimelineBucket,
		cfg.Aggregate, cfg.Admission,
	), true
}
