package experiments

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"bdps/internal/vtime"
)

// TestPaperClaims is the executable reproduction check: all qualitative
// claims of §6.2 must hold on a 10-minute window. (The full-scale run is
// `bdps-sim -claims`; results are recorded in EXPERIMENTS.md.)
func TestPaperClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("claims need a window long enough for congestion to build")
	}
	opts := Options{
		Seeds:    []uint64{1},
		Duration: 10 * vtime.Minute,
		Rates:    []float64{3, 9, 15},
		Weights:  []float64{0, 0.5, 0.7, 1},
	}
	results, err := CheckClaims(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(PaperClaims()) {
		t.Fatalf("checked %d claims, want %d", len(results), len(PaperClaims()))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("claim %s failed: %v (%s)", r.Claim.ID, r.Err, r.Claim.Description)
		}
	}
}

func TestRenderClaims(t *testing.T) {
	results := []ClaimResult{
		{Claim: Claim{ID: "ok", Description: "fine"}},
		{Claim: Claim{ID: "bad", Description: "broken"}, Err: errTest},
	}
	var buf bytes.Buffer
	failed, err := RenderClaims(&buf, results)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 1 {
		t.Errorf("failed = %d, want 1", failed)
	}
	out := buf.String()
	if !strings.Contains(out, "PASS ok") || !strings.Contains(out, "FAIL bad") {
		t.Errorf("report:\n%s", out)
	}
}

var errTest = &claimError{"synthetic"}

type claimError struct{ s string }

func (e *claimError) Error() string { return e.s }

func TestClaimsHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range PaperClaims() {
		if seen[c.ID] {
			t.Errorf("duplicate claim id %s", c.ID)
		}
		seen[c.ID] = true
		if c.Description == "" || c.Check == nil {
			t.Errorf("claim %s incomplete", c.ID)
		}
	}
}

func TestAblationRunners(t *testing.T) {
	opts := Options{Seeds: []uint64{1}, Duration: 2 * vtime.Minute}
	for _, id := range Ablations() {
		fig, err := RunAblation(id, opts)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(fig.Points) < 2 {
			t.Errorf("%s: only %d points", id, len(fig.Points))
		}
		for _, p := range fig.Points {
			for s, v := range p.Values {
				if v < 0 {
					t.Errorf("%s: series %s negative at x=%v: %v", id, s, p.X, v)
				}
			}
		}
	}
	if _, err := RunAblation("nope", opts); err == nil {
		t.Error("unknown ablation should fail")
	}
}

func TestAblationEpsilonShape(t *testing.T) {
	opts := Options{Seeds: []uint64{1}, Duration: 4 * vtime.Minute}
	fig, err := AblationEpsilon(opts)
	if err != nil {
		t.Fatal(err)
	}
	// ε = 0 produces no hopeless drops; large ε produces many.
	if fig.Points[0].Values["hopeless drops k"] != 0 {
		t.Error("ε=0 must not drop hopeless entries")
	}
	last := fig.Points[len(fig.Points)-1]
	if last.Values["hopeless drops k"] == 0 {
		t.Error("aggressive ε should drop entries")
	}
}

func TestAblationFairnessProducesIndex(t *testing.T) {
	opts := Options{Seeds: []uint64{1}, Duration: 3 * vtime.Minute}
	fig, err := AblationFairness(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range fig.Points {
		if j := p.Values["jain"]; j <= 0 || j > 1 {
			t.Errorf("jain index %v out of (0,1]", j)
		}
	}
}

// TestAblationRecoveryShape pins the recovery ablation's story: after
// the kill-half crash, the unhealed run flatlines while the repaired
// runs return to the quiet baseline, renegotiation doing at least as
// well as plain repair — and the whole figure is deterministic (the
// kill-half cells go through the run cache like any other).
func TestAblationRecoveryShape(t *testing.T) {
	opts := Options{Seeds: []uint64{1}, Duration: 8 * vtime.Minute}
	fig, err := AblationRecovery(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 8 {
		t.Fatalf("got %d timeline points, want 8 (duration/8 buckets)", len(fig.Points))
	}
	again, err := AblationRecovery(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fig, again) {
		t.Error("recovery ablation not deterministic across runs")
	}
	// The crash lands at T/4 = bucket 2; detection is near-immediate at
	// this scale, so buckets 4+ are fully post-recovery.
	for _, p := range fig.Points[4:] {
		if p.Values["no recovery"] != 0 {
			t.Errorf("x=%v: unhealed run delivered %.1f%%, want 0 (all paths severed)",
				p.X, p.Values["no recovery"])
		}
		if d := math.Abs(p.Values["repair"] - p.Values["no faults"]); d > 15 {
			t.Errorf("x=%v: repaired rate %.1f%% vs quiet %.1f%% (Δ %.1f > 15)",
				p.X, p.Values["repair"], p.Values["no faults"], d)
		}
		if p.Values["repair+renegotiate"] < p.Values["repair"] {
			t.Errorf("x=%v: renegotiation (%.1f%%) must not trail plain repair (%.1f%%)",
				p.X, p.Values["repair+renegotiate"], p.Values["repair"])
		}
	}
}
