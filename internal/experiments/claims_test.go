package experiments

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"bdps/internal/core"
	"bdps/internal/msg"
	"bdps/internal/runtime"
	"bdps/internal/simnet"
	"bdps/internal/stats"
	"bdps/internal/topology"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

// TestPaperClaims is the executable reproduction check: all qualitative
// claims of §6.2 must hold on a 10-minute window. (The full-scale run is
// `bdps-sim -claims`; results are recorded in EXPERIMENTS.md.)
func TestPaperClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("claims need a window long enough for congestion to build")
	}
	opts := Options{
		Seeds:    []uint64{1},
		Duration: 10 * vtime.Minute,
		Rates:    []float64{3, 9, 15},
		Weights:  []float64{0, 0.5, 0.7, 1},
	}
	results, err := CheckClaims(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(PaperClaims()) {
		t.Fatalf("checked %d claims, want %d", len(results), len(PaperClaims()))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("claim %s failed: %v (%s)", r.Claim.ID, r.Err, r.Claim.Description)
		}
	}
}

func TestRenderClaims(t *testing.T) {
	results := []ClaimResult{
		{Claim: Claim{ID: "ok", Description: "fine"}},
		{Claim: Claim{ID: "bad", Description: "broken"}, Err: errTest},
	}
	var buf bytes.Buffer
	failed, err := RenderClaims(&buf, results)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 1 {
		t.Errorf("failed = %d, want 1", failed)
	}
	out := buf.String()
	if !strings.Contains(out, "PASS ok") || !strings.Contains(out, "FAIL bad") {
		t.Errorf("report:\n%s", out)
	}
}

var errTest = &claimError{"synthetic"}

type claimError struct{ s string }

func (e *claimError) Error() string { return e.s }

func TestClaimsHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range PaperClaims() {
		if seen[c.ID] {
			t.Errorf("duplicate claim id %s", c.ID)
		}
		seen[c.ID] = true
		if c.Description == "" || c.Check == nil {
			t.Errorf("claim %s incomplete", c.ID)
		}
	}
}

func TestAblationRunners(t *testing.T) {
	opts := Options{Seeds: []uint64{1}, Duration: 2 * vtime.Minute}
	for _, id := range Ablations() {
		fig, err := RunAblation(id, opts)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(fig.Points) < 2 {
			t.Errorf("%s: only %d points", id, len(fig.Points))
		}
		for _, p := range fig.Points {
			for s, v := range p.Values {
				if v < 0 {
					t.Errorf("%s: series %s negative at x=%v: %v", id, s, p.X, v)
				}
			}
		}
	}
	if _, err := RunAblation("nope", opts); err == nil {
		t.Error("unknown ablation should fail")
	}
}

func TestAblationEpsilonShape(t *testing.T) {
	opts := Options{Seeds: []uint64{1}, Duration: 4 * vtime.Minute}
	fig, err := AblationEpsilon(opts)
	if err != nil {
		t.Fatal(err)
	}
	// ε = 0 produces no hopeless drops; large ε produces many.
	if fig.Points[0].Values["hopeless drops k"] != 0 {
		t.Error("ε=0 must not drop hopeless entries")
	}
	last := fig.Points[len(fig.Points)-1]
	if last.Values["hopeless drops k"] == 0 {
		t.Error("aggressive ε should drop entries")
	}
}

func TestAblationFairnessProducesIndex(t *testing.T) {
	opts := Options{Seeds: []uint64{1}, Duration: 3 * vtime.Minute}
	fig, err := AblationFairness(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range fig.Points {
		if j := p.Values["jain"]; j <= 0 || j > 1 {
			t.Errorf("jain index %v out of (0,1]", j)
		}
	}
}

// TestAblationRecoveryShape pins the recovery ablation's story: after
// the kill-half crash, the unhealed run flatlines while the repaired
// runs return to the quiet baseline, renegotiation doing at least as
// well as plain repair — and the whole figure is deterministic (the
// kill-half cells go through the run cache like any other).
func TestAblationRecoveryShape(t *testing.T) {
	opts := Options{Seeds: []uint64{1}, Duration: 8 * vtime.Minute}
	fig, err := AblationRecovery(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 8 {
		t.Fatalf("got %d timeline points, want 8 (duration/8 buckets)", len(fig.Points))
	}
	again, err := AblationRecovery(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fig, again) {
		t.Error("recovery ablation not deterministic across runs")
	}
	// The crash lands at T/4 = bucket 2; detection is near-immediate at
	// this scale, so buckets 4+ are fully post-recovery.
	for _, p := range fig.Points[4:] {
		if p.Values["no recovery"] != 0 {
			t.Errorf("x=%v: unhealed run delivered %.1f%%, want 0 (all paths severed)",
				p.X, p.Values["no recovery"])
		}
		if d := math.Abs(p.Values["repair"] - p.Values["no faults"]); d > 15 {
			t.Errorf("x=%v: repaired rate %.1f%% vs quiet %.1f%% (Δ %.1f > 15)",
				p.X, p.Values["repair"], p.Values["no faults"], d)
		}
		if p.Values["repair+renegotiate"] < p.Values["repair"] {
			t.Errorf("x=%v: renegotiation (%.1f%%) must not trail plain repair (%.1f%%)",
				p.X, p.Values["repair+renegotiate"], p.Values["repair"])
		}
	}
}

// TestAblationLossShape pins the lossy-network ablation's story: loss
// without retransmission bleeds deliveries, retransmission wins them
// back, and the deadline-aware arm strictly dominates the no-retry arm
// at every loss level while never delivering outside a bound — the slack
// check abandons exactly the retries that could only arrive late.
func TestAblationLossShape(t *testing.T) {
	opts := Options{Seeds: []uint64{1}, Duration: 4 * vtime.Minute}
	fig, err := AblationLoss(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Points) != 4 {
		t.Fatalf("got %d loss-rate points, want 4", len(fig.Points))
	}
	again, err := AblationLoss(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fig, again) {
		t.Error("loss ablation not deterministic across runs")
	}
	for _, p := range fig.Points {
		if p.Values["no retry"] >= p.Values["no loss"] {
			t.Errorf("x=%v: unhealed loss (%.1f%%) should trail the clean run (%.1f%%)",
				p.X, p.Values["no retry"], p.Values["no loss"])
		}
		if p.Values["deadline-aware"] <= p.Values["no retry"] {
			t.Errorf("x=%v: deadline-aware retry (%.1f%%) must strictly beat no retry (%.1f%%)",
				p.X, p.Values["deadline-aware"], p.Values["no retry"])
		}
	}
}

// TestDeadlineAwareRetryNeverLate drives the deadline-aware arm directly
// on an uncongested pipeline where every on-time path is comfortably
// feasible, so the ONLY way a delivery can run late is a retransmission
// burning more slack than the path had to spare. The path-aware gate
// (RetryPolicy.EffectiveDeadline: each retry must leave the downstream
// hops their SuccessTarget quantile) must then abandon some
// retransmissions (DroppedDeadline > 0) and violate no bound at all
// (LateDeliveries stays 0) — while blind retry on the identical adversary
// does deliver late, and no-retry bleeds deliveries the gate wins back.
func TestDeadlineAwareRetryNeverLate(t *testing.T) {
	mk := func(rel runtime.Reliability) simnet.Config {
		g := topology.NewGraph(6)
		for _, l := range []struct {
			a, b msg.NodeID
			mean float64
		}{{0, 2, 50}, {1, 2, 55}, {2, 3, 45}, {3, 4, 50}, {3, 5, 60}} {
			if err := g.AddLink(l.a, l.b, stats.Normal{Mean: l.mean, Sigma: 5}); err != nil {
				t.Fatal(err)
			}
		}
		return simnet.Config{
			Seed:     1,
			Scenario: msg.PSD,
			Strategy: core.MaxEB{},
			Overlay: &topology.Overlay{
				Graph:   g,
				Ingress: []msg.NodeID{0, 1},
				Edges:   []msg.NodeID{4, 5},
			},
			Workload: workload.Config{
				RatePerMin: 4,
				Duration:   20 * vtime.Minute,
				// ~7.5 s of path time against a 20–23 s bound: on-time
				// without loss, but without slack for unbounded re-sending.
				PSDDelayLo: 20 * vtime.Second,
				PSDDelayHi: 23 * vtime.Second,
			},
			Faults: []simnet.Fault{simnet.LinkLoss{
				From: msg.None, To: msg.None,
				Rate: 0.25, Dup: 0.05,
			}},
			Reliability: rel,
		}
	}
	r, err := simnet.Run(mk(runtime.Reliability{}))
	if err != nil {
		t.Fatal(err)
	}
	if r.FramesLost == 0 {
		t.Fatal("adversary lost nothing")
	}
	if r.DroppedDeadline == 0 {
		t.Error("25% loss should exhaust some frames' slack")
	}
	if r.LateDeliveries != 0 {
		t.Errorf("deadline-aware retry delivered %d messages late, want 0", r.LateDeliveries)
	}
	if r.Retransmits >= r.FramesLost {
		t.Errorf("abandoning retries must leave retransmits (%d) below losses (%d)",
			r.Retransmits, r.FramesLost)
	}
	blind, err := simnet.Run(mk(runtime.Reliability{BlindRetry: true}))
	if err != nil {
		t.Fatal(err)
	}
	if blind.DroppedDeadline != 0 {
		t.Errorf("blind retry abandoned %d frames, want 0", blind.DroppedDeadline)
	}
	if blind.Retransmits != blind.FramesLost {
		t.Errorf("blind retry must retry every loss: retransmits %d, losses %d",
			blind.Retransmits, blind.FramesLost)
	}
	if blind.LateDeliveries == 0 {
		t.Error("blind retry under 25% loss should deliver something late — else the gate proves nothing")
	}
	noretry, err := simnet.Run(mk(runtime.Reliability{NoRetry: true}))
	if err != nil {
		t.Fatal(err)
	}
	if r.DeliveryRate() <= noretry.DeliveryRate() {
		t.Errorf("deadline-aware retry (%.3f) must strictly beat no retry (%.3f)",
			r.DeliveryRate(), noretry.DeliveryRate())
	}
}
