package experiments

import (
	"bytes"
	"strings"
	"testing"

	"bdps/internal/core"
	"bdps/internal/vtime"
)

// tinyOpts shrinks runs so the whole figure suite stays fast in tests.
func tinyOpts() Options {
	return Options{
		Seeds:    []uint64{1},
		Duration: 4 * vtime.Minute,
		Rates:    []float64{6, 12},
		Weights:  []float64{0, 0.5, 1},
		Fig4Rate: Float(8),
	}
}

func TestFigure4aStructure(t *testing.T) {
	fig, err := Figure4a(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "4a" || len(fig.Points) != 3 {
		t.Fatalf("fig = %+v", fig)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %v", fig.Series)
	}
	// EB and PC are flat references.
	for i := 1; i < len(fig.Points); i++ {
		if fig.Value(i, "EB") != fig.Value(0, "EB") {
			t.Error("EB reference line should be flat")
		}
		if fig.Value(i, "PC") != fig.Value(0, "PC") {
			t.Error("PC reference line should be flat")
		}
	}
	// Endpoints coincide with the pure strategies.
	if fig.Value(0, "EBPC") != fig.Value(0, "PC") {
		t.Error("EBPC at r=0 must equal PC")
	}
	last := len(fig.Points) - 1
	if fig.Value(last, "EBPC") != fig.Value(last, "EB") {
		t.Error("EBPC at r=1 must equal EB")
	}
	for _, p := range fig.Points {
		if p.Values["EBPC"] <= 0 {
			t.Error("zero earning in EBPC sweep")
		}
	}
}

func TestFigure4bStructure(t *testing.T) {
	fig, err := Figure4b(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ID != "4b" {
		t.Fatalf("id = %s", fig.ID)
	}
	for _, p := range fig.Points {
		v := p.Values["EBPC"]
		if v <= 0 || v > 100 {
			t.Errorf("delivery rate %v out of (0,100]", v)
		}
	}
}

func TestFigure5ShapesAndSharedRuns(t *testing.T) {
	earning, traffic, err := Figure5(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if earning.ID != "5a" || traffic.ID != "5b" {
		t.Fatalf("ids = %s/%s", earning.ID, traffic.ID)
	}
	if len(earning.Points) != 2 || len(traffic.Points) != 2 {
		t.Fatal("rate sweep should have 2 points")
	}
	// Congested point: EB must beat the traditional baselines (the
	// paper's headline result).
	last := len(earning.Points) - 1
	eb := earning.Value(last, "EB")
	if eb <= earning.Value(last, "FIFO") || eb <= earning.Value(last, "RL") {
		t.Errorf("EB earning %v should beat FIFO %v and RL %v at high rate",
			eb, earning.Value(last, "FIFO"), earning.Value(last, "RL"))
	}
	// Traffic is positive everywhere.
	for _, p := range traffic.Points {
		for s, v := range p.Values {
			if v <= 0 {
				t.Errorf("series %s has non-positive traffic %v", s, v)
			}
		}
	}
}

func TestFigure6Shapes(t *testing.T) {
	delivery, _, err := Figure6(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	last := len(delivery.Points) - 1
	eb := delivery.Value(last, "EB")
	if eb <= delivery.Value(last, "RL") {
		t.Errorf("EB delivery %v should beat RL %v under load",
			eb, delivery.Value(last, "RL"))
	}
	// Delivery rate decreases with publishing rate for EB.
	if delivery.Value(0, "EB") <= delivery.Value(last, "EB") {
		t.Error("delivery rate should fall as rate grows")
	}
}

func TestRunDispatch(t *testing.T) {
	opts := tinyOpts()
	for id, want := range map[string]int{
		"4a": 1, "4b": 1, "5": 2, "5a": 1, "5b": 1, "6": 2, "6a": 1, "6b": 1,
	} {
		figs, err := Run(id, opts)
		if err != nil {
			t.Fatalf("Run(%q): %v", id, err)
		}
		if len(figs) != want {
			t.Errorf("Run(%q) returned %d figures, want %d", id, len(figs), want)
		}
	}
	if _, err := Run("7z", opts); err == nil {
		t.Error("unknown figure id should fail")
	}
}

func TestProgressCallback(t *testing.T) {
	opts := tinyOpts()
	var lines []string
	opts.Progress = func(s string) { lines = append(lines, s) }
	if _, err := Figure4a(opts); err != nil {
		t.Fatal(err)
	}
	// 3 weights with endpoints reused: EB + PC + 1 mid EBPC = 3 runs.
	if len(lines) != 3 {
		t.Errorf("progress lines = %d, want 3", len(lines))
	}
}

func TestParamsForBaselines(t *testing.T) {
	opts := tinyOpts()
	opts.setDefaults()
	if p := opts.paramsFor(core.FIFO{}); p.Epsilon != 0 {
		t.Error("FIFO must run without ε-detection")
	}
	if p := opts.paramsFor(core.RL{}); p.Epsilon != 0 {
		t.Error("RL must run without ε-detection")
	}
	if p := opts.paramsFor(core.MaxEB{}); p.Epsilon != core.DefaultEpsilon {
		t.Error("EB should keep the configured ε")
	}
}

// TestOptionsExplicitZero pins the unset-vs-zero distinction: nil means
// "use the paper default", Float(0) is a real zero and must be honored
// rather than silently rewritten to the default.
func TestOptionsExplicitZero(t *testing.T) {
	var o Options
	o.setDefaults()
	if o.Fig4Rate == nil || *o.Fig4Rate != 10 {
		t.Errorf("unset Fig4Rate should default to 10, got %v", o.Fig4Rate)
	}
	if o.EBPCWeight != nil {
		t.Errorf("unset EBPCWeight should stay nil (paper series only), got %v", *o.EBPCWeight)
	}
	o = Options{Fig4Rate: Float(0), EBPCWeight: Float(0)}
	o.setDefaults()
	if *o.Fig4Rate != 0 {
		t.Errorf("explicit Fig4Rate 0 rewritten to %v", *o.Fig4Rate)
	}
	if *o.EBPCWeight != 0 {
		t.Errorf("explicit EBPCWeight 0 rewritten to %v", *o.EBPCWeight)
	}
}

// TestSweepEBPCWeightZero runs the previously unreachable r=0 sweep
// point: the EBPC series appears and coincides with pure PC (eq. 10).
func TestSweepEBPCWeightZero(t *testing.T) {
	opts := tinyOpts()
	opts.Rates = []float64{6}
	opts.EBPCWeight = Float(0)
	fig, _, err := Figure5(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 || fig.Series[4] != "EBPC" {
		t.Fatalf("series = %v, want EBPC appended", fig.Series)
	}
	for i := range fig.Points {
		if fig.Value(i, "EBPC") != fig.Value(i, "PC") {
			t.Errorf("point %d: EBPC(r=0) %v != PC %v", i, fig.Value(i, "EBPC"), fig.Value(i, "PC"))
		}
	}
	// And without EBPCWeight the paper's four series are untouched.
	opts.EBPCWeight = nil
	fig, _, err = Figure5(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("default series = %v, want the paper's four", fig.Series)
	}
}

func TestFigureRender(t *testing.T) {
	fig := &Figure{
		ID: "t", Title: "test", XLabel: "x", YLabel: "y",
		Series: []string{"A", "B"},
		Points: []Point{
			{X: 1, Values: map[string]float64{"A": 1.5, "B": 2}},
			{X: 2.5, Values: map[string]float64{"A": 3, "B": 4}},
		},
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure t", "A", "B", "1.50", "4.00", "(y: y)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFigureWriteCSV(t *testing.T) {
	fig := &Figure{
		ID: "t", XLabel: "rate", Series: []string{"EB"},
		Points: []Point{{X: 3, Values: map[string]float64{"EB": 7.25}}},
	}
	var buf bytes.Buffer
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.HasPrefix(got, "rate,EB\n") || !strings.Contains(got, "3,7.25") {
		t.Errorf("csv = %q", got)
	}
}

func TestTrimFloat(t *testing.T) {
	for in, want := range map[float64]string{1: "1", 2.5: "2.5", 0.25: "0.25", 10: "10"} {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
