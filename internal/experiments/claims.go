package experiments

import (
	"fmt"
	"io"
)

// Claim is one falsifiable statement the paper's evaluation makes. The
// claims checker reruns the experiments and verifies each statement
// against the measured figures, turning "the shapes should hold" into an
// executable test (`bdps-sim -claims` or TestPaperClaims).
type Claim struct {
	ID          string
	Description string
	// Check inspects the figures (keyed "4a".."6b") and returns an error
	// describing the violation, or nil.
	Check func(figs map[string]*Figure) error
}

// ClaimResult is one claim's verdict.
type ClaimResult struct {
	Claim Claim
	Err   error
}

// PaperClaims returns the qualitative results of §6.2 as checks. They are
// written with tolerances wide enough to hold from ~10-minute windows up
// to the full 2-hour reproduction.
func PaperClaims() []Claim {
	lastX := func(f *Figure) int { return len(f.Points) - 1 }
	return []Claim{
		{
			ID:          "fig6a-ordering",
			Description: "PSD delivery at the highest rate: EB > FIFO > RL (paper: 40.1% / 22.5% / 11.6%)",
			Check: func(figs map[string]*Figure) error {
				f := figs["6a"]
				i := lastX(f)
				eb, fifo, rl := f.Value(i, "EB"), f.Value(i, "FIFO"), f.Value(i, "RL")
				if !(eb > fifo && fifo > rl) {
					return fmt.Errorf("got EB=%.1f FIFO=%.1f RL=%.1f", eb, fifo, rl)
				}
				return nil
			},
		},
		{
			ID:          "fig6a-monotone",
			Description: "PSD delivery rate decreases as publishing rate grows (every strategy)",
			Check: func(figs map[string]*Figure) error {
				f := figs["6a"]
				for _, s := range f.Series {
					if f.Value(0, s) <= f.Value(lastX(f), s) {
						return fmt.Errorf("series %s: first %.1f <= last %.1f",
							s, f.Value(0, s), f.Value(lastX(f), s))
					}
				}
				return nil
			},
		},
		{
			ID:          "fig5a-eb-monotone",
			Description: "SSD earning grows monotonically with rate under EB (paper Fig 5a)",
			Check: func(figs map[string]*Figure) error {
				f := figs["5a"]
				for i := 1; i < len(f.Points); i++ {
					if f.Value(i, "EB") < f.Value(i-1, "EB")*0.98 {
						return fmt.Errorf("EB earning fell at x=%v: %.1f -> %.1f",
							f.Points[i].X, f.Value(i-1, "EB"), f.Value(i, "EB"))
					}
				}
				return nil
			},
		},
		{
			ID:          "fig5a-baselines-peak",
			Description: "FIFO and RL earnings peak then decline (paper Fig 5a)",
			Check: func(figs map[string]*Figure) error {
				f := figs["5a"]
				if len(f.Points) < 3 {
					return fmt.Errorf("need >= 3 rates to see a peak")
				}
				for _, s := range []string{"FIFO", "RL"} {
					last := f.Value(lastX(f), s)
					peak := last
					for i := range f.Points {
						if v := f.Value(i, s); v > peak {
							peak = v
						}
					}
					if peak <= last*1.05 {
						return fmt.Errorf("series %s never declines: peak %.1f vs last %.1f",
							s, peak, last)
					}
				}
				return nil
			},
		},
		{
			ID:          "fig5a-eb-multiple",
			Description: "SSD earning at the highest rate: EB is a multiple of FIFO (paper: 5×) and RL (paper: 10×)",
			Check: func(figs map[string]*Figure) error {
				f := figs["5a"]
				i := lastX(f)
				eb, fifo, rl := f.Value(i, "EB"), f.Value(i, "FIFO"), f.Value(i, "RL")
				if eb < 2*fifo || eb < 2*rl {
					return fmt.Errorf("EB=%.1f vs FIFO=%.1f RL=%.1f: below 2×", eb, fifo, rl)
				}
				return nil
			},
		},
		{
			ID:          "fig5b-traffic-modest",
			Description: "EB's extra traffic over FIFO stays modest (paper: +23% at rate 15)",
			Check: func(figs map[string]*Figure) error {
				f := figs["5b"]
				i := lastX(f)
				eb, fifo := f.Value(i, "EB"), f.Value(i, "FIFO")
				if eb < fifo*0.95 {
					return fmt.Errorf("EB traffic %.1f unexpectedly below FIFO %.1f", eb, fifo)
				}
				if eb > fifo*1.6 {
					return fmt.Errorf("EB traffic %.1f exceeds 1.6× FIFO %.1f", eb, fifo)
				}
				return nil
			},
		},
		{
			ID:          "fig4a-endpoints",
			Description: "EBPC degenerates to PC at r=0 and EB at r=1 (definition, eq. 10)",
			Check: func(figs map[string]*Figure) error {
				f := figs["4a"]
				if f.Value(0, "EBPC") != f.Value(0, "PC") {
					return fmt.Errorf("r=0: EBPC %.2f != PC %.2f",
						f.Value(0, "EBPC"), f.Value(0, "PC"))
				}
				i := lastX(f)
				if f.Value(i, "EBPC") != f.Value(i, "EB") {
					return fmt.Errorf("r=1: EBPC %.2f != EB %.2f",
						f.Value(i, "EBPC"), f.Value(i, "EB"))
				}
				return nil
			},
		},
		{
			ID:          "fig4a-eb-beats-pc",
			Description: "SSD: EB earns more than PC (paper Fig 4a)",
			Check: func(figs map[string]*Figure) error {
				f := figs["4a"]
				if f.Value(0, "EB") <= f.Value(0, "PC") {
					return fmt.Errorf("EB %.2f <= PC %.2f", f.Value(0, "EB"), f.Value(0, "PC"))
				}
				return nil
			},
		},
		{
			ID:          "fig4-ebpc-advantage",
			Description: "some EBPC weight matches or beats pure EB (paper: r in (23%,100%))",
			Check: func(figs map[string]*Figure) error {
				for _, id := range []string{"4a", "4b"} {
					f := figs[id]
					eb := f.Value(0, "EB")
					best := eb
					for i := range f.Points {
						if v := f.Value(i, "EBPC"); v > best {
							best = v
						}
					}
					if best < eb*0.995 {
						return fmt.Errorf("fig %s: best EBPC %.2f below EB %.2f", id, best, eb)
					}
				}
				return nil
			},
		},
	}
}

// CheckClaims runs every claim against the four figure panels, which it
// obtains by running the full experiment set at the given scale.
func CheckClaims(opts Options) ([]ClaimResult, error) {
	figs, err := All(opts)
	if err != nil {
		return nil, err
	}
	byID := make(map[string]*Figure, len(figs))
	for _, f := range figs {
		byID[f.ID] = f
	}
	var out []ClaimResult
	for _, c := range PaperClaims() {
		out = append(out, ClaimResult{Claim: c, Err: c.Check(byID)})
	}
	return out, nil
}

// RenderClaims writes a pass/fail report.
func RenderClaims(w io.Writer, results []ClaimResult) (failed int, err error) {
	for _, r := range results {
		status := "PASS"
		if r.Err != nil {
			status = "FAIL"
			failed++
		}
		if _, err := fmt.Fprintf(w, "%-4s %-22s %s\n", status, r.Claim.ID, r.Claim.Description); err != nil {
			return failed, err
		}
		if r.Err != nil {
			if _, err := fmt.Fprintf(w, "     -> %v\n", r.Err); err != nil {
				return failed, err
			}
		}
	}
	return failed, nil
}
