package experiments

import (
	"fmt"

	"bdps/internal/core"
	"bdps/internal/metrics"
	"bdps/internal/msg"
	"bdps/internal/simnet"
	"bdps/internal/workload"
)

// Cell is one grid point of a figure: a single deterministic simulation
// of (scenario, strategy, rate) under one seed. Figure builders declare
// their whole grid as a flat []Cell and hand it to runCells, which
// executes the cells concurrently and returns results in declaration
// order — assembly never depends on completion order, so parallel
// figures are bit-identical to sequential ones.
type Cell struct {
	Scenario msg.Scenario
	Strategy core.Strategy
	Rate     float64
	Seed     uint64
}

// config materializes a cell into a simulation config under the options'
// global knobs (window, scheduling parameters, ablation pass-throughs).
func (o *Options) config(c Cell) simnet.Config {
	return simnet.Config{
		Seed:     c.Seed,
		Scenario: c.Scenario,
		Strategy: c.Strategy,
		Params:   o.paramsFor(c.Strategy),
		Workload: workload.Config{
			RatePerMin: c.Rate,
			Duration:   o.Duration,
			Churn:      o.Churn,
		},
		Multipath:      o.Multipath,
		MeasureSamples: o.MeasureSamples,
		LinkModel:      o.LinkModel,
		TimeScale:      o.TimeScale,
		LiveShards:     o.LiveShards,
		// Churning cells run the incremental counting index: the fast
		// path the churn rework exists to keep alive under mutation.
		IndexedMatch: o.Churn.Enabled(),
	}
}

// grid appends one cell per seed for a (scenario, strategy, rate) point,
// seeds innermost, so meanBySeed can collapse the results back into
// per-point averages.
func (o *Options) grid(cells []Cell, scenario msg.Scenario, strat core.Strategy, rate float64) []Cell {
	for _, seed := range o.Seeds {
		cells = append(cells, Cell{Scenario: scenario, Strategy: strat, Rate: rate, Seed: seed})
	}
	return cells
}

// runCells executes every cell on the options' worker pool and returns
// one result per cell, in declaration order.
func (o *Options) runCells(cells []Cell) ([]metrics.Result, error) {
	cfgs := make([]simnet.Config, len(cells))
	for i, c := range cells {
		cfgs[i] = o.config(c)
	}
	return o.exec.runAll(cfgs)
}

// meanBySeed collapses a seed-expanded result slice (seeds innermost, as
// grid declares them) into one seed-averaged result per point. A length
// that is not a whole number of points is a cell-declaration bug;
// silently dropping the tail would render a truncated figure.
func meanBySeed(rs []metrics.Result, seeds int) []metrics.Result {
	if len(rs)%seeds != 0 {
		panic(fmt.Sprintf("experiments: %d results are not a whole number of %d-seed points", len(rs), seeds))
	}
	out := make([]metrics.Result, 0, len(rs)/seeds)
	for i := 0; i+seeds <= len(rs); i += seeds {
		out = append(out, metrics.Mean(rs[i:i+seeds]))
	}
	return out
}
