package runtime_test

import (
	"math"
	"testing"

	"bdps/internal/core"
	"bdps/internal/livenet"
	"bdps/internal/msg"
	"bdps/internal/runtime"
	"bdps/internal/simnet"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

// aggCrossValConfig: a Zipf-skewed population (heavy template reuse, so
// covering and duplication actually occur) with churn, light enough to
// stay uncongested — the regime where aggregation must be invisible to
// delivery accounting.
func aggCrossValConfig(t testing.TB) runtime.Config {
	return runtime.Config{
		Seed:     1,
		Scenario: msg.SSD,
		Strategy: core.MaxEB{},
		Overlay:  crossValOverlay(t),
		Workload: workload.Config{
			RatePerMin: 6,
			Duration:   2 * vtime.Minute,
			Zipf:       workload.Zipf{Universe: 12},
			Churn:      workload.Churn{RatePerMin: 8, HalfLife: 30 * vtime.Second},
		},
		TimeScale: 0.005,
	}
}

// TestAggregatedSimEquivalence: on the simulator, the aggregated build
// must reproduce the flat build's workload accounting EXACTLY — same
// publications, same interested-subscriber totals, same valid
// deliveries, same earning — while actually suppressing floods and
// aggregating entries. This is the runtime-level half of the
// equivalence argument (the routing-level half is randomized in
// internal/routing).
func TestAggregatedSimEquivalence(t *testing.T) {
	flat, err := runtime.Run(aggCrossValConfig(t), simnet.Transport{})
	if err != nil {
		t.Fatal(err)
	}
	acfg := aggCrossValConfig(t)
	acfg.Aggregate = true
	agg, err := runtime.Run(acfg, simnet.Transport{})
	if err != nil {
		t.Fatal(err)
	}

	if flat.Published != agg.Published {
		t.Errorf("published diverged: flat %d, aggregated %d", flat.Published, agg.Published)
	}
	if flat.TotalTargets != agg.TotalTargets {
		t.Errorf("targets diverged: flat %d, aggregated %d", flat.TotalTargets, agg.TotalTargets)
	}
	if flat.ValidDeliveries != agg.ValidDeliveries {
		t.Errorf("valid deliveries diverged: flat %d, aggregated %d",
			flat.ValidDeliveries, agg.ValidDeliveries)
	}
	if flat.LateDeliveries != agg.LateDeliveries {
		t.Errorf("late deliveries diverged: flat %d, aggregated %d",
			flat.LateDeliveries, agg.LateDeliveries)
	}
	if math.Abs(flat.Earning-agg.Earning) > 1e-9 {
		t.Errorf("earning diverged: flat %v, aggregated %v", flat.Earning, agg.Earning)
	}
	if flat.ValidDeliveries == 0 {
		t.Fatal("workload delivered nothing; the equivalence is vacuous")
	}

	if flat.FloodsSuppressed != 0 || flat.AggregatedEntries != 0 {
		t.Errorf("flat run reports aggregation activity: %d floods, %d entries",
			flat.FloodsSuppressed, flat.AggregatedEntries)
	}
	if agg.FloodsSuppressed == 0 {
		t.Error("aggregated run suppressed no floods on a Zipf workload")
	}
	if agg.AggregatedEntries == 0 {
		t.Error("aggregated run reports no aggregated entries on a Zipf workload")
	}
}

// TestAggregatedCrossValidationSimVsLive: the aggregated plan deployed
// on the live TCP overlay (owner-side admission, suppressed floods,
// promotion/re-exposure on churn departures) must match the aggregated
// simulator run the same way the flat backends match each other.
func TestAggregatedCrossValidationSimVsLive(t *testing.T) {
	if testing.Short() {
		t.Skip("compressed-timescale live cluster run")
	}
	scfg := aggCrossValConfig(t)
	scfg.Aggregate = true
	sim, err := runtime.Run(scfg, simnet.Transport{})
	if err != nil {
		t.Fatal(err)
	}

	lcfg := aggCrossValConfig(t)
	lcfg.Overlay = scfg.Overlay
	lcfg.Aggregate = true
	// A churning SSD workload leaves the live run less slack than the
	// flat crossval's: give it 4× the wall headroom per emulated ms so
	// the whole-suite parallel load cannot starve deadlines.
	lcfg.TimeScale = 0.02
	live, err := runtime.Run(lcfg, livenet.Transport{})
	if err != nil {
		t.Fatal(err)
	}

	if sim.Published != live.Published {
		t.Errorf("published diverged: sim %d, live %d", sim.Published, live.Published)
	}
	if sim.TotalTargets != live.TotalTargets {
		t.Errorf("targets diverged: sim %d, live %d", sim.TotalTargets, live.TotalTargets)
	}
	if live.ValidDeliveries == 0 {
		t.Fatal("live aggregated run delivered nothing")
	}
	simRate, liveRate := sim.DeliveryRate(), live.DeliveryRate()
	if d := math.Abs(simRate - liveRate); d > 0.15 {
		t.Errorf("delivery rates diverged by %.3f: sim %.3f, live %.3f", d, simRate, liveRate)
	}
}

// TestAggregatedSimRecovery composes aggregation with the self-healing
// control plane: killing half the relay layer on a Zipf population must
// detect and repair identically, deliver identically — and re-flood
// strictly fewer subscriptions, because covered subscriptions ride
// their representative's re-flood instead of flooding themselves.
func TestAggregatedSimRecovery(t *testing.T) {
	base := recoveryConfig(t)
	base.Workload.Zipf = workload.Zipf{Universe: 12}
	base.Faults = killHalf()
	flat, err := runtime.Run(base, simnet.Transport{})
	if err != nil {
		t.Fatal(err)
	}

	acfg := recoveryConfig(t)
	acfg.Overlay = base.Overlay
	acfg.Workload.Zipf = workload.Zipf{Universe: 12}
	acfg.Faults = killHalf()
	acfg.Aggregate = true
	agg, err := runtime.Run(acfg, simnet.Transport{})
	if err != nil {
		t.Fatal(err)
	}

	if flat.Published != agg.Published || flat.TotalTargets != agg.TotalTargets {
		t.Errorf("workload diverged: flat %d/%d, aggregated %d/%d",
			flat.Published, flat.TotalTargets, agg.Published, agg.TotalTargets)
	}
	if flat.ValidDeliveries != agg.ValidDeliveries {
		t.Errorf("valid deliveries diverged under repair: flat %d, aggregated %d",
			flat.ValidDeliveries, agg.ValidDeliveries)
	}
	if flat.Detections != agg.Detections {
		t.Errorf("detections diverged: flat %d, aggregated %d", flat.Detections, agg.Detections)
	}
	if agg.FloodsSuppressed == 0 {
		t.Fatal("Zipf population aggregated nothing; the re-flood claim is vacuous")
	}
	if agg.RefloodedSubs >= flat.RefloodedSubs {
		t.Errorf("re-flooded subs: aggregated %d, flat %d — suppression must shrink repair traffic",
			agg.RefloodedSubs, flat.RefloodedSubs)
	}
	if agg.ValidDeliveries == 0 {
		t.Fatal("aggregated recovery run delivered nothing")
	}
}
