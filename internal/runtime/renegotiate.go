package runtime

import (
	"bdps/internal/msg"
	"bdps/internal/stats"
	"bdps/internal/vtime"
)

// Renegotiation outcome for one rerouted delivery path.
type renegotiation uint8

const (
	boundKept renegotiation = iota
	boundRelaxed
	boundRejected
)

// renegotiateBound replays the paper's admission math for one delay
// bound on a rerouted path. The path delivers in links·PD + SizeKB·TR
// where TR ~ rate is the summed per-KB distribution of the new path's
// links; the bound is feasible if the delivery-time distribution meets
// it with probability ≥ successTarget.
//
//   - feasible: keep the bound (relaxed floor 0);
//   - infeasible but the cheapest feasible bound is within
//     maxRelaxFactor × the original: relax to it (returned as the floor
//     the brokers install);
//   - otherwise: reject the path.
//
// A non-positive bound means no bound applies and is trivially kept.
func renegotiateBound(bound vtime.Millis, links int, rate stats.Normal, sizeKB float64, pd vtime.Millis, successTarget, maxRelaxFactor float64) (vtime.Millis, renegotiation) {
	if bound <= 0 || sizeKB <= 0 {
		return 0, boundKept
	}
	slack := (float64(bound) - float64(links)*float64(pd)) / sizeKB
	if rate.CDF(slack) >= successTarget {
		return 0, boundKept
	}
	q := rate.Quantile(successTarget)
	relaxed := vtime.Millis(float64(links)*float64(pd) + q*sizeKB)
	if float64(relaxed) <= maxRelaxFactor*float64(bound) {
		return relaxed, boundRelaxed
	}
	return 0, boundRejected
}

// applicableBound returns the strictest delay bound renegotiation must
// honor for one subscription under the run's scenario: the tightest
// publisher-specifiable bound in PSD, the subscriber's deadline in SSD,
// and the stricter of the two when both apply. 0 means unbounded.
func (p *Plan) applicableBound(sub *msg.Subscription) vtime.Millis {
	pub := p.Cfg.Workload.PSDDelayLo
	switch p.Cfg.Scenario {
	case msg.PSD:
		return pub
	case msg.SSD:
		return sub.Deadline
	default:
		switch {
		case pub <= 0:
			return sub.Deadline
		case sub.Deadline <= 0:
			return pub
		case pub < sub.Deadline:
			return pub
		default:
			return sub.Deadline
		}
	}
}
