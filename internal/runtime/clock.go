package runtime

import (
	"sync/atomic"
	"time"

	"bdps/internal/vtime"
)

// Clock is the one time base every runtime component reads. The
// simulator's engine implements it with virtual time; wall-clock
// backends use a WallClock. Scheduling logic (queue viability, delivery
// validity, deadline math) never touches time.Now directly, so tests can
// substitute any clock.
type Clock interface {
	Now() vtime.Millis
}

// WallClock maps wall time onto emulated milliseconds: elapsed wall time
// since the epoch, divided by the time-compression scale. With Scale s,
// one emulated millisecond passes every s wall milliseconds, so emulated
// latencies computed against a WallClock are directly comparable to the
// simulator's virtual latencies at any compression.
//
// The zero epoch means the Unix epoch, which at Scale 1 makes Now the
// plain wall clock in milliseconds — the time base standalone live
// deployments (one process per broker, real time) share without
// coordination. Anchored clocks (NewWallClock) are for in-process
// deployments where all participants hold the same *WallClock.
type WallClock struct {
	scale float64
	// epoch is the anchor in Unix nanoseconds; 0 means the Unix epoch.
	// Atomic so Restart can re-anchor while node goroutines read.
	epoch atomic.Int64
}

// NewWallClock returns a wall clock anchored now, compressing emulated
// time by scale (≤ 0 means 1).
func NewWallClock(scale float64) *WallClock {
	c := &WallClock{scale: scale}
	c.Restart()
	return c
}

// AbsoluteWallClock returns a wall clock anchored at the Unix epoch —
// the shared time base of multi-process live deployments.
func AbsoluteWallClock(scale float64) *WallClock {
	return &WallClock{scale: scale}
}

// Restart re-anchors the clock at the current instant. Deployments call
// it when injection starts, so emulated time 0 is the first publication
// opportunity rather than process start.
func (c *WallClock) Restart() { c.epoch.Store(time.Now().UnixNano()) }

// Now returns the emulated time.
func (c *WallClock) Now() vtime.Millis {
	scale := c.scale
	if scale <= 0 {
		scale = 1
	}
	e := c.epoch.Load()
	var wall float64
	if e == 0 {
		wall = float64(time.Now().UnixMicro()) / 1000
	} else {
		wall = float64(time.Now().UnixNano()-e) / float64(time.Millisecond)
	}
	return wall / scale
}

// Scale returns the compression factor (wall ms per emulated ms).
func (c *WallClock) Scale() float64 {
	if c.scale <= 0 {
		return 1
	}
	return c.scale
}
