package runtime

import (
	"fmt"
	"sort"

	"bdps/internal/broker"
	"bdps/internal/metrics"
	"bdps/internal/msg"
	"bdps/internal/routing"
	"bdps/internal/stats"
	"bdps/internal/topology"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

// Link is one directed overlay link of a plan, in deterministic
// (sorted-arc) order. Index is the position in Plan.Links and seeds the
// link's random stream, so the simulator and the live overlay draw the
// same per-link rate sequences from one config.
type Link struct {
	Index    int
	From, To msg.NodeID
	Truth    stats.Normal
}

// Plan is one fully assembled deployment: everything about a run that
// does not depend on how time and message movement are realized. Either
// backend deploys a plan built from one config — same overlay, same
// routing tables, same broker assembly, same publication schedule —
// which is what makes their results comparable run for run.
//
// A plan is single-use: deploying it hands its stateful parts (broker
// instances, metrics collector) to the deployment. To run one config on
// several backends, build one plan per run (runtime.Run does).
type Plan struct {
	// Cfg is the configuration after defaulting.
	Cfg Config

	Overlay *topology.Overlay
	// Subs is the subscription population (workload-generated or adopted
	// from Cfg.Subscriptions).
	Subs []*msg.Subscription
	// Beliefs supplies the link-rate distribution brokers believe a link
	// has: the true distribution (paper default) or a measured estimate.
	Beliefs routing.RateFunc
	// Tables are the per-broker routing tables built from Beliefs.
	Tables map[msg.NodeID]*routing.Table
	// Brokers are the assembled broker instances, one per overlay node.
	// Backends drive them; they never build their own.
	Brokers map[msg.NodeID]*broker.Broker
	// Links lists every directed link in deterministic order.
	Links []Link
	// Pubs holds every publication of the run in per-publisher generation
	// order (publishers enumerated in ingress order). Wall-clock backends
	// pace a time-sorted copy; the simulator schedules each at its
	// Published instant.
	Pubs []*msg.Message
	// SubEvents is the churn schedule (time-sorted subscribe/unsubscribe
	// events; empty when Workload.Churn is off). The simulator applies
	// each event to the routing tables at its virtual instant; the live
	// overlay floods it through the overlay at the scaled wall instant.
	SubEvents []workload.SubEvent
	// Metrics is the run's collector. The Run driver performs the
	// publication-side accounting; deployments report the delivery side
	// (directly, or through a LockedSink when concurrent).
	Metrics *metrics.Collector

	// Agg is the covering-aggregation driver bound to Tables when
	// Cfg.Aggregate is on (nil otherwise). The simulator routes churn
	// events through it; the live overlay makes the same decisions
	// node-locally instead.
	Agg *routing.AggTables
}

// NewPlan assembles a deployment: builds (or adopts) the overlay,
// generates subscriptions, computes link beliefs and routing tables,
// instantiates brokers, generates the publication schedule and validates
// injected faults.
func NewPlan(cfg Config) (*Plan, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	ov := cfg.Overlay
	if ov == nil {
		tc := cfg.TopologyCfg
		if tc.Seed == 0 {
			tc.Seed = cfg.Seed
		}
		built, err := topology.BuildLayered(tc)
		if err != nil {
			return nil, err
		}
		ov = built
	}

	p := &Plan{
		Cfg:     cfg,
		Overlay: ov,
		Brokers: make(map[msg.NodeID]*broker.Broker),
		Metrics: &metrics.Collector{},
	}
	if cfg.TimelineBucket > 0 {
		p.Metrics.EnableTimeline(cfg.TimelineBucket)
	}
	if cfg.Subscriptions != nil {
		p.Subs = cfg.Subscriptions
	} else {
		p.Subs = cfg.Workload.Subscriptions(ov.Edges)
	}

	// Deterministic link enumeration: sorted arcs.
	arcs := ov.Graph.Arcs()
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i][0] != arcs[j][0] {
			return arcs[i][0] < arcs[j][0]
		}
		return arcs[i][1] < arcs[j][1]
	})
	p.Links = make([]Link, len(arcs))
	for i, arc := range arcs {
		truth, _ := ov.Graph.Rate(arc[0], arc[1])
		p.Links[i] = Link{Index: i, From: arc[0], To: arc[1], Truth: truth}
	}

	// Link-rate beliefs: exact (paper default) or measured. The stream
	// labels predate this package and are kept verbatim so seeded runs
	// reproduce earlier releases bit for bit.
	p.Beliefs = func(from, to msg.NodeID) stats.Normal {
		r, _ := ov.Graph.Rate(from, to)
		return r
	}
	if cfg.MeasureSamples > 0 {
		measured := make(map[[2]msg.NodeID]stats.Normal, len(p.Links))
		for _, l := range p.Links {
			sampler := NewSampler(cfg.LinkModel, l.Truth, cfg.MinRate)
			probe := stats.DeriveN(cfg.Seed, "simnet/measure", l.Index)
			est := &stats.WelfordEstimator{Prior: l.Truth}
			for k := 0; k < cfg.MeasureSamples; k++ {
				est.Observe(sampler.Sample(probe))
			}
			measured[[2]msg.NodeID{l.From, l.To}] = est.Estimate()
		}
		p.Beliefs = func(from, to msg.NodeID) stats.Normal {
			return measured[[2]msg.NodeID{from, to}]
		}
	}

	var tables map[msg.NodeID]*routing.Table
	var err error
	if cfg.Aggregate {
		tables, p.Agg, err = routing.BuildAggregated(ov, p.Subs, routing.Options{
			Rates:     p.Beliefs,
			Multipath: cfg.Multipath,
		}, p.Metrics.FloodSuppressed)
	} else {
		tables, err = routing.Build(ov, p.Subs, routing.Options{
			Rates:     p.Beliefs,
			Multipath: cfg.Multipath,
		})
	}
	if err != nil {
		return nil, err
	}
	if cfg.IndexedMatch {
		for _, t := range tables {
			t.EnableIndex()
		}
	}
	p.Tables = tables

	for id := 0; id < ov.Graph.N(); id++ {
		nid := msg.NodeID(id)
		means := make(map[msg.NodeID]float64)
		for _, e := range ov.Graph.Neighbors(nid) {
			means[e.To] = p.Beliefs(nid, e.To).Mean
		}
		pressure := 0
		if cfg.Admission.Shed {
			pressure = cfg.Admission.MaxQueue
		}
		b, err := broker.New(broker.Config{
			ID:        nid,
			Scenario:  cfg.Scenario,
			Params:    cfg.Params,
			Strategy:  cfg.Strategy,
			Table:     tables[nid],
			LinkMeans: means,
			Dedup:     cfg.Multipath > 1,
			Pressure:  pressure,
		})
		if err != nil {
			return nil, err
		}
		p.Brokers[nid] = b
	}

	for i, ingress := range ov.Ingress {
		pub := cfg.Workload.NewPublisher(i, ingress)
		for {
			m, ok := pub.Next()
			if !ok {
				break
			}
			p.Pubs = append(p.Pubs, m)
		}
	}

	// Dynamic-population ids start above the whole static population so
	// the id spaces never collide; flash-crowd burst subscribers allocate
	// above the churn population in turn.
	first := msg.SubID(0)
	for _, s := range p.Subs {
		if s.ID >= first {
			first = s.ID + 1
		}
	}
	if cfg.Workload.Churn.Enabled() {
		p.SubEvents = cfg.Workload.ChurnEvents(ov.Edges, first)
		for _, ev := range p.SubEvents {
			if !ev.Unsub && ev.Sub.ID >= first {
				first = ev.Sub.ID + 1
			}
		}
	}
	if cfg.Workload.FlashCrowd.SubBurst > 0 {
		p.SubEvents = workload.MergeSubEvents(p.SubEvents,
			cfg.Workload.FlashSubEvents(ov.Edges, first))
	}

	if err := p.validateFaults(); err != nil {
		return nil, err
	}

	// Overload protection last: the admission sweep filters rejected
	// publications and subscription events out of the finished schedules,
	// so every backend deploys the already-admitted plan and the SLO
	// ledger agrees across them exactly.
	p.admitWorkload()
	return p, nil
}

// validateFaults rejects faults that reference nonexistent overlay
// elements, have degenerate windows, fall past the run horizon, or
// overlap on the same link — uniformly for every backend — and then
// sorts the fault list into a deterministic order (by time, then kind,
// then ids) so backends arm faults identically regardless of how the
// caller listed them.
func (p *Plan) validateFaults() error {
	// The run horizon: the last instant any publication can still matter.
	horizon := p.Cfg.Workload.Duration + p.Cfg.Workload.PSDDelayHi
	for _, dl := range p.Cfg.Workload.SSDDeadlines {
		if p.Cfg.Workload.Duration+dl > horizon {
			horizon = p.Cfg.Workload.Duration + dl
		}
	}
	type window struct{ start, end vtime.Millis }
	outages := make(map[[2]msg.NodeID][]window)
	lossArcs := make(map[[2]msg.NodeID]bool)
	lossWild := false
	crashAt := make(map[msg.NodeID]vtime.Millis)
	restarted := make(map[msg.NodeID]bool)
	sessions := make(map[msg.SubID][]window)
	for _, f := range p.Cfg.Faults {
		switch f := f.(type) {
		case LinkDown:
			if _, ok := p.Overlay.Graph.Rate(f.From, f.To); !ok {
				return fmt.Errorf("runtime: LinkDown on missing arc %d->%d", f.From, f.To)
			}
			if f.End <= f.Start {
				return fmt.Errorf("runtime: LinkDown window [%v,%v) has non-positive duration", f.Start, f.End)
			}
			if f.Start > horizon {
				return fmt.Errorf("runtime: LinkDown at %v starts past the run horizon %v", f.Start, horizon)
			}
			outages[[2]msg.NodeID{f.From, f.To}] = append(outages[[2]msg.NodeID{f.From, f.To}], window{f.Start, f.End})
		case BrokerCrash:
			if _, ok := p.Brokers[f.ID]; !ok {
				return fmt.Errorf("runtime: BrokerCrash on unknown broker %d", f.ID)
			}
			if f.At > horizon {
				return fmt.Errorf("runtime: BrokerCrash at %v falls past the run horizon %v", f.At, horizon)
			}
			if _, dup := crashAt[f.ID]; dup {
				return fmt.Errorf("runtime: duplicate BrokerCrash on broker %d", f.ID)
			}
			crashAt[f.ID] = f.At
		case BrokerRestart:
			if _, ok := p.Brokers[f.ID]; !ok {
				return fmt.Errorf("runtime: BrokerRestart on unknown broker %d", f.ID)
			}
			at, crashed := crashAt[f.ID]
			if !crashed {
				return fmt.Errorf("runtime: BrokerRestart of broker %d without a preceding BrokerCrash", f.ID)
			}
			if f.At <= at {
				return fmt.Errorf("runtime: BrokerRestart of broker %d at %v not after its crash at %v", f.ID, f.At, at)
			}
			if f.At > horizon {
				return fmt.Errorf("runtime: BrokerRestart at %v falls past the run horizon %v", f.At, horizon)
			}
			if restarted[f.ID] {
				return fmt.Errorf("runtime: duplicate BrokerRestart on broker %d", f.ID)
			}
			restarted[f.ID] = true
		case SessionDown:
			if !p.hasSub(f.Sub) {
				return fmt.Errorf("runtime: SessionDown on unknown subscription %d", f.Sub)
			}
			if f.End <= f.Start {
				return fmt.Errorf("runtime: SessionDown window [%v,%v) has non-positive duration", f.Start, f.End)
			}
			if f.Start > horizon {
				return fmt.Errorf("runtime: SessionDown at %v starts past the run horizon %v", f.Start, horizon)
			}
			sessions[f.Sub] = append(sessions[f.Sub], window{f.Start, f.End})
		case LinkLoss:
			wild := f.From == msg.None && f.To == msg.None
			if !wild {
				if _, ok := p.Overlay.Graph.Rate(f.From, f.To); !ok {
					return fmt.Errorf("runtime: LinkLoss on missing arc %d->%d", f.From, f.To)
				}
			}
			for name, rate := range map[string]float64{"Rate": f.Rate, "Dup": f.Dup, "Reorder": f.Reorder} {
				if rate < 0 || rate >= 1 {
					return fmt.Errorf("runtime: LinkLoss %s %v outside [0,1)", name, rate)
				}
			}
			if f.Start < 0 || (f.End > 0 && f.End <= f.Start) {
				return fmt.Errorf("runtime: LinkLoss window [%v,%v) has non-positive duration", f.Start, f.End)
			}
			if f.Start > horizon {
				return fmt.Errorf("runtime: LinkLoss at %v starts past the run horizon %v", f.Start, horizon)
			}
			// One adversary per arc: overlapping loss models would make the
			// deterministic per-(link, seq, attempt) decision hash ambiguous.
			if wild {
				if lossWild || len(lossArcs) > 0 {
					return fmt.Errorf("runtime: wildcard LinkLoss conflicts with another LinkLoss fault")
				}
				lossWild = true
			} else {
				arc := [2]msg.NodeID{f.From, f.To}
				if lossWild || lossArcs[arc] {
					return fmt.Errorf("runtime: duplicate LinkLoss on arc %d->%d", f.From, f.To)
				}
				lossArcs[arc] = true
			}
		default:
			return fmt.Errorf("runtime: unknown fault type %T", f)
		}
	}
	for arc, ws := range outages {
		sort.Slice(ws, func(i, j int) bool { return ws[i].start < ws[j].start })
		for i := 1; i < len(ws); i++ {
			if ws[i].start < ws[i-1].end {
				return fmt.Errorf("runtime: overlapping LinkDown windows on arc %d->%d ([%v,%v) and [%v,%v))",
					arc[0], arc[1], ws[i-1].start, ws[i-1].end, ws[i].start, ws[i].end)
			}
		}
	}
	for sub, ws := range sessions {
		sort.Slice(ws, func(i, j int) bool { return ws[i].start < ws[j].start })
		for i := 1; i < len(ws); i++ {
			if ws[i].start < ws[i-1].end {
				return fmt.Errorf("runtime: overlapping SessionDown windows on subscription %d ([%v,%v) and [%v,%v))",
					sub, ws[i-1].start, ws[i-1].end, ws[i].start, ws[i].end)
			}
		}
	}
	sort.SliceStable(p.Cfg.Faults, func(i, j int) bool {
		return faultLess(p.Cfg.Faults[i], p.Cfg.Faults[j])
	})
	return nil
}

// hasSub reports whether a subscription id is in the plan's static
// population (SessionDown targets static subscriptions; churn-event
// subscribers have no stable session to suspend).
func (p *Plan) hasSub(id msg.SubID) bool {
	for _, s := range p.Subs {
		if s.ID == id {
			return true
		}
	}
	return false
}

// faultKey flattens a fault into sortable fields: onset time, kind
// (crashes before link outages at the same instant), then ids.
func faultKey(f Fault) (at vtime.Millis, kind int, a, b msg.NodeID) {
	switch f := f.(type) {
	case BrokerCrash:
		return f.At, 0, f.ID, 0
	case LinkDown:
		return f.Start, 1, f.From, f.To
	case LinkLoss:
		return f.Start, 2, f.From, f.To
	case BrokerRestart:
		return f.At, 3, f.ID, 0
	case SessionDown:
		return f.Start, 4, msg.NodeID(f.Sub), 0
	}
	return 0, 5, 0, 0
}

// faultLess is the deterministic fault order shared by both backends.
func faultLess(x, y Fault) bool {
	xa, xk, x1, x2 := faultKey(x)
	ya, yk, y1, y2 := faultKey(y)
	if xa != ya {
		return xa < ya
	}
	if xk != yk {
		return xk < yk
	}
	if x1 != y1 {
		return x1 < y1
	}
	return x2 < y2
}

// Sampler builds the plan's rate sampler for one link.
func (p *Plan) Sampler(l Link) Sampler {
	return NewSampler(p.Cfg.LinkModel, l.Truth, p.Cfg.MinRate)
}

// LinkStream derives the random stream feeding one link's sampler. Both
// backends use it, so a live run draws the same per-link rate sequence
// the simulator would under the same seed.
func (p *Plan) LinkStream(l Link) *stats.Stream {
	return stats.DeriveN(p.Cfg.Seed, "simnet/link", l.Index)
}

// AccountPublications records the publication side of the run's metrics
// — Σ tsᵢ over the whole schedule, per-subscriber when configured. It
// is backend-independent; call it exactly once per plan, before any
// delivery-side events reach the collector.
//
// Under churn the interested count of each publication is taken against
// the population active at its publication instant: the static
// subscribers plus every churn subscriber that has subscribed and not
// yet unsubscribed. (A message in flight when its subscriber leaves —
// or a subscriber arriving mid-flight — is the transient any dynamic
// pub/sub system has; publish-time accounting is the deterministic
// ground truth both backends share.)
func (p *Plan) AccountPublications() {
	if len(p.SubEvents) == 0 {
		for _, m := range p.Pubs {
			p.accountOne(m, nil)
		}
		return
	}
	// Sweep publications in time order against the churn schedule.
	order := make([]*msg.Message, len(p.Pubs))
	copy(order, p.Pubs)
	sort.SliceStable(order, func(i, j int) bool { return order[i].Published < order[j].Published })
	active := make(map[msg.SubID]*msg.Subscription)
	ei := 0
	for _, m := range order {
		for ei < len(p.SubEvents) && p.SubEvents[ei].At <= m.Published {
			ev := p.SubEvents[ei]
			if ev.Unsub {
				delete(active, ev.Sub.ID)
			} else {
				active[ev.Sub.ID] = ev.Sub
			}
			ei++
		}
		p.accountOne(m, active)
	}
}

// accountOne records one publication's interested count over the static
// population plus the currently active churn subscribers.
func (p *Plan) accountOne(m *msg.Message, churners map[msg.SubID]*msg.Subscription) {
	if p.Cfg.PerSubscriber {
		var interested []int32
		for _, s := range p.Subs {
			if s.Filter.Match(&m.Attrs) {
				interested = append(interested, int32(s.ID))
			}
		}
		for _, s := range churners {
			if s.Filter.Match(&m.Attrs) {
				interested = append(interested, int32(s.ID))
			}
		}
		p.Metrics.PublishedToAt(interested, m.Published)
		return
	}
	n := workload.Interested(p.Subs, m)
	for _, s := range churners {
		if s.Filter.Match(&m.Attrs) {
			n++
		}
	}
	p.Metrics.PublishedAt(n, m.Published)
}
