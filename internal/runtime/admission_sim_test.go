package runtime_test

import (
	"testing"

	"bdps/internal/core"
	"bdps/internal/msg"
	"bdps/internal/runtime"
	"bdps/internal/simnet"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

// overloadCfg is the A11 rate-18 cell: the congested PSD point with the
// paper's relaxed 30–60 s bounds, hit mid-run by a 6× flash crowd with
// a correlated subscribe burst.
func overloadCfg() runtime.Config {
	return runtime.Config{
		Seed:     1,
		Scenario: msg.PSD,
		Strategy: core.MaxEB{},
		Workload: workload.Config{
			RatePerMin: 18,
			Duration:   20 * vtime.Minute,
			PSDDelayLo: 30 * vtime.Second,
			PSDDelayHi: 60 * vtime.Second,
			FlashCrowd: workload.FlashCrowd{
				At:       5 * vtime.Minute,
				Width:    5 * vtime.Minute,
				Boost:    6,
				SubBurst: 8,
			},
		},
		IndexedMatch: true,
	}
}

// TestAdmissionProtectsSLO is the headline overload claim, pinned as a
// test: with no protection the flash crowd starves admitted traffic far
// below the success target; with online admission control plus shedding
// the system keeps its promise to the traffic it accepted, and the
// overflow is counted at the door rather than silently destroyed.
func TestAdmissionProtectsSLO(t *testing.T) {
	if testing.Short() {
		t.Skip("20-minute emulated flash-crowd runs")
	}
	unprotected, err := simnet.Run(overloadCfg())
	if err != nil {
		t.Fatal(err)
	}
	cfg := overloadCfg()
	cfg.Admission = runtime.Admission{Enabled: true, Shed: true, MaxQueue: 8}
	protected, err := simnet.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if att := unprotected.SLOAttainment(); att >= 0.5 {
		t.Errorf("unprotected flash crowd attained %.1f%%, want the collapse (< 50%%)", 100*att)
	}
	if att := protected.SLOAttainment(); att < 0.9 {
		t.Errorf("admission+shed attained %.1f%% on admitted traffic, want ≥ the 90%% success target", 100*att)
	}
	if unprotected.PubsRejected != 0 {
		t.Errorf("unprotected run rejected %d publications, want 0", unprotected.PubsRejected)
	}
	if protected.PubsRejected == 0 {
		t.Error("protected run rejected nothing: admission never engaged")
	}
	// Ledger invariants on the protected run: everything injected was
	// admitted (possibly relaxed), and offered load is conserved against
	// the unprotected run.
	if protected.PubsAdmitted+protected.PubsRelaxed != protected.Published {
		t.Errorf("admitted %d + relaxed %d != published %d",
			protected.PubsAdmitted, protected.PubsRelaxed, protected.Published)
	}
	if protected.Published+protected.PubsRejected != unprotected.Published {
		t.Errorf("published %d + rejected %d != offered %d",
			protected.Published, protected.PubsRejected, unprotected.Published)
	}
}
