package runtime_test

import (
	"fmt"
	"math"
	"testing"

	"bdps/internal/core"
	"bdps/internal/livenet"
	"bdps/internal/msg"
	"bdps/internal/runtime"
	"bdps/internal/simnet"
	"bdps/internal/stats"
	"bdps/internal/topology"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

// crossValOverlay is a small two-ingress, two-edge overlay: short paths
// keep the wall-clock overhead of the compressed live run small relative
// to the emulated link times, so sim and live land in the same band.
//
//	0 ─┐          ┌─ 4
//	   ├─ 2 ── 3 ─┤
//	1 ─┘          └─ 5
func crossValOverlay(t testing.TB) *topology.Overlay {
	t.Helper()
	g := topology.NewGraph(6)
	for _, l := range []struct {
		a, b msg.NodeID
		mean float64
	}{{0, 2, 50}, {1, 2, 55}, {2, 3, 45}, {3, 4, 50}, {3, 5, 60}} {
		if err := g.AddLink(l.a, l.b, stats.Normal{Mean: l.mean, Sigma: 5}); err != nil {
			t.Fatal(err)
		}
	}
	return &topology.Overlay{
		Graph:   g,
		Ingress: []msg.NodeID{0, 1},
		Edges:   []msg.NodeID{4, 5},
	}
}

func crossValConfig(t testing.TB) runtime.Config {
	return runtime.Config{
		Seed:     1,
		Scenario: msg.PSD,
		Strategy: core.MaxEB{},
		Overlay:  crossValOverlay(t),
		Workload: workload.Config{RatePerMin: 6, Duration: 2 * vtime.Minute},
		// 1 emulated second per 5 wall ms: the 2-minute window plays out
		// in ~600 ms, with per-hop wall overheads two orders of magnitude
		// below the ~2.5 s emulated link times.
		TimeScale: 0.005,
	}
}

// TestCrossValidationSimVsLive is the unified layer's headline check:
// one runtime.Config, deployed through one runtime.Plan, must produce
// statistically matching results on the discrete-event simulator and
// the live TCP overlay — on both live data planes. The sharded plane
// changes how frames are decoded, processed and flushed, but must not
// change what is delivered: per-stream delivery ordering and workload
// accounting stay within the same bands as the classic plane.
func TestCrossValidationSimVsLive(t *testing.T) {
	if testing.Short() {
		t.Skip("compressed-timescale live cluster run")
	}
	cfg := crossValConfig(t)

	sim, err := runtime.Run(cfg, simnet.Transport{})
	if err != nil {
		t.Fatal(err)
	}
	if sim.Backend != "sim" {
		t.Errorf("backend = %q, want sim", sim.Backend)
	}

	for _, shards := range []int{0, 4} {
		t.Run(fmt.Sprintf("liveShards=%d", shards), func(t *testing.T) {
			lcfg := crossValConfig(t)
			lcfg.Overlay = cfg.Overlay // plans may share an overlay across runs
			lcfg.LiveShards = shards
			live, err := runtime.Run(lcfg, livenet.Transport{})
			if err != nil {
				t.Fatal(err)
			}

			if live.Backend != "live" {
				t.Errorf("backend = %q, want live", live.Backend)
			}
			if sim.Published != live.Published {
				t.Errorf("published diverged: sim %d, live %d (same plan must inject the same workload)",
					sim.Published, live.Published)
			}
			if sim.TotalTargets != live.TotalTargets {
				t.Errorf("targets diverged: sim %d, live %d", sim.TotalTargets, live.TotalTargets)
			}
			if live.ValidDeliveries == 0 {
				t.Fatal("live run delivered nothing")
			}

			// Delivery rates must agree within a tolerance band: the live
			// run pays real scheduling and TCP overheads (inflated by the
			// time compression), so it may lag the simulator slightly,
			// never match it bit for bit.
			simRate, liveRate := sim.DeliveryRate(), live.DeliveryRate()
			if d := math.Abs(simRate - liveRate); d > 0.15 {
				t.Errorf("delivery rates diverged by %.3f: sim %.3f, live %.3f", d, simRate, liveRate)
			}
			// Routing is identical (same plan tables), so traffic volumes
			// agree up to early drops.
			rr := float64(live.Receptions) / float64(sim.Receptions)
			if rr < 0.7 || rr > 1.3 {
				t.Errorf("receptions diverged: sim %d, live %d (ratio %.2f)",
					sim.Receptions, live.Receptions, rr)
			}
		})
	}
}

// TestCrossValidationLossExact is the lossy-network headline check: under
// a seeded per-arc loss/dup adversary, the simulator and the live overlay
// must agree EXACTLY — not statistically — on the reliable-channel
// counters. Both backends resolve every transmission chain from the same
// per-(link, seq, attempt) hash of the run seed, so FramesLost,
// Retransmits, DupsSuppressed and DroppedDeadline are deterministic
// functions of the plan, independent of wall-clock jitter.
//
// Preconditions for exactness: BlindRetry removes the wall-clock
// dependence of the deadline-aware admission gate, and the generous
// default bounds keep DroppedDeadline at zero on both backends (asserted,
// so the equality is 0 == 0 by proof rather than accident). Reorder stays
// 0 here: swap decisions depend on queue adjacency, which wall-clock
// scheduling perturbs — ReorderedHealed is validated statistically in the
// livenet soak instead.
func TestCrossValidationLossExact(t *testing.T) {
	if testing.Short() {
		t.Skip("compressed-timescale live cluster run")
	}
	for _, rate := range []float64{0.05, 0.10, 0.20} {
		t.Run(fmt.Sprintf("loss=%.2f", rate), func(t *testing.T) {
			mk := func() runtime.Config {
				cfg := crossValConfig(t)
				cfg.Faults = []runtime.Fault{runtime.LinkLoss{
					From: msg.None, To: msg.None,
					Rate: rate, Dup: 0.05,
				}}
				cfg.Reliability = runtime.Reliability{BlindRetry: true}
				cfg.TimelineBucket = 30 * vtime.Second
				// Generous bounds: a message dropped as hopeless mid-path
				// sends nothing downstream, which would shift every later
				// seq on that link — and live pays overheads sim does not.
				// Exactness needs the same frame set on every link, so no
				// message may die of lateness on either backend.
				cfg.Workload.PSDDelayLo = 2 * vtime.Minute
				cfg.Workload.PSDDelayHi = 3 * vtime.Minute
				return cfg
			}
			sim, err := runtime.Run(mk(), simnet.Transport{})
			if err != nil {
				t.Fatal(err)
			}
			if sim.FramesLost == 0 {
				t.Fatalf("adversary at rate %.2f lost nothing in sim", rate)
			}
			// Blind retry never abandons a frame, so every loss is retried.
			if sim.Retransmits != sim.FramesLost {
				t.Errorf("sim retransmits %d != losses %d under blind retry",
					sim.Retransmits, sim.FramesLost)
			}
			if sim.DroppedDeadline != 0 {
				t.Errorf("sim dropped %d frames on deadline under blind retry", sim.DroppedDeadline)
			}

			for _, shards := range []int{0, 4} {
				t.Run(fmt.Sprintf("liveShards=%d", shards), func(t *testing.T) {
					lcfg := mk()
					lcfg.LiveShards = shards
					live, err := runtime.Run(lcfg, livenet.Transport{})
					if err != nil {
						t.Fatal(err)
					}
					// The exact-agreement set: counters that are pure
					// functions of (seed, link index, seq, attempt).
					if sim.FramesLost != live.FramesLost {
						t.Errorf("FramesLost diverged: sim %d, live %d", sim.FramesLost, live.FramesLost)
					}
					if sim.Retransmits != live.Retransmits {
						t.Errorf("Retransmits diverged: sim %d, live %d", sim.Retransmits, live.Retransmits)
					}
					if sim.DupsSuppressed != live.DupsSuppressed {
						t.Errorf("DupsSuppressed diverged: sim %d, live %d", sim.DupsSuppressed, live.DupsSuppressed)
					}
					if sim.DroppedDeadline != live.DroppedDeadline {
						t.Errorf("DroppedDeadline diverged: sim %d, live %d", sim.DroppedDeadline, live.DroppedDeadline)
					}
					// Retransmission heals the loss: the delivery-side story
					// stays statistically aligned, as in the lossless check.
					if sim.Published != live.Published {
						t.Errorf("published diverged: sim %d, live %d", sim.Published, live.Published)
					}
					if live.ValidDeliveries == 0 {
						t.Fatal("live run delivered nothing under loss")
					}
					if d := math.Abs(sim.DeliveryRate() - live.DeliveryRate()); d > 0.15 {
						t.Errorf("delivery rates diverged by %.3f: sim %.3f, live %.3f",
							d, sim.DeliveryRate(), live.DeliveryRate())
					}
					// Per-bucket delivery timelines stay within the same band.
					if len(sim.Timeline) == 0 || len(live.Timeline) == 0 {
						t.Fatalf("timelines missing: sim %d buckets, live %d", len(sim.Timeline), len(live.Timeline))
					}
					n := len(sim.Timeline)
					if len(live.Timeline) < n {
						n = len(live.Timeline)
					}
					for i := 0; i < n; i++ {
						if d := math.Abs(sim.Timeline[i].Rate() - live.Timeline[i].Rate()); d > 0.15 {
							t.Errorf("timeline bucket %d diverged by %.3f: sim %.3f, live %.3f",
								i, d, sim.Timeline[i].Rate(), live.Timeline[i].Rate())
						}
					}
				})
			}
		})
	}
}

// diamondOverlay has two disjoint paths ingress→edge (0-1-3 and 0-2-3),
// so K=2 multipath routing actually fans out.
func diamondOverlay(t testing.TB) *topology.Overlay {
	t.Helper()
	g := topology.NewGraph(4)
	for _, l := range []struct {
		a, b msg.NodeID
		mean float64
	}{{0, 1, 50}, {0, 2, 55}, {1, 3, 50}, {2, 3, 55}} {
		if err := g.AddLink(l.a, l.b, stats.Normal{Mean: l.mean, Sigma: 5}); err != nil {
			t.Fatal(err)
		}
	}
	return &topology.Overlay{
		Graph:   g,
		Ingress: []msg.NodeID{0},
		Edges:   []msg.NodeID{3},
	}
}

// TestLiveMultipathViaRuntime drives the paper's multipath+dedup mode
// through the unified layer on the live backend — the mode the old live
// runtime silently ignored.
func TestLiveMultipathViaRuntime(t *testing.T) {
	if testing.Short() {
		t.Skip("compressed-timescale live cluster run")
	}
	single := crossValConfig(t)
	single.Overlay = diamondOverlay(t)
	multi := crossValConfig(t)
	multi.Overlay = diamondOverlay(t) // fresh overlay: plans are per-run
	multi.Multipath = 2

	base, err := runtime.Run(single, livenet.Transport{})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := runtime.Run(multi, livenet.Transport{})
	if err != nil {
		t.Fatal(err)
	}
	if mp.ValidDeliveries == 0 {
		t.Fatal("multipath live run delivered nothing")
	}
	// K-path routing costs more traffic on the redundant segments…
	if mp.Receptions <= base.Receptions {
		t.Errorf("multipath should cost more traffic: %d vs %d receptions",
			mp.Receptions, base.Receptions)
	}
	// …but dedup caps deliveries at one per (message, subscriber).
	if mp.ValidDeliveries > mp.TotalTargets {
		t.Errorf("deliveries (%d) exceed targets (%d): live dedup broken",
			mp.ValidDeliveries, mp.TotalTargets)
	}
}

// TestLiveBrokerCrashViaRuntime drives an injected broker crash through
// the unified layer on the live backend: the run must terminate (drain
// must not hang on the dead broker's unaccounted frames), charge losses
// to the crash, and lose the deliveries the severed paths would have
// made.
func TestLiveBrokerCrashViaRuntime(t *testing.T) {
	if testing.Short() {
		t.Skip("compressed-timescale live cluster run")
	}
	base := crossValConfig(t)
	crashed := crossValConfig(t)
	// Node 2 is the cut vertex: crashing it at 30 s severs every path.
	crashed.Faults = []runtime.Fault{runtime.BrokerCrash{ID: 2, At: 30 * vtime.Second}}

	healthy, err := runtime.Run(base, livenet.Transport{})
	if err != nil {
		t.Fatal(err)
	}
	broken, err := runtime.Run(crashed, livenet.Transport{})
	if err != nil {
		t.Fatal(err)
	}
	if broken.DropsCrashed == 0 {
		t.Error("crash should charge losses to DropsCrashed")
	}
	if broken.ValidDeliveries == 0 {
		t.Error("messages published before the crash should still deliver")
	}
	if broken.ValidDeliveries >= healthy.ValidDeliveries {
		t.Errorf("crash should reduce deliveries: %d vs healthy %d",
			broken.ValidDeliveries, healthy.ValidDeliveries)
	}
}
