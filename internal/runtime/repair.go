package runtime

import (
	"sort"
	"sync"

	"bdps/internal/msg"
	"bdps/internal/routing"
	"bdps/internal/stats"
	"bdps/internal/topology"
	"bdps/internal/vtime"
)

// FailureDetector is the backend-agnostic half of the self-healing
// control plane. Backends feed it arc-granular liveness evidence — the
// live overlay from per-link heartbeat monitors, the simulator from
// detection events scheduled on virtual time — and it turns each piece
// of evidence into detection accounting plus a topology repair: prune
// the dead arcs from a working copy of the overlay, re-run the cached
// per-ingress shortest paths on the surviving graph, diff routes against
// the previous generation, and re-flood only the subscriptions whose
// delivery paths actually moved. With renegotiation enabled it replays
// the admission math on every rerouted path, keeping, relaxing or
// rejecting the delay bound.
//
// The unit of evidence is the directed arc from→to: "to can no longer
// hear from". A broker crash is the batch of all its outgoing arcs —
// which is exactly what a crash looks like from the live overlay, where
// each surviving neighbor independently reports the one inbound arc it
// monitors.
type FailureDetector struct {
	mu   sync.Mutex
	p    *Plan
	sink Sink
	// lock serializes a table mutation against broker id's concurrent
	// matchers; nil means the caller is single-threaded (simulator).
	lock func(id msg.NodeID, fn func())

	dead map[[2]msg.NodeID]bool
	// prev is the installer whose routes are currently in the tables;
	// each repair diffs against it and replaces it.
	prev *routing.Installer
}

// NewFailureDetector builds the detector for one deployed plan. lock is
// the backend's per-broker table write lock (nil for single-threaded
// backends).
func NewFailureDetector(p *Plan, sink Sink, lock func(id msg.NodeID, fn func())) *FailureDetector {
	return &FailureDetector{
		p:    p,
		sink: sink,
		lock: lock,
		dead: make(map[[2]msg.NodeID]bool),
		prev: routing.NewInstaller(p.Overlay, routing.Options{Rates: p.Beliefs, Multipath: p.Cfg.Multipath}),
	}
}

// ArcDead reports one directed arc as confirmed dead. faultAt is when
// the underlying fault struck and detectedAt when the detector confirmed
// it; the difference is the detection latency.
func (d *FailureDetector) ArcDead(from, to msg.NodeID, faultAt, detectedAt vtime.Millis) {
	d.ArcsDead([][2]msg.NodeID{{from, to}}, faultAt, detectedAt)
}

// ArcsDead reports a batch of dead arcs sharing one fault instant (a
// broker crash seen from all its neighbors at once). Already-dead arcs
// are ignored; one repair covers the whole batch.
func (d *FailureDetector) ArcsDead(arcs [][2]msg.NodeID, faultAt, detectedAt vtime.Millis) {
	d.mu.Lock()
	defer d.mu.Unlock()
	fresh := 0
	for _, arc := range arcs {
		if d.dead[arc] {
			continue
		}
		d.dead[arc] = true
		fresh++
		lat := detectedAt - faultAt
		if lat < 0 {
			lat = 0
		}
		d.sink.Detection(lat)
	}
	if fresh > 0 {
		d.repair()
	}
}

// BrokerRestarted reports that a crashed broker came back with durable
// state intact: every piece of dead-arc evidence rooted at it is
// withdrawn in one batch and a single repair moves routes back through
// the rejoined node. The restarted broker reinstalls its own table from
// its log before this is called, so the repair's installs land on a
// warm table rather than re-deriving it from scratch. prepare, when
// non-nil, runs under the detector's mutex before the evidence is
// withdrawn — the live backend swaps the plan's broker and table maps
// to the fresh incarnation there, serialized against concurrent
// repairs (the single-threaded simulator passes nil and swaps first).
func (d *FailureDetector) BrokerRestarted(id msg.NodeID, prepare func()) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if prepare != nil {
		prepare()
	}
	fresh := 0
	for arc := range d.dead {
		if arc[0] == id {
			delete(d.dead, arc)
			fresh++
		}
	}
	if fresh > 0 {
		d.repair()
	}
}

// ArcRestored reports a previously dead arc as live again (a transient
// link outage ending). The repair moves affected routes back.
func (d *FailureDetector) ArcRestored(from, to msg.NodeID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	arc := [2]msg.NodeID{from, to}
	if !d.dead[arc] {
		return
	}
	delete(d.dead, arc)
	d.repair()
}

// DeadArcs returns the current evidence set in deterministic order
// (diagnostics and tests).
func (d *FailureDetector) DeadArcs() [][2]msg.NodeID {
	d.mu.Lock()
	defer d.mu.Unlock()
	arcs := make([][2]msg.NodeID, 0, len(d.dead))
	for arc := range d.dead {
		arcs = append(arcs, arc)
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i][0] != arcs[j][0] {
			return arcs[i][0] < arcs[j][0]
		}
		return arcs[i][1] < arcs[j][1]
	})
	return arcs
}

// survivingGraph derives the overlay that remains under the current
// evidence: the original graph minus every dead arc, with node death
// inferred — a broker none of whose outgoing arcs survive is gone, so
// its incoming arcs are pruned too (they carry no extra detection
// accounting; nothing can be delivered through a dead node either way).
func (d *FailureDetector) survivingGraph() *topology.Graph {
	g := d.p.Overlay.Graph.Clone()
	for arc := range d.dead {
		g.RemoveArc(arc[0], arc[1])
	}
	// Iterate to a fixpoint: pruning a dead node's incoming arcs can
	// strand a neighbor in turn.
	for changed := true; changed; {
		changed = false
		for id := 0; id < g.N(); id++ {
			nid := msg.NodeID(id)
			if g.Degree(nid) > 0 || d.p.Overlay.Graph.Degree(nid) == 0 {
				continue
			}
			for from := 0; from < g.N(); from++ {
				if g.RemoveArc(msg.NodeID(from), nid) {
					changed = true
				}
			}
		}
	}
	return g
}

// repair recomputes routing on the surviving graph and re-floods the
// subscriptions whose paths moved. Caller holds d.mu.
func (d *FailureDetector) repair() {
	p := d.p
	surviving := *p.Overlay
	surviving.Graph = d.survivingGraph()
	next := routing.NewInstaller(&surviving, routing.Options{Rates: p.Beliefs, Multipath: p.Cfg.Multipath})

	rerouted, kept, relaxed, rejected, reflooded := 0, 0, 0, 0, 0
	for _, sub := range p.Subs {
		if p.Agg != nil && !p.Agg.Agg.IsForwarded(sub.ID) {
			// Covering aggregation: members and masked subscriptions hold
			// no forwarding entries of their own — their representative's
			// re-flood carries them, and their local delivery entries at
			// the edge are terminal (path-independent), so repair leaves
			// them untouched.
			continue
		}
		// Diff this subscription's delivery paths per ingress.
		changedPairs := make(map[msg.NodeID]bool)
		for _, src := range p.Overlay.Ingress {
			if !pathSetsEqual(d.prev.Paths(src, sub.Edge), next.Paths(src, sub.Edge)) {
				changedPairs[src] = true
			}
		}
		if len(changedPairs) == 0 {
			continue
		}

		// Re-flood: drop the subscription everywhere, reinstall every
		// ingress route on the surviving graph (unchanged routes come back
		// verbatim; changed ones carry the renegotiated floor). A
		// representative's covering group rides across the move.
		var groups map[msg.NodeID]*routing.Group
		if p.Agg != nil {
			groups = d.takeGroups(sub.ID)
		}
		d.removeSub(sub.ID)
		installed := 0
		for _, src := range p.Overlay.Ingress {
			paths := next.Paths(src, sub.Edge)
			if changedPairs[src] {
				if len(paths) > 0 {
					rerouted++
				} else if p.Cfg.Recovery.Renegotiate {
					rejected++
				}
			}
			for pathID, path := range paths {
				var floor vtime.Millis
				if changedPairs[src] && p.Cfg.Recovery.Renegotiate {
					outcome := boundKept
					floor, outcome = d.renegotiatePath(sub, path)
					switch outcome {
					case boundKept:
						kept++
					case boundRelaxed:
						relaxed++
					case boundRejected:
						rejected++
						continue // path inadmissible: do not install
					}
				}
				d.installPath(path, sub, src, pathID, floor)
				installed += len(path)
			}
		}
		if installed > 0 {
			reflooded++
		}
		if groups != nil {
			d.restoreGroups(sub.ID, groups)
		}
	}

	d.prev = next
	if rerouted > 0 {
		d.sink.Rerouted(rerouted)
	}
	if kept+relaxed+rejected > 0 {
		d.sink.Renegotiated(kept, relaxed, rejected)
	}
	if reflooded > 0 {
		d.sink.Reflooded(reflooded)
	}
}

// renegotiatePath applies the admission math to one rerouted path.
func (d *FailureDetector) renegotiatePath(sub *msg.Subscription, path []msg.NodeID) (vtime.Millis, renegotiation) {
	p := d.p
	links := len(path) - 1
	parts := make([]stats.Normal, 0, links)
	for i := 0; i < links; i++ {
		parts = append(parts, p.Beliefs(path[i], path[i+1]))
	}
	rate := stats.SumNormal(parts...)
	return renegotiateBound(p.applicableBound(sub), links, rate, p.Cfg.Workload.SizeKB,
		p.Cfg.Params.PD, p.Cfg.Recovery.SuccessTarget, p.Cfg.Recovery.MaxRelaxFactor)
}

// takeGroups snapshots a representative's covering group per table
// before a remove-and-reinstall (tables where it holds no live entries
// are omitted).
func (d *FailureDetector) takeGroups(id msg.SubID) map[msg.NodeID]*routing.Group {
	groups := make(map[msg.NodeID]*routing.Group)
	for nid, t := range d.p.Tables {
		get := func() {
			if g := t.TakeGroup(id); g != nil {
				groups[nid] = g
			}
		}
		if d.lock != nil {
			d.lock(nid, get)
		} else {
			get()
		}
	}
	return groups
}

// restoreGroups stamps the snapshotted groups back onto the reinstalled
// entries. A representative whose table lost every route simply drops
// its group there — the covered subscriptions share the coverer's fate.
func (d *FailureDetector) restoreGroups(id msg.SubID, groups map[msg.NodeID]*routing.Group) {
	for nid, g := range groups {
		t := d.p.Tables[nid]
		if d.lock != nil {
			d.lock(nid, func() { t.SetGroup(id, g) })
		} else {
			t.SetGroup(id, g)
		}
	}
}

// removeSub drops one subscription from every table, excluding each
// broker's concurrent matchers through the backend lock.
func (d *FailureDetector) removeSub(id msg.SubID) {
	for nid, t := range d.p.Tables {
		if d.lock != nil {
			d.lock(nid, func() { t.RemoveSub(id) })
		} else {
			t.RemoveSub(id)
		}
	}
}

// installPath writes the subscription's entries along one path, carrying
// the renegotiated floor.
func (d *FailureDetector) installPath(path []msg.NodeID, sub *msg.Subscription, src msg.NodeID, pathID int, floor vtime.Millis) {
	for i := range path {
		e := routing.EntryAt(path, i, sub, src, pathID, d.p.Beliefs)
		e.Relaxed = floor
		nid := path[i]
		t := d.p.Tables[nid]
		if d.lock != nil {
			d.lock(nid, func() { t.Add(e) })
		} else {
			t.Add(e)
		}
	}
}

// pathSetsEqual compares two delivery path sets element-wise.
func pathSetsEqual(a, b [][]msg.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
