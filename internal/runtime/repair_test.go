package runtime

import (
	"testing"

	"bdps/internal/core"
	"bdps/internal/msg"
	"bdps/internal/stats"
	"bdps/internal/topology"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

// detourOverlay is a 4-node overlay with a cheap primary path (0-1-3)
// and a more expensive detour (0-2-3): a repair has exactly one place to
// move the routes.
func detourOverlay(t testing.TB, detourMean float64) *topology.Overlay {
	t.Helper()
	g := topology.NewGraph(4)
	for _, l := range []struct {
		a, b msg.NodeID
		mean float64
	}{{0, 1, 50}, {1, 3, 50}, {0, 2, detourMean}, {2, 3, detourMean}} {
		if err := g.AddLink(l.a, l.b, stats.Normal{Mean: l.mean, Sigma: 5}); err != nil {
			t.Fatal(err)
		}
	}
	return &topology.Overlay{Graph: g, Ingress: []msg.NodeID{0}, Edges: []msg.NodeID{3}}
}

func detourPlan(t testing.TB, detourMean float64) *Plan {
	t.Helper()
	p, err := NewPlan(Config{
		Seed:     1,
		Scenario: msg.PSD,
		Strategy: core.MaxEB{},
		Overlay:  detourOverlay(t, detourMean),
		Workload: workload.Config{RatePerMin: 6, Duration: vtime.Minute},
		Recovery: Recovery{Detect: true, Renegotiate: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDetectorReroutesOntoSurvivingPath: one dead arc on the primary
// path must count one detection, move every subscription onto the
// detour, and move it back when the arc is restored.
func TestDetectorReroutesOntoSurvivingPath(t *testing.T) {
	p := detourPlan(t, 90) // detour feasible: Σ rate 180 ms/KB < 10 s bound
	subs := len(p.Subs)
	det := NewFailureDetector(p, p.Metrics, nil)

	if p.Tables[1].Len() == 0 || p.Tables[2].Len() != 0 {
		t.Fatalf("initial routes should use the primary path: table1=%d table2=%d",
			p.Tables[1].Len(), p.Tables[2].Len())
	}

	det.ArcDead(1, 3, 0, 2000)
	r := p.Metrics.Result()
	if r.Detections != 1 || r.DetectionLatencyMs != 2000 {
		t.Errorf("detections = %d latency %.0f, want 1 at 2000 ms", r.Detections, r.DetectionLatencyMs)
	}
	if r.ReroutedPaths != subs || r.RefloodedSubs != subs {
		t.Errorf("rerouted %d reflooded %d, want %d each", r.ReroutedPaths, r.RefloodedSubs, subs)
	}
	// The detour is feasible for the 10 s PSD floor, so every bound holds.
	if r.BoundsKept != subs || r.BoundsRelaxed != 0 || r.BoundsRejected != 0 {
		t.Errorf("renegotiation = %d/%d/%d kept/relaxed/rejected, want %d/0/0",
			r.BoundsKept, r.BoundsRelaxed, r.BoundsRejected, subs)
	}
	if p.Tables[1].Len() != 0 || p.Tables[2].Len() != subs {
		t.Errorf("repair left table1=%d table2=%d, want routes moved onto the detour",
			p.Tables[1].Len(), p.Tables[2].Len())
	}

	det.ArcRestored(1, 3)
	r = p.Metrics.Result()
	if r.ReroutedPaths != 2*subs || r.RefloodedSubs != 2*subs {
		t.Errorf("restore should reroute again: rerouted %d reflooded %d, want %d each",
			r.ReroutedPaths, r.RefloodedSubs, 2*subs)
	}
	if p.Tables[1].Len() != subs || p.Tables[2].Len() != 0 {
		t.Errorf("restore left table1=%d table2=%d, want routes back on the primary path",
			p.Tables[1].Len(), p.Tables[2].Len())
	}
	if r.Detections != 1 {
		t.Errorf("restore must not count a detection: %d", r.Detections)
	}
}

// TestDetectorDedupsEvidence: reporting the same dead arc twice (two
// live monitors racing, or a retransmitted event) is one detection and
// one repair.
func TestDetectorDedupsEvidence(t *testing.T) {
	p := detourPlan(t, 90)
	det := NewFailureDetector(p, p.Metrics, nil)
	det.ArcDead(1, 3, 0, 2000)
	det.ArcDead(1, 3, 0, 2500)
	r := p.Metrics.Result()
	if r.Detections != 1 {
		t.Errorf("duplicate evidence counted: %d detections, want 1", r.Detections)
	}
	if r.ReroutedPaths != len(p.Subs) {
		t.Errorf("duplicate evidence re-repaired: rerouted %d, want %d", r.ReroutedPaths, len(p.Subs))
	}
}

// TestDetectorInfersNodeDeath: a node none of whose outgoing arcs
// survive is dead, so its incoming arcs are pruned from the surviving
// graph too.
func TestDetectorInfersNodeDeath(t *testing.T) {
	p := detourPlan(t, 90)
	det := NewFailureDetector(p, p.Metrics, nil)
	det.ArcsDead([][2]msg.NodeID{{1, 0}, {1, 3}}, 0, 2000)
	g := det.survivingGraph()
	if g.Degree(1) != 0 {
		t.Errorf("node 1 should be fully pruned, has %d arcs", g.Degree(1))
	}
	arcs := det.DeadArcs()
	if len(arcs) != 2 || arcs[0] != [2]msg.NodeID{1, 0} || arcs[1] != [2]msg.NodeID{1, 3} {
		t.Errorf("DeadArcs = %v, want sorted [{1 0} {1 3}]", arcs)
	}
	if r := p.Metrics.Result(); r.Detections != 2 {
		t.Errorf("batch of 2 arcs = %d detections, want 2", r.Detections)
	}
}

// TestDetectorRejectsStrandedSubscriptions: when no surviving path
// reaches an edge, the pairs count as rejected (under renegotiation)
// and nothing is reflooded.
func TestDetectorRejectsStrandedSubscriptions(t *testing.T) {
	p := detourPlan(t, 90)
	subs := len(p.Subs)
	det := NewFailureDetector(p, p.Metrics, nil)
	det.ArcsDead([][2]msg.NodeID{{1, 3}, {2, 3}}, 0, 2000)
	r := p.Metrics.Result()
	if r.BoundsRejected != subs {
		t.Errorf("stranded pairs rejected = %d, want %d", r.BoundsRejected, subs)
	}
	if r.RefloodedSubs != 0 || r.ReroutedPaths != 0 {
		t.Errorf("stranded subs reflooded %d rerouted %d, want 0 each",
			r.RefloodedSubs, r.ReroutedPaths)
	}
	if p.Tables[3].Len() != 0 {
		t.Errorf("edge table still has %d entries after stranding", p.Tables[3].Len())
	}
}

// TestRenegotiateBound pins the admission math's three outcomes.
func TestRenegotiateBound(t *testing.T) {
	rate := stats.Normal{Mean: 120, Sigma: 7} // Σ ms/KB of a 2-link path
	const links, sizeKB, pd = 2, 50, 2

	// 10 s bound: slack (10000-4)/50 ≈ 200 ms/KB, far above the mean.
	if floor, out := renegotiateBound(10*vtime.Second, links, rate, sizeKB, pd, 0.5, 3); out != boundKept || floor != 0 {
		t.Errorf("feasible bound = (%v, %d), want kept with floor 0", floor, out)
	}
	// 5 s bound: slack ≈ 100 ms/KB, infeasible; the cheapest feasible
	// bound is links·PD + Quantile(0.5)·S = 4 + 120·50 = 6004 ≤ 3×5000.
	floor, out := renegotiateBound(5*vtime.Second, links, rate, sizeKB, pd, 0.5, 3)
	if out != boundRelaxed || floor != 6004 {
		t.Errorf("infeasible bound = (%v, %d), want relaxed to 6004", floor, out)
	}
	// 1.5 s bound: 6004 > 3×1500, past the relax cap.
	if _, out := renegotiateBound(1500, links, rate, sizeKB, pd, 0.5, 3); out != boundRejected {
		t.Errorf("hopeless bound = %d, want rejected", out)
	}
	// No bound, nothing to renegotiate.
	if _, out := renegotiateBound(0, links, rate, sizeKB, pd, 0.5, 3); out != boundKept {
		t.Errorf("unbounded = %d, want trivially kept", out)
	}
}

// TestApplicableBound pins which bound each scenario renegotiates.
func TestApplicableBound(t *testing.T) {
	p := &Plan{Cfg: Config{
		Scenario: msg.PSD,
		Workload: workload.Config{PSDDelayLo: 10 * vtime.Second},
	}}
	sub := &msg.Subscription{Deadline: 30 * vtime.Second}
	if b := p.applicableBound(sub); b != 10*vtime.Second {
		t.Errorf("PSD bound = %v, want the publisher floor", b)
	}
	p.Cfg.Scenario = msg.SSD
	if b := p.applicableBound(sub); b != 30*vtime.Second {
		t.Errorf("SSD bound = %v, want the subscriber deadline", b)
	}
	p.Cfg.Scenario = msg.Both
	if b := p.applicableBound(sub); b != 10*vtime.Second {
		t.Errorf("Both bound = %v, want the stricter side", b)
	}
	sub.Deadline = 5 * vtime.Second
	if b := p.applicableBound(sub); b != 5*vtime.Second {
		t.Errorf("Both bound = %v, want the subscriber's tighter deadline", b)
	}
	sub.Deadline = 0
	if b := p.applicableBound(sub); b != 10*vtime.Second {
		t.Errorf("Both with no deadline = %v, want the publisher floor", b)
	}
}

// BenchmarkRecovery measures one fail-and-restore repair cycle — two
// surviving-graph recomputations, route diffs and re-floods — on a
// minimal detour overlay and on the paper's layered mesh.
func BenchmarkRecovery(b *testing.B) {
	b.Run("detour", func(b *testing.B) {
		p := detourPlan(b, 90)
		det := NewFailureDetector(p, p.Metrics, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			det.ArcDead(1, 3, 0, 2000)
			det.ArcRestored(1, 3)
		}
	})
	b.Run("layered", func(b *testing.B) {
		cfg := planCfg()
		cfg.Recovery = Recovery{Detect: true, Renegotiate: true}
		p, err := NewPlan(cfg)
		if err != nil {
			b.Fatal(err)
		}
		det := NewFailureDetector(p, p.Metrics, nil)
		l := p.Links[0]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			det.ArcDead(l.From, l.To, 0, 2000)
			det.ArcRestored(l.From, l.To)
		}
	})
}

// TestValidateFaultsHardening covers the degenerate fault declarations
// NewPlan must refuse: empty windows, faults past the run horizon, and
// overlapping outages on one link.
func TestValidateFaultsHardening(t *testing.T) {
	cfg := planCfg() // layered default topology: 0→4 is an arc
	cfg.Faults = []Fault{LinkDown{From: 0, To: 4, Start: 5 * vtime.Second, End: 5 * vtime.Second}}
	if _, err := NewPlan(cfg); err == nil {
		t.Error("empty LinkDown window should fail")
	}

	// Horizon for the default workload: 2 min window + 60 s slowest SSD tier.
	cfg = planCfg()
	cfg.Faults = []Fault{LinkDown{From: 0, To: 4, Start: 10 * vtime.Minute, End: 11 * vtime.Minute}}
	if _, err := NewPlan(cfg); err == nil {
		t.Error("LinkDown past the run horizon should fail")
	}
	cfg = planCfg()
	cfg.Faults = []Fault{BrokerCrash{ID: 0, At: 10 * vtime.Minute}}
	if _, err := NewPlan(cfg); err == nil {
		t.Error("BrokerCrash past the run horizon should fail")
	}

	cfg = planCfg()
	cfg.Faults = []Fault{
		LinkDown{From: 0, To: 4, Start: 10 * vtime.Second, End: 30 * vtime.Second},
		LinkDown{From: 0, To: 4, Start: 20 * vtime.Second, End: 40 * vtime.Second},
	}
	if _, err := NewPlan(cfg); err == nil {
		t.Error("overlapping LinkDown windows on one arc should fail")
	}

	// Touching windows are fine, and [Start, End) makes back-to-back legal.
	cfg = planCfg()
	cfg.Faults = []Fault{
		LinkDown{From: 0, To: 4, Start: 10 * vtime.Second, End: 20 * vtime.Second},
		LinkDown{From: 0, To: 4, Start: 20 * vtime.Second, End: 30 * vtime.Second},
	}
	if _, err := NewPlan(cfg); err != nil {
		t.Errorf("back-to-back windows should validate: %v", err)
	}
}

// TestValidateFaultsOrdersDeterministically: NewPlan sorts the fault
// list (time, kind, ids) so backends arm faults identically however the
// caller listed them.
func TestValidateFaultsOrdersDeterministically(t *testing.T) {
	cfg := planCfg()
	cfg.Faults = []Fault{
		LinkDown{From: 0, To: 4, Start: 40 * vtime.Second, End: 50 * vtime.Second},
		BrokerCrash{ID: 0, At: 40 * vtime.Second},
		LinkDown{From: 0, To: 4, Start: 10 * vtime.Second, End: 20 * vtime.Second},
	}
	p, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Cfg.Faults[0].(LinkDown); !ok {
		t.Errorf("fault 0 = %T, want the 10 s LinkDown first", p.Cfg.Faults[0])
	}
	if _, ok := p.Cfg.Faults[1].(BrokerCrash); !ok {
		t.Errorf("fault 1 = %T, want the crash before the same-instant outage", p.Cfg.Faults[1])
	}
	if ld, ok := p.Cfg.Faults[2].(LinkDown); !ok || ld.Start != 40*vtime.Second {
		t.Errorf("fault 2 = %+v, want the 40 s LinkDown last", p.Cfg.Faults[2])
	}
}
