package runtime

import (
	"math"
	"testing"
	"time"

	"bdps/internal/core"
	"bdps/internal/msg"
	"bdps/internal/stats"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

func TestSamplerMoments(t *testing.T) {
	truth := stats.Normal{Mean: 75, Sigma: 20}
	for _, tc := range []struct {
		model LinkModel
		name  string
	}{{LinkNormal, "normal"}, {LinkGamma, "gamma"}} {
		s := NewSampler(tc.model, truth, 1)
		stream := stats.NewStream(5)
		var w stats.Welford
		for i := 0; i < 100000; i++ {
			w.Add(s.Sample(stream))
		}
		if math.Abs(w.Mean()-75) > 1.5 {
			t.Errorf("%s sampler mean = %v, want ≈75", tc.name, w.Mean())
		}
		if math.Abs(w.Std()-20) > 2 {
			t.Errorf("%s sampler std = %v, want ≈20", tc.name, w.Std())
		}
	}
	fixed := NewSampler(LinkFixed, truth, 1)
	if fixed.Sample(stats.NewStream(1)) != 75 {
		t.Error("fixed sampler should return the mean")
	}
}

func TestWallClockScalesElapsedTime(t *testing.T) {
	c := NewWallClock(0.01) // 1 emulated second per 10 wall ms
	start := c.Now()
	time.Sleep(20 * time.Millisecond)
	elapsed := c.Now() - start
	// 20 wall ms at scale 0.01 ≈ 2000 emulated ms; bound loosely for
	// scheduler jitter.
	if elapsed < 1500 || elapsed > 20000 {
		t.Errorf("elapsed = %v emulated ms, want ≈2000", elapsed)
	}
}

func TestWallClockRestartRewindsToZero(t *testing.T) {
	c := NewWallClock(1)
	time.Sleep(5 * time.Millisecond)
	c.Restart()
	if now := c.Now(); now < 0 || now > 1000 {
		t.Errorf("after Restart, Now = %v, want ≈0", now)
	}
}

func TestAbsoluteWallClockMatchesUnixMillis(t *testing.T) {
	c := AbsoluteWallClock(1)
	wall := float64(time.Now().UnixMicro()) / 1000
	if d := math.Abs(c.Now() - wall); d > 1000 {
		t.Errorf("absolute clock off by %v ms from Unix wall time", d)
	}
	if c.Scale() != 1 {
		t.Errorf("Scale() = %v, want 1", c.Scale())
	}
}

func planCfg() Config {
	return Config{
		Seed:     1,
		Scenario: msg.PSD,
		Strategy: core.MaxEB{},
		Workload: workload.Config{RatePerMin: 6, Duration: 2 * vtime.Minute},
	}
}

func TestNewPlanAssemblesEverything(t *testing.T) {
	p, err := NewPlan(planCfg())
	if err != nil {
		t.Fatal(err)
	}
	n := p.Overlay.Graph.N()
	if len(p.Brokers) != n {
		t.Errorf("brokers = %d, want one per overlay node (%d)", len(p.Brokers), n)
	}
	if len(p.Tables) != n {
		t.Errorf("tables = %d, want %d", len(p.Tables), n)
	}
	if len(p.Subs) == 0 || len(p.Links) == 0 || len(p.Pubs) == 0 {
		t.Fatalf("plan incomplete: %d subs, %d links, %d pubs",
			len(p.Subs), len(p.Links), len(p.Pubs))
	}
	// Deterministic link enumeration: strictly ascending (from, to).
	for i := 1; i < len(p.Links); i++ {
		a, b := p.Links[i-1], p.Links[i]
		if a.From > b.From || (a.From == b.From && a.To >= b.To) {
			t.Fatalf("links not in sorted arc order at %d: %+v then %+v", i, a, b)
		}
		if p.Links[i].Index != i {
			t.Fatalf("link %d has Index %d", i, p.Links[i].Index)
		}
	}
	// Per-publisher generation order: publications of one publisher are
	// time-ordered.
	last := map[msg.NodeID]vtime.Millis{}
	for _, m := range p.Pubs {
		if m.Published < last[m.Publisher] {
			t.Fatalf("publisher %d publications out of order", m.Publisher)
		}
		last[m.Publisher] = m.Published
	}
}

func TestNewPlanValidatesFaults(t *testing.T) {
	cfg := planCfg()
	cfg.Faults = []Fault{BrokerCrash{ID: 999, At: 0}}
	if _, err := NewPlan(cfg); err == nil {
		t.Error("crash of unknown broker should fail")
	}
	cfg = planCfg()
	cfg.Faults = []Fault{LinkDown{From: 0, To: 1, Start: 0, End: 1}}
	if _, err := NewPlan(cfg); err == nil {
		t.Error("LinkDown on a non-arc should fail")
	}
	cfg = planCfg()
	cfg.Faults = []Fault{LinkDown{From: 0, To: 4, Start: 5, End: 1}}
	if _, err := NewPlan(cfg); err == nil {
		t.Error("inverted window should fail")
	}
}

func TestPlanMultipathBuildsDedupBrokers(t *testing.T) {
	cfg := planCfg()
	cfg.Multipath = 2
	p, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Dedup is observable: processing the same message twice must report
	// the second as a duplicate.
	b := p.Brokers[0]
	m := p.Pubs[0]
	b.Process(m, m.Published)
	if res := b.Process(m, m.Published); !res.Duplicate {
		t.Error("multipath plan brokers must dedup repeated arrivals")
	}
}

func TestLinkModelStrings(t *testing.T) {
	if LinkNormal.String() != "normal" || LinkFixed.String() != "fixed" ||
		LinkGamma.String() != "gamma" {
		t.Error("LinkModel strings wrong")
	}
	if LinkModel(9).String() == "" {
		t.Error("unknown model should still render")
	}
}
