package runtime

import (
	"bdps/internal/broker"
	"bdps/internal/durable"
	"bdps/internal/msg"
	"bdps/internal/routing"
	"bdps/internal/stats"
)

// This file is the backend-shared half of crash-restart durability: the
// conversion between a broker's live routing table and the durable
// entries its write-ahead log holds, and the warm-rejoin reconstruction
// of a restarted broker from those entries. The live overlay persists
// the entries through internal/durable's real file store; the simulator
// keeps the same entries in memory — one durable-state model, two
// media — so the recovery ledger (entries replayed, sessions resumed,
// stale frames rejected) is comparable across backends exactly.

// SessionRingLimit bounds every backend's per-session replay ring:
// deliveries retained for a disconnected subscriber beyond the newest
// SessionRingLimit are gone for good — the bounded give-up any real
// durable subscription has.
const SessionRingLimit = 256

// SnapshotDurable extracts broker id's current routing state as the
// durable entries its WAL would hold — what a deploy-time checkpoint
// writes on the live overlay. Entries are deep value copies: later
// repairs mutating the live table cannot reach back into the snapshot,
// exactly as bytes on disk are beyond a crashing process.
func (p *Plan) SnapshotDurable(id msg.NodeID) []durable.Entry {
	t := p.Tables[id]
	if t == nil {
		return nil
	}
	var out []durable.Entry
	for _, src := range t.Sources() {
		for _, e := range t.Entries(src) {
			out = append(out, durable.Entry{
				Sub: e.Sub, Source: e.Source, Next: e.Next,
				Hops: e.Hops, PathID: e.PathID,
				RateMean: e.Rate.Mean, RateSigma: e.Rate.Sigma,
				Relaxed: e.Relaxed,
			})
		}
	}
	return out
}

// RestartBroker replaces broker id with a fresh incarnation recovered
// from the given durable entries: a new routing table holding exactly
// the WAL state, a new broker instance around it (empty queues — the
// crash took whatever was in flight), both swapped into the plan so
// matchers, links and the repair engine all see the rejoined node. It
// returns the number of distinct subscriptions reinstalled — the
// RestartReplayedSubs ledger entry. Callers invoke the repair engine's
// BrokerRestarted afterwards to withdraw the crash evidence and move
// routes back.
func (p *Plan) RestartBroker(id msg.NodeID, entries []durable.Entry) (int, error) {
	t := routing.NewTable(id)
	subs := make(map[msg.SubID]bool, len(entries))
	for i := range entries {
		e := &entries[i]
		t.Add(&routing.Entry{
			Sub: e.Sub, Source: e.Source, Next: e.Next,
			Hops: e.Hops, PathID: e.PathID,
			Rate:    stats.Normal{Mean: e.RateMean, Sigma: e.RateSigma},
			Relaxed: e.Relaxed,
		})
		subs[e.Sub.ID] = true
	}
	if p.Cfg.IndexedMatch {
		t.EnableIndex()
	}
	means := make(map[msg.NodeID]float64)
	for _, e := range p.Overlay.Graph.Neighbors(id) {
		means[e.To] = p.Beliefs(id, e.To).Mean
	}
	pressure := 0
	if p.Cfg.Admission.Shed {
		pressure = p.Cfg.Admission.MaxQueue
	}
	b, err := broker.New(broker.Config{
		ID:        id,
		Scenario:  p.Cfg.Scenario,
		Params:    p.Cfg.Params,
		Strategy:  p.Cfg.Strategy,
		Table:     t,
		LinkMeans: means,
		Dedup:     p.Cfg.Multipath > 1,
		Pressure:  pressure,
	})
	if err != nil {
		return 0, err
	}
	p.Tables[id] = t
	p.Brokers[id] = b
	return len(subs), nil
}
