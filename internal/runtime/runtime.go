package runtime

import (
	"fmt"

	"bdps/internal/metrics"
	"bdps/internal/msg"
)

// Result is the unified per-run outcome every backend produces. It is
// the metrics result assembled by the Run driver: publication accounting
// from the plan, delivery accounting from the deployment, identification
// and peak-queue diagnostics stamped on top.
type Result = metrics.Result

// Transport realizes a plan on one backend. Implementations are thin:
// all wiring lives in the Plan, so a transport only decides how time
// passes and how messages move between brokers.
type Transport interface {
	// Name identifies the backend ("sim", "live") in results and flags.
	Name() string
	// Deterministic reports whether identical configs produce identical
	// results — the property the experiment run cache requires.
	Deterministic() bool
	// Deploy assembles a runnable deployment from a plan.
	Deploy(p *Plan) (Deployment, error)
}

// Deployment is one deployed plan, ready to carry the workload.
type Deployment interface {
	// Inject introduces the plan's publications: the simulator schedules
	// each at its virtual Published instant and returns immediately; the
	// live overlay paces them out in compressed wall time and returns
	// when the last has been sent.
	Inject(pubs []*msg.Message) error
	// Drain runs the deployment to quiescence: all injected messages
	// delivered, dropped or expired, every queue empty.
	Drain() error
	// PeakQueue reports the largest queue occupancy observed; call after
	// Drain.
	PeakQueue() int
	// Close releases backend resources (connections, goroutines,
	// timers). Safe after a failed Drain.
	Close() error
}

// Run executes one config on a backend: assemble the plan, deploy it,
// account the publication side, drive the workload through, and freeze
// the collector into a Result. This is the single entry point both
// simnet.Run and the live harness reduce to.
func Run(cfg Config, t Transport) (Result, error) {
	p, err := NewPlan(cfg)
	if err != nil {
		return Result{}, err
	}
	dep, err := t.Deploy(p)
	if err != nil {
		return Result{}, err
	}
	defer dep.Close()

	// Publication-side accounting is backend-independent: Σ tsᵢ depends
	// only on the workload and the subscription population. Doing it
	// before injection also keeps the collector single-writer while
	// concurrent backends feed the delivery side through a LockedSink.
	p.AccountPublications()

	if err := dep.Inject(p.Pubs); err != nil {
		return Result{}, err
	}
	if err := dep.Drain(); err != nil {
		return Result{}, err
	}

	if p.Cfg.Aggregate {
		// End-of-run table census: live entries whose refcount stands for
		// more than one concrete subscription. (Live-backend deployments
		// mutate the same plan tables, so one scan serves both.)
		n := 0
		for _, t := range p.Tables {
			n += t.AggregatedEntries()
		}
		p.Metrics.AggregatedEntries(n)
	}

	r := p.Metrics.Result()
	r.Seed = p.Cfg.Seed
	r.Strategy = p.Cfg.Strategy.Name()
	r.Scenario = p.Cfg.Scenario.String()
	r.Backend = t.Name()
	r.Label = fmt.Sprintf("%s/%s rate=%.0f", r.Scenario, r.Strategy, p.Cfg.Workload.RatePerMin)
	r.PeakQueue = dep.PeakQueue()
	return r, nil
}
