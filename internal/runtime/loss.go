package runtime

import (
	"math"

	"bdps/internal/core"
	"bdps/internal/msg"
	"bdps/internal/stats"
	"bdps/internal/vtime"
)

// This file is the shared half of the lossy-network adversary and the
// reliable channel that heals it. The design invariant both backends
// lean on: every loss/dup/reorder decision is a pure function of
// (run seed, link index, sequence number, attempt), so the simulator and
// the live overlay face the *identical* adversary and agree exactly on
// FramesLost / Retransmits / DupsSuppressed / DroppedDeadline. The
// adversary sits at the sender's egress: a lost transmission is known
// synchronously and retried head-of-line (the next attempt pays the link
// time again), which keeps per-link delivery FIFO and needs no
// timing-dependent retransmission timers that would break cross-backend
// determinism.

// Decision kinds keyed into the adversary hash.
const (
	lossKindDrop uint64 = iota + 1
	lossKindDup
	lossKindReorder
)

// mix64 is the splitmix64 finalizer: a cheap, high-quality bijective
// mixer whose output bits pass PractRand — ample for Bernoulli draws.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// LossModel is the per-link adversary of one LinkLoss fault. Decisions
// are deterministic in (seed, link, seq, attempt); Start/End gate the
// active window on the run clock.
type LossModel struct {
	seed       uint64
	rate       float64
	dup        float64
	reorder    float64
	start, end vtime.Millis
}

// NewLossModel builds the adversary one directed link faces under a
// LinkLoss fault. linkIndex must be the link's position in the plan's
// deterministic enumeration (Plan.Links) so both backends key the same
// decision stream.
func NewLossModel(seed uint64, linkIndex int, f LinkLoss) *LossModel {
	return &LossModel{
		seed:    mix64(seed^0xBD75) ^ mix64(uint64(linkIndex)+0x10001),
		rate:    f.Rate,
		dup:     f.Dup,
		reorder: f.Reorder,
		start:   f.Start,
		end:     f.End,
	}
}

// active reports whether the fault window covers the instant.
func (lm *LossModel) active(now vtime.Millis) bool {
	if lm == nil || now < lm.start {
		return false
	}
	return lm.end <= 0 || now < lm.end
}

// draw maps one (kind, seq, attempt) decision to a uniform [0,1).
func (lm *LossModel) draw(kind, seq uint64, attempt int) float64 {
	h := mix64(lm.seed ^ mix64(seq+1) ^ mix64(kind<<32|uint64(attempt)))
	return float64(h>>11) / float64(1<<53)
}

// Lose reports whether the adversary drops transmission `attempt`
// (0-based) of frame seq.
func (lm *LossModel) Lose(seq uint64, attempt int, now vtime.Millis) bool {
	return lm.active(now) && lm.draw(lossKindDrop, seq, attempt) < lm.rate
}

// Duplicate reports whether the adversary duplicates the delivered copy
// of frame seq. Independent of the attempt that finally delivered it, so
// the decision is loss-schedule-invariant.
func (lm *LossModel) Duplicate(seq uint64, now vtime.Millis) bool {
	return lm.active(now) && lm.draw(lossKindDup, seq, 0) < lm.dup
}

// Swap reports whether the adversary reorders frame seq behind its
// successor on the wire.
func (lm *LossModel) Swap(seq uint64, now vtime.Millis) bool {
	return lm.active(now) && lm.draw(lossKindReorder, seq, 0) < lm.reorder
}

// RetryPolicy is the retransmission policy one link's sender applies,
// derived from Config.Reliability plus the link's rate belief — the same
// inputs on both backends.
type RetryPolicy struct {
	// Enabled: retransmit at all (false = the loss-no-retry arm).
	Enabled bool
	// DeadlineAware gates every retransmission on remaining slack.
	DeadlineAware bool
	// MaxAttempts caps total transmissions per frame.
	MaxAttempts int
	// SuccessTarget is the delivery probability the remaining slack must
	// keep for a retransmission to be admitted.
	SuccessTarget float64
	// Belief is the sender's rate distribution for this link (ms/KB).
	Belief stats.Normal
	// PD is the per-hop processing delay the admission math charges.
	PD vtime.Millis
}

// Admit decides whether transmission number `attempt` (0-based; ≥ 1 means
// a retransmission) may be scheduled for a frame of sizeKB due at
// `deadline` — the hop-effective deadline from EffectiveDeadline, not the
// raw end-to-end one. Deadline-aware mode replays the paper's admission
// CDF (renegotiateBound with a single link and no relaxation): after
// charging the transmissions already spent at this link's expected rate,
// the remaining slack must still carry this hop with probability ≥
// SuccessTarget.
func (rp RetryPolicy) Admit(attempt int, sizeKB float64, deadline, now vtime.Millis) bool {
	if !rp.Enabled || attempt >= rp.MaxAttempts {
		return false
	}
	if !rp.DeadlineAware || math.IsInf(float64(deadline), 1) {
		return true
	}
	spent := vtime.Millis(float64(attempt) * sizeKB * rp.Belief.Mean)
	remaining := deadline - now - spent
	if remaining <= 0 {
		return false
	}
	_, verdict := renegotiateBound(remaining, 1, rp.Belief, sizeKB, rp.PD, rp.SuccessTarget, 1)
	return verdict == boundKept
}

// EffectiveDeadline tightens a frame's end-to-end deadlines into the
// latest instant at which THIS hop's transfer may complete while some
// target remains worth serving: per target, the residual path beyond this
// link — estimated by peeling the link's own belief out of the target's
// residual-path statistics (independent links: means and variances
// subtract) — must still fit, at its SuccessTarget quantile plus the
// remaining hops' processing delay, between the hop's completion and the
// target's deadline. The max over targets applies: a retransmission is
// worth scheduling while any subscriber can still be reached in time.
// Gating retries on this hop-effective deadline is what keeps an admitted
// retry from stranding the message one hop later: slack the downstream
// path needs is never spent re-sending here.
func (rp RetryPolicy) EffectiveDeadline(targets []core.Target, sizeKB float64) vtime.Millis {
	if !rp.DeadlineAware || len(targets) == 0 {
		return vtime.Inf
	}
	best := math.Inf(-1)
	for _, t := range targets {
		down := stats.Normal{
			Mean:  math.Max(0, t.Rate.Mean-rp.Belief.Mean),
			Sigma: math.Sqrt(math.Max(0, t.Rate.Sigma*t.Rate.Sigma-rp.Belief.Sigma*rp.Belief.Sigma)),
		}
		need := float64(t.Hops-1)*float64(rp.PD) + sizeKB*down.Quantile(rp.SuccessTarget)
		if need < 0 {
			need = 0
		}
		if d := float64(t.Deadline) - need; d > best {
			best = d
		}
	}
	return vtime.Millis(best)
}

// SendOutcome is the resolved fate of one frame against the adversary:
// how many transmissions are paced, whether the frame ultimately
// delivers, and whether the delivered copy is duplicated.
type SendOutcome struct {
	// Attempts is the number of paced transmissions (losses plus the
	// delivering send; the duplicate copy is charged separately).
	Attempts int
	// Losses is how many of those transmissions the adversary dropped.
	Losses int
	// Retransmits is how many re-sends the policy admitted (= Losses when
	// Deliver, Losses-1 when the frame was abandoned after its last try).
	Retransmits int
	// Deliver is false when the frame was abandoned (DroppedDeadline).
	Deliver bool
	// Dup marks a duplicated delivered copy.
	Dup bool
}

// ResolveSend plays one frame's head-of-line send chain against the
// adversary: transmit, and on a loss retransmit immediately if the policy
// admits it, else abandon. Both backends call this with identical
// arguments, which is what makes the loss counters agree exactly.
//
// The caller charges link time for Attempts transmissions (+1 when Dup),
// drawing rate samples in that order from the link's stream, and accounts
// Losses as FrameLost, Retransmits as Retransmit, and an abandoned frame
// as DroppedDeadline.
func ResolveSend(lm *LossModel, rp RetryPolicy, seq uint64, sizeKB float64, deadline, now vtime.Millis) SendOutcome {
	out := SendOutcome{}
	if lm == nil {
		out.Attempts, out.Deliver = 1, true
		return out
	}
	for attempt := 0; ; attempt++ {
		out.Attempts++
		if !lm.Lose(seq, attempt, now) {
			out.Deliver = true
			out.Dup = lm.Duplicate(seq, now)
			return out
		}
		out.Losses++
		if !rp.Admit(attempt+1, sizeKB, deadline, now) {
			return out
		}
		out.Retransmits++
	}
}

// RecvState restores exactly-once FIFO delivery on the receiving end of
// one lossy link: a cumulative expected-sequence cursor plus a bounded
// buffer of ahead-of-order frames. The cursor makes dedup O(1) and
// inherently generation-bounded — everything below `expected` is a
// duplicate, no per-ID set to expire.
type RecvState struct {
	expected uint64 // next in-order sequence (first frame is 1)
	buf      map[uint64]*msg.Message
	window   int
}

// NewRecvState returns receiver state with the given reorder window.
func NewRecvState(window int) *RecvState {
	if window <= 0 {
		window = 64
	}
	return &RecvState{expected: 1, window: window}
}

// Pending is the number of buffered out-of-order frames.
func (r *RecvState) Pending() int { return len(r.buf) }

// CumAck is the cumulative acknowledgement the receiver owes its sender:
// every sequence at or below it has been accepted (delivered, suppressed
// as a duplicate, or skipped as abandoned).
func (r *RecvState) CumAck() uint64 { return r.expected - 1 }

// Accept runs one arriving frame through dedup and FIFO restoration.
// `base` is the sender's lowest still-live sequence (frames below it were
// delivered or abandoned and must not be waited for). Messages now
// deliverable in order are appended to deliver; dup reports a suppressed
// duplicate (the caller owns the rejected message), and healed counts how
// many of the returned messages came out of the reorder buffer.
func (r *RecvState) Accept(seq, base uint64, m *msg.Message, deliver []*msg.Message) (out []*msg.Message, dup bool, healed int) {
	out = deliver
	if base > r.expected {
		// The sender abandoned everything below base: stop waiting for it.
		r.expected = base
		out, healed = r.drain(out, healed)
	}
	switch {
	case seq < r.expected:
		return out, true, healed
	case seq == r.expected:
		out = append(out, m)
		r.expected++
		out, healed = r.drain(out, healed)
	default:
		if r.buf == nil {
			r.buf = make(map[uint64]*msg.Message)
		}
		if _, dup := r.buf[seq]; dup {
			return out, true, healed
		}
		r.buf[seq] = m
		if len(r.buf) >= r.window {
			// Pathological gap (a peer restarted mid-stream): give up on
			// strict FIFO and advance to the lowest buffered frame rather
			// than wedge the link.
			low := seq
			for s := range r.buf {
				if s < low {
					low = s
				}
			}
			r.expected = low
			out, healed = r.drain(out, healed)
		}
	}
	return out, false, healed
}

// drain releases consecutively buffered frames from the cursor onward.
func (r *RecvState) drain(out []*msg.Message, healed int) ([]*msg.Message, int) {
	for {
		m, ok := r.buf[r.expected]
		if !ok {
			return out, healed
		}
		delete(r.buf, r.expected)
		r.expected++
		out = append(out, m)
		healed++
	}
}

// LossModel returns the adversary one plan link faces, or nil for a clean
// link. Exactly one LinkLoss fault can cover an arc (validateFaults).
func (p *Plan) LossModel(l Link) *LossModel {
	for _, f := range p.Cfg.Faults {
		ll, ok := f.(LinkLoss)
		if !ok {
			continue
		}
		wild := ll.From == msg.None && ll.To == msg.None
		if wild || (ll.From == l.From && ll.To == l.To) {
			return NewLossModel(p.Cfg.Seed, l.Index, ll)
		}
	}
	return nil
}

// RetryPolicy derives one link's retransmission policy from the run's
// reliability config and the link's rate belief.
func (p *Plan) RetryPolicy(l Link) RetryPolicy {
	rel := p.Cfg.Reliability
	return RetryPolicy{
		Enabled:       !rel.NoRetry,
		DeadlineAware: !rel.BlindRetry,
		MaxAttempts:   rel.MaxAttempts,
		SuccessTarget: rel.SuccessTarget,
		Belief:        p.Beliefs(l.From, l.To),
		PD:            p.Cfg.Params.PD,
	}
}
