package runtime_test

import (
	"math"
	"testing"

	"bdps/internal/core"
	"bdps/internal/livenet"
	"bdps/internal/msg"
	"bdps/internal/runtime"
	"bdps/internal/simnet"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

// restartConfig is the shared crash-restart run. It reuses the chain
// overlay (0,1 → 2 → 3 → 4,5) where broker 2 is a cut vertex: crashing
// it severs every delivery path with nothing to reroute through, so the
// run's fate rests entirely on the restart — exactly the regime where
// durable state matters. The knobs pin the recovery ledger to plan-pure
// decisions on both backends:
//
//   - FixedInterval puts publications on a strict 10 s grid, and the
//     small 4 KB payload delivers in well under a second — so every
//     fault instant below sits ≥ 4 emulated seconds from any
//     publication or delivery, and "which deliveries fall inside the
//     session-down window" is a function of the plan, not of wall-clock
//     jitter.
//   - The generous 2–3 min publisher bounds keep every delivery and
//     every session replay inside its bound, so DroppedDeadline is
//     exactly zero on both backends (asserted: 0 == 0 by proof).
//   - NoRetry keeps the reliable channel out of the picture: a frame
//     sent toward the dead incarnation is lost identically on both
//     backends instead of lingering in a retransmit buffer whose
//     post-reconnect fate would be backend-specific.
func restartConfig(t testing.TB) runtime.Config {
	return runtime.Config{
		Seed:     1,
		Scenario: msg.PSD,
		Strategy: core.MaxEB{},
		Overlay:  crossValOverlay(t),
		Workload: workload.Config{
			RatePerMin:    6,
			Duration:      2 * vtime.Minute,
			FixedInterval: true,
			SizeKB:        4,
			PSDDelayLo:    2 * vtime.Minute,
			PSDDelayHi:    3 * vtime.Minute,
		},
		Recovery: runtime.Recovery{
			Detect:            true,
			Renegotiate:       true,
			HeartbeatInterval: vtime.Second,
			HeartbeatTimeout:  6 * vtime.Second,
		},
		Reliability:    runtime.Reliability{NoRetry: true},
		TimelineBucket: 30 * vtime.Second,
		TimeScale:      0.005,
	}
}

// restartFaults is the crash–restart–resume storyline: broker 2 dies at
// 35 s, comes back from its log at 65 s, and one subscriber's session
// drops across [75 s, 105 s) — so the session outage happens entirely on
// the rejoined incarnation. All instants sit mid-gap on the 10 s
// publication grid.
func restartFaults() []runtime.Fault {
	return []runtime.Fault{
		runtime.BrokerCrash{ID: 2, At: 35 * vtime.Second},
		runtime.BrokerRestart{ID: 2, At: 65 * vtime.Second},
		// Subscription 3's filter matches four of the six publications on
		// the grid inside the window, so the replay is non-trivial.
		runtime.SessionDown{Sub: 3, Start: 75 * vtime.Second, End: 105 * vtime.Second},
	}
}

// TestSimRestartRecoversDelivery is the ablation half of the tentpole
// proof (A12): with broker 2 crashed and never restarted, every delivery
// path is severed and repair has nothing to reroute through — delivery
// collapses to zero for the rest of the run. The same crash followed by
// a warm restart from durable state brings the final timeline bucket
// back to the fault-free baseline.
func TestSimRestartRecoversDelivery(t *testing.T) {
	quiet, err := runtime.Run(restartConfig(t), simnet.Transport{})
	if err != nil {
		t.Fatal(err)
	}

	downCfg := restartConfig(t)
	downCfg.Faults = restartFaults()[:1] // crash only: no restart, no resume
	down, err := runtime.Run(downCfg, simnet.Transport{})
	if err != nil {
		t.Fatal(err)
	}

	recCfg := restartConfig(t)
	recCfg.Faults = restartFaults()
	rec, err := runtime.Run(recCfg, simnet.Transport{})
	if err != nil {
		t.Fatal(err)
	}

	// The crash-only run can detect but not heal: broker 2 is the only
	// route, so repair rejects every path and nothing published after the
	// crash ever delivers.
	if down.RestartReplayedSubs != 0 || down.SessionsResumed != 0 {
		t.Errorf("crash-only run recovered state: %d replayed subs, %d resumed sessions",
			down.RestartReplayedSubs, down.SessionsResumed)
	}
	for _, i := range []int{2, 3} { // buckets [60 s, 90 s) and [90 s, 120 s)
		if r := down.Timeline[i].Rate(); r != 0 {
			t.Errorf("bucket %d: crash-only delivery = %.3f, want 0 (cut vertex down)", i, r)
		}
	}

	// The restart reinstalls broker 2's routing from its log: one entry
	// set per subscription, every subscription routed through the cut
	// vertex — all of them.
	subs := 2 * 10 // two edges × the workload default SubsPerEdge
	if rec.RestartReplayedSubs != subs {
		t.Errorf("replayed subs = %d, want %d (every sub routes through broker 2)",
			rec.RestartReplayedSubs, subs)
	}
	if rec.SessionsResumed != 1 {
		t.Errorf("sessions resumed = %d, want 1", rec.SessionsResumed)
	}
	if rec.ReplayedMsgs == 0 {
		t.Error("resume replayed nothing despite deliveries during the session outage")
	}
	// Generous bounds: nothing dies of lateness, at delivery or at replay.
	if rec.DroppedDeadline != 0 {
		t.Errorf("dropped on deadline = %d, want 0 under 2–3 min bounds", rec.DroppedDeadline)
	}
	// Broker 2 was silent for the whole crash window, so no frame of the
	// dead incarnation is in flight at the restart.
	if rec.StaleEpochFrames != 0 {
		t.Errorf("stale-epoch frames = %d, want 0 (dead incarnation drained)", rec.StaleEpochFrames)
	}
	if rec.ValidDeliveries <= down.ValidDeliveries {
		t.Errorf("restart should recover deliveries: %d with vs %d without",
			rec.ValidDeliveries, down.ValidDeliveries)
	}

	// Everything published after the rejoin settles delivers on the
	// reinstalled routes: the final full bucket returns to baseline.
	if len(rec.Timeline) != len(quiet.Timeline) {
		t.Fatalf("timeline lengths diverged: quiet %d, rec %d", len(quiet.Timeline), len(rec.Timeline))
	}
	q, r := quiet.Timeline[3].Rate(), rec.Timeline[3].Rate()
	if diff := math.Abs(r - q); diff > 0.15 {
		t.Errorf("bucket 3: restarted rate %.3f vs quiet %.3f (|Δ| = %.3f > 0.15)", r, q, diff)
	}
}

// TestRestartResumeCrossValidation pins the recovery ledger across
// backends: the same crash–restart–resume plan on the simulator and on
// the live TCP overlay (real WAL files, real re-dial and epoch
// handshake, real replay rings) must agree EXACTLY on what was recovered
// — subscriptions reinstalled from the log, sessions resumed, messages
// replayed, deadline drops and stale-epoch rejections — and land in the
// same delivery band.
//
// The live run uses the classic data plane: client session replay rings
// are a classic-plane feature (the sharded plane's local handoff writes
// message frames straight to the subscriber, bypassing per-session
// sequencing).
func TestRestartResumeCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("compressed-timescale live cluster run")
	}
	quietCfg := restartConfig(t)
	quiet, err := runtime.Run(quietCfg, simnet.Transport{})
	if err != nil {
		t.Fatal(err)
	}

	simCfg := restartConfig(t)
	simCfg.Overlay = quietCfg.Overlay
	simCfg.Faults = restartFaults()
	sim, err := runtime.Run(simCfg, simnet.Transport{})
	if err != nil {
		t.Fatal(err)
	}

	liveCfg := restartConfig(t)
	liveCfg.Overlay = quietCfg.Overlay
	liveCfg.Faults = restartFaults()
	liveCfg.TimeScale = liveRecoveryTimeScale
	live, err := runtime.Run(liveCfg, livenet.Transport{})
	if err != nil {
		t.Fatal(err)
	}

	// The recovery ledger is a deterministic function of the plan on both
	// backends: exact equality, not bands.
	if sim.RestartReplayedSubs != live.RestartReplayedSubs {
		t.Errorf("replayed subs diverged: sim %d, live %d", sim.RestartReplayedSubs, live.RestartReplayedSubs)
	}
	if sim.RestartReplayedSubs != 2*10 {
		t.Errorf("replayed subs = %d, want 20 (every sub in broker 2's log)", sim.RestartReplayedSubs)
	}
	if sim.SessionsResumed != 1 || live.SessionsResumed != 1 {
		t.Errorf("sessions resumed diverged: sim %d, live %d, want 1 each",
			sim.SessionsResumed, live.SessionsResumed)
	}
	if sim.ReplayedMsgs != live.ReplayedMsgs {
		t.Errorf("replayed messages diverged: sim %d, live %d", sim.ReplayedMsgs, live.ReplayedMsgs)
	}
	if sim.ReplayedMsgs == 0 {
		t.Error("resume replayed nothing despite deliveries during the session outage")
	}
	if sim.DroppedDeadline != 0 || live.DroppedDeadline != 0 {
		t.Errorf("deadline drops diverged from proof: sim %d, live %d, want 0 each",
			sim.DroppedDeadline, live.DroppedDeadline)
	}
	if sim.StaleEpochFrames != 0 || live.StaleEpochFrames != 0 {
		t.Errorf("stale-epoch frames diverged from proof: sim %d, live %d, want 0 each",
			sim.StaleEpochFrames, live.StaleEpochFrames)
	}

	// Detection and repair walk the same plan state: the crash is seen as
	// broker 2's outgoing arcs, the restart as one warm rejoin.
	if sim.Detections != live.Detections {
		t.Errorf("detections diverged: sim %d, live %d", sim.Detections, live.Detections)
	}
	if sim.ReroutedPaths != live.ReroutedPaths || sim.RefloodedSubs != live.RefloodedSubs {
		t.Errorf("repair diverged: sim rerouted %d reflooded %d, live %d and %d",
			sim.ReroutedPaths, sim.RefloodedSubs, live.ReroutedPaths, live.RefloodedSubs)
	}

	// Workload identity and the delivery band.
	if sim.Published != live.Published || sim.TotalTargets != live.TotalTargets {
		t.Errorf("workload diverged: sim %d/%d, live %d/%d (published/targets)",
			sim.Published, sim.TotalTargets, live.Published, live.TotalTargets)
	}
	if d := math.Abs(sim.DeliveryRate() - live.DeliveryRate()); d > 0.15 {
		t.Errorf("delivery rates diverged by %.3f: sim %.3f, live %.3f",
			d, sim.DeliveryRate(), live.DeliveryRate())
	}

	// Post-rejoin delivery returns to the quiet baseline on BOTH backends.
	if len(live.Timeline) != len(quiet.Timeline) {
		t.Fatalf("timeline lengths diverged: quiet %d, live %d", len(quiet.Timeline), len(live.Timeline))
	}
	if quiet.Timeline[3].Targets != live.Timeline[3].Targets {
		t.Errorf("bucket 3 targets diverged: quiet %d, live %d",
			quiet.Timeline[3].Targets, live.Timeline[3].Targets)
	}
	q := quiet.Timeline[3].Rate()
	for name, r := range map[string]float64{
		"sim": sim.Timeline[3].Rate(), "live": live.Timeline[3].Rate(),
	} {
		if diff := math.Abs(r - q); diff > 0.15 {
			t.Errorf("bucket 3: %s restarted rate %.3f vs quiet %.3f (|Δ| = %.3f > 0.15)",
				name, r, q, diff)
		}
	}
}
