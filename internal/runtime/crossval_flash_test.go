package runtime_test

import (
	"fmt"
	"math"
	"testing"

	"bdps/internal/livenet"
	"bdps/internal/runtime"
	"bdps/internal/simnet"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

// TestCrossValFlashCrowdAdmission replays one flash-crowd plan with
// admission control on both backends. The admission sweep runs at plan
// time, so the whole SLO ledger — admitted, relaxed, rejected, and the
// thinned subscribe burst — is a pure function of the plan and must
// agree exactly; the delivery-side story (rate and per-bucket timeline)
// must stay within the usual statistical band.
func TestCrossValFlashCrowdAdmission(t *testing.T) {
	if testing.Short() {
		t.Skip("compressed-timescale live cluster runs")
	}
	mk := func() runtime.Config {
		cfg := crossValConfig(t)
		cfg.Workload.FlashCrowd = workload.FlashCrowd{
			At:       30 * vtime.Second,
			Width:    30 * vtime.Second,
			Boost:    6,
			SubBurst: 4,
		}
		cfg.Admission = runtime.Admission{Enabled: true, MaxQueue: 8}
		cfg.IndexedMatch = true
		cfg.TimelineBucket = 30 * vtime.Second
		return cfg
	}
	sim, err := runtime.Run(mk(), simnet.Transport{})
	if err != nil {
		t.Fatal(err)
	}
	if sim.PubsRejected == 0 {
		t.Fatal("flash crowd should drive rejections on the crossval plan")
	}

	for _, shards := range []int{0, 4} {
		t.Run(fmt.Sprintf("liveShards=%d", shards), func(t *testing.T) {
			lcfg := mk()
			lcfg.LiveShards = shards
			live, err := runtime.Run(lcfg, livenet.Transport{})
			if err != nil {
				t.Fatal(err)
			}
			// The admission ledger is decided before either backend runs:
			// exact agreement, not statistical.
			for _, c := range []struct {
				name      string
				sim, live int
			}{
				{"Published", sim.Published, live.Published},
				{"TotalTargets", sim.TotalTargets, live.TotalTargets},
				{"PubsAdmitted", sim.PubsAdmitted, live.PubsAdmitted},
				{"PubsRelaxed", sim.PubsRelaxed, live.PubsRelaxed},
				{"PubsRejected", sim.PubsRejected, live.PubsRejected},
				{"SubsRejected", sim.SubsRejected, live.SubsRejected},
			} {
				if c.sim != c.live {
					t.Errorf("%s diverged: sim %d, live %d", c.name, c.sim, c.live)
				}
			}
			if live.ValidDeliveries == 0 {
				t.Fatal("live flash-crowd run delivered nothing")
			}
			if ratio := float64(live.Receptions) / float64(sim.Receptions); ratio < 0.7 || ratio > 1.3 {
				t.Errorf("receptions diverged: sim %d, live %d", sim.Receptions, live.Receptions)
			}
			if d := math.Abs(sim.DeliveryRate() - live.DeliveryRate()); d > 0.15 {
				t.Errorf("delivery rates diverged by %.3f: sim %.3f, live %.3f",
					d, sim.DeliveryRate(), live.DeliveryRate())
			}
			if len(sim.Timeline) == 0 || len(live.Timeline) == 0 {
				t.Fatalf("timelines missing: sim %d buckets, live %d", len(sim.Timeline), len(live.Timeline))
			}
			n := len(sim.Timeline)
			if len(live.Timeline) < n {
				n = len(live.Timeline)
			}
			for i := 0; i < n; i++ {
				if d := math.Abs(sim.Timeline[i].Rate() - live.Timeline[i].Rate()); d > 0.15 {
					t.Errorf("timeline bucket %d diverged by %.3f: sim %.3f, live %.3f",
						i, d, sim.Timeline[i].Rate(), live.Timeline[i].Rate())
				}
			}
		})
	}
}
