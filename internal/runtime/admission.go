package runtime

import (
	"math"
	"sort"

	"bdps/internal/msg"
	"bdps/internal/stats"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

// Online admission control (the overload-protection front door).
//
// The paper's admission test decides whether a delay bound is feasible
// on a path: CDF(slack) ≥ SuccessTarget, else relax, else reject
// (renegotiateBound). PR 3 replays that test when failures reroute
// paths; this file replays it at publication time against the ingress
// broker's *load*, so a flash crowd is turned away at the door instead
// of starving everyone already inside.
//
// The controller is a deterministic function of the plan: it sweeps the
// publication schedule and the subscription-event schedule in time
// order, maintains a per-ingress load model (EWMA arrival gap + virtual
// transmission backlog that drains in real time), and gates each
// publication through renegotiateBound with the bound discounted by the
// modeled queueing wait. Rejected publications are filtered from
// Plan.Pubs (before publication-side accounting, so Result counts only
// admitted traffic), PSD relaxations rewrite Message.Allowed on the
// shared message, and rejected flash-crowd subscribers are filtered
// from Plan.SubEvents. Both backends deploy the already-filtered plan,
// which is what makes the admission ledger agree exactly across them.

// ingressLoad is the modeled state of one ingress broker.
type ingressLoad struct {
	links   int          // worst-case hop count to any broker
	rate    stats.Normal // per-KB rate convolved along that worst path
	outMean float64      // slowest outgoing link's per-KB mean (ms/KB)

	last    vtime.Millis // previous arrival instant
	gap     vtime.Millis // EWMA inter-arrival gap
	backlog vtime.Millis // unserviced transmission work
	seen    bool
}

// drain ages the backlog to instant t.
func (ld *ingressLoad) drain(t vtime.Millis) {
	if !ld.seen {
		return
	}
	ld.backlog -= t - ld.last
	if ld.backlog < 0 {
		ld.backlog = 0
	}
}

// observe records an arrival at t, updating the EWMA inter-arrival gap
// with half-life halfLife of *elapsed emulated time*, so the estimate
// decays identically regardless of how many arrivals carry it.
func (ld *ingressLoad) observe(t, halfLife vtime.Millis) {
	if ld.seen {
		elapsed := t - ld.last
		if ld.gap <= 0 {
			ld.gap = elapsed
		} else {
			alpha := 1 - math.Exp(-math.Ln2*float64(elapsed)/float64(halfLife))
			ld.gap += vtime.Millis(alpha * float64(elapsed-ld.gap))
		}
	}
	ld.last, ld.seen = t, true
}

// wait is the modeled queueing delay a publication arriving now would
// see before its transmission starts: the backlog, inflated by the
// utilization ratio when arrivals outpace service (the EWMA gap is
// shorter than the per-message service time) — the regime where a
// snapshot backlog systematically underestimates the wait to come.
func (ld *ingressLoad) wait(service vtime.Millis) vtime.Millis {
	w := ld.backlog
	if ld.gap > 0 && service > ld.gap {
		w = vtime.Millis(float64(w) * float64(service) / float64(ld.gap))
	}
	return w
}

// admission is the controller state for one plan sweep.
type admission struct {
	p      *Plan
	cfg    Admission
	loads  map[msg.NodeID]*ingressLoad
	minSSD vtime.Millis
	// worst is the representative path over all ingresses (the one with
	// the most hops). Beyond gating subscription floods, it doubles as
	// the shared bottleneck: every admitted publication from *any*
	// ingress deposits work into it, scaled by the publication's
	// fan-out, so converging flash-crowd traffic is seen as one
	// saturating queue rather than dilute per-ingress trickles.
	worst ingressLoad
	// active holds admitted churn/flash subscribers currently joined —
	// each one matching a publication widens that publication's fan.
	active map[msg.SubID]*msg.Subscription
	// parallel is the overlay's transmission parallelism (its directed
	// link count): the shared bottleneck serves the network's aggregate
	// work, so each publication's fan of transmissions is spread over
	// this many concurrent servers.
	parallel float64
}

// newAdmission characterizes every ingress: a BFS over the overlay from
// the ingress yields the worst-case hop count and the per-KB rate
// distribution convolved along that deepest path (the representative
// path the admission test is run against), plus the slowest outgoing
// link's mean (the virtual backlog's service rate).
func newAdmission(p *Plan) *admission {
	a := &admission{
		p:      p,
		cfg:    p.Cfg.Admission,
		loads:  make(map[msg.NodeID]*ingressLoad, len(p.Overlay.Ingress)),
		active: make(map[msg.SubID]*msg.Subscription),
	}
	for _, dl := range p.Cfg.Workload.SSDDeadlines {
		if dl > 0 && (a.minSSD == 0 || dl < a.minSSD) {
			a.minSSD = dl
		}
	}
	for _, ingress := range p.Overlay.Ingress {
		ld := a.characterize(ingress)
		a.loads[ingress] = ld
		if ld.links > a.worst.links ||
			(ld.links == a.worst.links && ld.rate.Mean > a.worst.rate.Mean) {
			a.worst = *ld
		}
	}
	a.parallel = float64(len(p.Links))
	if a.parallel < 1 {
		a.parallel = 1
	}
	return a
}

// characterize BFS-walks the overlay from one ingress, convolving link
// beliefs along the tree path, and keeps the deepest node (ties to the
// slower path) as the representative.
func (a *admission) characterize(ingress msg.NodeID) *ingressLoad {
	type visit struct {
		depth int
		rate  stats.Normal
	}
	g := a.p.Overlay.Graph
	seen := map[msg.NodeID]visit{ingress: {}}
	frontier := []msg.NodeID{ingress}
	ld := &ingressLoad{}
	for _, e := range g.Neighbors(ingress) {
		if m := a.p.Beliefs(ingress, e.To).Mean; m > ld.outMean {
			ld.outMean = m
		}
	}
	for len(frontier) > 0 {
		var next []msg.NodeID
		for _, n := range frontier {
			v := seen[n]
			if v.depth > ld.links ||
				(v.depth == ld.links && v.rate.Mean > ld.rate.Mean) {
				ld.links, ld.rate = v.depth, v.rate
			}
			for _, e := range g.Neighbors(n) {
				if _, ok := seen[e.To]; ok {
					continue
				}
				seen[e.To] = visit{
					depth: v.depth + 1,
					rate:  stats.SumNormal(v.rate, a.p.Beliefs(n, e.To)),
				}
				next = append(next, e.To)
			}
		}
		frontier = next
	}
	return ld
}

// pubBound is the delay bound admission must defend for one
// publication: the publisher's bound in PSD, the strictest subscriber
// deadline in SSD, the stricter of the two when both apply. 0 means
// unbounded (trivially admitted).
func (a *admission) pubBound(m *msg.Message) vtime.Millis {
	switch a.p.Cfg.Scenario {
	case msg.PSD:
		return m.Allowed
	case msg.SSD:
		return a.minSSD
	default:
		switch {
		case m.Allowed <= 0:
			return a.minSSD
		case a.minSSD <= 0:
			return m.Allowed
		case m.Allowed < a.minSSD:
			return m.Allowed
		default:
			return a.minSSD
		}
	}
}

// decide gates one publication. It returns false when the publication
// is rejected; an accepted publication may have had Allowed relaxed in
// place (PSD scenarios). The ledger is fed as a side effect.
func (a *admission) decide(m *msg.Message) bool {
	ld := a.loads[m.Ingress]
	if ld == nil {
		// Publications can only enter at plan ingresses; tolerate a
		// foreign one by admitting it unmodeled.
		a.p.Metrics.PubAdmitted(a.pubBound(m))
		return true
	}
	t := m.Published
	ld.drain(t)
	a.worst.drain(t)
	ld.observe(t, a.cfg.RateHalfLife)
	a.worst.observe(t, a.cfg.RateHalfLife)

	bound := a.pubBound(m)
	service := vtime.Millis(m.SizeKB * ld.outMean)
	// The shared bottleneck's service per publication scales with the
	// fan: one transmission per matching next hop at the ingress, plus
	// one per admitted churn/flash subscriber whose filter the message
	// matches — a hot message during a correlated burst is many
	// link-seconds of work, not one.
	fan := 1
	if tbl := a.p.Tables[m.Ingress]; tbl != nil {
		if n := len(tbl.Match(m)); n > fan {
			fan = n
		}
	}
	for _, sub := range a.active {
		if sub.Filter.Match(&m.Attrs) {
			fan++
		}
	}
	// Each matched flow travels ~worst.links hops, so the aggregate
	// work is fan·links transmissions, served by `parallel` links at
	// once.
	hops := a.worst.links
	if hops < 1 {
		hops = 1
	}
	shared := vtime.Millis(m.SizeKB * a.worst.outMean * float64(fan*hops) / a.parallel)

	// Hard saturation: the modeled queue — per-ingress or the shared
	// bottleneck — is as deep as the shed threshold; no bound survives
	// that backlog, so reject outright.
	if service > 0 && float64(ld.backlog)/float64(service) >= float64(a.cfg.MaxQueue) {
		a.p.Metrics.PubRejected(bound)
		return false
	}
	if shared > 0 && float64(a.worst.backlog)/float64(shared) >= float64(a.cfg.MaxQueue) {
		a.p.Metrics.PubRejected(bound)
		return false
	}

	wait := ld.wait(service)
	if w := a.worst.wait(shared); w > wait {
		wait = w
	}
	relaxed, outcome := renegotiateBound(bound-wait, ld.links, ld.rate, m.SizeKB,
		a.p.Cfg.Params.PD, a.cfg.SuccessTarget, a.cfg.MaxRelaxFactor)
	if bound > 0 && bound <= wait {
		// The modeled wait already consumes the whole bound; the slack
		// test above degenerates, so reject explicitly.
		outcome = boundRejected
	}
	switch outcome {
	case boundRelaxed:
		// The relaxed bound is feasible *after* the modeled wait; the
		// publisher-visible bound includes it. Rewriting Allowed on the
		// shared message makes both backends deliver under the same
		// relaxed contract. SSD deadlines belong to subscribers and are
		// not rewritten — the relaxation is ledger-only there.
		if a.p.Cfg.Scenario != msg.SSD && m.Allowed > 0 {
			m.Allowed = relaxed + wait
		}
		ld.backlog += service
		a.worst.backlog += shared
		a.p.Metrics.PubRelaxed(bound)
		return true
	case boundRejected:
		a.p.Metrics.PubRejected(bound)
		return false
	default:
		ld.backlog += service
		a.worst.backlog += shared
		a.p.Metrics.PubAdmitted(bound)
		return true
	}
}

// decideSub gates one subscription arrival (flash-crowd floods ride in
// through the same churn machinery). A subscriber whose applicable
// bound is infeasible on the system's representative worst path — after
// discounting the worst current ingress backlog — is turned away: under
// a correlated subscribe burst the routing flood itself is load, and
// admitting a subscriber whose bound cannot be met only manufactures
// future SLO misses.
func (a *admission) decideSub(sub *msg.Subscription, t vtime.Millis) bool {
	bound := a.p.applicableBound(sub)
	if bound <= 0 {
		return true
	}
	var wait vtime.Millis
	for _, ld := range a.loads {
		ld.drain(t)
		if ld.backlog > wait {
			wait = ld.backlog
		}
	}
	a.worst.drain(t)
	if a.worst.backlog > wait {
		wait = a.worst.backlog
	}
	if bound <= wait {
		return false
	}
	_, outcome := renegotiateBound(bound-wait, a.worst.links, a.worst.rate,
		a.p.Cfg.Workload.SizeKB, a.p.Cfg.Params.PD,
		a.cfg.SuccessTarget, a.cfg.MaxRelaxFactor)
	return outcome != boundRejected
}

// admitWorkload runs the admission sweep over the plan: publications
// and subscription events interleaved in time order. Mutates Plan.Pubs,
// Plan.SubEvents and the shared messages in place; feeds the SLO ledger
// on Plan.Metrics. No-op unless Cfg.Admission.Enabled.
func (p *Plan) admitWorkload() {
	if !p.Cfg.Admission.Enabled {
		return
	}
	a := newAdmission(p)

	// Decisions are made in publication-time order, but Plan.Pubs keeps
	// its per-publisher generation order — so decide over a sorted view
	// and filter the original in place.
	order := make([]*msg.Message, len(p.Pubs))
	copy(order, p.Pubs)
	sort.SliceStable(order, func(i, j int) bool { return order[i].Published < order[j].Published })

	admitted := make(map[*msg.Message]bool, len(order))
	rejectedSubs := make(map[msg.SubID]bool)
	subsRejected := 0
	ei := 0
	decideEvent := func(ev workload.SubEvent) {
		if ev.Unsub {
			delete(a.active, ev.Sub.ID)
			return
		}
		if a.decideSub(ev.Sub, ev.At) {
			a.active[ev.Sub.ID] = ev.Sub
		} else {
			rejectedSubs[ev.Sub.ID] = true
			subsRejected++
		}
	}
	for _, m := range order {
		for ei < len(p.SubEvents) && p.SubEvents[ei].At <= m.Published {
			decideEvent(p.SubEvents[ei])
			ei++
		}
		admitted[m] = a.decide(m)
	}
	for ; ei < len(p.SubEvents); ei++ {
		decideEvent(p.SubEvents[ei])
	}

	kept := p.Pubs[:0]
	for _, m := range p.Pubs {
		if admitted[m] {
			kept = append(kept, m)
		}
	}
	p.Pubs = kept

	if len(rejectedSubs) > 0 {
		events := p.SubEvents[:0]
		for _, ev := range p.SubEvents {
			if !rejectedSubs[ev.Sub.ID] {
				events = append(events, ev)
			}
		}
		p.SubEvents = events
	}
	if subsRejected > 0 {
		p.Metrics.SubRejected(subsRejected)
	}
}
