package runtime

import (
	"sync"

	"bdps/internal/vtime"
)

// Sink receives the delivery-side metric events a deployment produces
// while running. *metrics.Collector implements it; publication-side
// accounting (Published, PublishedTo) stays with the Run driver, which
// performs it once before injection on every backend.
type Sink interface {
	Reception()
	DeliveredTo(subID int32, price float64, latency vtime.Millis, valid bool)
	// DeliveredAt is DeliveredTo with the message's publication instant,
	// feeding the delivery-rate timeline; published < 0 skips the timeline.
	DeliveredAt(subID int32, price float64, published, latency vtime.Millis, valid bool)
	DroppedExpired(n int)
	DroppedHopeless(n int)
	DroppedOnArrival(n int)
	DroppedCrashed(n int)

	// Recovery accounting, fed by the failure detector and topology
	// repairer on both backends.
	Detection(latency vtime.Millis)
	Rerouted(n int)
	Renegotiated(kept, relaxed, rejected int)
	Reflooded(n int)

	// Reliable-channel accounting, fed by the per-link loss adversary and
	// the retransmission/dedup machinery on both backends.
	FrameLost(n int)
	Retransmit(n int)
	DupSuppressed(n int)
	ReorderHealed(n int)
	DroppedDeadline(n int)

	// Covering-aggregation accounting: subscribe floods a resident
	// covering filter made unnecessary (the simulator's aggregation
	// driver and the live owner nodes both feed it).
	FloodSuppressed(n int)

	// Overload-protection accounting: queue entries evicted by
	// pressure-triggered worst-first shedding (see core.Queue.ShedWorst).
	DroppedShed(n int)

	// Crash-restart accounting, fed by durable recovery on both
	// backends: routing entries a restarted broker reinstalled from its
	// log, subscriber sessions resumed, messages replayed to resumed
	// sessions, and data frames rejected for carrying a dead
	// incarnation's epoch.
	SubReplayed(n int)
	SessionResumed(n int)
	MsgReplayed(n int)
	StaleEpoch(n int)
}

// LockedSink serializes a Sink for concurrent backends. The simulator
// feeds its collector directly (single-threaded by construction); the
// live overlay wraps the same collector in a LockedSink shared by every
// node goroutine.
type LockedSink struct {
	mu sync.Mutex
	s  Sink
}

// Locked wraps s in a mutex.
func Locked(s Sink) *LockedSink { return &LockedSink{s: s} }

func (l *LockedSink) Reception() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.s.Reception()
}

func (l *LockedSink) DeliveredTo(subID int32, price float64, latency vtime.Millis, valid bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.s.DeliveredTo(subID, price, latency, valid)
}

func (l *LockedSink) DroppedExpired(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.s.DroppedExpired(n)
}

func (l *LockedSink) DroppedHopeless(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.s.DroppedHopeless(n)
}

func (l *LockedSink) DroppedOnArrival(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.s.DroppedOnArrival(n)
}

func (l *LockedSink) DroppedCrashed(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.s.DroppedCrashed(n)
}

func (l *LockedSink) DeliveredAt(subID int32, price float64, published, latency vtime.Millis, valid bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.s.DeliveredAt(subID, price, published, latency, valid)
}

func (l *LockedSink) Detection(latency vtime.Millis) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.s.Detection(latency)
}

func (l *LockedSink) Rerouted(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.s.Rerouted(n)
}

func (l *LockedSink) Renegotiated(kept, relaxed, rejected int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.s.Renegotiated(kept, relaxed, rejected)
}

func (l *LockedSink) Reflooded(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.s.Reflooded(n)
}

func (l *LockedSink) FrameLost(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.s.FrameLost(n)
}

func (l *LockedSink) Retransmit(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.s.Retransmit(n)
}

func (l *LockedSink) DupSuppressed(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.s.DupSuppressed(n)
}

func (l *LockedSink) ReorderHealed(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.s.ReorderHealed(n)
}

func (l *LockedSink) DroppedDeadline(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.s.DroppedDeadline(n)
}

func (l *LockedSink) FloodSuppressed(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.s.FloodSuppressed(n)
}

func (l *LockedSink) DroppedShed(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.s.DroppedShed(n)
}

func (l *LockedSink) SubReplayed(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.s.SubReplayed(n)
}

func (l *LockedSink) SessionResumed(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.s.SessionResumed(n)
}

func (l *LockedSink) MsgReplayed(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.s.MsgReplayed(n)
}

func (l *LockedSink) StaleEpoch(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.s.StaleEpoch(n)
}
