package runtime

import "bdps/internal/stats"

// Sampler draws one per-transfer per-KB rate. Both backends pace (or
// schedule) each transfer with a rate drawn from the same sampler kind,
// so the link model ablations apply to the live overlay too.
type Sampler interface {
	Sample(s *stats.Stream) float64
}

type normalSampler struct{ d stats.TruncatedNormal }

func (n normalSampler) Sample(s *stats.Stream) float64 { return n.d.Sample(s) }

type fixedSampler struct{ mean float64 }

func (f fixedSampler) Sample(*stats.Stream) float64 { return f.mean }

type gammaSampler struct {
	d   stats.ShiftedGamma
	min float64
}

func (g gammaSampler) Sample(s *stats.Stream) float64 {
	x := g.d.Sample(s)
	if x < g.min {
		return g.min
	}
	return x
}

// NewSampler builds the configured sampler for a link with true
// distribution d.
func NewSampler(model LinkModel, d stats.Normal, minRate float64) Sampler {
	switch model {
	case LinkFixed:
		return fixedSampler{mean: d.Mean}
	case LinkGamma:
		// Shape 4 gamma matched to (mean, sigma²): θ = σ/2,
		// shift = μ − 2σ. Same two moments, right-skewed tail.
		return gammaSampler{
			d:   stats.ShiftedGamma{K: 4, Theta: d.Sigma / 2, Shift: d.Mean - 2*d.Sigma},
			min: minRate,
		}
	default:
		return normalSampler{d: stats.TruncatedNormal{Normal: d, Min: minRate}}
	}
}
