// Package runtime is the backend-agnostic deployment layer: one Config,
// one deployment Plan and one Run driver shared by every backend that can
// carry the bounded-delay scheduling system — today the discrete-event
// simulator (internal/simnet) and the live TCP overlay (internal/livenet).
//
// The split of responsibilities:
//
//   - runtime owns everything the backends used to duplicate: deployment
//     wiring (topology → link-rate beliefs → routing tables → brokers →
//     per-link queues), workload generation and publication accounting,
//     scenario features (multipath + dedup, injected faults), clocking
//     (one Clock interface over virtual and wall time) and per-run
//     metrics assembly into one runtime.Result.
//   - a Transport realizes time and message movement: the simulator turns
//     link transfers into discrete events on a virtual clock; the live
//     overlay paces real TCP frames against a wall clock.
//
// New scenarios are written once against this package and run on every
// backend; experiments select a backend with Options.Backend and
// cmd/bdps-sim with -backend={sim,live}.
package runtime

import (
	"fmt"

	"bdps/internal/core"
	"bdps/internal/msg"
	"bdps/internal/topology"
	"bdps/internal/trace"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

// LinkModel selects how per-transfer link rates are drawn.
type LinkModel uint8

// Link models.
const (
	// LinkNormal samples each transfer's per-KB rate from the link's
	// N(μ,σ²), truncated at MinRate — the paper's model (§3.2).
	LinkNormal LinkModel = iota
	// LinkFixed uses the mean deterministically (the fixed-bandwidth
	// assumption of QRON-style related work, for the ablation).
	LinkFixed
	// LinkGamma samples from a shifted gamma matched to the link's mean
	// and variance (the IP-delay shape of the paper's refs [17,18]).
	LinkGamma
)

// String implements fmt.Stringer.
func (m LinkModel) String() string {
	switch m {
	case LinkNormal:
		return "normal"
	case LinkFixed:
		return "fixed"
	case LinkGamma:
		return "gamma"
	}
	return fmt.Sprintf("LinkModel(%d)", uint8(m))
}

// Config describes one run, on any backend.
type Config struct {
	Seed     uint64
	Scenario msg.Scenario
	Strategy core.Strategy
	Params   core.Params

	Workload workload.Config

	// Overlay, when non-nil, is used as-is; otherwise TopologyCfg builds
	// the paper's layered mesh with the run's seed.
	Overlay     *topology.Overlay
	TopologyCfg topology.LayeredConfig

	// Multipath > 1 enables K-path routing with per-broker deduplication.
	Multipath int

	// MeasureSamples > 0 makes brokers estimate link-rate parameters from
	// that many measured transfers instead of knowing them exactly.
	MeasureSamples int

	LinkModel LinkModel
	// MinRate truncates sampled rates (ms/KB); default 1.
	MinRate float64

	// Faults injects failures into the run (link outages, broker
	// crashes). Empty means a fault-free run.
	Faults []Fault

	// Tracer receives per-message lifecycle events; nil disables tracing.
	// Only the simulator backend traces today.
	Tracer trace.Tracer

	// PerSubscriber enables per-subscriber delivery accounting (Jain
	// fairness in the Result). Costs one map update per delivery.
	PerSubscriber bool

	// IndexedMatch builds the counting-index fast path on every broker's
	// subscription table. Semantically identical to the linear scan.
	IndexedMatch bool

	// Aggregate enables covering-based subscription aggregation: a
	// subscription is forwarded (and holds routing entries upstream) only
	// if no already-forwarded filter with identical delivery terms covers
	// it; covered subscriptions ride the coverer's entries, refcounted.
	// Delivery semantics are identical to the flat build.
	Aggregate bool

	// Subscriptions overrides the workload-generated population with an
	// explicit one (every subscription must attach to an edge broker).
	Subscriptions []*msg.Subscription

	// TimeScale compresses emulated delays on wall-clock backends: real
	// sleep = emulated ms × TimeScale. 1.0 is real time; tests use
	// ~0.002. The simulator ignores it (virtual time costs nothing).
	TimeScale float64

	// LiveShards ≥ 1 runs every live broker on the sharded
	// high-throughput data plane with that many ingress workers; 0 keeps
	// the classic single-threaded plane. The simulator ignores it
	// (scheduling semantics are identical either way).
	LiveShards int

	// Recovery configures the self-healing control plane: failure
	// detection, topology repair, and delay-bound renegotiation.
	Recovery Recovery

	// Reliability configures the per-link reliable channel that heals the
	// LinkLoss adversary: retransmission, deadline-aware retry admission,
	// dedup/reorder windows and the live ack cadence.
	Reliability Reliability

	// TimelineBucket > 0 records a delivery-rate timeline bucketed by
	// publication instant (emulated ms per bucket) into Result.Timeline —
	// the instrument behind the recovery ablation figures.
	TimelineBucket vtime.Millis

	// Admission configures overload protection: online publication
	// admission control and pressure-triggered queue shedding.
	Admission Admission
}

// Admission configures the overload-protection layer. Two independently
// armable defenses:
//
//   - Enabled gates every publication (and flash-crowd subscription
//     flood) through the paper's admission test, replayed online against
//     the ingress broker's modeled load: the publication is admitted as
//     published, admitted under a relaxed bound, or rejected before
//     injection. Decisions are deterministic functions of the plan, so
//     both backends agree on the admission ledger exactly.
//   - Shed arms graceful degradation: when an output queue exceeds
//     MaxQueue entries, the broker sheds the lowest-scored entries
//     (worst success probability first — core.Queue.ShedWorst) instead
//     of letting the backlog starve everything.
type Admission struct {
	// Enabled turns on online publication admission control.
	Enabled bool

	// Shed arms pressure-triggered worst-first queue shedding.
	Shed bool

	// MaxQueue is the per-output-queue occupancy threshold: the shed
	// trigger, and the backlog the admission model treats as saturation
	// (default 256).
	MaxQueue int

	// SuccessTarget is the delivery probability an admitted bound must
	// retain under the modeled load (default 0.9).
	SuccessTarget float64

	// MaxRelaxFactor caps bound relaxation: a publication whose cheapest
	// feasible bound exceeds MaxRelaxFactor × the requested bound is
	// rejected instead of relaxed (default 2).
	MaxRelaxFactor float64

	// RateHalfLife is the half-life of the per-ingress arrival-rate EWMA
	// in emulated ms (default 10 s).
	RateHalfLife vtime.Millis
}

// Defaulted returns the config with zero fields replaced by their
// defaults — for callers outside the plan pipeline (standalone live
// clusters).
func (a Admission) Defaulted() Admission {
	(&a).setDefaults()
	return a
}

func (a *Admission) setDefaults() {
	if a.MaxQueue <= 0 {
		a.MaxQueue = 256
	}
	if a.SuccessTarget <= 0 {
		a.SuccessTarget = 0.9
	}
	if a.MaxRelaxFactor <= 0 {
		a.MaxRelaxFactor = 2
	}
	if a.RateHalfLife <= 0 {
		a.RateHalfLife = 10 * vtime.Second
	}
}

// Recovery configures the self-healing control plane. Detection and
// repair are one switch: a confirmed failure always triggers topology
// repair (pruning the dead arcs, rerouting the moved subscriptions
// through the surviving graph). Renegotiate additionally replays the
// admission math on every rerouted path, relaxing or rejecting bounds
// the new route cannot honor.
type Recovery struct {
	// Detect enables failure detection + topology repair. On the live
	// overlay each broker probes its neighbors with heartbeat frames; the
	// simulator schedules the equivalent detection events on virtual time.
	Detect bool

	// HeartbeatInterval is the per-link probe period in emulated ms
	// (default 500). The live overlay scales it by TimeScale.
	HeartbeatInterval vtime.Millis

	// HeartbeatTimeout is the silence after which a link is declared dead
	// (default 4× the interval).
	HeartbeatTimeout vtime.Millis

	// Renegotiate enables online delay-bound renegotiation on rerouted
	// paths (requires Detect).
	Renegotiate bool

	// SuccessTarget is the delivery probability a kept bound must retain
	// on the new path (default 0.5 — the mean-rate feasibility of the
	// paper's admission rule).
	SuccessTarget float64

	// MaxRelaxFactor caps how far a bound may be relaxed: a renegotiated
	// bound above MaxRelaxFactor × the original is rejected instead
	// (default 3).
	MaxRelaxFactor float64
}

func (r *Recovery) setDefaults() {
	if r.HeartbeatInterval <= 0 {
		r.HeartbeatInterval = 500
	}
	if r.HeartbeatTimeout <= 0 {
		r.HeartbeatTimeout = 4 * r.HeartbeatInterval
	}
	if r.SuccessTarget <= 0 {
		r.SuccessTarget = 0.5
	}
	if r.MaxRelaxFactor <= 0 {
		r.MaxRelaxFactor = 3
	}
}

// Reliability configures the reliable per-link channel. The zero value
// (after defaults) retries lost frames with deadline-aware admission.
type Reliability struct {
	// NoRetry disables retransmission: lost frames stay lost (the
	// loss-no-retry ablation arm).
	NoRetry bool

	// BlindRetry disables the deadline-aware admission gate: every loss is
	// retransmitted until MaxAttempts, even when the message can no longer
	// meet its bound.
	BlindRetry bool

	// MaxAttempts caps total transmissions per frame, retries included
	// (default 16 — a runaway backstop, not a tuning knob).
	MaxAttempts int

	// SuccessTarget is the delivery probability the remaining slack must
	// retain for a retransmission to be admitted (deadline-aware mode);
	// default 0.99, deliberately stricter than Recovery.SuccessTarget
	// because a retry burns slack the original admission already budgeted.
	SuccessTarget float64

	// AckEvery is the live receiver's cumulative-ack cadence in data
	// frames (default 16). The simulator does not model acks: they only
	// trim the retransmit buffer and carry no accounting.
	AckEvery int

	// Window bounds the per-link retransmit buffer (sender) and the
	// reorder-heal buffer (receiver), in frames (default 64).
	Window int
}

// Defaulted returns the config with zero fields replaced by their
// defaults — for callers outside the plan pipeline (standalone live
// clusters), whose configs never pass through Config.setDefaults.
func (r Reliability) Defaulted() Reliability {
	(&r).setDefaults()
	return r
}

func (r *Reliability) setDefaults() {
	if r.MaxAttempts <= 0 {
		r.MaxAttempts = 16
	}
	if r.SuccessTarget <= 0 {
		r.SuccessTarget = 0.99
	}
	if r.AckEvery <= 0 {
		r.AckEvery = 16
	}
	if r.Window <= 0 {
		r.Window = 64
	}
}

// Fault is an injected failure. The concrete types are LinkDown,
// BrokerCrash, LinkLoss, BrokerRestart and SessionDown.
type Fault interface {
	isFault()
}

// LinkDown takes the directed link From→To out of service during
// [Start, End): no new transmissions start (in-flight transfers finish).
// Take both directions down with two faults.
type LinkDown struct {
	From, To   msg.NodeID
	Start, End vtime.Millis
}

func (LinkDown) isFault() {}

// BrokerCrash permanently kills a broker at time At: queued and arriving
// messages are lost, and its links stop sending.
type BrokerCrash struct {
	ID msg.NodeID
	At vtime.Millis
}

func (BrokerCrash) isFault() {}

// LinkLoss subjects the directed link From→To to a lossy-network
// adversary during [Start, End): each transmission is independently
// dropped with probability Rate, each delivered frame duplicated with
// probability Dup and swapped with its successor with probability
// Reorder. From = To = msg.None (-1) applies the adversary to every arc.
// End ≤ 0 keeps it active for the whole run. Decisions are drawn from a
// deterministic per-(link, seq, attempt) hash of the run seed, so the
// simulator and the live overlay face the identical adversary.
type LinkLoss struct {
	From, To   msg.NodeID
	Rate       float64 // per-transmission drop probability, [0,1)
	Dup        float64 // per-delivery duplication probability, [0,1)
	Reorder    float64 // per-delivery swap-with-successor probability, [0,1)
	Start, End vtime.Millis
}

func (LinkLoss) isFault() {}

// BrokerRestart brings a crashed broker back at time At as a fresh
// incarnation recovering from its durable state: the routing entries it
// held at the crash are reinstalled from the log, its incarnation epoch
// is bumped (in-flight frames of the dead incarnation are rejected as
// stale), and the repair engine reroutes the recovered subscriptions
// back through it — renegotiating delay bounds over the rejoined paths.
// Must follow a BrokerCrash of the same broker at an earlier time.
type BrokerRestart struct {
	ID msg.NodeID
	At vtime.Millis
}

func (BrokerRestart) isFault() {}

// SessionDown detaches one subscriber's client session during
// [Start, End): deliveries matched to the subscription while it is down
// are retained in the edge broker's bounded replay ring instead of
// handed off. At End the session resumes with its resume token and the
// broker replays the retained deliveries whose bounds still hold;
// expired ones are dropped as DroppedDeadline — a resumed subscriber
// never receives a late message, and never receives one twice.
type SessionDown struct {
	Sub        msg.SubID
	Start, End vtime.Millis
}

func (SessionDown) isFault() {}

func (c *Config) setDefaults() error {
	if c.Strategy == nil {
		c.Strategy = core.MaxEB{}
	}
	if c.Params == (core.Params{}) {
		c.Params = core.DefaultParams()
	}
	if c.MinRate == 0 {
		c.MinRate = 1
	}
	// Recovery defaults are filled unconditionally so a Config's cache
	// identity is stable whether or not recovery is enabled.
	c.Recovery.setDefaults()
	c.Reliability.setDefaults()
	c.Admission.setDefaults()
	c.Workload.Scenario = c.Scenario
	if c.Workload.Seed == 0 {
		c.Workload.Seed = c.Seed
	}
	return c.Workload.Validate()
}
