package runtime

import (
	"testing"

	"bdps/internal/core"
	"bdps/internal/msg"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

// flashCfg is the admission test bed: the congested PSD point with the
// paper's relaxed bounds and a mid-run flash crowd (6× boost plus a
// correlated subscribe burst) — the A11 ablation cell, in miniature.
func flashCfg() Config {
	cfg := Config{
		Seed:     1,
		Scenario: msg.PSD,
		Strategy: core.MaxEB{},
		Workload: workload.Config{
			RatePerMin: 18,
			Duration:   20 * vtime.Minute,
			PSDDelayLo: 30 * vtime.Second,
			PSDDelayHi: 60 * vtime.Second,
			FlashCrowd: workload.FlashCrowd{
				At:       5 * vtime.Minute,
				Width:    5 * vtime.Minute,
				Boost:    6,
				SubBurst: 8,
			},
		},
		IndexedMatch: true,
	}
	return cfg
}

// TestIngressLoadModel pins the per-ingress load model's semantics:
// the virtual backlog drains at wall rate, the EWMA gap converges
// toward a steady arrival spacing, and the modeled wait inflates the
// backlog when arrivals outpace service.
func TestIngressLoadModel(t *testing.T) {
	ld := &ingressLoad{}
	half := 10 * vtime.Second

	// First arrival only seeds the clock.
	ld.observe(0, half)
	if ld.gap != 0 {
		t.Fatalf("gap after first arrival = %v, want 0", ld.gap)
	}
	// Steady 2 s arrivals: the EWMA gap must converge to 2 s.
	for at := 2 * vtime.Second; at <= 2*vtime.Minute; at += 2 * vtime.Second {
		ld.drain(at)
		ld.observe(at, half)
	}
	if ld.gap < 1900 || ld.gap > 2100 {
		t.Errorf("EWMA gap = %v ms after steady 2 s arrivals, want ≈2000", ld.gap)
	}

	// Backlog drains one-for-one with elapsed time.
	ld.backlog = 5 * vtime.Second
	ld.drain(ld.last + 3*vtime.Second)
	ld.last += 3 * vtime.Second
	if ld.backlog != 2*vtime.Second {
		t.Errorf("backlog after 3 s drain = %v, want 2000", ld.backlog)
	}
	ld.drain(ld.last + vtime.Minute)
	if ld.backlog != 0 {
		t.Errorf("backlog must floor at 0, got %v", ld.backlog)
	}

	// Under saturation (service > gap) the wait inflates by the
	// utilization ratio; below saturation it is the raw backlog.
	ld.backlog = 4 * vtime.Second
	if w := ld.wait(vtime.Second); w != 4*vtime.Second {
		t.Errorf("uncongested wait = %v, want raw backlog 4000", w)
	}
	if w := ld.wait(4 * vtime.Second); w != 8*vtime.Second {
		t.Errorf("saturated wait = %v, want 2x-inflated 8000", w)
	}
}

// TestAdmitWorkloadFiltersPlan pins the plan-side sweep end to end: the
// filtered plan and the SLO ledger must tell the same story — kept
// publications equal admitted+relaxed, the per-bound ledger sums to the
// totals, offered load is conserved against an unprotected plan, the
// subscribe burst is thinned, and the whole sweep is deterministic.
func TestAdmitWorkloadFiltersPlan(t *testing.T) {
	base, err := NewPlan(flashCfg())
	if err != nil {
		t.Fatal(err)
	}

	cfg := flashCfg()
	cfg.Admission = Admission{Enabled: true, Shed: true, MaxQueue: 8}
	p, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := p.Metrics.Result()

	if r.PubsRejected == 0 {
		t.Fatal("flash crowd at rate 18 must drive rejections")
	}
	if got := r.PubsAdmitted + r.PubsRelaxed; got != len(p.Pubs) {
		t.Errorf("admitted %d + relaxed %d = %d, want kept publications %d",
			r.PubsAdmitted, r.PubsRelaxed, got, len(p.Pubs))
	}
	// Offered load is conserved: every publication the unprotected plan
	// would inject is either kept or counted rejected.
	if offered := len(p.Pubs) + r.PubsRejected; offered != len(base.Pubs) {
		t.Errorf("kept %d + rejected %d = %d, want offered %d",
			len(p.Pubs), r.PubsRejected, offered, len(base.Pubs))
	}
	// The per-bound ledger partitions the same decisions.
	var adm, rel, rej int
	for _, b := range r.BoundLedger {
		adm += b.Admitted
		rel += b.Relaxed
		rej += b.Rejected
	}
	if adm != r.PubsAdmitted || rel != r.PubsRelaxed || rej != r.PubsRejected {
		t.Errorf("ledger sums (%d, %d, %d) disagree with totals (%d, %d, %d)",
			adm, rel, rej, r.PubsAdmitted, r.PubsRelaxed, r.PubsRejected)
	}
	// The correlated subscribe burst is load too: some of it is turned
	// away, and every rejected subscriber vanishes from the event plan.
	if r.SubsRejected == 0 {
		t.Error("subscribe burst should see rejections under the flash crowd")
	}
	joins := 0
	for _, ev := range p.SubEvents {
		if !ev.Unsub {
			joins++
		}
	}
	baseJoins := 0
	for _, ev := range base.SubEvents {
		if !ev.Unsub {
			baseJoins++
		}
	}
	if joins+r.SubsRejected != baseJoins {
		t.Errorf("kept joins %d + rejected %d != offered joins %d",
			joins, r.SubsRejected, baseJoins)
	}

	// Determinism: the ledger is a pure function of the plan.
	again, err := NewPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2 := again.Metrics.Result()
	if r.PubsAdmitted != r2.PubsAdmitted || r.PubsRelaxed != r2.PubsRelaxed ||
		r.PubsRejected != r2.PubsRejected || r.SubsRejected != r2.SubsRejected {
		t.Errorf("admission sweep not deterministic: %+v vs %+v",
			[4]int{r.PubsAdmitted, r.PubsRelaxed, r.PubsRejected, r.SubsRejected},
			[4]int{r2.PubsAdmitted, r2.PubsRelaxed, r2.PubsRejected, r2.SubsRejected})
	}

	// Disabled admission leaves the plan untouched and the ledger empty.
	br := base.Metrics.Result()
	if br.PubsAdmitted != 0 || br.PubsRelaxed != 0 || br.PubsRejected != 0 || br.SubsRejected != 0 {
		t.Errorf("disabled admission fed the ledger: %+v", br)
	}
}

// BenchmarkAdmission measures the plan-side admission sweep itself —
// the per-publication cost of the online load model plus the paper's
// CDF feasibility test, over the flash-crowd schedule.
func BenchmarkAdmission(b *testing.B) {
	cfg := flashCfg()
	p, err := NewPlan(cfg)
	if err != nil {
		b.Fatal(err)
	}
	// Keep pristine copies: the sweep compacts Plan.Pubs/SubEvents in
	// place and rewrites relaxed bounds on the shared messages.
	pubs := append([]*msg.Message(nil), p.Pubs...)
	allowed := make([]vtime.Millis, len(pubs))
	for i, m := range pubs {
		allowed[i] = m.Allowed
	}
	events := append([]workload.SubEvent(nil), p.SubEvents...)
	p.Cfg.Admission = Admission{Enabled: true, Shed: true, MaxQueue: 8}
	p.Cfg.Admission.setDefaults()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p.Pubs = append(p.Pubs[:0], pubs...)
		for j, m := range pubs {
			m.Allowed = allowed[j]
		}
		p.SubEvents = append(p.SubEvents[:0], events...)
		b.StartTimer()
		p.admitWorkload()
	}
	b.ReportMetric(float64(len(pubs)), "pubs/op")
}
