package runtime_test

import (
	"testing"

	"bdps/internal/core"
	"bdps/internal/livenet"
	"bdps/internal/msg"
	"bdps/internal/runtime"
	"bdps/internal/simnet"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

func churnCfg(rate float64) runtime.Config {
	return runtime.Config{
		Seed:     1,
		Scenario: msg.PSD,
		Strategy: core.MaxEB{},
		Workload: workload.Config{
			RatePerMin: 10,
			Duration:   10 * vtime.Minute,
			Churn:      workload.Churn{RatePerMin: rate, HalfLife: vtime.Minute},
		},
		IndexedMatch: true,
	}
}

// TestSimChurnRun drives a churning population through the simulator:
// the run must complete, deliver sanely against the publish-time active
// population, and be bit-reproducible (the property the experiment run
// cache depends on).
func TestSimChurnRun(t *testing.T) {
	static, err := simnet.Run(churnCfg(0))
	if err != nil {
		t.Fatal(err)
	}
	churned, err := simnet.Run(churnCfg(60))
	if err != nil {
		t.Fatal(err)
	}
	if churned.ValidDeliveries == 0 {
		t.Fatal("churn run delivered nothing")
	}
	if churned.DeliveryRate() < 0 || churned.DeliveryRate() > 1 {
		t.Fatalf("delivery rate %v outside [0,1]", churned.DeliveryRate())
	}
	// 60 arrivals/min with a 1 min half-life adds ~87 concurrent churn
	// subscribers on top of the 160 static ones: targets must grow.
	if churned.TotalTargets <= static.TotalTargets {
		t.Fatalf("churn did not grow the target population: %d vs %d",
			churned.TotalTargets, static.TotalTargets)
	}
	again, err := simnet.Run(churnCfg(60))
	if err != nil {
		t.Fatal(err)
	}
	if churned.ValidDeliveries != again.ValidDeliveries ||
		churned.Receptions != again.Receptions ||
		churned.TotalTargets != again.TotalTargets {
		t.Fatalf("churn run is not deterministic: %+v vs %+v", churned, again)
	}
}

// TestLiveChurnRun plays a churning plan on the live TCP backend: churn
// timers flood subscribe/unsubscribe through the overlay while the
// publication schedule runs. The run must quiesce and deliver.
func TestLiveChurnRun(t *testing.T) {
	if testing.Short() {
		t.Skip("compressed-timescale live cluster run")
	}
	cfg := crossValConfig(t)
	cfg.Workload.Churn = workload.Churn{RatePerMin: 60, HalfLife: 30 * vtime.Second}
	cfg.IndexedMatch = true
	res, err := runtime.Run(cfg, livenet.Transport{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ValidDeliveries == 0 {
		t.Fatal("live churn run delivered nothing")
	}
	if res.DeliveryRate() < 0.2 {
		t.Fatalf("live churn delivery rate %.2f suspiciously low", res.DeliveryRate())
	}
}

// TestPlanChurnSchedule checks the plan surfaces the churn schedule and
// keeps churn ids clear of the static population.
func TestPlanChurnSchedule(t *testing.T) {
	p, err := runtime.NewPlan(churnCfg(60))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.SubEvents) == 0 {
		t.Fatal("plan has no churn events")
	}
	maxStatic := msg.SubID(0)
	for _, s := range p.Subs {
		if s.ID > maxStatic {
			maxStatic = s.ID
		}
	}
	for _, ev := range p.SubEvents {
		if ev.Sub.ID <= maxStatic {
			t.Fatalf("churn id %d collides with static population (max %d)", ev.Sub.ID, maxStatic)
		}
	}
	static, err := runtime.NewPlan(churnCfg(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(static.SubEvents) != 0 {
		t.Fatal("static plan has churn events")
	}
}
