package runtime_test

import (
	"math"
	"testing"

	"bdps/internal/core"
	"bdps/internal/livenet"
	"bdps/internal/msg"
	"bdps/internal/runtime"
	"bdps/internal/simnet"
	"bdps/internal/stats"
	"bdps/internal/topology"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

// recoveryOverlay is the kill-half topology: two ingress brokers, four
// middle brokers, two edge brokers, fully bipartite between layers. The
// two links of middle m share one mean, and middle 2 is strictly
// fastest, so every initial delivery path runs through it — killing
// middles 2 and 4 (half the relay layer) both severs every route in use
// and leaves middle 3 as the unambiguous repair target.
//
//	0 ─┬─ 2(40) ─┬─ 6
//	   ├─ 3(60) ─┤
//	   ├─ 4(80) ─┤
//	1 ─┴─ 5(100)─┴─ 7
func recoveryOverlay(t testing.TB) *topology.Overlay {
	t.Helper()
	g := topology.NewGraph(8)
	for _, mid := range []struct {
		id   msg.NodeID
		mean float64
	}{{2, 40}, {3, 60}, {4, 80}, {5, 100}} {
		for _, peer := range []msg.NodeID{0, 1, 6, 7} {
			if err := g.AddLink(peer, mid.id, stats.Normal{Mean: mid.mean, Sigma: 5}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return &topology.Overlay{
		Graph:   g,
		Ingress: []msg.NodeID{0, 1},
		Edges:   []msg.NodeID{6, 7},
	}
}

// recoveryConfig is the shared kill-half run: a 2-minute window with a
// 30 s delivery timeline, and the self-healing control plane fully on.
// The 6 s heartbeat timeout is generous so a compressed live run never
// false-positives under scheduler jitter; live runs additionally raise
// TimeScale to liveRecoveryTimeScale so the timeout spans 120 ms of
// wall silence even when other test packages saturate the machine.
func recoveryConfig(t testing.TB) runtime.Config {
	return runtime.Config{
		Seed:     1,
		Scenario: msg.PSD,
		Strategy: core.MaxEB{},
		Overlay:  recoveryOverlay(t),
		Workload: workload.Config{RatePerMin: 6, Duration: 2 * vtime.Minute},
		Recovery: runtime.Recovery{
			Detect:            true,
			Renegotiate:       true,
			HeartbeatInterval: vtime.Second,
			HeartbeatTimeout:  6 * vtime.Second,
		},
		TimelineBucket: 30 * vtime.Second,
		TimeScale:      0.005,
	}
}

// liveRecoveryTimeScale slows live recovery runs to 1 emulated second
// per 20 wall ms: a monitor only false-positives if its node is starved
// for 120 ms straight, which even a fully loaded test machine does not
// do. The sim ignores TimeScale, so the cross-validated counters are
// unaffected.
const liveRecoveryTimeScale = 0.02

// killHalf crashes middles 2 and 4 at 30 s.
func killHalf() []runtime.Fault {
	return []runtime.Fault{
		runtime.BrokerCrash{ID: 2, At: 30 * vtime.Second},
		runtime.BrokerCrash{ID: 4, At: 30 * vtime.Second},
	}
}

// postRecoveryBuckets returns the timeline indices whose publications
// all route after detection has fired and repair has settled (the crash
// is at 30 s, detection at 36 s: buckets 2 and 3 of a 30 s timeline).
func postRecoveryBuckets(t *testing.T, r *runtime.Result) []int {
	t.Helper()
	if len(r.Timeline) < 4 {
		t.Fatalf("timeline has %d buckets, want ≥ 4 over the 2-minute window", len(r.Timeline))
	}
	return []int{2, 3}
}

// TestSimKillHalfRecovery is the deterministic half of the tentpole
// proof: on the simulator, killing half the relay layer with the
// self-healing plane on must detect every severed arc, reroute every
// subscription, and bring post-recovery delivery back to within ε of
// the quiet baseline — while the same crashes with the plane off
// flatline delivery.
func TestSimKillHalfRecovery(t *testing.T) {
	quietCfg := recoveryConfig(t)
	quiet, err := runtime.Run(quietCfg, simnet.Transport{})
	if err != nil {
		t.Fatal(err)
	}

	downCfg := recoveryConfig(t)
	downCfg.Faults = killHalf()
	downCfg.Recovery = runtime.Recovery{} // detection off: faults stay wounds
	down, err := runtime.Run(downCfg, simnet.Transport{})
	if err != nil {
		t.Fatal(err)
	}

	recCfg := recoveryConfig(t)
	recCfg.Faults = killHalf()
	rec, err := runtime.Run(recCfg, simnet.Transport{})
	if err != nil {
		t.Fatal(err)
	}

	// Each dead middle has 4 outgoing arcs; detection is arc-granular on
	// both backends, so the count is exact, and on virtual time the
	// latency is exactly the heartbeat timeout.
	if rec.Detections != 8 {
		t.Errorf("detections = %d, want 8 (4 arcs per killed middle)", rec.Detections)
	}
	if rec.DetectionLatencyMs != 6000 {
		t.Errorf("detection latency = %.0f ms, want exactly the 6000 ms timeout", rec.DetectionLatencyMs)
	}
	const subs = 2 * 10 // two edges × the workload default SubsPerEdge
	// Every subscription reroutes once per ingress (middle 2 carried all
	// paths); the repaired path via middle 3 (≈6 s for 50 KB) honors the
	// 10 s PSD floor, so every bound is kept.
	if rec.ReroutedPaths != 2*subs {
		t.Errorf("rerouted paths = %d, want %d (every sub × every ingress)", rec.ReroutedPaths, 2*subs)
	}
	if rec.BoundsKept != 2*subs || rec.BoundsRelaxed != 0 || rec.BoundsRejected != 0 {
		t.Errorf("renegotiation = %d/%d/%d kept/relaxed/rejected, want %d/0/0",
			rec.BoundsKept, rec.BoundsRelaxed, rec.BoundsRejected, 2*subs)
	}
	if rec.RefloodedSubs != subs {
		t.Errorf("reflooded subs = %d, want %d", rec.RefloodedSubs, subs)
	}
	if down.Detections != 0 || down.ReroutedPaths != 0 {
		t.Errorf("recovery-off run healed itself: %d detections, %d reroutes",
			down.Detections, down.ReroutedPaths)
	}
	if rec.ValidDeliveries <= down.ValidDeliveries {
		t.Errorf("recovery should restore deliveries: %d with vs %d without",
			rec.ValidDeliveries, down.ValidDeliveries)
	}

	// The timeline buckets publications by publish instant, so bucket
	// boundaries and targets are identical across the three runs.
	if len(rec.Timeline) != len(quiet.Timeline) || len(down.Timeline) != len(quiet.Timeline) {
		t.Fatalf("timeline lengths diverged: quiet %d, down %d, rec %d",
			len(quiet.Timeline), len(down.Timeline), len(rec.Timeline))
	}
	for _, i := range postRecoveryBuckets(t, &rec) {
		q, d, r := quiet.Timeline[i].Rate(), down.Timeline[i].Rate(), rec.Timeline[i].Rate()
		// Without repair every route runs through dead middle 2: nothing
		// published after the crash can deliver.
		if d != 0 {
			t.Errorf("bucket %d: recovery-off delivery = %.3f, want 0 (all paths severed)", i, d)
		}
		// With repair, post-recovery delivery is within ε of the healthy run.
		if diff := math.Abs(r - q); diff > 0.15 {
			t.Errorf("bucket %d: recovered rate %.3f vs quiet %.3f (|Δ| = %.3f > 0.15)", i, r, q, diff)
		}
	}
}

// TestRecoveryCrossValidationKillHalf is the backend-agnostic half of
// the proof: the same kill-half config on the live TCP overlay — real
// heartbeat frames, real monitor timeouts, repairs racing live traffic —
// must agree with the simulator on what was detected, what was
// rerouted, how renegotiation ruled, and where delivery lands after
// recovery.
func TestRecoveryCrossValidationKillHalf(t *testing.T) {
	if testing.Short() {
		t.Skip("compressed-timescale live cluster run")
	}
	quietCfg := recoveryConfig(t)
	quiet, err := runtime.Run(quietCfg, simnet.Transport{})
	if err != nil {
		t.Fatal(err)
	}

	simCfg := recoveryConfig(t)
	simCfg.Overlay = quietCfg.Overlay
	simCfg.Faults = killHalf()
	sim, err := runtime.Run(simCfg, simnet.Transport{})
	if err != nil {
		t.Fatal(err)
	}

	liveCfg := recoveryConfig(t)
	liveCfg.Overlay = quietCfg.Overlay
	liveCfg.Faults = killHalf()
	liveCfg.TimeScale = liveRecoveryTimeScale
	live, err := runtime.Run(liveCfg, livenet.Transport{})
	if err != nil {
		t.Fatal(err)
	}

	// Detection is arc-granular on both backends: the simulator schedules
	// the batch, the live overlay collects one report per surviving
	// monitor — the counts must agree exactly.
	if sim.Detections != 8 || live.Detections != 8 {
		t.Errorf("detections diverged: sim %d, live %d, want 8 each", sim.Detections, live.Detections)
	}
	// Live detection latency is measured against the injected fault
	// instant; it can only exceed the emulated timeout (by jitter ×
	// 1/TimeScale), never undercut it.
	if live.DetectionLatencyMs < 5000 || live.DetectionLatencyMs > 60000 {
		t.Errorf("live detection latency = %.0f ms, want ≈ the 6000 ms timeout", live.DetectionLatencyMs)
	}
	// Repair and renegotiation walk the same plan state on both backends;
	// the live overlay repairs arc by arc but each route still moves
	// exactly once, so the totals match.
	if sim.ReroutedPaths != live.ReroutedPaths {
		t.Errorf("rerouted paths diverged: sim %d, live %d", sim.ReroutedPaths, live.ReroutedPaths)
	}
	if sim.BoundsKept != live.BoundsKept || sim.BoundsRelaxed != live.BoundsRelaxed ||
		sim.BoundsRejected != live.BoundsRejected {
		t.Errorf("renegotiation diverged: sim %d/%d/%d, live %d/%d/%d (kept/relaxed/rejected)",
			sim.BoundsKept, sim.BoundsRelaxed, sim.BoundsRejected,
			live.BoundsKept, live.BoundsRelaxed, live.BoundsRejected)
	}
	if sim.RefloodedSubs != live.RefloodedSubs {
		t.Errorf("reflooded subs diverged: sim %d, live %d", sim.RefloodedSubs, live.RefloodedSubs)
	}

	// Workload identity: same plan, same publications, same targets.
	if sim.Published != live.Published || sim.TotalTargets != live.TotalTargets {
		t.Errorf("workload diverged: sim %d/%d, live %d/%d (published/targets)",
			sim.Published, sim.TotalTargets, live.Published, live.TotalTargets)
	}
	if d := math.Abs(sim.DeliveryRate() - live.DeliveryRate()); d > 0.15 {
		t.Errorf("delivery rates diverged by %.3f: sim %.3f, live %.3f",
			d, sim.DeliveryRate(), live.DeliveryRate())
	}

	// Post-recovery delivery returns to within ε of the quiet baseline on
	// BOTH backends. Timeline buckets key on publication instants, so the
	// same buckets (and targets) exist everywhere.
	if len(live.Timeline) != len(quiet.Timeline) {
		t.Fatalf("timeline lengths diverged: quiet %d, live %d", len(quiet.Timeline), len(live.Timeline))
	}
	for _, i := range postRecoveryBuckets(t, &sim) {
		if quiet.Timeline[i].Targets != live.Timeline[i].Targets {
			t.Errorf("bucket %d targets diverged: quiet %d, live %d",
				i, quiet.Timeline[i].Targets, live.Timeline[i].Targets)
		}
		q := quiet.Timeline[i].Rate()
		for name, r := range map[string]float64{
			"sim": sim.Timeline[i].Rate(), "live": live.Timeline[i].Rate(),
		} {
			if diff := math.Abs(r - q); diff > 0.15 {
				t.Errorf("bucket %d: %s recovered rate %.3f vs quiet %.3f (|Δ| = %.3f > 0.15)",
					i, name, r, q, diff)
			}
		}
	}
}

// TestLiveLinkDownRecoveryViaRuntime is the transient-fault symmetric of
// TestLiveBrokerCrashViaRuntime: a 50 s one-way outage on the busiest
// link must be detected by the downstream monitor, rerouted around, and
// — once heartbeats flow again — routed back, with the recovered run
// delivering strictly more than the same outage without recovery.
func TestLiveLinkDownRecoveryViaRuntime(t *testing.T) {
	if testing.Short() {
		t.Skip("compressed-timescale live cluster run")
	}
	outage := []runtime.Fault{
		runtime.LinkDown{From: 2, To: 6, Start: 30 * vtime.Second, End: 80 * vtime.Second},
	}

	// Reference counters from the simulator: one detection; the edge-6
	// subscriptions reroute out (via middle 3) and back (restore), so
	// every counter tallies both repairs.
	simCfg := recoveryConfig(t)
	simCfg.Faults = outage
	sim, err := runtime.Run(simCfg, simnet.Transport{})
	if err != nil {
		t.Fatal(err)
	}
	subsPerEdge := 10 // workload default
	if sim.Detections != 1 {
		t.Errorf("sim detections = %d, want 1 (one silenced arc)", sim.Detections)
	}
	if sim.ReroutedPaths != 2*2*subsPerEdge {
		t.Errorf("sim rerouted = %d, want %d (out and back, per ingress, per edge-6 sub)",
			sim.ReroutedPaths, 2*2*subsPerEdge)
	}
	if sim.RefloodedSubs != 2*subsPerEdge {
		t.Errorf("sim reflooded = %d, want %d", sim.RefloodedSubs, 2*subsPerEdge)
	}

	norecCfg := recoveryConfig(t)
	norecCfg.Overlay = simCfg.Overlay
	norecCfg.Faults = outage
	norecCfg.Recovery = runtime.Recovery{}
	norecCfg.TimeScale = liveRecoveryTimeScale // same compression as the recovered run below
	norec, err := runtime.Run(norecCfg, livenet.Transport{})
	if err != nil {
		t.Fatal(err)
	}

	recCfg := recoveryConfig(t)
	recCfg.Overlay = simCfg.Overlay
	recCfg.Faults = outage
	recCfg.TimeScale = liveRecoveryTimeScale
	rec, err := runtime.Run(recCfg, livenet.Transport{})
	if err != nil {
		t.Fatal(err)
	}

	if rec.Detections != sim.Detections {
		t.Errorf("live detections = %d, sim %d", rec.Detections, sim.Detections)
	}
	// The out-and-back repair totals match the simulator's.
	if rec.ReroutedPaths != sim.ReroutedPaths || rec.RefloodedSubs != sim.RefloodedSubs {
		t.Errorf("live repair diverged: rerouted %d reflooded %d, sim %d and %d",
			rec.ReroutedPaths, rec.RefloodedSubs, sim.ReroutedPaths, sim.RefloodedSubs)
	}
	if rec.ValidDeliveries == 0 {
		t.Fatal("recovered live run delivered nothing")
	}
	// Without recovery, everything published for edge 6 during the outage
	// queues behind the dead link and arrives tens of seconds late —
	// far past every PSD bound. With recovery it detours and stays valid.
	if rec.ValidDeliveries <= norec.ValidDeliveries {
		t.Errorf("recovery should rescue outage-window deliveries: %d with vs %d without",
			rec.ValidDeliveries, norec.ValidDeliveries)
	}
}
