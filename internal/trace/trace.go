// Package trace provides structured event tracing for the simulator: a
// per-message timeline of publish, arrival, enqueue, send, delivery and
// drop events, usable for debugging scheduling decisions and for
// latency-budget decomposition (how much of a message's end-to-end delay
// was queueing vs transmission vs processing).
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"bdps/internal/vtime"
)

// Kind labels a traced event.
type Kind string

// Event kinds, in rough lifecycle order.
const (
	Publish Kind = "publish" // message entered the system
	Arrive  Kind = "arrive"  // reception at a broker
	Enqueue Kind = "enqueue" // placed in an output queue
	Send    Kind = "send"    // transmission started on a link
	Deliver Kind = "deliver" // handed to a local subscriber
	Drop    Kind = "drop"    // removed (expired / hopeless / crashed)
)

// Event is one traced occurrence.
type Event struct {
	T      vtime.Millis `json:"t"`
	Kind   Kind         `json:"kind"`
	MsgID  uint64       `json:"msg"`
	Broker int32        `json:"broker"`         // acting broker (-1: none)
	Peer   int32        `json:"peer,omitempty"` // link peer / subscriber
	Note   string       `json:"note,omitempty"` // drop reason, etc.
}

// Tracer consumes events. Implementations must be cheap when disabled —
// the simulator calls Emit on every hop of every message.
type Tracer interface {
	Emit(Event)
}

// Nop discards all events.
type Nop struct{}

// Emit implements Tracer.
func (Nop) Emit(Event) {}

// Buffer retains events in memory for inspection in tests and tools.
type Buffer struct {
	Events []Event
}

// Emit implements Tracer.
func (b *Buffer) Emit(e Event) { b.Events = append(b.Events, e) }

// Count returns the number of events of a kind.
func (b *Buffer) Count(k Kind) int {
	n := 0
	for _, e := range b.Events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// ByMessage returns a message's events in emission order.
func (b *Buffer) ByMessage(msgID uint64) []Event {
	var out []Event
	for _, e := range b.Events {
		if e.MsgID == msgID {
			out = append(out, e)
		}
	}
	return out
}

// JSONL streams events as JSON lines to a writer. Emit errors are
// remembered and reported by Err (tracing must not disturb a run).
type JSONL struct {
	W   io.Writer
	err error
}

// Emit implements Tracer.
func (j *JSONL) Emit(e Event) {
	if j.err != nil {
		return
	}
	raw, err := json.Marshal(e)
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.W.Write(append(raw, '\n')); err != nil {
		j.err = err
	}
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error { return j.err }

// Timeline summarizes one message's latency budget from its events:
// total time spent waiting in queues, in transmission, and in broker
// processing, per the delay model of §3.2.
type Timeline struct {
	PublishT  vtime.Millis
	DeliverT  vtime.Millis // first delivery (NaN-free: 0 when undelivered)
	Queueing  vtime.Millis // Σ (send − enqueue)
	Transmit  vtime.Millis // Σ (arrive − send)
	Delivered bool
	Dropped   bool
}

// BuildTimeline folds a message's events into its latency budget. Events
// must be in emission (time) order, as Buffer.ByMessage returns them.
func BuildTimeline(events []Event) Timeline {
	var tl Timeline
	var lastEnqueue, lastSend vtime.Millis
	haveEnqueue, haveSend := false, false
	for _, e := range events {
		switch e.Kind {
		case Publish:
			tl.PublishT = e.T
		case Enqueue:
			lastEnqueue, haveEnqueue = e.T, true
		case Send:
			if haveEnqueue {
				tl.Queueing += e.T - lastEnqueue
				haveEnqueue = false
			}
			lastSend, haveSend = e.T, true
		case Arrive:
			if haveSend {
				tl.Transmit += e.T - lastSend
				haveSend = false
			}
		case Deliver:
			if !tl.Delivered {
				tl.DeliverT = e.T
				tl.Delivered = true
			}
		case Drop:
			tl.Dropped = true
		}
	}
	return tl
}

// String implements fmt.Stringer.
func (t Timeline) String() string {
	state := "in flight"
	if t.Delivered {
		state = fmt.Sprintf("delivered at %.0fms", t.DeliverT)
	} else if t.Dropped {
		state = "dropped"
	}
	return fmt.Sprintf("queueing %.0fms, transmit %.0fms, %s",
		t.Queueing, t.Transmit, state)
}
