package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestBufferCollects(t *testing.T) {
	var b Buffer
	b.Emit(Event{T: 1, Kind: Publish, MsgID: 7, Broker: 0})
	b.Emit(Event{T: 2, Kind: Arrive, MsgID: 7, Broker: 0})
	b.Emit(Event{T: 3, Kind: Arrive, MsgID: 8, Broker: 1})
	if len(b.Events) != 3 {
		t.Fatalf("events = %d", len(b.Events))
	}
	if b.Count(Arrive) != 2 || b.Count(Publish) != 1 || b.Count(Drop) != 0 {
		t.Error("counts wrong")
	}
	if got := b.ByMessage(7); len(got) != 2 {
		t.Errorf("msg 7 events = %d, want 2", len(got))
	}
}

func TestNopIsSilent(t *testing.T) {
	var n Nop
	n.Emit(Event{Kind: Publish}) // must not panic
}

func TestJSONLWritesValidLines(t *testing.T) {
	var buf bytes.Buffer
	j := &JSONL{W: &buf}
	j.Emit(Event{T: 1.5, Kind: Send, MsgID: 3, Broker: 2, Peer: 4})
	j.Emit(Event{T: 2.5, Kind: Drop, MsgID: 3, Broker: 4, Note: "expired"})
	if j.Err() != nil {
		t.Fatal(j.Err())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != Drop || e.Note != "expired" {
		t.Errorf("decoded = %+v", e)
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) {
	return 0, &json.UnsupportedValueError{}
}

func TestJSONLRemembersError(t *testing.T) {
	j := &JSONL{W: failingWriter{}}
	j.Emit(Event{Kind: Publish})
	if j.Err() == nil {
		t.Fatal("error not remembered")
	}
	j.Emit(Event{Kind: Arrive}) // must not panic after error
}

func TestBuildTimeline(t *testing.T) {
	events := []Event{
		{T: 0, Kind: Publish, MsgID: 1, Broker: 0},
		{T: 0, Kind: Arrive, MsgID: 1, Broker: 0},
		{T: 2, Kind: Enqueue, MsgID: 1, Broker: 0, Peer: 1},
		{T: 10, Kind: Send, MsgID: 1, Broker: 0, Peer: 1}, // queued 8 ms
		{T: 3510, Kind: Arrive, MsgID: 1, Broker: 1},      // tx 3500 ms
		{T: 3512, Kind: Enqueue, MsgID: 1, Broker: 1, Peer: 2},
		{T: 4000, Kind: Send, MsgID: 1, Broker: 1, Peer: 2}, // queued 488 ms
		{T: 7500, Kind: Arrive, MsgID: 1, Broker: 2},        // tx 3500 ms
		{T: 7502, Kind: Deliver, MsgID: 1, Broker: 2, Peer: 9},
	}
	tl := BuildTimeline(events)
	if !tl.Delivered || tl.Dropped {
		t.Fatalf("state wrong: %+v", tl)
	}
	if tl.Queueing != 8+488 {
		t.Errorf("queueing = %v, want 496", tl.Queueing)
	}
	if tl.Transmit != 7000 {
		t.Errorf("transmit = %v, want 7000", tl.Transmit)
	}
	if tl.DeliverT != 7502 {
		t.Errorf("deliverT = %v", tl.DeliverT)
	}
	if tl.String() == "" {
		t.Error("empty String")
	}
}

func TestBuildTimelineDropped(t *testing.T) {
	tl := BuildTimeline([]Event{
		{T: 0, Kind: Publish, MsgID: 1},
		{T: 5, Kind: Enqueue, MsgID: 1},
		{T: 900, Kind: Drop, MsgID: 1, Note: "expired"},
	})
	if tl.Delivered || !tl.Dropped {
		t.Errorf("state = %+v", tl)
	}
	if !strings.Contains(tl.String(), "dropped") {
		t.Error("String should mention dropped")
	}
}

func TestBuildTimelineInFlight(t *testing.T) {
	tl := BuildTimeline([]Event{{T: 0, Kind: Publish, MsgID: 1}})
	if tl.Delivered || tl.Dropped {
		t.Error("fresh message should be in flight")
	}
	if !strings.Contains(tl.String(), "in flight") {
		t.Error("String should mention in flight")
	}
}
