package workload

import (
	"fmt"
	"math"
	"sort"

	"bdps/internal/filter"
	"bdps/internal/msg"
	"bdps/internal/stats"
	"bdps/internal/vtime"
)

// Churn parameterizes subscription churn: a Poisson stream of new
// subscribers arriving across the overlay's edge brokers, each staying
// for an exponentially distributed lifetime before unsubscribing. The
// zero value disables churn (the paper's static population).
type Churn struct {
	// RatePerMin is the subscribe-arrival rate over the whole overlay,
	// new subscriptions per minute. 0 disables churn.
	RatePerMin float64
	// HalfLife is the subscription-lifetime half-life: half of the churn
	// population has unsubscribed after this long (lifetimes are
	// exponential with median HalfLife, mean HalfLife/ln 2).
	// Defaults to 1 minute when churn is on.
	HalfLife vtime.Millis
}

// Enabled reports whether churn is configured.
func (c Churn) Enabled() bool { return c.RatePerMin > 0 }

func (c *Churn) setDefaults() {
	if c.RatePerMin > 0 && c.HalfLife == 0 {
		c.HalfLife = vtime.Minute
	}
}

func (c Churn) validate() error {
	if c.RatePerMin < 0 {
		return fmt.Errorf("workload: negative churn rate %v", c.RatePerMin)
	}
	if c.HalfLife < 0 {
		return fmt.Errorf("workload: negative churn half-life %v", c.HalfLife)
	}
	return nil
}

// SubEvent is one churn event: a subscription arriving at (or departing
// from) its edge broker at virtual time At.
type SubEvent struct {
	At    vtime.Millis
	Sub   *msg.Subscription
	Unsub bool
}

// ChurnEvents generates the churn schedule: subscribe/unsubscribe event
// pairs over the publishing window, sorted by time. Churn subscribers
// draw the same paper-style filters (and SSD tiers) as the static
// population and attach to a uniformly random edge broker. Ids are
// allocated from firstID upward so they never collide with the static
// population. Deterministic in (Seed, edges, firstID).
func (c Config) ChurnEvents(edges []msg.NodeID, firstID msg.SubID) []SubEvent {
	c.setDefaults()
	ch := c.Churn
	ch.setDefaults()
	if !ch.Enabled() || len(edges) == 0 {
		return nil
	}
	s := stats.Derive(c.Seed, "workload/churn")
	var zt *zipfTemplates
	if c.Zipf.Enabled() {
		zt = c.zipfTemplates()
	}
	gap := vtime.Minute / vtime.Millis(ch.RatePerMin)
	meanLife := float64(ch.HalfLife) / math.Ln2
	var events []SubEvent
	id := firstID
	for t := s.Exponential(gap); t <= c.Duration; t += s.Exponential(gap) {
		// Draw order (edge, then filter) matches the historical literal
		// evaluation order, so non-Zipf schedules reproduce bit for bit.
		edge := edges[s.IntN(len(edges))]
		var f *filter.Filter
		if zt != nil {
			f = zt.pick(s)
		} else {
			f = filter.And(
				filter.Lt("A1", s.Uniform(c.AttrLo, c.AttrHi)),
				filter.Lt("A2", s.Uniform(c.AttrLo, c.AttrHi)),
			)
		}
		sub := &msg.Subscription{
			ID:     id,
			Edge:   edge,
			Filter: f,
		}
		if c.Scenario == msg.SSD || c.Scenario == msg.Both {
			tier := s.IntN(len(c.SSDDeadlines))
			sub.Deadline = c.SSDDeadlines[tier]
			sub.Price = c.SSDPrices[tier]
		}
		id++
		events = append(events, SubEvent{At: t, Sub: sub})
		if leave := t + s.Exponential(meanLife); leave <= c.Duration {
			events = append(events, SubEvent{At: leave, Sub: sub, Unsub: true})
		}
	}
	// Subscribes are generated in time order but unsubscribes interleave;
	// one stable sort restores global order (a subscribe always precedes
	// its own unsubscribe because lifetimes are positive).
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events
}
