package workload

import (
	"fmt"
	"testing"

	"bdps/internal/msg"
	"bdps/internal/vtime"
)

func flashTestCfg() Config {
	return Config{
		Seed:       7,
		Scenario:   msg.PSD,
		RatePerMin: 12,
		Duration:   10 * vtime.Minute,
		FlashCrowd: FlashCrowd{
			At:       2 * vtime.Minute,
			Width:    2 * vtime.Minute,
			Boost:    4,
			SubBurst: 5,
		},
	}
}

// pubSchedule renders one publisher's full schedule into a comparable
// string — every field that feeds the run — so determinism checks catch
// any divergence, not just count drift.
func pubSchedule(c Config, index int) string {
	p := c.NewPublisher(index, 0)
	out := ""
	for {
		m, ok := p.Next()
		if !ok {
			break
		}
		out += fmt.Sprintf("%v|%v|%v|%v;", m.Published, m.Allowed, m.SizeKB, m.Attrs.String())
	}
	return out
}

// subSchedule renders a flash subscribe-burst schedule the same way.
func subSchedule(c Config) string {
	out := ""
	for _, ev := range c.FlashSubEvents([]msg.NodeID{4, 5}, 1000) {
		out += fmt.Sprintf("%v|%v|%v|%v|%v;", ev.At, ev.Unsub, ev.Sub.ID, ev.Sub.Edge, ev.Sub.Filter)
	}
	return out
}

// TestFlashCrowdScheduleDeterministic pins the property the experiment
// run cache and the sim/live crossval both depend on: identical configs
// produce byte-identical flash-crowd schedules — publications and the
// subscribe burst alike.
func TestFlashCrowdScheduleDeterministic(t *testing.T) {
	a, b := flashTestCfg(), flashTestCfg()
	for idx := 0; idx < 3; idx++ {
		if pubSchedule(a, idx) != pubSchedule(b, idx) {
			t.Fatalf("publisher %d schedule diverged between identical configs", idx)
		}
	}
	sa, sb := subSchedule(a), subSchedule(b)
	if sa != sb {
		t.Fatal("flash subscribe-burst schedule diverged between identical configs")
	}
	if sa == "" {
		t.Fatal("flash subscribe burst generated no events")
	}

	// The burst is load: the boosted window must carry more publications
	// than the same window without the crowd.
	base := flashTestCfg()
	base.FlashCrowd = FlashCrowd{}
	if bs := pubSchedule(base, 0); bs == pubSchedule(a, 0) {
		t.Fatal("flash crowd left the publication schedule untouched")
	}
	count := func(s string) int {
		n := 0
		for _, ch := range s {
			if ch == ';' {
				n++
			}
		}
		return n
	}
	if count(pubSchedule(a, 0)) <= count(pubSchedule(base, 0)) {
		t.Fatal("boosted schedule no denser than baseline")
	}

	// A zero FlashCrowd is inert: exactly the baseline schedule, no
	// subscribe burst.
	base2 := flashTestCfg()
	base2.FlashCrowd = FlashCrowd{}
	if pubSchedule(base, 0) != pubSchedule(base2, 0) {
		t.Fatal("disabled flash crowd is not deterministic")
	}
	if ev := base.FlashSubEvents([]msg.NodeID{4, 5}, 1000); len(ev) != 0 {
		t.Fatalf("disabled flash crowd generated %d subscribe events", len(ev))
	}
}

// TestFlashCrowdValidation hardens the workload spec against degenerate
// flash-crowd parameters: bursts that overrun the publishing horizon,
// negative ramps, and out-of-range shapes must be rejected up front —
// not discovered as a hung or silently-truncated run.
func TestFlashCrowdValidation(t *testing.T) {
	mk := func(mut func(*Config)) Config {
		c := flashTestCfg()
		mut(&c)
		return c
	}
	bad := []Config{
		// Burst extends past the publishing window.
		mk(func(c *Config) { c.FlashCrowd.At = 9 * vtime.Minute }),
		mk(func(c *Config) { c.FlashCrowd.Width = 20 * vtime.Minute }),
		// Negative window geometry.
		mk(func(c *Config) { c.FlashCrowd.At = -vtime.Second }),
		mk(func(c *Config) { c.FlashCrowd.Width = -vtime.Second }),
		mk(func(c *Config) { c.FlashCrowd.Ramp = -vtime.Second }),
		// Degenerate shapes.
		mk(func(c *Config) { c.FlashCrowd.Boost = 0.5 }),
		mk(func(c *Config) { c.FlashCrowd.SubBurst = -1 }),
		mk(func(c *Config) { c.FlashCrowd.SubHalfLife = -vtime.Second }),
		mk(func(c *Config) { c.FlashCrowd.HotFraction = 1.5 }),
		mk(func(c *Config) { c.FlashCrowd.Diurnal = 1 }),
		mk(func(c *Config) { c.FlashCrowd.DiurnalPeriod = -vtime.Minute }),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should fail validation: %+v", i, c.FlashCrowd)
		}
	}
	good := flashTestCfg()
	if err := good.Validate(); err != nil {
		t.Errorf("well-formed flash crowd rejected: %v", err)
	}
}
