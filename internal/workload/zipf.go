package workload

import (
	"fmt"
	"math"
	"sort"

	"bdps/internal/filter"
	"bdps/internal/stats"
)

// Zipf parameterizes a Zipf-skewed filter popularity: instead of every
// subscriber drawing an independent continuous filter (the paper's
// workload, where no two filters ever coincide), subscribers draw from
// a finite universe of filter templates with rank-r popularity ∝ 1/rˢ.
// This is the interest skew real pub/sub populations show — a few
// popular topics, a long tail — and the regime where covering-based
// aggregation pays: popular templates repeat as exact duplicates and
// narrow templates fall under broad ones. The zero value disables the
// skew (the paper's continuous workload).
type Zipf struct {
	// Universe is the number of distinct filter templates. 0 disables
	// Zipf sampling.
	Universe int
	// Exponent is the Zipf law's s (weight of rank r ∝ 1/rˢ); defaults
	// to 1 when the universe is set.
	Exponent float64
}

// Enabled reports whether Zipf sampling is configured.
func (z Zipf) Enabled() bool { return z.Universe > 0 }

func (z *Zipf) setDefaults() {
	if z.Universe > 0 && z.Exponent == 0 {
		z.Exponent = 1
	}
}

func (z Zipf) validate() error {
	if z.Universe < 0 {
		return fmt.Errorf("workload: negative zipf universe %d", z.Universe)
	}
	if z.Universe > 0 && z.Exponent < 0 {
		return fmt.Errorf("workload: negative zipf exponent %v", z.Exponent)
	}
	return nil
}

// zipfGrid quantizes template cut points to this many levels per
// attribute. Quantization makes distinct ranks alias to identical or
// covering filters, so the covering structure exists in the template
// universe itself, not just in rank collisions.
const zipfGrid = 16

// zipfTemplates is the rank-indexed template table plus the cumulative
// Zipf weights for sampling. Built deterministically from the workload
// seed, so the static population and the churn stream share one
// universe.
type zipfTemplates struct {
	filters []*filter.Filter
	cum     []float64
}

// zipfTemplates materializes the template universe: rank r draws its
// two quantized cut points from a dedicated derived stream (one stream,
// ranks in order — deterministic in the seed alone).
func (c Config) zipfTemplates() *zipfTemplates {
	z := c.Zipf
	s := stats.Derive(c.Seed, "workload/zipf")
	zt := &zipfTemplates{
		filters: make([]*filter.Filter, z.Universe),
		cum:     make([]float64, z.Universe),
	}
	total := 0.0
	span := c.AttrHi - c.AttrLo
	for r := 0; r < z.Universe; r++ {
		x1 := c.AttrLo + span*float64(s.IntN(zipfGrid)+1)/zipfGrid
		x2 := c.AttrLo + span*float64(s.IntN(zipfGrid)+1)/zipfGrid
		zt.filters[r] = filter.And(filter.Lt("A1", x1), filter.Lt("A2", x2))
		total += math.Pow(float64(r+1), -z.Exponent)
		zt.cum[r] = total
	}
	return zt
}

// pick samples one template by Zipf rank, consuming a single uniform
// draw from the caller's stream.
func (zt *zipfTemplates) pick(s *stats.Stream) *filter.Filter {
	u := s.Float64() * zt.cum[len(zt.cum)-1]
	i := sort.SearchFloat64s(zt.cum, u)
	if i >= len(zt.filters) {
		i = len(zt.filters) - 1
	}
	return zt.filters[i]
}
