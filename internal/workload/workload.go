// Package workload generates the paper's evaluation workload (§6.1):
// publishers emitting messages with uniform random attribute heads
// {A1=x1, A2=x2}, x ∈ (0,10), and subscriber populations with filters
// "A1<x1 && A2<x2" so each message interests 25% of subscribers on
// average. PSD runs draw the publisher's allowed delay uniformly from
// [10 s, 30 s]; SSD runs draw subscription deadlines from {10 s, 30 s,
// 60 s} with prices {3, 2, 1}.
package workload

import (
	"fmt"

	"bdps/internal/filter"
	"bdps/internal/msg"
	"bdps/internal/stats"
	"bdps/internal/vtime"
)

// Config parameterizes one workload. Zero values select the paper's
// settings via setDefaults.
type Config struct {
	Scenario msg.Scenario
	Seed     uint64

	// RatePerMin is the publishing rate per publisher, messages/minute.
	RatePerMin float64
	// Duration is the publishing window; the paper uses 2 h.
	Duration vtime.Millis
	// FixedInterval publishes on a strict period instead of a Poisson
	// process (ablation; the paper only says "at a certain rate").
	FixedInterval bool

	// SizeKB is the message size; the paper uses 50 KB.
	SizeKB float64
	// AttrLo/AttrHi bound the uniform attribute values; paper: (0, 10).
	AttrLo, AttrHi float64

	// PSDDelayLo/Hi bound the publisher-specified delay; paper: 10–30 s.
	PSDDelayLo, PSDDelayHi vtime.Millis

	// SSDDeadlines and SSDPrices are the subscriber tiers; paper:
	// {10 s, 30 s, 60 s} at prices {3, 2, 1}.
	SSDDeadlines []vtime.Millis
	SSDPrices    []float64

	// SubsPerEdge is the number of subscribers per edge broker; paper: 10.
	SubsPerEdge int

	// HotspotFraction skews message content: this fraction of messages
	// draw their attributes from the low HotspotWidth share of the
	// attribute range instead of the full range. Low attribute values
	// match more "A < x" filters, so hot messages interest far more
	// subscribers — a popularity skew the paper's uniform workload lacks.
	// 0 (default) reproduces the paper.
	HotspotFraction float64
	// HotspotWidth is the hot region's share of the attribute range;
	// default 0.2.
	HotspotWidth float64

	// Churn adds a dynamic subscriber population on top of the static
	// one: Poisson subscribe arrivals with exponentially distributed
	// lifetimes (see Churn and ChurnEvents). Zero disables churn.
	Churn Churn

	// Zipf replaces the independent continuous filters with draws from a
	// finite Zipf-popular template universe (see Zipf). Zero keeps the
	// paper's continuous workload.
	Zipf Zipf

	// FlashCrowd overlays a correlated load spike (publish-rate burst on
	// the hot region + subscribe burst + diurnal ramp) on the base
	// workload (see FlashCrowd). Zero disables it.
	FlashCrowd FlashCrowd
}

// setDefaults fills the paper's values into unset fields.
func (c *Config) setDefaults() {
	if c.RatePerMin == 0 {
		c.RatePerMin = 10
	}
	if c.Duration == 0 {
		c.Duration = 2 * vtime.Hour
	}
	if c.SizeKB == 0 {
		c.SizeKB = 50
	}
	if c.AttrLo == 0 && c.AttrHi == 0 {
		c.AttrLo, c.AttrHi = 0, 10
	}
	if c.PSDDelayLo == 0 && c.PSDDelayHi == 0 {
		c.PSDDelayLo, c.PSDDelayHi = 10*vtime.Second, 30*vtime.Second
	}
	if len(c.SSDDeadlines) == 0 {
		c.SSDDeadlines = []vtime.Millis{10 * vtime.Second, 30 * vtime.Second, 60 * vtime.Second}
		c.SSDPrices = []float64{3, 2, 1}
	}
	if c.SubsPerEdge == 0 {
		c.SubsPerEdge = 10
	}
	if c.HotspotWidth == 0 {
		c.HotspotWidth = 0.2
	}
	c.Churn.setDefaults()
	c.Zipf.setDefaults()
	c.FlashCrowd.setDefaults(c.Duration)
}

// Validate checks cross-field consistency after defaulting.
func (c *Config) Validate() error {
	c.setDefaults()
	if c.RatePerMin < 0 {
		return fmt.Errorf("workload: negative publishing rate %v", c.RatePerMin)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("workload: non-positive duration %v", c.Duration)
	}
	if c.SizeKB <= 0 {
		return fmt.Errorf("workload: non-positive message size %v", c.SizeKB)
	}
	if len(c.SSDDeadlines) != len(c.SSDPrices) {
		return fmt.Errorf("workload: %d deadlines but %d prices",
			len(c.SSDDeadlines), len(c.SSDPrices))
	}
	if c.PSDDelayHi < c.PSDDelayLo {
		return fmt.Errorf("workload: PSD delay range [%v,%v] inverted", c.PSDDelayLo, c.PSDDelayHi)
	}
	if c.HotspotFraction < 0 || c.HotspotFraction > 1 {
		return fmt.Errorf("workload: hotspot fraction %v outside [0,1]", c.HotspotFraction)
	}
	if c.HotspotWidth <= 0 || c.HotspotWidth > 1 {
		return fmt.Errorf("workload: hotspot width %v outside (0,1]", c.HotspotWidth)
	}
	if err := c.Churn.validate(); err != nil {
		return err
	}
	if err := c.Zipf.validate(); err != nil {
		return err
	}
	if err := c.FlashCrowd.validate(c.Duration); err != nil {
		return err
	}
	return nil
}

// Subscriptions generates the subscriber population: SubsPerEdge
// subscribers per edge broker, each with filter "A1<x1 && A2<x2" and, in
// SSD, a uniformly chosen (deadline, price) tier. Deterministic in
// (Seed, edges).
func (c Config) Subscriptions(edges []msg.NodeID) []*msg.Subscription {
	c.setDefaults()
	s := stats.Derive(c.Seed, "workload/subs")
	var zt *zipfTemplates
	if c.Zipf.Enabled() {
		zt = c.zipfTemplates()
	}
	var out []*msg.Subscription
	id := msg.SubID(0)
	for _, edge := range edges {
		for j := 0; j < c.SubsPerEdge; j++ {
			var f *filter.Filter
			if zt != nil {
				f = zt.pick(s)
			} else {
				x1 := s.Uniform(c.AttrLo, c.AttrHi)
				x2 := s.Uniform(c.AttrLo, c.AttrHi)
				f = filter.And(filter.Lt("A1", x1), filter.Lt("A2", x2))
			}
			sub := &msg.Subscription{
				ID:     id,
				Edge:   edge,
				Filter: f,
			}
			if c.Scenario == msg.SSD || c.Scenario == msg.Both {
				tier := s.IntN(len(c.SSDDeadlines))
				sub.Deadline = c.SSDDeadlines[tier]
				sub.Price = c.SSDPrices[tier]
			}
			out = append(out, sub)
			id++
		}
	}
	return out
}

// Publisher generates one publisher's message sequence. Successive Next
// calls return messages in publication-time order until the publishing
// window closes.
type Publisher struct {
	cfg     Config
	id      msg.NodeID
	ingress msg.NodeID
	stream  *stats.Stream
	next    vtime.Millis
	seq     uint32
	period  vtime.Millis
}

// NewPublisher returns the index-th publisher, attached to the given
// ingress broker. Each publisher owns an independent random stream, so
// adding publishers never perturbs the others.
func (c Config) NewPublisher(index int, ingress msg.NodeID) *Publisher {
	c.setDefaults()
	p := &Publisher{
		cfg:     c,
		id:      msg.NodeID(index),
		ingress: ingress,
		stream:  stats.DeriveN(c.Seed, "workload/pub", index),
	}
	if c.RatePerMin > 0 {
		p.period = vtime.Minute / vtime.Millis(c.RatePerMin)
	}
	p.advance()
	return p
}

// advance draws the next publication instant.
func (p *Publisher) advance() {
	if p.cfg.RatePerMin <= 0 {
		p.next = vtime.Inf
		return
	}
	if p.cfg.FixedInterval {
		p.next += p.period
		return
	}
	fc := p.cfg.FlashCrowd
	if !fc.modulates() {
		p.next += p.stream.Exponential(p.period)
		return
	}
	// Time-varying rate (flash crowd / diurnal): a non-homogeneous
	// Poisson process via thinning — candidates drawn at the peak rate,
	// each accepted with probability rate(t)/peak. Gated on modulation so
	// unmodulated schedules reproduce the historical draws bit for bit.
	peak := fc.peak()
	for {
		p.next += p.stream.Exponential(p.period / peak)
		if p.next > p.cfg.Duration {
			return
		}
		if p.stream.Float64()*peak <= fc.multiplier(p.next) {
			return
		}
	}
}

// Next returns the next message, or ok=false when the publishing window
// has closed. The message's Published field holds its publication time.
func (p *Publisher) Next() (*msg.Message, bool) {
	if p.next > p.cfg.Duration {
		return nil, false
	}
	attrHi := p.cfg.AttrHi
	if p.cfg.HotspotFraction > 0 && p.stream.Float64() < p.cfg.HotspotFraction {
		attrHi = p.cfg.AttrLo + p.cfg.HotspotWidth*(p.cfg.AttrHi-p.cfg.AttrLo)
	}
	if fc := p.cfg.FlashCrowd; fc.HotFraction > 0 && fc.inBurst(p.next) &&
		p.stream.Float64() < fc.HotFraction {
		// Burst publications concentrate on the hot region — the content
		// the flash-crowd subscribers came for.
		attrHi = p.cfg.AttrLo + p.cfg.HotspotWidth*(p.cfg.AttrHi-p.cfg.AttrLo)
	}
	m := &msg.Message{
		ID:        msg.MakeID(p.id, p.seq),
		Publisher: p.id,
		Ingress:   p.ingress,
		Published: p.next,
		SizeKB:    p.cfg.SizeKB,
		Attrs: msg.NewAttrSet(
			msg.Attr{Name: "A1", Val: filter.Num(p.stream.Uniform(p.cfg.AttrLo, attrHi))},
			msg.Attr{Name: "A2", Val: filter.Num(p.stream.Uniform(p.cfg.AttrLo, attrHi))},
		),
	}
	if p.cfg.Scenario == msg.PSD || p.cfg.Scenario == msg.Both {
		m.Allowed = p.stream.Uniform(float64(p.cfg.PSDDelayLo), float64(p.cfg.PSDDelayHi))
	}
	p.seq++
	p.advance()
	return m, true
}

// Interested counts the subscriptions whose filters match the message —
// the tsᵢ term of eq. (1).
func Interested(subs []*msg.Subscription, m *msg.Message) int {
	n := 0
	for _, s := range subs {
		// &m.Attrs: interface-box the pointer, not a per-call heap copy.
		if s.Filter.Match(&m.Attrs) {
			n++
		}
	}
	return n
}
