package workload

import (
	"math"
	"testing"

	"bdps/internal/msg"
	"bdps/internal/vtime"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.RatePerMin != 10 || c.Duration != 2*vtime.Hour || c.SizeKB != 50 {
		t.Errorf("defaults wrong: %+v", c)
	}
	if c.SubsPerEdge != 10 || len(c.SSDDeadlines) != 3 {
		t.Errorf("defaults wrong: %+v", c)
	}
}

func TestConfigValidateErrors(t *testing.T) {
	bad := []Config{
		{RatePerMin: -1},
		{Duration: -5},
		{SizeKB: -1},
		{SSDDeadlines: []vtime.Millis{1, 2}, SSDPrices: []float64{1}},
		{PSDDelayLo: 30 * vtime.Second, PSDDelayHi: 10 * vtime.Second},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
}

func TestSubscriptionsShape(t *testing.T) {
	c := Config{Scenario: msg.SSD, Seed: 1}
	edges := []msg.NodeID{16, 17, 18}
	subs := c.Subscriptions(edges)
	if len(subs) != 30 {
		t.Fatalf("got %d subs, want 30", len(subs))
	}
	tierPrices := map[vtime.Millis]float64{
		10 * vtime.Second: 3, 30 * vtime.Second: 2, 60 * vtime.Second: 1,
	}
	perEdge := map[msg.NodeID]int{}
	for _, s := range subs {
		perEdge[s.Edge]++
		want, ok := tierPrices[s.Deadline]
		if !ok {
			t.Errorf("sub %d deadline %v not a paper tier", s.ID, s.Deadline)
		} else if s.Price != want {
			t.Errorf("sub %d price %v, want %v for deadline %v", s.ID, s.Price, want, s.Deadline)
		}
	}
	for _, e := range edges {
		if perEdge[e] != 10 {
			t.Errorf("edge %d has %d subs, want 10", e, perEdge[e])
		}
	}
}

func TestSubscriptionsPSDHaveNoPrice(t *testing.T) {
	c := Config{Scenario: msg.PSD, Seed: 1}
	for _, s := range c.Subscriptions([]msg.NodeID{5}) {
		if s.Deadline != 0 || s.Price != 0 {
			t.Errorf("PSD sub has deadline/price: %+v", s)
		}
	}
}

func TestSubscriptionsDeterministic(t *testing.T) {
	c := Config{Scenario: msg.SSD, Seed: 42}
	a := c.Subscriptions([]msg.NodeID{1, 2})
	b := c.Subscriptions([]msg.NodeID{1, 2})
	for i := range a {
		if a[i].Filter.String() != b[i].Filter.String() ||
			a[i].Deadline != b[i].Deadline || a[i].Price != b[i].Price {
			t.Fatal("same seed should reproduce subscriptions")
		}
	}
}

func TestMatchProbabilityNearQuarter(t *testing.T) {
	// Paper: on average (1/2)² = 25% of subscribers match a message.
	c := Config{Seed: 7}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	subs := c.Subscriptions([]msg.NodeID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9,
		10, 11, 12, 13, 14, 15})
	pub := c.NewPublisher(0, 0)
	total, matched := 0, 0
	for i := 0; i < 2000; i++ {
		m, ok := pub.Next()
		if !ok {
			break
		}
		matched += Interested(subs, m)
		total += len(subs)
	}
	frac := float64(matched) / float64(total)
	if math.Abs(frac-0.25) > 0.03 {
		t.Errorf("match fraction = %.3f, want ≈0.25", frac)
	}
}

func TestPublisherPoissonRate(t *testing.T) {
	c := Config{Seed: 3, RatePerMin: 10, Duration: 2 * vtime.Hour}
	pub := c.NewPublisher(0, 0)
	count := 0
	var last vtime.Millis
	for {
		m, ok := pub.Next()
		if !ok {
			break
		}
		if m.Published < last {
			t.Fatal("publication times must be nondecreasing")
		}
		last = m.Published
		count++
	}
	// Expected 10/min × 120 min = 1200; Poisson sd ≈ 35.
	if count < 1050 || count > 1350 {
		t.Errorf("published %d messages, want ≈1200", count)
	}
	if last > 2*vtime.Hour {
		t.Error("publication after the window")
	}
}

func TestPublisherFixedInterval(t *testing.T) {
	c := Config{Seed: 3, RatePerMin: 6, Duration: 10 * vtime.Minute, FixedInterval: true}
	pub := c.NewPublisher(0, 0)
	var times []vtime.Millis
	for {
		m, ok := pub.Next()
		if !ok {
			break
		}
		times = append(times, m.Published)
	}
	if len(times) != 60 {
		t.Fatalf("got %d messages, want exactly 60", len(times))
	}
	for i := 1; i < len(times); i++ {
		if math.Abs(float64(times[i]-times[i-1])-10000) > 1e-9 {
			t.Fatalf("interval %v, want 10 s", times[i]-times[i-1])
		}
	}
}

func TestPublisherZeroRate(t *testing.T) {
	c := Config{Seed: 1, RatePerMin: -0.0, Duration: vtime.Hour}
	c.RatePerMin = 0 // explicit zero means default 10; force off with negative? No: use tiny window instead.
	pub := c.NewPublisher(0, 0)
	n := 0
	for {
		if _, ok := pub.Next(); !ok {
			break
		}
		n++
	}
	if n == 0 {
		t.Error("default rate should produce messages")
	}
}

func TestPublisherPSDBounds(t *testing.T) {
	c := Config{Scenario: msg.PSD, Seed: 5, Duration: vtime.Hour}
	pub := c.NewPublisher(1, 3)
	for i := 0; i < 200; i++ {
		m, ok := pub.Next()
		if !ok {
			break
		}
		if m.Allowed < 10*vtime.Second || m.Allowed > 30*vtime.Second {
			t.Fatalf("PSD allowed %v outside [10s,30s]", m.Allowed)
		}
		if m.Ingress != 3 || m.Publisher != 1 {
			t.Fatal("publisher identity wrong")
		}
		if m.SizeKB != 50 {
			t.Fatal("size wrong")
		}
		a1, ok1 := m.Attrs.Attr("A1")
		a2, ok2 := m.Attrs.Attr("A2")
		if !ok1 || !ok2 {
			t.Fatal("attributes missing")
		}
		if a1.Num < 0 || a1.Num >= 10 || a2.Num < 0 || a2.Num >= 10 {
			t.Fatalf("attributes out of range: %v", m.Attrs)
		}
	}
}

func TestPublisherSSDNoAllowed(t *testing.T) {
	c := Config{Scenario: msg.SSD, Seed: 5, Duration: vtime.Hour}
	pub := c.NewPublisher(0, 0)
	m, ok := pub.Next()
	if !ok {
		t.Fatal("no message")
	}
	if m.Allowed != 0 {
		t.Errorf("SSD message has publisher bound %v, want 0", m.Allowed)
	}
}

func TestPublishersIndependentStreams(t *testing.T) {
	c := Config{Seed: 9, Duration: vtime.Hour}
	p0 := c.NewPublisher(0, 0)
	p1 := c.NewPublisher(1, 1)
	m0, _ := p0.Next()
	m1, _ := p1.Next()
	if m0.Published == m1.Published {
		t.Error("distinct publishers should have distinct arrival processes")
	}
	if m0.ID == m1.ID {
		t.Error("message ids must be globally unique")
	}
}

func TestHotspotSkewsInterest(t *testing.T) {
	uniform := Config{Seed: 7}
	if err := uniform.Validate(); err != nil {
		t.Fatal(err)
	}
	hot := Config{Seed: 7, HotspotFraction: 0.75}
	if err := hot.Validate(); err != nil {
		t.Fatal(err)
	}
	edges := []msg.NodeID{0, 1, 2, 3}
	subs := uniform.Subscriptions(edges)

	avgInterest := func(c Config) float64 {
		pub := c.NewPublisher(0, 0)
		total, n := 0, 0
		for i := 0; i < 1500; i++ {
			m, ok := pub.Next()
			if !ok {
				break
			}
			total += Interested(subs, m)
			n++
		}
		return float64(total) / float64(n)
	}
	u, h := avgInterest(uniform), avgInterest(hot)
	if h <= u*1.5 {
		t.Errorf("hotspot interest %v should well exceed uniform %v", h, u)
	}
}

func TestHotspotValidation(t *testing.T) {
	bad := Config{HotspotFraction: 1.5}
	if err := bad.Validate(); err == nil {
		t.Error("fraction > 1 should fail")
	}
	bad2 := Config{HotspotFraction: 0.5, HotspotWidth: 2}
	if err := bad2.Validate(); err == nil {
		t.Error("width > 1 should fail")
	}
}

func TestPublisherIDsUnique(t *testing.T) {
	c := Config{Seed: 2, Duration: 30 * vtime.Minute}
	pub := c.NewPublisher(2, 0)
	seen := map[msg.ID]bool{}
	for {
		m, ok := pub.Next()
		if !ok {
			break
		}
		if seen[m.ID] {
			t.Fatalf("duplicate id %d", m.ID)
		}
		seen[m.ID] = true
	}
}
