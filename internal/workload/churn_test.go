package workload

import (
	"testing"

	"bdps/internal/msg"
	"bdps/internal/vtime"
)

func TestChurnEventsDeterministic(t *testing.T) {
	cfg := Config{
		Seed:     7,
		Scenario: msg.SSD,
		Duration: 30 * vtime.Minute,
		Churn:    Churn{RatePerMin: 20, HalfLife: 2 * vtime.Minute},
	}
	edges := []msg.NodeID{5, 6, 7}
	a := cfg.ChurnEvents(edges, 1000)
	b := cfg.ChurnEvents(edges, 1000)
	if len(a) == 0 {
		t.Fatal("no churn events generated")
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic event count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].Unsub != b[i].Unsub || a[i].Sub.ID != b[i].Sub.ID {
			t.Fatalf("event %d differs between identical configs", i)
		}
	}
}

func TestChurnEventsShape(t *testing.T) {
	cfg := Config{
		Seed:     3,
		Scenario: msg.SSD,
		Duration: vtime.Hour,
		Churn:    Churn{RatePerMin: 30, HalfLife: vtime.Minute},
	}
	edges := []msg.NodeID{5, 6}
	first := msg.SubID(160)
	events := cfg.ChurnEvents(edges, first)

	subAt := map[msg.SubID]vtime.Millis{}
	arrivals, departures := 0, 0
	last := vtime.Millis(0)
	for _, ev := range events {
		if ev.At < last {
			t.Fatalf("events out of order: %v after %v", ev.At, last)
		}
		last = ev.At
		if ev.At > cfg.Duration {
			t.Fatalf("event at %v beyond window %v", ev.At, cfg.Duration)
		}
		if ev.Unsub {
			departures++
			at, ok := subAt[ev.Sub.ID]
			if !ok {
				t.Fatalf("unsubscribe for %d without prior subscribe", ev.Sub.ID)
			}
			if ev.At < at {
				t.Fatalf("sub %d leaves at %v before arriving at %v", ev.Sub.ID, ev.At, at)
			}
		} else {
			arrivals++
			if ev.Sub.ID < first {
				t.Fatalf("churn id %d collides with static population (< %d)", ev.Sub.ID, first)
			}
			if ev.Sub.Edge != 5 && ev.Sub.Edge != 6 {
				t.Fatalf("churn sub attached to non-edge broker %d", ev.Sub.Edge)
			}
			if ev.Sub.Deadline == 0 || ev.Sub.Price == 0 {
				t.Fatalf("SSD churn sub %d missing tier", ev.Sub.ID)
			}
			subAt[ev.Sub.ID] = ev.At
		}
	}
	// Poisson(30/min × 60 min) = 1800 expected arrivals; allow wide slack.
	if arrivals < 1500 || arrivals > 2100 {
		t.Fatalf("arrivals = %d, want ≈1800", arrivals)
	}
	// Half-life 1 min over a 60 min window: nearly every subscriber
	// departs inside the window.
	if departures < arrivals*8/10 {
		t.Fatalf("departures = %d of %d arrivals, want most inside the window", departures, arrivals)
	}
}

func TestChurnValidation(t *testing.T) {
	bad := Config{Churn: Churn{RatePerMin: -1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative churn rate must fail validation")
	}
	ok := Config{Churn: Churn{RatePerMin: 5}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if ok.Churn.HalfLife != vtime.Minute {
		t.Fatalf("half-life default = %v, want 1 min", ok.Churn.HalfLife)
	}
}
