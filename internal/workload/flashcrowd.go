package workload

import (
	"fmt"
	"math"
	"sort"

	"bdps/internal/filter"
	"bdps/internal/msg"
	"bdps/internal/stats"
	"bdps/internal/vtime"
)

// FlashCrowd overlays a production-shaped load spike on the paper's
// uniform workload: a correlated subscribe burst joining just as the
// publish rate spikes on the hot attribute region, optionally riding a
// slow diurnal modulation of the background rate. The zero value
// disables it (bit-identical schedules to a run without the feature).
//
// Publish-rate modulation is realized by thinning: publishers draw
// candidate instants at the peak rate and accept each with probability
// rate(t)/peak, which keeps every publisher's schedule a pure function
// of (Seed, index) — two runs of the same config produce byte-identical
// schedules.
type FlashCrowd struct {
	// At is the burst onset (emulated offset into the run).
	At vtime.Millis
	// Width is the burst plateau length; default 1 minute when a burst
	// is configured.
	Width vtime.Millis
	// Ramp is the linear rise/fall length on each side of the plateau
	// (the flash crowd arrives fast but not instantaneously); default 0.
	Ramp vtime.Millis
	// Boost multiplies every publisher's rate during the plateau; 0 or 1
	// means no publish spike.
	Boost float64
	// HotFraction is the share of plateau publications drawn from the
	// hot attribute region (the low HotspotWidth share of the range, the
	// region the burst subscribers watch); default 0.8 during a boosted
	// burst.
	HotFraction float64

	// SubBurst is the number of extra subscribers per edge broker that
	// join during the burst onset; 0 disables the subscribe burst.
	SubBurst int
	// SubHalfLife is the burst subscribers' lifetime half-life
	// (exponential lifetimes, like churn); default Width.
	SubHalfLife vtime.Millis

	// Diurnal is the amplitude of a sinusoidal background-rate
	// modulation, in [0,1): rate(t) scales by 1 + Diurnal·sin(2πt/P).
	Diurnal float64
	// DiurnalPeriod is the modulation period P; default Duration.
	DiurnalPeriod vtime.Millis
}

// Enabled reports whether any flash-crowd feature is configured.
func (f FlashCrowd) Enabled() bool {
	return f.Boost > 1 || f.SubBurst > 0 || f.Diurnal != 0
}

// modulates reports whether the publish rate is time-varying (the
// thinning path in Publisher.advance).
func (f FlashCrowd) modulates() bool { return f.Boost > 1 || f.Diurnal != 0 }

// setDefaults fills derived fields; duration is the publishing window
// (for the diurnal period default).
func (f *FlashCrowd) setDefaults(duration vtime.Millis) {
	if !f.Enabled() {
		return
	}
	if f.Boost == 0 {
		f.Boost = 1
	}
	if f.Boost > 1 || f.SubBurst > 0 {
		if f.Width == 0 {
			f.Width = vtime.Minute
		}
		if f.SubHalfLife == 0 {
			f.SubHalfLife = f.Width
		}
	}
	if f.Boost > 1 && f.HotFraction == 0 {
		f.HotFraction = 0.8
	}
	if f.Diurnal != 0 && f.DiurnalPeriod == 0 {
		f.DiurnalPeriod = duration
	}
}

// validate rejects degenerate flash-crowd specs against the publishing
// window, mirroring Plan.validateFaults' horizon discipline: a burst
// must fit inside the window and every ramp must be non-negative.
func (f FlashCrowd) validate(duration vtime.Millis) error {
	if !f.Enabled() {
		return nil
	}
	if f.Boost < 1 {
		return fmt.Errorf("workload: flash-crowd boost %v below 1", f.Boost)
	}
	if f.Ramp < 0 {
		return fmt.Errorf("workload: negative flash-crowd ramp %v", f.Ramp)
	}
	if f.At < 0 || f.Width < 0 {
		return fmt.Errorf("workload: negative flash-crowd window [%v,+%v)", f.At, f.Width)
	}
	if f.Boost > 1 || f.SubBurst > 0 {
		if f.At+f.Width > duration {
			return fmt.Errorf("workload: flash crowd [%v,%v) extends past the publishing window %v",
				f.At, f.At+f.Width, duration)
		}
	}
	if f.HotFraction < 0 || f.HotFraction > 1 {
		return fmt.Errorf("workload: flash-crowd hot fraction %v outside [0,1]", f.HotFraction)
	}
	if f.SubBurst < 0 {
		return fmt.Errorf("workload: negative flash-crowd subscriber burst %d", f.SubBurst)
	}
	if f.SubHalfLife < 0 {
		return fmt.Errorf("workload: negative flash-crowd subscriber half-life %v", f.SubHalfLife)
	}
	if f.Diurnal < 0 || f.Diurnal >= 1 {
		return fmt.Errorf("workload: flash-crowd diurnal amplitude %v outside [0,1)", f.Diurnal)
	}
	if f.DiurnalPeriod < 0 {
		return fmt.Errorf("workload: negative diurnal period %v", f.DiurnalPeriod)
	}
	return nil
}

// peak is the maximum rate multiplier over the run — the thinning
// envelope publishers draw candidates at.
func (f FlashCrowd) peak() float64 {
	p := 1.0
	if f.Boost > 1 {
		p = f.Boost
	}
	return p * (1 + f.Diurnal)
}

// multiplier is the instantaneous rate multiplier at t: the burst
// trapezoid (1 outside, Boost on the plateau, linear on the ramps)
// times the diurnal sinusoid.
func (f FlashCrowd) multiplier(t vtime.Millis) float64 {
	m := 1.0
	if f.Boost > 1 {
		switch {
		case t >= f.At && t <= f.At+f.Width:
			m = f.Boost
		case f.Ramp > 0 && t >= f.At-f.Ramp && t < f.At:
			m = 1 + (f.Boost-1)*(t-(f.At-f.Ramp))/f.Ramp
		case f.Ramp > 0 && t > f.At+f.Width && t <= f.At+f.Width+f.Ramp:
			m = f.Boost - (f.Boost-1)*(t-(f.At+f.Width))/f.Ramp
		}
	}
	if f.Diurnal != 0 {
		m *= 1 + f.Diurnal*math.Sin(2*math.Pi*t/f.DiurnalPeriod)
	}
	return m
}

// inBurst reports whether t falls in the burst plateau (the window hot
// publications and burst subscribers correlate on).
func (f FlashCrowd) inBurst(t vtime.Millis) bool {
	return f.Boost > 1 && t >= f.At && t <= f.At+f.Width
}

// FlashSubEvents generates the correlated subscribe burst: SubBurst
// subscribers per edge broker arriving within the burst onset (jittered
// uniformly over the first quarter of the plateau), each watching the
// hot attribute region — filters "A1<x, A2<x" with x drawn above the
// hot region's upper edge, so every hot publication matches — and
// leaving after an exponential lifetime. Ids are allocated from firstID
// upward. Deterministic in (Seed, edges, firstID).
func (c Config) FlashSubEvents(edges []msg.NodeID, firstID msg.SubID) []SubEvent {
	c.setDefaults()
	fc := c.FlashCrowd
	if fc.SubBurst <= 0 || len(edges) == 0 {
		return nil
	}
	s := stats.Derive(c.Seed, "workload/flash")
	hotHi := c.AttrLo + c.HotspotWidth*(c.AttrHi-c.AttrLo)
	jitter := fc.Width / 4
	meanLife := float64(fc.SubHalfLife) / math.Ln2
	var events []SubEvent
	id := firstID
	for _, edge := range edges {
		for j := 0; j < fc.SubBurst; j++ {
			at := fc.At + s.Uniform(0, float64(jitter))
			sub := &msg.Subscription{
				ID:   id,
				Edge: edge,
				Filter: filter.And(
					filter.Lt("A1", s.Uniform(hotHi, c.AttrHi)),
					filter.Lt("A2", s.Uniform(hotHi, c.AttrHi)),
				),
			}
			if c.Scenario == msg.SSD || c.Scenario == msg.Both {
				tier := s.IntN(len(c.SSDDeadlines))
				sub.Deadline = c.SSDDeadlines[tier]
				sub.Price = c.SSDPrices[tier]
			}
			id++
			events = append(events, SubEvent{At: at, Sub: sub})
			if leave := at + s.Exponential(meanLife); leave <= c.Duration {
				events = append(events, SubEvent{At: leave, Sub: sub, Unsub: true})
			}
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events
}

// MergeSubEvents interleaves two time-sorted subscription-event
// schedules into one (stable: ties keep the first schedule's events
// first).
func MergeSubEvents(a, b []SubEvent) []SubEvent {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]SubEvent, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
