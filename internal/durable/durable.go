// Package durable is the crash-restart persistence layer of a broker: a
// small append-only log plus snapshot store recording everything a node
// must recover to rejoin the overlay warm — its incarnation epoch, the
// routing entries admitted into its table (subscription, source, next
// hop, residual-path statistics, renegotiated floor), and the per-link
// reliable-channel send watermarks.
//
// The on-disk format is a flat stream of CRC-framed records:
//
//	record := len(4) crc32(4) type(1) payload
//
// where crc32 (IEEE) covers type+payload. Both the snapshot and the log
// use the same stream format; a snapshot is simply a log replaying to
// the whole state in one pass. Recovery replays the snapshot, then the
// log, and truncates the log at the first torn or corrupt record — a
// partially flushed tail after a crash costs the records behind it,
// never the store. Compaction folds the log into a fresh snapshot
// (written to a temp file and renamed, so a crash mid-compaction leaves
// the previous snapshot intact) and truncates the log.
package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"bdps/internal/msg"
	"bdps/internal/vtime"
)

// Record types.
const (
	recEpoch   = 0x01 // epoch(4)
	recEntry   = 0x02 // source(4) next(4) hops(4) pathID(4) mean(8) sigma(8) relaxed(8) sub
	recUnsub   = 0x03 // subID(4)
	recMark    = 0x04 // peer(4) seq(8)
	recHdrLen  = 9    // len(4) crc(4) type(1)
	maxPayload = 1 << 20
)

// Filenames inside a state directory.
const (
	snapName = "snapshot.bin"
	walName  = "wal.bin"
)

// Entry is one recoverable routing-table entry: the subscription plus
// the per-broker routing state the table stores for it. Next is msg.None
// for local delivery entries.
type Entry struct {
	Sub       *msg.Subscription
	Source    msg.NodeID
	Next      msg.NodeID
	Hops      int
	PathID    int
	RateMean  float64
	RateSigma float64
	Relaxed   vtime.Millis
}

// State is the recovered content of a store: the last recorded epoch,
// the live entries in admission order, and the per-peer reliable-channel
// send watermarks.
type State struct {
	Epoch   uint32
	Entries []Entry
	Marks   map[msg.NodeID]uint64
}

// apply folds one decoded record into the state.
func (st *State) apply(typ byte, payload []byte) error {
	switch typ {
	case recEpoch:
		if len(payload) != 4 {
			return fmt.Errorf("durable: epoch payload %d bytes", len(payload))
		}
		st.Epoch = binary.BigEndian.Uint32(payload)
	case recEntry:
		e, err := decodeEntry(payload)
		if err != nil {
			return err
		}
		st.Entries = append(st.Entries, e)
	case recUnsub:
		if len(payload) != 4 {
			return fmt.Errorf("durable: unsub payload %d bytes", len(payload))
		}
		id := msg.SubID(binary.BigEndian.Uint32(payload))
		n := 0
		for _, e := range st.Entries {
			if e.Sub.ID != id {
				st.Entries[n] = e
				n++
			}
		}
		st.Entries = st.Entries[:n]
	case recMark:
		if len(payload) != 12 {
			return fmt.Errorf("durable: mark payload %d bytes", len(payload))
		}
		if st.Marks == nil {
			st.Marks = make(map[msg.NodeID]uint64)
		}
		peer := msg.NodeID(binary.BigEndian.Uint32(payload))
		st.Marks[peer] = binary.BigEndian.Uint64(payload[4:])
	default:
		return fmt.Errorf("durable: unknown record type 0x%02x", typ)
	}
	return nil
}

// Replay applies the record stream in buf to st, stopping at the first
// torn, corrupt or unknown record. It returns the number of bytes
// consumed — the offset recovery truncates the log to. Replay never
// panics, whatever the input.
func Replay(buf []byte, st *State) int {
	off := 0
	for {
		n, typ, payload := nextRecord(buf[off:])
		if n == 0 {
			return off
		}
		// A record whose frame checks out but whose payload is malformed
		// also ends the replay: no sane appender wrote it, so nothing
		// behind it is trustworthy either. apply validates before it
		// mutates, so a rejected record leaves st untouched.
		if err := st.apply(typ, payload); err != nil {
			return off
		}
		off += n
	}
}

// nextRecord decodes one framed record from the head of buf, returning
// its total length (0 when the head is torn or corrupt).
func nextRecord(buf []byte) (n int, typ byte, payload []byte) {
	if len(buf) < recHdrLen {
		return 0, 0, nil
	}
	plen := int(binary.BigEndian.Uint32(buf))
	if plen < 0 || plen > maxPayload || recHdrLen+plen > len(buf) {
		return 0, 0, nil
	}
	sum := binary.BigEndian.Uint32(buf[4:])
	body := buf[8 : recHdrLen+plen] // type + payload
	if crc32.ChecksumIEEE(body) != sum {
		return 0, 0, nil
	}
	return recHdrLen + plen, buf[8], body[1:]
}

// appendRecord frames one record onto dst.
func appendRecord(dst []byte, typ byte, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	start := len(dst)
	dst = binary.BigEndian.AppendUint32(dst, 0) // crc placeholder
	dst = append(dst, typ)
	dst = append(dst, payload...)
	binary.BigEndian.PutUint32(dst[start:], crc32.ChecksumIEEE(dst[start+4:]))
	return dst
}

// encodeEntry renders one entry's payload.
func encodeEntry(dst []byte, e Entry) ([]byte, error) {
	dst = binary.BigEndian.AppendUint32(dst, uint32(e.Source))
	dst = binary.BigEndian.AppendUint32(dst, uint32(e.Next))
	dst = binary.BigEndian.AppendUint32(dst, uint32(e.Hops))
	dst = binary.BigEndian.AppendUint32(dst, uint32(e.PathID))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(e.RateMean))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(e.RateSigma))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(e.Relaxed))
	return msg.AppendSubscription(dst, e.Sub)
}

const entryHdrLen = 4*4 + 3*8

func decodeEntry(payload []byte) (Entry, error) {
	if len(payload) < entryHdrLen {
		return Entry{}, fmt.Errorf("durable: entry payload %d bytes", len(payload))
	}
	e := Entry{
		Source:    msg.NodeID(binary.BigEndian.Uint32(payload)),
		Next:      msg.NodeID(binary.BigEndian.Uint32(payload[4:])),
		Hops:      int(int32(binary.BigEndian.Uint32(payload[8:]))),
		PathID:    int(int32(binary.BigEndian.Uint32(payload[12:]))),
		RateMean:  math.Float64frombits(binary.BigEndian.Uint64(payload[16:])),
		RateSigma: math.Float64frombits(binary.BigEndian.Uint64(payload[24:])),
		Relaxed:   math.Float64frombits(binary.BigEndian.Uint64(payload[32:])),
	}
	sub, err := msg.DecodeSubscription(payload[entryHdrLen:])
	if err != nil {
		return Entry{}, err
	}
	e.Sub = sub
	return e, nil
}

// Store is an open state directory: the recovered state plus the live
// write-ahead log. Not safe for concurrent use; callers serialize.
type Store struct {
	dir string
	wal *os.File
	st  State
	buf []byte

	// CompactEvery triggers an automatic Checkpoint after that many log
	// appends (0 keeps the default).
	CompactEvery int
	appends      int
}

// DefaultCompactEvery bounds log growth between automatic checkpoints.
const DefaultCompactEvery = 4096

// Open recovers the state under dir (creating it empty when absent) and
// arms the log for appending. A torn log tail is truncated away on the
// spot, so the next crash cannot land behind an already-bad record.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, CompactEvery: DefaultCompactEvery}
	if snap, err := os.ReadFile(filepath.Join(dir, snapName)); err == nil {
		Replay(snap, &s.st)
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	walPath := filepath.Join(dir, walName)
	log, err := os.ReadFile(walPath)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	good := Replay(log, &s.st)
	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if good < len(log) {
		// Torn-write recovery: drop the corrupt tail.
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		f.Close()
		return nil, err
	}
	s.wal = f
	return s, nil
}

// State returns the recovered (and since-appended) state. The entries
// slice and marks map are the store's own; callers must not mutate them.
func (s *Store) State() State { return s.st }

// Empty reports whether the store holds no state at all — a fresh
// directory, as opposed to one recovered from a previous incarnation.
func (s *Store) Empty() bool {
	return s.st.Epoch == 0 && len(s.st.Entries) == 0 && len(s.st.Marks) == 0
}

// append writes one record to the log and mirrors it into the in-memory
// state, checkpointing when the log has grown CompactEvery records.
func (s *Store) append(typ byte, payload []byte) error {
	s.buf = appendRecord(s.buf[:0], typ, payload)
	if _, err := s.wal.Write(s.buf); err != nil {
		return err
	}
	if err := s.st.apply(typ, payload); err != nil {
		return err
	}
	every := s.CompactEvery
	if every <= 0 {
		every = DefaultCompactEvery
	}
	if s.appends++; s.appends >= every {
		return s.Checkpoint()
	}
	return nil
}

// SetEpoch records a new incarnation epoch.
func (s *Store) SetEpoch(epoch uint32) error {
	var p [4]byte
	binary.BigEndian.PutUint32(p[:], epoch)
	return s.append(recEpoch, p[:])
}

// AppendEntry records one admitted routing entry.
func (s *Store) AppendEntry(e Entry) error {
	payload, err := encodeEntry(nil, e)
	if err != nil {
		return err
	}
	return s.append(recEntry, payload)
}

// RemoveSub records the retraction of every entry of one subscription.
func (s *Store) RemoveSub(id msg.SubID) error {
	var p [4]byte
	binary.BigEndian.PutUint32(p[:], uint32(id))
	return s.append(recUnsub, p[:])
}

// SetMark records one peer link's reliable-channel send watermark.
func (s *Store) SetMark(peer msg.NodeID, seq uint64) error {
	var p [12]byte
	binary.BigEndian.PutUint32(p[:], uint32(peer))
	binary.BigEndian.PutUint64(p[4:], seq)
	return s.append(recMark, p[:])
}

// Reset replaces the store's entire recorded state with st and persists
// it as a fresh snapshot. Callers that maintain the authoritative state
// elsewhere (a broker's live routing table) use it to checkpoint that
// state wholesale instead of replaying it through the append API.
func (s *Store) Reset(st State) error {
	if st.Marks == nil {
		st.Marks = make(map[msg.NodeID]uint64)
	}
	s.st = st
	return s.Checkpoint()
}

// Checkpoint compacts the store: the current state is written as a fresh
// snapshot (temp file + rename, fsynced) and the log truncated to empty.
func (s *Store) Checkpoint() error {
	buf := s.buf[:0]
	var p [12]byte
	binary.BigEndian.PutUint32(p[:4], s.st.Epoch)
	buf = appendRecord(buf, recEpoch, p[:4])
	for _, e := range s.st.Entries {
		payload, err := encodeEntry(nil, e)
		if err != nil {
			return err
		}
		buf = appendRecord(buf, recEntry, payload)
	}
	for peer, seq := range s.st.Marks {
		binary.BigEndian.PutUint32(p[:], uint32(peer))
		binary.BigEndian.PutUint64(p[4:], seq)
		buf = appendRecord(buf, recMark, p[:])
	}
	s.buf = buf

	tmp := filepath.Join(s.dir, snapName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapName)); err != nil {
		return err
	}
	if err := s.wal.Truncate(0); err != nil {
		return err
	}
	if _, err := s.wal.Seek(0, 0); err != nil {
		return err
	}
	s.appends = 0
	return nil
}

// Sync flushes the log to stable storage (graceful-drain path).
func (s *Store) Sync() error { return s.wal.Sync() }

// Close syncs and closes the log.
func (s *Store) Close() error {
	if err := s.wal.Sync(); err != nil {
		s.wal.Close()
		return err
	}
	return s.wal.Close()
}
