package durable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"bdps/internal/filter"
	"bdps/internal/msg"
	"bdps/internal/vtime"
)

func testEntry(id msg.SubID, next msg.NodeID) Entry {
	return Entry{
		Sub: &msg.Subscription{
			ID: id, Edge: 4, Deadline: 10 * vtime.Second, Price: 2.5,
			Filter: filter.MustParse(fmt.Sprintf("A1 < %d", id+1)),
		},
		Source: 0, Next: next, Hops: 2, PathID: 0,
		RateMean: 50, RateSigma: 5, Relaxed: 0,
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Empty() {
		t.Error("fresh store not empty")
	}
	if err := s.SetEpoch(3); err != nil {
		t.Fatal(err)
	}
	for i := msg.SubID(0); i < 10; i++ {
		if err := s.AppendEntry(testEntry(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AppendEntry(testEntry(3, msg.None)); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveSub(7); err != nil {
		t.Fatal(err)
	}
	if err := s.SetMark(2, 99); err != nil {
		t.Fatal(err)
	}
	if err := s.SetMark(2, 123); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st := r.State()
	if st.Epoch != 3 {
		t.Errorf("epoch = %d, want 3", st.Epoch)
	}
	if len(st.Entries) != 10 { // 11 appended, sub 7's one entry removed
		t.Fatalf("entries = %d, want 10", len(st.Entries))
	}
	for _, e := range st.Entries {
		if e.Sub.ID == 7 {
			t.Error("removed sub 7 survived replay")
		}
	}
	// Local entry round-trips msg.None through the uint32 encoding.
	last := st.Entries[len(st.Entries)-1]
	if last.Sub.ID != 3 || last.Next != msg.None {
		t.Errorf("local entry = sub %d next %d, want sub 3 next %d", last.Sub.ID, last.Next, msg.None)
	}
	if st.Marks[2] != 123 {
		t.Errorf("mark = %d, want 123 (last write wins)", st.Marks[2])
	}
	if e := st.Entries[0]; e.RateMean != 50 || e.RateSigma != 5 || e.Hops != 2 {
		t.Errorf("entry stats lost: %+v", e)
	}
}

func TestCheckpointCompacts(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetEpoch(1); err != nil {
		t.Fatal(err)
	}
	for i := msg.SubID(0); i < 50; i++ {
		if err := s.AppendEntry(testEntry(i, 2)); err != nil {
			t.Fatal(err)
		}
		if err := s.RemoveSub(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wal, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if len(wal) != 0 {
		t.Errorf("wal %d bytes after checkpoint, want 0", len(wal))
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if st := r.State(); st.Epoch != 1 || len(st.Entries) != 0 {
		t.Errorf("state after compaction = epoch %d, %d entries; want 1, 0", st.Epoch, len(st.Entries))
	}
}

func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.CompactEvery = 8
	for i := msg.SubID(0); i < 20; i++ {
		if err := s.AppendEntry(testEntry(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wal, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	// 20 appends with CompactEvery=8: checkpoints after 8 and 16, so the
	// log holds the 4-record tail.
	if n := countRecords(t, wal); n != 4 {
		t.Errorf("wal holds %d records, want 4", n)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := len(r.State().Entries); got != 20 {
		t.Errorf("entries after auto-compaction = %d, want 20", got)
	}
}

func countRecords(t *testing.T, buf []byte) int {
	t.Helper()
	n, off := 0, 0
	for {
		rn, _, _ := nextRecord(buf[off:])
		if rn == 0 {
			return n
		}
		off += rn
		n++
	}
}

// TestTornTailTruncation corrupts or truncates the log at every offset
// and proves recovery: Open never fails, never panics, and recovers a
// prefix of the appended records — then truncates the file so a second
// Open sees a clean log.
func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := msg.SubID(0); i < 8; i++ {
		if err := s.AppendEntry(testEntry(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walName)
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(full); cut++ {
		if err := os.WriteFile(walPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(dir)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		got := len(r.State().Entries)
		r.Close()
		// Entries recover in order: a prefix of the log is a prefix of
		// the entries, and the recovered count never exceeds the cut.
		var want State
		want.Epoch = 0
		n := Replay(full[:cut], &want)
		if n > cut {
			t.Fatalf("cut %d: replay consumed %d bytes", cut, n)
		}
		if got != len(want.Entries) {
			t.Fatalf("cut %d: recovered %d entries, replay says %d", cut, got, len(want.Entries))
		}
		for i, e := range want.Entries {
			if e.Sub.ID != msg.SubID(i) {
				t.Fatalf("cut %d: entry %d is sub %d (not a prefix)", cut, i, e.Sub.ID)
			}
		}
		// Open truncated the torn tail: the file is now fully valid.
		after, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		var again State
		if consumed := Replay(after, &again); consumed != len(after) {
			t.Fatalf("cut %d: post-recovery log still torn (%d of %d bytes valid)",
				cut, consumed, len(after))
		}
	}
}

// TestBitFlipStopsReplay flips one byte mid-log: replay must stop at or
// before the flipped record and keep everything ahead of it.
func TestBitFlipStopsReplay(t *testing.T) {
	var buf []byte
	for i := msg.SubID(0); i < 8; i++ {
		payload, err := encodeEntry(nil, testEntry(i, 2))
		if err != nil {
			t.Fatal(err)
		}
		buf = appendRecord(buf, recEntry, payload)
	}
	recLen := len(buf) / 8
	for off := 0; off < len(buf); off += 7 {
		mut := bytes.Clone(buf)
		mut[off] ^= 0xA5
		var st State
		Replay(mut, &st)
		// Records ahead of the flipped one always survive.
		if flipped := off / recLen; len(st.Entries) < flipped {
			t.Errorf("flip at %d: recovered %d entries, want ≥ %d", off, len(st.Entries), flipped)
		}
		for i, e := range st.Entries[:min(len(st.Entries), off/recLen)] {
			if e.Sub.ID != msg.SubID(i) {
				t.Errorf("flip at %d: entry %d is sub %d", off, i, e.Sub.ID)
			}
		}
	}
}

// FuzzReplay throws arbitrary bytes at the log decoder: it must never
// panic and must always report a consumed length within bounds that
// itself replays to the same state (decode determinism).
func FuzzReplay(f *testing.F) {
	var seed []byte
	seed = appendRecord(seed, recEpoch, []byte{0, 0, 0, 7})
	payload, err := encodeEntry(nil, testEntry(1, 2))
	if err != nil {
		f.Fatal(err)
	}
	seed = appendRecord(seed, recEntry, payload)
	seed = appendRecord(seed, recUnsub, []byte{0, 0, 0, 1})
	seed = appendRecord(seed, recMark, []byte{0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 9})
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var st State
		n := Replay(data, &st)
		if n < 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		var st2 State
		if m := Replay(data[:n], &st2); m != n {
			t.Fatalf("replay of its own prefix consumed %d, want %d", m, n)
		}
		if len(st2.Entries) != len(st.Entries) || st2.Epoch != st.Epoch {
			t.Fatal("prefix replay diverged from full replay")
		}
	})
}

func BenchmarkWALAppend(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	s.CompactEvery = 1 << 30 // isolate the append path
	e := testEntry(1, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.AppendEntry(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLogReplay(b *testing.B) {
	var buf []byte
	for i := msg.SubID(0); i < 1000; i++ {
		payload, err := encodeEntry(nil, testEntry(i, 2))
		if err != nil {
			b.Fatal(err)
		}
		buf = appendRecord(buf, recEntry, payload)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var st State
		if Replay(buf, &st) != len(buf) {
			b.Fatal("replay stopped early")
		}
	}
}
