package livenet

import (
	"fmt"
	"testing"
	"time"

	"bdps/internal/core"
	"bdps/internal/filter"
	"bdps/internal/msg"
	"bdps/internal/stats"
	"bdps/internal/topology"
	"bdps/internal/vtime"
)

// TestTombstonesBounded pins the unsubscribe tombstone memory bound: a
// million-user churn soak must not leak — the set holds at most two
// generations, evicting the oldest wholesale.
func TestTombstonesBounded(t *testing.T) {
	ts := tombstones{limit: 100}
	for i := 0; i < 1000; i++ {
		ts.add(msg.SubID(i))
	}
	if ts.len() > 200 {
		t.Fatalf("tombstone set holds %d ids, want ≤ 2×limit (200)", ts.len())
	}
	// The most recent limit's worth must still be present.
	for i := 900; i < 1000; i++ {
		if !ts.has(msg.SubID(i)) {
			t.Fatalf("recent tombstone %d evicted", i)
		}
	}
	// The oldest generation is gone.
	if ts.has(0) {
		t.Fatal("ancient tombstone survived generational eviction")
	}
}

// TestNodeChurnStateBounded drives unsubscribe floods through a node and
// checks the per-node churn bookkeeping stays bounded: tombstones by
// generation, seenSubs by deletion on unsubscribe.
func TestNodeChurnStateBounded(t *testing.T) {
	g := topology.NewGraph(2)
	if err := g.AddLink(0, 1, stats.Normal{Mean: 10, Sigma: 1}); err != nil {
		t.Fatal(err)
	}
	ov := &topology.Overlay{Graph: g, Ingress: []msg.NodeID{0}, Edges: []msg.NodeID{1}}
	n, err := NewNode(NodeConfig{
		ID: 1, Overlay: ov, Scenario: msg.PSD,
		Strategy: core.MaxEB{}, TimeScale: 1e-6, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	n.removedSubs.limit = 50

	f := filter.MustParse("A1 < 1")
	for i := 0; i < 500; i++ {
		id := msg.SubID(i)
		n.Subscribe(&msg.Subscription{ID: id, Edge: 1, Filter: f})
		n.Unsubscribe(id)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.removedSubs.len() > 100 {
		t.Fatalf("tombstones grew to %d under churn, want ≤ 100", n.removedSubs.len())
	}
	if len(n.seenSubs) > 0 {
		t.Fatalf("seenSubs retains %d entries after full churn, want 0", len(n.seenSubs))
	}
	if n.table.Len() != 0 {
		t.Fatalf("table retains %d entries after full churn", n.table.Len())
	}
}

// TestClusterChurnSoak floods subscribe/unsubscribe pairs through a
// sharded cluster while a publisher streams messages: a static
// subscriber must keep receiving, the cluster must quiesce, and (under
// -race in CI) concurrent index matching during floods must be clean.
func TestClusterChurnSoak(t *testing.T) {
	g := topology.NewGraph(3)
	for i := 0; i < 2; i++ {
		if err := g.AddLink(msg.NodeID(i), msg.NodeID(i+1), stats.Normal{Mean: 20, Sigma: 2}); err != nil {
			t.Fatal(err)
		}
	}
	edge := msg.NodeID(2)
	c, err := StartCluster(ClusterConfig{
		Overlay:   &topology.Overlay{Graph: g, Ingress: []msg.NodeID{0}, Edges: []msg.NodeID{edge}},
		Scenario:  msg.PSD,
		Strategy:  core.MaxEB{},
		TimeScale: 1e-6,
		Seed:      1,
		Shards:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	static := &msg.Subscription{ID: 1, Edge: edge, Filter: filter.MustParse("A1 < 100")}
	sub, err := DialSubscriber(c.Addr(edge), static)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	time.Sleep(50 * time.Millisecond) // subscription flood

	pub, err := DialPublisher(c.Addr(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	pub.Clock = c.Clock()

	// Churner: flood subscribe/unsubscribe pairs at the edge broker
	// concurrently with publishing.
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		for i := 0; i < 300; i++ {
			id := msg.SubID(1000 + i)
			s := &msg.Subscription{ID: id, Edge: edge,
				Filter: filter.MustParse(fmt.Sprintf("A1 < %d && A2 < 0", i%50))}
			c.Nodes[edge].Subscribe(s)
			c.Nodes[edge].Unsubscribe(id)
		}
	}()

	attrs := msg.NumAttrs(map[string]float64{"A1": 1, "A2": 2})
	const n = 300
	for i := 0; i < n; i++ {
		if _, err := pub.Publish(0, attrs, 1, 60*vtime.Second, nil); err != nil {
			t.Fatal(err)
		}
	}
	<-churnDone

	deadline := time.Now().Add(30 * time.Second)
	idle := 0
	for idle < 2 {
		if time.Now().After(deadline) {
			t.Fatal("cluster did not quiesce under churn")
		}
		if c.Quiescent(n) {
			idle++
		} else {
			idle = 0
		}
		time.Sleep(time.Millisecond)
	}
	got := 0
	for {
		if _, err := sub.Receive(200 * time.Millisecond); err != nil {
			break
		}
		got++
	}
	// The subscriber client drops deliveries when its buffer backs up
	// (slow-consumer policy), so assert on the broker-side counter.
	if s := c.TotalStats(); s.Deliveries != n {
		t.Fatalf("edge broker delivered %d of %d during churn", s.Deliveries, n)
	}
	if got == 0 {
		t.Fatal("static subscriber received nothing during churn")
	}
}
