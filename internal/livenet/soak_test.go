package livenet

import (
	grt "runtime"
	"testing"
	"time"

	"bdps/internal/core"
	"bdps/internal/msg"
	"bdps/internal/runtime"
	"bdps/internal/stats"
	"bdps/internal/topology"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

// soakOverlay is a minimal overlay with a repair option: primary path
// 0-1-3, detour 0-2-3.
func soakOverlay(t testing.TB) *topology.Overlay {
	t.Helper()
	g := topology.NewGraph(4)
	for _, l := range []struct {
		a, b msg.NodeID
		mean float64
	}{{0, 1, 50}, {1, 3, 50}, {0, 2, 90}, {2, 3, 90}} {
		if err := g.AddLink(l.a, l.b, stats.Normal{Mean: l.mean, Sigma: 5}); err != nil {
			t.Fatal(err)
		}
	}
	return &topology.Overlay{Graph: g, Ingress: []msg.NodeID{0}, Edges: []msg.NodeID{3}}
}

// TestRecoverySoakNoGoroutineLeak cycles whole self-healing runs — a
// cluster with heartbeats, a mid-run broker crash, detection, repair,
// drain, shutdown — and requires the goroutine count to return to
// baseline after every cycle: heartbeat senders, monitors and the
// repair goroutine must all be reaped with the cluster. Run under
// -race in CI, this is the recovery plane's concurrency soak.
func TestRecoverySoakNoGoroutineLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated compressed-timescale live cluster runs")
	}
	baseline := grt.NumGoroutine()
	for cycle := 0; cycle < 5; cycle++ {
		cfg := runtime.Config{
			Seed:     uint64(cycle + 1),
			Scenario: msg.PSD,
			Strategy: core.MaxEB{},
			Overlay:  soakOverlay(t),
			Workload: workload.Config{RatePerMin: 12, Duration: 40 * vtime.Second, SubsPerEdge: 8},
			Faults:   []runtime.Fault{runtime.BrokerCrash{ID: 1, At: 10 * vtime.Second}},
			Recovery: runtime.Recovery{
				Detect:            true,
				Renegotiate:       true,
				HeartbeatInterval: vtime.Second,
				HeartbeatTimeout:  6 * vtime.Second,
			},
			// 1 emulated second per 10 wall ms: the 6 s timeout spans 60 ms
			// of wall silence, so concurrent test packages cannot starve a
			// monitor into a false positive.
			TimeScale: 0.01,
		}
		r, err := runtime.Run(cfg, Transport{})
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		// Middle 1 has two outgoing arcs; both surviving neighbors must
		// report, and the repair must land deliveries on the detour.
		if r.Detections < 2 {
			t.Errorf("cycle %d: detections = %d, want ≥ 2", cycle, r.Detections)
		}
		if r.ReroutedPaths == 0 || r.ValidDeliveries == 0 {
			t.Errorf("cycle %d: rerouted %d, valid %d — repair did not take",
				cycle, r.ReroutedPaths, r.ValidDeliveries)
		}

		deadline := time.Now().Add(5 * time.Second)
		for grt.NumGoroutine() > baseline+2 {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				n := grt.Stack(buf, true)
				t.Fatalf("cycle %d: goroutines leaked: %d > baseline %d\n%s",
					cycle, grt.NumGoroutine(), baseline, buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestStopCancelsLinkTimers pins the reliable channel's shutdown story:
// a lossy cluster mid-retransmission holds no timer that outlives Stop.
// The channel resolves whole send chains synchronously — its only
// "timers" are pacing sleeps selecting on the node's stop channel and
// per-link ack readers unblocked by the closing connections — so Stop
// must return promptly and reap every goroutine even with deep queues of
// pending retransmissions. Run under -race in CI, this is the loss
// plane's concurrency soak.
func TestStopCancelsLinkTimers(t *testing.T) {
	if testing.Short() {
		t.Skip("compressed-timescale live cluster run")
	}
	baseline := grt.NumGoroutine()
	c, err := StartCluster(ClusterConfig{
		Overlay:  soakOverlay(t),
		Scenario: msg.PSD,
		Strategy: core.MaxEB{},
		// 2.5 s emulated hop → 25 ms real per attempt: with the backlog
		// below, senders are pacing retransmission chains for several
		// wall seconds when Stop lands.
		TimeScale: 0.01,
		Seed:      1,
		LinkLoss:  &runtime.LinkLoss{Rate: 0.3, Dup: 0.1, Reorder: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := DialPublisher(c.Addr(0), 0)
	if err != nil {
		c.Stop()
		t.Fatal(err)
	}
	attrs := msg.NumAttrs(map[string]float64{"A1": 3, "A2": 1})
	for i := 0; i < 50; i++ {
		if _, err := p.Publish(0, attrs, 50, 5*vtime.Minute, nil); err != nil {
			c.Stop()
			t.Fatal(err)
		}
	}
	// Let the ingress accept the backlog so the link senders are actually
	// mid-chain, then stop with the queues still deep.
	time.Sleep(200 * time.Millisecond)
	p.Close()

	start := time.Now()
	c.Stop()
	if d := time.Since(start); d > 3*time.Second {
		t.Errorf("Stop took %v with pending retransmissions, want prompt return", d)
	}
	deadline := time.Now().Add(5 * time.Second)
	for grt.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := grt.Stack(buf, true)
			t.Fatalf("goroutines leaked after lossy Stop: %d > baseline %d\n%s",
				grt.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
