package livenet

import (
	grt "runtime"
	"testing"
	"time"

	"bdps/internal/core"
	"bdps/internal/msg"
	"bdps/internal/runtime"
	"bdps/internal/stats"
	"bdps/internal/topology"
	"bdps/internal/vtime"
	"bdps/internal/workload"
)

// soakOverlay is a minimal overlay with a repair option: primary path
// 0-1-3, detour 0-2-3.
func soakOverlay(t testing.TB) *topology.Overlay {
	t.Helper()
	g := topology.NewGraph(4)
	for _, l := range []struct {
		a, b msg.NodeID
		mean float64
	}{{0, 1, 50}, {1, 3, 50}, {0, 2, 90}, {2, 3, 90}} {
		if err := g.AddLink(l.a, l.b, stats.Normal{Mean: l.mean, Sigma: 5}); err != nil {
			t.Fatal(err)
		}
	}
	return &topology.Overlay{Graph: g, Ingress: []msg.NodeID{0}, Edges: []msg.NodeID{3}}
}

// TestRecoverySoakNoGoroutineLeak cycles whole self-healing runs — a
// cluster with heartbeats, a mid-run broker crash, detection, repair,
// drain, shutdown — and requires the goroutine count to return to
// baseline after every cycle: heartbeat senders, monitors and the
// repair goroutine must all be reaped with the cluster. Run under
// -race in CI, this is the recovery plane's concurrency soak.
func TestRecoverySoakNoGoroutineLeak(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated compressed-timescale live cluster runs")
	}
	baseline := grt.NumGoroutine()
	for cycle := 0; cycle < 5; cycle++ {
		cfg := runtime.Config{
			Seed:     uint64(cycle + 1),
			Scenario: msg.PSD,
			Strategy: core.MaxEB{},
			Overlay:  soakOverlay(t),
			Workload: workload.Config{RatePerMin: 12, Duration: 40 * vtime.Second, SubsPerEdge: 8},
			Faults:   []runtime.Fault{runtime.BrokerCrash{ID: 1, At: 10 * vtime.Second}},
			Recovery: runtime.Recovery{
				Detect:            true,
				Renegotiate:       true,
				HeartbeatInterval: vtime.Second,
				HeartbeatTimeout:  6 * vtime.Second,
			},
			// 1 emulated second per 10 wall ms: the 6 s timeout spans 60 ms
			// of wall silence, so concurrent test packages cannot starve a
			// monitor into a false positive.
			TimeScale: 0.01,
		}
		r, err := runtime.Run(cfg, Transport{})
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		// Middle 1 has two outgoing arcs; both surviving neighbors must
		// report, and the repair must land deliveries on the detour.
		if r.Detections < 2 {
			t.Errorf("cycle %d: detections = %d, want ≥ 2", cycle, r.Detections)
		}
		if r.ReroutedPaths == 0 || r.ValidDeliveries == 0 {
			t.Errorf("cycle %d: rerouted %d, valid %d — repair did not take",
				cycle, r.ReroutedPaths, r.ValidDeliveries)
		}

		deadline := time.Now().Add(5 * time.Second)
		for grt.NumGoroutine() > baseline+2 {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				n := grt.Stack(buf, true)
				t.Fatalf("cycle %d: goroutines leaked: %d > baseline %d\n%s",
					cycle, grt.NumGoroutine(), baseline, buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}
