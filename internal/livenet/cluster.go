package livenet

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"bdps/internal/core"
	"bdps/internal/msg"
	"bdps/internal/runtime"
	"bdps/internal/topology"
)

// ClusterConfig starts every broker of an overlay in one process, on
// loopback TCP — the quickest way to run the live system end to end.
//
// Two modes: with Plan set, the cluster is a static deployment of a
// runtime.Plan (pre-assembled brokers, routing tables, multipath, dedup,
// plan link pacers) and the remaining fields are derived from the plan.
// Without a plan, brokers start with empty tables and subscriptions
// flood dynamically.
type ClusterConfig struct {
	Overlay  *topology.Overlay
	Scenario msg.Scenario
	Params   core.Params
	Strategy core.Strategy
	// TimeScale compresses emulated link delays (see NodeConfig).
	TimeScale float64
	Seed      uint64

	// Plan deploys a pre-assembled runtime plan (static mode).
	Plan *runtime.Plan
	// Clock is the shared time base; nil means the absolute wall clock
	// at scale 1 (the historical livenet behavior).
	Clock runtime.Clock
	// Sink, when non-nil, receives every node's delivery-side metric
	// events; it must be safe for concurrent use (runtime.Locked).
	Sink runtime.Sink
	// Multipath > 1 makes dynamic subscription floods install K paths
	// (static mode takes multipath from the plan instead).
	Multipath int
	// Aggregate enables covering-based subscription aggregation on every
	// node (static mode takes it from the plan's config instead).
	Aggregate bool

	// Shards ≥ 1 runs every node on the high-throughput data plane with
	// that many ingress worker shards (see NodeConfig.Shards); 0 keeps
	// the classic single-threaded plane.
	Shards int
	// Burst caps the egress burst size on the sharded plane (default 32).
	Burst int

	// LinkLoss, in standalone (no-plan) mode, injects one loss adversary
	// spec on every overlay arc — the loadgen's way of driving the same
	// fault model at full rate. Plan deployments derive per-arc
	// adversaries from the plan's LinkLoss faults instead and ignore it.
	LinkLoss *runtime.LinkLoss
	// Reliability tunes the reliable channel in standalone mode (plan
	// mode takes it from the plan's config).
	Reliability runtime.Reliability

	// MaxEgress bounds every node's total output-queue occupancy on the
	// sharded plane (see NodeConfig.MaxEgress); 0 disables backpressure.
	MaxEgress int
	// Admission enables node-local online admission control on every
	// node in standalone mode (see NodeConfig.Admission). Plan
	// deployments gate admission in the plan instead and ignore it.
	Admission runtime.Admission

	// StateRoot, when set, gives every broker a durable state directory
	// (StateRoot/broker-<id>) — the write-ahead log and snapshots that
	// let a crashed broker warm-rejoin via RestartNode. Plan deployments
	// checkpoint each broker's deployed routing table into it at start.
	StateRoot string

	// Heartbeat enables per-link failure detection on every node.
	Heartbeat HeartbeatConfig
	// OnPeerEvent receives every node's liveness transitions (the
	// transport's repair loop consumes them). Called from monitor
	// goroutines; must be safe for concurrent use.
	OnPeerEvent func(PeerEvent)
}

// Cluster is a set of live brokers started together. The Nodes map is
// stable for read-only use from tests; concurrent access while broker
// restarts are in play goes through Node(), which takes the cluster
// lock.
type Cluster struct {
	Nodes map[msg.NodeID]*Node
	addrs map[msg.NodeID]string
	clock runtime.Clock

	// mu guards Nodes and addrs against RestartNode swapping entries
	// while drain polls and fault timers read them.
	mu sync.RWMutex
	// nodeCfgs retains each broker's construction config so RestartNode
	// can rebuild a fresh incarnation.
	nodeCfgs map[msg.NodeID]NodeConfig
}

// StartCluster listens all brokers on ephemeral loopback ports, then
// connects every overlay link. On error, everything already started is
// stopped.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Plan != nil {
		cfg.Overlay = cfg.Plan.Overlay
		cfg.Scenario = cfg.Plan.Cfg.Scenario
		cfg.Params = cfg.Plan.Cfg.Params
		cfg.Strategy = cfg.Plan.Cfg.Strategy
		cfg.Seed = cfg.Plan.Cfg.Seed
		cfg.Multipath = cfg.Plan.Cfg.Multipath
		cfg.Aggregate = cfg.Plan.Cfg.Aggregate
		if cfg.TimeScale <= 0 {
			cfg.TimeScale = cfg.Plan.Cfg.TimeScale
		}
	}
	if cfg.Overlay == nil {
		return nil, fmt.Errorf("livenet: nil overlay")
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	if cfg.Clock == nil {
		if cfg.Plan != nil {
			// A plan's publication schedule starts near emulated time 0,
			// so a plan cluster needs an anchored, compressed clock — the
			// absolute wall clock would judge every delivery as eons
			// late.
			cfg.Clock = runtime.NewWallClock(cfg.TimeScale)
		} else {
			cfg.Clock = runtime.AbsoluteWallClock(1)
		}
	}
	// Per-node pacers from the plan's deterministic link enumeration, so
	// live links draw the same rate sequences the simulator would — and,
	// from the same enumeration, each arc's loss adversary and retry
	// policy, so live links face the simulator's exact fault decisions.
	pacers := make(map[msg.NodeID]map[msg.NodeID]Pacer)
	loss := make(map[msg.NodeID]map[msg.NodeID]*runtime.LossModel)
	retry := make(map[msg.NodeID]map[msg.NodeID]runtime.RetryPolicy)
	armLoss := func(from, to msg.NodeID, lm *runtime.LossModel, rp runtime.RetryPolicy) {
		if loss[from] == nil {
			loss[from] = make(map[msg.NodeID]*runtime.LossModel)
			retry[from] = make(map[msg.NodeID]runtime.RetryPolicy)
		}
		loss[from][to] = lm
		retry[from][to] = rp
	}
	rel := cfg.Reliability.Defaulted()
	if cfg.Plan != nil {
		rel = cfg.Plan.Cfg.Reliability
		for _, l := range cfg.Plan.Links {
			if pacers[l.From] == nil {
				pacers[l.From] = make(map[msg.NodeID]Pacer)
			}
			pacers[l.From][l.To] = Pacer{
				Sampler: cfg.Plan.Sampler(l),
				Stream:  cfg.Plan.LinkStream(l),
			}
			if lm := cfg.Plan.LossModel(l); lm != nil {
				armLoss(l.From, l.To, lm, cfg.Plan.RetryPolicy(l))
			}
		}
	} else if cfg.LinkLoss != nil {
		// Standalone wildcard adversary: enumerate arcs exactly like the
		// plan (sorted) so the per-link decision streams are seed-stable.
		arcs := cfg.Overlay.Graph.Arcs()
		sort.Slice(arcs, func(i, j int) bool {
			if arcs[i][0] != arcs[j][0] {
				return arcs[i][0] < arcs[j][0]
			}
			return arcs[i][1] < arcs[j][1]
		})
		for i, arc := range arcs {
			belief, _ := cfg.Overlay.Graph.Rate(arc[0], arc[1])
			armLoss(arc[0], arc[1],
				runtime.NewLossModel(cfg.Seed, i, *cfg.LinkLoss),
				runtime.RetryPolicy{
					Enabled:       !rel.NoRetry,
					DeadlineAware: !rel.BlindRetry,
					MaxAttempts:   rel.MaxAttempts,
					SuccessTarget: rel.SuccessTarget,
					Belief:        belief,
					PD:            cfg.Params.PD,
				})
		}
	}
	c := &Cluster{
		Nodes:    make(map[msg.NodeID]*Node),
		addrs:    make(map[msg.NodeID]string),
		clock:    cfg.Clock,
		nodeCfgs: make(map[msg.NodeID]NodeConfig),
	}
	fail := func(err error) (*Cluster, error) {
		c.Stop()
		return nil, err
	}
	for id := 0; id < cfg.Overlay.Graph.N(); id++ {
		nid := msg.NodeID(id)
		nc := NodeConfig{
			ID:          nid,
			Overlay:     cfg.Overlay,
			Scenario:    cfg.Scenario,
			Params:      cfg.Params,
			Strategy:    cfg.Strategy,
			TimeScale:   cfg.TimeScale,
			Seed:        cfg.Seed,
			Multipath:   cfg.Multipath,
			Aggregate:   cfg.Aggregate,
			Clock:       cfg.Clock,
			Sink:        cfg.Sink,
			Pacers:      pacers[nid],
			Loss:        loss[nid],
			Retry:       retry[nid],
			AckEvery:    rel.AckEvery,
			RetxWindow:  rel.Window,
			Shards:      cfg.Shards,
			Burst:       cfg.Burst,
			MaxEgress:   cfg.MaxEgress,
			Heartbeat:   cfg.Heartbeat,
			OnPeerEvent: cfg.OnPeerEvent,
		}
		if cfg.StateRoot != "" {
			nc.StateDir = filepath.Join(cfg.StateRoot, fmt.Sprintf("broker-%d", id))
		}
		if cfg.Plan != nil {
			nc.Broker = cfg.Plan.Brokers[nid]
			nc.Preinstalled = cfg.Plan.Subs
		} else {
			nc.Admission = cfg.Admission
		}
		c.nodeCfgs[nid] = nc
		n, err := NewNode(nc)
		if err != nil {
			return fail(err)
		}
		addr, err := n.Listen("127.0.0.1:0")
		if err != nil {
			return fail(err)
		}
		c.Nodes[nid] = n
		c.addrs[nid] = addr
	}
	for _, n := range c.Nodes {
		if err := n.ConnectPeers(c.addrs); err != nil {
			return fail(err)
		}
	}
	if cfg.StateRoot != "" {
		// Deploy-time checkpoint: the WAL a crashed broker recovers is the
		// deployed routing state plus its reliable-link send watermarks
		// (registered by ConnectPeers just above).
		for _, n := range c.Nodes {
			if err := n.CheckpointTable(); err != nil {
				return fail(err)
			}
		}
	}
	return c, nil
}

// Node returns one broker under the cluster lock — the accessor to use
// while RestartNode may be swapping incarnations concurrently.
func (c *Cluster) Node(id msg.NodeID) *Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.Nodes[id]
}

// RestartNode replaces a crashed broker with a fresh incarnation
// recovered from its durable state directory: a new node (new listener,
// new epoch, routing table and send watermarks replayed from the WAL),
// swapped into the cluster, connected out to its neighbors, and
// re-dialed by them at its new address. onReady, when non-nil, runs
// after the new node is swapped in but before any connection exists —
// the transport hooks its plan-map swap and repair-engine notification
// there, so by the time frames flow the whole control plane already
// addresses the new incarnation. Requires a StateRoot-configured
// cluster.
func (c *Cluster) RestartNode(id msg.NodeID, onReady func(*Node)) (*Node, error) {
	c.mu.Lock()
	nc, ok := c.nodeCfgs[id]
	old := c.Nodes[id]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("livenet: no retained config for broker %d", id)
	}
	if nc.StateDir == "" {
		return nil, fmt.Errorf("livenet: broker %d has no state directory to recover from", id)
	}
	if old != nil && !old.Stopped() {
		// A restart without a preceding crash fault: take the broker down
		// the hard way first (no checkpoint — recovery works from the log).
		old.Crash()
	}
	// A fresh incarnation builds its own broker and reinstalls the
	// recovered entries itself (NewNode's dynamic path); the plan's
	// original broker object died with the old process.
	nc.Broker = nil
	n, err := NewNode(nc)
	if err != nil {
		return nil, err
	}
	addr, err := n.Listen("127.0.0.1:0")
	if err != nil {
		n.Stop()
		return nil, err
	}
	c.mu.Lock()
	c.Nodes[id] = n
	c.addrs[id] = addr
	addrs := make(map[msg.NodeID]string, len(c.addrs))
	for k, v := range c.addrs {
		addrs[k] = v
	}
	c.mu.Unlock()
	if onReady != nil {
		onReady(n)
	}
	if err := n.ConnectPeers(addrs); err != nil {
		n.Stop()
		return n, err
	}
	// Surviving neighbors swap their connections to the reborn broker's
	// new address; their heartbeat monitors then see it alive again.
	for _, e := range nc.Overlay.Graph.Neighbors(id) {
		if nb := c.Node(e.To); nb != nil && !nb.Stopped() {
			if err := nb.ReconnectPeer(id, addr); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

// Addr returns the TCP address of a broker.
func (c *Cluster) Addr(id msg.NodeID) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.addrs[id]
}

// Clock returns the cluster's shared time base. Clients that stamp or
// judge message times (publishers, subscribers) must use it.
func (c *Cluster) Clock() runtime.Clock { return c.clock }

// snapshotNodes copies the current node set under the cluster lock so
// iterating methods never race a concurrent restart's map swap.
func (c *Cluster) snapshotNodes() []*Node {
	c.mu.RLock()
	defer c.mu.RUnlock()
	nodes := make([]*Node, 0, len(c.Nodes))
	for _, n := range c.Nodes {
		nodes = append(nodes, n)
	}
	return nodes
}

// Stop shuts every broker down.
func (c *Cluster) Stop() {
	for _, n := range c.snapshotNodes() {
		n.Stop()
	}
}

// TotalStats sums the per-node counters.
func (c *Cluster) TotalStats() Stats {
	var total Stats
	for _, n := range c.snapshotNodes() {
		s := n.Stats()
		total.Receptions += s.Receptions
		total.Deliveries += s.Deliveries
		total.ValidDeliver += s.ValidDeliver
		total.DropsExpired += s.DropsExpired
		total.DropsHopeless += s.DropsHopeless
		total.DropsArrival += s.DropsArrival
		total.Duplicates += s.Duplicates
		total.FramesLost += s.FramesLost
		total.Retransmits += s.Retransmits
		total.DupsSuppressed += s.DupsSuppressed
		total.ReorderedHealed += s.ReorderedHealed
		total.DroppedDeadline += s.DroppedDeadline
		total.FloodsSuppressed += s.FloodsSuppressed
		total.DropsShed += s.DropsShed
		total.PubsRejected += s.PubsRejected
		total.StaleEpochFrames += s.StaleEpochFrames
		total.SessionsResumed += s.SessionsResumed
		total.MsgsReplayed += s.MsgsReplayed
	}
	return total
}

// AggregatedEntries sums the per-node aggregated-entry counts (live
// routing entries standing for more than one concrete subscription).
func (c *Cluster) AggregatedEntries() int {
	total := 0
	for _, n := range c.snapshotNodes() {
		total += n.AggregatedEntries()
	}
	return total
}

// PeakQueue returns the largest output-queue occupancy any broker
// reached.
func (c *Cluster) PeakQueue() int {
	peak := 0
	for _, n := range c.snapshotNodes() {
		if p := n.PeakQueue(); p > peak {
			peak = p
		}
	}
	return peak
}

// Quiescent reports whether the cluster has gone idle after `injected`
// publisher messages: every injected frame accepted, every
// broker-to-broker frame received, no receive or transfer in progress
// and every output queue empty. A true result can race a frame sitting
// in a kernel socket buffer only between a sender's write and the
// peer's read — the sent/received totals close exactly that window.
func (c *Cluster) Quiescent(injected int) bool {
	var sent, recv, pubs int64
	for _, n := range c.snapshotNodes() {
		s := n.load()
		if s.busy > 0 || s.inflight > 0 || s.queued > 0 {
			return false
		}
		sent += s.sentPeers
		recv += s.recvPeers
		pubs += s.recvPubs
	}
	return pubs >= int64(injected) && sent == recv
}

// Settled reports whether every still-running node is locally idle: no
// transfer pacing, no receive in progress, no queued work. Unlike
// Quiescent it ignores the cross-node frame totals (a crashed broker
// never accounts its inbound frames), so it is the idleness half of the
// faulty-run drain check.
func (c *Cluster) Settled() bool {
	for _, n := range c.snapshotNodes() {
		if n.Stopped() {
			continue
		}
		s := n.load()
		if s.busy > 0 || s.inflight > 0 || s.queued > 0 {
			return false
		}
	}
	return true
}

// LoadReport renders every node's quiescence counters — the evidence to
// attach when a drain loop times out waiting for Quiescent or Settled.
func (c *Cluster) LoadReport() string {
	var b strings.Builder
	for _, n := range c.snapshotNodes() {
		s := n.load()
		fmt.Fprintf(&b, "broker %d%s: busy=%d inflight=%d queued=%d sent=%d recvPeers=%d recvPubs=%d\n",
			n.ID(), map[bool]string{true: " (stopped)"}[n.Stopped()],
			s.busy, s.inflight, s.queued, s.sentPeers, s.recvPeers, s.recvPubs)
	}
	return b.String()
}
