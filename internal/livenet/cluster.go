package livenet

import (
	"fmt"

	"bdps/internal/core"
	"bdps/internal/msg"
	"bdps/internal/topology"
)

// ClusterConfig starts every broker of an overlay in one process, on
// loopback TCP — the quickest way to run the live system end to end.
type ClusterConfig struct {
	Overlay  *topology.Overlay
	Scenario msg.Scenario
	Params   core.Params
	Strategy core.Strategy
	// TimeScale compresses emulated link delays (see NodeConfig).
	TimeScale float64
	Seed      uint64
}

// Cluster is a set of live brokers started together.
type Cluster struct {
	Nodes map[msg.NodeID]*Node
	addrs map[msg.NodeID]string
}

// StartCluster listens all brokers on ephemeral loopback ports, then
// connects every overlay link. On error, everything already started is
// stopped.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Overlay == nil {
		return nil, fmt.Errorf("livenet: nil overlay")
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	c := &Cluster{
		Nodes: make(map[msg.NodeID]*Node),
		addrs: make(map[msg.NodeID]string),
	}
	fail := func(err error) (*Cluster, error) {
		c.Stop()
		return nil, err
	}
	for id := 0; id < cfg.Overlay.Graph.N(); id++ {
		nid := msg.NodeID(id)
		n, err := NewNode(NodeConfig{
			ID:        nid,
			Overlay:   cfg.Overlay,
			Scenario:  cfg.Scenario,
			Params:    cfg.Params,
			Strategy:  cfg.Strategy,
			TimeScale: cfg.TimeScale,
			Seed:      cfg.Seed,
		})
		if err != nil {
			return fail(err)
		}
		addr, err := n.Listen("127.0.0.1:0")
		if err != nil {
			return fail(err)
		}
		c.Nodes[nid] = n
		c.addrs[nid] = addr
	}
	for _, n := range c.Nodes {
		if err := n.ConnectPeers(c.addrs); err != nil {
			return fail(err)
		}
	}
	return c, nil
}

// Addr returns the TCP address of a broker.
func (c *Cluster) Addr(id msg.NodeID) string { return c.addrs[id] }

// Stop shuts every broker down.
func (c *Cluster) Stop() {
	for _, n := range c.Nodes {
		n.Stop()
	}
}

// TotalStats sums the per-node counters.
func (c *Cluster) TotalStats() Stats {
	var total Stats
	for _, n := range c.Nodes {
		s := n.Stats()
		total.Receptions += s.Receptions
		total.Deliveries += s.Deliveries
		total.ValidDeliver += s.ValidDeliver
		total.DropsExpired += s.DropsExpired
		total.DropsHopeless += s.DropsHopeless
		total.DropsArrival += s.DropsArrival
		total.Duplicates += s.Duplicates
	}
	return total
}
