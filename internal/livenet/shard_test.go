package livenet

import (
	"fmt"
	"testing"
	"time"

	"bdps/internal/core"
	"bdps/internal/filter"
	"bdps/internal/msg"
	"bdps/internal/vtime"
)

// runOrderedWorkload drives two publication streams through a chain
// cluster under FIFO scheduling and returns, per publisher, the
// sequence numbers in the order the subscriber received them.
func runOrderedWorkload(t *testing.T, shards, perPub int) map[msg.NodeID][]uint32 {
	t.Helper()
	c, err := StartCluster(ClusterConfig{
		Overlay:  tinyOverlay(t),
		Scenario: msg.PSD,
		// FIFO: per-queue service order equals arrival order, so the
		// end-to-end per-stream order is fully determined — any
		// reordering can only come from the ingress plane under test.
		Strategy:  core.FIFO{},
		TimeScale: 0.002,
		Seed:      1,
		Shards:    shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	sub := &msg.Subscription{ID: 1, Edge: 2, Filter: &filter.Filter{}}
	s, err := DialSubscriber(c.Addr(2), sub)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	time.Sleep(100 * time.Millisecond) // subscription flood

	pubs := []*Publisher{}
	for id := msg.NodeID(0); id < 2; id++ {
		p, err := DialPublisher(c.Addr(0), id)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		pubs = append(pubs, p)
	}
	// Interleave the two streams the way concurrent publishers would.
	for i := 0; i < perPub; i++ {
		for _, p := range pubs {
			if _, err := p.Publish(0, msg.NumAttrs(map[string]float64{"A1": float64(i)}),
				2, 60*vtime.Second, nil); err != nil {
				t.Fatal(err)
			}
		}
	}

	got := make(map[msg.NodeID][]uint32)
	for i := 0; i < 2*perPub; i++ {
		m, err := s.Receive(5 * time.Second)
		if err != nil {
			t.Fatalf("delivery %d/%d: %v", i, 2*perPub, err)
		}
		seq := uint32(uint64(m.ID)) // low 32 bits: per-publisher sequence
		got[m.Publisher] = append(got[m.Publisher], seq)
	}
	return got
}

// TestShardedPerStreamOrderMatchesSerial is the sharded ingress's
// correctness pin: with shards enabled, every message must still be
// delivered exactly once and each publication stream must arrive at the
// subscriber in publication order — exactly what the single-threaded
// plane guarantees. Run with -race this also exercises the concurrent
// Processor/queue/dedup paths.
func TestShardedPerStreamOrderMatchesSerial(t *testing.T) {
	const perPub = 40
	for _, shards := range []int{0, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			got := runOrderedWorkload(t, shards, perPub)
			if len(got) != 2 {
				t.Fatalf("deliveries from %d publishers, want 2", len(got))
			}
			for pub, seqs := range got {
				if len(seqs) != perPub {
					t.Errorf("publisher %d: %d deliveries, want %d", pub, len(seqs), perPub)
				}
				for i := 1; i < len(seqs); i++ {
					if seqs[i] <= seqs[i-1] {
						t.Fatalf("publisher %d: stream reordered at %d: %d after %d",
							pub, i, seqs[i], seqs[i-1])
					}
				}
			}
		})
	}
}

// TestShardedPayloadDelivery pins the zero-copy path end to end: a
// payload decoded aliasing a pooled frame buffer must arrive intact at
// the subscriber after transiting two pooled re-encodes.
func TestShardedPayloadDelivery(t *testing.T) {
	c, err := StartCluster(ClusterConfig{
		Overlay:   tinyOverlay(t),
		Scenario:  msg.PSD,
		Strategy:  core.MaxEB{},
		TimeScale: 0.002,
		Seed:      1,
		Shards:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	sub := &msg.Subscription{ID: 1, Edge: 2, Filter: &filter.Filter{}}
	s, err := DialSubscriber(c.Addr(2), sub)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	time.Sleep(100 * time.Millisecond)

	p, err := DialPublisher(c.Addr(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	payload := []byte("the-payload-must-survive-pooled-frames")
	want, err := p.Publish(0, msg.NumAttrs(map[string]float64{"A1": 1}), 10, 60*vtime.Second, payload)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Receive(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != want {
		t.Fatalf("delivered id %d, want %d", m.ID, want)
	}
	if string(m.Payload) != string(payload) {
		t.Fatalf("payload corrupted: %q", m.Payload)
	}
}
