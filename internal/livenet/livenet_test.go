package livenet

import (
	"testing"
	"time"

	"bdps/internal/core"
	"bdps/internal/filter"
	"bdps/internal/msg"
	"bdps/internal/stats"
	"bdps/internal/topology"
	"bdps/internal/vtime"
)

// tinyOverlay: 0 (ingress) — 1 — 2 (edge), fast emulation.
func tinyOverlay(t *testing.T) *topology.Overlay {
	t.Helper()
	g := topology.NewGraph(3)
	if err := g.AddLink(0, 1, stats.Normal{Mean: 50, Sigma: 5}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(1, 2, stats.Normal{Mean: 50, Sigma: 5}); err != nil {
		t.Fatal(err)
	}
	return &topology.Overlay{
		Graph:   g,
		Ingress: []msg.NodeID{0},
		Edges:   []msg.NodeID{2},
	}
}

func startTinyCluster(t *testing.T, scenario msg.Scenario) *Cluster {
	t.Helper()
	c, err := StartCluster(ClusterConfig{
		Overlay:   tinyOverlay(t),
		Scenario:  scenario,
		Strategy:  core.MaxEB{},
		TimeScale: 0.002, // 2.5 s emulated hop → 5 ms real
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func TestLiveEndToEndPSD(t *testing.T) {
	c := startTinyCluster(t, msg.PSD)

	sub := &msg.Subscription{ID: 1, Edge: 2, Filter: filter.MustParse("A1 < 5")}
	s, err := DialSubscriber(c.Addr(2), sub)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	time.Sleep(100 * time.Millisecond) // subscription flood

	p, err := DialPublisher(c.Addr(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	attrs := msg.NumAttrs(map[string]float64{"A1": 3, "A2": 1})
	id, err := p.Publish(0, attrs, 50, 20*vtime.Second, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}

	m, err := s.Receive(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != id {
		t.Errorf("delivered id %d, want %d", m.ID, id)
	}
	if string(m.Payload) != "payload" {
		t.Errorf("payload = %q", m.Payload)
	}
	if !s.Valid(m, msg.PSD) {
		t.Error("delivery should be within the 20 s bound")
	}
}

func TestLiveFilteringAndNonMatch(t *testing.T) {
	c := startTinyCluster(t, msg.PSD)

	sub := &msg.Subscription{ID: 1, Edge: 2, Filter: filter.MustParse("A1 < 5")}
	s, err := DialSubscriber(c.Addr(2), sub)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	time.Sleep(100 * time.Millisecond)

	p, err := DialPublisher(c.Addr(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Non-matching then matching.
	noMatch := msg.NumAttrs(map[string]float64{"A1": 7})
	match := msg.NumAttrs(map[string]float64{"A1": 2})
	if _, err := p.Publish(0, noMatch, 50, 20*vtime.Second, nil); err != nil {
		t.Fatal(err)
	}
	want, err := p.Publish(0, match, 50, 20*vtime.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Receive(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != want {
		t.Errorf("got id %d, want only the matching message %d", m.ID, want)
	}
	// No second delivery.
	if extra, err := s.Receive(300 * time.Millisecond); err == nil {
		t.Errorf("unexpected delivery %d", extra.ID)
	}
}

func TestLiveSSDMultipleTiers(t *testing.T) {
	c := startTinyCluster(t, msg.SSD)

	gold := &msg.Subscription{ID: 1, Edge: 2, Filter: filter.MustParse("A1 < 9"),
		Deadline: 10 * vtime.Second, Price: 3}
	econ := &msg.Subscription{ID: 2, Edge: 2, Filter: filter.MustParse("A1 < 9"),
		Deadline: 60 * vtime.Second, Price: 1}
	s1, err := DialSubscriber(c.Addr(2), gold)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := DialSubscriber(c.Addr(2), econ)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	time.Sleep(100 * time.Millisecond)

	p, err := DialPublisher(c.Addr(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Publish(0, msg.NumAttrs(map[string]float64{"A1": 1}), 50, 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Receive(5 * time.Second); err != nil {
		t.Errorf("gold tier: %v", err)
	}
	if _, err := s2.Receive(5 * time.Second); err != nil {
		t.Errorf("econ tier: %v", err)
	}
}

func TestLiveStatsAccumulate(t *testing.T) {
	c := startTinyCluster(t, msg.PSD)
	sub := &msg.Subscription{ID: 1, Edge: 2, Filter: filter.MustParse("A1 < 5")}
	s, err := DialSubscriber(c.Addr(2), sub)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	time.Sleep(100 * time.Millisecond)

	p, err := DialPublisher(c.Addr(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 3; i++ {
		if _, err := p.Publish(0, msg.NumAttrs(map[string]float64{"A1": 1}), 50, 20*vtime.Second, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Receive(5 * time.Second); err != nil {
			t.Fatalf("delivery %d: %v", i, err)
		}
	}
	total := c.TotalStats()
	// 3 messages × 3 brokers on the path.
	if total.Receptions != 9 {
		t.Errorf("receptions = %d, want 9", total.Receptions)
	}
	if total.ValidDeliver != 3 {
		t.Errorf("valid deliveries = %d, want 3", total.ValidDeliver)
	}
}

func TestLivePublisherWrongIngressRejected(t *testing.T) {
	c := startTinyCluster(t, msg.PSD)
	sub := &msg.Subscription{ID: 1, Edge: 2, Filter: &filter.Filter{}}
	s, err := DialSubscriber(c.Addr(2), sub)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	time.Sleep(100 * time.Millisecond)

	// Dial broker 1 (not an ingress) and claim ingress 0: must be dropped.
	p, err := DialPublisher(c.Addr(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Publish(0, msg.NumAttrs(map[string]float64{"A1": 1}), 50, 20*vtime.Second, nil); err != nil {
		t.Fatal(err)
	}
	if m, err := s.Receive(400 * time.Millisecond); err == nil {
		t.Errorf("message %d should have been rejected", m.ID)
	}
}

func TestLiveExpiredMessageNotDelivered(t *testing.T) {
	c := startTinyCluster(t, msg.PSD)
	sub := &msg.Subscription{ID: 1, Edge: 2, Filter: &filter.Filter{}}
	s, err := DialSubscriber(c.Addr(2), sub)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	time.Sleep(100 * time.Millisecond)

	p, err := DialPublisher(c.Addr(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// 1 ms allowed delay: expires before it can cross two emulated hops.
	if _, err := p.Publish(0, msg.NumAttrs(map[string]float64{"A1": 1}), 50, 1, nil); err != nil {
		t.Fatal(err)
	}
	if m, err := s.Receive(500 * time.Millisecond); err == nil {
		// Delivery may occur if pruning raced the deadline — but it must
		// then be invalid.
		if s.Valid(m, msg.PSD) {
			t.Error("expired message delivered as valid")
		}
	}
}

func TestLiveBrokerCrashDoesNotWedgeOthers(t *testing.T) {
	c := startTinyCluster(t, msg.PSD)
	sub := &msg.Subscription{ID: 1, Edge: 2, Filter: &filter.Filter{}}
	s, err := DialSubscriber(c.Addr(2), sub)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	time.Sleep(100 * time.Millisecond)

	// Kill the middle broker; the path 0→1→2 is severed.
	c.Nodes[1].Stop()

	p, err := DialPublisher(c.Addr(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Publish(0, msg.NumAttrs(map[string]float64{"A1": 1}), 50, 2*vtime.Second, nil); err != nil {
		t.Fatal(err)
	}
	// No delivery — and no deadlock: Stop on the rest must return.
	if m, err := s.Receive(400 * time.Millisecond); err == nil {
		t.Errorf("unexpected delivery %d through a dead broker", m.ID)
	}
	done := make(chan struct{})
	go func() {
		c.Nodes[0].Stop()
		c.Nodes[2].Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop deadlocked after broker crash")
	}
}

func TestLivePaperTopologyCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("full 32-broker live cluster")
	}
	ov, err := topology.BuildLayered(topology.LayeredConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	c, err := StartCluster(ClusterConfig{
		Overlay:   ov,
		Scenario:  msg.PSD,
		Strategy:  core.MaxEB{},
		TimeScale: 0.001,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// One subscriber on each of four edge brokers.
	var subs []*Subscriber
	for i, edge := range ov.Edges[:4] {
		sub := &msg.Subscription{ID: msg.SubID(i + 1), Edge: edge, Filter: &filter.Filter{}}
		s, err := DialSubscriber(c.Addr(edge), sub)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		subs = append(subs, s)
	}
	time.Sleep(300 * time.Millisecond)

	p, err := DialPublisher(c.Addr(ov.Ingress[0]), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Publish(ov.Ingress[0], msg.NumAttrs(map[string]float64{"A1": 1, "A2": 1}),
		50, 30*vtime.Second, nil); err != nil {
		t.Fatal(err)
	}
	for i, s := range subs {
		if _, err := s.Receive(10 * time.Second); err != nil {
			t.Errorf("subscriber %d: %v", i, err)
		}
	}
}

func TestLiveUnsubscribeStopsDeliveries(t *testing.T) {
	c := startTinyCluster(t, msg.PSD)
	sub := &msg.Subscription{ID: 1, Edge: 2, Filter: &filter.Filter{}}
	s, err := DialSubscriber(c.Addr(2), sub)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	time.Sleep(100 * time.Millisecond)

	p, err := DialPublisher(c.Addr(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Deliveries flow while subscribed.
	if _, err := p.Publish(0, msg.NumAttrs(map[string]float64{"A1": 1}), 50, 20*vtime.Second, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Receive(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Withdraw and let the removal flood.
	if err := s.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)

	if _, err := p.Publish(0, msg.NumAttrs(map[string]float64{"A1": 1}), 50, 20*vtime.Second, nil); err != nil {
		t.Fatal(err)
	}
	if m, err := s.Receive(500 * time.Millisecond); err == nil {
		t.Errorf("delivery %d after unsubscribe", m.ID)
	}

	// The ingress broker no longer forwards (drops on arrival or no
	// match), so a tombstoned resubscribe also stays silent.
	s2, err := DialSubscriber(c.Addr(2), sub)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	time.Sleep(150 * time.Millisecond)
	if _, err := p.Publish(0, msg.NumAttrs(map[string]float64{"A1": 1}), 50, 20*vtime.Second, nil); err != nil {
		t.Fatal(err)
	}
	if m, err := s2.Receive(400 * time.Millisecond); err == nil {
		t.Errorf("tombstoned subscription resurrected: delivery %d", m.ID)
	}
}

func TestLiveLinkEstimates(t *testing.T) {
	c := startTinyCluster(t, msg.PSD)
	sub := &msg.Subscription{ID: 1, Edge: 2, Filter: &filter.Filter{}}
	s, err := DialSubscriber(c.Addr(2), sub)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	time.Sleep(100 * time.Millisecond)

	p, err := DialPublisher(c.Addr(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	const sends = 5
	for i := 0; i < sends; i++ {
		if _, err := p.Publish(0, msg.NumAttrs(map[string]float64{"A1": 1}), 50, 30*vtime.Second, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < sends; i++ {
		if _, err := s.Receive(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	est, observed := c.Nodes[0].LinkEstimate(1)
	if !observed {
		t.Fatal("node 0 should have observed transfers on link to 1")
	}
	// The emulated rate is N(50,5) ms/KB; wall-clock timer jitter at
	// TimeScale 0.002 inflates observations, so bound loosely.
	if est.Mean < 30 || est.Mean > 400 {
		t.Errorf("estimated mean %v ms/KB implausible for a 50 ms/KB link", est.Mean)
	}
	if _, ok := c.Nodes[0].LinkEstimate(99); ok {
		t.Error("estimate for non-neighbor should report not observed")
	}
}

func TestNodeConfigValidation(t *testing.T) {
	if _, err := NewNode(NodeConfig{}); err == nil {
		t.Error("nil overlay should fail")
	}
	ov := tinyOverlay(t)
	if _, err := NewNode(NodeConfig{Overlay: ov, TimeScale: 1}); err == nil {
		t.Error("nil strategy should fail")
	}
	if _, err := NewNode(NodeConfig{Overlay: ov, Strategy: core.FIFO{}}); err == nil {
		t.Error("zero TimeScale should fail")
	}
}

func TestDialSubscriberValidation(t *testing.T) {
	if _, err := DialSubscriber("127.0.0.1:1", nil); err == nil {
		t.Error("nil subscription should fail")
	}
}
