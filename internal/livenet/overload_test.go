package livenet

import (
	"fmt"
	"io"
	"net"
	"net/http"
	grt "runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"bdps/internal/core"
	"bdps/internal/filter"
	"bdps/internal/msg"
	"bdps/internal/runtime"
	"bdps/internal/vtime"
)

// startOverloadCluster starts the standard 3-broker chain with the
// given overload protections, pacing off so publishers can outrun the
// pipeline.
func startOverloadCluster(t *testing.T, shards, maxEgress int, adm runtime.Admission) *Cluster {
	t.Helper()
	c, err := StartCluster(ClusterConfig{
		Overlay:   tinyOverlay(t),
		Scenario:  msg.PSD,
		Strategy:  core.MaxEB{},
		TimeScale: 1e-9,
		Seed:      1,
		Shards:    shards,
		MaxEgress: maxEgress,
		Admission: adm,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// consume keeps draining a subscriber's delivery channel for the rest
// of the test, so broker writes to the subscriber connection never
// block on a full client buffer.
func consume(s *Subscriber) {
	go func() {
		for range s.C() {
		}
	}()
}

// blast publishes n messages at maximum rate from k concurrent
// publishers and returns the count injected.
func blast(t *testing.T, c *Cluster, k, n int) int {
	t.Helper()
	attrs := msg.NumAttrs(map[string]float64{"A1": 1})
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		p, err := DialPublisher(c.Addr(0), msg.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		wg.Add(1)
		go func(p *Publisher) {
			defer wg.Done()
			for j := 0; j < n/k; j++ {
				if _, err := p.Publish(0, attrs, 1, 60*vtime.Second, nil); err != nil {
					return
				}
			}
		}(p)
	}
	wg.Wait()
	return n / k * k
}

func drainOverload(t *testing.T, c *Cluster, injected int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	idle := 0
	for idle < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("cluster did not quiesce:\n%s", c.LoadReport())
		}
		if c.Quiescent(injected) {
			idle++
		} else {
			idle = 0
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// TestMetricsEndpoint pins the hand-rolled /metrics exposition: a
// cluster under load serves its counters as Prometheus text over HTTP,
// and the scraped totals match TotalStats.
func TestMetricsEndpoint(t *testing.T) {
	c := startOverloadCluster(t, 2, 0, runtime.Admission{})
	defer c.Stop()
	ms, err := c.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	sub := &msg.Subscription{ID: 1, Edge: 2, Filter: &filter.Filter{}}
	s, err := DialSubscriber(c.Addr(2), sub)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	time.Sleep(100 * time.Millisecond)
	injected := blast(t, c, 2, 200)
	drainOverload(t, c, injected)

	resp, err := http.Get("http://" + ms.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	total := c.TotalStats()
	for _, want := range []string{
		fmt.Sprintf("bdps_deliveries_total %d", total.Deliveries),
		fmt.Sprintf("bdps_receptions_total %d", total.Receptions),
		"bdps_drops_shed_total 0",
		"bdps_pubs_rejected_total 0",
		`bdps_queue_depth{broker="0"}`,
		`bdps_queue_peak{broker="1"}`,
		`bdps_broker_up{broker="2"} 1`,
		"# TYPE bdps_deliveries_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if total.Deliveries != injected {
		t.Errorf("delivered %d of %d", total.Deliveries, injected)
	}
}

// TestBackpressureBoundsQueues is the slow-subscriber headline check:
// publishers outrun the pipeline at maximum rate, and MaxEgress must
// bound every broker's peak queue occupancy — without losing a single
// admitted delivery. Without backpressure the same blast balloons the
// interior queues by orders of magnitude.
func TestBackpressureBoundsQueues(t *testing.T) {
	if testing.Short() {
		t.Skip("max-rate blast")
	}
	const (
		maxEgress = 128
		conns     = 4
		n         = 20000
	)
	c := startOverloadCluster(t, 2, maxEgress, runtime.Admission{})
	defer c.Stop()
	sub := &msg.Subscription{ID: 1, Edge: 2, Filter: &filter.Filter{}}
	s, err := DialSubscriber(c.Addr(2), sub)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	consume(s)
	time.Sleep(100 * time.Millisecond)

	injected := blast(t, c, conns, n)
	drainOverload(t, c, injected)

	// The gate admits at most one in-flight batch per reading
	// connection past the threshold (the subscriber's connection and
	// the downstream hop count as readers too).
	bound := maxEgress + (conns+2)*64
	for id, node := range c.Nodes {
		if peak := node.PeakQueue(); peak > bound {
			t.Errorf("broker %d peak queue %d exceeds backpressure bound %d", id, peak, bound)
		}
	}
	total := c.TotalStats()
	if total.Deliveries != injected {
		t.Errorf("lost admitted deliveries: delivered %d of %d", total.Deliveries, injected)
	}
	if drops := total.DropsExpired + total.DropsHopeless + total.DropsArrival + total.DropsShed; drops != 0 {
		t.Errorf("backpressure run dropped %d entries, want 0", drops)
	}
}

// TestAdmissionRejectsAtSaturation pins node-local admission in
// standalone mode: with a tiny queue threshold and a max-rate blast,
// the ingress must turn publisher frames away (counted, not lost), the
// cluster must still quiesce, and everything it admitted must deliver.
func TestAdmissionRejectsAtSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("max-rate blast")
	}
	// Admission alone (no shedding): pressure shedding would hold the
	// queue just under the same threshold and mask the door check.
	c := startOverloadCluster(t, 2, 0, runtime.Admission{
		Enabled: true, MaxQueue: 32,
	})
	defer c.Stop()
	sub := &msg.Subscription{ID: 1, Edge: 2, Filter: &filter.Filter{}}
	s, err := DialSubscriber(c.Addr(2), sub)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	consume(s)
	time.Sleep(100 * time.Millisecond)

	injected := blast(t, c, 4, 20000)
	drainOverload(t, c, injected)

	total := c.TotalStats()
	if total.PubsRejected == 0 {
		t.Error("saturating blast should reject publications at the door")
	}
	admitted := injected - total.PubsRejected
	if total.Deliveries+total.DropsShed+total.DropsExpired+total.DropsHopeless < admitted {
		t.Errorf("admitted traffic unaccounted: %d admitted, %d delivered, %d shed, %d expired, %d hopeless",
			admitted, total.Deliveries, total.DropsShed, total.DropsExpired, total.DropsHopeless)
	}
}

// TestOverloadSoakDuringChurnAndFaults is the -race soak: every
// overload defense armed at once — admission, shedding, backpressure —
// while a churner floods subscribe/unsubscribe pairs, a link flaps
// mid-blast, and publishers hammer the ingress at maximum rate. The
// cluster must drain, and shutdown must return the goroutine count to
// baseline (the leak harness from the shutdown tests).
func TestOverloadSoakDuringChurnAndFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("overload soak")
	}
	baseline := grt.NumGoroutine()

	c := startOverloadCluster(t, 4, 256, runtime.Admission{
		Enabled: true, Shed: true, MaxQueue: 128,
	})
	sub := &msg.Subscription{ID: 1, Edge: 2, Filter: &filter.Filter{}}
	s, err := DialSubscriber(c.Addr(2), sub)
	if err != nil {
		c.Stop()
		t.Fatal(err)
	}
	consume(s)
	time.Sleep(100 * time.Millisecond)

	// Concurrent churn: subscribe/unsubscribe pairs flooding the edge
	// for the whole blast, mutating every routing table in place.
	churnStop := make(chan struct{})
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		conn, err := net.Dial("tcp", c.Addr(2))
		if err != nil {
			return
		}
		defer conn.Close()
		hello := msg.AppendHello(nil, msg.RoleSubscriber, msg.NodeID(1<<20), 0)
		if err := msg.WriteFrame(conn, msg.FrameHello, hello); err != nil {
			return
		}
		churn := msg.Subscription{ID: 1 << 20, Edge: 2, Filter: filter.MustParse("A1 < 0.5")}
		var subBuf, unsubBuf []byte
		for {
			select {
			case <-churnStop:
				return
			default:
			}
			body, err := msg.AppendSubscription(subBuf[:0], &churn)
			if err != nil || msg.WriteFrame(conn, msg.FrameSubscribe, body) != nil {
				return
			}
			subBuf = body
			unsubBuf = msg.AppendUnsubscribe(unsubBuf[:0], churn.ID)
			if msg.WriteFrame(conn, msg.FrameUnsubscribe, unsubBuf) != nil {
				return
			}
			churn.ID++
		}
	}()

	// A link flap mid-blast: the interior hop goes dark, queues build
	// against the protections, then it comes back.
	flap := time.AfterFunc(50*time.Millisecond, func() {
		c.Nodes[1].SetLinkDown(2, true)
		time.AfterFunc(100*time.Millisecond, func() { c.Nodes[1].SetLinkDown(2, false) })
	})
	defer flap.Stop()

	injected := blast(t, c, 4, 20000)
	drainOverload(t, c, injected)

	close(churnStop)
	<-churnDone
	total := c.TotalStats()
	if total.Deliveries == 0 {
		t.Error("soak delivered nothing")
	}
	t.Logf("soak: injected %d, delivered %d, rejected %d, shed %d",
		injected, total.Deliveries, total.PubsRejected, total.DropsShed)

	s.Close()
	c.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := grt.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := grt.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, grt.NumGoroutine(), buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
