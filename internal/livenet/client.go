package livenet

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bdps/internal/msg"
	"bdps/internal/runtime"
	"bdps/internal/vtime"
)

// Publisher is a live publishing client attached to an ingress broker.
type Publisher struct {
	id      msg.NodeID
	conn    net.Conn
	mu      sync.Mutex
	seq     uint32
	buf     []byte      // reusable frame buffer: one allocation-free write per send
	scratch msg.Message // reusable Publish message (guarded by mu)

	// Clock stamps publication times. It defaults to the absolute wall
	// clock (scale 1); clients of an in-process cluster with a
	// compressed clock must set it to Cluster.Clock() before publishing.
	Clock runtime.Clock
}

// DialPublisher connects publisher `id` to its ingress broker. The id
// doubles as the publisher index for message-id allocation; the ingress
// id must match the broker being dialed (brokers reject messages claiming
// a different ingress).
func DialPublisher(addr string, id msg.NodeID) (*Publisher, error) {
	conn, err := dialRetry(addr, 40, 50*time.Millisecond)
	if err != nil {
		return nil, err
	}
	hello := msg.AppendHello(nil, msg.RolePublisher, id, 0)
	if err := msg.WriteFrame(conn, msg.FrameHello, hello); err != nil {
		conn.Close()
		return nil, err
	}
	return &Publisher{id: id, conn: conn, Clock: runtime.AbsoluteWallClock(1)}, nil
}

// Publish sends one message. SizeKB is the emulated size that paces the
// overlay links; allowed is the publisher-specified bound (0 in SSD).
// The publication timestamp is stamped here from the shared wall clock.
func (p *Publisher) Publish(ingress msg.NodeID, attrs msg.AttrSet, sizeKB float64, allowed vtime.Millis, payload []byte) (msg.ID, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	// The message only lives for the encode below; build it in the
	// publisher's scratch so the hot publish path allocates nothing.
	m := &p.scratch
	*m = msg.Message{
		ID:        msg.MakeID(p.id, p.seq),
		Publisher: p.id,
		Ingress:   ingress,
		Published: p.Clock.Now(),
		Allowed:   allowed,
		SizeKB:    sizeKB,
		Attrs:     attrs,
		Payload:   payload,
	}
	p.seq++
	if err := p.send(m); err != nil {
		return 0, err
	}
	return m.ID, nil
}

// Send writes a pre-built message as-is — id, timestamps and ingress
// untouched. The runtime's live driver uses it to inject a plan's
// publication schedule verbatim.
func (p *Publisher) Send(m *msg.Message) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.send(m)
}

func (p *Publisher) send(m *msg.Message) error {
	buf, err := msg.AppendMessageFrame(p.buf[:0], m)
	if err != nil {
		return err
	}
	p.buf = buf
	if err := p.conn.SetWriteDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return err
	}
	_, err = p.conn.Write(buf)
	return err
}

// Close closes the publisher connection.
func (p *Publisher) Close() error { return p.conn.Close() }

// Subscriber is a live subscribing client attached to an edge broker.
type Subscriber struct {
	sub  *msg.Subscription
	conn net.Conn
	ch   chan *msg.Message
	done chan struct{}
	once sync.Once

	// lastSeq is the session's resume cursor: the highest per-session
	// delivery sequence received. Deliveries at or below it are
	// duplicates (a replay overlapping frames that did arrive before
	// the disconnect) and are suppressed — exactly-once across resume.
	lastSeq atomic.Uint64

	// Clock judges delivery validity (see Valid). Defaults to the
	// absolute wall clock; set to Cluster.Clock() when the cluster runs
	// on a compressed clock.
	Clock runtime.Clock
}

// ResumeToken identifies a subscriber session for resumption after a
// disconnect: the subscription id plus the last delivery sequence the
// client actually received.
type ResumeToken struct {
	Sub     msg.SubID
	LastSeq uint64
}

// DialSubscriber connects to the edge broker, registers the subscription
// (which the broker floods across the overlay) and starts receiving.
func DialSubscriber(addr string, sub *msg.Subscription) (*Subscriber, error) {
	if sub == nil || sub.Filter == nil {
		return nil, fmt.Errorf("livenet: nil subscription or filter")
	}
	s, err := dialSubscriber(addr, sub)
	if err != nil {
		return nil, err
	}
	body, err := msg.AppendSubscription(nil, sub)
	if err != nil {
		s.conn.Close()
		return nil, err
	}
	if err := msg.WriteFrame(s.conn, msg.FrameSubscribe, body); err != nil {
		s.conn.Close()
		return nil, err
	}
	go s.readLoop()
	return s, nil
}

// ResumeSubscriber reattaches a previously registered subscription
// after a lost connection: instead of re-subscribing (the broker-side
// subscription survived the client), it presents the resume token and
// the edge broker replays the missed deliveries whose bounds still
// hold. The returned subscriber continues the session: its cursor
// starts at the token, so overlapping replays dedup to exactly-once.
func ResumeSubscriber(addr string, sub *msg.Subscription, tok ResumeToken) (*Subscriber, error) {
	if sub == nil || sub.Filter == nil {
		return nil, fmt.Errorf("livenet: nil subscription or filter")
	}
	if tok.Sub != sub.ID {
		return nil, fmt.Errorf("livenet: resume token for sub %d, dialing sub %d", tok.Sub, sub.ID)
	}
	s, err := dialSubscriber(addr, sub)
	if err != nil {
		return nil, err
	}
	s.lastSeq.Store(tok.LastSeq)
	body := msg.AppendResume(nil, tok.Sub, tok.LastSeq)
	if err := msg.WriteFrame(s.conn, msg.FrameResume, body); err != nil {
		s.conn.Close()
		return nil, err
	}
	go s.readLoop()
	return s, nil
}

// dialSubscriber dials the edge broker and performs the hello handshake
// (shared by fresh subscribes and session resumes).
func dialSubscriber(addr string, sub *msg.Subscription) (*Subscriber, error) {
	conn, err := dialRetry(addr, 40, 50*time.Millisecond)
	if err != nil {
		return nil, err
	}
	hello := msg.AppendHello(nil, msg.RoleSubscriber, msg.NodeID(sub.ID), 0)
	if err := msg.WriteFrame(conn, msg.FrameHello, hello); err != nil {
		conn.Close()
		return nil, err
	}
	return &Subscriber{
		sub:   sub,
		conn:  conn,
		ch:    make(chan *msg.Message, 256),
		done:  make(chan struct{}),
		Clock: runtime.AbsoluteWallClock(1),
	}, nil
}

// Token returns the session's current resume token. Valid to call at
// any point, including after the connection died — that is its purpose.
func (s *Subscriber) Token() ResumeToken {
	return ResumeToken{Sub: s.sub.ID, LastSeq: s.lastSeq.Load()}
}

func (s *Subscriber) readLoop() {
	defer close(s.ch)
	// Frames read through one pooled buffer and an interning decoder:
	// the per-delivery cost is the Message handed to the consumer (who
	// keeps it), not the wire machinery.
	fr := msg.NewFrameReader(s.conn)
	var fb msg.FrameBuf
	var dec msg.Decoder
	for {
		ft, body, err := fr.Next(&fb)
		if err != nil {
			return
		}
		// Sessionful deliveries arrive as FrameData carrying the
		// session sequence; the cursor suppresses anything already
		// received (replays overlapping the pre-disconnect tail).
		// Plain FrameMessage deliveries (sharded plane) pass through
		// unsequenced.
		var seq uint64
		switch ft {
		case msg.FrameMessage:
		case msg.FrameData:
			var derr error
			var mb []byte
			seq, _, _, mb, derr = msg.DecodeDataHeader(body)
			if derr != nil || seq <= s.lastSeq.Load() {
				continue
			}
			body = mb
		default:
			continue
		}
		m := new(msg.Message)
		// fb stays owned by this loop (nil frame): payloads are copied
		// out because the consumer may hold the message indefinitely.
		if _, err := dec.DecodeMessageInto(m, body, nil); err != nil {
			continue
		}
		if seq > 0 {
			s.lastSeq.Store(seq)
		}
		select {
		case s.ch <- m:
		case <-s.done:
			return
		default:
			// Slow consumer: drop rather than stall the edge broker.
		}
	}
}

// C returns the delivery channel. It is closed when the connection ends.
func (s *Subscriber) C() <-chan *msg.Message { return s.ch }

// Receive waits up to timeout for one delivery.
func (s *Subscriber) Receive(timeout time.Duration) (*msg.Message, error) {
	select {
	case m, ok := <-s.ch:
		if !ok {
			return nil, fmt.Errorf("livenet: subscriber connection closed")
		}
		return m, nil
	case <-time.After(timeout):
		return nil, fmt.Errorf("livenet: no delivery within %v", timeout)
	}
}

// Valid reports whether a received message met this subscriber's bound
// (or, in PSD, the publisher's), judged against the subscriber's clock.
func (s *Subscriber) Valid(m *msg.Message, scenario msg.Scenario) bool {
	allowed, _ := scenario.AllowedDelay(m, s.sub)
	return allowed > 0 && s.Clock.Now()-m.Published <= allowed
}

// Unsubscribe withdraws the subscription from the overlay: the edge
// broker removes it and floods the removal, so upstream brokers stop
// forwarding matching messages this way. The connection stays open (a
// subsequent Close tears it down).
func (s *Subscriber) Unsubscribe() error {
	body := msg.AppendUnsubscribe(nil, s.sub.ID)
	if err := s.conn.SetWriteDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return err
	}
	return msg.WriteFrame(s.conn, msg.FrameUnsubscribe, body)
}

// Close tears the subscriber down.
func (s *Subscriber) Close() error {
	s.once.Do(func() { close(s.done) })
	return s.conn.Close()
}
