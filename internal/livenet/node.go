// Package livenet runs the bounded-delay pub/sub system for real: each
// broker is a Node with goroutines for inbound connections and one sender
// goroutine per overlay link, talking the binary wire protocol of
// internal/msg over TCP. The same core scheduler that drives the
// simulator picks which queued message each link sends next.
//
// Link speeds are emulated by pacing: before writing a message frame the
// sender sleeps SizeKB × rate × TimeScale milliseconds, with the rate
// drawn from the link's configured N(μ,σ²) — the paper's delay model on a
// wall clock. TimeScale < 1 compresses the emulation for demos and tests.
//
// Subscriptions are dynamic: a subscriber client sends its subscription
// to its edge broker, which floods it across the overlay; every broker
// independently computes the deterministic single path from each ingress
// (the same "minimize mean path rate" rule as the simulator) and installs
// its routing entries. Messages published before a subscription has
// propagated may miss it — exactly the transient any real pub/sub overlay
// has.
package livenet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"bdps/internal/core"
	"bdps/internal/msg"
	"bdps/internal/routing"
	"bdps/internal/stats"
	"bdps/internal/topology"
	"bdps/internal/vtime"
)

// wallNow returns wall-clock time as virtual milliseconds since the Unix
// epoch. All participants run on the same clock domain (one machine or a
// synchronized cluster), matching the paper's assumption that brokers can
// compute a message's already-incurred delay.
func wallNow() vtime.Millis {
	return float64(time.Now().UnixMicro()) / 1000
}

// NodeConfig assembles a live broker.
type NodeConfig struct {
	ID       msg.NodeID
	Overlay  *topology.Overlay
	Scenario msg.Scenario
	Params   core.Params
	Strategy core.Strategy
	// TimeScale compresses emulated link delays: real sleep = emulated ms
	// × TimeScale. 1.0 is real time; tests use ~0.002. Must be > 0.
	TimeScale float64
	// Seed drives the link-rate samplers.
	Seed uint64
}

// Node is one live broker.
type Node struct {
	cfg NodeConfig

	mu        sync.Mutex
	table     *routing.Table
	queues    map[msg.NodeID]*core.Queue
	wake      map[msg.NodeID]chan struct{}
	estimates map[msg.NodeID]*stats.WelfordEstimator
	// local subscriber connections by subscription id
	locals map[msg.SubID]*subConn
	// flood dedup; removed subscriptions leave a tombstone so a late
	// subscribe flood cannot resurrect them
	seenSubs    map[msg.SubID]bool
	removedSubs map[msg.SubID]bool
	// statistics
	stats Stats
	// reusable receive-path scratch (guarded by mu, like the state
	// above): match buffer, next-hop grouper and epoch-stamped
	// subscription dedup, mirroring broker.Broker's zero-allocation
	// processing path.
	matchBuf []*routing.Entry
	grouper  routing.Grouper
	subEpoch map[msg.SubID]uint64
	epoch    uint64

	listener net.Listener
	peers    map[msg.NodeID]*peerConn
	inbound  map[net.Conn]struct{}
	stopped  chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// Stats counts a live node's activity (retrieved via Node.Stats).
type Stats struct {
	Receptions    int
	Deliveries    int
	ValidDeliver  int
	DropsExpired  int
	DropsHopeless int
	DropsArrival  int
	Duplicates    int
}

type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
}

func (p *peerConn) writeFrame(frameType byte, body []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.conn.SetWriteDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return err
	}
	return msg.WriteFrame(p.conn, frameType, body)
}

type subConn struct {
	sub  *msg.Subscription
	peer *peerConn
}

// NewNode validates the configuration and builds a node.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Overlay == nil {
		return nil, errors.New("livenet: nil overlay")
	}
	if cfg.Strategy == nil {
		return nil, errors.New("livenet: nil strategy")
	}
	if cfg.TimeScale <= 0 {
		return nil, fmt.Errorf("livenet: TimeScale %v must be > 0", cfg.TimeScale)
	}
	if cfg.Params == (core.Params{}) {
		cfg.Params = core.DefaultParams()
	}
	return &Node{
		cfg:         cfg,
		table:       routing.NewTable(cfg.ID),
		queues:      make(map[msg.NodeID]*core.Queue),
		wake:        make(map[msg.NodeID]chan struct{}),
		estimates:   make(map[msg.NodeID]*stats.WelfordEstimator),
		locals:      make(map[msg.SubID]*subConn),
		subEpoch:    make(map[msg.SubID]uint64),
		seenSubs:    make(map[msg.SubID]bool),
		removedSubs: make(map[msg.SubID]bool),
		peers:       make(map[msg.NodeID]*peerConn),
		inbound:     make(map[net.Conn]struct{}),
		stopped:     make(chan struct{}),
	}, nil
}

// ID returns the broker id.
func (n *Node) ID() msg.NodeID { return n.cfg.ID }

// Listen binds the node's TCP listener and starts accepting connections.
// It returns the bound address (useful with ":0").
func (n *Node) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	n.listener = l
	n.wg.Add(1)
	go n.acceptLoop()
	return l.Addr().String(), nil
}

// ConnectPeers dials every overlay neighbor at the given addresses and
// starts one sender goroutine per link. Addresses of non-neighbors are
// ignored.
func (n *Node) ConnectPeers(addrs map[msg.NodeID]string) error {
	for _, e := range n.cfg.Overlay.Graph.Neighbors(n.cfg.ID) {
		addr, ok := addrs[e.To]
		if !ok {
			return fmt.Errorf("livenet: broker %d: no address for neighbor %d", n.cfg.ID, e.To)
		}
		conn, err := dialRetry(addr, 40, 50*time.Millisecond)
		if err != nil {
			return fmt.Errorf("livenet: broker %d dialing %d: %w", n.cfg.ID, e.To, err)
		}
		hello := msg.AppendHello(nil, msg.RoleBroker, n.cfg.ID)
		if err := msg.WriteFrame(conn, msg.FrameHello, hello); err != nil {
			conn.Close()
			return err
		}
		pc := &peerConn{conn: conn}
		n.mu.Lock()
		n.peers[e.To] = pc
		wake := make(chan struct{}, 1)
		n.wake[e.To] = wake
		n.queues[e.To] = core.NewQueue(e.Rate.Mean)
		n.estimates[e.To] = &stats.WelfordEstimator{Prior: e.Rate}
		n.mu.Unlock()

		n.wg.Add(1)
		go n.senderLoop(e.To, e.Rate, pc, wake)
	}
	return nil
}

func dialRetry(addr string, attempts int, backoff time.Duration) (net.Conn, error) {
	var lastErr error
	for i := 0; i < attempts; i++ {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		time.Sleep(backoff)
	}
	return nil, lastErr
}

// Stop shuts the node down: listener, peer connections and sender
// goroutines.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		close(n.stopped)
		if n.listener != nil {
			n.listener.Close()
		}
		n.mu.Lock()
		for _, p := range n.peers {
			p.conn.Close()
		}
		for _, s := range n.locals {
			s.peer.conn.Close()
		}
		for conn := range n.inbound {
			conn.Close()
		}
		n.mu.Unlock()
	})
	n.wg.Wait()
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// acceptLoop accepts inbound connections (brokers, publishers,
// subscribers) and spawns a reader per connection.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			select {
			case <-n.stopped:
				return
			default:
				continue
			}
		}
		n.mu.Lock()
		select {
		case <-n.stopped:
			n.mu.Unlock()
			conn.Close()
			return
		default:
		}
		n.inbound[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

// readLoop consumes frames from one inbound connection.
func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.inbound, conn)
		n.mu.Unlock()
	}()

	ft, body, err := msg.ReadFrame(conn)
	if err != nil || ft != msg.FrameHello {
		return
	}
	role, _, err := msg.DecodeHello(body)
	if err != nil {
		return
	}
	peer := &peerConn{conn: conn}

	for {
		ft, body, err := msg.ReadFrame(conn)
		if err != nil {
			return
		}
		switch ft {
		case msg.FrameMessage:
			m, err := msg.DecodeMessage(body)
			if err != nil {
				continue // tolerate one corrupt frame; connection survives
			}
			if role == msg.RolePublisher && m.Ingress != n.cfg.ID {
				// Publishers must publish through their ingress broker.
				continue
			}
			n.receive(m)
		case msg.FrameSubscribe:
			s, err := msg.DecodeSubscription(body)
			if err != nil {
				continue
			}
			var from *peerConn
			if role == msg.RoleSubscriber {
				from = peer
			}
			n.handleSubscribe(s, from)
		case msg.FrameUnsubscribe:
			id, err := msg.DecodeUnsubscribe(body)
			if err != nil {
				continue
			}
			n.handleUnsubscribe(id)
		case msg.FrameAck, msg.FrameHello:
			// Ignored.
		}
	}
}

// handleSubscribe installs a subscription (local conn non-nil when the
// subscriber is attached here) and floods it to neighbors once.
func (n *Node) handleSubscribe(s *msg.Subscription, local *peerConn) {
	n.mu.Lock()
	if n.removedSubs[s.ID] {
		// Tombstoned: a subscribe flood racing its own unsubscribe.
		n.mu.Unlock()
		return
	}
	if n.seenSubs[s.ID] && local == nil {
		n.mu.Unlock()
		return
	}
	first := !n.seenSubs[s.ID]
	n.seenSubs[s.ID] = true
	if local != nil && s.Edge == n.cfg.ID {
		n.locals[s.ID] = &subConn{sub: s, peer: local}
	}
	if first {
		n.installRoutes(s)
	}
	peers := make([]*peerConn, 0, len(n.peers))
	if first {
		for _, p := range n.peers {
			peers = append(peers, p)
		}
	}
	n.mu.Unlock()

	if !first {
		return
	}
	body, err := msg.AppendSubscription(nil, s)
	if err != nil {
		return
	}
	for _, p := range peers {
		_ = p.writeFrame(msg.FrameSubscribe, body) // dead peers are fine
	}
}

// handleUnsubscribe removes a subscription's routing state and floods the
// removal across the overlay once. A tombstone prevents resurrection by
// late subscribe floods.
func (n *Node) handleUnsubscribe(id msg.SubID) {
	n.mu.Lock()
	if n.removedSubs[id] {
		n.mu.Unlock()
		return
	}
	n.removedSubs[id] = true
	delete(n.locals, id)
	n.table.RemoveSub(id)
	peers := make([]*peerConn, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.Unlock()

	body := msg.AppendUnsubscribe(nil, id)
	for _, p := range peers {
		_ = p.writeFrame(msg.FrameUnsubscribe, body)
	}
}

// installRoutes computes this broker's routing entries for one
// subscription: for each ingress, the deterministic min-mean path; if this
// broker lies on it, install the residual-path entry (n.mu held).
func (n *Node) installRoutes(s *msg.Subscription) {
	g := n.cfg.Overlay.Graph
	for _, src := range n.cfg.Overlay.Ingress {
		path, ok := g.Path(src, s.Edge)
		if !ok {
			continue
		}
		for i, at := range path {
			if at != n.cfg.ID {
				continue
			}
			e := &routing.Entry{Sub: s, Source: src}
			if i == len(path)-1 {
				e.Next = msg.None
			} else {
				e.Next = path[i+1]
				e.Hops = len(path) - 1 - i
				var parts []stats.Normal
				for j := i; j < len(path)-1; j++ {
					r, _ := g.Rate(path[j], path[j+1])
					parts = append(parts, r)
				}
				e.Rate = stats.SumNormal(parts...)
			}
			n.table.Add(e)
		}
	}
}

// receive handles one message arrival: processing delay, then match,
// deliver locally, and enqueue toward next hops.
func (n *Node) receive(m *msg.Message) {
	// Processing delay, scaled like link delays.
	if pd := n.cfg.Params.PD * n.cfg.TimeScale; pd > 0 {
		time.Sleep(vtime.ToDuration(pd))
	}
	now := wallNow()

	n.mu.Lock()
	n.stats.Receptions++
	n.matchBuf = n.table.MatchAppend(m, n.matchBuf[:0])
	matched := n.matchBuf
	var wakes []chan struct{}
	var deliveries []struct {
		peer  *peerConn
		valid bool
	}
	if len(matched) > 0 {
		hops, groups := n.grouper.Group(matched)
		for k, hop := range hops {
			entries := groups[k]
			if hop == msg.None {
				for _, e := range entries {
					allowed, _ := n.cfg.Scenario.AllowedDelay(m, e.Sub)
					lat := now - m.Published
					valid := allowed > 0 && lat <= allowed
					n.stats.Deliveries++
					if valid {
						n.stats.ValidDeliver++
					}
					if sc, ok := n.locals[e.Sub.ID]; ok {
						deliveries = append(deliveries, struct {
							peer  *peerConn
							valid bool
						}{sc.peer, valid})
					}
				}
				continue
			}
			entry := n.buildEntry(m, entries)
			if !core.Viable(entry, now, n.cfg.Params) {
				n.stats.DropsArrival++
				entry.Release()
				continue
			}
			q := n.queues[hop]
			if q == nil {
				// Neighbor not connected (e.g. crashed); drop.
				n.stats.DropsArrival++
				entry.Release()
				continue
			}
			q.Enqueue(entry, now)
			wakes = append(wakes, n.wake[hop])
		}
	}
	n.mu.Unlock()

	body, err := msg.AppendMessage(nil, m)
	if err == nil {
		for _, d := range deliveries {
			_ = d.peer.writeFrame(msg.FrameMessage, body)
		}
	}
	for _, w := range wakes {
		select {
		case w <- struct{}{}:
		default:
		}
	}
}

// buildEntry mirrors broker.buildEntry for the live path (n.mu held):
// pooled entry, epoch-stamped subscription dedup.
func (n *Node) buildEntry(m *msg.Message, entries []*routing.Entry) *core.Entry {
	e := core.GetEntry()
	e.MsgID = uint64(m.ID)
	e.SizeKB = m.SizeKB
	e.Published = m.Published
	e.Data = m
	n.epoch++
	for _, re := range entries {
		if n.subEpoch[re.Sub.ID] == n.epoch {
			continue
		}
		n.subEpoch[re.Sub.ID] = n.epoch
		allowed, price := n.cfg.Scenario.AllowedDelay(m, re.Sub)
		if allowed <= 0 {
			continue
		}
		e.Targets = append(e.Targets, core.Target{
			SubID:    int32(re.Sub.ID),
			Deadline: m.Published + allowed,
			Price:    price,
			Hops:     re.Hops,
			Rate:     re.Rate,
		})
	}
	return e
}

// senderLoop drains one link's queue: pick by strategy, pace to the
// emulated link speed, write the frame.
func (n *Node) senderLoop(to msg.NodeID, rate stats.Normal, pc *peerConn, wake chan struct{}) {
	defer n.wg.Done()
	sampler := stats.TruncatedNormal{Normal: rate, Min: 1}
	stream := stats.DeriveN(n.cfg.Seed, "livenet/link", int(n.cfg.ID)<<16|int(uint16(to)))
	for {
		n.mu.Lock()
		q := n.queues[to]
		e, drops := q.PopNext(n.cfg.Strategy, wallNow(), n.cfg.Params)
		for _, d := range drops {
			if d.Reason == core.DropExpired {
				n.stats.DropsExpired++
			} else {
				n.stats.DropsHopeless++
			}
			d.Entry.Release()
		}
		n.mu.Unlock()

		if e == nil {
			select {
			case <-wake:
				continue
			case <-n.stopped:
				return
			}
		}
		m := e.Data.(*msg.Message)
		sizeKB := e.SizeKB
		e.Release()

		// Pace the transfer to the sampled rate, measuring the wall time
		// the transfer actually took — the live equivalent of the
		// paper's "tools of network measurement".
		tx := sizeKB * sampler.Sample(stream) * n.cfg.TimeScale
		start := time.Now()
		select {
		case <-time.After(vtime.ToDuration(tx)):
		case <-n.stopped:
			return
		}
		body, err := msg.AppendMessage(nil, m)
		if err != nil {
			continue
		}
		_ = pc.writeFrame(msg.FrameMessage, body) // peer loss handled by queue decay

		if sizeKB > 0 {
			elapsed := vtime.FromDuration(time.Since(start)) / n.cfg.TimeScale
			n.mu.Lock()
			if est := n.estimates[to]; est != nil {
				est.Observe(elapsed / sizeKB)
			}
			n.mu.Unlock()
		}
	}
}

// LinkEstimate returns the measured per-KB rate estimate for the link to
// a neighbor (emulated milliseconds per KB), and whether any transfers
// have been observed yet. Before enough observations it returns the
// configured prior.
func (n *Node) LinkEstimate(to msg.NodeID) (stats.Normal, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	est, ok := n.estimates[to]
	if !ok {
		return stats.Normal{}, false
	}
	return est.Estimate(), est.Count() > 0
}
