// Package livenet is the live TCP backend of the unified runtime layer
// (internal/runtime): each broker is a Node with goroutines for inbound
// connections and one sender goroutine per overlay link, talking the
// binary wire protocol of internal/msg over TCP. The node's message
// handling — matching, local delivery, per-hop enqueueing, dedup — is
// the same broker.Broker the simulator drives; this package only
// realizes time (wall clock, compressed by TimeScale) and movement
// (paced TCP frames).
//
// Link speeds are emulated by pacing: before writing a message frame the
// sender sleeps SizeKB × rate × TimeScale milliseconds, with the rate
// drawn from the link's configured distribution — the paper's delay
// model on a wall clock. TimeScale < 1 compresses the emulation for
// demos, tests and sim↔live cross-validation.
//
// All scheduling-relevant time flows through one runtime.Clock, so
// deadline math never touches time.Now directly. The default clock is
// the absolute wall clock (Unix epoch, scale 1) that standalone
// multi-process deployments share without coordination; in-process
// clusters inject a shared, compressed clock instead.
//
// Nodes run in two modes. A runtime.Plan deployment hands every node a
// pre-assembled broker (static routing tables, multipath, dedup).
// Without a plan, subscriptions are dynamic: a subscriber client sends
// its subscription to its edge broker, which floods it across the
// overlay; every broker independently computes the deterministic
// path(s) from each ingress — K paths when Multipath is set — and
// installs its routing entries. Messages published before a
// subscription has propagated may miss it — exactly the transient any
// real pub/sub overlay has.
package livenet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bdps/internal/broker"
	"bdps/internal/core"
	"bdps/internal/durable"
	"bdps/internal/msg"
	"bdps/internal/routing"
	"bdps/internal/runtime"
	"bdps/internal/stats"
	"bdps/internal/topology"
	"bdps/internal/vtime"
)

// Pacer paces one outgoing link: a per-transfer rate sampler and the
// random stream feeding it. Plan deployments pass the plan's samplers so
// live links draw the same rate sequences the simulator would.
type Pacer struct {
	Sampler runtime.Sampler
	Stream  *stats.Stream
}

// NodeConfig assembles a live broker.
type NodeConfig struct {
	ID       msg.NodeID
	Overlay  *topology.Overlay
	Scenario msg.Scenario
	Params   core.Params
	Strategy core.Strategy
	// TimeScale compresses emulated link delays: real sleep = emulated ms
	// × TimeScale. 1.0 is real time; tests use ~0.002. Must be > 0.
	TimeScale float64
	// Seed drives the link-rate samplers.
	Seed uint64

	// Broker, when non-nil, is a pre-assembled broker from a
	// runtime.Plan (static tables, multipath, dedup); Scenario, Params
	// and Strategy above are then ignored. Nil means the node builds its
	// own broker with an empty table filled by dynamic floods.
	Broker *broker.Broker
	// Preinstalled lists subscriptions already present in Broker's table,
	// so a re-subscribe flood cannot double-install them.
	Preinstalled []*msg.Subscription
	// Multipath > 1 makes dynamic subscription floods install K paths per
	// ingress, with message dedup at every broker.
	Multipath int
	// Aggregate enables covering-based subscription aggregation: this
	// node makes the owner-side covering decision for subscriptions whose
	// edge broker it is, suppressing the subscribe flood when a resident
	// filter with identical delivery terms already covers the newcomer.
	Aggregate bool
	// Clock is the shared time base; nil means the absolute wall clock
	// at scale 1 (multi-process default).
	Clock runtime.Clock
	// Sink, when non-nil, receives delivery-side metric events (already
	// serialized by the caller, e.g. a runtime.LockedSink).
	Sink runtime.Sink
	// Pacers overrides per-link pacing; missing links default to the
	// overlay's truncated-normal rates on a stream derived from Seed.
	Pacers map[msg.NodeID]Pacer

	// Loss maps outgoing links to the injected LinkLoss adversary each
	// faces; links without an entry (or a nil map) stay on the plain
	// message path. Retry supplies each lossy link's retransmission
	// policy. Both are derived from the plan's deterministic link
	// enumeration so live links face the simulator's exact adversary.
	Loss  map[msg.NodeID]*runtime.LossModel
	Retry map[msg.NodeID]runtime.RetryPolicy
	// AckEvery is the cumulative-ack cadence of reliable inbound links
	// (data frames per ack); RetxWindow bounds the per-link retransmit
	// buffer and the reorder-heal buffer. Reliability defaults when ≤ 0.
	AckEvery   int
	RetxWindow int

	// Heartbeat enables per-link failure detection (heartbeat.go); the
	// zero value disables it.
	Heartbeat HeartbeatConfig
	// OnPeerEvent receives liveness transitions from the heartbeat
	// monitor (confirmed-dead and restored links). Called from the
	// monitor goroutine; must not block for long.
	OnPeerEvent func(PeerEvent)

	// MaxEgress bounds the node's total output-queue occupancy (entries
	// across all links) on the sharded plane: when reached, connection
	// read loops stop dispatching message batches until senders drain the
	// backlog, which fills the kernel socket buffers and pushes back on
	// the TCP senders — end-to-end backpressure instead of unbounded
	// queue growth behind a slow link. 0 disables the gate.
	MaxEgress int

	// Admission enables node-local online admission control for
	// standalone (plan-less) deployments: publisher messages arriving
	// while the node's total output backlog is at least
	// Admission.MaxQueue entries are rejected at the door and counted in
	// Stats.PubsRejected. Plan deployments gate admission centrally in
	// the plan instead (runtime.Plan admission sweep); enabling both
	// would double-gate.
	Admission runtime.Admission

	// StateDir, when non-empty, makes the node durable: subscription
	// admissions/retractions and per-link send watermarks are recorded
	// in an append-only log under this directory (internal/durable),
	// and a node opening a non-empty directory starts as a restarted
	// incarnation — epoch bumped, routing table reinstalled from the
	// log. Plan deployments replay recovered state through the plan's
	// repair engine instead of trusting it blindly.
	StateDir string

	// Epoch overrides the node's starting incarnation number. Ignored
	// when StateDir recovery supplies one (recovered epoch + 1 wins).
	Epoch uint32

	// Shards selects the ingress data plane. 0 keeps the classic
	// single-threaded path: every frame decoded with fresh allocations
	// and processed inline in its connection's read loop, one write
	// syscall pair per outbound frame. Any value ≥ 1 enables the
	// high-throughput plane (shard.go): pooled zero-copy decoding,
	// per-connection frame batching, that many parallel worker shards
	// keyed by publication stream, and burst-paced writev egress.
	Shards int
	// Burst caps how many messages a sender drains per egress burst in
	// the sharded plane (default 32). Ignored when Shards == 0.
	Burst int
}

// Node is one live broker.
type Node struct {
	cfg   NodeConfig
	clock runtime.Clock
	sink  runtime.Sink

	// epoch is this broker incarnation's number, stamped into every
	// Hello, heartbeat and reliable data frame the node sends. A
	// restarted broker runs at stored epoch + 1, so receivers can tell
	// frames of the dead incarnation — still sitting in kernel buffers
	// or mid-flight — from the live one's.
	epoch atomic.Uint32

	// peerEpochs tracks, per neighbor broker, the highest incarnation
	// epoch seen on any Hello or heartbeat. A data frame carrying an
	// older epoch was sent by a dead incarnation and is discarded
	// (counted in StaleEpochFrames).
	epochMu    sync.Mutex
	peerEpochs map[msg.NodeID]uint32

	// Durable state (nil without a StateDir): the WAL-backed store, the
	// state recovered from it at start, and whether this incarnation is
	// a restart (the store was non-empty).
	store     *durable.Store
	storeOnce sync.Once
	recovered durable.State
	restarted bool
	// linkSenders indexes each reliable outgoing link's sender state so
	// checkpoints can snapshot the send watermarks (guarded by mu).
	linkSenders map[msg.NodeID]*linkSender

	// sessions holds per-subscriber resumable delivery state: the
	// session's delivery sequence numbers and a bounded replay ring
	// (guarded by mu; see session.go).
	sessions map[msg.SubID]*session

	// mu guards the mutable routing-side state below. The classic data
	// plane takes it exclusively around every receive; sharded workers
	// hold it shared while processing (broker.Processor synchronizes the
	// genuinely shared scheduling state on finer locks) so that
	// subscription floods — which mutate the table — still exclude them.
	mu sync.RWMutex
	// b holds the routing table, output queues and scheduling logic —
	// the exact broker the simulator drives.
	b     *broker.Broker
	table *routing.Table
	// installer computes this node's routing entries for dynamically
	// flooded subscriptions, caching one Dijkstra per ingress across the
	// whole flood stream (the overlay is immutable). Accessed only with
	// mu held exclusively.
	installer *routing.Installer
	// agg makes the owner-side covering decisions when aggregation is on
	// (nil otherwise). Accessed only with mu held exclusively.
	agg  *routing.Aggregator
	wake map[msg.NodeID]chan struct{}
	// linkDown marks outgoing links taken out of service by injected
	// faults; the sender parks until the link comes back up.
	linkDown  map[msg.NodeID]bool
	estimates map[msg.NodeID]*stats.WelfordEstimator
	// local subscriber connections by subscription id
	locals map[msg.SubID]*subConn
	// flood dedup; removed subscriptions leave a tombstone so a late
	// subscribe flood cannot resurrect them. The tombstone set is
	// generation-bounded (see tombstones) so sustained churn cannot leak
	// memory; seenSubs entries are deleted on unsubscribe for the same
	// reason.
	seenSubs    map[msg.SubID]bool
	removedSubs tombstones
	// statistics (atomic: updated by concurrent shard workers)
	cnt counters

	// Heartbeat liveness state (heartbeat.go), under its own lock so
	// probe bookkeeping never contends with the data plane.
	hbMu      sync.Mutex
	lastHeard map[msg.NodeID]vtime.Millis
	peerState map[msg.NodeID]int

	// Sharded data plane (nil when Shards == 0); see shard.go.
	shards []*shard
	burst  int
	// nlinks is the number of outgoing overlay links — the worst-case
	// queue fan-out a message is retained for before Process reports
	// the actual one. Derived from the overlay at construction so it
	// can never lag the routing fan-out (an under-retain would let a
	// fast sender release a message a worker is still encoding).
	nlinks int32

	// egress tracks the node's total output-queue occupancy (entries
	// across all link queues): raised when Process enqueues, lowered
	// when a sender pops or a drop/shed/crash path consumes an entry.
	// The sharded read loops gate on it (MaxEgress) and standalone
	// admission consults it as the node's load signal.
	egress atomic.Int64

	// Quiescence counters (atomic): frames sent to / received from peer
	// brokers, publisher frames accepted, receives in progress, senders
	// mid-transfer. A cluster is idle when every sent frame has been
	// received, nothing is queued and nothing is in flight.
	sentPeers   atomic.Int64
	recvPeers   atomic.Int64
	recvPubs    atomic.Int64
	inflight    atomic.Int32
	busySenders atomic.Int32

	// dispatched counts messages handed to the shard workers but not yet
	// processed — the subset of inflight that is guaranteed to drain on
	// its own. The MaxEgress gate uses egress+dispatched: gating on full
	// inflight would deadlock, because inflight also counts messages
	// still parked in *other* read loops' pending buffers, which only
	// move once *their* gates open.
	dispatched atomic.Int32

	listener net.Listener
	peers    map[msg.NodeID]*peerConn
	inbound  map[net.Conn]struct{}
	stopped  chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// Stats counts a live node's activity (retrieved via Node.Stats).
type Stats struct {
	Receptions    int
	Deliveries    int
	ValidDeliver  int
	DropsExpired  int
	DropsHopeless int
	DropsArrival  int
	Duplicates    int

	// Reliable-channel counters (zero on clean links): wire frames the
	// injected adversary dropped, retransmissions the policy admitted,
	// duplicates and reorderings the receiving ends healed, and messages
	// abandoned because no retry could still meet their bound.
	FramesLost      int
	Retransmits     int
	DupsSuppressed  int
	ReorderedHealed int
	DroppedDeadline int

	// FloodsSuppressed counts subscribe floods this node avoided because
	// a resident covering filter already carried the newcomer's traffic.
	FloodsSuppressed int

	// Overload-protection counters: queue entries evicted by
	// pressure-triggered worst-first shedding, and publisher messages
	// turned away by node-local admission control (standalone mode).
	DropsShed    int
	PubsRejected int

	// Crash-restart counters: data frames rejected because a newer
	// incarnation of the sending broker announced itself, subscriber
	// sessions resumed after a reattach, and messages replayed to
	// resumed sessions through the deadline gate.
	StaleEpochFrames int
	SessionsResumed  int
	MsgsReplayed     int
}

// counters is the atomic backing of Stats.
type counters struct {
	receptions    atomic.Int64
	deliveries    atomic.Int64
	validDeliver  atomic.Int64
	dropsExpired  atomic.Int64
	dropsHopeless atomic.Int64
	dropsArrival  atomic.Int64
	duplicates    atomic.Int64

	framesLost      atomic.Int64
	retransmits     atomic.Int64
	dupsSuppressed  atomic.Int64
	reorderedHealed atomic.Int64
	droppedDeadline atomic.Int64

	floodsSuppressed atomic.Int64

	dropsShed    atomic.Int64
	pubsRejected atomic.Int64

	staleEpoch      atomic.Int64
	sessionsResumed atomic.Int64
	msgsReplayed    atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Receptions:    int(c.receptions.Load()),
		Deliveries:    int(c.deliveries.Load()),
		ValidDeliver:  int(c.validDeliver.Load()),
		DropsExpired:  int(c.dropsExpired.Load()),
		DropsHopeless: int(c.dropsHopeless.Load()),
		DropsArrival:  int(c.dropsArrival.Load()),
		Duplicates:    int(c.duplicates.Load()),

		FramesLost:      int(c.framesLost.Load()),
		Retransmits:     int(c.retransmits.Load()),
		DupsSuppressed:  int(c.dupsSuppressed.Load()),
		ReorderedHealed: int(c.reorderedHealed.Load()),
		DroppedDeadline: int(c.droppedDeadline.Load()),

		FloodsSuppressed: int(c.floodsSuppressed.Load()),

		DropsShed:    int(c.dropsShed.Load()),
		PubsRejected: int(c.pubsRejected.Load()),

		StaleEpochFrames: int(c.staleEpoch.Load()),
		SessionsResumed:  int(c.sessionsResumed.Load()),
		MsgsReplayed:     int(c.msgsReplayed.Load()),
	}
}

type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
}

func (p *peerConn) writeFrame(frameType byte, body []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.conn.SetWriteDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return err
	}
	return msg.WriteFrame(p.conn, frameType, body)
}

// writeBuf writes one preassembled frame (header + body in one buffer)
// with a single syscall.
func (p *peerConn) writeBuf(frame []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.conn.SetWriteDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return err
	}
	_, err := p.conn.Write(frame)
	return err
}

// writeBuffers flushes a whole burst of preassembled frames with
// writev, returning the bytes written (for partial-failure accounting).
// WriteTo consumes *bufs (the slice header advances and elements are
// re-sliced); the caller passes a long-lived scratch it rebuilds per
// burst, so nothing escapes per call.
func (p *peerConn) writeBuffers(bufs *net.Buffers) (int64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.conn.SetWriteDeadline(time.Now().Add(10 * time.Second)); err != nil {
		return 0, err
	}
	return bufs.WriteTo(p.conn)
}

type subConn struct {
	sub  *msg.Subscription
	peer *peerConn
}

// tombstoneLimit bounds each tombstone generation. Total tombstone
// memory is at most two generations; a subscribe flood older than the
// last ~2·tombstoneLimit unsubscribes can in principle resurrect a
// subscription — the same eventual-consistency window any bounded
// anti-entropy state has — instead of the set growing without limit
// under a million-user churn soak.
const tombstoneLimit = 1 << 16

// tombstones is a generation-bounded set of unsubscribed ids: inserts go
// to the current generation; when it fills, the previous generation is
// dropped. Membership checks consult both.
type tombstones struct {
	limit     int // generation capacity; defaults to tombstoneLimit
	cur, prev map[msg.SubID]struct{}
}

func (t *tombstones) add(id msg.SubID) {
	if t.limit == 0 {
		t.limit = tombstoneLimit
	}
	if t.cur == nil {
		t.cur = make(map[msg.SubID]struct{})
	}
	if len(t.cur) >= t.limit {
		t.prev = t.cur
		t.cur = make(map[msg.SubID]struct{}, t.limit)
	}
	t.cur[id] = struct{}{}
}

func (t *tombstones) has(id msg.SubID) bool {
	if _, ok := t.cur[id]; ok {
		return true
	}
	_, ok := t.prev[id]
	return ok
}

// len reports the retained tombstone count (both generations).
func (t *tombstones) len() int { return len(t.cur) + len(t.prev) }

// NewNode validates the configuration and builds a node.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Overlay == nil {
		return nil, errors.New("livenet: nil overlay")
	}
	if cfg.TimeScale <= 0 {
		return nil, fmt.Errorf("livenet: TimeScale %v must be > 0", cfg.TimeScale)
	}
	if cfg.Admission.Enabled || cfg.Admission.Shed {
		cfg.Admission = cfg.Admission.Defaulted()
	}
	b := cfg.Broker
	if b == nil {
		if cfg.Strategy == nil {
			return nil, errors.New("livenet: nil strategy")
		}
		if cfg.Params == (core.Params{}) {
			cfg.Params = core.DefaultParams()
		}
		means := make(map[msg.NodeID]float64)
		for _, e := range cfg.Overlay.Graph.Neighbors(cfg.ID) {
			means[e.To] = e.Rate.Mean
		}
		// Dynamic tables churn by construction (every subscribe or
		// unsubscribe flood mutates them), so arm the counting-index fast
		// path up front: mutations keep it current in place.
		table := routing.NewTable(cfg.ID)
		table.EnableIndex()
		pressure := 0
		if cfg.Admission.Shed {
			pressure = cfg.Admission.MaxQueue
		}
		var err error
		b, err = broker.New(broker.Config{
			ID:        cfg.ID,
			Scenario:  cfg.Scenario,
			Params:    cfg.Params,
			Strategy:  cfg.Strategy,
			Table:     table,
			LinkMeans: means,
			Dedup:     cfg.Multipath > 1,
			Pressure:  pressure,
		})
		if err != nil {
			return nil, err
		}
	}
	clock := cfg.Clock
	if clock == nil {
		clock = runtime.AbsoluteWallClock(1)
	}
	n := &Node{
		cfg:         cfg,
		clock:       clock,
		sink:        cfg.Sink,
		b:           b,
		table:       b.Table(),
		wake:        make(map[msg.NodeID]chan struct{}),
		linkDown:    make(map[msg.NodeID]bool),
		estimates:   make(map[msg.NodeID]*stats.WelfordEstimator),
		locals:      make(map[msg.SubID]*subConn),
		seenSubs:    make(map[msg.SubID]bool),
		peers:       make(map[msg.NodeID]*peerConn),
		inbound:     make(map[net.Conn]struct{}),
		stopped:     make(chan struct{}),
		lastHeard:   make(map[msg.NodeID]vtime.Millis),
		peerState:   make(map[msg.NodeID]int),
		peerEpochs:  make(map[msg.NodeID]uint32),
		linkSenders: make(map[msg.NodeID]*linkSender),
		sessions:    make(map[msg.SubID]*session),
	}
	n.epoch.Store(cfg.Epoch)
	if cfg.StateDir != "" {
		if err := n.openStore(); err != nil {
			return nil, err
		}
	}
	n.installer = routing.NewInstaller(cfg.Overlay, routing.Options{Multipath: cfg.Multipath})
	for _, s := range cfg.Preinstalled {
		n.seenSubs[s.ID] = true
	}
	if cfg.Aggregate {
		n.agg = routing.NewAggregator()
		// Replay the owned slice of the preinstalled population in order.
		// Covering decisions are per-edge (the delivery-terms key includes
		// the edge broker), so this reconstructs exactly the central
		// aggregated build's decision state for this node's subscriptions;
		// the preinstalled tables already realize it, hence the silent
		// Readmit instead of Admit.
		for _, s := range cfg.Preinstalled {
			if s.Edge == cfg.ID {
				n.agg.Readmit(s)
			}
		}
	}
	n.nlinks = int32(len(cfg.Overlay.Graph.Neighbors(cfg.ID)))
	if cfg.Shards > 0 {
		n.burst = cfg.Burst
		if n.burst <= 0 {
			n.burst = defaultBurst
		}
		n.startShards(cfg.Shards)
	}
	return n, nil
}

// sharded reports whether the high-throughput data plane is on.
func (n *Node) sharded() bool { return len(n.shards) > 0 }

// ID returns the broker id.
func (n *Node) ID() msg.NodeID { return n.cfg.ID }

// Epoch returns this incarnation's epoch number.
func (n *Node) Epoch() uint32 { return n.epoch.Load() }

// Restarted reports whether this incarnation recovered non-empty
// durable state, and returns that state (zero otherwise).
func (n *Node) Restarted() (durable.State, bool) { return n.recovered, n.restarted }

// openStore opens the durable store under cfg.StateDir and, when it
// holds recorded state, turns this node into a restarted incarnation:
// epoch = recorded + 1. Dynamic (plan-less) nodes reinstall the
// recovered routing entries immediately; plan deployments replay them
// through the transport's repair engine instead (Restarted).
func (n *Node) openStore() error {
	st, err := durable.Open(n.cfg.StateDir)
	if err != nil {
		return err
	}
	n.store = st
	if st.Empty() {
		return st.SetEpoch(n.cfg.Epoch)
	}
	n.recovered = st.State()
	n.restarted = true
	n.epoch.Store(n.recovered.Epoch + 1)
	if err := st.SetEpoch(n.epoch.Load()); err != nil {
		return err
	}
	if n.cfg.Broker == nil {
		for _, e := range n.recovered.Entries {
			n.table.Add(&routing.Entry{
				Sub: e.Sub, Source: e.Source, Next: e.Next,
				Hops: e.Hops, PathID: e.PathID,
				Rate:    stats.Normal{Mean: e.RateMean, Sigma: e.RateSigma},
				Relaxed: e.Relaxed,
			})
			n.seenSubs[e.Sub.ID] = true
		}
	}
	return nil
}

// logSub appends every routing entry the table currently holds for one
// subscription to the WAL (n.mu held). The scan is linear in the table
// — dynamic admissions are control-plane rare next to data traffic.
func (n *Node) logSub(id msg.SubID) {
	if n.store == nil {
		return
	}
	for _, src := range n.table.Sources() {
		for _, e := range n.table.Entries(src) {
			if e.Sub.ID != id {
				continue
			}
			_ = n.store.AppendEntry(durable.Entry{
				Sub: e.Sub, Source: e.Source, Next: e.Next,
				Hops: e.Hops, PathID: e.PathID,
				RateMean: e.Rate.Mean, RateSigma: e.Rate.Sigma,
				Relaxed: e.Relaxed,
			})
		}
	}
}

// CheckpointTable snapshots the node's full durable state — epoch,
// every live routing entry and the reliable links' send watermarks —
// into the store, truncating the incremental log. No-op without a
// StateDir.
func (n *Node) CheckpointTable() error {
	if n.store == nil {
		return nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	st := durable.State{Epoch: n.epoch.Load(), Marks: make(map[msg.NodeID]uint64)}
	for _, src := range n.table.Sources() {
		for _, e := range n.table.Entries(src) {
			st.Entries = append(st.Entries, durable.Entry{
				Sub: e.Sub, Source: e.Source, Next: e.Next,
				Hops: e.Hops, PathID: e.PathID,
				RateMean: e.Rate.Mean, RateSigma: e.Rate.Sigma,
				Relaxed: e.Relaxed,
			})
		}
	}
	for to, ls := range n.linkSenders {
		st.Marks[to] = ls.seq.Load()
	}
	return n.store.Reset(st)
}

// Drain shuts the node down gracefully for a planned restart: the
// routing table and send watermarks are checkpointed first, so the next
// incarnation warm-rejoins from an exact snapshot instead of the
// incremental log. (Crash skips the checkpoint — that is the point.)
func (n *Node) Drain() {
	_ = n.CheckpointTable()
	n.Stop()
}

// observeEpoch raises the recorded incarnation epoch of a neighbor
// broker (Hello and heartbeat frames announce it).
func (n *Node) observeEpoch(peer msg.NodeID, e uint32) {
	if peer == msg.None {
		return
	}
	n.epochMu.Lock()
	if e > n.peerEpochs[peer] {
		n.peerEpochs[peer] = e
	}
	n.epochMu.Unlock()
}

// rejectStale reports whether a data frame from a neighbor carries an
// epoch older than the newest that neighbor announced — a frame sent by
// a dead incarnation, counted and discarded by the caller.
func (n *Node) rejectStale(peer msg.NodeID, e uint32) bool {
	if peer == msg.None {
		return false
	}
	n.epochMu.Lock()
	stale := e < n.peerEpochs[peer]
	n.epochMu.Unlock()
	if stale {
		n.cnt.staleEpoch.Add(1)
		if n.sink != nil {
			n.sink.StaleEpoch(1)
		}
	}
	return stale
}

// Listen binds the node's TCP listener and starts accepting connections.
// It returns the bound address (useful with ":0").
func (n *Node) Listen(addr string) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	n.listener = l
	n.wg.Add(1)
	go n.acceptLoop()
	return l.Addr().String(), nil
}

// ConnectPeers dials every overlay neighbor at the given addresses and
// starts one sender goroutine per link. Addresses of non-neighbors are
// ignored.
func (n *Node) ConnectPeers(addrs map[msg.NodeID]string) error {
	for _, e := range n.cfg.Overlay.Graph.Neighbors(n.cfg.ID) {
		addr, ok := addrs[e.To]
		if !ok {
			return fmt.Errorf("livenet: broker %d: no address for neighbor %d", n.cfg.ID, e.To)
		}
		conn, err := dialRetry(addr, 40, 50*time.Millisecond)
		if err != nil {
			return fmt.Errorf("livenet: broker %d dialing %d: %w", n.cfg.ID, e.To, err)
		}
		hello := msg.AppendHello(nil, msg.RoleBroker, n.cfg.ID, n.epoch.Load())
		if err := msg.WriteFrame(conn, msg.FrameHello, hello); err != nil {
			conn.Close()
			return err
		}
		pacer, ok := n.cfg.Pacers[e.To]
		if !ok {
			pacer = Pacer{
				Sampler: runtime.NewSampler(runtime.LinkNormal, e.Rate, 1),
				Stream:  stats.DeriveN(n.cfg.Seed, "livenet/link", int(n.cfg.ID)<<16|int(uint16(e.To))),
			}
		}
		pc := &peerConn{conn: conn}
		n.mu.Lock()
		n.peers[e.To] = pc
		wake := make(chan struct{}, 1)
		n.wake[e.To] = wake
		n.estimates[e.To] = &stats.WelfordEstimator{Prior: e.Rate}
		n.mu.Unlock()

		// A link facing an injected loss adversary runs the reliable
		// channel: sequence numbers, a bounded retransmit buffer, and an
		// ack loop reading the cumulative acks the peer sends back on
		// this connection (nothing else ever reads a dialed link).
		var ls *linkSender
		if lm := n.cfg.Loss[e.To]; lm != nil {
			ls = newLinkSender(lm, n.cfg.Retry[e.To], n.cfg.RetxWindow)
			// A restarted incarnation resumes the link sequence from the
			// checkpointed watermark so the receiver's dedup window never
			// sees a replayed sequence number as fresh.
			if mark, ok := n.recovered.Marks[e.To]; ok {
				ls.seq.Store(mark)
			}
			n.mu.Lock()
			n.linkSenders[e.To] = ls
			n.mu.Unlock()
			n.wg.Add(1)
			go n.ackLoop(conn, ls.retx)
		}

		n.wg.Add(1)
		if n.sharded() {
			go n.senderLoopBatched(e.To, pc, wake, pacer, ls)
		} else {
			go n.senderLoop(e.To, pc, wake, pacer, ls)
		}
	}
	n.startHeartbeats()
	return nil
}

// ReconnectPeer re-dials one overlay neighbor at a new address — a
// crashed peer reborn on a fresh port — and swaps the link's connection
// in place: the sender goroutine, pacer, reliable-channel state and
// per-link counters all survive, only the wire underneath changes. The
// old connection is closed (its ack reader exits on the dead socket)
// and, on a reliable link, a new ack reader is started for the new one.
func (n *Node) ReconnectPeer(to msg.NodeID, addr string) error {
	conn, err := dialRetry(addr, 40, 50*time.Millisecond)
	if err != nil {
		return fmt.Errorf("livenet: broker %d re-dialing %d: %w", n.cfg.ID, to, err)
	}
	hello := msg.AppendHello(nil, msg.RoleBroker, n.cfg.ID, n.epoch.Load())
	if err := msg.WriteFrame(conn, msg.FrameHello, hello); err != nil {
		conn.Close()
		return err
	}
	n.mu.Lock()
	pc := n.peers[to]
	ls := n.linkSenders[to]
	n.mu.Unlock()
	if pc == nil {
		conn.Close()
		return fmt.Errorf("livenet: broker %d has no link to %d", n.cfg.ID, to)
	}
	pc.mu.Lock()
	old := pc.conn
	pc.conn = conn
	pc.mu.Unlock()
	old.Close()
	if ls != nil {
		n.wg.Add(1)
		go n.ackLoop(conn, ls.retx)
	}
	return nil
}

func dialRetry(addr string, attempts int, backoff time.Duration) (net.Conn, error) {
	var lastErr error
	for i := 0; i < attempts; i++ {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		time.Sleep(backoff)
	}
	return nil, lastErr
}

// Stop shuts the node down: listener, peer connections and sender
// goroutines.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		close(n.stopped)
		if n.listener != nil {
			n.listener.Close()
		}
		n.mu.Lock()
		for _, p := range n.peers {
			p.conn.Close()
		}
		for _, s := range n.locals {
			s.peer.conn.Close()
		}
		for conn := range n.inbound {
			conn.Close()
		}
		n.mu.Unlock()
	})
	n.wg.Wait()
	if n.store != nil {
		n.storeOnce.Do(func() { _ = n.store.Close() })
	}
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats { return n.cnt.snapshot() }

// AggregatedEntries reports how many of this node's live routing entries
// currently stand for more than one concrete subscription (the
// table-size side of covering aggregation).
func (n *Node) AggregatedEntries() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.table.AggregatedEntries()
}

// Stopped reports whether the node has been shut down.
func (n *Node) Stopped() bool {
	select {
	case <-n.stopped:
		return true
	default:
		return false
	}
}

// Crash stops the node as an injected broker failure and accounts
// everything still sitting in its output queues as crash losses — the
// live counterpart of the simulator charging arrivals at a dead broker
// to DroppedCrashed. Messages lost in flight toward a crashed peer are
// charged by the sender when its write fails.
func (n *Node) Crash() {
	n.Stop()
	lost := 0
	n.mu.Lock()
	n.b.EachQueue(func(_ msg.NodeID, q *core.Queue) {
		q.Lock()
		for q.Len() > 0 {
			e := q.RemoveAt(q.Len() - 1)
			releaseEntry(e)
			lost++
		}
		q.Unlock()
	})
	n.mu.Unlock()
	if lost > 0 {
		n.egress.Add(-int64(lost))
		if n.sink != nil {
			n.sink.DroppedCrashed(lost)
		}
	}
}

// admitPub is the node-local admission gate for standalone (plan-less)
// deployments: a publisher message is turned away while the node's
// total output backlog — queued entries plus messages still in flight
// toward the shard workers, which would otherwise hide a channel's
// worth of backlog from the door — sits at or beyond the configured
// queue threshold. The live analogue of the plan-side saturation
// rejection; always true when node-local admission is off.
func (n *Node) admitPub() bool {
	if !n.cfg.Admission.Enabled {
		return true
	}
	if n.egress.Load()+int64(n.inflight.Load()) >= int64(n.cfg.Admission.MaxQueue) {
		n.cnt.pubsRejected.Add(1)
		return false
	}
	return true
}

// releaseEntry returns a consumed queue entry — and the reference it
// holds on its (possibly pooled) message — to their pools.
func releaseEntry(e *core.Entry) {
	if m, ok := e.Data.(*msg.Message); ok {
		m.Release()
	}
	e.Release()
}

// PeakQueue returns the largest occupancy any output queue reached.
func (n *Node) PeakQueue() int {
	if n.sharded() {
		peak := 0
		n.b.EachQueue(func(_ msg.NodeID, q *core.Queue) {
			q.Lock()
			if p := q.Peak(); p > peak {
				peak = p
			}
			q.Unlock()
		})
		return peak
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.b.PeakQueue()
}

// SetLinkDown injects (or lifts) a link outage on the outgoing link to a
// neighbor: while down, the sender starts no new transfers (an in-flight
// transfer finishes, as in the simulator's fault model).
func (n *Node) SetLinkDown(to msg.NodeID, down bool) {
	n.mu.Lock()
	n.linkDown[to] = down
	wake := n.wake[to]
	n.mu.Unlock()
	if !down && wake != nil {
		select {
		case wake <- struct{}{}:
		default:
		}
	}
}

// load is one node's quiescence snapshot (see Cluster.Quiescent).
type load struct {
	sentPeers, recvPeers, recvPubs int64
	queued                         int
	busy, inflight                 int
}

func (n *Node) load() load {
	s := load{
		sentPeers: n.sentPeers.Load(),
		recvPeers: n.recvPeers.Load(),
		recvPubs:  n.recvPubs.Load(),
		busy:      int(n.busySenders.Load()),
		inflight:  int(n.inflight.Load()),
	}
	if n.sharded() {
		n.b.EachQueue(func(_ msg.NodeID, q *core.Queue) {
			q.Lock()
			s.queued += q.Len()
			q.Unlock()
		})
		return s
	}
	n.mu.Lock()
	for _, q := range n.b.Queues() {
		s.queued += q.Len()
	}
	n.mu.Unlock()
	return s
}

// acceptLoop accepts inbound connections (brokers, publishers,
// subscribers) and spawns a reader per connection.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			select {
			case <-n.stopped:
				return
			default:
				continue
			}
		}
		n.mu.Lock()
		select {
		case <-n.stopped:
			n.mu.Unlock()
			conn.Close()
			return
		default:
		}
		n.inbound[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

// readLoop consumes frames from one inbound connection.
func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.inbound, conn)
		n.mu.Unlock()
	}()

	ft, body, err := msg.ReadFrame(conn)
	if err != nil || ft != msg.FrameHello {
		return
	}
	role, peerID, peerEpoch, err := msg.DecodeHello(body)
	if err != nil {
		return
	}
	if role != msg.RoleBroker {
		peerID = msg.None // client hellos carry a client id, not a broker's
	} else {
		n.observeEpoch(peerID, peerEpoch)
	}
	peer := &peerConn{conn: conn}
	if n.sharded() {
		n.readLoopSharded(conn, role, peerID, peer)
		return
	}

	// rl is the reliable-channel receiving state of this link, created
	// lazily on the first data frame (clean links never pay for it).
	var rl *recvLink
	for {
		ft, body, err := msg.ReadFrame(conn)
		if err != nil {
			return
		}
		switch ft {
		case msg.FrameMessage:
			m, err := msg.DecodeMessage(body)
			if err != nil {
				continue // tolerate one corrupt frame; connection survives
			}
			if role == msg.RolePublisher && m.Ingress != n.cfg.ID {
				// Publishers must publish through their ingress broker.
				continue
			}
			if role == msg.RolePublisher && !n.admitPub() {
				// Rejected at the door: the frame still counts as accepted
				// (quiescence compares recvPubs against injected frames).
				n.recvPubs.Add(1)
				continue
			}
			// inflight rises before the receive counters so a quiescence
			// poll can never observe the counters settled while this
			// message is still about to be processed.
			n.inflight.Add(1)
			switch role {
			case msg.RolePublisher:
				n.recvPubs.Add(1)
			case msg.RoleBroker:
				n.recvPeers.Add(1)
			}
			n.receive(m)
			n.inflight.Add(-1)
		case msg.FrameData:
			if role != msg.RoleBroker {
				continue
			}
			seq, base, fepoch, mb, derr := msg.DecodeDataHeader(body)
			if derr != nil {
				continue
			}
			if n.rejectStale(peerID, fepoch) {
				// Sent by a dead incarnation: counted toward the wire
				// totals (like a mangled drop), never processed.
				n.recvPeers.Add(1)
				continue
			}
			m, derr := msg.DecodeMessage(mb)
			if derr != nil {
				continue
			}
			n.inflight.Add(1)
			n.recvPeers.Add(1)
			if rl == nil {
				rl = n.newRecvLink(peer)
			}
			for _, dm := range rl.accept(n, seq, base, m) {
				n.receive(dm)
				n.inflight.Add(-1)
			}
		case msg.FrameDataDrop:
			// The loss shim's mangled write: counted so the wire totals
			// balance, never processed.
			if role == msg.RoleBroker {
				n.recvPeers.Add(1)
			}
		case msg.FrameSubscribe:
			s, err := msg.DecodeSubscription(body)
			if err != nil {
				continue
			}
			var from *peerConn
			if role == msg.RoleSubscriber {
				from = peer
			}
			n.handleSubscribe(s, from)
		case msg.FrameUnsubscribe:
			id, err := msg.DecodeUnsubscribe(body)
			if err != nil {
				continue
			}
			n.handleUnsubscribe(id)
		case msg.FrameHeartbeat:
			if from, e, err := msg.DecodeHeartbeat(body); err == nil {
				n.observeEpoch(from, e)
				n.heartbeatReceived(from)
			}
		case msg.FrameResume:
			if role == msg.RoleSubscriber {
				if sub, lastSeq, derr := msg.DecodeResume(body); derr == nil {
					n.handleResume(sub, lastSeq, peer)
				}
			}
		case msg.FrameAck, msg.FrameHello:
			// Ignored.
		}
	}
}

// handleSubscribe installs a subscription (local conn non-nil when the
// subscriber is attached here) and floods it to neighbors once.
// Pre-installed plan subscriptions only register the local connection.
// With aggregation on, the subscription's edge broker — the one place
// that sees the concrete subscription first — classifies it against the
// resident canonical filters and suppresses the flood when one with
// identical delivery terms already covers it (the covering chain's
// forwarded root carries the upstream traffic).
func (n *Node) handleSubscribe(s *msg.Subscription, local *peerConn) {
	n.mu.Lock()
	if n.removedSubs.has(s.ID) {
		// Tombstoned: a subscribe flood racing its own unsubscribe.
		n.mu.Unlock()
		return
	}
	if n.seenSubs[s.ID] && local == nil {
		n.mu.Unlock()
		return
	}
	first := !n.seenSubs[s.ID]
	n.seenSubs[s.ID] = true
	if local != nil && s.Edge == n.cfg.ID {
		n.locals[s.ID] = &subConn{sub: s, peer: local}
	}
	flood := first
	if first {
		if n.agg != nil && s.Edge == n.cfg.ID {
			switch kind, rep := n.agg.Admit(s); kind {
			case routing.AdmitForward:
				n.installRoutes(s)
			case routing.AdmitMember:
				// Exact duplicate: fold into the representative's local
				// entries; delivery fans out to the group's members.
				n.table.Attach(rep.ID, s)
				flood = false
			case routing.AdmitCovered:
				// Properly covered: local delivery entries only (the edge
				// is terminal on every path to it), upstream traffic rides
				// the covering chain's forwarded root.
				n.installRoutes(s)
				n.table.AddRef(rep.ID)
				flood = false
			}
			if !flood {
				n.cnt.floodsSuppressed.Add(1)
				if n.sink != nil {
					n.sink.FloodSuppressed(1)
				}
			}
		} else {
			n.installRoutes(s)
		}
		n.logSub(s.ID) // durable admission record (no-op without a store)
	}
	peers := make([]*peerConn, 0, len(n.peers))
	if flood {
		for _, p := range n.peers {
			peers = append(peers, p)
		}
	}
	n.mu.Unlock()

	if !flood {
		return
	}
	body, err := msg.AppendSubscription(nil, s)
	if err != nil {
		return
	}
	for _, p := range peers {
		_ = p.writeFrame(msg.FrameSubscribe, body) // dead peers are fine
	}
}

// handleUnsubscribe removes a subscription's routing state and floods the
// removal across the overlay once. A tombstone prevents resurrection by
// late subscribe floods. With aggregation on, the owning edge broker
// realizes the retraction instead: member/covered departures never
// flooded so they never unsubscribe remotely, and a departing
// representative first floods whatever re-exposes its coverage
// (promotion hand-off or re-exposed representatives) so the peers'
// coverage stays gapless — subscribe frames precede the unsubscribe on
// every per-peer TCP stream.
func (n *Node) handleUnsubscribe(id msg.SubID) {
	n.mu.Lock()
	if n.removedSubs.has(id) {
		n.mu.Unlock()
		return
	}
	n.removedSubs.add(id)
	// Forget the flood-dedup entry too: under sustained churn seenSubs
	// would otherwise grow one entry per subscription ever seen.
	delete(n.seenSubs, id)
	delete(n.locals, id)
	delete(n.sessions, id)
	if n.store != nil {
		_ = n.store.RemoveSub(id)
	}

	var types []byte
	var frames [][]byte
	unsubscribe := true
	if n.agg != nil {
		if ret, ok := n.agg.Remove(id); ok {
			unsubscribe = n.retractOwned(id, ret, &types, &frames)
		} else {
			// Not ours: a remote copy of a forwarded subscription.
			n.table.RemoveSub(id)
		}
	} else {
		n.table.RemoveSub(id)
	}
	if unsubscribe {
		types = append(types, msg.FrameUnsubscribe)
		frames = append(frames, msg.AppendUnsubscribe(nil, id))
	}
	var peers []*peerConn
	if len(frames) > 0 {
		peers = make([]*peerConn, 0, len(n.peers))
		for _, p := range n.peers {
			peers = append(peers, p)
		}
	}
	n.mu.Unlock()

	for i, body := range frames {
		for _, p := range peers {
			_ = p.writeFrame(types[i], body)
		}
	}
}

// retractOwned realizes an owner-side retraction on the local table and
// appends the subscribe floods it requires (promotion hand-off,
// re-exposed representatives) to types/frames. It reports whether the
// unsubscribe itself must still flood: only representatives ever
// installed remote state, so member and covered departures stay local.
// Called with n.mu held.
func (n *Node) retractOwned(id msg.SubID, ret routing.Retraction, types *[]byte, frames *[][]byte) bool {
	push := func(s *msg.Subscription) {
		body, err := msg.AppendSubscription(nil, s)
		if err != nil {
			return
		}
		*types = append(*types, msg.FrameSubscribe)
		*frames = append(*frames, body)
	}
	reexpose := func(s *msg.Subscription) {
		switch kind, rep := n.agg.Reexpose(s); kind {
		case routing.AdmitForward:
			// Its local entries survived under the departing coverer;
			// only the peers must install theirs now.
			push(s)
		case routing.AdmitCovered:
			n.table.AddRef(rep.ID)
		}
	}
	switch ret.Kind {
	case routing.RetractMember:
		n.table.Detach(ret.Rep.ID, id)
		return false
	case routing.RetractCovered:
		// Covered canonicals never flooded, so their departure is a
		// purely local affair whatever shape it takes.
		if ret.Promoted != nil {
			// The last exact duplicate inherits the local entries in
			// place (the filter is identical).
			n.table.Promote(id)
			return false
		}
		n.table.RemoveSub(id)
		n.table.DropRef(ret.Rep.ID)
		for _, s := range ret.Reexposed {
			// By transitivity the departing filter's own coverer covers
			// them too, so these normally re-cover without flooding; the
			// cycle guard can still force one to forward.
			reexpose(s)
		}
		return false
	}
	if ret.Promoted != nil {
		// The last exact duplicate inherits the entries in place (the
		// filter is identical); peers swap the entries' identity via the
		// subscribe-then-unsubscribe flood pair.
		n.table.Promote(id)
		push(ret.Promoted)
		return true
	}
	n.table.RemoveSub(id)
	for _, s := range ret.Reexposed {
		reexpose(s)
	}
	return true
}

// Subscribe injects a subscription at this broker exactly as if a
// subscriber client had sent it — routing entries install here and the
// subscription floods across the overlay. The runtime's live churn
// driver uses it to realize a plan's subscribe events at the
// subscription's edge broker.
func (n *Node) Subscribe(s *msg.Subscription) { n.handleSubscribe(s, nil) }

// Unsubscribe injects a subscription withdrawal at this broker: routing
// state is removed, a bounded tombstone guards against late subscribe
// floods, and the removal floods across the overlay.
func (n *Node) Unsubscribe(id msg.SubID) { n.handleUnsubscribe(id) }

// installRoutes computes this broker's routing entries for one
// dynamically flooded subscription: for each ingress, the deterministic
// min-mean path — or the K shortest paths when Multipath is on — using
// the same path-entry definition as static routing builds (n.mu held).
// The installer's per-ingress Dijkstra cache makes each flood cost path
// reconstruction, not a shortest-path computation under the write lock.
func (n *Node) installRoutes(s *msg.Subscription) {
	n.installer.InstallAt(n.cfg.ID, n.table, s)
}

// receive handles one message arrival: processing delay, then the shared
// broker logic — match, deliver locally, enqueue toward next hops — and
// finally the wire side-effects (subscriber frames, sender wake-ups).
func (n *Node) receive(m *msg.Message) {
	// Processing delay, scaled like link delays.
	if pd := n.b.Params().PD * n.cfg.TimeScale; pd > 0 {
		time.Sleep(vtime.ToDuration(pd))
	}
	now := n.clock.Now()

	n.mu.Lock()
	n.cnt.receptions.Add(1)
	if n.sink != nil {
		n.sink.Reception()
	}
	res := n.b.Process(m, now)
	if res.Duplicate {
		n.cnt.duplicates.Add(1)
		n.mu.Unlock()
		return
	}
	// res aliases broker-owned scratch that the next Process overwrites,
	// so it is consumed in full before releasing the lock.
	n.accountResult(&res)
	var wakes []chan struct{}
	// Local deliveries travel as per-session FrameData frames (sequence
	// numbers + bounded replay ring) so a disconnected subscriber can
	// resume exactly-once; the frames are assembled under the lock (the
	// session state lives there) and written after it.
	type localOut struct {
		pc    *peerConn
		frame []byte
	}
	var outs []localOut
	var body []byte
	epoch := n.epoch.Load()
	for _, d := range res.Deliveries {
		sc, attached := n.locals[d.SubID]
		sess, tracked := n.sessions[d.SubID]
		if !attached && !tracked {
			continue
		}
		if !attached {
			// Plan-mode suspended session: retain sequence and deadline
			// data for the resume accounting; there is no wire to frame
			// the delivery for.
			sess.record(epoch, nil, m.Published, d.Allowed)
			continue
		}
		if body == nil {
			b, err := msg.AppendMessage(nil, m)
			if err != nil {
				break
			}
			body = b
		}
		sess = n.session(sc.sub)
		if f := sess.record(epoch, body, m.Published, d.Allowed); f != nil {
			outs = append(outs, localOut{pc: sc.peer, frame: f})
		}
	}
	for _, hop := range res.EnqueuedHops {
		wakes = append(wakes, n.wake[hop])
	}
	n.mu.Unlock()

	for _, o := range outs {
		_ = o.pc.writeBuf(o.frame)
	}
	for _, w := range wakes {
		if w == nil {
			continue
		}
		select {
		case w <- struct{}{}:
		default:
		}
	}
}

// accountResult charges a Process result's deliveries and arrival
// drops to the node counters and the metrics sink — shared by both
// data planes so their accounting cannot drift apart.
func (n *Node) accountResult(res *broker.Result) {
	for _, d := range res.Deliveries {
		n.cnt.deliveries.Add(1)
		if d.Valid {
			n.cnt.validDeliver.Add(1)
		}
		if n.sink != nil {
			n.sink.DeliveredAt(int32(d.SubID), d.Price, d.Published, d.Latency, d.Valid)
		}
	}
	if res.ArrivalDrops > 0 {
		n.cnt.dropsArrival.Add(int64(res.ArrivalDrops))
		if n.sink != nil {
			n.sink.DroppedOnArrival(res.ArrivalDrops)
		}
	}
	// Net occupancy change of this Process call: entries enqueued minus
	// entries the pressure threshold shed back out.
	if d := len(res.EnqueuedHops) - len(res.Shed); d != 0 {
		n.egress.Add(int64(d))
	}
	if len(res.Shed) > 0 {
		n.cnt.dropsShed.Add(int64(len(res.Shed)))
		if n.sink != nil {
			n.sink.DroppedShed(len(res.Shed))
		}
		for _, e := range res.Shed {
			releaseEntry(e)
		}
	}
}

// accountDrops charges pruned entries to the drop counters and releases
// them (and their message references) back to the pools.
func (n *Node) accountDrops(drops []core.Drop) {
	if len(drops) > 0 {
		n.egress.Add(-int64(len(drops)))
	}
	for _, d := range drops {
		if d.Reason == core.DropExpired {
			n.cnt.dropsExpired.Add(1)
			if n.sink != nil {
				n.sink.DroppedExpired(1)
			}
		} else {
			n.cnt.dropsHopeless.Add(1)
			if n.sink != nil {
				n.sink.DroppedHopeless(1)
			}
		}
		releaseEntry(d.Entry)
	}
}

// senderLoop drains one link's queue: pick by strategy, pace to the
// emulated link speed, write the frame. Injected link outages park the
// loop until the link comes back up. A non-nil linkSender routes the
// message through the reliable channel (sendReliable) instead of the
// plain single-frame write.
func (n *Node) senderLoop(to msg.NodeID, pc *peerConn, wake chan struct{}, pacer Pacer, ls *linkSender) {
	defer n.wg.Done()
	for {
		n.mu.Lock()
		if n.linkDown[to] {
			n.mu.Unlock()
			select {
			case <-wake:
				continue
			case <-n.stopped:
				return
			}
		}
		q := n.b.Queue(to)
		e, drops := q.PopNext(n.b.Strategy(), n.clock.Now(), n.b.Params())
		n.accountDrops(drops)
		if e != nil {
			n.egress.Add(-1)
			n.busySenders.Add(1)
		}
		n.mu.Unlock()

		if e == nil {
			select {
			case <-wake:
				continue
			case <-n.stopped:
				return
			}
		}
		m := e.Data.(*msg.Message)
		sizeKB := e.SizeKB
		var dl vtime.Millis
		if ls != nil {
			dl = ls.rp.EffectiveDeadline(e.Targets, sizeKB)
		}
		e.Release()

		if ls != nil {
			ok := n.sendReliable(to, pc, pacer, ls, m, sizeKB, dl)
			n.busySenders.Add(-1)
			if !ok {
				return
			}
			continue
		}

		// Pace the transfer to the sampled rate, measuring the wall time
		// the transfer actually took — the live equivalent of the
		// paper's "tools of network measurement".
		tx := sizeKB * pacer.Sampler.Sample(pacer.Stream) * n.cfg.TimeScale
		start := time.Now()
		select {
		case <-time.After(vtime.ToDuration(tx)):
		case <-n.stopped:
			n.busySenders.Add(-1)
			return
		}
		body, err := msg.AppendMessage(nil, m)
		if err == nil {
			if pc.writeFrame(msg.FrameMessage, body) == nil {
				n.sentPeers.Add(1)
			} else if n.sink != nil {
				// A failed peer write means the message died at a dead
				// (crashed or stopped) neighbor.
				n.sink.DroppedCrashed(1)
			}
		}

		if sizeKB > 0 {
			elapsed := vtime.FromDuration(time.Since(start)) / n.cfg.TimeScale
			n.mu.Lock()
			if est := n.estimates[to]; est != nil {
				est.Observe(elapsed / sizeKB)
			}
			n.mu.Unlock()
		}
		n.busySenders.Add(-1)
	}
}

// LinkEstimate returns the measured per-KB rate estimate for the link to
// a neighbor (emulated milliseconds per KB), and whether any transfers
// have been observed yet. Before enough observations it returns the
// configured prior.
func (n *Node) LinkEstimate(to msg.NodeID) (stats.Normal, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	est, ok := n.estimates[to]
	if !ok {
		return stats.Normal{}, false
	}
	return est.Estimate(), est.Count() > 0
}
