package livenet

import (
	"time"

	"bdps/internal/msg"
	"bdps/internal/runtime"
	"bdps/internal/vtime"
)

// HeartbeatConfig enables per-link failure detection on a live node.
// Each node probes every overlay neighbor with a heartbeat frame per
// Interval and monitors the silence on each inbound link: a neighbor
// quiet for more than 2×Interval is suspected, one quiet past Timeout is
// declared dead. All durations are emulated milliseconds; wall time is
// scaled by the node's TimeScale like every other emulated delay.
type HeartbeatConfig struct {
	// Interval is the probe period; 0 disables heartbeats entirely.
	Interval vtime.Millis
	// Timeout is the silence after which the link is declared dead;
	// 0 defaults to 4×Interval.
	Timeout vtime.Millis
}

// enabled reports whether heartbeating is configured.
func (h HeartbeatConfig) enabled() bool { return h.Interval > 0 }

// timeout returns the dead-declaration silence with the default applied.
func (h HeartbeatConfig) timeout() vtime.Millis {
	if h.Timeout > 0 {
		return h.Timeout
	}
	return 4 * h.Interval
}

// Peer liveness states of the suspect → dead machine.
const (
	peerAlive = iota
	peerSuspect
	peerDead
)

// PeerEvent is one liveness transition observed by a node's heartbeat
// monitor: the directed arc Peer→Observer was confirmed dead (or heard
// again after being declared dead, Restored). Times are emulated ms on
// the node's clock.
type PeerEvent struct {
	Observer  msg.NodeID
	Peer      msg.NodeID
	Restored  bool
	At        vtime.Millis
	LastHeard vtime.Millis
}

// startHeartbeats arms the liveness machinery once peers are connected:
// the shared monitor plus one probe loop per outgoing link. Caller is
// ConnectPeers, after every sender is up.
func (n *Node) startHeartbeats() {
	if !n.cfg.Heartbeat.enabled() {
		return
	}
	now := n.clock.Now()
	n.hbMu.Lock()
	for _, e := range n.cfg.Overlay.Graph.Neighbors(n.cfg.ID) {
		// Every neighbor starts alive as of "now": detection latency is
		// measured from real silence, not from process start-up.
		n.lastHeard[e.To] = now
		n.peerState[e.To] = peerAlive
	}
	n.hbMu.Unlock()
	for to, pc := range n.peers {
		n.wg.Add(1)
		go n.heartbeatLoop(to, pc)
	}
	n.wg.Add(1)
	go n.monitorLoop()
}

// probeScale is the wall milliseconds per emulated heartbeat
// millisecond. The monitor measures silence on the node's clock, so
// probe pacing must follow the clock's compression — which equals the
// configured TimeScale on runtime deployments, but not in the
// throughput-bench mode where TimeScale ≈ 0 zeroes the pacing sleeps
// while the clock stays wall-true.
func (n *Node) probeScale() float64 {
	if wc, ok := n.clock.(*runtime.WallClock); ok {
		return wc.Scale()
	}
	return n.cfg.TimeScale
}

// heartbeatLoop probes one neighbor every Interval. Probes skip links
// taken down by injected faults (the outage must become visible to the
// far monitor) and never touch the quiescence counters — liveness
// traffic is control plane, not data plane.
func (n *Node) heartbeatLoop(to msg.NodeID, pc *peerConn) {
	defer n.wg.Done()
	period := vtime.ToDuration(n.cfg.Heartbeat.Interval * n.probeScale())
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	body := msg.AppendHeartbeat(nil, n.cfg.ID, n.epoch.Load())
	for {
		select {
		case <-n.stopped:
			return
		case <-ticker.C:
		}
		n.mu.RLock()
		down := n.linkDown[to]
		n.mu.RUnlock()
		if down {
			continue
		}
		_ = pc.writeFrame(msg.FrameHeartbeat, body) // silence is the signal
	}
}

// monitorLoop runs the suspect → dead state machine over every inbound
// link, polling at half the probe period.
func (n *Node) monitorLoop() {
	defer n.wg.Done()
	interval := n.cfg.Heartbeat.Interval
	timeout := n.cfg.Heartbeat.timeout()
	period := vtime.ToDuration(interval / 2 * n.probeScale())
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-n.stopped:
			return
		case <-ticker.C:
		}
		now := n.clock.Now()
		var events []PeerEvent
		n.hbMu.Lock()
		for peer, heard := range n.lastHeard {
			silence := now - heard
			switch {
			case silence > timeout && n.peerState[peer] != peerDead:
				n.peerState[peer] = peerDead
				events = append(events, PeerEvent{
					Observer: n.cfg.ID, Peer: peer, At: now, LastHeard: heard,
				})
			case silence > 2*interval && n.peerState[peer] == peerAlive:
				n.peerState[peer] = peerSuspect
			}
		}
		n.hbMu.Unlock()
		if n.cfg.OnPeerEvent != nil {
			for _, ev := range events {
				n.cfg.OnPeerEvent(ev)
			}
		}
	}
}

// heartbeatReceived refreshes one inbound link's liveness; a probe from
// a neighbor previously declared dead revives the link (transient outage
// over) and reports the restoration.
func (n *Node) heartbeatReceived(from msg.NodeID) {
	if !n.cfg.Heartbeat.enabled() {
		return
	}
	now := n.clock.Now()
	var restored bool
	n.hbMu.Lock()
	if _, known := n.lastHeard[from]; !known {
		n.hbMu.Unlock()
		return // not an overlay neighbor
	}
	n.lastHeard[from] = now
	if n.peerState[from] == peerDead {
		restored = true
	}
	n.peerState[from] = peerAlive
	n.hbMu.Unlock()
	if restored && n.cfg.OnPeerEvent != nil {
		n.cfg.OnPeerEvent(PeerEvent{
			Observer: n.cfg.ID, Peer: from, Restored: true, At: now, LastHeard: now,
		})
	}
}

// PeerLiveness reports the monitor's view of one inbound link: when the
// neighbor was last heard and whether it is currently declared dead.
func (n *Node) PeerLiveness(peer msg.NodeID) (lastHeard vtime.Millis, dead bool) {
	n.hbMu.Lock()
	defer n.hbMu.Unlock()
	return n.lastHeard[peer], n.peerState[peer] == peerDead
}

// MutateTable runs fn with the node's routing-table write lock held,
// excluding every concurrent matcher on both data planes. The topology
// repairer applies its table deltas through it.
func (n *Node) MutateTable(fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	fn()
}
