package livenet

import (
	"bdps/internal/msg"
	"bdps/internal/runtime"
	"bdps/internal/vtime"
)

// This file is the broker side of resumable client sessions. Every
// local delivery on the classic data plane travels to the subscriber as
// a FrameData frame carrying a per-session delivery sequence number,
// and is retained — encoded — in a bounded replay ring. A subscriber
// that loses its connection (client crash, edge network blip) redials
// and sends a FrameResume with its resume token (subscription id + last
// delivered sequence); the broker reattaches the connection and replays
// the ring entries past the token through the deadline gate: a retained
// delivery whose bound has already expired is dropped as
// DroppedDeadline — a resumed subscriber never receives a late message,
// and the sequence numbers make redelivery exactly-once.

// sessionRingDefault bounds the per-session replay ring (shared with
// the simulator's session model so the resume ledgers agree).
const sessionRingDefault = runtime.SessionRingLimit

// tableSub returns the subscription one of this broker's routing
// entries names, or nil if no entry routes it. Caller holds n.mu; the
// scan is linear in the table — resumes are control-plane rare.
func (n *Node) tableSub(id msg.SubID) *msg.Subscription {
	for _, src := range n.table.Sources() {
		for _, e := range n.table.Entries(src) {
			if e.Sub.ID == id {
				return e.Sub
			}
		}
	}
	return nil
}

// sessDelivery is one retained delivery: its session sequence, the
// deadline data the resume gate needs, and the encoded message body.
type sessDelivery struct {
	seq       uint64
	published vtime.Millis
	allowed   vtime.Millis
	body      []byte
}

// session is one subscriber's resumable delivery state (guarded by the
// node's mu). lastAck is the plan-mode resume token: the sequence last
// delivered before a scheduled suspension (real clients carry their
// token themselves).
type session struct {
	sub     *msg.Subscription
	seq     uint64 // last assigned delivery sequence
	lastAck uint64
	ring    []sessDelivery
	limit   int
}

// session returns (creating on first use) the resumable session of one
// locally attached subscription. Caller holds n.mu.
func (n *Node) session(sub *msg.Subscription) *session {
	s, ok := n.sessions[sub.ID]
	if !ok {
		s = &session{sub: sub, limit: sessionRingDefault}
		n.sessions[sub.ID] = s
	}
	return s
}

// frame assembles the FrameData wire frame of one retained delivery
// (nil for body-less plan-mode entries).
func (s *sessDelivery) frame(epoch uint32) []byte {
	if s.body == nil {
		return nil
	}
	f := msg.BeginFrame(nil, msg.FrameData)
	f = msg.AppendDataHeader(f, s.seq, s.seq, epoch)
	f = append(f, s.body...)
	if msg.EndFrame(f, 0) != nil {
		return nil // bounded by the decoded frame it re-encodes
	}
	return f
}

// record assigns the next delivery sequence, retains the delivery in
// the replay ring, and returns the assembled wire frame. Caller holds
// n.mu; body is copied (callers reuse their encode scratch). A nil body
// records sequence and deadline data only — a plan-mode session with no
// real subscriber behind it has no wire to rewrite to — and returns no
// frame.
func (s *session) record(epoch uint32, body []byte, published, allowed vtime.Millis) []byte {
	s.seq++
	d := sessDelivery{seq: s.seq, published: published, allowed: allowed}
	if body != nil {
		d.body = append([]byte(nil), body...)
	}
	if len(s.ring) >= s.limit {
		copy(s.ring, s.ring[1:])
		s.ring[len(s.ring)-1] = d
	} else {
		s.ring = append(s.ring, d)
	}
	if d.body == nil {
		return nil
	}
	return d.frame(epoch)
}

// handleResume reattaches a reconnected subscriber and replays the
// retained deliveries past its resume token. The deadline gate: at the
// edge the residual path is the local client connection — zero modeled
// delay, σ = 0 — so the admission CDF degenerates to "slack ≥ 0": a
// retained delivery is replayed only while its bound still holds, and
// expired ones are charged to DroppedDeadline instead of arriving late.
func (n *Node) handleResume(id msg.SubID, lastSeq uint64, peer *peerConn) {
	now := n.clock.Now()
	n.mu.Lock()
	sess, ok := n.sessions[id]
	if !ok {
		// A restarted incarnation lost its replay rings with the crash,
		// but the WAL reinstalled the routing entry: if this broker still
		// routes the subscription, reattach under a fresh session that
		// continues the client's sequence numbering — the retained window
		// died with the old process, so nothing replays, but later
		// deliveries must not fall below the client's dedup cursor.
		sub := n.tableSub(id)
		if sub == nil {
			n.mu.Unlock()
			return // unknown subscription: nothing to reattach or replay
		}
		sess = &session{sub: sub, seq: lastSeq, limit: sessionRingDefault}
		n.sessions[id] = sess
	}
	n.locals[id] = &subConn{sub: sess.sub, peer: peer}
	n.cnt.sessionsResumed.Add(1)
	if n.sink != nil {
		n.sink.SessionResumed(1)
	}
	epoch := n.epoch.Load()
	var frames [][]byte
	expired := 0
	for i := range sess.ring {
		d := &sess.ring[i]
		if d.seq <= lastSeq {
			continue // already delivered before the disconnect
		}
		if d.allowed <= 0 || now-d.published > d.allowed {
			expired++
			continue
		}
		if f := d.frame(epoch); f != nil {
			frames = append(frames, f)
		}
	}
	if expired > 0 {
		n.cnt.droppedDeadline.Add(int64(expired))
		if n.sink != nil {
			n.sink.DroppedDeadline(expired)
		}
	}
	n.cnt.msgsReplayed.Add(int64(len(frames)))
	if n.sink != nil && len(frames) > 0 {
		n.sink.MsgReplayed(len(frames))
	}
	n.mu.Unlock()

	for _, f := range frames {
		if peer.writeBuf(f) != nil {
			return // the reconnect died already; the next resume replays
		}
	}
}

// SessionSuspend begins broker-side delivery retention for one static
// subscription: the plan-mode half of a SessionDown fault, standing in
// for a real subscriber losing its connection. The current delivery
// sequence becomes the resume token SessionResume gates against.
func (n *Node) SessionSuspend(sub *msg.Subscription) {
	n.mu.Lock()
	s := n.session(sub)
	s.lastAck = s.seq
	n.mu.Unlock()
}

// SessionResume ends a plan-mode session outage with the accounting a
// real client's FrameResume produces — session resumed, retained
// deliveries past the token replayed while their bound still holds,
// expired ones charged to DroppedDeadline — without any wire writes.
// The session is dropped afterwards: retention restarts fresh at the
// next suspension.
func (n *Node) SessionResume(id msg.SubID) {
	now := n.clock.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	sess, ok := n.sessions[id]
	if !ok {
		return
	}
	n.cnt.sessionsResumed.Add(1)
	if n.sink != nil {
		n.sink.SessionResumed(1)
	}
	replayed, expired := 0, 0
	for i := range sess.ring {
		d := &sess.ring[i]
		if d.seq <= sess.lastAck {
			continue
		}
		if d.allowed <= 0 || now-d.published > d.allowed {
			expired++
			continue
		}
		replayed++
	}
	if expired > 0 {
		n.cnt.droppedDeadline.Add(int64(expired))
		if n.sink != nil {
			n.sink.DroppedDeadline(expired)
		}
	}
	n.cnt.msgsReplayed.Add(int64(replayed))
	if n.sink != nil && replayed > 0 {
		n.sink.MsgReplayed(replayed)
	}
	delete(n.sessions, id)
}
