package livenet

import (
	"fmt"
	grt "runtime"
	"testing"
	"time"

	"bdps/internal/core"
	"bdps/internal/filter"
	"bdps/internal/msg"
	"bdps/internal/stats"
	"bdps/internal/topology"
	"bdps/internal/vtime"
)

// TestClusterStopNoGoroutineLeak pins the shutdown path: start a
// cluster, run traffic through it, stop it, and require the goroutine
// count to return to baseline. A leaked accept loop, reader, sender —
// or, with shards enabled, dispatcher worker — shows up here as a
// stuck surplus.
func TestClusterStopNoGoroutineLeak(t *testing.T) {
	for _, shards := range []int{0, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			testClusterStopNoGoroutineLeak(t, shards)
		})
	}
}

func testClusterStopNoGoroutineLeak(t *testing.T, shards int) {
	baseline := grt.NumGoroutine()

	c, err := StartCluster(ClusterConfig{
		Overlay:   tinyOverlay(t),
		Scenario:  msg.PSD,
		Strategy:  core.MaxEB{},
		TimeScale: 0.002,
		Seed:      1,
		Shards:    shards,
	})
	if err != nil {
		t.Fatal(err)
	}

	sub := &msg.Subscription{ID: 1, Edge: 2, Filter: &filter.Filter{}}
	s, err := DialSubscriber(c.Addr(2), sub)
	if err != nil {
		c.Stop()
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	p, err := DialPublisher(c.Addr(0), 0)
	if err != nil {
		c.Stop()
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.Publish(0, msg.NumAttrs(map[string]float64{"A1": 1}), 50, 20*vtime.Second, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Receive(5 * time.Second); err != nil {
		t.Fatalf("warm-up delivery: %v", err)
	}

	p.Close()
	s.Close()
	c.Stop() // must reap accept loops, readers and senders

	// Client readLoops exit asynchronously once their conns die; poll
	// until the count settles back to the baseline (small slack for
	// unrelated test-runtime goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := grt.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := grt.Stack(buf, true)
			t.Fatalf("goroutines leaked after Stop: %d > baseline %d\n%s",
				grt.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLiveMultipathDedupDynamicFlood covers multipath in the dynamic
// subscription-flood mode: a diamond overlay with Multipath 2 must
// route one publication over both paths, dedup the second arrival at
// the edge, and deliver to the subscriber exactly once.
func TestLiveMultipathDedupDynamicFlood(t *testing.T) {
	g := topology.NewGraph(4)
	for _, l := range []struct {
		a, b msg.NodeID
		mean float64
	}{{0, 1, 50}, {0, 2, 55}, {1, 3, 50}, {2, 3, 55}} {
		if err := g.AddLink(l.a, l.b, stats.Normal{Mean: l.mean, Sigma: 5}); err != nil {
			t.Fatal(err)
		}
	}
	ov := &topology.Overlay{Graph: g, Ingress: []msg.NodeID{0}, Edges: []msg.NodeID{3}}
	c, err := StartCluster(ClusterConfig{
		Overlay:   ov,
		Scenario:  msg.PSD,
		Strategy:  core.MaxEB{},
		TimeScale: 0.002,
		Seed:      1,
		Multipath: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)

	sub := &msg.Subscription{ID: 1, Edge: 3, Filter: &filter.Filter{}}
	s, err := DialSubscriber(c.Addr(3), sub)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	time.Sleep(100 * time.Millisecond) // subscription flood

	p, err := DialPublisher(c.Addr(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	want, err := p.Publish(0, msg.NumAttrs(map[string]float64{"A1": 1}), 50, 30*vtime.Second, nil)
	if err != nil {
		t.Fatal(err)
	}

	m, err := s.Receive(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != want {
		t.Errorf("delivered id %d, want %d", m.ID, want)
	}
	// Dedup: the copy over the second path must not reach the subscriber
	// again.
	if extra, err := s.Receive(400 * time.Millisecond); err == nil {
		t.Errorf("duplicate delivery %d: multipath dedup broken", extra.ID)
	}
	// Both paths carried the message: 1 (ingress) + 2 (middles) + 2
	// (edge arrivals, one suppressed as duplicate).
	total := c.TotalStats()
	if total.Receptions < 5 {
		t.Errorf("receptions = %d, want ≥5 (message must traverse both paths)", total.Receptions)
	}
	if total.Duplicates == 0 {
		t.Error("edge broker should have counted a suppressed duplicate")
	}
}
