package livenet

import (
	"fmt"
	"os"
	"sort"
	"time"

	"bdps/internal/msg"
	"bdps/internal/runtime"
	"bdps/internal/vtime"
)

// Transport is the live TCP backend of the unified runtime layer: it
// deploys a runtime.Plan as an in-process loopback cluster (one Node per
// broker, static routing tables, plan link pacers), paces the plan's
// publication schedule in compressed wall time, and waits for the
// overlay to quiesce. Wall-clock jitter makes live runs statistically —
// not bitwise — reproducible, so the experiment cache never caches them.
type Transport struct{}

// Name implements runtime.Transport.
func (Transport) Name() string { return "live" }

// Deterministic implements runtime.Transport.
func (Transport) Deterministic() bool { return false }

// Deploy implements runtime.Transport.
func (Transport) Deploy(p *runtime.Plan) (runtime.Deployment, error) {
	ts := p.Cfg.TimeScale
	if ts <= 0 {
		ts = 1
	}
	clock := runtime.NewWallClock(ts)
	sink := runtime.Locked(p.Metrics)
	cc := ClusterConfig{
		Plan:      p,
		TimeScale: ts,
		Clock:     clock,
		Sink:      sink,
		Shards:    p.Cfg.LiveShards,
	}
	// A plan that schedules broker restarts needs durable state to
	// recover from: provision a throwaway state root for the run (the
	// deployment removes it on Close).
	stateRoot := ""
	for _, f := range p.Cfg.Faults {
		if _, ok := f.(runtime.BrokerRestart); ok {
			dir, err := os.MkdirTemp("", "bdps-state-")
			if err != nil {
				return nil, err
			}
			stateRoot, cc.StateRoot = dir, dir
			break
		}
	}
	// With recovery on, every node heartbeats its links and the monitors'
	// liveness events funnel into one repair goroutine that owns the
	// failure detector (started below, once the cluster exists).
	var events chan PeerEvent
	if p.Cfg.Recovery.Detect {
		events = make(chan PeerEvent, 256)
		cc.Heartbeat = HeartbeatConfig{
			Interval: p.Cfg.Recovery.HeartbeatInterval,
			Timeout:  p.Cfg.Recovery.HeartbeatTimeout,
		}
		cc.OnPeerEvent = func(ev PeerEvent) { events <- ev }
	}
	c, err := StartCluster(cc)
	if err != nil {
		if stateRoot != "" {
			os.RemoveAll(stateRoot)
		}
		return nil, err
	}
	d := &deployment{plan: p, cluster: c, clock: clock, ts: ts, sink: sink, stateRoot: stateRoot}
	if events != nil {
		d.events = events
		d.repairDone = make(chan struct{})
		d.faultAt = faultInstants(p)
		det := runtime.NewFailureDetector(p, sink, func(id msg.NodeID, fn func()) {
			c.Node(id).MutateTable(fn)
		})
		d.det = det
		go d.repairLoop(det)
	}
	// One publishing client per ingress, like the workload model: the
	// plan's publisher index i attaches to Overlay.Ingress[i].
	for i, ingress := range p.Overlay.Ingress {
		pub, err := DialPublisher(c.Addr(ingress), msg.NodeID(i))
		if err != nil {
			d.Close()
			return nil, err
		}
		pub.Clock = clock
		d.pubs = append(d.pubs, pub)
	}
	return d, nil
}

// deployment is one live run: a cluster, its publishing clients and the
// injected-fault timers.
type deployment struct {
	plan    *runtime.Plan
	cluster *Cluster
	clock   *runtime.WallClock
	ts      float64
	sink    runtime.Sink

	pubs     []*Publisher
	timers   []*time.Timer
	injected int

	// det is the shared failure detector (nil when recovery is off); a
	// broker restart notifies it directly from the fault timer.
	det *runtime.FailureDetector
	// stateRoot is the auto-provisioned durable-state directory backing
	// the run's broker restarts (removed on Close; empty when the plan
	// schedules none).
	stateRoot string

	// churn driver lifecycle (nil when the plan has no churn).
	churnStop chan struct{}
	churnDone chan struct{}

	// recovery lifecycle (nil when recovery is off): the liveness-event
	// channel feeding the repair goroutine, its completion signal, and
	// the injected-fault onsets detection latency is measured against.
	events     chan PeerEvent
	repairDone chan struct{}
	faultAt    map[[2]msg.NodeID]vtime.Millis
}

// faultInstants maps each directed arc an injected fault silences to the
// fault's onset: a broker crash silences every arc out of the dead
// broker; a link outage silences the arc itself. Detection latency is
// the gap between this instant and the monitor's confirmation.
func faultInstants(p *runtime.Plan) map[[2]msg.NodeID]vtime.Millis {
	at := make(map[[2]msg.NodeID]vtime.Millis)
	for _, f := range p.Cfg.Faults {
		switch f := f.(type) {
		case runtime.BrokerCrash:
			for _, e := range p.Overlay.Graph.Neighbors(f.ID) {
				arc := [2]msg.NodeID{f.ID, e.To}
				if _, ok := at[arc]; !ok {
					at[arc] = f.At
				}
			}
		case runtime.LinkDown:
			arc := [2]msg.NodeID{f.From, f.To}
			if _, ok := at[arc]; !ok {
				at[arc] = f.Start
			}
		}
	}
	return at
}

// repairLoop consumes liveness events and drives the failure detector:
// each confirmed-dead arc becomes a detection plus a topology repair,
// each restoration moves the affected routes back. One goroutine owns
// the detector, so repairs are serialized even when many monitors
// confirm at once.
func (d *deployment) repairLoop(det *runtime.FailureDetector) {
	defer close(d.repairDone)
	for ev := range d.events {
		if ev.Restored {
			det.ArcRestored(ev.Peer, ev.Observer)
			continue
		}
		arc := [2]msg.NodeID{ev.Peer, ev.Observer}
		faultAt, known := d.faultAt[arc]
		if !known {
			// Not an injected fault (organic silence): measure from the
			// last probe actually heard.
			faultAt = ev.LastHeard
		}
		det.ArcsDead([][2]msg.NodeID{arc}, faultAt, ev.At)
	}
}

// Inject implements runtime.Deployment: re-anchor the clock so emulated
// time 0 is now, arm the fault timers, then send every publication
// through its ingress broker at its scheduled emulated instant.
func (d *deployment) Inject(pubs []*msg.Message) error {
	d.clock.Restart()
	d.armFaults()
	d.armChurn()

	order := make([]*msg.Message, len(pubs))
	copy(order, pubs)
	sort.SliceStable(order, func(i, j int) bool { return order[i].Published < order[j].Published })
	for _, m := range order {
		if wait := m.Published - d.clock.Now(); wait > 0 {
			time.Sleep(vtime.ToDuration(wait * d.ts))
		}
		idx := int(m.Publisher)
		if idx < 0 || idx >= len(d.pubs) {
			return fmt.Errorf("livenet: publication %d from unknown publisher %d", m.ID, m.Publisher)
		}
		if err := d.pubs[idx].Send(m); err != nil {
			if len(d.plan.Cfg.Faults) > 0 {
				// An injected crash can take an ingress broker (and with
				// it the publisher connection) down mid-run; the
				// simulator charges such publications to the crash, so
				// the live run does too instead of aborting.
				d.sink.DroppedCrashed(1)
				continue
			}
			return fmt.Errorf("livenet: injecting message %d: %w", m.ID, err)
		}
		d.injected++
	}
	return nil
}

// armFaults schedules the plan's injected failures on wall timers,
// relative to the freshly anchored clock.
func (d *deployment) armFaults() {
	after := func(at vtime.Millis, fn func()) {
		d.timers = append(d.timers, time.AfterFunc(vtime.ToDuration(at*d.ts), fn))
	}
	for _, f := range d.plan.Cfg.Faults {
		switch f := f.(type) {
		case runtime.LinkDown:
			from, to := f.From, f.To
			after(f.Start, func() { d.cluster.Node(from).SetLinkDown(to, true) })
			after(f.End, func() { d.cluster.Node(from).SetLinkDown(to, false) })
		case runtime.BrokerCrash:
			id := f.ID
			after(f.At, func() { d.cluster.Node(id).Crash() })
		case runtime.BrokerRestart:
			id := f.ID
			after(f.At, func() { d.restartBroker(id) })
		case runtime.SessionDown:
			var sub *msg.Subscription
			for _, s := range d.plan.Subs {
				if s.ID == f.Sub {
					sub = s
					break
				}
			}
			if sub == nil {
				continue // validated against the static population; defensive
			}
			s := sub
			after(f.Start, func() {
				if node := d.cluster.Node(s.Edge); node != nil {
					node.SessionSuspend(s)
				}
			})
			after(f.End, func() {
				if node := d.cluster.Node(s.Edge); node != nil {
					node.SessionResume(s.ID)
				}
			})
		}
	}
}

// restartBroker realizes one BrokerRestart fault: the cluster rebuilds
// the broker from its durable state directory, and before any wire
// reconnects, the plan's broker and table maps are swapped to the new
// incarnation and the repair engine withdraws the crash evidence — so
// its re-flood lands on the recovered table and the monitors' later
// organic Restored events find nothing left to repair. The replayed-sub
// ledger counts the distinct subscriptions the WAL reinstalled.
func (d *deployment) restartBroker(id msg.NodeID) {
	_, _ = d.cluster.RestartNode(id, func(n *Node) {
		swap := func() {
			d.plan.Tables[id] = n.table
			d.plan.Brokers[id] = n.b
		}
		if st, ok := n.Restarted(); ok {
			subs := make(map[msg.SubID]bool, len(st.Entries))
			for _, e := range st.Entries {
				subs[e.Sub.ID] = true
			}
			if len(subs) > 0 {
				d.sink.SubReplayed(len(subs))
			}
		}
		if d.det != nil {
			d.det.BrokerRestarted(id, swap)
		} else {
			swap()
		}
	})
}

// armChurn starts one pacing goroutine that walks the plan's
// time-sorted churn schedule, injecting each event at the
// subscription's edge broker at its scaled instant (it floods across
// the overlay like any dynamic subscription) — the live counterpart of
// the simulator's timed table mutations. A single sequential driver,
// like Inject's publication pacing, guarantees a subscription's
// unsubscribe can never overtake its subscribe, which independent
// per-event timers would allow for lifetimes inside the
// scheduling-jitter window (the unsubscribe would tombstone the id and
// the late subscribe would be dropped for good).
func (d *deployment) armChurn() {
	if len(d.plan.SubEvents) == 0 {
		return
	}
	d.churnStop = make(chan struct{})
	d.churnDone = make(chan struct{})
	go func() {
		defer close(d.churnDone)
		for i := range d.plan.SubEvents {
			ev := d.plan.SubEvents[i]
			if wait := ev.At - d.clock.Now(); wait > 0 {
				select {
				case <-time.After(vtime.ToDuration(wait * d.ts)):
				case <-d.churnStop:
					return
				}
			}
			node := d.cluster.Nodes[ev.Sub.Edge]
			if node == nil {
				continue
			}
			if ev.Unsub {
				node.Unsubscribe(ev.Sub.ID)
			} else {
				node.Subscribe(ev.Sub)
			}
		}
	}()
}

// Drain implements runtime.Deployment: poll until the overlay is
// provably idle (twice in a row, to close the socket-buffer window), or
// until activity stalls with a fault in play, or until a hard timeout.
func (d *deployment) Drain() error {
	const poll = 5 * time.Millisecond
	// Generous hard ceiling: the whole publishing window plus the
	// longest allowed delay, in wall time, plus slack for overheads.
	window := d.plan.Cfg.Workload.Duration + 2*vtime.Minute
	deadline := time.Now().Add(time.Duration(float64(vtime.ToDuration(window))*d.ts) + 20*time.Second)

	idleStreak, stableStreak := 0, 0
	lastStats := d.cluster.TotalStats()
	for time.Now().Before(deadline) {
		if d.cluster.Quiescent(d.injected) {
			idleStreak++
			if idleStreak >= 2 {
				return nil
			}
		} else {
			idleStreak = 0
		}
		// Fallback for faulty runs (a crashed broker never accounts its
		// inbound frames, so Quiescent's totals never close): declare
		// the run over once every surviving node is locally idle AND
		// nothing has changed for a sustained period. The Settled guard
		// keeps a long paced transfer — seconds of frozen stats at
		// TimeScale 1 — from being mistaken for completion.
		if s := d.cluster.TotalStats(); s == lastStats {
			stableStreak++
			if len(d.plan.Cfg.Faults) > 0 && stableStreak >= 100 && d.cluster.Settled() {
				return nil
			}
		} else {
			lastStats = s
			stableStreak = 0
		}
		time.Sleep(poll)
	}
	return fmt.Errorf("livenet: drain timed out with the overlay still active")
}

// PeakQueue implements runtime.Deployment.
func (d *deployment) PeakQueue() int { return d.cluster.PeakQueue() }

// Close implements runtime.Deployment.
func (d *deployment) Close() error {
	if d.churnStop != nil {
		close(d.churnStop)
		<-d.churnDone
	}
	for _, t := range d.timers {
		t.Stop()
	}
	for _, p := range d.pubs {
		p.Close()
	}
	// Stop the cluster before closing the event channel: Stop waits for
	// every heartbeat monitor, so no OnPeerEvent send can race the close.
	d.cluster.Stop()
	if d.events != nil {
		close(d.events)
		<-d.repairDone
	}
	if d.stateRoot != "" {
		os.RemoveAll(d.stateRoot)
	}
	return nil
}
