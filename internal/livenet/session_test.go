package livenet

import (
	grt "runtime"
	"testing"
	"time"

	"bdps/internal/core"
	"bdps/internal/filter"
	"bdps/internal/msg"
	"bdps/internal/runtime"
	"bdps/internal/vtime"
)

// collectDeliveries drains the subscriber into ids until want distinct
// messages arrived or the deadline passes, asserting every delivery is
// unique and within its bound.
func collectDeliveries(t *testing.T, s *Subscriber, ids map[msg.ID]bool, want int, deadline time.Duration) {
	t.Helper()
	until := time.Now().Add(deadline)
	for len(ids) < want {
		m, err := s.Receive(time.Until(until))
		if err != nil {
			t.Fatalf("after %d of %d deliveries: %v", len(ids), want, err)
		}
		if ids[m.ID] {
			t.Fatalf("message %d delivered twice: resume must be exactly-once", m.ID)
		}
		if !s.Valid(m, msg.PSD) {
			t.Fatalf("message %d delivered past its bound: a resumed session must never replay late", m.ID)
		}
		ids[m.ID] = true
	}
}

// TestSessionResumeUnderLoss is the client-facing half of session
// resumption, on a lossy network: a real subscriber receives a prefix of
// the stream, drops its connection mid-run while publications continue
// against the per-link loss/dup adversary, then reattaches with its
// resume token. The edge broker replays the retained window and the
// client's cursor dedups the seam — across the whole run every published
// message arrives exactly once, none past its bound, and the cluster
// shuts down without leaking a goroutine.
func TestSessionResumeUnderLoss(t *testing.T) {
	baseline := grt.NumGoroutine()

	c, err := StartCluster(ClusterConfig{
		Overlay:   tinyOverlay(t),
		Scenario:  msg.PSD,
		Strategy:  core.MaxEB{},
		TimeScale: 0.002,
		Seed:      1,
		// The same deterministic adversary the crossval tests use: every
		// arc drops a fifth of its frames and duplicates a twentieth; the
		// reliable channel retransmits and dedups underneath the session.
		LinkLoss: &runtime.LinkLoss{From: msg.None, To: msg.None, Rate: 0.2, Dup: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	sub := &msg.Subscription{ID: 1, Edge: 2, Filter: &filter.Filter{}}
	s, err := DialSubscriber(c.Addr(2), sub)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // subscription flood

	p, err := DialPublisher(c.Addr(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	attrs := msg.NumAttrs(map[string]float64{"A1": 1, "A2": 2})
	publish := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			// A generous bound: loss retries must never push a delivery
			// past it, so "zero late deliveries" is asserted absolutely.
			if _, err := p.Publish(0, attrs, 1, 5*vtime.Minute, nil); err != nil {
				t.Fatal(err)
			}
		}
	}

	got := make(map[msg.ID]bool)
	publish(10)
	collectDeliveries(t, s, got, 10, 10*time.Second)

	// The session drops: the subscriber's connection dies, but the broker
	// keeps matching — deliveries land in the session's replay ring.
	tok := s.Token()
	s.Close()
	publish(10)
	time.Sleep(300 * time.Millisecond) // let the in-flight tail reach the ring

	// Resume: the broker replays the retained window past the token; the
	// client cursor drops anything it already saw.
	r, err := ResumeSubscriber(c.Addr(2), sub, tok)
	if err != nil {
		t.Fatal(err)
	}
	collectDeliveries(t, r, got, 20, 10*time.Second)

	// The resumed session keeps receiving live traffic after the replay.
	publish(5)
	collectDeliveries(t, r, got, 25, 10*time.Second)
	r.Close()

	total := c.TotalStats()
	if total.MsgsReplayed == 0 {
		t.Error("edge broker replayed nothing: deliveries during the outage should come from the ring")
	}
	if total.SessionsResumed != 1 {
		t.Errorf("sessions resumed = %d, want 1", total.SessionsResumed)
	}
	if total.FramesLost == 0 {
		t.Error("adversary lost nothing: the loss path was not exercised")
	}

	c.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for grt.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := grt.Stack(buf, true)
			t.Fatalf("goroutines leaked after Stop: %d > baseline %d\n%s",
				grt.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSessionResumeAcrossBrokerRestart drives the full crash-restart
// story with real clients: the edge broker crashes (taking the replay
// ring and the subscriber's connection with it), restarts warm from its
// WAL, and the client reattaches with its resume token against the new
// incarnation. The recovered routing table must keep matching without
// any re-subscription, and the seam stays exactly-once.
func TestSessionResumeAcrossBrokerRestart(t *testing.T) {
	c, err := StartCluster(ClusterConfig{
		Overlay:   tinyOverlay(t),
		Scenario:  msg.PSD,
		Strategy:  core.MaxEB{},
		TimeScale: 0.002,
		Seed:      1,
		StateRoot: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	sub := &msg.Subscription{ID: 1, Edge: 2, Filter: &filter.Filter{}}
	s, err := DialSubscriber(c.Addr(2), sub)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // subscription flood (logged to the WAL)

	p, err := DialPublisher(c.Addr(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	attrs := msg.NumAttrs(map[string]float64{"A1": 1, "A2": 2})

	got := make(map[msg.ID]bool)
	for i := 0; i < 5; i++ {
		if _, err := p.Publish(0, attrs, 1, 5*vtime.Minute, nil); err != nil {
			t.Fatal(err)
		}
	}
	collectDeliveries(t, s, got, 5, 10*time.Second)

	// Crash the edge: the subscriber's session dies with it.
	tok := s.Token()
	s.Close()
	oldEpoch := c.Node(2).Epoch()
	c.Node(2).Crash()
	n, err := c.RestartNode(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := n.Restarted(); !ok || len(st.Entries) == 0 {
		t.Fatal("restarted edge recovered no durable entries")
	}
	if n.Epoch() <= oldEpoch {
		t.Errorf("epoch did not advance across restart: %d → %d", oldEpoch, n.Epoch())
	}

	// Resume against the new incarnation: the ring died with the crash,
	// so nothing replays, but the recovered table keeps matching and the
	// resumed session receives everything published from here on.
	r, err := ResumeSubscriber(c.Addr(2), sub, tok)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	time.Sleep(100 * time.Millisecond) // resume handshake
	for i := 0; i < 5; i++ {
		if _, err := p.Publish(0, attrs, 1, 5*vtime.Minute, nil); err != nil {
			t.Fatal(err)
		}
	}
	collectDeliveries(t, r, got, 10, 10*time.Second)

	if n := c.Node(2).Stats().SessionsResumed; n != 1 {
		t.Errorf("sessions resumed at the new incarnation = %d, want 1", n)
	}
}

// TestRestartResumeSoak cycles the edge broker through five
// crash→restart→resume rounds on one WAL. Every round must recover the
// routing state from the log, reattach the same client session under a
// strictly rising incarnation epoch, and deliver the round's traffic
// exactly once; after the final Stop the goroutine count returns to the
// pre-cluster baseline — five rebirths leak nothing.
func TestRestartResumeSoak(t *testing.T) {
	baseline := grt.NumGoroutine()

	c, err := StartCluster(ClusterConfig{
		Overlay:   tinyOverlay(t),
		Scenario:  msg.PSD,
		Strategy:  core.MaxEB{},
		TimeScale: 0.002,
		Seed:      1,
		StateRoot: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	sub := &msg.Subscription{ID: 1, Edge: 2, Filter: &filter.Filter{}}
	s, err := DialSubscriber(c.Addr(2), sub)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // subscription flood (logged to the WAL)

	p, err := DialPublisher(c.Addr(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	attrs := msg.NumAttrs(map[string]float64{"A1": 1, "A2": 2})

	got := make(map[msg.ID]bool)
	epoch := c.Node(2).Epoch()
	for round := 1; round <= 5; round++ {
		tok := s.Token()
		s.Close()
		c.Node(2).Crash()
		n, err := c.RestartNode(2, nil)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if st, ok := n.Restarted(); !ok || len(st.Entries) == 0 {
			t.Fatalf("round %d: restarted edge recovered no durable entries", round)
		}
		if e := n.Epoch(); e <= epoch {
			t.Fatalf("round %d: epoch did not advance: %d → %d", round, epoch, e)
		} else {
			epoch = e
		}
		s, err = ResumeSubscriber(c.Addr(2), sub, tok)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		time.Sleep(100 * time.Millisecond) // resume handshake
		for i := 0; i < 3; i++ {
			if _, err := p.Publish(0, attrs, 1, 5*vtime.Minute, nil); err != nil {
				t.Fatal(err)
			}
		}
		collectDeliveries(t, s, got, 3*round, 10*time.Second)
	}
	s.Close()
	if n := len(got); n != 15 {
		t.Errorf("delivered %d distinct messages across 5 rounds, want 15", n)
	}

	c.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for grt.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := grt.Stack(buf, true)
			t.Fatalf("goroutines leaked after 5 restart cycles: %d > baseline %d\n%s",
				grt.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSessionRingBounded pins the replay ring's memory bound: with far
// more deliveries retained than SessionRingLimit, a resume replays only
// the newest window — never an unbounded backlog.
func TestSessionRingBounded(t *testing.T) {
	c, err := StartCluster(ClusterConfig{
		Overlay:   tinyOverlay(t),
		Scenario:  msg.PSD,
		Strategy:  core.MaxEB{},
		TimeScale: 1e-9, // pacing off: this is a volume test
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	sub := &msg.Subscription{ID: 1, Edge: 2, Filter: &filter.Filter{}}
	s, err := DialSubscriber(c.Addr(2), sub)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if _, err := s.Receive(0); err == nil {
		t.Fatal("unexpected delivery before any publication")
	}
	tok := s.Token()
	s.Close()

	p, err := DialPublisher(c.Addr(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	attrs := msg.NumAttrs(map[string]float64{"A1": 1, "A2": 2})
	over := runtime.SessionRingLimit + 100
	for i := 0; i < over; i++ {
		if _, err := p.Publish(0, attrs, 0.001, vtime.Hour, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Quiesce: every publication must have reached the edge's ring.
	deadline := time.Now().Add(10 * time.Second)
	for !c.Quiescent(over) {
		if time.Now().After(deadline) {
			t.Fatalf("cluster did not quiesce:\n%s", c.LoadReport())
		}
		time.Sleep(5 * time.Millisecond)
	}

	r, err := ResumeSubscriber(c.Addr(2), sub, tok)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := 0
	for {
		if _, err := r.Receive(2 * time.Second); err != nil {
			break
		}
		got++
	}
	if got > runtime.SessionRingLimit {
		t.Errorf("resume replayed %d messages, want ≤ the ring bound %d", got, runtime.SessionRingLimit)
	}
	if got < runtime.SessionRingLimit/2 {
		t.Errorf("resume replayed only %d messages, want a full-ish ring (limit %d)", got, runtime.SessionRingLimit)
	}
	if n := c.Node(2).Stats().MsgsReplayed; n != got {
		t.Errorf("broker counted %d replays, client saw %d", n, got)
	}
}
