package livenet

import (
	"testing"

	"bdps/internal/filter"
	"bdps/internal/msg"
	"bdps/internal/vtime"
)

// BenchmarkSessionResume measures the broker-side cost of one session
// resume against a full replay ring: scanning the retained deliveries
// past the client's token, gating each on its deadline, and assembling
// the FrameData wire frames — the work handleResume does under the
// node lock, minus the socket writes.
func BenchmarkSessionResume(b *testing.B) {
	m := &msg.Message{
		ID: 1, Publisher: 100, Ingress: 0,
		Published: 0, Allowed: vtime.Hour, SizeKB: 1,
		Attrs:   msg.NumAttrs(map[string]float64{"A1": 1, "A2": 2}),
		Payload: make([]byte, 1024),
	}
	body, err := msg.AppendMessage(nil, m)
	if err != nil {
		b.Fatal(err)
	}
	sub := &msg.Subscription{ID: 1, Edge: 0, Filter: &filter.Filter{}}
	s := &session{sub: sub, limit: sessionRingDefault}
	for i := 0; i < sessionRingDefault; i++ {
		s.record(1, body, 0, vtime.Hour)
	}
	token := uint64(sessionRingDefault / 2) // half the ring replays

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replayed := 0
		for j := range s.ring {
			d := &s.ring[j]
			if d.seq <= token {
				continue
			}
			if d.allowed <= 0 || vtime.Millis(0)-d.published > d.allowed {
				continue
			}
			if f := d.frame(2); f != nil {
				replayed++
			}
		}
		if replayed != sessionRingDefault-int(token) {
			b.Fatalf("replayed %d, want %d", replayed, sessionRingDefault-int(token))
		}
	}
}
