package livenet

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"bdps/internal/core"
	"bdps/internal/filter"
	"bdps/internal/msg"
	"bdps/internal/vtime"
)

// aggScenario drives one fixed overlay through the full aggregation
// lifecycle — rep + covered + exact duplicate, then unsubscribe of the
// coverer (promotion) and of the promoted rep (re-exposure) — and
// returns the message IDs each subscriber received in each phase, plus
// the cluster stats observed while all three were live.
func aggScenario(t *testing.T, aggregate bool) (received map[string][]msg.ID, suppressed int, aggEntries int) {
	t.Helper()
	c, err := StartCluster(ClusterConfig{
		Overlay:   tinyOverlay(t),
		Scenario:  msg.PSD,
		Strategy:  core.MaxEB{},
		TimeScale: 0.002,
		Seed:      1,
		Aggregate: aggregate,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)

	settle := func() { time.Sleep(150 * time.Millisecond) }
	broad := &msg.Subscription{ID: 1, Edge: 2, Filter: filter.MustParse("A1 < 8")}
	narrow := &msg.Subscription{ID: 2, Edge: 2, Filter: filter.MustParse("A1 < 5")}
	dup := &msg.Subscription{ID: 3, Edge: 2, Filter: filter.MustParse("A1 < 8")}

	subs := make(map[msg.SubID]*Subscriber)
	for _, s := range []*msg.Subscription{broad, narrow, dup} {
		cl, err := DialSubscriber(c.Addr(2), s)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		subs[s.ID] = cl
		settle()
	}

	p, err := DialPublisher(c.Addr(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })

	received = make(map[string][]msg.ID)
	publishPhase := func(phase int, live []msg.SubID) {
		t.Helper()
		for _, a1 := range []float64{3, 6, 9} {
			id, err := p.Publish(0, msg.NumAttrs(map[string]float64{"A1": a1, "A2": 1}),
				50, 20*vtime.Second, nil)
			if err != nil {
				t.Fatal(err)
			}
			_ = id
		}
		for _, sid := range live {
			key := fmt.Sprintf("p%d/s%d", phase, sid)
			cl := subs[sid]
			for {
				m, err := cl.Receive(500 * time.Millisecond)
				if err != nil {
					break
				}
				received[key] = append(received[key], m.ID)
			}
			sort.Slice(received[key], func(i, j int) bool { return received[key][i] < received[key][j] })
		}
	}

	publishPhase(1, []msg.SubID{1, 2, 3})
	total := c.TotalStats()
	suppressed = total.FloodsSuppressed
	aggEntries = c.AggregatedEntries()

	// Coverer departs: the exact duplicate must be promoted into its
	// routes and the covered subscription must keep delivering.
	if err := subs[1].Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	settle()
	publishPhase(2, []msg.SubID{2, 3})

	// Promoted rep departs: the covered subscription is re-exposed and
	// must still deliver on its own upstream routes.
	if err := subs[3].Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	settle()
	publishPhase(3, []msg.SubID{2})
	return received, suppressed, aggEntries
}

// TestLiveAggregatedEquivalence: the aggregated overlay must deliver
// bit-identical message sets to a flat overlay through subscription,
// covering suppression, promotion, and re-exposure — while actually
// suppressing floods and aggregating table entries.
func TestLiveAggregatedEquivalence(t *testing.T) {
	flat, flatSup, _ := aggScenario(t, false)
	agg, aggSup, aggEntries := aggScenario(t, true)

	// Phase 1: A1=3 reaches all, A1=6 reaches the two broad subs, A1=9
	// none. Phase 2 (coverer gone): narrow and promoted dup. Phase 3
	// (dup gone): narrow only. Count expectations double as ground truth
	// for the flat baseline.
	wantCounts := map[string]int{
		"p1/s1": 2, "p1/s2": 1, "p1/s3": 2,
		"p2/s2": 1, "p2/s3": 2,
		"p3/s2": 1,
	}
	for key, want := range wantCounts {
		if got := len(flat[key]); got != want {
			t.Errorf("flat %s: %d deliveries, want %d", key, got, want)
		}
	}
	for key := range wantCounts {
		f, a := flat[key], agg[key]
		if len(f) != len(a) {
			t.Fatalf("%s: flat received %d messages, aggregated %d", key, len(f), len(a))
		}
		// Message IDs are allocated per publisher connection in publish
		// order, and both runs publish the identical schedule — the sets
		// must match element for element.
		for i := range f {
			if f[i] != a[i] {
				t.Fatalf("%s: delivery sets diverge: flat %v aggregated %v", key, f, a)
			}
		}
	}

	if flatSup != 0 {
		t.Errorf("flat run suppressed %d floods, want 0", flatSup)
	}
	if aggSup != 2 {
		t.Errorf("aggregated run suppressed %d floods, want 2 (covered + duplicate)", aggSup)
	}
	if aggEntries == 0 {
		t.Error("aggregated run reports no aggregated entries while a 3-strong group was live")
	}
}

// TestLiveAggregatedChurnDuringPublish runs covered-subscription churn
// against a live publish stream on an aggregated overlay: the resident
// broad subscriber must receive every message throughout, and the run
// must be clean under -race (matching shares tables with owner-side
// aggregation mutations).
func TestLiveAggregatedChurnDuringPublish(t *testing.T) {
	c, err := StartCluster(ClusterConfig{
		Overlay:   tinyOverlay(t),
		Scenario:  msg.PSD,
		Strategy:  core.MaxEB{},
		TimeScale: 0.002,
		Seed:      1,
		Aggregate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)

	resident := &msg.Subscription{ID: 1, Edge: 2, Filter: filter.MustParse("A1 < 100")}
	rs, err := DialSubscriber(c.Addr(2), resident)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	time.Sleep(150 * time.Millisecond)

	p, err := DialPublisher(c.Addr(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 30; i++ {
			s := &msg.Subscription{ID: msg.SubID(100 + i), Edge: 2,
				Filter: filter.MustParse("A1 < 5")}
			cl, err := DialSubscriber(c.Addr(2), s)
			if err != nil {
				t.Error(err)
				return
			}
			if err := cl.Unsubscribe(); err != nil {
				t.Error(err)
				return
			}
			cl.Close()
		}
	}()

	want := make(map[msg.ID]bool)
	for i := 0; i < 20; i++ {
		id, err := p.Publish(0, msg.NumAttrs(map[string]float64{"A1": 50, "A2": 1}),
			50, 20*vtime.Second, nil)
		if err != nil {
			t.Fatal(err)
		}
		want[id] = true
		time.Sleep(5 * time.Millisecond)
	}
	<-done

	for len(want) > 0 {
		m, err := rs.Receive(3 * time.Second)
		if err != nil {
			t.Fatalf("resident subscriber missing %d messages: %v", len(want), err)
		}
		delete(want, m.ID)
	}
}
