package livenet

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"bdps/internal/broker"
	"bdps/internal/core"
	"bdps/internal/msg"
	"bdps/internal/vtime"
)

// This file is the high-throughput live data plane (NodeConfig.Shards
// ≥ 1). The classic plane (node.go) decodes every frame with fresh
// allocations, funnels all processing through one node-wide lock, and
// pays two write syscalls per outbound frame; this one is built to
// scale with cores and to amortize every per-message cost:
//
//   - Ingress: each connection's read loop decodes frames zero-copy
//     into pooled messages and accumulates them into per-shard batches,
//     flushing to the shard channels whenever the connection's buffer
//     runs dry (or a batch cap is hit). A message's shard is keyed by
//     its publication stream (the publisher id), so one stream is
//     always processed by one worker, in arrival order — per-stream
//     delivery order is exactly the single-threaded plane's.
//   - Processing: each shard worker drives its own broker.Processor;
//     workers for independent streams run broker matching and
//     enqueueing in parallel, synchronizing only on the per-queue locks
//     and the striped dedup set inside the broker. Subscription floods
//     still take the node lock exclusively, parking all workers.
//   - Egress: each sender drains its link queue in bursts (PopNext per
//     message, so per-queue deadline scheduling is untouched), sleeps
//     one pacing delay for the whole burst — the sum of the sampled
//     per-message transfer times, honoring the paper's per-KB link
//     model at burst granularity — and flushes the burst with one
//     writev.
type shard struct {
	ch chan *inBatch
}

const (
	// defaultBurst caps the egress burst (NodeConfig.Burst default).
	defaultBurst = 32
	// maxIngressBatch caps how many decoded messages a read loop
	// accumulates before it must flush to the shard channels.
	maxIngressBatch = 64
	// shardQueueDepth is the per-shard channel depth, in batches. A full
	// channel blocks the read loops — TCP backpressure toward senders.
	shardQueueDepth = 128
)

// inBatch is one read loop's hand-off to one shard: consecutive
// messages of the connection whose streams map to that shard. done,
// when non-nil, is the dispatching connection's outstanding-batch
// counter, decremented by the worker once the batch is fully processed
// (the control-frame ordering barrier).
type inBatch struct {
	msgs []*msg.Message
	done *atomic.Int32
}

var inBatchPool = sync.Pool{New: func() any { return new(inBatch) }}

func getBatch(done *atomic.Int32) *inBatch {
	b := inBatchPool.Get().(*inBatch)
	b.done = done
	return b
}

func (b *inBatch) release() {
	if b.done != nil {
		b.done.Add(-1)
	}
	b.msgs = b.msgs[:0]
	b.done = nil
	inBatchPool.Put(b)
}

// startShards launches the k ingress workers (called from NewNode; the
// workers exit when the node stops).
func (n *Node) startShards(k int) {
	n.shards = make([]*shard, k)
	for i := range n.shards {
		s := &shard{ch: make(chan *inBatch, shardQueueDepth)}
		n.shards[i] = s
		n.wg.Add(1)
		go n.shardWorker(s)
	}
}

// readLoopSharded consumes frames from one inbound connection on the
// sharded plane. Message frames decode zero-copy into pooled messages
// and batch toward the shard workers; control frames (subscribe,
// unsubscribe) flush pending batches first so control never overtakes
// the data queued behind it, then run inline like the classic plane.
func (n *Node) readLoopSharded(conn net.Conn, role byte, peerID msg.NodeID, peer *peerConn) {
	fr := msg.NewFrameReader(conn)
	var dec msg.Decoder
	pend := make([]*inBatch, len(n.shards))
	pending := 0
	// rl is the reliable-channel receiving state of this link, created
	// lazily on the first data frame (clean links never pay for it).
	var rl *recvLink
	// outstanding counts this connection's batches dispatched but not
	// yet fully processed by their workers; control frames wait for it
	// to reach zero so they cannot overtake the data queued behind them.
	var outstanding atomic.Int32

	// flush hands every pending batch to its shard, blocking when a
	// shard is saturated (backpressure). It reports false on shutdown.
	flush := func() bool {
		if pending == 0 {
			return true
		}
		// End-to-end backpressure: while the node's total output backlog
		// exceeds MaxEgress, hold the batches here instead of feeding the
		// workers. The paused read loop stops draining its socket, the
		// kernel buffers fill, and TCP pushes back on the upstream sender
		// — so a slow subscriber bounds queue growth at every hop on the
		// path instead of ballooning this node's queues. The pressure
		// signal is queued + dispatched work: dispatched covers messages
		// parked in the shard channels, which would otherwise hide up to
		// shardQueueDepth batches from the gate, yet counts only work
		// that drains without our help — gating on inflight would let
		// concurrent read loops deadlock on each other's undispatched
		// pending. Occupancy is bounded by MaxEgress plus one batch per
		// concurrently-reading connection.
		if max := int64(n.cfg.MaxEgress); max > 0 {
			for n.egress.Load()+int64(n.dispatched.Load()) >= max {
				select {
				case <-n.stopped:
					return false
				default:
					time.Sleep(50 * time.Microsecond)
				}
			}
		}
		for i, b := range pend {
			if b == nil {
				continue
			}
			pend[i] = nil
			outstanding.Add(1)
			n.dispatched.Add(int32(len(b.msgs)))
			select {
			case n.shards[i].ch <- b:
			case <-n.stopped:
				n.dispatched.Add(-int32(len(b.msgs)))
				n.inflight.Add(-int32(len(b.msgs)))
				for _, m := range b.msgs {
					m.Release()
				}
				b.release()
			}
		}
		pending = 0
		return !n.Stopped()
	}
	defer flush()

	// drain additionally waits until the workers have processed every
	// batch this connection dispatched — the per-connection ordering
	// barrier the classic plane gets for free from inline processing.
	drain := func() bool {
		if !flush() {
			return false
		}
		for outstanding.Load() > 0 {
			select {
			case <-n.stopped:
				return false
			default:
				time.Sleep(20 * time.Microsecond)
			}
		}
		return true
	}

	for {
		fb := msg.GetFrameBuf()
		ft, body, err := fr.Next(fb)
		if err != nil {
			fb.Release()
			return
		}
		switch ft {
		case msg.FrameMessage:
			m := msg.GetMessage()
			took, derr := dec.DecodeMessageInto(m, body, fb)
			if !took {
				fb.Release()
			}
			// Every skip path below must still honor the idle-flush: if the
			// connection's trailing frames are all skipped, earlier accepted
			// messages would otherwise park in pend until the connection
			// closes.
			if derr != nil {
				m.Release() // tolerate one corrupt frame; connection survives
				if fr.Buffered() == 0 && !flush() {
					return
				}
				continue
			}
			if role == msg.RolePublisher && m.Ingress != n.cfg.ID {
				// Publishers must publish through their ingress broker.
				m.Release()
				if fr.Buffered() == 0 && !flush() {
					return
				}
				continue
			}
			if role == msg.RolePublisher && !n.admitPub() {
				// Rejected at the door: the frame still counts as accepted
				// (quiescence compares recvPubs against injected frames).
				n.recvPubs.Add(1)
				m.Release()
				if fr.Buffered() == 0 && !flush() {
					return
				}
				continue
			}
			si := int(uint32(m.Publisher)) % len(n.shards)
			b := pend[si]
			if b == nil {
				b = getBatch(&outstanding)
				pend[si] = b
			}
			b.msgs = append(b.msgs, m)
			pending++
			// inflight rises before the receive counters so a quiescence
			// poll can never observe the counters settled while this
			// message still awaits its worker.
			n.inflight.Add(1)
			switch role {
			case msg.RolePublisher:
				n.recvPubs.Add(1)
			case msg.RoleBroker:
				n.recvPeers.Add(1)
			}
			if pending >= maxIngressBatch || fr.Buffered() == 0 {
				if !flush() {
					return
				}
			}
		case msg.FrameData:
			if role != msg.RoleBroker {
				fb.Release()
				continue
			}
			seq, base, fepoch, mb, derr := msg.DecodeDataHeader(body)
			if derr != nil {
				fb.Release()
				continue
			}
			if n.rejectStale(peerID, fepoch) {
				// Sent by a dead incarnation: counted toward the wire
				// totals (like a mangled drop), never processed.
				fb.Release()
				n.recvPeers.Add(1)
				if fr.Buffered() == 0 && !flush() {
					return
				}
				continue
			}
			m := msg.GetMessage()
			took, derr := dec.DecodeMessageInto(m, mb, fb)
			if !took {
				fb.Release()
			}
			if derr != nil {
				m.Release()
				continue
			}
			// inflight covers the frame from here until its worker (or the
			// dedup/reorder state) consumes it — a frame parked in the
			// reorder buffer keeps its hold, so quiescence cannot blink
			// true while a gap is still being healed.
			n.inflight.Add(1)
			n.recvPeers.Add(1)
			if rl == nil {
				rl = n.newRecvLink(peer)
			}
			// Messages come back in restored FIFO order and batch toward
			// the shard workers in that order, preserving the per-stream
			// delivery ordering the sharded plane guarantees.
			for _, dm := range rl.accept(n, seq, base, m) {
				si := int(uint32(dm.Publisher)) % len(n.shards)
				b := pend[si]
				if b == nil {
					b = getBatch(&outstanding)
					pend[si] = b
				}
				b.msgs = append(b.msgs, dm)
				pending++
			}
			if pending >= maxIngressBatch || fr.Buffered() == 0 {
				if !flush() {
					return
				}
			}
		case msg.FrameDataDrop:
			// The loss shim's mangled write: counted so the wire totals
			// balance, never processed.
			fb.Release()
			if role == msg.RoleBroker {
				n.recvPeers.Add(1)
			}
			if fr.Buffered() == 0 && !flush() {
				return
			}
		case msg.FrameSubscribe:
			s, derr := msg.DecodeSubscription(body)
			fb.Release()
			if derr != nil {
				continue
			}
			if !drain() {
				return
			}
			var from *peerConn
			if role == msg.RoleSubscriber {
				from = peer
			}
			n.handleSubscribe(s, from)
		case msg.FrameUnsubscribe:
			id, derr := msg.DecodeUnsubscribe(body)
			fb.Release()
			if derr != nil {
				continue
			}
			if !drain() {
				return
			}
			n.handleUnsubscribe(id)
		case msg.FrameHeartbeat:
			from, fepoch, derr := msg.DecodeHeartbeat(body)
			fb.Release()
			// A heartbeat behind the last data frame defeats the
			// Buffered()==0 idle-flush heuristic above: without this flush
			// the tail batch parks in pend until the next data frame,
			// which after a crash upstream may never come.
			if !flush() {
				return
			}
			if derr == nil {
				// Liveness bookkeeping only — no quiescence counters, no
				// ordering barrier: heartbeats are control-plane noise the
				// data plane must not feel.
				n.observeEpoch(from, fepoch)
				n.heartbeatReceived(from)
			}
		default:
			fb.Release() // FrameAck, FrameHello: ignored
			if !flush() {
				return
			}
		}
	}
}

// shardWorker processes its shard's batches with a private
// broker.Processor and reusable encode scratch.
func (n *Node) shardWorker(s *shard) {
	defer n.wg.Done()
	proc := n.b.NewProcessor()
	var (
		encBuf []byte
		subs   []*peerConn
		wakes  []chan struct{}
	)
	for {
		select {
		case <-n.stopped:
			return
		case b := <-s.ch:
			for _, m := range b.msgs {
				encBuf, subs, wakes = n.processSharded(proc, m, encBuf, subs, wakes)
			}
			b.release()
		}
	}
}

// processSharded is the sharded plane's counterpart of Node.receive:
// one message through the shared broker logic, then the wire
// side-effects. The scratch slices are threaded through and returned so
// the worker reuses them across messages.
func (n *Node) processSharded(proc *broker.Processor, m *msg.Message,
	encBuf []byte, subs []*peerConn, wakes []chan struct{}) ([]byte, []*peerConn, []chan struct{}) {
	// Processing delay, scaled like link delays.
	if pd := n.b.Params().PD * n.cfg.TimeScale; pd > 0 {
		if d := vtime.ToDuration(pd); d > 0 {
			time.Sleep(d)
		}
	}
	now := n.clock.Now()
	n.cnt.receptions.Add(1)
	if n.sink != nil {
		n.sink.Reception()
	}

	// The message may enter up to nlinks output queues, whose senders
	// release their references concurrently the moment Process enqueues;
	// retain the worst case up front and return the unused references
	// once the actual fan-out is known.
	links := n.nlinks
	m.Retain(links)

	subs = subs[:0]
	wakes = wakes[:0]
	n.mu.RLock()
	res := proc.Process(m, now)
	if !res.Duplicate {
		for _, d := range res.Deliveries {
			if sc, ok := n.locals[d.SubID]; ok {
				subs = append(subs, sc.peer)
			}
		}
		for _, hop := range res.EnqueuedHops {
			if wk := n.wake[hop]; wk != nil {
				wakes = append(wakes, wk)
			}
		}
	}
	n.mu.RUnlock()

	if res.Duplicate {
		n.cnt.duplicates.Add(1)
		m.ReleaseN(links + 1)
		n.dispatched.Add(-1)
		n.inflight.Add(-1)
		return encBuf, subs, wakes
	}
	n.accountResult(&res)
	if len(subs) > 0 {
		var err error
		encBuf, err = msg.AppendMessageFrame(encBuf[:0], m)
		if err == nil {
			for _, pc := range subs {
				_ = pc.writeBuf(encBuf) // dead subscribers are fine
			}
		}
	}
	// Drop the unused link references and the decode reference; queue
	// entries keep theirs until their sender (or a drop path) releases.
	m.ReleaseN(links - int32(len(res.EnqueuedHops)) + 1)
	for _, wk := range wakes {
		select {
		case wk <- struct{}{}:
		default:
		}
	}
	n.dispatched.Add(-1)
	n.inflight.Add(-1)
	return encBuf, subs, wakes
}

// senderLoopBatched drains one link's queue in bursts: pick up to Burst
// entries by strategy (per-queue scheduling order untouched), sleep one
// pacing delay for the whole burst, flush it with one writev. Injected
// link outages park the loop until the link comes back up. A non-nil
// linkSender routes each burst through the reliable channel: chains
// resolved against the adversary, every attempt paced and written (lost
// ones mangled), the whole burst still leaving in one syscall.
func (n *Node) senderLoopBatched(to msg.NodeID, pc *peerConn, wake chan struct{}, pacer Pacer, ls *linkSender) {
	defer n.wg.Done()
	q := n.b.Queue(to)
	burst := n.burst
	entries := make([]*core.Entry, 0, burst)
	bufs := make([][]byte, burst) // per-slot reusable frame buffers
	lens := make([]int, 0, burst)
	frames := make([][]byte, 0, burst)
	var wv net.Buffers // reusable writev view over frames (consumed per burst)
	for {
		n.mu.RLock()
		down := n.linkDown[to]
		n.mu.RUnlock()
		if down {
			select {
			case <-wake:
				continue
			case <-n.stopped:
				return
			}
		}

		// One scheduling instant for the whole burst: PopBurst scores
		// every queued entry once at this now and heap-selects the k
		// the strategy would send, in send order — O(n + k log n) where
		// k sequential Picks would rescan the queue per message.
		strategy, params, now := n.b.Strategy(), n.b.Params(), n.clock.Now()
		q.Lock()
		var drops []core.Drop
		entries, drops = q.PopBurst(strategy, now, params, burst, entries[:0])
		n.accountDrops(drops)
		if len(entries) > 0 {
			n.egress.Add(-int64(len(entries)))
			// Set inside the pop critical section, like the classic
			// plane, so a quiescence poll cannot see the queue empty
			// before the transfer is visible as in-progress.
			n.busySenders.Add(1)
		}
		q.Unlock()
		if len(entries) == 0 {
			select {
			case <-wake:
				continue
			case <-n.stopped:
				return
			}
		}

		// One pacing sleep for the burst: Σ size·rate over the sampled
		// per-message rates — the same total transfer time the classic
		// plane would sleep across the burst, in one step. On a lossy
		// link every resolved attempt (and duplicated copy) charges its
		// own sample instead.
		var tx, sizeSum float64
		if ls != nil {
			tx, sizeSum = n.resolveBurst(ls, entries, pacer, now)
		} else {
			for _, e := range entries {
				tx += e.SizeKB * pacer.Sampler.Sample(pacer.Stream)
				sizeSum += e.SizeKB
			}
		}
		tx *= n.cfg.TimeScale
		start := time.Now()
		if d := vtime.ToDuration(tx); d > 0 {
			select {
			case <-time.After(d):
			case <-n.stopped:
				// Stopped mid-transfer: the held burst dies with the
				// node. A healthy run quiesces before Stop, so this
				// only fires on crash/abort paths — charge the loss
				// like the queue drain in Crash does.
				if n.sink != nil {
					n.sink.DroppedCrashed(len(entries))
				}
				for _, e := range entries {
					releaseEntry(e)
				}
				n.busySenders.Add(-1)
				return
			}
		}

		if ls != nil {
			orderBurst(ls, now)
			for i := range ls.chains {
				n.accountChain(&ls.chains[i].out)
			}
			n.writeBurstReliable(pc, ls)
			for _, e := range entries {
				releaseEntry(e)
			}
			if sizeSum > 0 {
				elapsed := vtime.FromDuration(time.Since(start)) / n.cfg.TimeScale
				n.mu.Lock()
				if est := n.estimates[to]; est != nil {
					est.Observe(elapsed / sizeSum)
				}
				n.mu.Unlock()
			}
			n.busySenders.Add(-1)
			continue
		}

		frames = frames[:0]
		lens = lens[:0]
		ok := 0
		for _, e := range entries {
			m := e.Data.(*msg.Message)
			b, err := msg.AppendMessageFrame(bufs[ok][:0], m)
			if err != nil {
				continue // oversized re-encode cannot happen for decoded frames
			}
			bufs[ok] = b
			frames = append(frames, b)
			lens = append(lens, len(b))
			ok++
		}
		wv = net.Buffers(frames)
		written, err := pc.writeBuffers(&wv)
		if err == nil {
			n.sentPeers.Add(int64(ok))
		} else {
			// Count the frames that fully left the node; the rest died
			// at a dead (crashed or stopped) neighbor.
			sent := 0
			var cum int64
			for _, l := range lens {
				if cum+int64(l) > written {
					break
				}
				cum += int64(l)
				sent++
			}
			n.sentPeers.Add(int64(sent))
			if failed := ok - sent; failed > 0 && n.sink != nil {
				n.sink.DroppedCrashed(failed)
			}
		}
		for _, e := range entries {
			releaseEntry(e)
		}

		if sizeSum > 0 {
			elapsed := vtime.FromDuration(time.Since(start)) / n.cfg.TimeScale
			n.mu.Lock()
			if est := n.estimates[to]; est != nil {
				est.Observe(elapsed / sizeSum)
			}
			n.mu.Unlock()
		}
		n.busySenders.Add(-1)
	}
}
