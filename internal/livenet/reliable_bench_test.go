package livenet

import (
	"testing"

	"bdps/internal/msg"
	"bdps/internal/runtime"
)

// BenchmarkRetransmit measures the reliable channel's bookkeeping on the
// hot path: the bounded retransmit buffer cycling add → get (a
// retransmission re-reading its frame) → cumulative ack trim, at the
// default window, with a wire-realistic 1 KiB frame. This is the per-data
// frame overhead every lossy link pays on top of the clean plane.
func BenchmarkRetransmit(b *testing.B) {
	frame := make([]byte, 1024)
	b.Run("cycle", func(b *testing.B) {
		rb := newRetxBuf(64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			seq := uint64(i + 1)
			rb.add(seq, frame)
			if rb.get(seq) == nil {
				b.Fatal("frame vanished before ack")
			}
			if seq >= 16 {
				rb.ack(seq - 15)
			}
		}
	})
	// Eviction pressure: a peer that never acks forces the window's
	// lowest-sequence eviction on every add.
	b.Run("evict", func(b *testing.B) {
		rb := newRetxBuf(64)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rb.add(uint64(i+1), frame)
		}
	})
	// Receiver-side mirror: dedup/reorder restoration at the same cadence,
	// with every 64th pair of frames arriving swapped.
	b.Run("recv", func(b *testing.B) {
		rs := runtime.NewRecvState(64)
		m := &msg.Message{}
		out := make([]*msg.Message, 0, 4)
		b.ReportAllocs()
		b.ResetTimer()
		seq := uint64(1)
		for i := 0; i < b.N; i++ {
			if seq%64 == 0 {
				out, _, _ = rs.Accept(seq+1, 1, m, out[:0])
				out, _, _ = rs.Accept(seq, 1, m, out[:0])
				seq += 2
			} else {
				out, _, _ = rs.Accept(seq, 1, m, out[:0])
				seq++
			}
		}
		if len(out) == 0 && rs.Pending() > 1 {
			b.Fatal("receiver wedged")
		}
	})
}
