package livenet

import (
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"

	"bdps/internal/msg"
)

// SLO observability: a hand-rolled text /metrics endpoint over the
// cluster's counters, in the Prometheus exposition format (name,
// optional labels, value per line) — scrapable by anything without
// pulling an instrumentation dependency into the tree.

// MetricsServer serves a cluster's counters over HTTP.
type MetricsServer struct {
	srv  *http.Server
	addr string
}

// Addr returns the bound listen address (useful with ":0").
func (s *MetricsServer) Addr() string { return s.addr }

// Close shuts the metrics listener down.
func (s *MetricsServer) Close() error { return s.srv.Close() }

// ServeMetrics binds addr and serves GET /metrics with the cluster's
// aggregate and per-node counters as plain text. The server runs until
// Close; scrape errors never touch the data plane.
func (c *Cluster) ServeMetrics(addr string) (*MetricsServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		w.Write([]byte(c.RenderMetrics()))
	})
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	ms := &MetricsServer{srv: srv, addr: l.Addr().String()}
	go srv.Serve(l)
	return ms, nil
}

// RenderMetrics renders the exposition text: cluster-wide totals, then
// per-broker gauges for the load signals an operator watches during an
// overload (queue occupancy, peak queue, shed and rejection counts).
func (c *Cluster) RenderMetrics() string {
	var b strings.Builder
	t := c.TotalStats()
	counter := func(name, help string, v int) {
		fmt.Fprintf(&b, "# HELP bdps_%s %s\n# TYPE bdps_%s counter\nbdps_%s %d\n",
			name, help, name, name, v)
	}
	counter("receptions_total", "Messages received by brokers.", t.Receptions)
	counter("deliveries_total", "Messages delivered to subscribers.", t.Deliveries)
	counter("deliveries_valid_total", "Deliveries within their delay bound.", t.ValidDeliver)
	counter("drops_expired_total", "Queue entries dropped past their deadline.", t.DropsExpired)
	counter("drops_hopeless_total", "Queue entries dropped as unmeetable.", t.DropsHopeless)
	counter("drops_arrival_total", "Messages dropped on arrival.", t.DropsArrival)
	counter("drops_shed_total", "Queue entries shed under pressure (worst first).", t.DropsShed)
	counter("pubs_rejected_total", "Publications rejected by admission control.", t.PubsRejected)
	counter("duplicates_total", "Duplicate receptions suppressed.", t.Duplicates)
	counter("frames_lost_total", "Wire frames lost to the injected adversary.", t.FramesLost)
	counter("retransmits_total", "Frames retransmitted by the reliable channel.", t.Retransmits)
	counter("floods_suppressed_total", "Subscribe floods covered by aggregation.", t.FloodsSuppressed)

	fmt.Fprintf(&b, "# HELP bdps_queue_depth Current output-queue occupancy per broker.\n# TYPE bdps_queue_depth gauge\n")
	for _, id := range c.nodeIDs() {
		fmt.Fprintf(&b, "bdps_queue_depth{broker=\"%d\"} %d\n", id, c.Nodes[id].egress.Load())
	}
	fmt.Fprintf(&b, "# HELP bdps_queue_peak Largest output-queue occupancy per broker.\n# TYPE bdps_queue_peak gauge\n")
	for _, id := range c.nodeIDs() {
		fmt.Fprintf(&b, "bdps_queue_peak{broker=\"%d\"} %d\n", id, c.Nodes[id].PeakQueue())
	}
	fmt.Fprintf(&b, "# HELP bdps_broker_up Whether the broker is running.\n# TYPE bdps_broker_up gauge\n")
	for _, id := range c.nodeIDs() {
		up := 1
		if c.Nodes[id].Stopped() {
			up = 0
		}
		fmt.Fprintf(&b, "bdps_broker_up{broker=\"%d\"} %d\n", id, up)
	}
	return b.String()
}

// nodeIDs returns the broker ids in ascending order (stable scrapes).
func (c *Cluster) nodeIDs() []msg.NodeID {
	ids := make([]msg.NodeID, 0, len(c.Nodes))
	for id := range c.Nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
